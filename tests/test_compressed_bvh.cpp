// Compressed (quantized) wide-BVH correctness: conservative quantization,
// SIMD-vs-scalar decode parity, and — the acceptance bar of the layout —
// candidate-set *and IS-call-sequence* exactness against the FP32 wide
// path, across uniform/lidar clouds, the degenerate differential
// generators, K = 1/8/64 KNN, range-mode termination, and
// refit-then-requantize frames.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/flat_knn.hpp"
#include "core/rng.hpp"
#include "rtcore/traversal.hpp"
#include "rtcore/wide_bvh.hpp"
#include "test_util.hpp"

namespace rtnn::rt {
namespace {

using rtnn::testing::CloudKind;

struct Scene {
  std::vector<Vec3> points;
  std::vector<Aabb> aabbs;
  Bvh bvh;
  WideBvh wide;
};

Scene build_scene(std::vector<Vec3> points, float width, std::uint32_t leaf_size = 1) {
  Scene scene;
  scene.points = std::move(points);
  scene.aabbs.reserve(scene.points.size());
  for (const Vec3& p : scene.points) scene.aabbs.push_back(Aabb::cube(p, width));
  scene.bvh.build(scene.aabbs, BvhBuildOptions{leaf_size});
  scene.wide.build(scene.bvh);
  return scene;
}

Scene make_scene(CloudKind kind, std::size_t n, float width, std::uint64_t seed,
                 std::uint32_t leaf_size = 1) {
  return build_scene(rtnn::testing::make_cloud(kind, n, seed), width, leaf_size);
}

// Degenerate point sets mirroring the generator shapes of
// test_differential.cpp (that file's generators live in its anonymous
// namespace): coincident sites, exactly collinear, exactly planar, large
// coordinate magnitudes, and isolated dense clusters.
struct DegenerateSet {
  std::string name;
  std::vector<Vec3> points;
  float radius;
};

std::vector<DegenerateSet> degenerate_sets(std::uint64_t seed) {
  constexpr std::size_t kN = 384;
  std::vector<DegenerateSet> sets;
  {
    Pcg32 rng(seed);
    DegenerateSet s{.name = "coincident", .points = {}, .radius = 0.05f};
    std::vector<Vec3> sites;
    for (int i = 0; i < 12; ++i) {
      sites.push_back({rng.next_float(), rng.next_float(), rng.next_float()});
    }
    for (std::size_t i = 0; i < kN; ++i) {
      s.points.push_back(sites[rng.next_bounded(static_cast<std::uint32_t>(sites.size()))]);
    }
    sets.push_back(std::move(s));
  }
  {
    Pcg32 rng(seed + 1);
    DegenerateSet s{.name = "collinear", .points = {}, .radius = 0.04f};
    const Vec3 origin{rng.next_float(), rng.next_float(), rng.next_float()};
    const Vec3 dir{1.0f, 0.5f, -0.25f};
    for (std::size_t i = 0; i < kN; ++i) {
      const float t = rng.next_float();
      s.points.push_back({origin.x + t * dir.x, origin.y + t * dir.y, origin.z + t * dir.z});
    }
    s.points[5] = s.points[4];
    sets.push_back(std::move(s));
  }
  {
    Pcg32 rng(seed + 2);
    DegenerateSet s{.name = "planar", .points = {}, .radius = 0.12f};
    const float z = rng.next_float();
    for (std::size_t i = 0; i < kN; ++i) {
      s.points.push_back({rng.next_float(), rng.next_float(), z});
    }
    sets.push_back(std::move(s));
  }
  {
    Pcg32 rng(seed + 3);
    DegenerateSet s{.name = "extreme", .points = {}, .radius = 1.0e6f * 1.5e-4f};
    const float scale = 1.0e6f;
    for (std::size_t i = 0; i < kN; ++i) {
      s.points.push_back({scale + scale * 0.001f * rng.next_float(),
                          -scale + scale * 0.001f * rng.next_float(),
                          scale * 0.001f * rng.next_float()});
    }
    sets.push_back(std::move(s));
  }
  {
    Pcg32 rng(seed + 4);
    DegenerateSet s{.name = "clustered", .points = {}, .radius = 0.08f};
    std::vector<Vec3> centers;
    for (int c = 0; c < 6; ++c) {
      centers.push_back(
          {10.0f * rng.next_float(), 10.0f * rng.next_float(), 10.0f * rng.next_float()});
    }
    for (std::size_t i = 0; i < kN; ++i) {
      const Vec3& c = centers[rng.next_bounded(static_cast<std::uint32_t>(centers.size()))];
      s.points.push_back({c.x + 0.1f * (rng.next_float() - 0.5f),
                          c.y + 0.1f * (rng.next_float() - 0.5f),
                          c.z + 0.1f * (rng.next_float() - 0.5f)});
    }
    sets.push_back(std::move(s));
  }
  return sets;
}

/// Records the *sequence* of IS calls per ray — stricter than a set: the
/// compressed path promises the identical call order, which is what makes
/// kTerminate cut-offs land on the same primitive.
struct SequenceCollector {
  std::vector<std::vector<std::uint32_t>> calls;
  explicit SequenceCollector(std::size_t rays) : calls(rays) {}
  TraceAction intersect(std::uint32_t ray, std::uint32_t prim) {
    calls[ray].push_back(prim);
    return TraceAction::kContinue;
  }
};

/// Terminates each ray after `limit` IS calls — the range-mode K cap.
struct TerminatingCollector {
  std::vector<std::vector<std::uint32_t>> calls;
  std::uint32_t limit;
  TerminatingCollector(std::size_t rays, std::uint32_t limit_)
      : calls(rays), limit(limit_) {}
  TraceAction intersect(std::uint32_t ray, std::uint32_t prim) {
    calls[ray].push_back(prim);
    return calls[ray].size() >= limit ? TraceAction::kTerminate
                                      : TraceAction::kContinue;
  }
};

struct KnnProgram {
  std::span<const Vec3> points;
  std::span<const Vec3> queries;
  float radius2;
  FlatKnnHeaps* heaps;
  TraceAction intersect(std::uint32_t ray, std::uint32_t prim) {
    const float d2 = distance2(points[prim], queries[ray]);
    if (d2 <= radius2 && d2 < heaps->worst_dist2(ray)) heaps->push(ray, d2, prim);
    return TraceAction::kContinue;
  }
};

std::vector<Ray> short_rays(std::span<const Vec3> queries) {
  std::vector<Ray> rays;
  rays.reserve(queries.size());
  for (const Vec3& q : queries) rays.push_back(Ray::short_ray(q));
  return rays;
}

std::vector<Vec3> parity_queries(const Scene& scene, float radius, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Vec3> queries = scene.points;
  const Aabb domain = scene.bvh.scene_bounds().expanded(radius);
  for (int i = 0; i < 200; ++i) queries.push_back(rng.uniform_in_aabb(domain));
  return queries;
}

TraceConfig compressed_config() {
  TraceConfig config;
  config.use_compressed = true;
  return config;
}

/// Every dequantized child box must contain its FP32 slot box — the
/// conservativeness property traversal exactness is derived from — and
/// reconstructed child references must match the FP32 child table.
/// Checked directly (not only via validate()) over regular and degenerate
/// geometry, and with multi-primitive leaves.
TEST(CompressedWideBvh, ConservativeQuantizationProperty) {
  std::vector<Scene> scenes;
  scenes.push_back(make_scene(CloudKind::kUniform, 5000, 0.05f, 7));
  scenes.push_back(make_scene(CloudKind::kLidar, 4000,
                              2.0f * rtnn::testing::typical_radius(CloudKind::kLidar), 9));
  scenes.push_back(make_scene(CloudKind::kUniform, 3000, 0.05f, 11, /*leaf_size=*/4));
  for (auto& set : degenerate_sets(0xc0deu)) {
    scenes.push_back(build_scene(std::move(set.points), 2.0f * set.radius));
  }

  for (const Scene& scene : scenes) {
    ASSERT_NO_THROW(scene.wide.validate());
    const auto nodes = scene.wide.nodes();
    const auto compressed = scene.wide.compressed_nodes();
    ASSERT_EQ(nodes.size(), compressed.size());
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
      const WideBvhNode& node = nodes[ni];
      const CompressedWideNode& cn = compressed[ni];
      ASSERT_EQ(cn.count, node.count);
      for (std::uint32_t i = 0; i < node.count; ++i) {
        const Aabb exact{{node.minx[i], node.miny[i], node.minz[i]},
                         {node.maxx[i], node.maxy[i], node.maxz[i]}};
        const Aabb decoded = dequantize_slot(cn, i);
        ASSERT_LE(decoded.lo.x, exact.lo.x) << "node " << ni << " slot " << i;
        ASSERT_LE(decoded.lo.y, exact.lo.y) << "node " << ni << " slot " << i;
        ASSERT_LE(decoded.lo.z, exact.lo.z) << "node " << ni << " slot " << i;
        ASSERT_GE(decoded.hi.x, exact.hi.x) << "node " << ni << " slot " << i;
        ASSERT_GE(decoded.hi.y, exact.hi.y) << "node " << ni << " slot " << i;
        ASSERT_GE(decoded.hi.z, exact.hi.z) << "node " << ni << " slot " << i;
        if (node.child[i] & WideBvhNode::kLeafBit) {
          ASSERT_TRUE(cn.is_leaf_slot(i));
          ASSERT_EQ(cn.leaf_index(i), node.child[i] & ~WideBvhNode::kLeafBit);
        } else {
          ASSERT_FALSE(cn.is_leaf_slot(i));
          ASSERT_EQ(cn.child_index(i), node.child[i]);
        }
      }
    }
  }
}

/// This build's compressed_node_hits (AVX2 or scalar) must agree with the
/// scalar dequantize-then-ray_intersects_aabb reference on every slot of
/// every node, for the same ray classes the FP32 node test is checked
/// against (short rays, general segments, axis-aligned with ±inf
/// reciprocals, and NaN-producing face-pinned origins).
TEST(CompressedWideBvh, NodeTestMatchesScalarDecode) {
  const Scene scene = make_scene(CloudKind::kUniform, 2000, 0.08f, 4242);
  const auto compressed = scene.wide.compressed_nodes();
  ASSERT_FALSE(compressed.empty());
  Pcg32 rng(99);
  const Aabb domain = scene.bvh.scene_bounds().expanded(0.1f);
  for (int iter = 0; iter < 500; ++iter) {
    const CompressedWideNode& node =
        compressed[rng.next_bounded(static_cast<std::uint32_t>(compressed.size()))];
    Ray ray;
    switch (iter % 4) {
      case 0:
        ray = Ray::short_ray(rng.uniform_in_aabb(domain));
        break;
      case 1:
        ray.origin = rng.uniform_in_aabb(domain);
        ray.dir = rng.uniform_in_aabb(Aabb{{-1, -1, -1}, {1, 1, 1}});
        ray.tmin = 0.0f;
        ray.tmax = 2.0f;
        break;
      case 2:
        ray.origin = rng.uniform_in_aabb(domain);
        ray.dir = Vec3{0.0f, iter % 8 < 4 ? 1.0f : -1.0f, 0.0f};
        ray.tmax = 1.5f;
        break;
      default: {
        // Origin pinned to a decoded box face: 0 * inf NaNs in the slab.
        const Aabb box = dequantize_slot(node, 0);
        ray.origin = Vec3{box.lo.x, box.lo.y, box.hi.z};
        ray.dir = Vec3{1.0f, 0.0f, 0.0f};
        ray.tmax = 1.0f;
        break;
      }
    }
    const Vec3 inv_dir = reciprocal_dir(ray);
    const std::uint32_t mask = detail::compressed_node_hits(node, ray, inv_dir);
    for (std::uint32_t i = 0; i < node.count; ++i) {
      EXPECT_EQ((mask >> i) & 1u,
                ray_intersects_aabb(ray, dequantize_slot(node, i), inv_dir) ? 1u : 0u)
          << "iter " << iter << " slot " << i;
    }
  }
}

/// The acceptance bar: the compressed path must invoke the IS shader in
/// exactly the same per-ray sequence as the FP32 wide path — uniform,
/// lidar, and every degenerate generator shape, single- and multi-prim
/// leaves.
TEST(CompressedWideBvh, IsSequenceParityWithFp32Wide) {
  std::vector<std::pair<std::string, Scene>> scenes;
  for (const CloudKind kind : {CloudKind::kUniform, CloudKind::kLidar}) {
    const float width = 2.0f * rtnn::testing::typical_radius(kind);
    scenes.emplace_back(rtnn::testing::to_string(kind), make_scene(kind, 4000, width, 17));
  }
  scenes.emplace_back("uniform-leaf4",
                      make_scene(CloudKind::kUniform, 3000, 0.08f, 21, /*leaf_size=*/4));
  for (auto& set : degenerate_sets(0xbeefu)) {
    scenes.emplace_back(set.name, build_scene(std::move(set.points), 2.0f * set.radius));
  }

  for (const auto& [label, scene] : scenes) {
    const auto queries = parity_queries(scene, 0.1f, 51);
    const auto rays = short_rays(queries);

    SequenceCollector fp32(queries.size());
    trace(scene.wide, rays, fp32);
    SequenceCollector compressed(queries.size());
    trace(scene.wide, rays, compressed, compressed_config());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(compressed.calls[q], fp32.calls[q]) << label << " query " << q;
    }
  }
}

/// Termination parity under the range-mode K cap: because the IS sequences
/// are identical, cutting every ray off after its first `limit` calls must
/// leave byte-identical per-ray call lists.
TEST(CompressedWideBvh, RangeTerminationParity) {
  for (const std::uint32_t limit : {1u, 8u}) {
    const Scene scene = make_scene(CloudKind::kUniform, 4000, 0.1f, 33);
    const auto queries = parity_queries(scene, 0.1f, 77);
    const auto rays = short_rays(queries);

    TerminatingCollector fp32(queries.size(), limit);
    trace(scene.wide, rays, fp32);
    TerminatingCollector compressed(queries.size(), limit);
    trace(scene.wide, rays, compressed, compressed_config());
    ASSERT_EQ(compressed.calls, fp32.calls) << "limit " << limit;
  }
}

TEST(CompressedWideBvh, KnnParityAcrossK) {
  for (const CloudKind kind : {CloudKind::kUniform, CloudKind::kLidar}) {
    const float radius = 2.0f * rtnn::testing::typical_radius(kind);
    const Scene scene = make_scene(kind, 3000, 2.0f * radius, 31);
    const auto rays = short_rays(scene.points);
    for (const std::uint32_t k : {1u, 8u, 64u}) {
      FlatKnnHeaps heaps_fp32(scene.points.size(), k);
      KnnProgram fp32{scene.points, scene.points, radius * radius, &heaps_fp32};
      trace(scene.wide, rays, fp32);
      FlatKnnHeaps heaps_comp(scene.points.size(), k);
      KnnProgram comp{scene.points, scene.points, radius * radius, &heaps_comp};
      trace(scene.wide, rays, comp, compressed_config());
      rtnn::testing::expect_same_neighbor_sets(
          heaps_comp.extract(), heaps_fp32.extract(),
          rtnn::testing::to_string(kind) + " K=" + std::to_string(k));
    }
  }
}

/// Refit-then-requantize frames: after each frame of motion the compressed
/// mirror must be freshly conservative (validate) and still IS-sequence
/// exact against the refitted FP32 lanes.
TEST(CompressedWideBvh, RefitRequantizeParity) {
  Pcg32 rng(61);
  std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 3000, 5);
  Scene scene = build_scene(points, 0.08f);
  for (int frame = 0; frame < 3; ++frame) {
    for (Vec3& p : points) {
      p.x += 0.01f * (rng.next_float() - 0.5f);
      p.y += 0.01f * (rng.next_float() - 0.5f);
      p.z += 0.01f * (rng.next_float() - 0.5f);
    }
    std::vector<Aabb> moved;
    moved.reserve(points.size());
    for (const Vec3& p : points) moved.push_back(Aabb::cube(p, 0.08f));
    scene.bvh.refit(moved);
    scene.wide.refit_from(scene.bvh);
    ASSERT_NO_THROW(scene.wide.validate()) << "frame " << frame;

    const auto rays = short_rays(points);
    SequenceCollector fp32(points.size());
    trace(scene.wide, rays, fp32);
    SequenceCollector compressed(points.size());
    trace(scene.wide, rays, compressed, compressed_config());
    ASSERT_EQ(compressed.calls, fp32.calls) << "frame " << frame;
  }
}

/// The footprint claim behind the PR: >= 2x smaller node bytes (the 80 B
/// vs 256 B layout gives 3.2x), visible through both stats() variants.
TEST(CompressedWideBvh, NodeBytesShrinkAtLeastTwofold) {
  const Scene scene = make_scene(CloudKind::kUniform, 50'000, 0.02f, 3);
  const WideBvhStats fp32 = scene.wide.stats();
  const WideBvhStats comp = scene.wide.compressed_stats();
  ASSERT_GT(fp32.node_bytes, 0u);
  EXPECT_EQ(fp32.node_bytes, scene.wide.nodes().size() * sizeof(WideBvhNode));
  EXPECT_EQ(comp.node_bytes,
            scene.wide.compressed_nodes().size() * sizeof(CompressedWideNode));
  EXPECT_GE(fp32.node_bytes, 2 * comp.node_bytes);
  EXPECT_LT(comp.total_index_bytes, fp32.total_index_bytes);
  // Both accountings share the leaf/order/prim arrays; the compressed one
  // additionally carries the leaf-slot-ordered AABB snapshot its exact
  // re-test streams through.
  EXPECT_EQ(comp.total_index_bytes - comp.node_bytes,
            fp32.total_index_bytes - fp32.node_bytes +
                scene.wide.ordered_prim_aabbs().size_bytes());
  EXPECT_EQ(scene.wide.ordered_prim_aabbs().size(), scene.wide.prim_aabbs().size());
}

/// Modeled cache behavior: replaying the same launch through the cache
/// simulator at each layout's true byte footprint, the compressed layout
/// must miss substantially less — the mechanism the wall-clock win rests
/// on. (The >= 20% bar here is the acceptance criterion's fallback gate.)
TEST(CompressedWideBvh, ModeledMissesShrink) {
  const Scene scene = make_scene(CloudKind::kUniform, 30'000, 0.04f, 13);
  const auto rays = short_rays(scene.points);
  TraceConfig config;
  config.parallel = false;  // one hierarchy -> deterministic counters
  config.simulate_caches = true;

  SequenceCollector fp32(rays.size());
  config.use_compressed = false;
  const LaunchStats fp32_stats = trace(scene.wide, rays, fp32, config);
  SequenceCollector comp(rays.size());
  config.use_compressed = true;
  const LaunchStats comp_stats = trace(scene.wide, rays, comp, config);

  ASSERT_EQ(comp.calls, fp32.calls);  // same work, different footprint
  const auto misses = [](const LaunchStats& s) {
    return (s.l1.accesses - s.l1.hits) + (s.l2.accesses - s.l2.hits);
  };
  ASSERT_GT(misses(fp32_stats), 0u);
  EXPECT_LE(5 * misses(comp_stats), 4 * misses(fp32_stats))
      << "compressed layout should cut modeled misses by >= 20%: fp32="
      << misses(fp32_stats) << " compressed=" << misses(comp_stats);
}

}  // namespace
}  // namespace rtnn::rt
