// Chaos suite: every recovery path in the serving stack driven by the
// deterministic failpoints compiled into production code
// (core/failpoint.hpp; the site names are listed in service.hpp's header
// comment). Each scenario arms a site, provokes the failure, and asserts
// the contracted behavior: typed errors, flagged partials, exact stats,
// watchdog recovery — and above all that no ticket is ever abandoned.
// Carries the "chaos" ctest label; CI runs it under both ASan and TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.hpp"
#include "core/rng.hpp"
#include "engine/sharded_backend.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

using namespace rtnn;
using namespace rtnn::service;
using fail::Action;
using fail::FailConfig;
using fail::FailpointRegistry;
using fail::InjectedFault;
using fail::ScopedFailpoint;
using rtnn::testing::CloudKind;
using rtnn::testing::make_cloud;
using rtnn::testing::typical_radius;

using namespace std::chrono_literals;

namespace {

constexpr std::size_t kCloudSize = 384;
constexpr std::uint64_t kSeed = 4242;

SearchParams knn_params(std::uint32_t k = 8) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = typical_radius(CloudKind::kUniform);
  params.k = k;
  params.opts = OptimizationFlags::none();
  return params;
}

/// A multi-shard backend over a small uniform cloud.
engine::ShardedBackend make_sharded(const std::vector<Vec3>& points,
                                    engine::ShardingOptions options = {}) {
  options.shard_threshold = 64;
  options.max_shards = 6;
  engine::ShardedBackend backend("rtnn", options);
  backend.set_points(points);
  return backend;
}

/// A cloud config that shards the test cloud and carries the given
/// fault-isolation policy.
CloudConfig sharded_cloud_config(std::uint32_t attempts, bool degraded,
                                 std::chrono::microseconds backoff = 0us) {
  CloudConfig config;
  config.shard_threshold = 64;
  config.max_shards = 6;
  config.shard_max_attempts = attempts;
  config.shard_backoff = backoff;
  config.shard_allow_degraded = degraded;
  return config;
}

std::size_t total_neighbors(const NeighborResult& result) {
  std::size_t total = 0;
  for (std::size_t q = 0; q < result.num_queries(); ++q) total += result.count(q);
  return total;
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }

  std::vector<Vec3> points_ = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  std::vector<Vec3> queries_ =
      std::vector<Vec3>(points_.begin(), points_.begin() + 48);
};

}  // namespace

// --- Scatter-gather fault isolation (engine::ShardedBackend) -----------------

TEST_F(ChaosTest, ShardFaultWithoutRetryFailsTyped) {
  engine::ShardedBackend backend = make_sharded(points_);
  ASSERT_GT(backend.shard_count(), 1u);
  FailConfig config;
  config.fire_on_hit = 1;
  config.message = "injected shard outage";
  ScopedFailpoint fp("sharded.shard_search", config);
  try {
    (void)backend.search(queries_, knn_params());
    FAIL() << "expected a typed shard failure";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard"), std::string::npos);
    EXPECT_NE(what.find("injected shard outage"), std::string::npos);
  }
}

TEST_F(ChaosTest, RetryHealsATransientShardFault) {
  engine::ShardingOptions options;
  options.max_attempts = 2;
  engine::ShardedBackend backend = make_sharded(points_, options);
  ASSERT_GT(backend.shard_count(), 1u);
  const NeighborResult want = backend.search(queries_, knn_params());

  FailConfig config;
  config.fire_on_hit = 1;  // first attempt of the first routed shard
  ScopedFailpoint fp("sharded.shard_search", config);
  engine::SearchBackend::Report report;
  const NeighborResult got = backend.search(queries_, knn_params(), &report);
  EXPECT_EQ(report.shard_retries, 1u);
  EXPECT_EQ(report.shards_dropped, 0u);
  EXPECT_TRUE(backend.last_dropped_shards().empty());
  ASSERT_EQ(got.num_queries(), want.num_queries());
  for (std::size_t q = 0; q < got.num_queries(); ++q) {
    EXPECT_EQ(got.count(q), want.count(q)) << q;
  }
}

TEST_F(ChaosTest, ExhaustedShardDropsFromTheGatherWhenDegradedAllowed) {
  engine::ShardingOptions options;
  options.allow_degraded = true;
  engine::ShardedBackend backend = make_sharded(points_, options);
  ASSERT_GT(backend.shard_count(), 1u);
  // Query every point: each shard contributes at least its own points,
  // so dropping one strictly shrinks the answer.
  const NeighborResult full = backend.search(points_, knn_params());

  FailConfig config;
  config.fire_on_hit = 1;
  ScopedFailpoint fp("sharded.shard_search", config);
  engine::SearchBackend::Report report;
  const NeighborResult partial = backend.search(points_, knn_params(), &report);
  EXPECT_EQ(report.shards_dropped, 1u);
  ASSERT_EQ(backend.last_dropped_shards().size(), 1u);
  ASSERT_EQ(partial.num_queries(), full.num_queries());
  for (std::size_t q = 0; q < partial.num_queries(); ++q) {
    EXPECT_LE(partial.count(q), full.count(q)) << q;
  }
  EXPECT_LT(total_neighbors(partial), total_neighbors(full));
}

TEST_F(ChaosTest, EveryShardDownStillReturnsAnEmptyGather) {
  engine::ShardingOptions options;
  options.allow_degraded = true;
  engine::ShardedBackend backend = make_sharded(points_, options);
  ASSERT_GT(backend.shard_count(), 1u);
  ScopedFailpoint fp("sharded.shard_search", {});  // every hit fires
  const NeighborResult result = backend.search(points_, knn_params());
  EXPECT_EQ(total_neighbors(result), 0u);
  EXPECT_EQ(backend.last_dropped_shards().size(), backend.shard_count());
}

TEST_F(ChaosTest, DroppedShardScratchResetsOnTheNextSearch) {
  engine::ShardingOptions options;
  options.allow_degraded = true;
  engine::ShardedBackend backend = make_sharded(points_, options);
  {
    FailConfig config;
    config.fire_on_hit = 1;
    ScopedFailpoint fp("sharded.shard_search", config);
    (void)backend.search(queries_, knn_params());
    EXPECT_FALSE(backend.last_dropped_shards().empty());
  }
  (void)backend.search(queries_, knn_params());
  EXPECT_TRUE(backend.last_dropped_shards().empty());
}

TEST_F(ChaosTest, RetryBackoffIsObserved) {
  engine::ShardingOptions options;
  options.max_attempts = 3;
  options.backoff = 3ms;
  engine::ShardedBackend backend = make_sharded(points_, options);
  ScopedFailpoint fp("sharded.shard_search", {});  // every attempt fails
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW((void)backend.search(queries_, knn_params()), Error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The first failing shard alone sleeps 3ms + 6ms between its attempts.
  EXPECT_GE(elapsed, 9ms);
}

TEST_F(ChaosTest, RetryCountersAggregateAcrossShards) {
  engine::ShardingOptions options;
  options.max_attempts = 2;
  options.allow_degraded = true;
  engine::ShardedBackend backend = make_sharded(points_, options);
  ASSERT_GT(backend.shard_count(), 1u);
  ScopedFailpoint fp("sharded.shard_search", {});  // everything fails
  engine::SearchBackend::Report report;
  (void)backend.search(points_, knn_params(), &report);
  const auto dropped = static_cast<std::uint64_t>(backend.last_dropped_shards().size());
  EXPECT_EQ(dropped, backend.shard_count());
  EXPECT_EQ(report.shards_dropped, dropped);
  EXPECT_EQ(report.shard_retries, dropped);  // one retried attempt per shard
}

// --- Service: shard faults surface per the cloud's policy --------------------

TEST_F(ChaosTest, ServiceShardFaultRejectsKBackend) {
  SearchService service;
  CloudHandle cloud = service.register_cloud(
      "chaos", points_, sharded_cloud_config(/*attempts=*/1, /*degraded=*/false));
  ScopedFailpoint fp("sharded.shard_search", {});
  try {
    (void)service.query(cloud, queries_, knn_params());
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kBackend);
  }
  FailpointRegistry::instance().disarm("sharded.shard_search");
  EXPECT_NO_THROW((void)service.query(cloud, queries_, knn_params()))
      << "the dispatcher must outlive an injected backend fault";
}

TEST_F(ChaosTest, ServiceRetryPolicyHealsATransientFault) {
  SearchService service;
  CloudHandle cloud = service.register_cloud(
      "chaos", points_, sharded_cloud_config(/*attempts=*/3, /*degraded=*/false));
  FailConfig config;
  config.fire_on_hit = 1;
  ScopedFailpoint fp("sharded.shard_search", config);
  const RequestOutcome outcome = service.query(cloud, queries_, knn_params());
  EXPECT_FALSE(outcome.degraded);
  EXPECT_EQ(outcome.report.shard_retries, 1u);
  EXPECT_EQ(service.stats(cloud).report.shard_retries, 1u);
}

TEST_F(ChaosTest, ServiceDegradedOutcomeIsServedAndFlagged) {
  SearchService service;
  CloudHandle cloud = service.register_cloud(
      "chaos", points_, sharded_cloud_config(/*attempts=*/1, /*degraded=*/true));
  FailConfig config;
  config.fire_on_hit = 1;
  ScopedFailpoint fp("sharded.shard_search", config);
  const RequestOutcome outcome = service.query(cloud, queries_, knn_params());
  EXPECT_TRUE(outcome.degraded);
  EXPECT_EQ(outcome.dropped_shards.size(), 1u);
  EXPECT_EQ(outcome.report.shards_dropped, 1u);
  const ServiceStats stats = service.stats(cloud);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.requests, 1u);

  // Healed: the next request serves whole and is not counted degraded.
  FailpointRegistry::instance().disarm("sharded.shard_search");
  const RequestOutcome healed = service.query(cloud, queries_, knn_params());
  EXPECT_FALSE(healed.degraded);
  EXPECT_TRUE(healed.dropped_shards.empty());
  EXPECT_EQ(service.stats(cloud).degraded, 1u);
}

// --- Service: publish, eviction, and dispatch-site faults --------------------

TEST_F(ChaosTest, PublishFaultFailsTheWriterButReadersKeepServing) {
  SearchService service;
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  const std::uint64_t version = service.snapshot_version(cloud);

  std::vector<Vec3> moved = points_;
  for (Vec3& p : moved) p.x += 0.05f;
  {
    ScopedFailpoint fp("service.publish", {});
    EXPECT_THROW(service.update_points(cloud, moved), InjectedFault);
  }
  // The failed publish left no trace: old version, old snapshot, and the
  // read path untouched.
  EXPECT_EQ(service.snapshot_version(cloud), version);
  EXPECT_EQ(service.stats(cloud).updates, 0u);
  EXPECT_NO_THROW((void)service.query(cloud, queries_, knn_params()));

  // A retried update goes through cleanly.
  service.update_points(cloud, moved);
  EXPECT_EQ(service.snapshot_version(cloud), version + 1);
  EXPECT_EQ(service.stats(cloud).updates, 1u);
}

TEST_F(ChaosTest, DemandBuildFaultRejectsKBackendThenRebuilds) {
  SearchService service;
  CloudConfig config;
  config.build_on_register = false;
  CloudHandle cloud = service.register_cloud("chaos", points_, config);
  ASSERT_EQ(service.resident_clouds(), 0u);

  FailConfig fire_once;
  fire_once.fire_on_hit = 1;  // the demand build fails once, then heals
  ScopedFailpoint fp("service.publish", fire_once);
  try {
    (void)service.query(cloud, queries_, knn_params());
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kBackend);
  }
  // The next request rebuilds on demand and serves.
  EXPECT_NO_THROW((void)service.query(cloud, queries_, knn_params()));
  EXPECT_EQ(service.resident_clouds(), 1u);
}

TEST_F(ChaosTest, EvictionFaultNeverFailsRequests) {
  ServiceConfig service_config;
  service_config.max_resident_clouds = 1;
  SearchService service(service_config);
  CloudHandle a = service.register_cloud("tenant_a", points_, {});

  ScopedFailpoint fp("service.evict", {});
  // Registering B pushes past the cap; the eviction pass throws — the
  // registration and every request path must shrug it off.
  const std::vector<Vec3> other = make_cloud(CloudKind::kUniform, kCloudSize, kSeed + 1);
  CloudHandle b;
  EXPECT_NO_THROW(b = service.register_cloud("tenant_b", other, {}));
  EXPECT_NO_THROW((void)service.query(a, queries_, knn_params()));
  EXPECT_NO_THROW((void)service.query(b, queries_, knn_params()));
  EXPECT_GE(service.health().eviction_failures, 1u);
  EXPECT_EQ(service.stats().evictions, 0u);  // the pass never completed

  // Healed: the next build enforces the cap for real.
  FailpointRegistry::instance().disarm("service.evict");
  const std::vector<Vec3> third = make_cloud(CloudKind::kUniform, kCloudSize, kSeed + 2);
  (void)service.register_cloud("tenant_c", third, {});
  EXPECT_LE(service.resident_clouds(), 2u);
  EXPECT_GE(service.stats().evictions, 1u);
}

TEST_F(ChaosTest, TickFaultRejectsTheBatchAndTheDispatcherSurvives) {
  SearchService service;
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  FailConfig config;
  config.max_fires = 1;
  ScopedFailpoint fp("service.dispatch.tick", config);
  try {
    (void)service.query(cloud, queries_, knn_params());
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kBackend);
  }
  EXPECT_NO_THROW((void)service.query(cloud, queries_, knn_params()));
  const ServiceStats stats = service.stats(cloud);
  EXPECT_EQ(stats.requests, 2u);  // the failed tick's request still counted
}

TEST_F(ChaosTest, LaunchFaultRejectsTheGroupTyped) {
  SearchService service;
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  FailConfig config;
  config.max_fires = 1;
  ScopedFailpoint fp("service.dispatch.launch", config);
  try {
    (void)service.query(cloud, queries_, knn_params());
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kBackend);
    EXPECT_NE(std::string(e.what()).find("service.dispatch.launch"),
              std::string::npos);
  }
  EXPECT_NO_THROW((void)service.query(cloud, queries_, knn_params()));
}

TEST_F(ChaosTest, AllocFailureAtTheTickIsATypedRejection) {
  SearchService service;
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  FailConfig config;
  config.action = Action::kAllocFail;
  config.max_fires = 1;
  ScopedFailpoint fp("service.dispatch.tick", config);
  try {
    (void)service.query(cloud, queries_, knn_params());
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kBackend);  // bad_alloc, typed & contained
  }
  EXPECT_NO_THROW((void)service.query(cloud, queries_, knn_params()));
}

TEST_F(ChaosTest, ShardFaultInOneBinLeavesTheTicksOtherBinsServing) {
  // Two tenants in one tick: the sharded one fails, the plain one serves.
  ServiceConfig service_config;
  service_config.max_delay = 20ms;  // wide tick so both requests coalesce
  SearchService service(service_config);
  CloudHandle fragile = service.register_cloud(
      "fragile", points_, sharded_cloud_config(/*attempts=*/1, /*degraded=*/false));
  const std::vector<Vec3> other = make_cloud(CloudKind::kUniform, kCloudSize, kSeed + 3);
  CloudHandle solid = service.register_cloud("solid", other, {});

  ScopedFailpoint fp("sharded.shard_search", {});
  SearchService::Ticket bad = service.submit(fragile, queries_, knn_params());
  SearchService::Ticket good = service.submit(solid, queries_, knn_params());
  EXPECT_THROW((void)bad.get(), ServiceError);
  EXPECT_NO_THROW((void)good.get());
}

// --- Deadlines ---------------------------------------------------------------

TEST_F(ChaosTest, DeadlineAlreadyOverResolvesAtTheDoor) {
  SearchService service;
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  RequestOptions options;
  options.deadline = std::chrono::steady_clock::now() - 1ms;
  SearchService::Ticket ticket = service.submit(cloud, queries_, knn_params(), options);
  EXPECT_TRUE(ticket.ready()) << "a dead-on-arrival request resolves immediately";
  try {
    (void)ticket.get();
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kDeadline);
  }
  const ServiceStats stats = service.stats(cloud);
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.requests, 0u);  // never queued: counted like shed
  EXPECT_EQ(stats.shed, 0u);      // ...but not *as* shed
}

TEST_F(ChaosTest, DeadlineExpiringInTheQueueIsDroppedBeforeLaunch) {
  SearchService service;
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  // Wedge the dispatcher for one tick, well past B's budget.
  FailConfig config;
  config.action = Action::kDelay;
  config.delay = 150ms;
  config.max_fires = 1;
  ScopedFailpoint fp("service.dispatch.tick", config);

  SearchService::Ticket a = service.submit(cloud, queries_, knn_params());
  SearchService::Ticket b = service.submit(cloud, queries_, knn_params(),
                                           RequestOptions::within(30ms));
  EXPECT_NO_THROW((void)a.get());
  try {
    (void)b.get();
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kDeadline);
  }
  const ServiceStats stats = service.stats(cloud);
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.requests, 2u);  // queued misses count as requests
}

TEST_F(ChaosTest, DeadlineExpiringAtThePreLaunchGateIsDropped) {
  ServiceConfig service_config;
  service_config.max_delay = 10ms;
  SearchService service(service_config);
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  // The wedge sits *after* the snapshot pin, so B expires at the last
  // gate before work starts.
  FailConfig config;
  config.action = Action::kDelay;
  config.delay = 150ms;
  config.max_fires = 1;
  ScopedFailpoint fp("service.dispatch.launch", config);

  SearchService::Ticket a = service.submit(cloud, queries_, knn_params());
  SearchService::Ticket b = service.submit(cloud, queries_, knn_params(),
                                           RequestOptions::within(40ms));
  EXPECT_NO_THROW((void)a.get());
  try {
    (void)b.get();
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kDeadline);
  }
  EXPECT_EQ(service.stats(cloud).deadline_misses, 1u);
}

TEST_F(ChaosTest, GenerousDeadlineServesNormally) {
  SearchService service;
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  const RequestOutcome outcome =
      service.query(cloud, queries_, knn_params(), RequestOptions::within(10s));
  EXPECT_EQ(outcome.result.num_queries(), queries_.size());
  const ServiceStats stats = service.stats(cloud);
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_EQ(stats.requests, 1u);
}

TEST_F(ChaosTest, DeadlineMissSurfacesThroughTryGetToo) {
  SearchService service;
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  RequestOptions options;
  options.deadline = std::chrono::steady_clock::now();  // over by submit time
  SearchService::Ticket ticket = service.submit(cloud, queries_, knn_params(), options);
  ASSERT_TRUE(ticket.ready());
  try {
    (void)ticket.try_get();
    FAIL() << "expected ServiceError";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kDeadline);
  }
}

// --- Watchdog / self-healing dispatch ----------------------------------------

namespace {

ServiceConfig watched_config(std::chrono::milliseconds stall_timeout = 60ms) {
  ServiceConfig config;
  config.stall_timeout = stall_timeout;
  config.watchdog_interval = 15ms;
  return config;
}

}  // namespace

TEST_F(ChaosTest, WatchdogRestartsAStalledDispatcherAndTheTicketStillServes) {
  SearchService service(watched_config());
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  // Wedge the dispatcher mid-tick for far longer than the stall window.
  FailConfig config;
  config.action = Action::kDelay;
  config.delay = 500ms;
  config.max_fires = 1;
  ScopedFailpoint fp("service.dispatch.tick", config);

  SearchService::Ticket ticket = service.submit(cloud, queries_, knn_params());
  // The wedged thread holds the batch; the watchdog must restart the
  // dispatcher, and the stale thread must hand the batch back on waking.
  const RequestOutcome outcome = ticket.get();
  EXPECT_EQ(outcome.result.num_queries(), queries_.size());
  EXPECT_GE(service.health().dispatcher_restarts, 1u);
  EXPECT_TRUE(service.health().dispatcher_alive);
  EXPECT_EQ(service.health().pending_requests, 0u);
}

TEST_F(ChaosTest, WatchdogResolvesEveryInflightTicketAcrossClouds) {
  SearchService service(watched_config());
  CloudHandle a = service.register_cloud("tenant_a", points_, {});
  const std::vector<Vec3> other = make_cloud(CloudKind::kUniform, kCloudSize, kSeed + 4);
  CloudHandle b = service.register_cloud("tenant_b", other, {});

  FailConfig config;
  config.action = Action::kDelay;
  config.delay = 400ms;
  config.max_fires = 1;
  ScopedFailpoint fp("service.dispatch.tick", config);

  std::vector<SearchService::Ticket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(service.submit(i % 2 == 0 ? a : b, queries_, knn_params()));
  }
  // Never abandoned: every ticket resolves — served here (no deadline,
  // no drop), whatever mix of stale-thread serves and requeues occurred.
  for (SearchService::Ticket& ticket : tickets) {
    EXPECT_NO_THROW((void)ticket.get());
  }
  EXPECT_GE(service.health().dispatcher_restarts, 1u);
  EXPECT_EQ(service.health().pending_requests, 0u);
  EXPECT_EQ(service.stats().requests, 4u);
}

TEST_F(ChaosTest, WatchdogLeavesAnIdleServiceAlone) {
  SearchService service(watched_config(/*stall_timeout=*/40ms));
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  (void)service.query(cloud, queries_, knn_params());
  std::this_thread::sleep_for(200ms);  // idle >> stall window
  EXPECT_EQ(service.health().dispatcher_restarts, 0u);
  EXPECT_TRUE(service.health().dispatcher_alive);
}

TEST_F(ChaosTest, WatchdogLeavesHealthyTrafficAlone) {
  SearchService service(watched_config(/*stall_timeout=*/80ms));
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  const auto until = std::chrono::steady_clock::now() + 250ms;
  std::size_t served = 0;
  while (std::chrono::steady_clock::now() < until) {
    (void)service.query(cloud, queries_, knn_params());
    ++served;
  }
  EXPECT_GT(served, 0u);
  EXPECT_EQ(service.health().dispatcher_restarts, 0u);
}

TEST_F(ChaosTest, RestartQuarantinesSnapshotsAndServesCorrectAnswers) {
  SearchService service(watched_config());
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  const RequestOutcome before = service.query(cloud, queries_, knn_params());

  FailConfig config;
  config.action = Action::kDelay;
  config.delay = 400ms;
  config.max_fires = 1;
  ScopedFailpoint fp("service.dispatch.tick", config);
  SearchService::Ticket stalled = service.submit(cloud, queries_, knn_params());
  const RequestOutcome after = stalled.get();
  ASSERT_GE(service.health().dispatcher_restarts, 1u);

  // The republished (post-quarantine) snapshot answers identically.
  ASSERT_EQ(after.result.num_queries(), before.result.num_queries());
  for (std::size_t q = 0; q < after.result.num_queries(); ++q) {
    EXPECT_EQ(after.result.count(q), before.result.count(q)) << q;
  }
  // And a fresh request on the healed service too.
  EXPECT_NO_THROW((void)service.query(cloud, queries_, knn_params()));
}

TEST_F(ChaosTest, HealthSnapshotOnAQuietService) {
  SearchService service;  // watchdog off: liveness still reported
  CloudHandle cloud = service.register_cloud("chaos", points_, {});
  (void)service.query(cloud, queries_, knn_params());
  const ServiceHealth health = service.health();
  EXPECT_TRUE(health.healthy());
  EXPECT_TRUE(health.dispatcher_alive);
  EXPECT_FALSE(health.writer_stalled);
  EXPECT_EQ(health.dispatcher_restarts, 0u);
  EXPECT_EQ(health.queue_depth, 0u);
  EXPECT_EQ(health.pending_requests, 0u);
}

TEST_F(ChaosTest, WedgedWriterSurfacesInHealth) {
  SearchService service(watched_config(/*stall_timeout=*/40ms));
  CloudHandle cloud = service.register_cloud("chaos", points_, {});

  FailConfig config;
  config.action = Action::kDelay;
  config.delay = 300ms;
  config.max_fires = 1;
  ScopedFailpoint fp("service.publish", config);
  std::vector<Vec3> moved = points_;
  for (Vec3& p : moved) p.y += 0.05f;
  std::thread writer([&] { service.update_points(cloud, moved); });

  bool observed_stall = false;
  const auto until = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < until) {
    if (service.health().writer_stalled) {
      observed_stall = true;
      break;
    }
    std::this_thread::sleep_for(10ms);
  }
  writer.join();
  EXPECT_TRUE(observed_stall) << "a wedged writer must show in health()";
  EXPECT_FALSE(service.health().writer_stalled) << "and clear once it returns";
  // Readers were never blocked by the wedged writer.
  EXPECT_NO_THROW((void)service.query(cloud, queries_, knn_params()));
}

// --- Seeded chaos soak -------------------------------------------------------

TEST_F(ChaosTest, SeededShardChaosSoakResolvesEveryTicketWithExactBookkeeping) {
  SearchService service;
  CloudHandle a = service.register_cloud(
      "tenant_a", points_, sharded_cloud_config(/*attempts=*/2, /*degraded=*/true));
  const std::vector<Vec3> other = make_cloud(CloudKind::kUniform, kCloudSize, kSeed + 5);
  CloudHandle b = service.register_cloud(
      "tenant_b", other, sharded_cloud_config(/*attempts=*/1, /*degraded=*/false));

  FailConfig config;
  config.probability = 0.25;
  config.seed = 20260809;  // deterministic schedule: reruns replay exactly
  ScopedFailpoint fp("sharded.shard_search", config);

  constexpr int kRequests = 40;
  std::vector<SearchService::Ticket> tickets;
  tickets.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    tickets.push_back(service.submit(i % 2 == 0 ? a : b, queries_, knn_params(),
                                     RequestOptions::within(30s)));
  }
  std::size_t served = 0, degraded = 0, backend_failures = 0;
  for (SearchService::Ticket& ticket : tickets) {
    try {
      const RequestOutcome outcome = ticket.get();
      ++served;
      if (outcome.degraded) ++degraded;
    } catch (const ServiceError& e) {
      EXPECT_EQ(e.reason(), RejectReason::kBackend);
      ++backend_failures;
    }
  }
  // Every ticket resolved, one way or the other.
  EXPECT_EQ(served + backend_failures, static_cast<std::size_t>(kRequests));
  EXPECT_GT(fp.fires(), 0u) << "the soak must actually have injected faults";

  // Exact bookkeeping across the chaos: nothing pending, nothing leaked.
  const ServiceHealth health = service.health();
  EXPECT_EQ(health.pending_requests, 0u);
  EXPECT_EQ(health.queue_depth, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.degraded, degraded);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.deadline_misses, 0u);
}

TEST_F(ChaosTest, SeededTickChaosWithWatchdogResolvesEverything) {
  SearchService service(watched_config(/*stall_timeout=*/50ms));
  CloudHandle cloud = service.register_cloud("chaos", points_, {});

  // Short probabilistic wedges around the stall threshold: some ticks
  // stall long enough to trip the watchdog, some don't.
  FailConfig config;
  config.action = Action::kDelay;
  config.delay = 90ms;
  config.probability = 0.3;
  config.seed = 7;
  ScopedFailpoint fp("service.dispatch.tick", config);

  constexpr int kRequests = 12;
  std::vector<SearchService::Ticket> tickets;
  tickets.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    tickets.push_back(service.submit(cloud, queries_, knn_params()));
    std::this_thread::sleep_for(5ms);
  }
  for (SearchService::Ticket& ticket : tickets) {
    EXPECT_NO_THROW((void)ticket.get());  // no deadline, no drop: all serve
  }
  EXPECT_EQ(service.health().pending_requests, 0u);
  EXPECT_EQ(service.stats().requests, static_cast<std::uint64_t>(kRequests));
}
