#include "core/knn_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/flat_knn.hpp"
#include "core/neighbor_result.hpp"
#include "core/rng.hpp"

namespace rtnn {
namespace {

TEST(KnnHeap, KeepsKSmallest) {
  KnnHeap heap(3);
  for (float d : {9.0f, 1.0f, 5.0f, 3.0f, 7.0f, 2.0f}) {
    heap.push(d, static_cast<std::uint32_t>(d));
  }
  EXPECT_TRUE(heap.full());
  auto sorted = heap.extract_sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_FLOAT_EQ(sorted[0].dist2, 1.0f);
  EXPECT_FLOAT_EQ(sorted[1].dist2, 2.0f);
  EXPECT_FLOAT_EQ(sorted[2].dist2, 3.0f);
}

TEST(KnnHeap, WorstDistIsInfinityUntilFull) {
  KnnHeap heap(2);
  EXPECT_EQ(heap.worst_dist2(), std::numeric_limits<float>::infinity());
  heap.push(1.0f, 0);
  EXPECT_EQ(heap.worst_dist2(), std::numeric_limits<float>::infinity());
  heap.push(2.0f, 1);
  EXPECT_FLOAT_EQ(heap.worst_dist2(), 2.0f);
}

TEST(KnnHeap, RejectsWorseThanCurrentWorst) {
  KnnHeap heap(2);
  heap.push(1.0f, 0);
  heap.push(2.0f, 1);
  EXPECT_FALSE(heap.push(3.0f, 2));
  EXPECT_TRUE(heap.push(0.5f, 3));
  EXPECT_FLOAT_EQ(heap.worst_dist2(), 1.0f);
}

TEST(KnnHeap, MatchesPartialSortOnRandomData) {
  Pcg32 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t k = 1 + rng.next_bounded(16);
    const std::size_t n = 1 + rng.next_bounded(500);
    std::vector<float> dists(n);
    for (auto& d : dists) d = rng.next_float();

    KnnHeap heap(k);
    for (std::size_t i = 0; i < n; ++i) {
      heap.push(dists[i], static_cast<std::uint32_t>(i));
    }
    auto sorted_dists = dists;
    std::sort(sorted_dists.begin(), sorted_dists.end());
    const auto result = heap.extract_sorted();
    ASSERT_EQ(result.size(), std::min<std::size_t>(k, n));
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_FLOAT_EQ(result[i].dist2, sorted_dists[i]);
    }
  }
}

TEST(KnnHeap, ClearResets) {
  KnnHeap heap(2);
  heap.push(1.0f, 0);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.worst_dist2(), std::numeric_limits<float>::infinity());
}

TEST(KnnHeap, RejectsZeroK) {
  EXPECT_THROW(KnnHeap(0), Error);
}

TEST(FlatKnnHeaps, IndependentRows) {
  FlatKnnHeaps heaps(3, 2);
  heaps.push(0, 1.0f, 10);
  heaps.push(1, 5.0f, 20);
  heaps.push(1, 2.0f, 21);
  heaps.push(1, 1.0f, 22);  // evicts 5.0
  EXPECT_EQ(heaps.size(0), 1u);
  EXPECT_EQ(heaps.size(1), 2u);
  EXPECT_EQ(heaps.size(2), 0u);
  EXPECT_FLOAT_EQ(heaps.worst_dist2(1), 2.0f);
}

TEST(FlatKnnHeaps, ExtractSortsAscending) {
  FlatKnnHeaps heaps(1, 4);
  heaps.push(0, 4.0f, 4);
  heaps.push(0, 1.0f, 1);
  heaps.push(0, 3.0f, 3);
  heaps.push(0, 2.0f, 2);
  NeighborResult result = heaps.extract();
  const auto row = result.neighbors(0);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], 1u);
  EXPECT_EQ(row[1], 2u);
  EXPECT_EQ(row[2], 3u);
  EXPECT_EQ(row[3], 4u);
}

TEST(FlatKnnHeaps, MatchesKnnHeapOnRandomData) {
  Pcg32 rng(1234);
  const std::size_t queries = 50;
  const std::uint32_t k = 8;
  FlatKnnHeaps flat(queries, k);
  std::vector<KnnHeap> reference(queries, KnnHeap(k));
  for (int i = 0; i < 5000; ++i) {
    const std::size_t q = rng.next_bounded(queries);
    const float d = rng.next_float();
    const std::uint32_t idx = rng.next_u32() % 100000;
    flat.push(q, d, idx);
    reference[q].push(d, idx);
  }
  for (std::size_t q = 0; q < queries; ++q) {
    auto expected = reference[q].extract_sorted();
    EXPECT_EQ(flat.size(q), expected.size());
    if (!expected.empty() && expected.size() == k) {
      EXPECT_FLOAT_EQ(flat.worst_dist2(q), expected.back().dist2);
    }
  }
}

TEST(NeighborResultContainer, RecordAndBounds) {
  NeighborResult result(2, 3);
  EXPECT_EQ(result.record(0, 7), 1u);
  EXPECT_EQ(result.record(0, 8), 2u);
  EXPECT_EQ(result.record(0, 9), 3u);
  EXPECT_EQ(result.record(0, 10), 3u);  // full: ignored
  EXPECT_EQ(result.count(0), 3u);
  EXPECT_EQ(result.count(1), 0u);
  const auto row = result.neighbors(0);
  EXPECT_EQ(row[0], 7u);
  EXPECT_EQ(row[2], 9u);
  EXPECT_EQ(result.total_neighbors(), 3u);
}

TEST(NeighborResultContainer, CountOnlyMode) {
  NeighborResult result(4, 2, /*store_indices=*/false);
  result.record(1, 5);
  EXPECT_EQ(result.count(1), 1u);
  EXPECT_THROW(result.neighbors(1), Error);
}

}  // namespace
}  // namespace rtnn
