// The deterministic fault-injection framework (core/failpoint.hpp):
// arming/disarming, the firing rules (every-hit, Nth-hit, seeded
// probability, max_fires), the three actions, counter semantics, and the
// RAII scope. The chaos suite (tests/test_chaos.cpp) exercises the sites
// compiled into the serving stack; this suite pins down the registry
// itself on a synthetic site.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.hpp"

using namespace rtnn;
using fail::Action;
using fail::FailConfig;
using fail::FailpointRegistry;
using fail::InjectedFault;
using fail::ScopedFailpoint;

namespace {

/// A synthetic site: evaluating through the macro exactly as production
/// code does keeps the test honest about the call path.
void hit_site(const char* name = "test.site") { RTNN_FAILPOINT(name); }

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }
};

}  // namespace

TEST_F(FailpointTest, UnarmedSiteIsANoop) {
  EXPECT_NO_THROW(hit_site());
  EXPECT_EQ(FailpointRegistry::instance().hits("test.site"), 0u);
  EXPECT_EQ(FailpointRegistry::instance().fires("test.site"), 0u);
}

TEST_F(FailpointTest, ArmedThrowFiresEveryHit) {
  ScopedFailpoint fp("test.site", {});  // defaults: kThrow, p=1.0
  EXPECT_THROW(hit_site(), InjectedFault);
  EXPECT_THROW(hit_site(), InjectedFault);
  EXPECT_EQ(fp.hits(), 2u);
  EXPECT_EQ(fp.fires(), 2u);
}

TEST_F(FailpointTest, InjectedFaultIsAnRtnnError) {
  ScopedFailpoint fp("test.site", {});
  // Recovery paths catch rtnn::Error (or std::exception); an injected
  // fault must flow through them like a real failure.
  EXPECT_THROW(hit_site(), Error);
  try {
    hit_site();
    FAIL() << "expected a throw";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("test.site"), std::string::npos);
  }
}

TEST_F(FailpointTest, MessageAppendsToTheFault) {
  FailConfig config;
  config.message = "shard disk gone";
  ScopedFailpoint fp("test.site", config);
  try {
    hit_site();
    FAIL() << "expected a throw";
  } catch (const InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("shard disk gone"), std::string::npos);
  }
}

TEST_F(FailpointTest, DisarmStopsFiring) {
  FailpointRegistry::instance().arm("test.site", {});
  EXPECT_THROW(hit_site(), InjectedFault);
  FailpointRegistry::instance().disarm("test.site");
  EXPECT_NO_THROW(hit_site());
  // Counters of a disarmed site are gone (unknown name = 0).
  EXPECT_EQ(FailpointRegistry::instance().hits("test.site"), 0u);
}

TEST_F(FailpointTest, OnlyTheNamedSiteFires) {
  ScopedFailpoint fp("test.site", {});
  EXPECT_NO_THROW(hit_site("test.other"));
  EXPECT_THROW(hit_site("test.site"), InjectedFault);
}

TEST_F(FailpointTest, FireOnNthHitIsExact) {
  FailConfig config;
  config.fire_on_hit = 3;
  ScopedFailpoint fp("test.site", config);
  EXPECT_NO_THROW(hit_site());
  EXPECT_NO_THROW(hit_site());
  EXPECT_THROW(hit_site(), InjectedFault);  // exactly the 3rd
  EXPECT_NO_THROW(hit_site());              // and only the 3rd
  EXPECT_EQ(fp.hits(), 4u);
  EXPECT_EQ(fp.fires(), 1u);
}

TEST_F(FailpointTest, MaxFiresThenHeals) {
  FailConfig config;
  config.max_fires = 2;
  ScopedFailpoint fp("test.site", config);
  EXPECT_THROW(hit_site(), InjectedFault);
  EXPECT_THROW(hit_site(), InjectedFault);
  for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(hit_site());
  EXPECT_EQ(fp.fires(), 2u);
  EXPECT_EQ(fp.hits(), 7u);
}

TEST_F(FailpointTest, SeededProbabilityIsDeterministic) {
  const auto schedule = [](std::uint64_t seed) {
    FailConfig config;
    config.probability = 0.5;
    config.seed = seed;
    ScopedFailpoint fp("test.site", config);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      try {
        hit_site();
        fired.push_back(false);
      } catch (const InjectedFault&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const std::vector<bool> a = schedule(42);
  const std::vector<bool> b = schedule(42);
  const std::vector<bool> c = schedule(1337);
  EXPECT_EQ(a, b) << "same seed, same firing schedule";
  EXPECT_NE(a, c) << "different seed, different schedule";
  // p=0.5 over 64 hits: some fire, some don't (astronomically unlikely
  // to be all-or-nothing with a sane generator).
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFires) {
  FailConfig config;
  config.probability = 0.0;
  ScopedFailpoint fp("test.site", config);
  for (int i = 0; i < 32; ++i) EXPECT_NO_THROW(hit_site());
  EXPECT_EQ(fp.hits(), 32u);
  EXPECT_EQ(fp.fires(), 0u);
}

TEST_F(FailpointTest, DelayActionSleepsThenContinues) {
  FailConfig config;
  config.action = Action::kDelay;
  config.delay = std::chrono::milliseconds(30);
  ScopedFailpoint fp("test.site", config);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(hit_site());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(30));
  EXPECT_EQ(fp.fires(), 1u);
}

TEST_F(FailpointTest, AllocFailThrowsBadAlloc) {
  FailConfig config;
  config.action = Action::kAllocFail;
  ScopedFailpoint fp("test.site", config);
  EXPECT_THROW(hit_site(), std::bad_alloc);
}

TEST_F(FailpointTest, RearmResetsCountersAndConfig) {
  FailpointRegistry::instance().arm("test.site", {});
  EXPECT_THROW(hit_site(), InjectedFault);
  EXPECT_EQ(FailpointRegistry::instance().fires("test.site"), 1u);

  FailConfig healed;
  healed.probability = 0.0;
  FailpointRegistry::instance().arm("test.site", healed);
  EXPECT_NO_THROW(hit_site());
  EXPECT_EQ(FailpointRegistry::instance().hits("test.site"), 1u)
      << "re-arm resets counters";
  EXPECT_EQ(FailpointRegistry::instance().fires("test.site"), 0u);
  FailpointRegistry::instance().disarm("test.site");
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnUnwind) {
  try {
    ScopedFailpoint fp("test.site", {});
    hit_site();  // throws out of the scope
    FAIL() << "expected a throw";
  } catch (const InjectedFault&) {
  }
  EXPECT_NO_THROW(hit_site()) << "the scope must disarm during unwind";
}

TEST_F(FailpointTest, ArmValidatesItsConfig) {
  EXPECT_THROW(FailpointRegistry::instance().arm("", {}), Error);
  FailConfig bad;
  bad.probability = 1.5;
  EXPECT_THROW(FailpointRegistry::instance().arm("test.site", bad), Error);
  bad.probability = -0.1;
  EXPECT_THROW(FailpointRegistry::instance().arm("test.site", bad), Error);
}

TEST_F(FailpointTest, ConcurrentEvaluationIsSafe) {
  // Half the hits fire; four threads hammer the same site. Counters must
  // account every hit exactly (the decision runs under the registry
  // lock), and nothing races or deadlocks.
  FailConfig config;
  config.probability = 0.5;
  config.seed = 7;
  ScopedFailpoint fp("test.site", config);
  constexpr int kThreads = 4;
  constexpr int kHitsPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        try {
          hit_site();
        } catch (const InjectedFault&) {
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(fp.hits(), static_cast<std::uint64_t>(kThreads * kHitsPerThread));
  EXPECT_GT(fp.fires(), 0u);
  EXPECT_LT(fp.fires(), fp.hits());
}
