// The coherence-aware batch optimizer (rtnn/batch_optimizer.hpp):
// batch_key() as the one definition of "batchable", key-homogeneous
// binning with per-bin caps, Morton reorder as a pure permutation,
// coincident dedup under the bitwise exactness guard, and the
// permutation-aware split_batch_result scatter — including its
// empty-request / zero-query / single-request edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "rtnn/batch_optimizer.hpp"
#include "rtnn/neighbor_search.hpp"
#include "test_util.hpp"

using namespace rtnn;
using rtnn::testing::CloudKind;
using rtnn::testing::make_cloud;
using rtnn::testing::typical_radius;

namespace {

constexpr std::uint64_t kSeed = 417;

SearchParams knn_params(float radius, std::uint32_t k = 8) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = radius;
  params.k = k;
  params.opts = OptimizationFlags::none();
  return params;
}

/// rep_rows restricted to representatives must hit every result row; a
/// no-dedup bin must be a plain permutation of [0, n).
void expect_valid_rep_map(const BatchBin& bin) {
  ASSERT_EQ(bin.rep_rows.size(), bin.merged_queries);
  ASSERT_EQ(bin.queries.size(), bin.merged_queries - bin.deduped);
  std::vector<bool> hit(bin.queries.size(), false);
  for (const std::uint32_t rep : bin.rep_rows) {
    ASSERT_LT(rep, bin.queries.size());
    hit[rep] = true;
  }
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](bool h) { return h; }))
      << "every representative must answer at least one merged row";
}

/// Scatters the bin through a real search and checks each member request
/// against its solo search — the optimizer's exactness contract.
void expect_bin_exact(const BatchBin& bin, std::span<const BatchRequest> requests,
                      const std::vector<Vec3>& cloud) {
  NeighborSearch search;
  search.set_points(cloud);
  const NeighborResult rep_result = search.search(bin.queries, bin.params);
  const std::vector<NeighborResult> parts = bin.scatter(rep_result);
  ASSERT_EQ(parts.size(), bin.request_ids.size());
  for (std::size_t i = 0; i < bin.request_ids.size(); ++i) {
    const BatchRequest& request = requests[bin.request_ids[i]];
    NeighborSearch solo;
    solo.set_points(cloud);
    const NeighborResult expected = solo.search(request.queries, request.params);
    rtnn::testing::expect_knn_identical(cloud, request.queries, parts[i], expected,
                                        "request " + std::to_string(bin.request_ids[i]));
  }
}

}  // namespace

// --- SearchParams::batch_key -------------------------------------------------

TEST(BatchKey, AnswerShapingFieldsSeparate) {
  const SearchParams base = knn_params(0.1f);
  EXPECT_TRUE(base.batch_key() == base.batch_key());

  auto differs = [&](auto&& mutate) {
    SearchParams other = base;
    mutate(other);
    return !(other.batch_key() == base.batch_key());
  };
  EXPECT_TRUE(differs([](SearchParams& p) { p.mode = SearchMode::kRange; }));
  EXPECT_TRUE(differs([](SearchParams& p) { p.radius *= 2.0f; }));
  EXPECT_TRUE(differs([](SearchParams& p) { p.k += 1; }));
  EXPECT_TRUE(differs([](SearchParams& p) { p.store_indices = false; }));
  EXPECT_TRUE(differs([](SearchParams& p) { p.conservative_knn_aabb = true; }));
  EXPECT_TRUE(differs([](SearchParams& p) { p.aabb_scale = 0.5f; }));
  SearchParams elide = base;
  elide.mode = SearchMode::kRange;
  SearchParams elide_on = elide;
  elide_on.elide_sphere_test = true;
  EXPECT_FALSE(elide.batch_key() == elide_on.batch_key());
}

TEST(BatchKey, PipelineShapingFieldsDoNot) {
  const SearchParams base = knn_params(0.1f);
  auto same = [&](auto&& mutate) {
    SearchParams other = base;
    mutate(other);
    return other.batch_key() == base.batch_key();
  };
  // Exactness-preserving knobs must not split a bin: they change how the
  // pipeline runs, never what it returns.
  EXPECT_TRUE(same([](SearchParams& p) { p.opts = OptimizationFlags::all(); }));
  EXPECT_TRUE(same([](SearchParams& p) { p.opts = OptimizationFlags::scheduling_only(); }));
  EXPECT_TRUE(same([](SearchParams& p) { p.simt_launches = true; }));
  EXPECT_TRUE(same([](SearchParams& p) { p.max_grid_cells = 512; }));
}

// --- Binning -----------------------------------------------------------------

TEST(BatchOptimizer, BinsByKeyInFirstArrivalOrder) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 600, kSeed);
  const SearchParams near = knn_params(typical_radius(CloudKind::kUniform));
  SearchParams far = near;
  far.radius *= 2.0f;
  SearchParams near_pipelined = near;  // same key as `near`
  near_pipelined.opts = OptimizationFlags::all();

  const std::vector<BatchRequest> requests{
      {std::span<const Vec3>(cloud.data(), 10), near},
      {std::span<const Vec3>(cloud.data() + 50, 20), far},
      {std::span<const Vec3>(cloud.data() + 100, 30), near_pipelined},
      {std::span<const Vec3>(cloud.data() + 200, 5), far},
  };
  const BatchPlan plan = optimize_batch(requests);
  ASSERT_EQ(plan.bins.size(), 2u);  // two distinct keys, not four groups
  EXPECT_EQ(plan.bins[0].request_ids, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(plan.bins[1].request_ids, (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(plan.bins[0].merged_queries, 40u);
  EXPECT_EQ(plan.bins[1].merged_queries, 25u);
  // The bin adopts the first member's params (key fields are shared).
  EXPECT_FLOAT_EQ(plan.bins[1].params.radius, far.radius);
  // Slices address the merged bin rows contiguously in member order.
  EXPECT_EQ(plan.bins[0].slices[0].first, 0u);
  EXPECT_EQ(plan.bins[0].slices[1].first, 10u);
  EXPECT_EQ(plan.bins[0].slices[1].count, 30u);
}

TEST(BatchOptimizer, PerBinCapOpensAFreshBin) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 200, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  std::vector<BatchRequest> requests;
  for (int r = 0; r < 3; ++r) {
    requests.push_back({std::span<const Vec3>(cloud.data() + 40 * r, 15), params});
  }
  // An oversized request still gets a bin of its own rather than splitting.
  requests.push_back({std::span<const Vec3>(cloud.data(), 50), params});

  BatchOptimizerOptions options;
  options.max_bin_queries = 20;
  const BatchPlan plan = optimize_batch(requests, options);
  ASSERT_EQ(plan.bins.size(), 4u);
  EXPECT_EQ(plan.bins[0].merged_queries, 15u);
  EXPECT_EQ(plan.bins[1].merged_queries, 15u);
  EXPECT_EQ(plan.bins[2].merged_queries, 15u);
  EXPECT_EQ(plan.bins[3].merged_queries, 50u);
}

TEST(BatchOptimizer, ZeroCapMeansUnbounded) {
  // max_bin_queries = 0 is the documented "unbounded" contract (shared by
  // BatchOptimizerOptions, CloudConfig, and the deprecated ServiceOptions):
  // no bin ever closes early, however many rows pile onto one key.
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 800, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  std::vector<BatchRequest> requests;
  std::size_t total_rows = 0;
  for (int r = 0; r < 16; ++r) {
    const std::size_t size = 30 + static_cast<std::size_t>(r);
    requests.push_back({std::span<const Vec3>(cloud.data() + 20 * r, size), params});
    total_rows += size;
  }

  BatchOptimizerOptions options;
  options.max_bin_queries = 0;
  const BatchPlan plan = optimize_batch(requests, options);
  ASSERT_EQ(plan.bins.size(), 1u);  // one key, one bin — never split
  EXPECT_EQ(plan.bins[0].merged_queries, total_rows);
  EXPECT_EQ(plan.bins[0].request_ids.size(), requests.size());
  expect_valid_rep_map(plan.bins[0]);

  // Sanity: the same stream under a finite cap does split, so the zero
  // really is the unbounded sentinel and not a tiny cap.
  options.max_bin_queries = 64;
  EXPECT_GT(optimize_batch(requests, options).bins.size(), 1u);
}

// --- Reorder -----------------------------------------------------------------

TEST(BatchOptimizer, ReorderIsAPermutationAndStaysExact) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 800, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  // Disjoint windows: no coincident rows, so dedup must find nothing and
  // the reorder is a pure permutation.
  const std::vector<BatchRequest> requests{
      {std::span<const Vec3>(cloud.data(), 40), params},
      {std::span<const Vec3>(cloud.data() + 300, 25), params},
      {std::span<const Vec3>(cloud.data() + 600, 33), params},
  };
  const BatchPlan plan = optimize_batch(requests);
  ASSERT_EQ(plan.bins.size(), 1u);
  const BatchBin& bin = plan.bins[0];
  EXPECT_EQ(bin.deduped, 0u);
  EXPECT_EQ(plan.deduped, 0u);
  expect_valid_rep_map(bin);
  // A permutation: every result row answers exactly one merged row.
  std::vector<std::uint32_t> sorted = bin.rep_rows;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint32_t> iota(bin.merged_queries);
  std::iota(iota.begin(), iota.end(), 0u);
  EXPECT_EQ(sorted, iota);
  expect_bin_exact(bin, requests, cloud);
}

TEST(BatchOptimizer, ReorderOffKeepsArrivalOrder) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 300, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  const std::vector<BatchRequest> requests{
      {std::span<const Vec3>(cloud.data(), 12), params},
      {std::span<const Vec3>(cloud.data() + 100, 7), params},
  };
  BatchOptimizerOptions options;
  options.reorder = false;
  options.dedup = false;
  const BatchPlan plan = optimize_batch(requests, options);
  ASSERT_EQ(plan.bins.size(), 1u);
  const BatchBin& bin = plan.bins[0];
  // Identity mapping: arrival-order concatenation untouched.
  for (std::size_t row = 0; row < bin.merged_queries; ++row) {
    EXPECT_EQ(bin.rep_rows[row], row);
  }
  EXPECT_EQ(bin.queries[0].x, cloud[0].x);
  EXPECT_EQ(bin.queries[12].x, cloud[100].x);
}

// --- Dedup -------------------------------------------------------------------

TEST(BatchOptimizer, DedupsCoincidentRowsAcrossRequests) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 400, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  // Overlapping windows of one cloud: rows [20, 50) are submitted twice,
  // bitwise-identically; plus one request that is an exact copy of another.
  const std::vector<BatchRequest> requests{
      {std::span<const Vec3>(cloud.data(), 50), params},
      {std::span<const Vec3>(cloud.data() + 20, 50), params},
      {std::span<const Vec3>(cloud.data(), 50), params},
  };
  const BatchPlan plan = optimize_batch(requests);
  ASSERT_EQ(plan.bins.size(), 1u);
  const BatchBin& bin = plan.bins[0];
  EXPECT_EQ(bin.merged_queries, 150u);
  // 70 distinct rows ([0, 70)); the other 80 alias a representative.
  EXPECT_EQ(bin.queries.size(), 70u);
  EXPECT_EQ(bin.deduped, 80u);
  expect_valid_rep_map(bin);
  expect_bin_exact(bin, requests, cloud);
}

TEST(BatchOptimizer, NearButNotCoincidentRowsAreNotDeduped) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 200, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  // Jitter far below the dedup cell width: same cell, different bits —
  // the exactness guard must keep every row its own representative.
  std::vector<Vec3> jittered(cloud.begin(), cloud.begin() + 30);
  for (Vec3& p : jittered) p.x += 1e-6f;
  const std::vector<BatchRequest> requests{
      {std::span<const Vec3>(cloud.data(), 30), params},
      {jittered, params},
  };
  BatchOptimizerOptions options;
  options.dedup_cell_scale = 4.0f;  // coarse cells: everything collides
  const BatchPlan plan = optimize_batch(requests, options);
  ASSERT_EQ(plan.bins.size(), 1u);
  EXPECT_EQ(plan.bins[0].deduped, 0u);
  EXPECT_EQ(plan.bins[0].queries.size(), 60u);
  expect_bin_exact(plan.bins[0], requests, cloud);
}

TEST(BatchOptimizer, AllRowsCoincidentCollapseToOneRepresentative) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 100, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  const std::vector<Vec3> same(64, cloud[7]);
  const std::vector<BatchRequest> requests{{same, params}, {same, params}};
  const BatchPlan plan = optimize_batch(requests);
  ASSERT_EQ(plan.bins.size(), 1u);
  EXPECT_EQ(plan.bins[0].queries.size(), 1u);
  EXPECT_EQ(plan.bins[0].deduped, 127u);
  expect_bin_exact(plan.bins[0], requests, cloud);
}

// --- Edge cases --------------------------------------------------------------

TEST(BatchOptimizer, EmptyInputAndZeroRowRequests) {
  EXPECT_TRUE(optimize_batch({}).bins.empty());

  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 100, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  const std::vector<BatchRequest> requests{
      {std::span<const Vec3>{}, params},
      {std::span<const Vec3>(cloud.data(), 9), params},
  };
  const BatchPlan plan = optimize_batch(requests);
  ASSERT_EQ(plan.bins.size(), 1u);
  const BatchBin& bin = plan.bins[0];
  ASSERT_EQ(bin.slices.size(), 2u);
  EXPECT_EQ(bin.slices[0].count, 0u);
  EXPECT_EQ(bin.merged_queries, 9u);

  NeighborSearch search;
  search.set_points(cloud);
  const NeighborResult rep_result = search.search(bin.queries, bin.params);
  const std::vector<NeighborResult> parts = bin.scatter(rep_result);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].num_queries(), 0u);  // the empty request's empty result
  EXPECT_EQ(parts[1].num_queries(), 9u);
}

// --- split_batch_result edges (identity and row-mapped) ----------------------

TEST(SplitBatchResult, SingleRequestBatchIsTheWholeResult) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 300, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  NeighborSearch search;
  search.set_points(cloud);
  const std::span<const Vec3> queries(cloud.data(), 24);
  const NeighborResult batch = search.search(queries, params);
  const std::vector<BatchSlice> slices{{0, 24}};
  const auto parts = split_batch_result(batch, slices);
  ASSERT_EQ(parts.size(), 1u);
  rtnn::testing::expect_knn_identical(cloud, queries, parts[0], batch, "single");
}

TEST(SplitBatchResult, ZeroQuerySlices) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 300, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  NeighborSearch search;
  search.set_points(cloud);
  const NeighborResult batch = search.search(std::span<const Vec3>(cloud.data(), 8), params);
  // An empty batch slice set, a zero-count slice, and a trailing empty
  // request all produce well-formed (empty) results.
  EXPECT_TRUE(split_batch_result(batch, {}).empty());
  const std::vector<BatchSlice> slices{{0, 0}, {0, 8}, {8, 0}};
  const auto parts = split_batch_result(batch, slices);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0].num_queries(), 0u);
  EXPECT_EQ(parts[1].num_queries(), 8u);
  EXPECT_EQ(parts[2].num_queries(), 0u);
}

TEST(SplitBatchResult, RowMappedFanOut) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 300, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  NeighborSearch search;
  search.set_points(cloud);
  const NeighborResult batch = search.search(std::span<const Vec3>(cloud.data(), 4), params);
  // Six merged rows answered by four result rows: rows 1 and 4 alias
  // representatives 2 and 0 (the dedup fan-out shape).
  const std::vector<std::uint32_t> rows{0, 2, 1, 2, 0, 3};
  const std::vector<BatchSlice> slices{{0, 3}, {3, 3}};
  const auto parts = split_batch_result(batch, slices, rows);
  ASSERT_EQ(parts.size(), 2u);
  for (std::size_t i = 0; i < slices.size(); ++i) {
    for (std::size_t q = 0; q < slices[i].count; ++q) {
      const std::size_t row = rows[slices[i].first + q];
      ASSERT_EQ(parts[i].count(q), batch.count(row));
      const auto got = parts[i].neighbors(q);
      const auto want = batch.neighbors(row);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
    }
  }
}

TEST(SplitBatchResult, RowMapBeyondBatchThrows) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 100, kSeed);
  NeighborSearch search;
  search.set_points(cloud);
  const NeighborResult batch =
      search.search(std::span<const Vec3>(cloud.data(), 4),
                    knn_params(typical_radius(CloudKind::kUniform)));
  const std::vector<BatchSlice> slices{{0, 2}};
  EXPECT_THROW(split_batch_result(batch, slices, std::vector<std::uint32_t>{0, 9}), Error);
  EXPECT_THROW(split_batch_result(batch, slices, std::vector<std::uint32_t>{0}), Error);
}
