#include "rtnn/partitioner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/rng.hpp"
#include "datasets/point_cloud.hpp"
#include "test_util.hpp"

namespace rtnn {
namespace {

constexpr float kSqrt3 = 1.7320508f;

struct PartitionerFixture : ::testing::Test {
  void init(testing::CloudKind kind, std::size_t n, float radius, std::uint32_t k,
            SearchMode mode = SearchMode::kKnn) {
    points = testing::make_cloud(kind, n, 5);
    queries = data::jittered_queries(points, 1000, radius * 0.2f, 6);
    params.mode = mode;
    params.radius = radius;
    params.k = k;
    params.max_grid_cells = 1 << 18;
    grid.build(points, params.max_grid_cells);
    order.resize(queries.size());
    std::iota(order.begin(), order.end(), 0u);
  }

  std::vector<Vec3> points;
  std::vector<Vec3> queries;
  SearchParams params;
  GridIndex grid;
  std::vector<std::uint32_t> order;
};

TEST_F(PartitionerFixture, EveryQueryInExactlyOnePartition) {
  init(testing::CloudKind::kUniform, 8000, 0.08f, 8);
  const PartitionSet set = partition_queries(grid, queries, order, params);
  std::set<std::uint32_t> seen;
  std::size_t total = 0;
  for (const Partition& p : set.partitions) {
    total += p.query_ids.size();
    for (const std::uint32_t q : p.query_ids) {
      EXPECT_TRUE(seen.insert(q).second) << "query in two partitions";
    }
  }
  EXPECT_EQ(total, queries.size());
}

TEST_F(PartitionerFixture, MegacellWidthsAreOddCellMultiples) {
  init(testing::CloudKind::kUniform, 8000, 0.08f, 8);
  const PartitionSet set = partition_queries(grid, queries, order, params);
  for (const Partition& p : set.partitions) {
    const float expected = (2.0f * static_cast<float>(p.steps) + 1.0f) * set.cell_size;
    EXPECT_FLOAT_EQ(p.megacell_width, expected);
  }
}

TEST_F(PartitionerFixture, AabbWidthsNeverExceedBaseline) {
  // 2r is the naive width; partitioning exists to shrink it (section 5.1).
  for (const SearchMode mode : {SearchMode::kRange, SearchMode::kKnn}) {
    init(testing::CloudKind::kUniform, 8000, 0.08f, 8, mode);
    const PartitionSet set = partition_queries(grid, queries, order, params);
    for (const Partition& p : set.partitions) {
      EXPECT_LE(p.aabb_width, 2.0f * params.radius * (1.0f + 1e-5f));
      EXPECT_GT(p.aabb_width, 0.0f);
    }
  }
}

TEST_F(PartitionerFixture, RangeSkipSphereTestImpliesContainment) {
  // Dense configuration (small K, fine grid) so small megacells that fit
  // strictly inside the sphere actually occur.
  init(testing::CloudKind::kUniform, 30000, 0.08f, 4, SearchMode::kRange);
  params.max_grid_cells = 1 << 21;
  grid.build(points, params.max_grid_cells);
  const PartitionSet set = partition_queries(grid, queries, order, params);
  bool any_skip = false;
  for (const Partition& p : set.partitions) {
    if (p.skip_sphere_test) {
      any_skip = true;
      // The guarantee: a point whose AABB contains the query is within r.
      EXPECT_LE(p.aabb_width * kSqrt3 * 0.5f, params.radius * (1.0f + 1e-5f));
    }
  }
  // Dense uniform cloud with K=8: small megacells dominate, so the
  // fast path must actually engage.
  EXPECT_TRUE(any_skip);
}

TEST_F(PartitionerFixture, KnnNeverSkipsSphereTest) {
  init(testing::CloudKind::kUniform, 8000, 0.08f, 8, SearchMode::kKnn);
  const PartitionSet set = partition_queries(grid, queries, order, params);
  for (const Partition& p : set.partitions) {
    EXPECT_FALSE(p.skip_sphere_test);
  }
}

TEST_F(PartitionerFixture, SparseRegionsHitSphereLimit) {
  // Tiny radius: megacells cannot reach K points, so queries land in the
  // hit-limit partition with the fallback width 2r.
  init(testing::CloudKind::kUniform, 2000, 0.004f, 64, SearchMode::kKnn);
  const PartitionSet set = partition_queries(grid, queries, order, params);
  ASSERT_FALSE(set.partitions.empty());
  bool any_limit = false;
  for (const Partition& p : set.partitions) {
    if (p.hit_sphere_limit) {
      any_limit = true;
      EXPECT_FLOAT_EQ(p.aabb_width, 2.0f * params.radius);
    }
  }
  EXPECT_TRUE(any_limit);
}

TEST_F(PartitionerFixture, ClusteredDataProducesMorePartitions) {
  // The paper's NBody observation: non-uniform density ⇒ queries need
  // different megacell sizes ⇒ many partitions (Figures 12/13).
  init(testing::CloudKind::kUniform, 20000, 0.3f, 16);
  const std::size_t uniform_parts =
      partition_queries(grid, queries, order, params).partitions.size();

  init(testing::CloudKind::kNBody, 20000, 2.0f, 16);
  const std::size_t nbody_parts =
      partition_queries(grid, queries, order, params).partitions.size();
  EXPECT_GT(nbody_parts, uniform_parts);
}

TEST_F(PartitionerFixture, InverseCorrelationBetweenSizeAndCount) {
  // Figure 16's empirical premise (needed by the bundling theorem):
  // partitions with larger AABBs hold fewer queries. Verified as a rank
  // correlation over the produced partitions.
  init(testing::CloudKind::kNBody, 30000, 1.5f, 16);
  PartitionSet set = partition_queries(grid, queries, order, params);
  if (set.partitions.size() < 4) GTEST_SKIP() << "too few partitions to correlate";
  double concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < set.partitions.size(); ++i) {
    for (std::size_t j = i + 1; j < set.partitions.size(); ++j) {
      const auto& a = set.partitions[i];
      const auto& b = set.partitions[j];
      const double dw = static_cast<double>(a.aabb_width) - b.aabb_width;
      const double dn = static_cast<double>(a.query_ids.size()) -
                        static_cast<double>(b.query_ids.size());
      if (dw * dn < 0) ++concordant;  // larger width ↔ fewer queries
      if (dw * dn > 0) ++discordant;
    }
  }
  EXPECT_GT(concordant, discordant);
}

TEST_F(PartitionerFixture, ScheduledOrderPreservedWithinPartitions) {
  init(testing::CloudKind::kUniform, 8000, 0.08f, 8);
  // Custom order: reversed.
  std::vector<std::uint32_t> reversed(order.rbegin(), order.rend());
  const PartitionSet set = partition_queries(grid, queries, reversed, params);
  for (const Partition& p : set.partitions) {
    for (std::size_t i = 1; i < p.query_ids.size(); ++i) {
      // Within a partition, ids appear in the same relative order as in
      // `reversed` (descending here).
      EXPECT_GT(p.query_ids[i - 1], p.query_ids[i]);
    }
  }
}

TEST(KnnAabbWidth, HeuristicAndConservative) {
  EXPECT_NEAR(knn_aabb_width(1.0f, /*conservative=*/true), std::sqrt(3.0f), 1e-5f);
  // Equi-volume: (4/3)π(w/2)³ = a³ ⇒ w = 2·cbrt(3/(4π)).
  EXPECT_NEAR(knn_aabb_width(1.0f, /*conservative=*/false),
              2.0f * std::cbrt(3.0f / (4.0f * 3.14159265f)), 1e-4f);
  // Heuristic is smaller than conservative (that is its purpose).
  EXPECT_LT(knn_aabb_width(2.0f, false), knn_aabb_width(2.0f, true));
}

}  // namespace
}  // namespace rtnn
