#include <gtest/gtest.h>

#include <tuple>

#include "baselines/brute_force.hpp"
#include "baselines/grid_knn.hpp"
#include "baselines/grid_search.hpp"
#include "baselines/octree.hpp"
#include "core/rng.hpp"
#include "datasets/point_cloud.hpp"
#include "test_util.hpp"

namespace rtnn::baselines {
namespace {

using testing::CloudKind;

// (dataset, #points, radius scale, K)
using BaselineCase = std::tuple<CloudKind, int, float, int>;

class BaselineCorrectness : public ::testing::TestWithParam<BaselineCase> {
 protected:
  void SetUp() override {
    const auto [kind, n, r_scale, k] = GetParam();
    kind_ = kind;
    points_ = testing::make_cloud(kind, static_cast<std::size_t>(n), 42);
    queries_ = data::jittered_queries(points_, 300, testing::typical_radius(kind) * 0.3f,
                                      7);
    radius_ = testing::typical_radius(kind) * r_scale;
    k_ = static_cast<std::uint32_t>(k);
  }

  CloudKind kind_{};
  std::vector<Vec3> points_;
  std::vector<Vec3> queries_;
  float radius_ = 0.0f;
  std::uint32_t k_ = 0;
};

TEST_P(BaselineCorrectness, GridRangeMatchesBruteForceCounts) {
  // Range search with bounded K: counts must match; the *choice* of K
  // among >K candidates is implementation-defined, so compare sets only
  // when no query saturates.
  const auto expected = brute_force_range(points_, queries_, radius_, k_);
  GridRangeSearch grid;
  grid.build(points_, radius_);
  const auto got = grid.search(queries_, k_);
  testing::expect_counts_equal(got, expected, "grid-range");
  testing::expect_all_within_radius(points_, queries_, got, radius_, "grid-range");
}

TEST_P(BaselineCorrectness, GridRangeExactSetsWhenUnsaturated) {
  // With K far above the neighbor count, the returned sets are unique.
  const std::uint32_t big_k = 512;
  const auto expected = brute_force_range(points_, queries_, radius_, big_k);
  bool saturated = false;
  for (std::size_t q = 0; q < expected.num_queries(); ++q) {
    saturated |= (expected.count(q) == big_k);
  }
  if (saturated) GTEST_SKIP() << "radius too large for exact-set comparison";
  GridRangeSearch grid;
  grid.build(points_, radius_);
  const auto got = grid.search(queries_, big_k);
  testing::expect_same_neighbor_sets(got, expected, "grid-range-sets");
}

TEST_P(BaselineCorrectness, GridKnnMatchesBruteForce) {
  const auto expected = brute_force_knn(points_, queries_, radius_, k_);
  GridKnn grid;
  grid.build(points_, radius_);
  const auto got = grid.search(queries_, k_);
  testing::expect_knn_distances_match(points_, queries_, got, expected, "grid-knn");
}

TEST_P(BaselineCorrectness, OctreeRangeMatchesBruteForceCounts) {
  const auto expected = brute_force_range(points_, queries_, radius_, k_);
  Octree octree;
  octree.build(points_);
  const auto got = octree.range_search(queries_, radius_, k_);
  testing::expect_counts_equal(got, expected, "octree-range");
  testing::expect_all_within_radius(points_, queries_, got, radius_, "octree-range");
}

TEST_P(BaselineCorrectness, OctreeKnnMatchesBruteForce) {
  const auto expected = brute_force_knn(points_, queries_, radius_, k_);
  Octree octree;
  octree.build(points_);
  const auto got = octree.knn_search(queries_, radius_, k_);
  testing::expect_knn_distances_match(points_, queries_, got, expected, "octree-knn");
}

TEST_P(BaselineCorrectness, OctreeStructureValid) {
  Octree octree;
  octree.build(points_);
  octree.validate();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineCorrectness,
    ::testing::Values(
        BaselineCase{CloudKind::kUniform, 4000, 1.0f, 8},
        BaselineCase{CloudKind::kUniform, 4000, 2.5f, 16},
        BaselineCase{CloudKind::kUniform, 500, 0.5f, 4},
        BaselineCase{CloudKind::kLidar, 6000, 1.0f, 8},
        BaselineCase{CloudKind::kLidar, 6000, 0.4f, 1},
        BaselineCase{CloudKind::kSurface, 5000, 1.0f, 8},
        BaselineCase{CloudKind::kSurface, 5000, 3.0f, 32},
        BaselineCase{CloudKind::kNBody, 5000, 1.0f, 8},
        BaselineCase{CloudKind::kNBody, 5000, 0.3f, 2}),
    [](const ::testing::TestParamInfo<BaselineCase>& info) {
      return testing::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10)) + "_k" +
             std::to_string(std::get<3>(info.param));
    });

TEST(BaselineEdgeCases, SinglePointCloud) {
  const std::vector<Vec3> points{{0.5f, 0.5f, 0.5f}};
  const std::vector<Vec3> queries{{0.5f, 0.5f, 0.5f}, {10.0f, 0.0f, 0.0f}};
  GridRangeSearch grid;
  grid.build(points, 0.1f);
  const auto got = grid.search(queries, 4);
  EXPECT_EQ(got.count(0), 1u);
  EXPECT_EQ(got.count(1), 0u);

  Octree octree;
  octree.build(points);
  const auto knn = octree.knn_search(queries, 0.1f, 4);
  EXPECT_EQ(knn.count(0), 1u);
  EXPECT_EQ(knn.count(1), 0u);
}

TEST(BaselineEdgeCases, QueryOnDuplicatePoints) {
  // 50 coincident points: range must cap at K, KNN must return exactly K.
  std::vector<Vec3> points(50, Vec3{0.3f, 0.3f, 0.3f});
  const std::vector<Vec3> queries{{0.3f, 0.3f, 0.3f}};
  GridKnn grid;
  grid.build(points, 0.1f);
  const auto knn = grid.search(queries, 8);
  EXPECT_EQ(knn.count(0), 8u);

  GridRangeSearch range;
  range.build(points, 0.1f);
  EXPECT_EQ(range.search(queries, 8).count(0), 8u);
}

TEST(BaselineEdgeCases, KnnRadiusBoundExcludesFarPoints) {
  // Points at distance 1 and 2; radius 1.5 must exclude the far one even
  // with K = 2.
  const std::vector<Vec3> points{{1.0f, 0.0f, 0.0f}, {2.0f, 0.0f, 0.0f}};
  const std::vector<Vec3> queries{{0.0f, 0.0f, 0.0f}};
  Octree octree;
  octree.build(points);
  const auto knn = octree.knn_search(queries, 1.5f, 2);
  ASSERT_EQ(knn.count(0), 1u);
  EXPECT_EQ(knn.neighbors(0)[0], 0u);

  GridKnn grid;
  grid.build(points, 1.5f);
  const auto grid_knn = grid.search(queries, 2);
  ASSERT_EQ(grid_knn.count(0), 1u);
  EXPECT_EQ(grid_knn.neighbors(0)[0], 0u);
}

TEST(BaselineEdgeCases, BruteForceKnnSortedAscending) {
  Pcg32 rng(1);
  std::vector<Vec3> points(100);
  for (auto& p : points) p = rng.uniform_in_aabb({{0, 0, 0}, {1, 1, 1}});
  const std::vector<Vec3> queries{{0.5f, 0.5f, 0.5f}};
  const auto knn = brute_force_knn(points, queries, 1.0f, 10);
  const auto row = knn.neighbors(0);
  for (std::size_t i = 1; i < row.size(); ++i) {
    EXPECT_LE(distance2(points[row[i - 1]], queries[0]),
              distance2(points[row[i]], queries[0]));
  }
}

}  // namespace
}  // namespace rtnn::baselines
