#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace rtnn {
namespace {

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  const std::int64_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; }, 16);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, ForEmptyAndReversedRanges) {
  int calls = 0;
  parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  parallel_for(5, 3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(Parallel, ForSmallRangeRunsSerially) {
  // Ranges below the grain run inline (no data races on non-atomic state).
  std::vector<int> order;
  parallel_for(0, 10, [&](std::int64_t i) { order.push_back(static_cast<int>(i)); },
               1024);
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(Parallel, ChunksPartitionTheRange) {
  const std::int64_t n = 54321;
  std::atomic<std::int64_t> total{0};
  parallel_for_chunks(0, n, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_LE(lo, hi);
    total += hi - lo;
  }, 100);
  EXPECT_EQ(total.load(), n);
}

TEST(Parallel, ReduceSum) {
  const std::int64_t n = 200000;
  const auto sum = parallel_reduce<std::int64_t>(
      0, n, 0, [](std::int64_t i) { return i; },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(Parallel, ReduceMax) {
  std::vector<int> values(10000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int>((i * 2654435761u) % 99991);
  }
  const int expected = *std::max_element(values.begin(), values.end());
  const int got = parallel_reduce<int>(
      0, static_cast<std::int64_t>(values.size()), 0,
      [&](std::int64_t i) { return values[static_cast<std::size_t>(i)]; },
      [](int a, int b) { return a > b ? a : b; });
  EXPECT_EQ(got, expected);
}

TEST(Parallel, ReduceEmptyReturnsInit) {
  const int got = parallel_reduce<int>(
      3, 3, -7, [](std::int64_t) { return 100; }, [](int a, int b) { return a + b; });
  EXPECT_EQ(got, -7);
}

TEST(Parallel, ThreadOverride) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3);
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
}

TEST(Parallel, ExclusiveScanU32) {
  std::vector<std::uint32_t> v{3, 0, 2, 5};
  const auto total = exclusive_scan(v);
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(v, (std::vector<std::uint32_t>{0, 3, 3, 5}));
}

TEST(Parallel, ExclusiveScanU64) {
  std::vector<std::uint64_t> v{1, 1, 1};
  const auto total = exclusive_scan(v);
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(CompletionEvent, SignalReleasesWaiter) {
  CompletionEvent event;
  EXPECT_FALSE(event.signaled());
  EXPECT_FALSE(event.wait_for(std::chrono::milliseconds(1)));
  std::thread signaler([&] { event.signal(); });
  event.wait();
  EXPECT_TRUE(event.signaled());
  EXPECT_TRUE(event.wait_for(std::chrono::milliseconds(1)));  // already fired
  event.wait();                                               // returns forever
  signaler.join();
}

TEST(CompletionEvent, ZeroAndNegativeTimeoutsPollWithoutBlocking) {
  CompletionEvent event;
  // A non-positive timeout is a poll: report the current state, never
  // block, and never trip the deadline-overflow inside wait_for.
  const auto deadline_cases = {
      std::chrono::nanoseconds::zero(),
      std::chrono::nanoseconds(-1),
      std::chrono::nanoseconds::min(),
  };
  for (const auto timeout : deadline_cases) {
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(event.wait_for(timeout));
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::milliseconds(100));
  }
  event.signal();
  for (const auto timeout : deadline_cases) {
    EXPECT_TRUE(event.wait_for(timeout)) << "signaled state must show in a poll";
  }
}

TEST(WorkQueue, FifoAcrossProducers) {
  WorkQueue<int> queue;
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.try_pop().has_value());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_EQ(queue.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(queue.pop(), i);
}

TEST(WorkQueue, CloseDrainsThenRefuses) {
  WorkQueue<int> queue;
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(3));  // refused, dropped
  EXPECT_EQ(queue.pop(), 1);    // queued items still drain
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_FALSE(queue.pop().has_value());  // closed and empty: no block
  EXPECT_FALSE(queue.pop_for(std::chrono::milliseconds(1)).has_value());
}

TEST(WorkQueue, PopForTimesOutWithoutItems) {
  WorkQueue<int> queue;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.pop_for(std::chrono::milliseconds(5)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(4));
}

TEST(WorkQueue, CloseWakesBlockedConsumer) {
  WorkQueue<int> queue;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(queue.pop().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  queue.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

TEST(WorkQueue, ManyProducersOneConsumerDeliversEverything) {
  WorkQueue<int> queue;
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; ++i) {
        EXPECT_TRUE(queue.push(p * kItemsEach + i));
      }
    });
  }
  std::vector<bool> seen(kProducers * kItemsEach, false);
  for (int n = 0; n < kProducers * kItemsEach; ++n) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    ASSERT_FALSE(seen[static_cast<std::size_t>(*item)]);
    seen[static_cast<std::size_t>(*item)] = true;
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace rtnn
