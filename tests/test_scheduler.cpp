#include "rtnn/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/rng.hpp"
#include "datasets/point_cloud.hpp"
#include "test_util.hpp"

namespace rtnn {
namespace {

struct SchedulerFixture : ::testing::Test {
  void SetUp() override {
    points = testing::make_cloud(testing::CloudKind::kUniform, 5000, 1);
    queries = data::jittered_queries(points, 2000, 0.01f, 2);
    data::shuffle(queries, 3);  // deliberately incoherent input order
    std::vector<Aabb> aabbs(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      aabbs[i] = Aabb::cube(points[i], 2.0f * radius);
    }
    accel = ox::Context{}.build_accel(aabbs);
  }

  std::vector<Vec3> points;
  std::vector<Vec3> queries;
  float radius = 0.05f;
  ox::Accel accel;
};

TEST_F(SchedulerFixture, OrderIsAPermutation) {
  const ScheduleResult sched = schedule_queries(accel, points, queries);
  ASSERT_EQ(sched.order.size(), queries.size());
  std::vector<std::uint32_t> sorted = sched.order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(sorted[i], static_cast<std::uint32_t>(i));
  }
}

TEST_F(SchedulerFixture, ScheduledOrderIsSpatiallyCoherent) {
  // The point of section 4: adjacent rays should be spatially close.
  const ScheduleResult sched = schedule_queries(accel, points, queries);
  auto mean_adjacent_distance = [&](const std::vector<std::uint32_t>& order) {
    double sum = 0.0;
    for (std::size_t i = 1; i < order.size(); ++i) {
      sum += distance(queries[order[i - 1]], queries[order[i]]);
    }
    return sum / static_cast<double>(order.size() - 1);
  };
  std::vector<std::uint32_t> identity(queries.size());
  std::iota(identity.begin(), identity.end(), 0u);
  EXPECT_LT(mean_adjacent_distance(sched.order),
            0.25 * mean_adjacent_distance(identity));
}

TEST_F(SchedulerFixture, FirstHitLaunchIsTruncated) {
  // The pre-pass invokes the IS shader at most once per ray — that is what
  // makes it "extremely efficient" (section 4).
  const ScheduleResult sched = schedule_queries(accel, points, queries);
  EXPECT_LE(sched.first_hit_stats.is_calls, queries.size());
  EXPECT_EQ(sched.first_hit_stats.rays, queries.size());
  // Most jittered queries sit inside some AABB, so most rays terminate.
  EXPECT_GT(sched.first_hit_stats.terminated_rays, queries.size() / 2);
}

TEST_F(SchedulerFixture, QueriesWithNoEnclosingAabbStillScheduled) {
  // Far-away queries hit nothing; they must still appear in the order
  // (sorted by their own position).
  std::vector<Vec3> mixed = queries;
  for (int i = 0; i < 50; ++i) {
    mixed.push_back(Vec3{100.0f + static_cast<float>(i), 0.0f, 0.0f});
  }
  const ScheduleResult sched = schedule_queries(accel, points, mixed);
  ASSERT_EQ(sched.order.size(), mixed.size());
  std::vector<std::uint32_t> sorted = sched.order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(sorted[i], static_cast<std::uint32_t>(i));
  }
}

TEST_F(SchedulerFixture, DeterministicAcrossRuns) {
  const ScheduleResult a = schedule_queries(accel, points, queries);
  const ScheduleResult b = schedule_queries(accel, points, queries);
  EXPECT_EQ(a.order, b.order);
}

TEST_F(SchedulerFixture, EmptyQuerySet) {
  const ScheduleResult sched = schedule_queries(accel, points, {});
  EXPECT_TRUE(sched.order.empty());
}

}  // namespace
}  // namespace rtnn
