// Spatial sharding: the pure geometry layer (rtnn/sharding.hpp — plan /
// route / gather) and the composed engine::ShardedBackend, checked for
// exact parity against brute force and the unsharded inner backend on
// uniform and degenerate clouds. The exactness arguments these tests pin
// down are stated in sharding.hpp's header comment: counts sum with a
// clamp at K, range unions are disjoint, the global top-K is a subset of
// the union of per-shard top-Ks.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/sharded_backend.hpp"
#include "rtnn/sharding.hpp"
#include "test_util.hpp"

using namespace rtnn;
using rtnn::testing::CloudKind;
using rtnn::testing::make_cloud;
using rtnn::testing::typical_radius;

namespace {

constexpr std::uint64_t kSeed = 2917;

SearchParams range_params(float radius, std::uint32_t k) {
  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = radius;
  params.k = k;
  return params;
}

SearchParams knn_params(float radius, std::uint32_t k = 8) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = radius;
  params.k = k;
  return params;
}

/// The K at which a range result set is unique (no backend-defined
/// truncation): one past the largest true neighbor count.
std::uint32_t unique_range_k(engine::SearchBackend& reference,
                             std::span<const Vec3> queries, float radius,
                             std::size_t num_points) {
  SearchParams params = range_params(radius, static_cast<std::uint32_t>(num_points));
  params.store_indices = false;
  const NeighborResult counts = reference.search(queries, params, nullptr);
  std::uint32_t max_count = 0;
  for (std::size_t q = 0; q < counts.num_queries(); ++q) {
    max_count = std::max(max_count, counts.count(q));
  }
  return max_count + 1;
}

}  // namespace

// --- plan_shard_count --------------------------------------------------------

TEST(ShardPlanning, ShardCountFollowsThresholdAndCap) {
  EXPECT_EQ(plan_shard_count(1000, 0, 16), 1u);     // threshold 0 = never shard
  EXPECT_EQ(plan_shard_count(1000, 1000, 16), 1u);  // at the threshold: whole
  EXPECT_EQ(plan_shard_count(1001, 1000, 16), 2u);  // one past: split
  EXPECT_EQ(plan_shard_count(5000, 1000, 16), 5u);  // ceil(n / threshold)
  EXPECT_EQ(plan_shard_count(5001, 1000, 16), 6u);
  EXPECT_EQ(plan_shard_count(100'000, 1000, 16), 16u);  // capped
}

TEST(ShardPlanning, ZeroCapMeansUnbounded) {
  // max_shards = 0 is the documented "unbounded" contract (shared by
  // CloudConfig, TileOptions and the batch optimizer's max_bin_queries):
  // the split follows ceil(n / threshold) however large the cloud. The
  // old behavior clamped 0 to a cap of 1, silently disabling sharding.
  EXPECT_EQ(plan_shard_count(100'000, 1000, 0), 100u);
  EXPECT_EQ(plan_shard_count(5001, 1000, 0), 6u);
  EXPECT_EQ(plan_shard_count(1000, 1000, 0), 1u);  // under threshold: whole
  EXPECT_EQ(plan_shard_count(1000, 0, 0), 1u);     // threshold 0 still = off
}

// --- plan_shards -------------------------------------------------------------

TEST(ShardPlanning, SingleShardKeepsIdentityOrder) {
  const std::vector<Vec3> points = make_cloud(CloudKind::kUniform, 200, kSeed);
  const ShardPlan plan = plan_shards(points, 1);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.point_count, points.size());
  // Identity ids: a single-shard backend delegates without any remap.
  std::vector<std::uint32_t> iota(points.size());
  std::iota(iota.begin(), iota.end(), 0u);
  EXPECT_EQ(plan.shards[0].point_ids, iota);
  EXPECT_EQ(plan.shards[0].bounds.lo.x, plan.cloud_bounds.lo.x);
  EXPECT_EQ(plan.shards[0].bounds.hi.z, plan.cloud_bounds.hi.z);
}

TEST(ShardPlanning, ShardsPartitionThePoints) {
  const std::vector<Vec3> points = make_cloud(CloudKind::kNBody, 500, kSeed);
  for (const std::uint32_t num_shards : {2u, 5u, 8u}) {
    SCOPED_TRACE(num_shards);
    const ShardPlan plan = plan_shards(points, num_shards);
    ASSERT_EQ(plan.shards.size(), num_shards);

    // Every point id appears in exactly one shard.
    std::vector<int> seen(points.size(), 0);
    for (const ShardPlan::Shard& shard : plan.shards) {
      for (const std::uint32_t id : shard.point_ids) {
        ASSERT_LT(id, points.size());
        ++seen[id];
      }
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](int c) { return c == 1; }));

    // Near-equal sizes: the split differs by at most one point.
    std::size_t lo = points.size(), hi = 0;
    for (const ShardPlan::Shard& shard : plan.shards) {
      lo = std::min(lo, shard.point_ids.size());
      hi = std::max(hi, shard.point_ids.size());
    }
    EXPECT_LE(hi - lo, 1u);

    // Tight bounds: every member inside its shard box, every box inside
    // the cloud box.
    for (const ShardPlan::Shard& shard : plan.shards) {
      for (const std::uint32_t id : shard.point_ids) {
        EXPECT_TRUE(shard.bounds.contains(points[id]));
      }
      EXPECT_TRUE(plan.cloud_bounds.contains(shard.bounds.lo));
      EXPECT_TRUE(plan.cloud_bounds.contains(shard.bounds.hi));
    }
  }
}

TEST(ShardPlanning, MoreShardsThanPointsClamps) {
  const std::vector<Vec3> points = make_cloud(CloudKind::kUniform, 3, kSeed);
  const ShardPlan plan = plan_shards(points, 16);
  EXPECT_EQ(plan.shards.size(), 3u);  // one point per shard at most
}

// --- aabb_distance2 ----------------------------------------------------------

TEST(ShardRouting, AabbDistanceSquared) {
  Aabb box;
  box.grow({0, 0, 0});
  box.grow({1, 2, 3});
  EXPECT_FLOAT_EQ(aabb_distance2(box, {0.5f, 1.0f, 1.5f}), 0.0f);  // inside
  EXPECT_FLOAT_EQ(aabb_distance2(box, {1.0f, 2.0f, 3.0f}), 0.0f);  // on the corner
  EXPECT_FLOAT_EQ(aabb_distance2(box, {3.0f, 1.0f, 1.0f}), 4.0f);  // one axis out
  EXPECT_FLOAT_EQ(aabb_distance2(box, {2.0f, 3.0f, 1.0f}), 2.0f);  // two axes out
  EXPECT_FLOAT_EQ(aabb_distance2(box, {-1.0f, -1.0f, -1.0f}), 3.0f);
  const Aabb empty;  // default-constructed = inverted bounds
  EXPECT_TRUE(std::isinf(aabb_distance2(empty, {0, 0, 0})));
}

TEST(ShardRouting, RoutesExactlyTheShardsWithinRadius) {
  const std::vector<Vec3> points = make_cloud(CloudKind::kUniform, 400, kSeed);
  const std::vector<Vec3> queries = make_cloud(CloudKind::kUniform, 32, kSeed + 1);
  const float radius = typical_radius(CloudKind::kUniform);
  const ShardPlan plan = plan_shards(points, 4);
  const ShardRoute route = route_queries(plan, queries, radius);
  ASSERT_EQ(route.rows.size(), plan.shards.size());

  std::uint64_t expected_fanout = 0;
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    std::vector<std::uint32_t> expected;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (aabb_distance2(plan.shards[s].bounds, queries[q]) <= radius * radius) {
        expected.push_back(static_cast<std::uint32_t>(q));
      }
    }
    EXPECT_EQ(route.rows[s], expected) << "shard " << s;
    expected_fanout += expected.size();
  }
  EXPECT_EQ(route.fanout, expected_fanout);

  // Conservative: a shard holding a true in-radius neighbor of q must be
  // routed for q (the tight AABB cannot be farther than its contents).
  const float r2 = radius * radius;
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    for (std::size_t q = 0; q < queries.size(); ++q) {
      bool has_neighbor = false;
      for (const std::uint32_t id : plan.shards[s].point_ids) {
        if (distance2(points[id], queries[q]) <= r2) {
          has_neighbor = true;
          break;
        }
      }
      const bool routed = std::binary_search(route.rows[s].begin(), route.rows[s].end(),
                                             static_cast<std::uint32_t>(q));
      if (has_neighbor) EXPECT_TRUE(routed) << "shard " << s << " query " << q;
    }
  }
}

// --- ShardedBackend ----------------------------------------------------------

namespace {

/// A ShardedBackend forced into multiple shards over a small cloud.
engine::ShardedBackend make_sharded(std::span<const Vec3> points,
                                    std::size_t shard_threshold = 64,
                                    std::uint32_t max_shards = 6) {
  engine::ShardingOptions options;
  options.shard_threshold = shard_threshold;
  options.max_shards = max_shards;
  engine::ShardedBackend backend("rtnn", options);
  backend.set_points(points);
  return backend;
}

void expect_sharded_parity(std::span<const Vec3> points, std::span<const Vec3> queries,
                           float radius, const std::string& label) {
  auto reference = engine::make_backend("brute_force");
  reference->set_points(points);

  engine::ShardedBackend sharded = make_sharded(points);
  ASSERT_GT(sharded.shard_count(), 1u) << label;

  // Range with K past every true count: the result set is unique.
  const std::uint32_t k = unique_range_k(*reference, queries, radius, points.size());
  const SearchParams range = range_params(radius, k);
  rtnn::testing::expect_same_neighbor_sets(sharded.search(queries, range),
                                           reference->search(queries, range, nullptr),
                                           label + " range");

  // Counts-only range: per-shard counts sum exactly under the clamp.
  SearchParams counts = range_params(radius, 4);  // truncating K stresses the clamp
  counts.store_indices = false;
  rtnn::testing::expect_counts_equal(sharded.search(queries, counts),
                                     reference->search(queries, counts, nullptr),
                                     label + " counts");

  // KNN: tie-tolerant per the suite's convention.
  const SearchParams knn = knn_params(radius);
  rtnn::testing::expect_knn_distances_match(points, queries, sharded.search(queries, knn),
                                            reference->search(queries, knn, nullptr),
                                            label + " knn");
}

}  // namespace

TEST(ShardedBackend, MatchesBruteForceAcrossCloudKinds) {
  for (const CloudKind kind :
       {CloudKind::kUniform, CloudKind::kLidar, CloudKind::kNBody}) {
    SCOPED_TRACE(rtnn::testing::to_string(kind));
    const std::vector<Vec3> points = make_cloud(kind, 384, kSeed);
    const std::vector<Vec3> queries = make_cloud(kind, 48, kSeed + 7);
    expect_sharded_parity(points, queries, typical_radius(kind),
                          rtnn::testing::to_string(kind));
  }
}

TEST(ShardedBackend, CountsOnlyTruncationMatchesUnsharded) {
  // Pins the audit of gather_shard_results' counts-only clamp
  // (min(K, sum of partial counts)): for every K down to 1 the sharded
  // counts must equal the unsharded truncation min(K, true count), in
  // both modes. K = 0 is not a legal truncation — the whole stack
  // rejects it at the door, sharded and unsharded alike, so the clamp
  // never sees it.
  const std::vector<Vec3> points = make_cloud(CloudKind::kUniform, 384, kSeed);
  const std::vector<Vec3> queries = make_cloud(CloudKind::kUniform, 48, kSeed + 11);
  const float radius = 2.0f * typical_radius(CloudKind::kUniform);  // dense: counts >> 1

  auto reference = engine::make_backend("brute_force");
  reference->set_points(points);
  engine::ShardedBackend sharded = make_sharded(points);
  ASSERT_GT(sharded.shard_count(), 1u);

  for (const std::uint32_t k : {1u, 2u, 5u, 32u}) {
    SearchParams counts = range_params(radius, k);
    counts.store_indices = false;
    rtnn::testing::expect_counts_equal(sharded.search(queries, counts),
                                       reference->search(queries, counts, nullptr),
                                       "counts range k=" + std::to_string(k));
    SearchParams knn = knn_params(radius, k);
    knn.store_indices = false;
    rtnn::testing::expect_counts_equal(sharded.search(queries, knn),
                                       reference->search(queries, knn, nullptr),
                                       "counts knn k=" + std::to_string(k));
  }

  SearchParams zero = range_params(radius, 1);
  zero.k = 0;
  EXPECT_THROW((void)sharded.search(queries, zero), Error);
  auto unsharded = engine::make_backend("rtnn");
  unsharded->set_points(points);
  EXPECT_THROW((void)unsharded->search(queries, zero, nullptr), Error);
}

TEST(ShardedBackend, BelowThresholdDelegatesWhole) {
  const std::vector<Vec3> points = make_cloud(CloudKind::kUniform, 100, kSeed);
  engine::ShardedBackend backend = make_sharded(points, /*shard_threshold=*/1000);
  EXPECT_EQ(backend.shard_count(), 1u);

  // Byte-identical to the inner backend: ids, order, everything.
  auto inner = engine::make_backend("rtnn");
  inner->set_points(points);
  const std::vector<Vec3> queries(points.begin(), points.begin() + 16);
  const SearchParams knn = knn_params(typical_radius(CloudKind::kUniform));
  const NeighborResult got = backend.search(queries, knn);
  const NeighborResult want = inner->search(queries, knn, nullptr);
  ASSERT_EQ(got.num_queries(), want.num_queries());
  for (std::size_t q = 0; q < got.num_queries(); ++q) {
    ASSERT_EQ(got.count(q), want.count(q)) << q;
    const auto a = got.neighbors(q);
    const auto b = want.neighbors(q);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << q;
  }
}

TEST(ShardedBackend, UpdatePointsRefitsAndRetightensBounds) {
  std::vector<Vec3> points = make_cloud(CloudKind::kUniform, 384, kSeed);
  const std::vector<Vec3> queries = make_cloud(CloudKind::kUniform, 48, kSeed + 3);
  const float radius = typical_radius(CloudKind::kUniform);

  engine::ShardedBackend sharded = make_sharded(points);
  ASSERT_GT(sharded.shard_count(), 1u);
  (void)sharded.search(queries, knn_params(radius));

  // Same-count drift: ids keep their shard, bounds must re-tighten so
  // routing stays exact for the moved positions.
  for (Vec3& p : points) {
    p.x += 0.2f;
    p.y -= 0.15f;
  }
  sharded.update_points(points);
  EXPECT_EQ(sharded.point_count(), points.size());
  for (const ShardPlan::Shard& shard : sharded.plan().shards) {
    for (const std::uint32_t id : shard.point_ids) {
      EXPECT_TRUE(shard.bounds.contains(points[id]));
    }
  }
  auto reference = engine::make_backend("brute_force");
  reference->set_points(points);
  const SearchParams knn = knn_params(radius);
  rtnn::testing::expect_knn_distances_match(points, queries, sharded.search(queries, knn),
                                            reference->search(queries, knn, nullptr),
                                            "after drift");

  // Resize: replans from scratch (possibly a different shard count).
  points.resize(150);
  sharded.update_points(points);
  EXPECT_EQ(sharded.point_count(), 150u);
  reference->set_points(points);
  rtnn::testing::expect_knn_distances_match(points, queries, sharded.search(queries, knn),
                                            reference->search(queries, knn, nullptr),
                                            "after resize");
}

TEST(ShardedBackend, SnapshotIsIndependentOfLaterUpdates) {
  std::vector<Vec3> points = make_cloud(CloudKind::kUniform, 384, kSeed);
  const std::vector<Vec3> queries = make_cloud(CloudKind::kUniform, 32, kSeed + 5);
  const float radius = typical_radius(CloudKind::kUniform);
  const SearchParams knn = knn_params(radius);

  engine::ShardedBackend master = make_sharded(points);
  std::unique_ptr<engine::SearchBackend> snap = master.snapshot();
  ASSERT_NE(snap, nullptr);

  auto reference = engine::make_backend("brute_force");
  reference->set_points(points);
  const NeighborResult before = reference->search(queries, knn, nullptr);

  // Mutate the master; the snapshot must keep answering the old cloud.
  std::vector<Vec3> moved = points;
  for (Vec3& p : moved) p.z += 1.0f;
  master.update_points(moved);

  rtnn::testing::expect_knn_distances_match(points, queries, snap->search(queries, knn),
                                            before, "snapshot after master update");
  reference->set_points(moved);
  rtnn::testing::expect_knn_distances_match(moved, queries, master.search(queries, knn),
                                            reference->search(queries, knn, nullptr),
                                            "master after update");
}

TEST(ShardedBackend, ReportsAggregateAcrossShards) {
  const std::vector<Vec3> points = make_cloud(CloudKind::kUniform, 384, kSeed);
  const std::vector<Vec3> queries = make_cloud(CloudKind::kUniform, 64, kSeed + 9);
  engine::ShardedBackend sharded = make_sharded(points);
  ASSERT_GT(sharded.shard_count(), 1u);

  engine::SearchBackend::Report report;
  (void)sharded.search(queries, knn_params(typical_radius(CloudKind::kUniform)), &report);
  EXPECT_GT(report.time.search + report.time.first_search, 0.0);

  // Fanout accounting: every query touches at least one shard (they all
  // have neighbors in-cloud) and at most all of them.
  EXPECT_GE(sharded.total_fanout(), queries.size());
  EXPECT_LE(sharded.total_fanout(), queries.size() * sharded.shard_count());
}

TEST(ShardedBackend, CapsMirrorTheInnerBackend) {
  const engine::ShardedBackend sharded("rtnn");
  const auto inner = engine::make_backend("rtnn");
  const engine::BackendCaps a = sharded.caps();
  const engine::BackendCaps b = inner->caps();
  EXPECT_EQ(a.range, b.range);
  EXPECT_EQ(a.knn, b.knn);
  EXPECT_EQ(a.approximate, b.approximate);
  EXPECT_EQ(a.dynamic, b.dynamic);
  EXPECT_EQ(a.snapshot, b.snapshot);
  EXPECT_THROW(engine::ShardedBackend("no_such_backend"), Error);
}
