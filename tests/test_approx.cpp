// Approximate neighbor search (paper section 8): shrunken AABBs and the
// elided sphere test, with the paper's quantitative error bounds.
#include <gtest/gtest.h>

#include "baselines/brute_force.hpp"
#include "datasets/point_cloud.hpp"
#include "rtnn/rtnn.hpp"
#include "test_util.hpp"

namespace rtnn {
namespace {

using testing::CloudKind;

struct ApproxFixture : ::testing::Test {
  void SetUp() override {
    points = testing::make_cloud(CloudKind::kUniform, 6000, 77);
    queries = data::jittered_queries(points, 400, 0.01f, 78);
    params.radius = 0.08f;
    params.k = 16;
    params.mode = SearchMode::kRange;
    search.set_points(points);
  }

  std::vector<Vec3> points;
  std::vector<Vec3> queries;
  SearchParams params;
  NeighborSearch search;
};

TEST_F(ApproxFixture, ElidedSphereTestRespectsSqrt3Bound) {
  // "given a query range r all the returned neighbors are bound to be
  // within a distance sqrt(3)*r of the query" (section 8).
  params.elide_sphere_test = true;
  params.opts = OptimizationFlags::none();
  const auto got = search.search(queries, params);
  const float bound = params.radius * 1.7320508f * (1.0f + 1e-5f);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const std::uint32_t p : got.neighbors(q)) {
      EXPECT_LE(distance(points[p], queries[q]), bound);
    }
  }
}

TEST_F(ApproxFixture, ElidedSphereTestIsASuperset) {
  // Every exact within-r neighbor is still reported (eliding the test can
  // only add candidates), as long as K does not truncate.
  params.k = 256;
  params.opts = OptimizationFlags::none();
  const auto exact = search.search(queries, params);
  params.elide_sphere_test = true;
  const auto approx = search.search(queries, params);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_GE(approx.count(q), exact.count(q));
  }
}

TEST_F(ApproxFixture, ElidedSphereTestReducesWork) {
  params.opts = OptimizationFlags::none();
  NeighborSearch::Report exact_report;
  search.search(queries, params, &exact_report);
  params.elide_sphere_test = true;
  NeighborSearch::Report approx_report;
  search.search(queries, params, &approx_report);
  // Same IS call count (the AABB tests are identical) but rays terminate
  // earlier because every IS call records a neighbor.
  EXPECT_LE(approx_report.stats.node_visits, exact_report.stats.node_visits);
}

TEST_F(ApproxFixture, ShrunkenAabbsNeverReturnInvalidNeighbors) {
  // aabb_scale trades recall, never precision: everything returned is a
  // true within-r neighbor.
  for (const float scale : {0.9f, 0.6f, 0.3f}) {
    params.aabb_scale = scale;
    const auto got = search.search(queries, params);
    testing::expect_all_within_radius(points, queries, got, params.radius, "approx");
  }
}

TEST_F(ApproxFixture, RecallDegradesMonotonicallyWithScale) {
  params.k = 256;
  const auto exact = baselines::brute_force_range(points, queries, params.radius, 256);
  std::uint64_t exact_total = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) exact_total += exact.count(q);

  std::uint64_t previous = exact_total;
  for (const float scale : {1.0f, 0.7f, 0.4f}) {
    params.aabb_scale = scale;
    const auto got = search.search(queries, params);
    std::uint64_t total = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) total += got.count(q);
    EXPECT_LE(total, previous * 101 / 100);  // monotone (1% slack for caps)
    previous = total;
  }
  // Full scale recovers (nearly) everything; tiny scale loses a lot.
  EXPECT_LT(previous, exact_total);
}

TEST_F(ApproxFixture, ShrunkenAabbsReduceIsCalls) {
  params.k = 256;
  NeighborSearch::Report full_report;
  params.aabb_scale = 1.0f;
  search.search(queries, params, &full_report);
  NeighborSearch::Report small_report;
  params.aabb_scale = 0.4f;
  search.search(queries, params, &small_report);
  EXPECT_LT(small_report.stats.is_calls, full_report.stats.is_calls);
}

TEST_F(ApproxFixture, KnnWithShrunkenAabbsStillValid) {
  params.mode = SearchMode::kKnn;
  params.aabb_scale = 0.7f;
  const auto got = search.search(queries, params);
  testing::expect_all_within_radius(points, queries, got, params.radius, "approx-knn");
}

TEST_F(ApproxFixture, InvalidApproxParamsRejected) {
  params.aabb_scale = 0.0f;
  EXPECT_THROW(search.search(queries, params), Error);
  params.aabb_scale = 1.5f;
  EXPECT_THROW(search.search(queries, params), Error);
  params.aabb_scale = 1.0f;
  params.mode = SearchMode::kKnn;
  params.elide_sphere_test = true;
  EXPECT_THROW(search.search(queries, params), Error);
}

}  // namespace
}  // namespace rtnn
