// Two-level (TLAS/BLAS) index tests: rt::TiledBvh structure and lazy
// build, per-tile copy-on-write across updates, tiled-vs-monolithic
// search parity (static and over dynamic frame sequences), locality of
// per-frame update work, and the service-level tiling knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/rng.hpp"
#include "datasets/motion.hpp"
#include "optix/optix.hpp"
#include "rtcore/tlas.hpp"
#include "rtcore/traversal.hpp"
#include "rtnn/sharding.hpp"
#include "rtnn/stages.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

namespace rtnn {
namespace {

using rtnn::testing::CloudKind;

/// Morton-contiguous tile memberships, the same planner the pipeline uses.
std::vector<std::vector<std::uint32_t>> plan_tiles(std::span<const Vec3> points,
                                                   std::uint32_t num_tiles) {
  ShardPlan plan = plan_shards(points, num_tiles);
  std::vector<std::vector<std::uint32_t>> tile_ids;
  tile_ids.reserve(plan.shards.size());
  for (ShardPlan::Shard& shard : plan.shards) {
    tile_ids.push_back(std::move(shard.point_ids));
  }
  return tile_ids;
}

/// Records every primitive the IS stage sees, per ray (global ids).
struct Collector {
  std::vector<std::set<std::uint32_t>> hits;
  explicit Collector(std::size_t rays) : hits(rays) {}
  rt::TraceAction intersect(std::uint32_t ray, std::uint32_t prim) {
    hits[ray].insert(prim);
    return rt::TraceAction::kContinue;
  }
};

std::vector<Ray> short_rays(std::span<const Vec3> queries) {
  std::vector<Ray> rays;
  rays.reserve(queries.size());
  for (const Vec3& q : queries) rays.push_back(Ray::short_ray(q));
  return rays;
}

TileOptions small_tiles(std::size_t threshold = 48) {
  TileOptions tiling;
  tiling.tile_threshold = threshold;
  return tiling;
}

// --- rt::TiledBvh structure --------------------------------------------------

TEST(TiledBvh, BuildPartitionsAndValidates) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 4000, 3);
  rt::TiledBvh tlas;
  tlas.build(points, 0.1f, plan_tiles(points, 8));
  tlas.validate();

  EXPECT_EQ(tlas.tile_count(), 8u);
  EXPECT_EQ(tlas.built_tile_count(), 8u) << "eager build must build every tile";
  EXPECT_EQ(tlas.prim_count(), points.size());
  EXPECT_EQ(tlas.top().prim_count(), 8u) << "one top-level prim per tile";

  const rt::TiledBvhStats stats = tlas.stats(/*compressed=*/true);
  EXPECT_EQ(stats.tile_count, 8u);
  EXPECT_EQ(stats.built_tiles, 8u);
  EXPECT_GT(stats.node_bytes, 0u);
  EXPECT_GT(stats.total_index_bytes, stats.node_bytes);

  // Tiles partition the ids.
  std::set<std::uint32_t> seen;
  for (std::uint32_t t = 0; t < tlas.tile_count(); ++t) {
    for (const std::uint32_t id : tlas.tile(t).prim_ids()) {
      EXPECT_TRUE(seen.insert(id).second) << "id " << id << " in two tiles";
    }
  }
  EXPECT_EQ(seen.size(), points.size());
}

TEST(TiledBvh, TraversalMatchesMonolithicCandidateSets) {
  // The exactness claim at the rt:: level: the TLAS walk must surface the
  // byte-identical candidate set (same global prim ids) the monolithic
  // walk surfaces, compressed and uncompressed alike.
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kLidar, 5000, 7);
  const float width = 2.5f;

  std::vector<Aabb> aabbs;
  aabbs.reserve(points.size());
  for (const Vec3& p : points) aabbs.push_back(Aabb::cube(p, width));
  rt::Bvh mono;
  mono.build(aabbs);
  rt::WideBvh wide;
  wide.build(mono);

  rt::TiledBvh tlas;
  tlas.build(points, width, plan_tiles(points, 11));
  tlas.validate();

  Pcg32 rng(99);
  std::vector<Vec3> queries;
  for (int i = 0; i < 300; ++i) queries.push_back(rng.uniform_in_aabb(tlas.scene_bounds()));
  const std::vector<Ray> rays = short_rays(queries);

  Collector expected(queries.size());
  rt::trace(wide, rays, expected);

  for (const bool compressed : {false, true}) {
    SCOPED_TRACE(compressed ? "compressed" : "fp32");
    rt::TraceConfig config;
    config.use_compressed = compressed;
    Collector got(queries.size());
    rt::trace(tlas, rays, got, config);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(got.hits[q], expected.hits[q]) << "query " << q;
    }
  }
}

TEST(TiledBvh, LazyTilesBuildOnFirstRoute) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 4000, 11);
  rt::TiledBvh tlas;
  rt::TiledBuildOptions options;
  options.lazy_build = true;
  tlas.build(points, 0.05f, plan_tiles(points, 16), options);
  tlas.validate();  // must hold for unbuilt tiles too

  EXPECT_EQ(tlas.built_tile_count(), 0u) << "lazy build defers every BLAS";
  // No BLAS bytes are resident yet; the total is just the small top tree.
  EXPECT_EQ(tlas.stats(true).node_bytes, 0u);
  const std::uint64_t top_bytes = tlas.stats(true).total_index_bytes;
  EXPECT_GT(top_bytes, 0u);

  // Rays confined to one corner of the scene must force only the tiles
  // they route through resident, not the whole index.
  const Aabb scene = tlas.scene_bounds();
  const Vec3 extent = scene.hi - scene.lo;
  Aabb corner = scene;
  corner.hi = scene.lo + Vec3{0.2f * extent.x, 0.2f * extent.y, 0.2f * extent.z};
  Pcg32 rng(5);
  std::vector<Vec3> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(rng.uniform_in_aabb(corner));
  Collector collector(queries.size());
  rt::trace(tlas, short_rays(queries), collector);

  EXPECT_GT(tlas.built_tile_count(), 0u);
  EXPECT_LT(tlas.built_tile_count(), tlas.tile_count())
      << "corner queries must not force the whole index resident";

  // ensure_all_built is the eager escape hatch.
  tlas.ensure_all_built();
  EXPECT_EQ(tlas.built_tile_count(), tlas.tile_count());
  tlas.validate();
}

TEST(TiledBvh, UpdateTouchesOnlyMovedTiles) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 3000, 13);
  rt::TiledBvh tlas;
  tlas.build(points, 0.08f, plan_tiles(points, 10));

  // Move exactly the members of tile 3.
  std::vector<Vec3> moved = points;
  const std::uint32_t target = 3;
  for (const std::uint32_t id : tlas.tile(target).prim_ids()) {
    moved[id].z += 0.01f;
  }

  std::vector<const rt::TiledBvh::TileIndex*> before;
  for (std::uint32_t t = 0; t < tlas.tile_count(); ++t) {
    before.push_back(tlas.tile(t).index());
  }

  const rt::TiledUpdateStats stats =
      tlas.update(moved, [](double) { return rt::TileUpdate::kRefit; });
  tlas.validate();

  EXPECT_EQ(stats.tiles_touched, 1u);
  EXPECT_EQ(stats.tile_refits, 1u);
  EXPECT_EQ(stats.tile_rebuilds, 0u);
  for (std::uint32_t t = 0; t < tlas.tile_count(); ++t) {
    if (t == target) {
      EXPECT_NE(tlas.tile(t).index(), before[t]) << "touched tile must be replaced";
    } else {
      EXPECT_EQ(tlas.tile(t).index(), before[t]) << "untouched tile must be shared";
    }
  }
}

TEST(TiledBvh, CopiesShareTilesUntilUpdate) {
  // The per-tile copy-on-write contract: a copy answers the old frame
  // after the original absorbs motion, and untouched tiles stay shared.
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 2000, 17);
  rt::TiledBvh live;
  live.build(points, 0.08f, plan_tiles(points, 6));
  rt::TiledBvh snapshot = live;  // shares every tile

  std::vector<Vec3> moved = points;
  const std::uint32_t id = live.tile(0).prim_ids()[0];
  moved[id].x += 0.5f;
  live.update(moved, [](double) { return rt::TileUpdate::kRebuild; });

  // The snapshot still holds the pre-move position; the live index holds
  // the new one.
  EXPECT_EQ(snapshot.tile(0).positions()[0], points[id]);
  EXPECT_EQ(live.tile(0).positions()[0], moved[id]);
  // Tiles 1.. are still literally the same objects.
  for (std::uint32_t t = 1; t < live.tile_count(); ++t) {
    EXPECT_EQ(&live.tile(t), &snapshot.tile(t));
  }
  snapshot.validate();
  live.validate();
}

// --- Tiled pipeline parity ---------------------------------------------------

/// Range + KNN parity between a tiled and a monolithic NeighborSearch
/// over the same cloud/queries. Range K is set above every true count so
/// the result set is unique; KNN is compared tie-tolerantly per the
/// suite's convention.
void expect_tiled_parity(const std::vector<Vec3>& points, const std::vector<Vec3>& queries,
                         float radius, const TileOptions& tiling,
                         const std::string& label,
                         NeighborSearch::Report* tiled_report = nullptr) {
  NeighborSearch mono;
  mono.set_points(points);
  NeighborSearch tiled;
  tiled.set_tiling(tiling);
  tiled.set_points(points);

  SearchParams range;
  range.mode = SearchMode::kRange;
  range.radius = radius;
  range.k = static_cast<std::uint32_t>(points.size());
  const NeighborResult range_expected = mono.search(queries, range, nullptr);
  NeighborSearch::Report report;
  const NeighborResult range_got = tiled.search(queries, range, &report);
  rtnn::testing::expect_same_neighbor_sets(range_got, range_expected, label + " range");
  EXPECT_GT(report.tile_count, 1u) << label << ": tiling must actually engage";

  SearchParams knn;
  knn.mode = SearchMode::kKnn;
  knn.radius = radius;
  knn.k = 8;
  const NeighborResult knn_expected = mono.search(queries, knn, nullptr);
  const NeighborResult knn_got = tiled.search(queries, knn, &report);
  rtnn::testing::expect_knn_distances_match(points, queries, knn_got, knn_expected,
                                            label + " knn");
  if (tiled_report) *tiled_report = report;
}

TEST(TiledSearch, MatchesMonolithicAcrossCloudKinds) {
  for (const CloudKind kind :
       {CloudKind::kUniform, CloudKind::kLidar, CloudKind::kSurface, CloudKind::kNBody}) {
    const std::vector<Vec3> points = rtnn::testing::make_cloud(kind, 3000, 23);
    const std::vector<Vec3> queries = rtnn::testing::make_cloud(kind, 400, 29);
    expect_tiled_parity(points, queries, rtnn::testing::typical_radius(kind),
                        small_tiles(/*threshold=*/256),
                        "kind=" + std::to_string(static_cast<int>(kind)));
  }
}

TEST(TiledSearch, LazyAndEagerAgree) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kLidar, 4000, 31);
  const std::vector<Vec3> queries = rtnn::testing::make_cloud(CloudKind::kLidar, 300, 37);
  for (const bool lazy : {false, true}) {
    TileOptions tiling = small_tiles(/*threshold=*/256);
    tiling.lazy_build = lazy;
    NeighborSearch::Report report;
    expect_tiled_parity(points, queries, rtnn::testing::typical_radius(CloudKind::kLidar),
                        tiling, lazy ? "lazy" : "eager", &report);
    if (lazy) {
      EXPECT_GT(report.tile_lazy_builds, 0u)
          << "lazy tiling must account its build-on-first-route work";
    }
  }
}

TEST(TiledSearch, MaxTilesCapsAndZeroMeansUnbounded) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 2000, 41);
  const std::vector<Vec3> queries = rtnn::testing::make_cloud(CloudKind::kUniform, 100, 43);
  const float radius = rtnn::testing::typical_radius(CloudKind::kUniform);

  TileOptions capped = small_tiles(/*threshold=*/100);
  capped.max_tiles = 4;
  NeighborSearch::Report report;
  expect_tiled_parity(points, queries, radius, capped, "capped", &report);
  EXPECT_EQ(report.tile_count, 4u);

  TileOptions unbounded = small_tiles(/*threshold=*/100);
  unbounded.max_tiles = 0;  // the codebase-wide "0 = no cap" contract
  expect_tiled_parity(points, queries, radius, unbounded, "unbounded", &report);
  EXPECT_EQ(report.tile_count, 20u) << "ceil(2000/100) tiles when uncapped";
}

// --- Dynamic sequences -------------------------------------------------------

TEST(TiledDynamic, DriftFramesMatchMonolithic) {
  // Drift motion (point identity preserved, small displacement): the
  // refit-friendly regime. Both engines run the persistent-index
  // lifecycle; the tiled one must answer every frame identically while
  // doing per-tile update work.
  const std::vector<Vec3> initial = rtnn::testing::make_cloud(CloudKind::kNBody, 3000, 47);
  data::DriftParams drift;
  drift.velocity = 0.02f;
  data::DriftMotion motion(initial, drift);

  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = rtnn::testing::typical_radius(CloudKind::kNBody);
  // K above every possible count: which K survive a truncation is
  // backend-defined, so only the untruncated set is comparable.
  params.k = static_cast<std::uint32_t>(initial.size());

  NeighborSearch mono;
  mono.set_index_persistence(true);
  mono.set_points(initial);
  NeighborSearch tiled;
  TileOptions tiling = small_tiles(/*threshold=*/256);
  tiling.lazy_build = false;  // every touched tile is built, so the
                              // refit+rebuild == touched identity holds
  tiled.set_tiling(tiling);
  tiled.set_index_persistence(true);
  tiled.set_points(initial);

  NeighborSearch::Report total;
  for (int frame = 0; frame < 5; ++frame) {
    const std::vector<Vec3>& points = frame == 0 ? initial : motion.step();
    if (frame > 0) {
      mono.update_points(points);
      tiled.update_points(points);
    }
    const std::vector<Vec3> queries(points.begin(), points.begin() + 200);
    const NeighborResult expected = mono.search(queries, params, nullptr);
    NeighborSearch::Report report;
    const NeighborResult got = tiled.search(queries, params, &report);
    rtnn::testing::expect_same_neighbor_sets(got, expected,
                                             "drift frame " + std::to_string(frame));
    total += report;
  }
  // Drift moves every point, so every frame touches every tile.
  EXPECT_GT(total.tiles_touched, 0u);
  EXPECT_EQ(total.tile_refits + total.tile_rebuilds, total.tiles_touched)
      << "every touched built tile is refit or rebuilt";
  EXPECT_EQ(total.accel_refits + total.accel_rebuilds, 0u)
      << "tiled updates must not count as monolithic refits/rebuilds";
}

TEST(TiledDynamic, LidarSweepFramesMatchMonolithic) {
  // Sweep frames share no per-point correspondence: the regime where
  // refit quality collapses and the per-tile policy must start choosing
  // rebuilds. Parity must hold regardless of what the policy picks.
  data::LidarParams base;
  base.target_points = 4000;
  base.seed = 53;
  data::LidarSweep sweep(base, /*frame_advance_m=*/2.0f);

  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = 1.2f;
  // Untruncated set (see the drift test).
  params.k = static_cast<std::uint32_t>(base.target_points);

  NeighborSearch mono;
  mono.set_index_persistence(true);
  NeighborSearch tiled;
  tiled.set_tiling(small_tiles(/*threshold=*/256));
  tiled.set_index_persistence(true);

  NeighborSearch::Report total;
  for (std::uint32_t frame = 0; frame < 4; ++frame) {
    const data::PointCloud points = sweep.frame(frame);
    if (frame == 0) {
      mono.set_points(points);
      tiled.set_points(points);
    } else {
      mono.update_points(points);
      tiled.update_points(points);
    }
    const std::vector<Vec3> queries(points.begin(), points.begin() + 200);
    const NeighborResult expected = mono.search(queries, params, nullptr);
    NeighborSearch::Report report;
    const NeighborResult got = tiled.search(queries, params, &report);
    rtnn::testing::expect_same_neighbor_sets(got, expected,
                                             "sweep frame " + std::to_string(frame));
    total += report;
  }
  EXPECT_GT(total.tiles_touched, 0u);
}

TEST(TiledDynamic, LocalizedMotionTouchesFewTiles) {
  // The locality headline: motion confined to one spatial region must
  // leave most tiles untouched (the monolithic path refits everything).
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 4000, 59);
  NeighborSearch tiled;
  tiled.set_tiling(small_tiles(/*threshold=*/250));
  tiled.set_index_persistence(true);
  tiled.set_points(points);

  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = rtnn::testing::typical_radius(CloudKind::kUniform);
  params.k = 64;
  const std::vector<Vec3> queries(points.begin(), points.begin() + 100);
  tiled.search(queries, params, nullptr);  // frame 0: build

  // Move only the points inside a small ball around one anchor; Morton
  // tiles are spatially compact, so few of them can intersect it.
  std::vector<Vec3> moved = points;
  const Vec3 anchor = points[0];
  for (Vec3& p : moved) {
    if (distance2(p, anchor) < 0.01f) p.z += 0.002f;
  }
  tiled.update_points(moved);

  NeighborSearch::Report report;
  tiled.search(queries, params, &report);
  ASSERT_GT(report.tile_count, 4u);
  EXPECT_GE(report.tiles_touched, 1u);
  EXPECT_LT(report.tiles_touched, report.tile_count / 2)
      << "local motion must not touch most of the index";
}

// --- Service composition -----------------------------------------------------

TEST(TiledService, TiledCloudServesIdenticalResults) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 2000, 61);
  const std::vector<Vec3> queries = rtnn::testing::make_cloud(CloudKind::kUniform, 128, 67);
  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = rtnn::testing::typical_radius(CloudKind::kUniform);
  params.k = static_cast<std::uint32_t>(points.size());

  service::SearchService svc{service::ServiceConfig{}};
  service::CloudConfig plain;
  service::CloudConfig tiled;
  tiled.tile_threshold = 256;
  tiled.lazy_tile_build = true;
  const auto plain_handle = svc.register_cloud("plain", points, plain);
  const auto tiled_handle = svc.register_cloud("tiled", points, tiled);

  const NeighborResult expected = svc.query(plain_handle, queries, params).result;
  const NeighborResult got = svc.query(tiled_handle, queries, params).result;
  rtnn::testing::expect_same_neighbor_sets(got, expected, "service tiled");
}

}  // namespace
}  // namespace rtnn
