// Dynamic point-cloud lifecycle tests: bottom-up BVH refit, wide-BVH SoA
// box refresh, Accel coherence across refits, the refit-vs-rebuild cost
// policy, NeighborSearch index persistence, the DynamicSearchSession, and
// the datasets motion models.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.hpp"
#include "datasets/motion.hpp"
#include "optix/optix.hpp"
#include "rtnn/rtnn.hpp"
#include "rtnn/stages.hpp"
#include "test_util.hpp"

namespace rtnn {
namespace {

using rtnn::testing::CloudKind;

std::vector<Vec3> jitter_cloud(const std::vector<Vec3>& points, float sigma,
                               std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Vec3> moved = points;
  for (Vec3& p : moved) {
    p += Vec3{rng.normal() * sigma, rng.normal() * sigma, rng.normal() * sigma};
  }
  return moved;
}

std::vector<Aabb> cubes(std::span<const Vec3> points, float width) {
  std::vector<Aabb> aabbs(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) aabbs[i] = Aabb::cube(points[i], width);
  return aabbs;
}

// --- rt::Bvh refit -----------------------------------------------------------

TEST(BvhRefit, PreservesInvariantsAndTopology) {
  // Sized past the parallel-level-sweep threshold (16k nodes) so multi-
  // thread runs exercise the level schedule, not just the serial sweep.
  const std::vector<Vec3> before = rtnn::testing::make_cloud(CloudKind::kUniform, 20'000, 3);
  const std::vector<Vec3> after = jitter_cloud(before, 0.01f, 17);

  rt::Bvh bvh;
  bvh.build(cubes(before, 0.1f));
  const std::size_t node_count = bvh.nodes().size();
  const std::vector<std::uint32_t> order(bvh.prim_order().begin(), bvh.prim_order().end());

  bvh.refit(cubes(after, 0.1f));
  bvh.validate();
  EXPECT_EQ(bvh.nodes().size(), node_count) << "refit must not change topology";
  EXPECT_TRUE(std::equal(order.begin(), order.end(), bvh.prim_order().begin()))
      << "refit must not reorder primitives";
  // The primitive snapshot must be the moved boxes.
  EXPECT_EQ(bvh.prim_aabbs()[42], Aabb::cube(after[42], 0.1f));
}

TEST(BvhRefit, IdentityRefitKeepsBoundsAndInflationAtOne) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kLidar, 3000, 5);
  rt::Bvh bvh;
  bvh.build(cubes(points, 2.0f));
  const Aabb root_before = bvh.nodes()[bvh.root()].bounds;

  bvh.refit(cubes(points, 2.0f));
  bvh.validate();
  EXPECT_EQ(bvh.nodes()[bvh.root()].bounds, root_before);
  EXPECT_NEAR(bvh.sah_inflation(), 1.0, 1e-6);
}

TEST(BvhRefit, SahInflationGrowsWhenCorrespondenceBreaks) {
  // Shuffling the positions destroys spatial correspondence: every leaf
  // box teleports, internal boxes balloon, and the quality metric must see
  // it — that observability is what drives the rebuild policy.
  std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 4000, 9);
  rt::Bvh bvh;
  bvh.build(cubes(points, 0.05f));

  data::shuffle(points, 123);
  bvh.refit(cubes(points, 0.05f));
  bvh.validate();  // still a correct tree, just a bad one
  EXPECT_GT(bvh.sah_inflation(), 2.0);
}

TEST(BvhRefit, CountMismatchThrows) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 1000, 2);
  rt::Bvh bvh;
  bvh.build(cubes(points, 0.1f));
  std::vector<Aabb> wrong = cubes(points, 0.1f);
  wrong.pop_back();
  EXPECT_THROW(bvh.refit(wrong), Error);
}

TEST(BvhRefit, EmptyTreeRefitsToEmpty) {
  rt::Bvh bvh;
  bvh.build({});
  EXPECT_NO_THROW(bvh.refit({}));
  EXPECT_TRUE(bvh.empty());
}

// --- rt::WideBvh refit -------------------------------------------------------

TEST(WideBvhRefit, MirrorsRefittedBinaryTree) {
  // Past the 16k-node threshold: the wide refresh mirrors a binary tree
  // that was refitted by the parallel level sweep on multi-thread runs.
  const std::vector<Vec3> before =
      rtnn::testing::make_cloud(CloudKind::kUniform, 20'000, 11);
  const std::vector<Vec3> after = jitter_cloud(before, 0.02f, 23);

  rt::Bvh bvh;
  bvh.build(cubes(before, 0.08f));
  rt::WideBvh wide;
  wide.build(bvh);
  const std::size_t wide_nodes = wide.nodes().size();
  const std::size_t wide_leaves = wide.leaves().size();

  bvh.refit(cubes(after, 0.08f));
  wide.refit_from(bvh);
  wide.validate();
  EXPECT_EQ(wide.nodes().size(), wide_nodes) << "collapse must be reused, not redone";
  EXPECT_EQ(wide.leaves().size(), wide_leaves);
  EXPECT_EQ(wide.prim_aabbs()[7], bvh.prim_aabbs()[7]) << "primitive snapshot refreshed";
}

TEST(WideBvhRefit, ForeignSourceThrows) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 2000, 4);
  rt::Bvh bvh;
  bvh.build(cubes(points, 0.1f));
  rt::WideBvh wide;
  wide.build(bvh);

  rt::Bvh other;
  other.build(cubes(std::span<const Vec3>(points).subspan(0, 1000), 0.1f));
  EXPECT_THROW(wide.refit_from(other), Error);
}

// --- ox::Accel refit ---------------------------------------------------------

/// Records the primitive set each ray's IS shader saw.
struct CollectPipeline {
  std::span<const Vec3> queries;
  std::vector<std::vector<std::uint32_t>>* hits;
  Ray raygen(std::uint32_t i) const { return Ray::short_ray(queries[i]); }
  ox::TraceAction intersection(std::uint32_t ray, std::uint32_t prim) {
    (*hits)[ray].push_back(prim);
    return ox::TraceAction::kContinue;
  }
};

std::vector<std::vector<std::uint32_t>> collect_hits(const ox::Accel& accel,
                                                     std::span<const Vec3> queries,
                                                     bool use_wide,
                                                     bool use_compressed = false) {
  std::vector<std::vector<std::uint32_t>> hits(queries.size());
  CollectPipeline pipeline{queries, &hits};
  ox::LaunchOptions options;
  options.use_wide_bvh = use_wide;
  options.use_compressed_bvh = use_compressed;
  ox::launch(accel, pipeline, static_cast<std::uint32_t>(queries.size()), options);
  for (auto& h : hits) std::sort(h.begin(), h.end());
  return hits;
}

TEST(AccelRefit, RefitAndRebuildSeeIdenticalCandidateSets) {
  // The acceptance bar of the lifecycle: a refitted accel must yield
  // byte-identical candidate sets to a from-scratch build of the moved
  // cloud, on both the binary and the 8-wide traversal.
  for (const CloudKind kind : {CloudKind::kUniform, CloudKind::kLidar}) {
    const std::vector<Vec3> before = rtnn::testing::make_cloud(kind, 4000, 13);
    const float radius = rtnn::testing::typical_radius(kind);
    const std::vector<Vec3> after = jitter_cloud(before, 0.05f * radius, 29);
    const std::vector<Vec3> queries = data::jittered_queries(after, 500, 0.3f * radius, 31);

    const ox::Context ctx;
    ox::Accel refitted = ctx.build_accel(cubes(before, 2.0f * radius));
    refitted.refit(cubes(after, 2.0f * radius));
    const ox::Accel fresh = ctx.build_accel(cubes(after, 2.0f * radius));
    ASSERT_GT(refitted.refit_seconds(), 0.0);

    const auto label = rtnn::testing::to_string(kind);
    EXPECT_EQ(collect_hits(refitted, queries, /*use_wide=*/false),
              collect_hits(fresh, queries, /*use_wide=*/false))
        << label << "/binary";
    EXPECT_EQ(collect_hits(refitted, queries, /*use_wide=*/true),
              collect_hits(fresh, queries, /*use_wide=*/true))
        << label << "/wide";
    EXPECT_EQ(collect_hits(refitted, queries, true, /*use_compressed=*/true),
              collect_hits(fresh, queries, true, /*use_compressed=*/true))
        << label << "/compressed";
    // All three representations of the refitted accel agree with each other
    // (compressed = refit-then-requantized mirror).
    EXPECT_EQ(collect_hits(refitted, queries, false), collect_hits(refitted, queries, true))
        << label << "/refit binary-vs-wide";
    EXPECT_EQ(collect_hits(refitted, queries, true, false),
              collect_hits(refitted, queries, true, true))
        << label << "/refit wide-vs-compressed";
  }
}

TEST(AccelRefit, SharedDataCopiesOnWrite) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 1500, 6);
  const ox::Context ctx;
  ox::Accel a = ctx.build_accel(cubes(points, 0.1f));
  const ox::Accel snapshot = a;  // another handle on the same build product

  const std::vector<Vec3> moved = jitter_cloud(points, 0.05f, 41);
  a.refit(cubes(moved, 0.1f));
  // The snapshot still answers for the original cloud.
  EXPECT_EQ(snapshot.bvh().prim_aabbs()[3], Aabb::cube(points[3], 0.1f));
  EXPECT_EQ(a.bvh().prim_aabbs()[3], Aabb::cube(moved[3], 0.1f));
}

TEST(AccelRefit, UnbuiltAccelThrows) {
  ox::Accel accel;
  EXPECT_THROW(accel.refit({}), Error);
}

// --- refit-vs-rebuild policy -------------------------------------------------

TEST(IndexPolicy, RefitsWhileCheapAndHealthy) {
  CostModel model;  // defaults: k_refit << k1, inflation threshold > 1
  EXPECT_EQ(choose_index_update(model, 1.0), IndexUpdate::kRefit);
  EXPECT_EQ(choose_index_update(model, model.max_sah_inflation * 0.99),
            IndexUpdate::kRefit);
}

TEST(IndexPolicy, RebuildsOnQualityOrCostGrounds) {
  CostModel model;
  EXPECT_EQ(choose_index_update(model, model.max_sah_inflation * 1.01),
            IndexUpdate::kRebuild);
  // A substrate where refit is no cheaper than building must never refit.
  CostModel slow_refit;
  slow_refit.k_refit = slow_refit.k1;
  EXPECT_EQ(choose_index_update(slow_refit, 1.0), IndexUpdate::kRebuild);
}

// --- NeighborSearch index persistence ---------------------------------------

TEST(NeighborSearchDynamic, RefitFrameMatchesFreshSearchExactly) {
  for (const SearchMode mode : {SearchMode::kRange, SearchMode::kKnn}) {
    const std::vector<Vec3> before =
        rtnn::testing::make_cloud(CloudKind::kUniform, 4000, 19);
    const std::vector<Vec3> after = jitter_cloud(before, 0.002f, 37);
    const std::vector<Vec3> queries = data::jittered_queries(after, 600, 0.02f, 43);

    SearchParams params;
    params.mode = mode;
    params.radius = 0.06f;
    params.k = mode == SearchMode::kRange ? 4096 : 16;  // range: never truncate
    params.opts = OptimizationFlags::none();  // the persistent-index configuration

    NeighborSearch dynamic;
    dynamic.set_index_persistence(true);
    dynamic.set_points(before);
    (void)dynamic.search(queries, params);  // frame 0: builds the cached accel
    dynamic.update_points(after);
    NeighborSearch::Report report;
    const NeighborResult refitted = dynamic.search(queries, params, &report);

    EXPECT_EQ(report.accel_refits, 1u);
    EXPECT_EQ(report.accel_rebuilds, 0u);
    EXPECT_GT(report.time.refit, 0.0);
    EXPECT_EQ(report.time.bvh, 0.0) << "refit frame must not pay a build";

    const NeighborResult fresh = rtnn::search(after, queries, params);
    const char* label = mode == SearchMode::kRange ? "refit/range" : "refit/knn";
    if (mode == SearchMode::kRange) {
      rtnn::testing::expect_same_neighbor_sets(refitted, fresh, label);
    } else {
      rtnn::testing::expect_knn_identical(after, queries, refitted, fresh, label);
    }
  }
}

TEST(NeighborSearchDynamic, UpdateBeforeSetOrCountChangeThrows) {
  NeighborSearch search;
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 500, 3);
  EXPECT_THROW(search.update_points(points), Error);
  search.set_points(points);
  const std::span<const Vec3> fewer(points.data(), 400);
  EXPECT_THROW(search.update_points(fewer), Error);
}

TEST(NeighborSearchDynamic, StaticSemanticsUnchangedWithoutPersistence) {
  // Without opting in, repeated searches still build per call: the
  // historical timing semantics every static bench depends on.
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 2000, 8);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.08f;
  params.k = 8;
  params.opts = OptimizationFlags::none();

  NeighborSearch search;
  search.set_points(points);
  NeighborSearch::Report first, second;
  (void)search.search(points, params, &first);
  (void)search.search(points, params, &second);
  EXPECT_GT(first.time.bvh, 0.0);
  EXPECT_GT(second.time.bvh, 0.0) << "static path must rebuild per call";
  EXPECT_EQ(second.time.refit, 0.0);
}

// --- DynamicSearchSession ----------------------------------------------------

TEST(DynamicSearchSession, StreamsRefittedFramesWithParity) {
  const std::size_t n = 3000;
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.08f;
  params.k = 8;
  params.opts = OptimizationFlags::none();

  data::DriftParams drift;
  drift.velocity = 0.002f;
  DynamicSearchSession session(params);
  data::DriftMotion motion(rtnn::testing::make_cloud(CloudKind::kUniform, n, 21), drift);

  for (int frame = 0; frame < 4; ++frame) {
    const data::PointCloud& cloud = frame == 0 ? motion.points() : motion.step();
    NeighborSearch::Report report;
    const NeighborResult result = session.step(cloud, &report);
    ASSERT_EQ(result.num_queries(), n);

    if (frame == 0) {
      EXPECT_GT(report.time.bvh, 0.0) << "first frame builds";
      EXPECT_EQ(report.accel_refits, 0u);
    } else {
      EXPECT_EQ(report.accel_refits, 1u) << "frame " << frame;
      EXPECT_GT(report.time.refit, 0.0) << "frame " << frame;
      EXPECT_EQ(report.time.bvh, 0.0) << "frame " << frame;
      EXPECT_GE(report.sah_inflation, 1.0 - 1e-6);
    }
    // Every frame must agree with a from-scratch search of that frame.
    const NeighborResult fresh = rtnn::search(cloud, cloud, params);
    rtnn::testing::expect_knn_identical(cloud, cloud, result, fresh,
                                        "session frame " + std::to_string(frame));
  }
  EXPECT_EQ(session.frame(), 4u);
}

TEST(DynamicSearchSession, PolicyRebuildsAfterQualityCollapse) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.06f;
  params.k = 8;
  params.opts = OptimizationFlags::none();

  CostModel model;
  model.max_sah_inflation = 1.2;  // tight quality guard
  DynamicSearchSession session(params, model);

  std::vector<Vec3> cloud = rtnn::testing::make_cloud(CloudKind::kUniform, 4000, 33);
  (void)session.step(cloud);  // build
  // A correspondence-destroying frame: refit happens (decision precedes
  // the damage being observable) but inflation is then measured high.
  data::shuffle(cloud, 55);
  NeighborSearch::Report scrambled;
  (void)session.step(cloud, &scrambled);
  EXPECT_EQ(scrambled.accel_refits, 1u);
  EXPECT_GT(scrambled.sah_inflation, model.max_sah_inflation);
  // The next frame sees the degraded index and rebuilds.
  cloud = jitter_cloud(cloud, 0.001f, 77);
  NeighborSearch::Report recovered;
  (void)session.step(cloud, &recovered);
  EXPECT_EQ(recovered.accel_rebuilds, 1u);
  EXPECT_EQ(recovered.accel_refits, 0u);
  EXPECT_LT(recovered.sah_inflation, 1.1);
}

TEST(DynamicSearchSession, CountChangeFallsBackToRebuild) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.08f;
  params.k = 4;
  params.opts = OptimizationFlags::none();
  DynamicSearchSession session(params);

  std::vector<Vec3> cloud = rtnn::testing::make_cloud(CloudKind::kUniform, 1000, 3);
  (void)session.step(cloud);
  cloud.resize(900);  // a resize is a topology change: rebuild, don't throw
  NeighborSearch::Report report;
  const NeighborResult result = session.step(cloud, &report);
  EXPECT_EQ(result.num_queries(), 900u);
  EXPECT_EQ(report.accel_refits, 0u);
  EXPECT_GT(report.time.bvh, 0.0);
}

TEST(DynamicSearchSession, SeparateQuerySetSupported) {
  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = 0.08f;
  params.k = 64;
  params.opts = OptimizationFlags::none();
  DynamicSearchSession session(params);

  const std::vector<Vec3> cloud = rtnn::testing::make_cloud(CloudKind::kUniform, 2000, 51);
  const std::vector<Vec3> queries = data::jittered_queries(cloud, 250, 0.02f, 52);
  const NeighborResult result = session.step(cloud, queries);
  ASSERT_EQ(result.num_queries(), queries.size());
  rtnn::testing::expect_all_within_radius(cloud, queries, result, params.radius,
                                          "session/queries");
}

// --- datasets motion models --------------------------------------------------

TEST(MotionModels, DriftKeepsCountAndStaysNearBounds) {
  data::DriftParams params;
  params.velocity = 0.01f;
  data::DriftMotion motion(rtnn::testing::make_cloud(CloudKind::kUniform, 2000, 61),
                           params);
  const data::PointCloud frame0 = motion.points();
  const Aabb box = data::bounds(frame0);
  for (int i = 0; i < 10; ++i) motion.step();
  const data::PointCloud& frame10 = motion.points();
  ASSERT_EQ(frame10.size(), frame0.size());
  EXPECT_NE(frame10[0], frame0[0]) << "points must actually move";
  const Aabb roam = box.expanded(0.1f);
  for (const Vec3& p : frame10) {
    EXPECT_TRUE(roam.contains(p)) << "drift must bounce, not disperse";
  }
}

TEST(MotionModels, DriftIsDeterministic) {
  const data::PointCloud cloud = rtnn::testing::make_cloud(CloudKind::kUniform, 500, 71);
  data::DriftParams params;
  data::DriftMotion a(cloud, params);
  data::DriftMotion b(cloud, params);
  a.step();
  b.step();
  EXPECT_EQ(a.points(), b.points());
}

TEST(MotionModels, LidarSweepFramesShareSizeAndSceneButMove) {
  data::LidarParams base;
  base.target_points = 20'000;
  base.seed = 5;
  const data::LidarSweep sweep(base, /*frame_advance=*/1.5f);
  const data::PointCloud f0 = sweep.frame(0);
  const data::PointCloud f2 = sweep.frame(2);
  ASSERT_EQ(f0.size(), base.target_points);
  ASSERT_EQ(f2.size(), base.target_points);
  EXPECT_NE(f0[100], f2[100]);
  // The scanner advanced +x: the later frame's cloud centroid follows.
  auto mean_x = [](const data::PointCloud& c) {
    double x = 0.0;
    for (const Vec3& p : c) x += p.x;
    return x / static_cast<double>(c.size());
  };
  EXPECT_GT(mean_x(f2), mean_x(f0));
}

}  // namespace
}  // namespace rtnn
