#include "rtnn/neighbor_search.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/brute_force.hpp"
#include "baselines/fastrnn.hpp"
#include "datasets/point_cloud.hpp"
#include "test_util.hpp"

namespace rtnn {
namespace {

using testing::CloudKind;

// (dataset, #points, radius scale, K, opts)
enum class Opts { kNone, kSched, kSchedPart, kAll };

std::string to_string(Opts o) {
  switch (o) {
    case Opts::kNone: return "noopt";
    case Opts::kSched: return "sched";
    case Opts::kSchedPart: return "schedpart";
    case Opts::kAll: return "all";
  }
  return "?";
}

OptimizationFlags flags_of(Opts o) {
  switch (o) {
    case Opts::kNone: return OptimizationFlags::none();
    case Opts::kSched: return OptimizationFlags::scheduling_only();
    case Opts::kSchedPart: return OptimizationFlags::no_bundling();
    case Opts::kAll: return OptimizationFlags::all();
  }
  return {};
}

using SearchCase = std::tuple<CloudKind, int, float, int, Opts>;

class RtnnCorrectness : public ::testing::TestWithParam<SearchCase> {
 protected:
  void SetUp() override {
    const auto [kind, n, r_scale, k, opts] = GetParam();
    points_ = testing::make_cloud(kind, static_cast<std::size_t>(n), 31);
    queries_ = data::jittered_queries(points_, 400, testing::typical_radius(kind) * 0.3f,
                                      37);
    radius_ = testing::typical_radius(kind) * r_scale;
    k_ = static_cast<std::uint32_t>(k);
    params_.radius = radius_;
    params_.k = k_;
    params_.opts = flags_of(opts);
    params_.max_grid_cells = 1 << 18;
    search_.set_points(points_);
  }

  std::vector<Vec3> points_;
  std::vector<Vec3> queries_;
  float radius_ = 0.0f;
  std::uint32_t k_ = 0;
  SearchParams params_;
  NeighborSearch search_;
};

TEST_P(RtnnCorrectness, KnnConservativeMatchesBruteForce) {
  // With the conservative √3·a AABB width, partitioned KNN is exact.
  params_.mode = SearchMode::kKnn;
  params_.conservative_knn_aabb = true;
  const auto expected = baselines::brute_force_knn(points_, queries_, radius_, k_);
  const auto got = search_.search(queries_, params_);
  testing::expect_knn_distances_match(points_, queries_, got, expected, "rtnn-knn");
}

TEST_P(RtnnCorrectness, KnnHeuristicHasHighRecall) {
  // The paper's equi-volume heuristic: "We find this heuristic to be
  // sufficient (for correctness) from the datasets we evaluate." Assert
  // every returned neighbor is valid and aggregate recall ≥ 99%.
  params_.mode = SearchMode::kKnn;
  params_.conservative_knn_aabb = false;
  const auto expected = baselines::brute_force_knn(points_, queries_, radius_, k_);
  const auto got = search_.search(queries_, params_);
  testing::expect_all_within_radius(points_, queries_, got, radius_, "rtnn-knn-heur");
  std::uint64_t got_total = 0, expected_total = 0;
  for (std::size_t q = 0; q < queries_.size(); ++q) {
    got_total += got.count(q);
    expected_total += expected.count(q);
  }
  EXPECT_GE(got_total * 100, expected_total * 99)
      << "recall " << static_cast<double>(got_total) / static_cast<double>(expected_total);
}

TEST_P(RtnnCorrectness, RangeNeighborsValidAndCountsMatchWhenUnpartitioned) {
  params_.mode = SearchMode::kRange;
  const auto expected = baselines::brute_force_range(points_, queries_, radius_, k_);
  const auto got = search_.search(queries_, params_);
  testing::expect_all_within_radius(points_, queries_, got, radius_, "rtnn-range");
  if (!params_.opts.partitioning) {
    // Unpartitioned range search returns exactly min(K, |within r|).
    testing::expect_counts_equal(got, expected, "rtnn-range-counts");
  } else {
    // Partitioned range search returns "K neighbors from the megacell"
    // (section 5.1) — a valid bounded subset; count can only shrink.
    std::uint64_t got_total = 0, expected_total = 0;
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      EXPECT_LE(got.count(q), expected.count(q));
      got_total += got.count(q);
      expected_total += expected.count(q);
    }
    // And it must not collapse: ≥95% of the bounded neighbor mass.
    EXPECT_GE(got_total * 100, expected_total * 95);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RtnnCorrectness,
    ::testing::Values(
        SearchCase{CloudKind::kUniform, 4000, 1.0f, 8, Opts::kNone},
        SearchCase{CloudKind::kUniform, 4000, 1.0f, 8, Opts::kSched},
        SearchCase{CloudKind::kUniform, 4000, 1.0f, 8, Opts::kSchedPart},
        SearchCase{CloudKind::kUniform, 4000, 1.0f, 8, Opts::kAll},
        SearchCase{CloudKind::kUniform, 1000, 2.0f, 32, Opts::kAll},
        SearchCase{CloudKind::kUniform, 500, 0.5f, 2, Opts::kAll},
        SearchCase{CloudKind::kLidar, 6000, 1.0f, 8, Opts::kAll},
        SearchCase{CloudKind::kLidar, 6000, 1.0f, 8, Opts::kNone},
        SearchCase{CloudKind::kSurface, 5000, 1.0f, 16, Opts::kAll},
        SearchCase{CloudKind::kSurface, 5000, 2.0f, 8, Opts::kSchedPart},
        SearchCase{CloudKind::kNBody, 5000, 1.0f, 8, Opts::kAll},
        SearchCase{CloudKind::kNBody, 5000, 0.5f, 4, Opts::kSched}),
    [](const ::testing::TestParamInfo<SearchCase>& info) {
      return testing::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10)) + "_k" +
             std::to_string(std::get<3>(info.param)) + "_" +
             to_string(std::get<4>(info.param));
    });

TEST(RtnnApi, PreconditionsChecked) {
  NeighborSearch search;
  SearchParams params;
  const std::vector<Vec3> queries{{0, 0, 0}};
  EXPECT_THROW(search.search(queries, params), Error);  // no points
  const std::vector<Vec3> points{{0, 0, 0}};
  search.set_points(points);
  params.radius = -1.0f;
  EXPECT_THROW(search.search(queries, params), Error);
  params.radius = 1.0f;
  params.k = 0;
  EXPECT_THROW(search.search(queries, params), Error);
}

TEST(RtnnApi, ReportPhasesArePopulated) {
  const auto points = testing::make_cloud(CloudKind::kUniform, 5000, 3);
  const auto queries = data::jittered_queries(points, 500, 0.01f, 4);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.08f;
  params.k = 8;
  NeighborSearch::Report report;
  NeighborSearch search;
  search.set_points(points);
  search.search(queries, params, &report);
  EXPECT_GT(report.time.bvh, 0.0);
  EXPECT_GT(report.time.search, 0.0);
  EXPECT_GT(report.time.first_search, 0.0);  // scheduling pre-pass ran
  EXPECT_GE(report.num_partitions, 1u);
  EXPECT_GE(report.num_bundles, 1u);
  EXPECT_LE(report.num_bundles, report.num_partitions);
  EXPECT_GT(report.stats.rays, 0u);
  EXPECT_GT(report.stats.is_calls, 0u);
}

TEST(RtnnApi, CountOnlyModeMatchesCounts) {
  const auto points = testing::make_cloud(CloudKind::kUniform, 3000, 5);
  const auto queries = data::jittered_queries(points, 200, 0.01f, 6);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.08f;
  params.k = 8;
  NeighborSearch search;
  search.set_points(points);
  const auto with_indices = search.search(queries, params);
  params.store_indices = false;
  const auto counts_only = search.search(queries, params);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(counts_only.count(q), with_indices.count(q));
  }
  EXPECT_THROW(counts_only.neighbors(0), Error);
}

TEST(RtnnApi, DeterministicCountsAcrossRuns) {
  const auto points = testing::make_cloud(CloudKind::kSurface, 4000, 7);
  const auto queries = data::jittered_queries(points, 300, 0.005f, 8);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.03f;
  params.k = 8;
  NeighborSearch search;
  search.set_points(points);
  const auto a = search.search(queries, params);
  const auto b = search.search(queries, params);
  testing::expect_counts_equal(a, b, "determinism");
}

TEST(RtnnApi, FreeFunctionWrapper) {
  const auto points = testing::make_cloud(CloudKind::kUniform, 1000, 9);
  const auto queries = data::jittered_queries(points, 100, 0.01f, 10);
  SearchParams params;
  params.radius = 0.1f;
  params.k = 4;
  const auto result = rtnn::search(points, queries, params);
  EXPECT_EQ(result.num_queries(), queries.size());
}

TEST(RtnnApi, FastRnnBaselineMatchesBruteForce) {
  const auto points = testing::make_cloud(CloudKind::kUniform, 3000, 11);
  const auto queries = data::jittered_queries(points, 200, 0.01f, 12);
  const float radius = 0.08f;
  const std::uint32_t k = 8;
  baselines::FastRnn fastrnn;
  fastrnn.build(points);
  const auto got = fastrnn.knn_search(queries, radius, k);
  const auto expected = baselines::brute_force_knn(points, queries, radius, k);
  testing::expect_knn_distances_match(points, queries, got, expected, "fastrnn");
}

TEST(RtnnApi, SimtLaunchesProduceSameResults) {
  const auto points = testing::make_cloud(CloudKind::kUniform, 2000, 13);
  const auto queries = data::jittered_queries(points, 150, 0.01f, 14);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.08f;
  params.k = 8;
  NeighborSearch search;
  search.set_points(points);
  const auto independent = search.search(queries, params);
  params.simt_launches = true;
  NeighborSearch::Report report;
  const auto simt = search.search(queries, params, &report);
  testing::expect_knn_distances_match(points, queries, simt, independent, "simt");
  EXPECT_GT(report.stats.warps, 0u);
}

TEST(RtnnApi, UncalibratedModelStillProducesValidPlan) {
  // Bundling with the shipped default constants must at least produce a
  // valid covering plan (paper: uncalibrated → fall back is allowed; we
  // keep defaults but results must stay correct either way).
  const auto points = testing::make_cloud(CloudKind::kNBody, 8000, 15);
  const auto queries = data::jittered_queries(points, 300, 0.05f, 16);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 1.0f;
  params.k = 8;
  params.opts = OptimizationFlags::all();
  NeighborSearch::Report report;
  NeighborSearch search;
  search.set_points(points);
  const auto got = search.search(queries, params, &report);
  const auto expected = baselines::brute_force_knn(points, queries, 1.0f, 8);
  std::uint64_t got_total = 0, exp_total = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    got_total += got.count(q);
    exp_total += expected.count(q);
  }
  EXPECT_GE(got_total * 100, exp_total * 99);
}

}  // namespace
}  // namespace rtnn
