// Property-based differential harness: randomized clouds — including the
// degenerate geometries spatial structures get wrong (coincident points,
// collinear and planar sets, extreme coordinate magnitudes) — run through
// every registered backend and checked against exhaustive search, for
// both KNN and range. Every trial logs its generator and seed so a
// failure reproduces from the test output alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "engine/engine.hpp"
#include "rtnn/batch_optimizer.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

using namespace rtnn;

namespace {

struct Trial {
  std::string generator;
  std::uint64_t seed = 0;
  std::vector<Vec3> points;
  std::vector<Vec3> queries;
  float radius = 0.0f;
};

constexpr std::size_t kPoints = 384;
constexpr std::size_t kQueries = 96;

/// Queries: half sampled on the points (exact-hit / zero-distance ties),
/// half jittered around them, a few far outside (empty neighborhoods).
std::vector<Vec3> make_queries(const std::vector<Vec3>& points, float radius,
                               Pcg32& rng) {
  std::vector<Vec3> queries;
  queries.reserve(kQueries);
  for (std::size_t i = 0; i < kQueries; ++i) {
    const Vec3& base = points[rng.next_bounded(static_cast<std::uint32_t>(points.size()))];
    if (i % 8 == 7) {
      // Far away: no neighbors at all.
      queries.push_back({base.x + 1000.0f * radius, base.y, base.z});
    } else if (i % 2 == 0) {
      queries.push_back(base);
    } else {
      queries.push_back({base.x + radius * (rng.next_float() - 0.5f),
                         base.y + radius * (rng.next_float() - 0.5f),
                         base.z + radius * (rng.next_float() - 0.5f)});
    }
  }
  return queries;
}

Trial uniform_trial(std::uint64_t seed) {
  Trial trial{.generator = "uniform", .seed = seed};
  Pcg32 rng(seed);
  trial.points.reserve(kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) {
    trial.points.push_back({rng.next_float(), rng.next_float(), rng.next_float()});
  }
  trial.radius = 0.15f;
  trial.queries = make_queries(trial.points, trial.radius, rng);
  return trial;
}

/// A handful of sites, every point an exact copy of one of them: zero
/// extents, zero distances, maximal ties.
Trial coincident_trial(std::uint64_t seed) {
  Trial trial{.generator = "coincident", .seed = seed};
  Pcg32 rng(seed);
  std::vector<Vec3> sites;
  for (int s = 0; s < 12; ++s) {
    sites.push_back({rng.next_float(), rng.next_float(), rng.next_float()});
  }
  for (std::size_t i = 0; i < kPoints; ++i) {
    trial.points.push_back(sites[rng.next_bounded(static_cast<std::uint32_t>(sites.size()))]);
  }
  trial.radius = 0.05f;
  trial.queries = make_queries(trial.points, trial.radius, rng);
  return trial;
}

/// Exactly collinear points (duplicates included): a 1-D set embedded in
/// 3-D, degenerate bounds on two axes.
Trial collinear_trial(std::uint64_t seed) {
  Trial trial{.generator = "collinear", .seed = seed};
  Pcg32 rng(seed);
  const Vec3 origin{rng.next_float(), rng.next_float(), rng.next_float()};
  const Vec3 dir{1.0f, 0.5f, -0.25f};
  for (std::size_t i = 0; i < kPoints; ++i) {
    const float t = rng.next_float();
    trial.points.push_back(
        {origin.x + t * dir.x, origin.y + t * dir.y, origin.z + t * dir.z});
  }
  trial.points[5] = trial.points[4];  // plus exact duplicates on the line
  trial.radius = 0.04f;
  trial.queries = make_queries(trial.points, trial.radius, rng);
  return trial;
}

/// Exactly planar points: z is one constant for the whole set.
Trial planar_trial(std::uint64_t seed) {
  Trial trial{.generator = "planar", .seed = seed};
  Pcg32 rng(seed);
  const float z = rng.next_float();
  for (std::size_t i = 0; i < kPoints; ++i) {
    trial.points.push_back({rng.next_float(), rng.next_float(), z});
  }
  trial.radius = 0.12f;
  trial.queries = make_queries(trial.points, trial.radius, rng);
  return trial;
}

/// Large coordinate magnitudes (offsets of ~1e6) with a proportionally
/// large radius: float cancellation territory.
Trial extreme_trial(std::uint64_t seed) {
  Trial trial{.generator = "extreme", .seed = seed};
  Pcg32 rng(seed);
  const float scale = 1.0e6f;
  for (std::size_t i = 0; i < kPoints; ++i) {
    trial.points.push_back({scale + scale * 0.001f * rng.next_float(),
                            -scale + scale * 0.001f * rng.next_float(),
                            scale * 0.001f * rng.next_float()});
  }
  trial.radius = scale * 1.5e-4f;
  trial.queries = make_queries(trial.points, trial.radius, rng);
  return trial;
}

/// Dense clusters with empty space between them (partitioner stress).
Trial clustered_trial(std::uint64_t seed) {
  Trial trial{.generator = "clustered", .seed = seed};
  Pcg32 rng(seed);
  std::vector<Vec3> centers;
  for (int c = 0; c < 6; ++c) {
    centers.push_back(
        {10.0f * rng.next_float(), 10.0f * rng.next_float(), 10.0f * rng.next_float()});
  }
  for (std::size_t i = 0; i < kPoints; ++i) {
    const Vec3& c = centers[rng.next_bounded(static_cast<std::uint32_t>(centers.size()))];
    trial.points.push_back({c.x + 0.1f * (rng.next_float() - 0.5f),
                            c.y + 0.1f * (rng.next_float() - 0.5f),
                            c.z + 0.1f * (rng.next_float() - 0.5f)});
  }
  trial.radius = 0.08f;
  trial.queries = make_queries(trial.points, trial.radius, rng);
  return trial;
}

std::vector<Trial> all_trials() {
  // Seeds derive from one master PCG stream: deterministic, but easy to
  // widen. Each trial's seed is printed, so any failure reproduces by
  // constructing that one generator/seed pair.
  Pcg32 master(0xd1fFu);
  std::vector<Trial> trials;
  constexpr int kTrialsPerGenerator = 3;
  for (int i = 0; i < kTrialsPerGenerator; ++i) {
    const std::uint64_t seed = master.next_u64();
    trials.push_back(uniform_trial(seed));
    trials.push_back(coincident_trial(seed));
    trials.push_back(collinear_trial(seed));
    trials.push_back(planar_trial(seed));
    trials.push_back(extreme_trial(seed));
    trials.push_back(clustered_trial(seed));
  }
  return trials;
}

/// The largest true neighbor count of any query — the K at which a range
/// result set is unique and comparable across backends.
std::uint32_t max_range_count(engine::SearchBackend& reference,
                              const Trial& trial) {
  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = trial.radius;
  params.k = static_cast<std::uint32_t>(trial.points.size());
  params.store_indices = false;
  const NeighborResult counts = reference.search(trial.queries, params, nullptr);
  std::uint32_t max_count = 0;
  for (std::size_t q = 0; q < counts.num_queries(); ++q) {
    max_count = std::max(max_count, counts.count(q));
  }
  return max_count;
}

}  // namespace

TEST(Differential, EveryBackendAgreesWithBruteForce) {
  const std::vector<std::string> backends = engine::BackendRegistry::instance().names();
  for (const Trial& trial : all_trials()) {
    const std::string label =
        trial.generator + " seed=" + std::to_string(trial.seed);
    SCOPED_TRACE(label);
    // The reproduction line the satellite asks for: a failing run names
    // the exact generator/seed pair to rebuild.
    std::printf("[differential] generator=%s seed=%llu\n", trial.generator.c_str(),
                static_cast<unsigned long long>(trial.seed));

    auto reference = engine::make_backend("brute_force");
    reference->set_points(trial.points);

    // Range: K above every true count makes the result set unique.
    SearchParams range;
    range.mode = SearchMode::kRange;
    range.radius = trial.radius;
    range.k = max_range_count(*reference, trial) + 2;
    const NeighborResult range_expected =
        reference->search(trial.queries, range, nullptr);

    SearchParams knn;
    knn.mode = SearchMode::kKnn;
    knn.radius = trial.radius;
    knn.k = 8;
    const NeighborResult knn_expected = reference->search(trial.queries, knn, nullptr);

    for (const std::string& name : backends) {
      if (name == "brute_force") continue;
      SCOPED_TRACE(name);
      auto backend = engine::make_backend(name);
      backend->set_points(trial.points);
      const engine::BackendCaps caps = backend->caps();
      if (caps.range) {
        const NeighborResult got = backend->search(trial.queries, range, nullptr);
        rtnn::testing::expect_same_neighbor_sets(got, range_expected,
                                                 label + " range " + name);
      }
      if (caps.knn) {
        const NeighborResult got = backend->search(trial.queries, knn, nullptr);
        // Tie-tolerant: equidistant points may legally differ; per-rank
        // distances may not.
        rtnn::testing::expect_knn_distances_match(trial.points, trial.queries, got,
                                                  knn_expected, label + " knn " + name);
      }
    }
  }
}

TEST(Differential, TiledIndexMatchesMonolithic) {
  // Two-level (TLAS/BLAS) index exactness under the degenerate
  // geometries: zero-extent tiles (coincident), 1-D and 2-D embedded
  // sets, float-cancellation magnitudes. The tiled traversal must
  // surface the identical range set and tie-equivalent KNN as the
  // monolithic index it decomposes.
  for (const Trial& trial : all_trials()) {
    const std::string label =
        trial.generator + " seed=" + std::to_string(trial.seed);
    SCOPED_TRACE(label);
    std::printf("[differential] tiled generator=%s seed=%llu\n",
                trial.generator.c_str(),
                static_cast<unsigned long long>(trial.seed));

    NeighborSearch mono;
    mono.set_points(trial.points);
    NeighborSearch tiled;
    TileOptions tiling;
    tiling.tile_threshold = 48;  // 384-point trials split into 8 tiles
    tiled.set_tiling(tiling);
    tiled.set_points(trial.points);

    SearchParams range;
    range.mode = SearchMode::kRange;
    range.radius = trial.radius;
    range.k = static_cast<std::uint32_t>(trial.points.size());
    const NeighborResult range_expected = mono.search(trial.queries, range, nullptr);
    NeighborSearch::Report report;
    const NeighborResult range_got = tiled.search(trial.queries, range, &report);
    rtnn::testing::expect_same_neighbor_sets(range_got, range_expected,
                                             label + " tiled range");
    EXPECT_GT(report.tile_count, 1u) << label << ": tiling must engage";

    SearchParams knn;
    knn.mode = SearchMode::kKnn;
    knn.radius = trial.radius;
    knn.k = 8;
    const NeighborResult knn_expected = mono.search(trial.queries, knn, nullptr);
    const NeighborResult knn_got = tiled.search(trial.queries, knn, nullptr);
    rtnn::testing::expect_knn_distances_match(trial.points, trial.queries, knn_got,
                                              knn_expected, label + " tiled knn");
  }
}

TEST(Differential, BatchOptimizerOnVsOffIsExact) {
  // The serving optimizer's exactness claim, under the geometries that
  // stress it hardest: coincident sites (maximal dedup), degenerate
  // extents, and float-cancellation magnitudes. Overlapping request
  // windows guarantee cross-request bitwise-coincident rows on top of the
  // generators' internal duplicates (half of make_queries' rows are exact
  // point copies). Range must come back byte-identical; KNN is compared
  // tie-tolerantly per the suite's convention.
  for (const auto& make :
       {coincident_trial, collinear_trial, planar_trial, extreme_trial}) {
    const Trial trial = make(0xbee5ULL);
    SCOPED_TRACE(trial.generator);
    std::printf("[differential] optimizer generator=%s seed=%llu\n",
                trial.generator.c_str(), static_cast<unsigned long long>(trial.seed));

    const std::span<const Vec3> all(trial.queries);
    const std::vector<std::span<const Vec3>> windows{
        all.subspan(0, 64), all.subspan(32, 64), all};

    SearchParams range;
    range.mode = SearchMode::kRange;
    range.radius = trial.radius;
    range.k = static_cast<std::uint32_t>(trial.points.size());  // no truncation
    SearchParams knn;
    knn.mode = SearchMode::kKnn;
    knn.radius = trial.radius;
    knn.k = 8;

    NeighborSearch search;
    search.set_points(trial.points);
    for (const SearchParams& params : {range, knn}) {
      const std::string mode = params.mode == SearchMode::kRange ? "range" : "knn";
      SCOPED_TRACE(mode);

      std::vector<BatchRequest> requests;
      for (const auto& window : windows) requests.push_back({window, params});
      const BatchPlan plan = optimize_batch(requests);
      ASSERT_EQ(plan.bins.size(), 1u);
      const BatchBin& bin = plan.bins[0];
      ASSERT_GT(bin.deduped, 0u);  // the overlapping windows guarantee it
      const NeighborResult rep_result = search.search(bin.queries, bin.params);
      const std::vector<NeighborResult> on = bin.scatter(rep_result);

      for (std::size_t i = 0; i < windows.size(); ++i) {
        const std::string label =
            trial.generator + " " + mode + " request " + std::to_string(i);
        const NeighborResult off = search.search(windows[i], params);
        if (params.mode == SearchMode::kRange) {
          // Byte-identical: same counts, same neighbor ids in the same
          // order — the dedup guard only ever transfers between bitwise
          // equal rows, and per-row traversal order is query-independent.
          ASSERT_EQ(on[i].num_queries(), off.num_queries()) << label;
          for (std::size_t q = 0; q < off.num_queries(); ++q) {
            ASSERT_EQ(on[i].count(q), off.count(q)) << label << " query " << q;
            const auto got = on[i].neighbors(q);
            const auto want = off.neighbors(q);
            ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
                << label << " query " << q;
          }
        } else {
          rtnn::testing::expect_knn_distances_match(trial.points, windows[i], on[i],
                                                    off, label);
        }
      }
    }
  }
}

TEST(Differential, DegenerateCloudsThroughTheBatchedPath) {
  // The coalesced entry point sees the same degenerate geometry the
  // per-request path does (the service merges arbitrary client queries).
  for (const auto& make : {coincident_trial, collinear_trial, extreme_trial}) {
    const Trial trial = make(0x5eedULL);
    SCOPED_TRACE(trial.generator);
    std::printf("[differential] batched generator=%s seed=%llu\n",
                trial.generator.c_str(), static_cast<unsigned long long>(trial.seed));

    SearchParams knn;
    knn.mode = SearchMode::kKnn;
    knn.radius = trial.radius;
    knn.k = 8;

    auto reference = engine::make_backend("brute_force");
    reference->set_points(trial.points);
    const NeighborResult expected = reference->search(trial.queries, knn, nullptr);

    NeighborSearch search;
    search.set_points(trial.points);
    const std::size_t half = trial.queries.size() / 2;
    const std::vector<BatchSlice> slices{{0, half},
                                         {half, trial.queries.size() - half}};
    const std::vector<NeighborResult> parts =
        search.search_batched(trial.queries, slices, knn);
    const auto whole = split_batch_result(expected, slices);
    for (std::size_t i = 0; i < slices.size(); ++i) {
      const std::span<const Vec3> queries(trial.queries.data() + slices[i].first,
                                          slices[i].count);
      rtnn::testing::expect_knn_distances_match(trial.points, queries, parts[i],
                                                whole[i], "slice");
    }
  }
}

TEST(Differential, ShardedServiceMatchesUnshardedOnEveryGenerator) {
  // The spatial-sharding exactness claim, end to end through the serving
  // path: every degenerate generator runs as two tenants of one service —
  // a whole-cloud tenant and a Morton-sharded one — and the answers must
  // agree. Range uses a K past every true count, so the result is a
  // unique set (the gather's canonical ascending-id order may differ from
  // the flat backend's traversal order, never its membership); KNN is
  // tie-tolerant per the suite's convention. Coincident and collinear
  // clouds are the hard cases: zero-extent shard AABBs and duplicate
  // points split across shard boundaries.
  service::ServiceConfig config;
  config.max_delay = std::chrono::microseconds(0);  // per-request dispatch
  service::SearchService service(config);

  service::CloudConfig sharded_config;
  sharded_config.shard_threshold = 64;  // kPoints=384 -> 4 shards (capped)
  sharded_config.max_shards = 4;

  int tenant = 0;
  for (const Trial& trial : all_trials()) {
    const std::string label =
        trial.generator + " seed=" + std::to_string(trial.seed);
    SCOPED_TRACE(label);
    std::printf("[differential] sharded-service generator=%s seed=%llu\n",
                trial.generator.c_str(), static_cast<unsigned long long>(trial.seed));

    const std::string flat_name = "flat-" + std::to_string(tenant);
    const std::string sharded_name = "sharded-" + std::to_string(tenant);
    ++tenant;
    const service::CloudHandle flat = service.register_cloud(flat_name, trial.points);
    const service::CloudHandle sharded =
        service.register_cloud(sharded_name, trial.points, sharded_config);

    auto reference = engine::make_backend("brute_force");
    reference->set_points(trial.points);

    SearchParams range;
    range.mode = SearchMode::kRange;
    range.radius = trial.radius;
    range.k = max_range_count(*reference, trial) + 2;
    rtnn::testing::expect_same_neighbor_sets(
        service.query(sharded, trial.queries, range).result,
        service.query(flat, trial.queries, range).result, label + " range");

    SearchParams knn;
    knn.mode = SearchMode::kKnn;
    knn.radius = trial.radius;
    knn.k = 8;
    rtnn::testing::expect_knn_distances_match(
        trial.points, trial.queries, service.query(sharded, trial.queries, knn).result,
        service.query(flat, trial.queries, knn).result, label + " knn");

    service.drop_cloud(flat_name);
    service.drop_cloud(sharded_name);
  }
}
