#include "optix/optix.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace rtnn::ox {
namespace {

struct TestScene {
  std::vector<Vec3> points;
  std::vector<Aabb> aabbs;
  Accel accel;
};

TestScene make_scene(std::size_t n, float width, std::uint64_t seed) {
  TestScene scene;
  Pcg32 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    scene.points.push_back(rng.uniform_in_aabb({{0, 0, 0}, {1, 1, 1}}));
    scene.aabbs.push_back(Aabb::cube(scene.points.back(), width));
  }
  const Context ctx;
  scene.accel = ctx.build_accel(scene.aabbs);
  return scene;
}

// Minimal pipeline: counts IS invocations per ray.
struct CountingPipeline {
  std::vector<Vec3> queries;
  std::vector<std::uint32_t> counts;
  Ray raygen(std::uint32_t i) const { return Ray::short_ray(queries[i]); }
  TraceAction intersection(std::uint32_t ray, std::uint32_t) {
    ++counts[ray];
    return TraceAction::kContinue;
  }
};

// Pipeline with all five shader stages.
struct FullPipeline {
  std::vector<Vec3> queries;
  std::vector<std::uint32_t> counts;
  std::vector<std::uint8_t> closest_hit_called;
  std::vector<std::uint8_t> miss_called;
  Ray raygen(std::uint32_t i) const { return Ray::short_ray(queries[i]); }
  TraceAction intersection(std::uint32_t ray, std::uint32_t) {
    ++counts[ray];
    return TraceAction::kContinue;
  }
  void closest_hit(std::uint32_t ray) { closest_hit_called[ray] = 1; }
  void miss(std::uint32_t ray) { miss_called[ray] = 1; }
};

static_assert(PipelineShaders<CountingPipeline>);
static_assert(PipelineShaders<FullPipeline>);
static_assert(!HasClosestHit<CountingPipeline>);
static_assert(HasClosestHit<FullPipeline>);
static_assert(HasMiss<FullPipeline>);

TEST(Optix, AccelBuildSnapshotsGeometry) {
  TestScene scene = make_scene(100, 0.05f, 1);
  EXPECT_TRUE(scene.accel.built());
  EXPECT_EQ(scene.accel.prim_count(), 100u);
  EXPECT_GE(scene.accel.build_seconds(), 0.0);
  // Mutating the source AABBs must not affect the accel (snapshot
  // semantics, like a GPU build).
  const Aabb before = scene.accel.bvh().prim_aabbs()[0];
  scene.aabbs[0] = Aabb::cube({100, 100, 100}, 1.0f);
  EXPECT_EQ(scene.accel.bvh().prim_aabbs()[0], before);
}

TEST(Optix, LaunchRunsEveryIndex) {
  TestScene scene = make_scene(500, 0.1f, 2);
  Pcg32 rng(2);
  CountingPipeline pipeline;
  for (int i = 0; i < 100; ++i) {
    pipeline.queries.push_back(rng.uniform_in_aabb({{0, 0, 0}, {1, 1, 1}}));
  }
  pipeline.counts.assign(pipeline.queries.size(), 0);
  const auto stats = launch(scene.accel, pipeline, 100);
  EXPECT_EQ(stats.rays, 100u);
  std::uint64_t total = 0;
  for (const auto c : pipeline.counts) total += c;
  EXPECT_EQ(total, stats.is_calls);
}

TEST(Optix, ClosestHitAndMissDispatch) {
  // Queries inside the cloud trigger IS ⇒ CH; far-away queries trigger
  // Miss — the "Found a Hit?" branch of paper Figure 3.
  TestScene scene = make_scene(2000, 0.2f, 3);
  FullPipeline pipeline;
  pipeline.queries = {Vec3{0.5f, 0.5f, 0.5f}, Vec3{50.0f, 50.0f, 50.0f}};
  pipeline.counts.assign(2, 0);
  pipeline.closest_hit_called.assign(2, 0);
  pipeline.miss_called.assign(2, 0);
  launch(scene.accel, pipeline, 2);
  EXPECT_EQ(pipeline.closest_hit_called[0], 1);
  EXPECT_EQ(pipeline.miss_called[0], 0);
  EXPECT_EQ(pipeline.closest_hit_called[1], 0);
  EXPECT_EQ(pipeline.miss_called[1], 1);
}

TEST(Optix, LaunchAgainstUnbuiltAccelThrows) {
  Accel accel;
  CountingPipeline pipeline;
  pipeline.queries = {Vec3{0, 0, 0}};
  pipeline.counts.assign(1, 0);
  EXPECT_THROW(launch(accel, pipeline, 1), Error);
}

TEST(Optix, SimtLaunchOptionProducesWarpStats) {
  TestScene scene = make_scene(300, 0.1f, 4);
  Pcg32 rng(4);
  CountingPipeline pipeline;
  for (int i = 0; i < 64; ++i) {
    pipeline.queries.push_back(rng.uniform_in_aabb({{0, 0, 0}, {1, 1, 1}}));
  }
  pipeline.counts.assign(pipeline.queries.size(), 0);
  LaunchOptions options;
  options.model = ExecutionModel::kWarpLockstep;
  const auto stats = launch(scene.accel, pipeline, 64, options);
  EXPECT_EQ(stats.warps, 2u);
  EXPECT_GT(stats.occupancy(), 0.0);
}

TEST(Optix, LeafSizeOptionHonored) {
  const Context ctx;
  Pcg32 rng(5);
  std::vector<Aabb> aabbs;
  for (int i = 0; i < 64; ++i) {
    aabbs.push_back(Aabb::cube(rng.uniform_in_aabb({{0, 0, 0}, {1, 1, 1}}), 0.01f));
  }
  AccelBuildOptions options;
  options.leaf_size = 4;
  const Accel accel = ctx.build_accel(aabbs, options);
  for (const auto& node : accel.bvh().nodes()) {
    if (node.is_leaf()) EXPECT_LE(node.count, 4u);
  }
}

}  // namespace
}  // namespace rtnn::ox
