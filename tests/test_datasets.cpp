#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/error.hpp"

#include "datasets/io.hpp"
#include "datasets/lidar.hpp"
#include "datasets/nbody.hpp"
#include "datasets/point_cloud.hpp"
#include "datasets/surface.hpp"
#include "datasets/uniform.hpp"

namespace rtnn::data {
namespace {

TEST(Datasets, LidarReachesTargetAndIsDeterministic) {
  LidarParams params;
  params.target_points = 50'000;
  const PointCloud a = lidar_scan(params);
  const PointCloud b = lidar_scan(params);
  EXPECT_EQ(a.size(), 50'000u);
  EXPECT_EQ(a, b);
}

TEST(Datasets, LidarHasThinVerticalExtent) {
  // The KITTI-like property the paper calls out: "mostly distributed in
  // the xy-plane ... confined in a very narrow z-range".
  LidarParams params;
  params.target_points = 80'000;
  const PointCloud cloud = lidar_scan(params);
  const Aabb box = bounds(cloud);
  const Vec3 e = box.extent();
  EXPECT_LT(e.z, 0.25f * std::min(e.x, e.y));
}

TEST(Datasets, LidarPointsNearOrAboveGround) {
  LidarParams params;
  params.target_points = 30'000;
  const PointCloud cloud = lidar_scan(params);
  for (const Vec3& p : cloud) {
    EXPECT_GT(p.z, -1.0f);   // range noise can dip slightly below 0
    EXPECT_LT(p.z, 20.0f);   // nothing taller than the buildings
  }
}

TEST(Datasets, SurfaceModelsNormalizedToUnitCube) {
  for (const SurfaceModel model :
       {SurfaceModel::kBunny, SurfaceModel::kDragon, SurfaceModel::kBuddha}) {
    SurfaceParams params;
    params.model = model;
    params.target_points = 20'000;
    const PointCloud cloud = surface_scan(params);
    EXPECT_EQ(cloud.size(), 20'000u);
    const Aabb box = bounds(cloud);
    EXPECT_GE(box.lo.x, -0.001f);
    EXPECT_LE(box.hi.x, 1.001f);
    EXPECT_GE(box.lo.z, -0.001f);
    EXPECT_LE(box.hi.z, 1.001f);
  }
}

TEST(Datasets, SurfaceIsAHollowShell) {
  // Scan points live on a 2D manifold: the cloud's center region should be
  // nearly empty (unlike a volumetric distribution).
  SurfaceParams params;
  params.target_points = 50'000;
  const PointCloud cloud = surface_scan(params);
  const Aabb box = bounds(cloud);
  const Vec3 c = box.center();
  const float r = 0.1f * max_component(box.extent());
  std::size_t central = 0;
  for (const Vec3& p : cloud) {
    if (distance2(p, c) < r * r) ++central;
  }
  EXPECT_LT(central, cloud.size() / 100);
}

TEST(Datasets, NBodyIsStronglyClustered) {
  // Compare cell-occupancy variance against a uniform cloud of the same
  // size: the Soneira–Peebles process must be far more clumped (this is
  // the property that stresses RTNN's partitioning).
  NBodyParams params;
  params.target_points = 100'000;
  const PointCloud clustered = nbody_cluster(params);
  EXPECT_EQ(clustered.size(), 100'000u);
  const Aabb box = bounds(clustered);
  const PointCloud uniform = uniform_box(clustered.size(), box, 3);

  auto occupancy_variance = [&](const PointCloud& cloud) {
    constexpr int kRes = 16;
    std::vector<double> counts(kRes * kRes * kRes, 0.0);
    for (const Vec3& p : cloud) {
      const Vec3 n = box.normalized(p);
      const int x = std::min(kRes - 1, static_cast<int>(n.x * kRes));
      const int y = std::min(kRes - 1, static_cast<int>(n.y * kRes));
      const int z = std::min(kRes - 1, static_cast<int>(n.z * kRes));
      counts[(z * kRes + y) * kRes + x] += 1.0;
    }
    const double mean = static_cast<double>(cloud.size()) / counts.size();
    double var = 0.0;
    for (const double c : counts) var += (c - mean) * (c - mean);
    return var / static_cast<double>(counts.size());
  };
  EXPECT_GT(occupancy_variance(clustered), 20.0 * occupancy_variance(uniform));
}

TEST(Datasets, NBodyDeterministic) {
  NBodyParams params;
  params.target_points = 10'000;
  EXPECT_EQ(nbody_cluster(params), nbody_cluster(params));
}

TEST(Datasets, UniformBoxStaysInBox) {
  const Aabb box{{-1, -2, -3}, {4, 5, 6}};
  const PointCloud cloud = uniform_box(5'000, box, 7);
  EXPECT_EQ(cloud.size(), 5'000u);
  for (const Vec3& p : cloud) {
    EXPECT_TRUE(box.contains(p));
  }
}

TEST(Datasets, GridQueriesRasterOrderIsCoherent) {
  GridQueryParams params;
  params.resolution = 8;
  params.queries_per_cell = 2;
  const PointCloud queries = grid_queries_raster(params);
  EXPECT_EQ(queries.size(), 8u * 8u * 8u * 2u);
  // Raster order: consecutive queries are spatially close on average,
  // much closer than random pairs.
  double adjacent = 0.0;
  for (std::size_t i = 1; i < queries.size(); ++i) {
    adjacent += distance(queries[i - 1], queries[i]);
  }
  adjacent /= static_cast<double>(queries.size() - 1);
  PointCloud shuffled = queries;
  shuffle(shuffled, 1);
  double random_adjacent = 0.0;
  for (std::size_t i = 1; i < shuffled.size(); ++i) {
    random_adjacent += distance(shuffled[i - 1], shuffled[i]);
  }
  random_adjacent /= static_cast<double>(shuffled.size() - 1);
  EXPECT_LT(adjacent, 0.5 * random_adjacent);
}

TEST(Datasets, SubsampleAndShuffle) {
  const PointCloud cloud = uniform_box(1'000, {{0, 0, 0}, {1, 1, 1}}, 9);
  const PointCloud sub = subsample(cloud, 100, 1);
  EXPECT_EQ(sub.size(), 100u);
  // Subsample draws from the original cloud.
  for (const Vec3& p : sub) {
    EXPECT_NE(std::find(cloud.begin(), cloud.end(), p), cloud.end());
  }
  PointCloud copy = cloud;
  shuffle(copy, 2);
  EXPECT_NE(copy, cloud);
  auto sorted_a = cloud, sorted_b = copy;
  auto lt = [](const Vec3& a, const Vec3& b) {
    return a.x != b.x ? a.x < b.x : (a.y != b.y ? a.y < b.y : a.z < b.z);
  };
  std::sort(sorted_a.begin(), sorted_a.end(), lt);
  std::sort(sorted_b.begin(), sorted_b.end(), lt);
  EXPECT_EQ(sorted_a, sorted_b);  // same multiset
}

TEST(Datasets, FitToRescalesIntoTarget) {
  PointCloud cloud = uniform_box(500, {{-10, -10, -10}, {30, 10, 10}}, 11);
  const Aabb target{{0, 0, 0}, {1, 1, 1}};
  fit_to(cloud, target);
  const Aabb box = bounds(cloud);
  EXPECT_GE(box.lo.x, -0.001f);
  EXPECT_LE(box.hi.x, 1.001f);
}

TEST(Datasets, JitteredQueriesNearData) {
  const PointCloud cloud = uniform_box(1'000, {{0, 0, 0}, {1, 1, 1}}, 13);
  const PointCloud queries = jittered_queries(cloud, 200, 0.01f, 17);
  EXPECT_EQ(queries.size(), 200u);
  const Aabb box = bounds(cloud).expanded(0.1f);
  for (const Vec3& q : queries) {
    EXPECT_TRUE(box.contains(q));
  }
}

TEST(Datasets, XyzRoundtrip) {
  const PointCloud cloud = uniform_box(100, {{0, 0, 0}, {1, 1, 1}}, 19);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rtnn_test_cloud.xyz").string();
  write_xyz(path, cloud);
  const PointCloud loaded = read_xyz(path);
  ASSERT_EQ(loaded.size(), cloud.size());
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    EXPECT_NEAR(loaded[i].x, cloud[i].x, 1e-4f);
    EXPECT_NEAR(loaded[i].y, cloud[i].y, 1e-4f);
    EXPECT_NEAR(loaded[i].z, cloud[i].z, 1e-4f);
  }
  std::remove(path.c_str());
}

TEST(Datasets, XyzRejectsMissingFileAndBadLines) {
  EXPECT_THROW(read_xyz("/nonexistent/path/cloud.xyz"), Error);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rtnn_bad.xyz").string();
  {
    std::ofstream out(path);
    out << "1.0 2.0\n";  // only two coords
  }
  EXPECT_THROW(read_xyz(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtnn::data
