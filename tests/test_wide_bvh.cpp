// WideBvh collapse invariants and binary-vs-wide traversal parity: the
// wall-clock 8-wide path must find exactly the primitives the binary
// simulation path finds, whichever of the AVX2 / scalar node tests this
// build selected.
#include "rtcore/wide_bvh.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/flat_knn.hpp"
#include "core/rng.hpp"
#include "rtcore/traversal.hpp"
#include "test_util.hpp"

namespace rtnn::rt {
namespace {

using rtnn::testing::CloudKind;

struct Scene {
  std::vector<Vec3> points;
  std::vector<Aabb> aabbs;
  Bvh bvh;
  WideBvh wide;
};

Scene make_scene(CloudKind kind, std::size_t n, float width, std::uint64_t seed,
                 std::uint32_t leaf_size = 1) {
  Scene scene;
  scene.points = rtnn::testing::make_cloud(kind, n, seed);
  scene.aabbs.reserve(scene.points.size());
  for (const Vec3& p : scene.points) scene.aabbs.push_back(Aabb::cube(p, width));
  scene.bvh.build(scene.aabbs, BvhBuildOptions{leaf_size});
  scene.wide.build(scene.bvh);
  return scene;
}

/// Records every primitive the IS stage sees, per ray.
struct Collector {
  std::vector<std::set<std::uint32_t>> hits;
  explicit Collector(std::size_t rays) : hits(rays) {}
  TraceAction intersect(std::uint32_t ray, std::uint32_t prim) {
    hits[ray].insert(prim);
    return TraceAction::kContinue;
  }
};

/// KNN program over a heap pool — K-nearest results are traversal-order
/// independent, so binary and wide launches must agree id-for-id after
/// sorting, for any K.
struct KnnProgram {
  std::span<const Vec3> points;
  std::span<const Vec3> queries;
  float radius2;
  FlatKnnHeaps* heaps;
  TraceAction intersect(std::uint32_t ray, std::uint32_t prim) {
    const float d2 = distance2(points[prim], queries[ray]);
    if (d2 <= radius2 && d2 < heaps->worst_dist2(ray)) heaps->push(ray, d2, prim);
    return TraceAction::kContinue;
  }
};

std::vector<Ray> short_rays(std::span<const Vec3> queries) {
  std::vector<Ray> rays;
  rays.reserve(queries.size());
  for (const Vec3& q : queries) rays.push_back(Ray::short_ray(q));
  return rays;
}

TEST(WideBvh, CollapseInvariants) {
  for (const std::size_t n : {1u, 2u, 7u, 8u, 9u, 63u, 1000u, 5000u}) {
    const Scene scene = make_scene(CloudKind::kUniform, n, 0.05f, n);
    ASSERT_NO_THROW(scene.wide.validate()) << "n=" << n;
    const WideBvhStats stats = scene.wide.stats();
    const BvhStats bin_stats = scene.bvh.stats();
    EXPECT_LE(stats.node_count, bin_stats.node_count) << "n=" << n;
    EXPECT_EQ(scene.wide.prim_count(), scene.bvh.prim_count());
    if (n >= 64) {
      // A healthy collapse beats the binary branching factor comfortably;
      // bottom-of-tree subtrees with < 8 leaves keep the average below 8.
      EXPECT_GT(stats.avg_children, 3.0) << "n=" << n;
      EXPECT_LE(stats.max_depth, bin_stats.max_depth) << "n=" << n;
    }
  }
}

TEST(WideBvh, CollapseInvariantsWiderLeaves) {
  for (const std::uint32_t leaf_size : {2u, 4u, 8u}) {
    const Scene scene = make_scene(CloudKind::kUniform, 3000, 0.05f, leaf_size, leaf_size);
    ASSERT_NO_THROW(scene.wide.validate()) << "leaf_size=" << leaf_size;
  }
}

TEST(WideBvh, EmptyAndDegenerateInputs) {
  Bvh empty;
  empty.build({});
  WideBvh wide;
  wide.build(empty);
  EXPECT_TRUE(wide.empty());
  ASSERT_NO_THROW(wide.validate());
  Collector collector(1);
  const std::vector<Ray> rays{Ray::short_ray({0, 0, 0})};
  const auto stats = trace(wide, rays, collector);
  EXPECT_EQ(stats.is_calls, 0u);

  // All points coincident: duplicated Morton codes force median splits.
  std::vector<Aabb> coincident(1000, Aabb::cube({0.5f, 0.5f, 0.5f}, 0.1f));
  Bvh bvh;
  bvh.build(coincident);
  WideBvh wide2;
  wide2.build(bvh);
  ASSERT_NO_THROW(wide2.validate());
  Collector c2(1);
  const std::vector<Ray> r2{Ray::short_ray({0.5f, 0.5f, 0.5f})};
  trace(wide2, r2, c2);
  EXPECT_EQ(c2.hits[0].size(), coincident.size());

  // Single primitive: the binary root itself is a leaf.
  Bvh single;
  single.build(std::vector<Aabb>{Aabb::cube({0.1f, 0.2f, 0.3f}, 0.2f)});
  WideBvh wide3;
  wide3.build(single);
  ASSERT_NO_THROW(wide3.validate());
  Collector c3(1);
  const std::vector<Ray> r3{Ray::short_ray({0.1f, 0.2f, 0.3f})};
  trace(wide3, r3, c3);
  EXPECT_EQ(c3.hits[0], std::set<std::uint32_t>{0u});
}

/// The heart of the PR: the wide path and the binary path must invoke the
/// IS shader on exactly the same primitive sets — on uniform and on
/// lidar-shaped (highly anisotropic density) clouds, with the SIMD node
/// test agreeing with the scalar one on every box.
TEST(WideBvh, TraversalParityWithBinary) {
  for (const CloudKind kind : {CloudKind::kUniform, CloudKind::kLidar}) {
    const float width = 2.0f * rtnn::testing::typical_radius(kind);
    const Scene scene = make_scene(kind, 4000, width, 17);
    Pcg32 rng(99);
    std::vector<Vec3> queries = scene.points;
    for (int i = 0; i < 500; ++i) {
      queries.push_back(rng.uniform_in_aabb(scene.bvh.scene_bounds().expanded(width)));
    }
    const auto rays = short_rays(queries);

    Collector binary(queries.size());
    trace(scene.bvh, rays, binary);
    Collector wide(queries.size());
    trace(scene.wide, rays, wide);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(wide.hits[q], binary.hits[q])
          << rtnn::testing::to_string(kind) << " query " << q;
    }
  }
}

TEST(WideBvh, TraversalParityWiderLeaves) {
  const Scene scene = make_scene(CloudKind::kUniform, 3000, 0.08f, 21, 4);
  const auto rays = short_rays(scene.points);
  Collector binary(scene.points.size());
  trace(scene.bvh, rays, binary);
  Collector wide(scene.points.size());
  trace(scene.wide, rays, wide);
  EXPECT_EQ(wide.hits, binary.hits);
}

TEST(WideBvh, KnnParityAcrossK) {
  for (const CloudKind kind : {CloudKind::kUniform, CloudKind::kLidar}) {
    const float radius = 2.0f * rtnn::testing::typical_radius(kind);
    const Scene scene = make_scene(kind, 3000, 2.0f * radius, 31);
    const auto rays = short_rays(scene.points);
    for (const std::uint32_t k : {1u, 8u, 64u}) {
      FlatKnnHeaps heaps_bin(scene.points.size(), k);
      KnnProgram bin{scene.points, scene.points, radius * radius, &heaps_bin};
      trace(scene.bvh, rays, bin);
      FlatKnnHeaps heaps_wide(scene.points.size(), k);
      KnnProgram wid{scene.points, scene.points, radius * radius, &heaps_wide};
      trace(scene.wide, rays, wid);
      rtnn::testing::expect_same_neighbor_sets(
          heaps_wide.extract(), heaps_bin.extract(),
          rtnn::testing::to_string(kind) + " K=" + std::to_string(k));
    }
  }
}

/// Direct check that this build's wide_node_hits (AVX2 or scalar) agrees
/// with the scalar single-box test on every slot — including arbitrary ray
/// directions, zero direction components (±inf reciprocals) and boundary
/// coordinates that produce NaNs in the slab arithmetic.
TEST(WideBvh, NodeTestMatchesScalarSemantics) {
  Pcg32 rng(4242);
  const Aabb domain{{-1, -1, -1}, {1, 1, 1}};
  for (int iter = 0; iter < 2000; ++iter) {
    alignas(64) WideBvhNode node{};
    node.count = kWideBvhWidth;
    Aabb boxes[kWideBvhWidth];
    for (std::uint32_t i = 0; i < kWideBvhWidth; ++i) {
      Vec3 a = rng.uniform_in_aabb(domain);
      Vec3 b = rng.uniform_in_aabb(domain);
      boxes[i] = Aabb{min(a, b), max(a, b)};
      node.minx[i] = boxes[i].lo.x;
      node.miny[i] = boxes[i].lo.y;
      node.minz[i] = boxes[i].lo.z;
      node.maxx[i] = boxes[i].hi.x;
      node.maxy[i] = boxes[i].hi.y;
      node.maxz[i] = boxes[i].hi.z;
      node.child[i] = WideBvhNode::kLeafBit | i;
    }
    Ray ray;
    switch (iter % 4) {
      case 0:  // RTNN's degenerate short ray
        ray = Ray::short_ray(rng.uniform_in_aabb(domain));
        break;
      case 1:  // general segment
        ray.origin = rng.uniform_in_aabb(domain);
        ray.dir = rng.uniform_in_aabb(domain);
        ray.tmin = 0.0f;
        ray.tmax = 2.0f;
        break;
      case 2:  // axis-aligned: two zero components → ±inf reciprocals
        ray.origin = rng.uniform_in_aabb(domain);
        ray.dir = Vec3{0.0f, iter % 8 < 4 ? 1.0f : -1.0f, 0.0f};
        ray.tmax = 1.5f;
        break;
      default:  // origin pinned to a box face: NaN (0 * inf) in the slab
        ray.origin = Vec3{boxes[3].lo.x, boxes[3].lo.y, boxes[3].hi.z};
        ray.dir = Vec3{1.0f, 0.0f, 0.0f};
        ray.tmax = 1.0f;
        break;
    }
    const std::uint32_t mask =
        detail::wide_node_hits(node, ray, reciprocal_dir(ray));
    for (std::uint32_t i = 0; i < kWideBvhWidth; ++i) {
      EXPECT_EQ((mask >> i) & 1u, ray_intersects_aabb(ray, boxes[i]) ? 1u : 0u)
          << "iter " << iter << " slot " << i;
    }
  }
}

TEST(WideBvh, WideTraceRejectsSimulationModes) {
  const Scene scene = make_scene(CloudKind::kUniform, 100, 0.1f, 3);
  Collector collector(1);
  const std::vector<Ray> rays{Ray::short_ray({0.5f, 0.5f, 0.5f})};
  TraceConfig config;
  config.model = ExecutionModel::kWarpLockstep;
  EXPECT_THROW(trace(scene.wide, rays, collector, config), Error);
}

}  // namespace
}  // namespace rtnn::rt
