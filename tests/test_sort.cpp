#include "core/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/rng.hpp"

namespace rtnn {
namespace {

template <typename Key>
std::vector<Key> random_keys(std::size_t n, std::uint64_t seed) {
  std::vector<Key> keys(n);
  Pcg32 rng(seed);
  for (auto& k : keys) {
    k = static_cast<Key>(sizeof(Key) == 8 ? rng.next_u64() : rng.next_u32());
  }
  return keys;
}

TEST(RadixSort, SortsU32) {
  auto keys = random_keys<std::uint32_t>(10000, 1);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  radix_sort(keys);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSort, SortsU64) {
  auto keys = random_keys<std::uint64_t>(10000, 2);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  radix_sort(keys);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSort, EmptyAndSingle) {
  std::vector<std::uint32_t> empty;
  radix_sort(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<std::uint32_t> one{42};
  radix_sort(one);
  EXPECT_EQ(one, std::vector<std::uint32_t>{42});
}

TEST(RadixSort, AlreadySortedAndReversed) {
  std::vector<std::uint32_t> keys(1000);
  std::iota(keys.begin(), keys.end(), 0u);
  auto expected = keys;
  radix_sort(keys);
  EXPECT_EQ(keys, expected);
  std::reverse(keys.begin(), keys.end());
  radix_sort(keys);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSort, PairsCarryValues) {
  auto keys = random_keys<std::uint64_t>(5000, 3);
  std::vector<std::uint32_t> values(keys.size());
  std::iota(values.begin(), values.end(), 0u);
  const auto original = keys;
  radix_sort_pairs(keys, values);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(original[values[i]], keys[i]);
  }
}

TEST(RadixSort, PairsStable) {
  // Many duplicate keys: equal keys must keep input order of values.
  std::vector<std::uint32_t> keys(4000);
  std::vector<std::uint32_t> values(keys.size());
  Pcg32 rng(4);
  for (auto& k : keys) k = rng.next_bounded(8);
  std::iota(values.begin(), values.end(), 0u);
  radix_sort_pairs(keys, values);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i - 1] == keys[i]) {
      EXPECT_LT(values[i - 1], values[i]);
    }
  }
}

TEST(RadixSort, SkipsConstantBytePasses) {
  // Keys differing only in the low byte exercise the pass-skipping path.
  std::vector<std::uint32_t> keys(1000);
  Pcg32 rng(5);
  for (auto& k : keys) k = 0xAB000000u | rng.next_bounded(256);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  radix_sort(keys);
  EXPECT_EQ(keys, expected);
}

TEST(SortPermutation, MatchesSort) {
  auto keys = random_keys<std::uint64_t>(3000, 6);
  const auto perm = sort_permutation(keys);
  ASSERT_EQ(perm.size(), keys.size());
  // perm applied to keys yields sorted order; keys unchanged.
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]);
  }
  // perm is a permutation.
  std::vector<std::uint32_t> sorted_perm(perm.begin(), perm.end());
  std::sort(sorted_perm.begin(), sorted_perm.end());
  for (std::size_t i = 0; i < sorted_perm.size(); ++i) {
    EXPECT_EQ(sorted_perm[i], static_cast<std::uint32_t>(i));
  }
}

TEST(SortPermutation, U32Variant) {
  auto keys = random_keys<std::uint32_t>(2000, 7);
  const auto perm = sort_permutation(keys);
  for (std::size_t i = 1; i < perm.size(); ++i) {
    EXPECT_LE(keys[perm[i - 1]], keys[perm[i]]);
  }
}

}  // namespace
}  // namespace rtnn
