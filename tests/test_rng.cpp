#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rtnn {
namespace {

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInBounds) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_bounded(17), 17u);
  }
  EXPECT_EQ(rng.next_bounded(0), 0u);
  EXPECT_EQ(rng.next_bounded(1), 0u);
}

TEST(Pcg32, FloatInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Pcg32, UniformRangeRespected) {
  Pcg32 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 5.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 5.0f);
  }
}

TEST(Pcg32, UniformMeanApproximately) {
  Pcg32 rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_float();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, NormalMoments) {
  Pcg32 rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Pcg32, UnitVectorIsUnit) {
  Pcg32 rng(13);
  Vec3 mean{};
  for (int i = 0; i < 10000; ++i) {
    const Vec3 v = rng.unit_vector();
    EXPECT_NEAR(length(v), 1.0f, 1e-5f);
    mean += v;
  }
  // Roughly isotropic.
  EXPECT_LT(length(mean / 10000.0f), 0.05f);
}

TEST(Pcg32, UniformInAabbContained) {
  Pcg32 rng(17);
  const Aabb box{{-1.0f, 2.0f, -3.0f}, {1.0f, 4.0f, 0.0f}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(box.contains(rng.uniform_in_aabb(box)));
  }
}

}  // namespace
}  // namespace rtnn
