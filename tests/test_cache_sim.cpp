#include "rtcore/cache_sim.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace rtnn::rt {
namespace {

TEST(CacheSim, ColdMissThenHit) {
  Cache cache(CacheConfig{1024, 64, 2});
  EXPECT_FALSE(cache.access(0x100));
  EXPECT_TRUE(cache.access(0x100));
  EXPECT_TRUE(cache.access(0x13f));  // same 64B line
  EXPECT_FALSE(cache.access(0x140));  // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(CacheSim, LruEvictionWithinSet) {
  // 2-way cache, 8 sets of 64B lines: addresses with the same set index
  // but different tags compete for 2 ways.
  Cache cache(CacheConfig{1024, 64, 2});
  const std::uint64_t stride = 8 * 64;  // same set, different tag
  EXPECT_FALSE(cache.access(0 * stride));
  EXPECT_FALSE(cache.access(1 * stride));
  EXPECT_TRUE(cache.access(0 * stride));   // both resident
  EXPECT_FALSE(cache.access(2 * stride));  // evicts LRU (= 1*stride)
  EXPECT_FALSE(cache.access(1 * stride));  // 1 was evicted
  EXPECT_TRUE(cache.access(2 * stride));
}

TEST(CacheSim, CapacityWorkingSetFits) {
  // A working set equal to the cache size should hit ~100% after warmup.
  const CacheConfig cfg{4096, 64, 4};
  Cache cache(cfg);
  const int lines = 4096 / 64;
  for (int pass = 0; pass < 3; ++pass) {
    for (int l = 0; l < lines; ++l) {
      cache.access(static_cast<std::uint64_t>(l) * 64);
    }
  }
  // First pass misses, the rest hit.
  EXPECT_EQ(cache.stats().accesses, static_cast<std::uint64_t>(3 * lines));
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(2 * lines));
}

TEST(CacheSim, StreamingThrashesWhenLarger) {
  const CacheConfig cfg{4096, 64, 4};
  Cache cache(cfg);
  const int lines = 4 * (4096 / 64);
  for (int pass = 0; pass < 3; ++pass) {
    for (int l = 0; l < lines; ++l) {
      cache.access(static_cast<std::uint64_t>(l) * 64);
    }
  }
  EXPECT_EQ(cache.stats().hits, 0u);  // pure LRU streaming, 4x capacity
}

TEST(CacheSim, ResetClears) {
  Cache cache(CacheConfig{1024, 64, 2});
  cache.access(0);
  cache.reset();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.access(0));  // cold again
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{1024, 60, 2}), Error);   // non-pow2 line
  EXPECT_THROW(Cache(CacheConfig{64, 64, 2}), Error);     // smaller than a set
}

TEST(MemoryHierarchySim, L2CatchesL1Misses) {
  MemoryHierarchy mem(CacheConfig{1024, 64, 2}, CacheConfig{16 * 1024, 64, 4});
  // Touch 64 lines (4 KiB): overflows L1 (1 KiB) but fits L2.
  for (int pass = 0; pass < 2; ++pass) {
    for (int l = 0; l < 64; ++l) {
      mem.access(static_cast<std::uint64_t>(l) * 64);
    }
  }
  EXPECT_GT(mem.l2_stats().accesses, 0u);
  // Second pass should hit in L2 for lines that missed L1.
  EXPECT_GT(mem.l2_stats().hits, 0u);
  EXPECT_LT(mem.l1_stats().hit_rate(), 1.0);
}

TEST(MemoryHierarchySim, AccessRangeTouchesEveryCoveredLine) {
  // 128 B L1 lines: the line-accounting the node-layout comparison rests
  // on. A 256 B FP32 wide node spans 2 lines; an 80 B compressed node
  // spans 1 (when aligned); a small range straddling a boundary spans 2;
  // an empty range touches nothing.
  const CacheConfig l1{2048, 128, 2};
  const CacheConfig l2{16 * 1024, 128, 4};
  {
    MemoryHierarchy mem(l1, l2);
    mem.access_range(0, 256);
    EXPECT_EQ(mem.l1_stats().accesses, 2u);
  }
  {
    MemoryHierarchy mem(l1, l2);
    mem.access_range(0, 80);
    EXPECT_EQ(mem.l1_stats().accesses, 1u);
  }
  {
    MemoryHierarchy mem(l1, l2);
    mem.access_range(120, 16);  // 8 bytes before the boundary, 8 after
    EXPECT_EQ(mem.l1_stats().accesses, 2u);
  }
  {
    MemoryHierarchy mem(l1, l2);
    mem.access_range(64, 0);
    EXPECT_EQ(mem.l1_stats().accesses, 0u);
  }
}

TEST(CacheStatsArith, Accumulate) {
  CacheStats a{10, 5};
  const CacheStats b{20, 10};
  a += b;
  EXPECT_EQ(a.accesses, 30u);
  EXPECT_EQ(a.hits, 15u);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(CacheStats{}.hit_rate(), 0.0);
}

}  // namespace
}  // namespace rtnn::rt
