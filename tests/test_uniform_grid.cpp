#include "baselines/uniform_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace rtnn::baselines {
namespace {

std::vector<Vec3> random_points(std::size_t n, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Vec3> points(n);
  for (auto& p : points) p = rng.uniform_in_aabb({{0, 0, 0}, {1, 1, 1}});
  return points;
}

TEST(UniformGrid, EveryPointBinnedExactlyOnce) {
  const auto points = random_points(10'000, 1);
  UniformGrid grid;
  grid.build(points, 0.05f);
  std::set<std::uint32_t> seen;
  const Int3 res = grid.resolution();
  for (int z = 0; z < res.z; ++z) {
    for (int y = 0; y < res.y; ++y) {
      for (int x = 0; x < res.x; ++x) {
        for (const std::uint32_t p : grid.points_in_cell({x, y, z})) {
          EXPECT_TRUE(seen.insert(p).second) << "point binned twice";
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), points.size());
}

TEST(UniformGrid, PointsLandInTheirOwnCell) {
  const auto points = random_points(5'000, 2);
  UniformGrid grid;
  grid.build(points, 0.1f);
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    const Int3 c = grid.cell_of(points[i]);
    const auto cell_points = grid.points_in_cell(c);
    EXPECT_NE(std::find(cell_points.begin(), cell_points.end(), i), cell_points.end());
  }
}

TEST(UniformGrid, CellSizeEnlargedUnderMemoryCap) {
  const auto points = random_points(1'000, 3);
  UniformGrid grid;
  grid.build(points, 0.001f, /*max_cells=*/4096);
  const Int3 res = grid.resolution();
  EXPECT_LE(static_cast<std::uint64_t>(res.x) * res.y * res.z, 4096u);
  EXPECT_GT(grid.cell_size(), 0.001f);
}

TEST(UniformGrid, ForEachCellInCoversSearchBox) {
  const auto points = random_points(2'000, 4);
  UniformGrid grid;
  grid.build(points, 0.07f);
  const Vec3 q{0.5f, 0.5f, 0.5f};
  const float r = 0.07f;
  const Aabb box{{q.x - r, q.y - r, q.z - r}, {q.x + r, q.y + r, q.z + r}};
  std::set<std::uint32_t> covered;
  grid.for_each_cell_in(box, [&](const Int3& c) {
    for (const std::uint32_t p : grid.points_in_cell(c)) covered.insert(p);
  });
  // Every point within r of q must be in a visited cell.
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    if (distance2(points[i], q) <= r * r) {
      EXPECT_TRUE(covered.count(i)) << "missed in-range point " << i;
    }
  }
}

TEST(UniformGrid, RejectsBadInput) {
  UniformGrid grid;
  EXPECT_THROW(grid.build({}, 0.1f), Error);
  const auto points = random_points(10, 5);
  EXPECT_THROW(grid.build(points, 0.0f), Error);
}

}  // namespace
}  // namespace rtnn::baselines
