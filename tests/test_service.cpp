// SearchService: snapshot lifecycle, request batching, the async
// submit/wait API, exact Report aggregation, and reader/writer
// concurrency (this suite carries the "service" ctest label the TSan CI
// job runs).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/failpoint.hpp"
#include "core/rng.hpp"
#include "datasets/motion.hpp"
#include "engine/engine.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

using namespace rtnn;
using namespace rtnn::service;
using rtnn::testing::CloudKind;
using rtnn::testing::make_cloud;
using rtnn::testing::typical_radius;

namespace {

constexpr std::size_t kCloudSize = 1500;
constexpr std::uint64_t kSeed = 99;

SearchParams knn_params(float radius, std::uint32_t k = 8) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = radius;
  params.k = k;
  params.opts = OptimizationFlags::none();
  return params;
}

/// Deterministic per-thread query set: a window of the cloud, jittered.
std::vector<Vec3> client_queries(const std::vector<Vec3>& cloud, std::size_t first,
                                 std::size_t count, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Vec3> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Vec3& base = cloud[(first + i) % cloud.size()];
    queries.push_back({base.x + 0.01f * (rng.next_float() - 0.5f),
                       base.y + 0.01f * (rng.next_float() - 0.5f),
                       base.z + 0.01f * (rng.next_float() - 0.5f)});
  }
  return queries;
}

}  // namespace

// --- Report aggregation ------------------------------------------------------

TEST(ReportMerge, CountersSumExactly) {
  NeighborSearch::Report a;
  a.time.bvh = 1.0;
  a.time.refit = 0.25;
  a.stats.rays = 100;
  a.stats.is_calls = 500;
  a.num_partitions = 3;
  a.num_bundles = 2;
  a.accel_refits = 1;
  a.accel_rebuilds = 2;
  a.sah_inflation = 1.5;

  NeighborSearch::Report b;
  b.time.bvh = 0.5;
  b.time.search = 2.0;
  b.stats.rays = 50;
  b.stats.is_calls = 70;
  b.num_partitions = 4;
  b.num_bundles = 1;
  b.accel_refits = 3;
  b.accel_rebuilds = 0;
  b.sah_inflation = 1.2;

  NeighborSearch::Report total;
  total += a;
  total += b;
  EXPECT_DOUBLE_EQ(total.time.bvh, 1.5);
  EXPECT_DOUBLE_EQ(total.time.refit, 0.25);
  EXPECT_DOUBLE_EQ(total.time.search, 2.0);
  EXPECT_EQ(total.stats.rays, 150u);
  EXPECT_EQ(total.stats.is_calls, 570u);
  EXPECT_EQ(total.num_partitions, 7u);
  EXPECT_EQ(total.num_bundles, 3u);
  EXPECT_EQ(total.accel_refits, 4u);
  EXPECT_EQ(total.accel_rebuilds, 2u);
  // Aggregation keeps the worst quality, not the last.
  EXPECT_DOUBLE_EQ(total.sah_inflation, 1.5);
}

// --- Batched entry point (rtnn stages) ---------------------------------------

TEST(SearchBatched, TagsResultsBackToRequestSlots) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  // Three requests of different sizes, concatenated.
  const std::vector<std::size_t> sizes{7, 33, 12};
  std::vector<Vec3> merged;
  std::vector<BatchSlice> slices;
  std::size_t first = 0;
  for (const std::size_t size : sizes) {
    const auto queries = client_queries(cloud, first * 13, size, kSeed + first);
    slices.push_back({merged.size(), size});
    merged.insert(merged.end(), queries.begin(), queries.end());
    ++first;
  }

  NeighborSearch batched;
  batched.set_points(cloud);
  NeighborSearch::Report report;
  const std::vector<NeighborResult> results =
      batched.search_batched(merged, slices, params, &report);
  ASSERT_EQ(results.size(), sizes.size());
  EXPECT_EQ(report.stats.rays, merged.size());  // one launch over the batch

  // Each slot must hold exactly what a solo search over its rows returns.
  NeighborSearch solo;
  solo.set_points(cloud);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ASSERT_EQ(results[i].num_queries(), sizes[i]);
    const std::span<const Vec3> rows(merged.data() + slices[i].first, slices[i].count);
    const NeighborResult expected = solo.search(rows, params);
    rtnn::testing::expect_knn_identical(cloud, rows, results[i], expected,
                                        "slice " + std::to_string(i));
  }
}

TEST(SearchBatched, SliceBeyondBatchThrows) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 100, kSeed);
  NeighborSearch search;
  search.set_points(cloud);
  const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 4);
  const std::vector<BatchSlice> bad{{2, 3}};
  EXPECT_THROW(
      search.search_batched(queries, bad, knn_params(0.1f)), Error);
}

TEST(SplitBatchResult, CountsOnlyResults) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 300, kSeed);
  SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  params.store_indices = false;
  NeighborSearch search;
  search.set_points(cloud);
  const std::span<const Vec3> queries(cloud.data(), 20);
  const NeighborResult batch = search.search(queries, params);
  const std::vector<BatchSlice> slices{{0, 5}, {5, 15}};
  const auto parts = split_batch_result(batch, slices);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_FALSE(parts[0].stores_indices());
  for (std::size_t q = 0; q < 5; ++q) EXPECT_EQ(parts[0].count(q), batch.count(q));
  for (std::size_t q = 0; q < 15; ++q) EXPECT_EQ(parts[1].count(q), batch.count(5 + q));
}

// --- Engine snapshot adapter -------------------------------------------------

TEST(BackendSnapshot, EveryRegisteredBackendSnapshots) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 400, kSeed);
  const auto queries = client_queries(cloud, 0, 25, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  for (const std::string& name : engine::BackendRegistry::instance().names()) {
    SCOPED_TRACE(name);
    auto backend = engine::make_backend(name);
    ASSERT_TRUE(backend->caps().snapshot);
    backend->set_points(cloud);
    auto snapshot = backend->snapshot();
    ASSERT_NE(snapshot, nullptr);
    EXPECT_EQ(snapshot->point_count(), cloud.size());
    const NeighborResult expected = backend->search(queries, params, nullptr);
    const NeighborResult got = snapshot->search(queries, params, nullptr);
    rtnn::testing::expect_knn_identical(cloud, queries, got, expected, name);
  }
}

TEST(BackendSnapshot, SnapshotUnaffectedByLaterUpdates) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 400, kSeed);
  const auto queries = client_queries(cloud, 7, 25, kSeed + 1);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  auto backend = engine::make_backend("rtnn");
  backend->set_index_persistence(true);
  backend->set_points(cloud);
  const NeighborResult before = backend->search(queries, params, nullptr);

  auto snapshot = backend->snapshot();
  // Push the original far away; the snapshot must keep answering from the
  // state it captured (copy-on-write: the refit may not mutate shared
  // accel data).
  std::vector<Vec3> moved = cloud;
  for (Vec3& p : moved) p.x += 10.0f;
  backend->update_points(moved);
  (void)backend->search(queries, params, nullptr);

  const NeighborResult after = snapshot->search(queries, params, nullptr);
  rtnn::testing::expect_knn_identical(cloud, queries, after, before, "snapshot");
}

// --- Service basics ----------------------------------------------------------

TEST(SearchService, QueryMatchesDirectBackend) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  const auto queries = client_queries(cloud, 3, 40, kSeed + 2);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  for (const std::string& name : {"brute_force", "grid", "octree", "rtnn", "auto"}) {
    SCOPED_TRACE(name);
    ServiceOptions options;
    options.backend = name;
    SearchService svc(cloud, options);
    RequestOutcome outcome = svc.query(queries, params);
    EXPECT_EQ(outcome.snapshot_version, 0u);
    EXPECT_GE(outcome.batch_requests, 1u);

    auto direct = engine::make_backend(name);
    direct->set_points(cloud);
    const NeighborResult expected = direct->search(queries, params, nullptr);
    rtnn::testing::expect_knn_identical(cloud, queries, outcome.result, expected, name);
  }
}

TEST(SearchService, RangeRequestsServe) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  const auto queries = client_queries(cloud, 11, 30, kSeed + 3);
  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = typical_radius(CloudKind::kUniform);
  params.k = 64;

  SearchService svc(cloud);
  RequestOutcome outcome = svc.query(queries, params);
  auto direct = engine::make_backend("rtnn");
  direct->set_points(cloud);
  const NeighborResult expected = direct->search(queries, params, nullptr);
  rtnn::testing::expect_same_neighbor_sets(outcome.result, expected, "range");
}

TEST(SearchService, CoalescesCompatibleRequestsIntoOneBatch) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  ServiceOptions options;
  options.max_delay = std::chrono::microseconds(300'000);  // roomy tick
  SearchService svc(cloud, options);

  constexpr std::size_t kRequests = 6;
  std::vector<SearchService::Ticket> tickets;
  for (std::size_t i = 0; i < kRequests; ++i) {
    tickets.push_back(svc.submit(client_queries(cloud, i * 31, 10 + i, kSeed + i), params));
  }
  std::size_t total_rows = 0;
  for (std::size_t i = 0; i < kRequests; ++i) total_rows += 10 + i;

  for (auto& ticket : tickets) {
    RequestOutcome outcome = ticket.get();
    // All six were pending within one tick: one coalesced dispatch.
    EXPECT_EQ(outcome.batch_requests, kRequests);
    EXPECT_EQ(outcome.batch_queries, total_rows);
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.queries, total_rows);
}

TEST(SearchService, IncompatibleParamsDispatchAsSeparateGroups) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  ServiceOptions options;
  options.max_delay = std::chrono::microseconds(300'000);
  SearchService svc(cloud, options);

  const SearchParams near = knn_params(typical_radius(CloudKind::kUniform));
  SearchParams far = near;
  far.radius *= 2.0f;

  auto t1 = svc.submit(client_queries(cloud, 0, 8, kSeed), near);
  auto t2 = svc.submit(client_queries(cloud, 50, 8, kSeed), far);
  auto t3 = svc.submit(client_queries(cloud, 90, 8, kSeed), near);

  EXPECT_EQ(t1.get().batch_requests, 2u);  // grouped with t3
  EXPECT_EQ(t2.get().batch_requests, 1u);
  EXPECT_EQ(t3.get().batch_requests, 2u);
  EXPECT_EQ(svc.stats().batches, 2u);
}

TEST(SearchService, PipelineOnlyParamDifferencesShareABin) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  ServiceOptions options;
  options.max_delay = std::chrono::microseconds(300'000);
  SearchService svc(cloud, options);

  // Three requests, two distinct batch keys: pipeline-shaping knobs (opts)
  // are exactness-preserving, so they must not force a third launch.
  const SearchParams plain = knn_params(typical_radius(CloudKind::kUniform));
  SearchParams scheduled = plain;
  scheduled.opts = OptimizationFlags::all();
  SearchParams far = plain;
  far.radius *= 2.0f;

  auto t1 = svc.submit(client_queries(cloud, 0, 8, kSeed), plain);
  auto t2 = svc.submit(client_queries(cloud, 50, 8, kSeed), scheduled);
  auto t3 = svc.submit(client_queries(cloud, 90, 8, kSeed), far);

  EXPECT_EQ(t1.get().batch_requests, 2u);  // binned with t2
  EXPECT_EQ(t2.get().batch_requests, 2u);
  EXPECT_EQ(t3.get().batch_requests, 1u);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.batches, 2u);  // == distinct (r, K) keys, not param tuples
  EXPECT_EQ(stats.report.batch_bins, 2u);
}

TEST(SearchService, DedupedCoincidentRowsStayExact) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  ServiceOptions on_options;
  on_options.max_delay = std::chrono::microseconds(300'000);
  SearchService on(cloud, on_options);
  ServiceOptions off_options = on_options;
  off_options.batch_reorder = false;
  SearchService off(cloud, off_options);

  // Overlapping exact windows of the cloud: rows repeat bitwise across the
  // tick's requests (the coherent-traffic shape the optimizer dedups).
  const std::vector<std::span<const Vec3>> windows{
      std::span<const Vec3>(cloud.data(), 40),
      std::span<const Vec3>(cloud.data() + 20, 40),
      std::span<const Vec3>(cloud.data(), 40),
  };
  auto run = [&](SearchService& svc) {
    std::vector<SearchService::Ticket> tickets;
    for (const auto& window : windows) tickets.push_back(svc.submit(window, params));
    std::vector<RequestOutcome> outcomes;
    for (auto& ticket : tickets) outcomes.push_back(ticket.get());
    return outcomes;
  };
  const auto got = run(on);
  const auto want = run(off);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    rtnn::testing::expect_knn_identical(cloud, windows[i], got[i].result, want[i].result,
                                        "request " + std::to_string(i));
  }

  // The arrival-order path never dedups; the optimizer's ray counter plus
  // its aliased rows reconstruct the submitted volume exactly.
  EXPECT_EQ(off.stats().report.queries_deduped, 0u);
  const ServiceStats stats = on.stats();
  EXPECT_GT(stats.report.queries_deduped, 0u);
  EXPECT_EQ(stats.report.stats.rays + stats.report.queries_deduped, stats.queries);
}

TEST(SearchService, TicketWaitForAndReady) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 500, kSeed);
  SearchService svc(cloud);
  auto ticket = svc.submit(client_queries(cloud, 0, 5, kSeed),
                           knn_params(typical_radius(CloudKind::kUniform)));
  ASSERT_TRUE(ticket.valid());
  ASSERT_TRUE(ticket.wait_for(std::chrono::seconds(30)));
  EXPECT_TRUE(ticket.ready());
  EXPECT_EQ(ticket.get().result.num_queries(), 5u);
}

TEST(SearchService, BackendErrorsPropagateThroughTickets) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 300, kSeed);
  ServiceOptions options;
  options.backend = "fastrnn";  // KNN-only
  SearchService svc(cloud, options);

  SearchParams range;
  range.mode = SearchMode::kRange;
  range.radius = 0.1f;
  range.k = 8;
  auto ticket = svc.submit(client_queries(cloud, 0, 4, kSeed), range);
  EXPECT_THROW(ticket.get(), Error);
  // A failed batch still counts its requests (the tickets were signaled),
  // but no rows were served — `queries` stays in step with the ray counter.
  EXPECT_EQ(svc.stats().requests, 1u);
  EXPECT_EQ(svc.stats().queries, 0u);

  // The service survives and keeps serving valid requests.
  const RequestOutcome ok =
      svc.query(client_queries(cloud, 0, 4, kSeed), knn_params(0.1f));
  EXPECT_EQ(ok.result.num_queries(), 4u);
}

TEST(SearchService, SubmitAfterShutdownThrows) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 300, kSeed);
  SearchService svc(cloud);
  auto ticket = svc.submit(client_queries(cloud, 0, 4, kSeed), knn_params(0.1f));
  svc.shutdown();  // drains the queued request first
  EXPECT_NO_THROW(ticket.get());
  EXPECT_THROW(svc.submit(client_queries(cloud, 0, 4, kSeed), knn_params(0.1f)), Error);
  EXPECT_THROW(svc.update_points(cloud), Error);
  svc.shutdown();  // idempotent
}

// --- Snapshot lifecycle ------------------------------------------------------

TEST(SearchService, UpdatePublishesNextVersionOffTheReadPath) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  SearchService svc(cloud);
  EXPECT_EQ(svc.snapshot_version(), 0u);

  (void)svc.query(client_queries(cloud, 0, 10, kSeed), params);

  std::vector<Vec3> moved = cloud;
  for (Vec3& p : moved) p.x += 0.001f;
  svc.update_points(moved);
  EXPECT_EQ(svc.snapshot_version(), 1u);
  EXPECT_EQ(svc.stats().updates, 1u);

  // Requests after the publish are answered by the new snapshot.
  const RequestOutcome outcome = svc.query(client_queries(cloud, 5, 10, kSeed), params);
  EXPECT_EQ(outcome.snapshot_version, 1u);

  // A resize falls back to a fresh upload + build.
  const std::vector<Vec3> grown = make_cloud(CloudKind::kUniform, kCloudSize + 100, kSeed);
  svc.update_points(grown);
  EXPECT_EQ(svc.snapshot_version(), 2u);
  EXPECT_EQ(svc.point_count(), kCloudSize + 100);
  const RequestOutcome after = svc.query(client_queries(grown, 0, 10, kSeed), params);
  EXPECT_EQ(after.snapshot_version, 2u);
}

TEST(SearchService, UpdateResultsMatchFreshService) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  SearchService svc(cloud);
  (void)svc.query(client_queries(cloud, 0, 5, kSeed), params);  // set warm params

  data::DriftMotion motion(data::PointCloud(cloud.begin(), cloud.end()), {});
  const data::PointCloud& frame = motion.step();
  svc.update_points(frame);

  const auto queries = client_queries(frame, 17, 40, kSeed + 9);
  const RequestOutcome outcome = svc.query(queries, params);

  auto reference = engine::make_backend("brute_force");
  reference->set_points(frame);
  const NeighborResult expected = reference->search(queries, params, nullptr);
  rtnn::testing::expect_knn_identical(frame, queries, outcome.result, expected,
                                      "post-update");
}

TEST(SearchService, RefitRebuildIncrementsAreNeverLost) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  SearchService svc(cloud);
  (void)svc.query(client_queries(cloud, 0, 8, kSeed), params);  // sets warm params

  data::DriftMotion motion(data::PointCloud(cloud.begin(), cloud.end()), {});
  // Update 1 warms a cold master (a fresh build, counted in time.bvh);
  // every update after that resolves the policy: exactly one refit or
  // rebuild each, and the aggregate must see every single one.
  constexpr std::uint32_t kUpdates = 5;
  for (std::uint32_t u = 0; u < kUpdates; ++u) svc.update_points(motion.step());

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.updates, kUpdates);
  EXPECT_EQ(stats.report.accel_refits + stats.report.accel_rebuilds, kUpdates - 1);
  EXPECT_GE(stats.report.time.bvh, 0.0);
  EXPECT_GE(stats.report.time.refit, 0.0);
}

// --- Exact aggregation under concurrency -------------------------------------

TEST(SearchService, ConcurrentCountsSumExactly) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, kCloudSize, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  SearchService svc(cloud);

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 25;
  constexpr std::size_t kQueriesPerRequest = 16;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        const auto queries = client_queries(
            cloud, static_cast<std::size_t>(t) * 101 + static_cast<std::size_t>(r),
            kQueriesPerRequest, kSeed + static_cast<std::uint64_t>(t));
        const RequestOutcome outcome = svc.query(queries, params);
        ASSERT_EQ(outcome.result.num_queries(), kQueriesPerRequest);
      }
    });
  }
  for (auto& c : clients) c.join();

  const ServiceStats stats = svc.stats();
  const std::uint64_t total_requests = kThreads * kRequestsPerThread;
  const std::uint64_t total_queries = total_requests * kQueriesPerRequest;
  EXPECT_EQ(stats.requests, total_requests);
  EXPECT_EQ(stats.queries, total_queries);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, total_requests);
  // One ray per *searched* row on the unscheduled KNN path: rays plus the
  // optimizer's deduped rows reconstruct the served volume exactly — no
  // lost or double-counted launches under concurrent merging. (The
  // jittered client queries rarely coincide, so deduped is usually zero;
  // the invariant holds either way.)
  EXPECT_EQ(stats.report.stats.rays + stats.report.queries_deduped, total_queries);
  // TimeBreakdown phases stay non-negative (and finite) under merging.
  const TimeBreakdown& time = stats.report.time;
  for (const double phase :
       {time.data, time.opt, time.bvh, time.refit, time.first_search, time.search}) {
    EXPECT_GE(phase, 0.0);
    EXPECT_TRUE(std::isfinite(phase));
  }
  EXPECT_GE(time.total(), 0.0);
}

// --- Reader/writer stress (the TSan target) ----------------------------------

TEST(SearchServiceStress, ManyReadersOneWriterWithIndexChurn) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 2000, kSeed);
  const float radius = typical_radius(CloudKind::kUniform);
  const SearchParams params = knn_params(radius);

  ServiceOptions options;
  options.max_delay = std::chrono::microseconds(100);
  SearchService svc(cloud, options);

  constexpr int kReaders = 4;
  constexpr int kRequestsPerReader = 40;
  constexpr int kWriterUpdates = 12;
  std::atomic<std::uint64_t> served{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerReader; ++r) {
        const auto queries = client_queries(
            cloud, static_cast<std::size_t>(t * 53 + r), 8,
            kSeed + static_cast<std::uint64_t>(t * 1000 + r));
        RequestOutcome outcome = svc.query(queries, params);
        ASSERT_EQ(outcome.result.num_queries(), queries.size());
        // Result invariants hold against whichever snapshot answered:
        // bounded rows, valid point ids.
        const std::size_t limit = 2600;  // max cloud size the writer publishes
        for (std::size_t q = 0; q < outcome.result.num_queries(); ++q) {
          ASSERT_LE(outcome.result.count(q), params.k);
          for (const std::uint32_t p : outcome.result.neighbors(q)) {
            ASSERT_LT(p, limit);
          }
        }
        served.fetch_add(queries.size(), std::memory_order_relaxed);
      }
    });
  }

  std::thread writer([&] {
    data::DriftParams drift;
    drift.velocity = 0.5f * radius;
    data::DriftMotion motion(data::PointCloud(cloud.begin(), cloud.end()), drift);
    for (int u = 0; u < kWriterUpdates; ++u) {
      if (u % 5 == 4) {
        // Occasional resize: the rebuild (new-lineage) path under load.
        const auto resized =
            make_cloud(CloudKind::kUniform, 2000 + 50 * static_cast<std::size_t>(u),
                       kSeed + static_cast<std::uint64_t>(u));
        svc.update_points(resized);
        motion = data::DriftMotion(
            data::PointCloud(resized.begin(), resized.end()), drift);
      } else {
        svc.update_points(motion.step());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (auto& r : readers) r.join();
  writer.join();

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kReaders) * kRequestsPerReader);
  EXPECT_EQ(stats.queries, served.load());
  EXPECT_EQ(stats.updates, static_cast<std::uint64_t>(kWriterUpdates));
  EXPECT_EQ(svc.snapshot_version(), static_cast<std::uint64_t>(kWriterUpdates));
}

TEST(SearchServiceStress, ShutdownUnderConcurrentSubmitters) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 800, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  SearchService svc(cloud);
  std::atomic<int> accepted{0};
  std::atomic<int> refused{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < 30; ++r) {
        try {
          auto ticket = svc.submit(
              client_queries(cloud, static_cast<std::size_t>(t * 31 + r), 4,
                             kSeed + static_cast<std::uint64_t>(t)),
              params);
          ticket.wait();  // accepted requests are always served, even
                          // when shutdown lands while they are queued
          accepted.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error&) {
          refused.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  svc.shutdown();
  for (auto& c : clients) c.join();

  EXPECT_EQ(accepted.load() + refused.load(), 4 * 30);
  EXPECT_EQ(svc.stats().requests, static_cast<std::uint64_t>(accepted.load()));
}

// --- Error contract: every RejectReason, through get() and try_get() ---------

namespace {

/// Resolves the ticket via get() and returns the typed reason.
RejectReason reason_via_get(SearchService::Ticket& ticket) {
  try {
    (void)ticket.get();
  } catch (const ServiceError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "expected a ServiceError through get()";
  return RejectReason::kBackend;
}

/// Resolves the ticket via wait() + try_get() and returns the typed reason.
RejectReason reason_via_try_get(SearchService::Ticket& ticket) {
  ticket.wait();
  try {
    (void)ticket.try_get();
  } catch (const ServiceError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "expected a ServiceError through try_get()";
  return RejectReason::kBackend;
}

}  // namespace

TEST(ErrorContract, EveryRejectReasonSurfacesThroughGetAndTryGet) {
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 400, kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 8);

  {
    SCOPED_TRACE("kAdmission: shed past the burst");
    SearchService service;
    CloudConfig gated;
    gated.admission.tokens_per_second = 1e-9;
    gated.admission.burst = 1.0;
    const CloudHandle handle = service.register_cloud("gated", cloud, gated);
    (void)service.query(handle, queries, params);  // spends the burst token
    auto shed_a = service.submit(handle, queries, params);
    auto shed_b = service.submit(handle, queries, params);
    EXPECT_EQ(reason_via_get(shed_a), RejectReason::kAdmission);
    EXPECT_EQ(reason_via_try_get(shed_b), RejectReason::kAdmission);
  }

  {
    SCOPED_TRACE("kShutdown: cloud dropped with requests pending");
    ServiceConfig config;
    config.max_delay = std::chrono::microseconds(100'000);
    SearchService service(config);
    const CloudHandle handle = service.register_cloud("doomed", cloud);
    auto pending_a = service.submit(handle, queries, params);
    auto pending_b = service.submit(handle, queries, params);
    service.drop_cloud("doomed");
    EXPECT_EQ(reason_via_get(pending_a), RejectReason::kShutdown);
    EXPECT_EQ(reason_via_try_get(pending_b), RejectReason::kShutdown);
  }

  {
    SCOPED_TRACE("kBackend: injected shard fault on a sharded cloud");
    SearchService service;
    CloudConfig sharded;
    sharded.shard_threshold = 64;
    sharded.max_shards = 4;
    const CloudHandle handle = service.register_cloud("sharded", cloud, sharded);
    fail::ScopedFailpoint fp("sharded.shard_search", {});
    auto failed_a = service.submit(handle, queries, params);
    auto failed_b = service.submit(handle, queries, params);
    EXPECT_EQ(reason_via_get(failed_a), RejectReason::kBackend);
    EXPECT_EQ(reason_via_try_get(failed_b), RejectReason::kBackend);
  }

  {
    SCOPED_TRACE("kDeadline: dead on arrival");
    SearchService service;
    const CloudHandle handle = service.register_cloud("slow", cloud);
    RequestOptions late;
    late.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
    auto missed_a = service.submit(handle, queries, params, late);
    auto missed_b = service.submit(handle, queries, params, late);
    EXPECT_EQ(reason_via_get(missed_a), RejectReason::kDeadline);
    EXPECT_EQ(reason_via_try_get(missed_b), RejectReason::kDeadline);
  }
}

TEST(ErrorContract, EmptyCloudsAreRefusedTyped) {
  // Regression: an empty registration or update on a *sharded* tenant
  // used to fall through to the backend's raw
  // RTNN_CHECK(!points.empty()) internals instead of a typed door-level
  // rejection. Both doors must throw ServiceError(kInvalid) for every
  // cloud shape, and leave the registry untouched.
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 400, kSeed);
  const std::vector<Vec3> empty;

  SearchService service;
  CloudConfig sharded;
  sharded.shard_threshold = 64;
  sharded.max_shards = 4;
  for (const auto& [label, config] :
       {std::pair<const char*, CloudConfig>{"plain", CloudConfig{}},
        std::pair<const char*, CloudConfig>{"sharded", sharded}}) {
    SCOPED_TRACE(label);
    try {
      (void)service.register_cloud(std::string("empty-") + label, empty, config);
      FAIL() << "empty registration must throw";
    } catch (const ServiceError& error) {
      EXPECT_EQ(error.reason(), RejectReason::kInvalid);
    }
    // Nothing was registered: the name is free for a real cloud.
    const CloudHandle handle =
        service.register_cloud(std::string("empty-") + label, cloud, config);

    try {
      service.update_points(handle, empty);
      FAIL() << "empty update must throw";
    } catch (const ServiceError& error) {
      EXPECT_EQ(error.reason(), RejectReason::kInvalid);
    }
    // The cloud still serves its original points after the refused update.
    const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
    const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 8);
    EXPECT_EQ(service.query(handle, queries, params).result.num_queries(), queries.size());
  }
}
