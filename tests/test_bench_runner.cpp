// The benchmark-runner subsystem (src/bench/): case registration,
// repeat/warmup accounting, the robust statistics, and a golden-schema
// check of the emitted JSON report.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench.hpp"
#include "core/error.hpp"

namespace rtnn::bench {
namespace {

// ---- stats ------------------------------------------------------------------

TEST(BenchStats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median_of({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(BenchStats, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mad_of({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  const Stats s = Stats::from_samples({});
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
  EXPECT_TRUE(s.samples.empty());
}

TEST(BenchStats, Mad) {
  // median = 3, |x - 3| = {2, 1, 0, 1, 2} -> MAD = 1.
  EXPECT_DOUBLE_EQ(mad_of({1.0, 2.0, 3.0, 4.0, 5.0}), 1.0);
  // A constant series has zero spread.
  EXPECT_DOUBLE_EQ(mad_of({7.0, 7.0, 7.0}), 0.0);
}

TEST(BenchStats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  // Non-positive values are clamped rather than producing NaN.
  EXPECT_GT(geomean({0.0, 1.0}), 0.0);
}

TEST(BenchStats, FromSamplesSummaries) {
  const Stats s = Stats::from_samples({3.0, 1.0, 2.0, 10.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  ASSERT_EQ(s.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(s.samples[0], 3.0);  // execution order preserved
}

// ---- registry ---------------------------------------------------------------

TEST(BenchRegistry, RegistersAndMatches) {
  BenchRegistry registry;  // local instance: the global one belongs to rtnn_bench
  registry.add({"t.alpha", "Alpha", "paper", "", [](CaseContext&) {}});
  registry.add({"t.beta", "Beta", "paper", "", [](CaseContext&) {}});
  ASSERT_EQ(registry.cases().size(), 2u);
  EXPECT_EQ(registry.cases()[0].name, "t.alpha");  // sorted

  EXPECT_EQ(registry.match("").size(), 2u);
  const auto only_beta = registry.match("beta");
  ASSERT_EQ(only_beta.size(), 1u);
  EXPECT_EQ(only_beta[0]->name, "t.beta");
  EXPECT_EQ(registry.match("alpha|beta").size(), 2u);
  EXPECT_TRUE(registry.match("nomatch").empty());
}

TEST(BenchRegistry, RejectsDuplicatesAndBadInput) {
  BenchRegistry registry;
  registry.add({"t.dup", "x", "y", "", [](CaseContext&) {}});
  EXPECT_THROW(registry.add({"t.dup", "x", "y", "", [](CaseContext&) {}}), Error);
  EXPECT_THROW(registry.add({"", "x", "y", "", [](CaseContext&) {}}), Error);
  EXPECT_THROW(registry.add({"t.nofn", "x", "y", "", nullptr}), Error);
  EXPECT_THROW(registry.match("(unclosed"), Error);
}

// ---- runner -----------------------------------------------------------------

RunnerOptions quiet_options() {
  RunnerOptions options;
  options.verbose = false;
  return options;
}

TEST(BenchRunner, RepeatWarmupAccounting) {
  RunnerOptions options = quiet_options();
  options.repeats = 4;
  options.warmup = 2;
  CaseResult result;
  CaseContext ctx(options, result);

  int calls = 0;
  ctx.time("counted", [&] { ++calls; });
  EXPECT_EQ(calls, 6);  // 2 warmup + 4 measured
  ASSERT_EQ(result.timings.size(), 1u);
  EXPECT_EQ(result.timings[0].stats.samples.size(), 4u);  // warmup discarded

  // Per-call overrides beat the runner defaults.
  calls = 0;
  ctx.time("overridden", [&] { ++calls; }, {.repeats = 1, .warmup = 0});
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(result.timings[1].stats.samples.size(), 1u);
}

TEST(BenchRunner, SampleUsesReturnedValuesAndReturnsMin) {
  RunnerOptions options = quiet_options();
  options.repeats = 3;
  options.warmup = 1;
  CaseResult result;
  CaseContext ctx(options, result);

  // Warmup consumes the first value; samples are {5, 3, 4}.
  const std::vector<double> values = {9.0, 5.0, 3.0, 4.0};
  std::size_t i = 0;
  const double min = ctx.sample("seq", [&] { return values[i++]; });
  EXPECT_DOUBLE_EQ(min, 3.0);
  ASSERT_EQ(result.timings.size(), 1u);
  EXPECT_DOUBLE_EQ(result.timings[0].stats.median, 4.0);
  EXPECT_DOUBLE_EQ(result.timings[0].stats.mad, 1.0);
}

TEST(BenchRunner, ThroughputFromWorkItems) {
  RunnerOptions options = quiet_options();
  options.repeats = 3;
  options.warmup = 0;
  CaseResult result;
  CaseContext ctx(options, result);

  const std::vector<double> values = {2.0, 4.0, 8.0};  // median 4s
  std::size_t i = 0;
  ctx.sample("tp", [&] { return values[i++]; }, {.work_items = 100.0});
  EXPECT_DOUBLE_EQ(result.timings[0].throughput, 25.0);  // 100 items / 4 s
  // No work_items -> no throughput claim.
  i = 0;
  ctx.sample("no_tp", [&] { return values[i++]; });
  EXPECT_DOUBLE_EQ(result.timings[1].throughput, 0.0);
}

TEST(BenchRunner, RunCasesRecordsErrorsAndContinues) {
  const CaseInfo failing{"t.fail", "Failing", "p", "", [](CaseContext&) {
                           throw Error("deliberate");
                         }};
  const CaseInfo passing{"t.pass", "Passing", "p", "", [](CaseContext& ctx) {
                           ctx.metric("answer", 42.0);
                         }};
  const SuiteResult suite =
      run_cases({&failing, &passing}, quiet_options());
  ASSERT_EQ(suite.results.size(), 2u);
  EXPECT_EQ(suite.results[0].status, "error");
  EXPECT_NE(suite.results[0].error.find("deliberate"), std::string::npos);
  EXPECT_EQ(suite.results[1].status, "ok");
  ASSERT_EQ(suite.results[1].metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(suite.results[1].metrics[0].value, 42.0);
  EXPECT_FALSE(suite.all_ok());
}

// ---- report (golden schema) -------------------------------------------------

/// Structural sanity: every brace/bracket closes, honoring strings.
bool json_balanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

SuiteResult golden_suite() {
  const CaseInfo c{"t.golden", "Golden", "p", "", [](CaseContext& ctx) {
                     std::size_t i = 0;
                     const std::vector<double> values = {2.0, 1.0, 3.0};
                     ctx.sample("timing \"quoted\"", [&] { return values[i++]; },
                                {.work_items = 10.0});
                     ctx.metric("speedup", 2.5, "x");
                   }};
  RunnerOptions options;
  options.verbose = false;
  options.repeats = 3;
  options.warmup = 0;
  options.filter = "t.golden";
  return run_cases({&c}, options);
}

TEST(BenchReport, GoldenSchema) {
  const SuiteResult suite = golden_suite();
  const Environment env = capture_environment();
  const std::string json = report_json(suite, env, "testtag");

  EXPECT_TRUE(json_balanced(json));
  // Versioned schema + provenance.
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"generator\": \"rtnn_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"tag\": \"testtag\""), std::string::npos);
  for (const char* key : {"\"git_sha\"", "\"compiler\"", "\"build_type\"", "\"os\"",
                          "\"threads\"", "\"hardware_concurrency\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Options echo.
  EXPECT_NE(json.find("\"filter\": \"t.golden\""), std::string::npos);
  EXPECT_NE(json.find("\"repeats\": 3"), std::string::npos);
  // Case payload: stats fields the CI compare keys on.
  EXPECT_NE(json.find("\"name\": \"t.golden\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  for (const char* key : {"\"samples\"", "\"min\"", "\"max\"", "\"mean\"",
                          "\"median\"", "\"mad\"", "\"work_items\"",
                          "\"throughput_per_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"median\": 2"), std::string::npos);
  // String escaping.
  EXPECT_NE(json.find("timing \\\"quoted\\\""), std::string::npos);
  // Metrics.
  EXPECT_NE(json.find("\"value\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"x\""), std::string::npos);
}

TEST(BenchReport, ErrorStatusAndEmptySuiteAreValid) {
  const CaseInfo failing{"t.err", "Err", "p", "", [](CaseContext&) {
                           throw Error("boom \"quoted\"");
                         }};
  RunnerOptions options;
  options.verbose = false;
  const SuiteResult suite = run_cases({&failing}, options);
  const std::string json = report_json(suite, capture_environment(), "t");
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"status\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("boom \\\"quoted\\\""), std::string::npos);

  const SuiteResult empty{};
  EXPECT_TRUE(json_balanced(report_json(empty, capture_environment(), "t")));
}

TEST(BenchReport, WriteReportRoundTrip) {
  const SuiteResult suite = golden_suite();
  const std::string path = ::testing::TempDir() + "rtnn_bench_report_test.json";
  write_report(path, suite, capture_environment(), "roundtrip");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report_json(suite, capture_environment(), "roundtrip"));
  std::remove(path.c_str());

  EXPECT_THROW(write_report("/nonexistent-dir/x/y.json", suite,
                            capture_environment(), "t"),
               Error);
  EXPECT_EQ(default_report_path("abc"), "BENCH_abc.json");
}

}  // namespace
}  // namespace rtnn::bench
