// Shared helpers for the correctness test suites: small dataset factories
// and result-comparison predicates that are robust to tie-ordering and
// traversal-order differences between implementations.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/neighbor_result.hpp"
#include "core/vec3.hpp"
#include "datasets/lidar.hpp"
#include "datasets/nbody.hpp"
#include "datasets/surface.hpp"
#include "datasets/uniform.hpp"

namespace rtnn::testing {

enum class CloudKind { kUniform, kLidar, kSurface, kNBody };

inline std::string to_string(CloudKind kind) {
  switch (kind) {
    case CloudKind::kUniform: return "uniform";
    case CloudKind::kLidar: return "lidar";
    case CloudKind::kSurface: return "surface";
    case CloudKind::kNBody: return "nbody";
  }
  return "?";
}

/// Small, deterministic cloud of roughly `n` points of the given character.
inline std::vector<Vec3> make_cloud(CloudKind kind, std::size_t n, std::uint64_t seed) {
  switch (kind) {
    case CloudKind::kUniform:
      return data::uniform_box(n, {{0, 0, 0}, {1, 1, 1}}, seed);
    case CloudKind::kLidar: {
      data::LidarParams params;
      params.target_points = n;
      params.seed = seed;
      return data::lidar_scan(params);
    }
    case CloudKind::kSurface: {
      data::SurfaceParams params;
      params.target_points = n;
      params.seed = seed;
      return data::surface_scan(params);
    }
    case CloudKind::kNBody: {
      data::NBodyParams params;
      params.target_points = n;
      params.seed = seed;
      params.box_size = 10.0f;
      params.levels = 5;
      return data::nbody_cluster(params);
    }
  }
  return {};
}

/// A search radius that yields a useful neighbor count (~tens) for clouds
/// produced by make_cloud.
inline float typical_radius(CloudKind kind) {
  switch (kind) {
    case CloudKind::kUniform: return 0.06f;
    case CloudKind::kLidar: return 1.2f;
    case CloudKind::kSurface: return 0.02f;
    case CloudKind::kNBody: return 0.25f;
  }
  return 0.05f;
}

/// Per-query neighbor counts must match exactly.
inline void expect_counts_equal(const NeighborResult& got, const NeighborResult& expected,
                                const std::string& label) {
  ASSERT_EQ(got.num_queries(), expected.num_queries()) << label;
  for (std::size_t q = 0; q < got.num_queries(); ++q) {
    ASSERT_EQ(got.count(q), expected.count(q)) << label << " query " << q;
  }
}

/// Neighbor *sets* must match exactly (order-insensitive).
inline void expect_same_neighbor_sets(const NeighborResult& got,
                                      const NeighborResult& expected,
                                      const std::string& label) {
  ASSERT_EQ(got.num_queries(), expected.num_queries()) << label;
  for (std::size_t q = 0; q < got.num_queries(); ++q) {
    auto a = std::vector<std::uint32_t>(got.neighbors(q).begin(), got.neighbors(q).end());
    auto b = std::vector<std::uint32_t>(expected.neighbors(q).begin(),
                                        expected.neighbors(q).end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    ASSERT_EQ(a, b) << label << " query " << q;
  }
}

/// KNN sequences sorted by (distance, id) must match id-for-id: every
/// in-repo implementation breaks distance ties by ascending point id.
inline void expect_knn_identical(std::span<const Vec3> points, std::span<const Vec3> queries,
                                 const NeighborResult& got, const NeighborResult& expected,
                                 const std::string& label) {
  ASSERT_EQ(got.num_queries(), expected.num_queries()) << label;
  for (std::size_t q = 0; q < got.num_queries(); ++q) {
    ASSERT_EQ(got.count(q), expected.count(q)) << label << " query " << q;
    auto by_dist_then_id = [&](std::span<const std::uint32_t> ids) {
      std::vector<std::uint32_t> sorted(ids.begin(), ids.end());
      std::sort(sorted.begin(), sorted.end(), [&](std::uint32_t a, std::uint32_t b) {
        const float da = distance2(points[a], queries[q]);
        const float db = distance2(points[b], queries[q]);
        return da < db || (da == db && a < b);
      });
      return sorted;
    };
    ASSERT_EQ(by_dist_then_id(got.neighbors(q)), by_dist_then_id(expected.neighbors(q)))
        << label << " query " << q;
  }
}

/// KNN comparison tolerant to ties: the sorted per-rank *distances* must
/// match (two valid implementations may pick different equidistant points).
inline void expect_knn_distances_match(std::span<const Vec3> points,
                                       std::span<const Vec3> queries,
                                       const NeighborResult& got,
                                       const NeighborResult& expected,
                                       const std::string& label) {
  ASSERT_EQ(got.num_queries(), expected.num_queries()) << label;
  for (std::size_t q = 0; q < got.num_queries(); ++q) {
    ASSERT_EQ(got.count(q), expected.count(q)) << label << " query " << q;
    auto dists = [&](const NeighborResult& r) {
      std::vector<float> d;
      for (const std::uint32_t p : r.neighbors(q)) {
        d.push_back(distance2(points[p], queries[q]));
      }
      std::sort(d.begin(), d.end());
      return d;
    };
    const auto da = dists(got);
    const auto db = dists(expected);
    for (std::size_t i = 0; i < da.size(); ++i) {
      ASSERT_FLOAT_EQ(da[i], db[i]) << label << " query " << q << " rank " << i;
    }
  }
}

/// Every reported neighbor must lie within `radius` of its query.
inline void expect_all_within_radius(std::span<const Vec3> points,
                                     std::span<const Vec3> queries,
                                     const NeighborResult& result, float radius,
                                     const std::string& label) {
  const float r2 = radius * radius;
  for (std::size_t q = 0; q < result.num_queries(); ++q) {
    for (const std::uint32_t p : result.neighbors(q)) {
      ASSERT_LE(distance2(points[p], queries[q]), r2 * (1.0f + 1e-5f))
          << label << " query " << q << " point " << p;
    }
  }
}

}  // namespace rtnn::testing
