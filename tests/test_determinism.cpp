// Fixed-seed results must be invariant across worker thread counts: the
// per-worker StatsAccumulator refactor promised that parallelism changes
// only wall clock, never answers. Locked in here for the static search
// pipeline, dynamic session stepping, and the coalesced batch path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "datasets/motion.hpp"
#include "rtnn/rtnn.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

using namespace rtnn;
using rtnn::testing::CloudKind;
using rtnn::testing::make_cloud;
using rtnn::testing::typical_radius;

namespace {

constexpr std::uint64_t kSeed = 4242;

/// The sweep: serial, a fixed small pool, and the environment default
/// ("max"). 0 resets the override, so the last entry also restores state
/// for subsequent suites.
const std::vector<int> kThreadCounts{1, 4, 0};

/// Canonical form of a result for equality comparison: per-query counts
/// plus neighbor ids sorted by (distance, id) — the total order every
/// exact implementation in the repo agrees on.
std::vector<std::vector<std::uint32_t>> canonical(std::span<const Vec3> points,
                                                  std::span<const Vec3> queries,
                                                  const NeighborResult& result) {
  std::vector<std::vector<std::uint32_t>> rows(result.num_queries());
  for (std::size_t q = 0; q < result.num_queries(); ++q) {
    rows[q].assign(result.neighbors(q).begin(), result.neighbors(q).end());
    std::sort(rows[q].begin(), rows[q].end(), [&](std::uint32_t a, std::uint32_t b) {
      const float da = distance2(points[a], queries[q]);
      const float db = distance2(points[b], queries[q]);
      return da < db || (da == db && a < b);
    });
  }
  return rows;
}

class ThreadCountGuard {
 public:
  ~ThreadCountGuard() { set_num_threads(0); }
};

}  // namespace

TEST(Determinism, SearchInvariantAcrossThreadCounts) {
  ThreadCountGuard guard;
  for (const CloudKind kind : {CloudKind::kUniform, CloudKind::kLidar}) {
    const std::vector<Vec3> cloud = make_cloud(kind, 3000, kSeed);
    const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 500);

    for (const SearchMode mode : {SearchMode::kKnn, SearchMode::kRange}) {
      SearchParams params;
      params.mode = mode;
      params.radius = typical_radius(kind);
      // Range: K comfortably above any true neighbor count, so the result
      // set is unique and truncation order cannot leak into the answer.
      params.k = mode == SearchMode::kKnn ? 8 : 256;
      params.opts = OptimizationFlags::all();

      std::vector<std::vector<std::uint32_t>> reference;
      for (const int threads : kThreadCounts) {
        set_num_threads(threads);
        NeighborSearch search;
        search.set_points(cloud);
        const NeighborResult result = search.search(queries, params);
        auto rows = canonical(cloud, queries, result);
        if (reference.empty()) {
          reference = std::move(rows);
        } else {
          ASSERT_EQ(rows, reference)
              << rtnn::testing::to_string(kind) << " mode=" << static_cast<int>(mode)
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(Determinism, SessionSteppingInvariantAcrossThreadCounts) {
  ThreadCountGuard guard;
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 2000, kSeed);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = typical_radius(CloudKind::kUniform);
  params.k = 8;
  params.opts = OptimizationFlags::none();
  constexpr int kFrames = 4;

  std::vector<std::vector<std::vector<std::uint32_t>>> reference;  // per frame
  for (const int threads : kThreadCounts) {
    set_num_threads(threads);
    DynamicSearchSession session(params);
    data::DriftParams drift;
    drift.velocity = 0.2f * params.radius;
    data::DriftMotion motion(cloud, drift);

    std::vector<std::vector<std::vector<std::uint32_t>>> frames;
    for (int f = 0; f < kFrames; ++f) {
      const data::PointCloud& frame = motion.step();
      const NeighborResult result = session.step(frame);
      frames.push_back(canonical(frame, frame, result));
    }
    if (reference.empty()) {
      reference = std::move(frames);
    } else {
      ASSERT_EQ(frames, reference) << "threads=" << threads;
    }
  }
}

TEST(Determinism, BatchedPathInvariantAcrossThreadCounts) {
  ThreadCountGuard guard;
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 2500, kSeed);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = typical_radius(CloudKind::kUniform);
  params.k = 8;
  params.opts = OptimizationFlags::all();

  // A merged batch of five requests of different sizes.
  const std::vector<Vec3> merged(cloud.begin(), cloud.begin() + 400);
  const std::vector<BatchSlice> slices{{0, 64}, {64, 100}, {164, 36}, {200, 128}, {328, 72}};

  std::vector<std::vector<std::vector<std::uint32_t>>> reference;  // per slice
  for (const int threads : kThreadCounts) {
    set_num_threads(threads);
    NeighborSearch search;
    search.set_points(cloud);
    const std::vector<NeighborResult> results =
        search.search_batched(merged, slices, params);

    std::vector<std::vector<std::vector<std::uint32_t>>> rows;
    for (std::size_t i = 0; i < slices.size(); ++i) {
      const std::span<const Vec3> queries(merged.data() + slices[i].first,
                                          slices[i].count);
      rows.push_back(canonical(cloud, queries, results[i]));
    }
    if (reference.empty()) {
      reference = std::move(rows);
    } else {
      ASSERT_EQ(rows, reference) << "threads=" << threads;
    }
  }
}

TEST(Determinism, ServiceAnswersInvariantAcrossThreadCounts) {
  ThreadCountGuard guard;
  const std::vector<Vec3> cloud = make_cloud(CloudKind::kUniform, 2000, kSeed);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = typical_radius(CloudKind::kUniform);
  params.k = 8;
  params.opts = OptimizationFlags::none();

  constexpr std::size_t kRequests = 6;
  std::vector<std::vector<std::vector<std::uint32_t>>> reference;
  for (const int threads : kThreadCounts) {
    set_num_threads(threads);
    service::SearchService svc(cloud);
    std::vector<std::vector<std::vector<std::uint32_t>>> answers;
    for (std::size_t r = 0; r < kRequests; ++r) {
      const std::vector<Vec3> queries(cloud.begin() + static_cast<std::ptrdiff_t>(r * 50),
                                      cloud.begin() + static_cast<std::ptrdiff_t>(r * 50 + 40));
      const service::RequestOutcome outcome = svc.query(queries, params);
      answers.push_back(canonical(cloud, queries, outcome.result));
    }
    if (reference.empty()) {
      reference = std::move(answers);
    } else {
      ASSERT_EQ(answers, reference) << "threads=" << threads;
    }
  }
}
