#include "rtnn/cost_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

#include "core/rng.hpp"
#include "datasets/uniform.hpp"

namespace rtnn {
namespace {

// Builds a synthetic PartitionSet with the paper's empirical structure:
// AABB width ascending, query count descending (Figure 16).
PartitionSet synthetic_partitions(const std::vector<std::pair<float, std::size_t>>& spec,
                                  std::uint32_t k) {
  PartitionSet set;
  set.cell_size = 0.01f;
  std::uint32_t next_query = 0;
  for (const auto& [width, count] : spec) {
    Partition p;
    p.megacell_width = width;
    p.aabb_width = width * 1.24f;
    p.density = static_cast<double>(k) / (static_cast<double>(width) * width * width);
    p.query_ids.resize(count);
    std::iota(p.query_ids.begin(), p.query_ids.end(), next_query);
    next_query += static_cast<std::uint32_t>(count);
    set.partitions.push_back(std::move(p));
  }
  return set;
}

SearchParams knn_params(float r, std::uint32_t k) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = r;
  params.k = k;
  return params;
}

TEST(CostModel, UnbundledPlanHasOneBundlePerPartition) {
  const auto set = synthetic_partitions({{0.1f, 1000}, {0.2f, 100}, {0.4f, 10}}, 8);
  const auto plan = unbundled_plan(set, knn_params(1.0f, 8));
  EXPECT_EQ(plan.bundles.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.bundles[i].partition_indices.size(), 1u);
    EXPECT_FLOAT_EQ(plan.bundles[i].aabb_width, set.partitions[i].aabb_width);
  }
}

TEST(CostModel, BundlesCoverAllPartitionsExactlyOnce) {
  const auto set = synthetic_partitions(
      {{0.1f, 5000}, {0.15f, 800}, {0.2f, 300}, {0.3f, 40}, {0.5f, 5}}, 8);
  CostModel model;
  model.calibrated = true;
  const auto plan = plan_bundles(set, 100000, knn_params(1.0f, 8), model);
  std::vector<int> seen(set.partitions.size(), 0);
  for (const auto& b : plan.bundles) {
    for (const auto pi : b.partition_indices) ++seen[pi];
  }
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(CostModel, MergedBundleUsesMaxWidth) {
  const auto set = synthetic_partitions({{0.1f, 1000}, {0.2f, 100}, {0.4f, 10}}, 8);
  CostModel model;
  // Make builds extremely expensive so everything merges into one bundle.
  model.k1 = 1.0;
  model.k2 = 1e-12;
  model.calibrated = true;
  const auto plan = plan_bundles(set, 100000, knn_params(1.0f, 8), model);
  ASSERT_EQ(plan.bundles.size(), 1u);
  EXPECT_FLOAT_EQ(plan.bundles[0].aabb_width, set.partitions[2].aabb_width);
  EXPECT_EQ(plan.bundles[0].query_count, 1110u);
}

TEST(CostModel, CheapBuildsKeepPartitionsSeparate) {
  const auto set = synthetic_partitions({{0.1f, 1000}, {0.2f, 100}, {0.4f, 10}}, 8);
  CostModel model;
  model.k1 = 1e-15;  // builds are free → bundling can only hurt search
  model.k2 = 1.0;
  model.calibrated = true;
  const auto plan = plan_bundles(set, 100000, knn_params(1.0f, 8), model);
  EXPECT_EQ(plan.bundles.size(), set.partitions.size());
}

TEST(CostModel, PlanIsOptimalAmongTheoremFamily) {
  // plan_bundles must pick the minimum-cost member of the theorem family
  // {merge the (M - Mo + 1) least-populous partitions}, for every Mo.
  const auto set = synthetic_partitions(
      {{0.08f, 20000}, {0.12f, 4000}, {0.2f, 700}, {0.35f, 90}, {0.6f, 8}}, 16);
  CostModel model;  // defaults
  model.calibrated = true;
  const SearchParams params = knn_params(2.0f, 16);
  const std::size_t n_points = 500000;
  const auto plan = plan_bundles(set, n_points, params, model);
  const double chosen = predict_cost(plan, set, n_points, params, model);

  // Enumerate the family directly.
  std::vector<std::uint32_t> by_count(set.partitions.size());
  std::iota(by_count.begin(), by_count.end(), 0u);
  std::sort(by_count.begin(), by_count.end(), [&](std::uint32_t a, std::uint32_t b) {
    return set.partitions[a].query_ids.size() < set.partitions[b].query_ids.size();
  });
  for (std::uint32_t mo = 1; mo <= set.partitions.size(); ++mo) {
    BundlePlan candidate;
    const std::size_t merged = set.partitions.size() - mo + 1;
    Bundle big;
    for (std::size_t i = 0; i < merged; ++i) {
      big.partition_indices.push_back(by_count[i]);
      big.aabb_width = std::max(big.aabb_width, set.partitions[by_count[i]].aabb_width);
      big.query_count += set.partitions[by_count[i]].query_ids.size();
    }
    candidate.bundles.push_back(big);
    for (std::size_t i = merged; i < set.partitions.size(); ++i) {
      Bundle solo;
      solo.partition_indices.push_back(by_count[i]);
      solo.aabb_width = set.partitions[by_count[i]].aabb_width;
      solo.query_count = set.partitions[by_count[i]].query_ids.size();
      candidate.bundles.push_back(solo);
    }
    EXPECT_LE(chosen,
              predict_cost(candidate, set, n_points, params, model) * (1.0 + 1e-12));
  }
}

TEST(CostModel, BundlingNeverWorseThanExtremesUnderModel) {
  // The chosen plan costs no more than both "one bundle" and "no bundling".
  const auto set = synthetic_partitions(
      {{0.05f, 50000}, {0.1f, 9000}, {0.18f, 1200}, {0.3f, 150}, {0.55f, 12}}, 8);
  CostModel model;
  model.calibrated = true;
  const SearchParams params = knn_params(1.5f, 8);
  const auto plan = plan_bundles(set, 1000000, params, model);
  const double chosen = predict_cost(plan, set, 1000000, params, model);
  const auto none = unbundled_plan(set, params);
  EXPECT_LE(chosen, predict_cost(none, set, 1000000, params, model) * (1 + 1e-12));
}

TEST(CostModel, RangeCostUsesFastPathWhenContained) {
  // Two identical partitions except width: the one whose width fits inside
  // the sphere (w·√3/2 ≤ r) must predict a cheaper search.
  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = 1.0f;
  params.k = 8;
  const auto narrow = synthetic_partitions({{0.5f, 1000}}, 8);   // w=0.62, fits
  const auto wide = synthetic_partitions({{1.55f, 1000}}, 8);    // w=1.92, pokes out
  CostModel model;
  model.calibrated = true;
  const auto plan_narrow = unbundled_plan(narrow, params);
  const auto plan_wide = unbundled_plan(wide, params);
  EXPECT_LT(predict_cost(plan_narrow, narrow, 1000, params, model),
            predict_cost(plan_wide, wide, 1000, params, model));
}

TEST(CostModel, CalibrationProducesSaneRatios) {
  const auto points = data::uniform_box(50'000, {{0, 0, 0}, {1, 1, 1}}, 21);
  const CostModel model = CostModel::calibrate(points, 0.05f, 8);
  EXPECT_TRUE(model.calibrated);
  EXPECT_GT(model.k1, 0.0);
  EXPECT_GT(model.k2, 0.0);
  EXPECT_GT(model.k3_slow, 0.0);
  EXPECT_GT(model.k3_fast, 0.0);
  // The paper's qualitative relation — eliding the sphere test is not
  // dearer than performing it. Wide tolerance: this is a wall-clock
  // measurement and the suite runs under parallel ctest load.
  EXPECT_LE(model.k3_fast, model.k3_slow * 5.0);
}

TEST(CostModel, CalibrationRejectsTinySamples) {
  const auto points = data::uniform_box(10, {{0, 0, 0}, {1, 1, 1}}, 22);
  EXPECT_THROW(CostModel::calibrate(points, 0.05f, 8), Error);
}

}  // namespace
}  // namespace rtnn
