#include "core/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace rtnn {
namespace {

TEST(Vec3, DefaultIsZero) {
  const Vec3 v;
  EXPECT_EQ(v.x, 0.0f);
  EXPECT_EQ(v.y, 0.0f);
  EXPECT_EQ(v.z, 0.0f);
}

TEST(Vec3, SplatConstructor) {
  const Vec3 v(2.5f);
  EXPECT_EQ(v, Vec3(2.5f, 2.5f, 2.5f));
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0f, 2.0f, 3.0f};
  const Vec3 b{4.0f, 5.0f, 6.0f};
  EXPECT_EQ(a + b, Vec3(5.0f, 7.0f, 9.0f));
  EXPECT_EQ(b - a, Vec3(3.0f, 3.0f, 3.0f));
  EXPECT_EQ(a * 2.0f, Vec3(2.0f, 4.0f, 6.0f));
  EXPECT_EQ(2.0f * a, Vec3(2.0f, 4.0f, 6.0f));
  EXPECT_EQ(a / 2.0f, Vec3(0.5f, 1.0f, 1.5f));
  EXPECT_EQ(-a, Vec3(-1.0f, -2.0f, -3.0f));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1.0f, 1.0f, 1.0f};
  v += Vec3{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(v, Vec3(2.0f, 3.0f, 4.0f));
  v -= Vec3{1.0f, 1.0f, 1.0f};
  EXPECT_EQ(v, Vec3(1.0f, 2.0f, 3.0f));
  v *= 3.0f;
  EXPECT_EQ(v, Vec3(3.0f, 6.0f, 9.0f));
  v /= 3.0f;
  EXPECT_EQ(v, Vec3(1.0f, 2.0f, 3.0f));
}

TEST(Vec3, Indexing) {
  Vec3 v{7.0f, 8.0f, 9.0f};
  EXPECT_EQ(v[0], 7.0f);
  EXPECT_EQ(v[1], 8.0f);
  EXPECT_EQ(v[2], 9.0f);
  v[1] = -1.0f;
  EXPECT_EQ(v.y, -1.0f);
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1.0f, 0.0f, 0.0f};
  const Vec3 y{0.0f, 1.0f, 0.0f};
  EXPECT_EQ(dot(x, y), 0.0f);
  EXPECT_EQ(cross(x, y), Vec3(0.0f, 0.0f, 1.0f));
  EXPECT_EQ(dot(Vec3(1, 2, 3), Vec3(4, 5, 6)), 32.0f);
}

TEST(Vec3, Lengths) {
  const Vec3 v{3.0f, 4.0f, 0.0f};
  EXPECT_FLOAT_EQ(length2(v), 25.0f);
  EXPECT_FLOAT_EQ(length(v), 5.0f);
  const Vec3 n = normalize(v);
  EXPECT_FLOAT_EQ(length(n), 1.0f);
  EXPECT_EQ(normalize(Vec3{}), Vec3(0.0f, 0.0f, 0.0f));  // zero-safe
}

TEST(Vec3, Distance) {
  EXPECT_FLOAT_EQ(distance2(Vec3(1, 1, 1), Vec3(2, 2, 2)), 3.0f);
  EXPECT_FLOAT_EQ(distance(Vec3(0, 0, 0), Vec3(0, 3, 4)), 5.0f);
}

TEST(Vec3, MinMaxComponents) {
  const Vec3 a{1.0f, 5.0f, 3.0f};
  const Vec3 b{2.0f, 4.0f, 6.0f};
  EXPECT_EQ(min(a, b), Vec3(1.0f, 4.0f, 3.0f));
  EXPECT_EQ(max(a, b), Vec3(2.0f, 5.0f, 6.0f));
  EXPECT_EQ(min_component(a), 1.0f);
  EXPECT_EQ(max_component(a), 5.0f);
}

TEST(Vec3, Lerp) {
  EXPECT_EQ(lerp(Vec3(0.0f), Vec3(2.0f), 0.5f), Vec3(1.0f));
  EXPECT_EQ(lerp(Vec3(1.0f), Vec3(3.0f), 0.0f), Vec3(1.0f));
  EXPECT_EQ(lerp(Vec3(1.0f), Vec3(3.0f), 1.0f), Vec3(3.0f));
}

TEST(Vec3, IsFinite) {
  EXPECT_TRUE(is_finite(Vec3(1.0f, 2.0f, 3.0f)));
  EXPECT_FALSE(is_finite(Vec3(std::numeric_limits<float>::infinity(), 0.0f, 0.0f)));
  EXPECT_FALSE(is_finite(Vec3(0.0f, std::nanf(""), 0.0f)));
}

TEST(Vec3, StreamOutput) {
  std::ostringstream os;
  os << Vec3{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(os.str(), "(1, 2, 3)");
}

TEST(Int3, BasicOps) {
  const Int3 a{1, 2, 3};
  const Int3 b{4, 5, 6};
  EXPECT_EQ(a + b, Int3(5, 7, 9));
  EXPECT_EQ(b - a, Int3(3, 3, 3));
  EXPECT_EQ(a[2], 3);
  Int3 c = a;
  c[0] = 9;
  EXPECT_EQ(c, Int3(9, 2, 3));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rtnn
