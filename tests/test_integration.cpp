// Cross-module integration tests: the full RTNN system against every
// baseline on every dataset family, plus end-to-end properties the paper's
// evaluation relies on (speedup mechanisms, ablation orderings, oracle
// search machinery).
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/brute_force.hpp"
#include "baselines/fastrnn.hpp"
#include "baselines/grid_knn.hpp"
#include "baselines/grid_search.hpp"
#include "baselines/octree.hpp"
#include "datasets/point_cloud.hpp"
#include "rtnn/rtnn.hpp"
#include "test_util.hpp"

namespace rtnn {
namespace {

using testing::CloudKind;

class FullSystem : public ::testing::TestWithParam<CloudKind> {
 protected:
  void SetUp() override {
    kind_ = GetParam();
    points_ = testing::make_cloud(kind_, 10'000, 101);
    queries_ = data::jittered_queries(points_, 500, testing::typical_radius(kind_) * 0.2f,
                                      102);
    radius_ = testing::typical_radius(kind_);
    k_ = 8;
  }

  CloudKind kind_{};
  std::vector<Vec3> points_;
  std::vector<Vec3> queries_;
  float radius_ = 0.0f;
  std::uint32_t k_ = 8;
};

TEST_P(FullSystem, AllKnnImplementationsAgree) {
  const auto expected = baselines::brute_force_knn(points_, queries_, radius_, k_);

  baselines::GridKnn grid;
  grid.build(points_, radius_);
  testing::expect_knn_distances_match(points_, queries_, grid.search(queries_, k_),
                                      expected, "grid");

  baselines::Octree octree;
  octree.build(points_);
  testing::expect_knn_distances_match(points_, queries_,
                                      octree.knn_search(queries_, radius_, k_), expected,
                                      "octree");

  baselines::FastRnn fastrnn;
  fastrnn.build(points_);
  testing::expect_knn_distances_match(points_, queries_,
                                      fastrnn.knn_search(queries_, radius_, k_), expected,
                                      "fastrnn");

  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = radius_;
  params.k = k_;
  params.conservative_knn_aabb = true;
  NeighborSearch rtnn_search;
  rtnn_search.set_points(points_);
  testing::expect_knn_distances_match(points_, queries_,
                                      rtnn_search.search(queries_, params), expected,
                                      "rtnn");
}

TEST_P(FullSystem, AllRangeImplementationsAgreeOnCounts) {
  const auto expected = baselines::brute_force_range(points_, queries_, radius_, k_);

  baselines::GridRangeSearch grid;
  grid.build(points_, radius_);
  testing::expect_counts_equal(grid.search(queries_, k_), expected, "grid");

  baselines::Octree octree;
  octree.build(points_);
  testing::expect_counts_equal(octree.range_search(queries_, radius_, k_), expected,
                               "octree");

  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = radius_;
  params.k = k_;
  params.opts = OptimizationFlags::scheduling_only();  // exact configuration
  NeighborSearch rtnn_search;
  rtnn_search.set_points(points_);
  testing::expect_counts_equal(rtnn_search.search(queries_, params), expected, "rtnn");
}

TEST_P(FullSystem, SchedulingReducesSimtDivergence) {
  // Mechanism check on the real pipeline: with SIMT launches, scheduling
  // must improve warp occupancy over the shuffled input order.
  auto shuffled = queries_;
  data::shuffle(shuffled, 103);
  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = radius_;
  params.k = k_;
  params.simt_launches = true;
  params.opts = OptimizationFlags::none();
  NeighborSearch search;
  search.set_points(points_);
  NeighborSearch::Report unsched;
  search.search(shuffled, params, &unsched);
  params.opts = OptimizationFlags::scheduling_only();
  NeighborSearch::Report sched;
  search.search(shuffled, params, &sched);
  EXPECT_GT(sched.stats.occupancy(), unsched.stats.occupancy());
  EXPECT_LT(sched.stats.warp_substeps, unsched.stats.warp_substeps);
}

TEST_P(FullSystem, PartitioningReducesIsCalls) {
  // The whole point of section 5: smaller per-partition AABBs suppress
  // IS-shader work for KNN.
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = radius_ * 2.0f;  // generous radius so partitioning has room
  params.k = k_;
  NeighborSearch search;
  search.set_points(points_);

  params.opts = OptimizationFlags::scheduling_only();
  NeighborSearch::Report unpart;
  search.search(queries_, params, &unpart);

  params.opts = OptimizationFlags::no_bundling();
  NeighborSearch::Report part;
  search.search(queries_, params, &part);

  EXPECT_LT(part.stats.is_calls, unpart.stats.is_calls);
}

INSTANTIATE_TEST_SUITE_P(Clouds, FullSystem,
                         ::testing::Values(CloudKind::kUniform, CloudKind::kLidar,
                                           CloudKind::kSurface, CloudKind::kNBody),
                         [](const ::testing::TestParamInfo<CloudKind>& info) {
                           return testing::to_string(info.param);
                         });

TEST(OracleMachinery, SearchWithExplicitPlanMatchesDefault) {
  // search_with_plan() is the Oracle's entry point: running the default
  // plan through it must reproduce search()'s results.
  const auto points = testing::make_cloud(CloudKind::kUniform, 6000, 201);
  const auto queries = data::jittered_queries(points, 400, 0.01f, 202);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.1f;
  params.k = 8;
  params.opts = OptimizationFlags::no_bundling();
  NeighborSearch search;
  search.set_points(points);
  const auto via_search = search.search(queries, params);

  std::vector<std::uint32_t> order(queries.size());
  std::iota(order.begin(), order.end(), 0u);
  const PartitionSet parts = search.partition(queries, order, params);
  const BundlePlan plan = unbundled_plan(parts, params);
  const auto via_plan = search.search_with_plan(queries, params, parts, plan);
  testing::expect_knn_distances_match(points, queries, via_plan, via_search, "oracle");
}

TEST(OracleMachinery, SingleBundlePlanStillCorrect) {
  // Merging everything into one bundle = monolithic BVH with the largest
  // partition width; results must stay valid.
  const auto points = testing::make_cloud(CloudKind::kNBody, 6000, 203);
  const auto queries = data::jittered_queries(points, 300, 0.05f, 204);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 1.0f;
  params.k = 8;
  NeighborSearch search;
  search.set_points(points);
  std::vector<std::uint32_t> order(queries.size());
  std::iota(order.begin(), order.end(), 0u);
  const PartitionSet parts = search.partition(queries, order, params);
  // Build the all-in-one plan.
  CostModel model;
  model.k1 = 1.0;
  model.k2 = 1e-15;
  model.calibrated = true;
  const BundlePlan plan = plan_bundles(parts, points.size(), params, model);
  ASSERT_EQ(plan.bundles.size(), 1u);
  const auto got = search.search_with_plan(queries, params, parts, plan);
  const auto expected = baselines::brute_force_knn(points, queries, 1.0f, 8);
  std::uint64_t got_total = 0, exp_total = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    got_total += got.count(q);
    exp_total += expected.count(q);
  }
  EXPECT_GE(got_total * 100, exp_total * 99);
}

TEST(EndToEnd, LargeUniformSelfQueryStress) {
  // Self-neighborhood query on a bigger cloud exercises parallel paths.
  const auto points = testing::make_cloud(CloudKind::kUniform, 50'000, 301);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.03f;
  params.k = 8;
  NeighborSearch search;
  search.set_points(points);
  const auto result = search.search(points, params);
  // Every point finds itself (distance 0) plus neighbors.
  std::size_t with_self = 0;
  for (std::size_t q = 0; q < points.size(); ++q) {
    if (result.count(q) > 0) ++with_self;
  }
  EXPECT_EQ(with_self, points.size());
}

}  // namespace
}  // namespace rtnn
