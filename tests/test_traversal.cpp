#include "rtcore/traversal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/rng.hpp"
#include "rtcore/bvh.hpp"

namespace rtnn::rt {
namespace {

struct Scene {
  std::vector<Vec3> points;
  std::vector<Aabb> aabbs;
  Bvh bvh;
};

Scene make_scene(std::size_t n, float width, std::uint64_t seed) {
  Scene scene;
  Pcg32 rng(seed);
  const Aabb box{{0, 0, 0}, {1, 1, 1}};
  for (std::size_t i = 0; i < n; ++i) {
    scene.points.push_back(rng.uniform_in_aabb(box));
    scene.aabbs.push_back(Aabb::cube(scene.points.back(), width));
  }
  scene.bvh.build(scene.aabbs);
  return scene;
}

/// Records every primitive the IS stage sees, per ray.
struct Collector {
  std::vector<std::set<std::uint32_t>> hits;
  explicit Collector(std::size_t rays) : hits(rays) {}
  TraceAction intersect(std::uint32_t ray, std::uint32_t prim) {
    hits[ray].insert(prim);
    return TraceAction::kContinue;
  }
};

/// Terminates each ray after `limit` intersections (the AH shader role).
struct Terminator {
  std::vector<std::uint32_t> counts;
  std::uint32_t limit;
  Terminator(std::size_t rays, std::uint32_t limit_) : counts(rays, 0), limit(limit_) {}
  TraceAction intersect(std::uint32_t ray, std::uint32_t) {
    return ++counts[ray] >= limit ? TraceAction::kTerminate : TraceAction::kContinue;
  }
};

std::vector<Ray> short_rays(const std::vector<Vec3>& queries) {
  std::vector<Ray> rays;
  rays.reserve(queries.size());
  for (const Vec3& q : queries) rays.push_back(Ray::short_ray(q));
  return rays;
}

std::set<std::uint32_t> brute_force_enclosing(const Scene& scene, const Vec3& q) {
  std::set<std::uint32_t> expected;
  for (std::uint32_t p = 0; p < scene.aabbs.size(); ++p) {
    if (scene.aabbs[p].contains(q)) expected.insert(p);
  }
  return expected;
}

TEST(Traversal, FindsExactlyTheEnclosingAabbs) {
  const Scene scene = make_scene(2000, 0.08f, 5);
  Pcg32 rng(55);
  std::vector<Vec3> queries;
  for (int i = 0; i < 200; ++i) {
    queries.push_back(rng.uniform_in_aabb({{0, 0, 0}, {1, 1, 1}}));
  }
  Collector collector(queries.size());
  const auto rays = short_rays(queries);
  const auto stats = trace(scene.bvh, rays, collector);
  EXPECT_EQ(stats.rays, queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(collector.hits[q], brute_force_enclosing(scene, queries[q]))
        << "query " << q;
  }
}

TEST(Traversal, SimtModeFindsTheSameHits) {
  const Scene scene = make_scene(1500, 0.1f, 6);
  Pcg32 rng(66);
  std::vector<Vec3> queries;
  for (int i = 0; i < 333; ++i) {  // deliberately not a multiple of 32
    queries.push_back(rng.uniform_in_aabb({{0, 0, 0}, {1, 1, 1}}));
  }
  const auto rays = short_rays(queries);

  Collector independent(queries.size());
  trace(scene.bvh, rays, independent);

  Collector simt(queries.size());
  TraceConfig config;
  config.model = ExecutionModel::kWarpLockstep;
  const auto stats = trace(scene.bvh, rays, simt, config);

  EXPECT_EQ(independent.hits, simt.hits);
  EXPECT_EQ(stats.warps, (queries.size() + 31) / 32);
  EXPECT_GT(stats.warp_substeps, 0u);
  EXPECT_GT(stats.occupancy(), 0.0);
  EXPECT_LE(stats.occupancy(), 1.0);
}

TEST(Traversal, TerminationStopsEarly) {
  const Scene scene = make_scene(3000, 0.2f, 7);
  Pcg32 rng(77);
  std::vector<Vec3> queries;
  for (int i = 0; i < 100; ++i) {
    queries.push_back(rng.uniform_in_aabb({{0.3f, 0.3f, 0.3f}, {0.7f, 0.7f, 0.7f}}));
  }
  const auto rays = short_rays(queries);

  Terminator term(queries.size(), 1);
  const auto stats = trace(scene.bvh, rays, term);
  for (const auto c : term.counts) {
    EXPECT_LE(c, 1u);
  }
  // Dense interior queries should all terminate at their first hit.
  EXPECT_GT(stats.terminated_rays, 90u);
  // Early termination must do less work than full traversal.
  Collector full(queries.size());
  const auto full_stats = trace(scene.bvh, rays, full);
  EXPECT_LT(stats.is_calls, full_stats.is_calls);
  EXPECT_LT(stats.node_visits, full_stats.node_visits);
}

TEST(Traversal, IsCallsGrowWithAabbWidth) {
  // The Figure 8 characterization at test scale: wider AABBs → more IS
  // calls, super-linearly.
  Pcg32 rng(88);
  std::vector<Vec3> queries;
  for (int i = 0; i < 500; ++i) {
    queries.push_back(rng.uniform_in_aabb({{0, 0, 0}, {1, 1, 1}}));
  }
  const auto rays = short_rays(queries);
  std::vector<std::uint64_t> is_calls;
  for (const float width : {0.02f, 0.08f, 0.32f}) {
    const Scene scene = make_scene(5000, width, 99);
    Collector collector(queries.size());
    const auto stats = trace(scene.bvh, rays, collector);
    is_calls.push_back(stats.is_calls);
  }
  EXPECT_LT(is_calls[0], is_calls[1]);
  EXPECT_LT(is_calls[1], is_calls[2]);
  // Cubic growth: 4x width → ~64x IS calls; assert clearly super-linear.
  EXPECT_GT(static_cast<double>(is_calls[2]),
            8.0 * static_cast<double>(is_calls[1]));
}

TEST(Traversal, CoherentRaysNeedFewerSubsteps) {
  // The mechanism behind Figures 5/6: Morton-sorted rays diverge less in
  // lockstep execution than shuffled rays.
  const Scene scene = make_scene(20000, 0.03f, 8);
  std::vector<Vec3> queries = scene.points;  // self-queries, spatially sorted below
  std::sort(queries.begin(), queries.end(), [](const Vec3& a, const Vec3& b) {
    return a.x != b.x ? a.x < b.x : (a.y != b.y ? a.y < b.y : a.z < b.z);
  });
  auto shuffled = queries;
  Pcg32 rng(222);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.next_bounded(static_cast<std::uint32_t>(i))]);
  }

  TraceConfig config;
  config.model = ExecutionModel::kWarpLockstep;
  config.simulate_caches = true;
  config.parallel = false;

  Collector c1(queries.size());
  const auto coherent = trace(scene.bvh, short_rays(queries), c1, config);
  Collector c2(shuffled.size());
  const auto incoherent = trace(scene.bvh, short_rays(shuffled), c2, config);

  EXPECT_LT(coherent.warp_substeps, incoherent.warp_substeps);
  EXPECT_GT(coherent.occupancy(), incoherent.occupancy());
  EXPECT_GT(coherent.l1.hit_rate(), incoherent.l1.hit_rate());
}

TEST(Traversal, CacheSimRequiresSimtMode) {
  const Scene scene = make_scene(10, 0.1f, 9);
  Collector collector(1);
  const std::vector<Ray> rays{Ray::short_ray({0.5f, 0.5f, 0.5f})};
  TraceConfig config;
  config.simulate_caches = true;  // but model = kIndependent
  EXPECT_THROW(trace(scene.bvh, rays, collector, config), Error);
}

TEST(Traversal, EmptyLaunches) {
  const Scene scene = make_scene(10, 0.1f, 10);
  Collector collector(0);
  const auto stats = trace(scene.bvh, std::span<const Ray>{}, collector);
  EXPECT_EQ(stats.rays, 0u);

  Bvh empty_bvh;
  empty_bvh.build({});
  Collector c2(1);
  const std::vector<Ray> rays{Ray::short_ray({0, 0, 0})};
  const auto s2 = trace(empty_bvh, rays, c2);
  EXPECT_EQ(s2.is_calls, 0u);
}

TEST(Traversal, StatsDisabledStillComputesHits) {
  const Scene scene = make_scene(500, 0.1f, 11);
  Pcg32 rng(11);
  std::vector<Vec3> queries;
  for (int i = 0; i < 50; ++i) {
    queries.push_back(rng.uniform_in_aabb({{0, 0, 0}, {1, 1, 1}}));
  }
  Collector with_stats(queries.size());
  Collector without_stats(queries.size());
  const auto rays = short_rays(queries);
  trace(scene.bvh, rays, with_stats);
  TraceConfig config;
  config.collect_stats = false;
  const auto stats = trace(scene.bvh, rays, without_stats, config);
  EXPECT_EQ(with_stats.hits, without_stats.hits);
  EXPECT_EQ(stats.node_visits, 0u);
}

TEST(Traversal, SingleRayHelper) {
  const Scene scene = make_scene(100, 0.3f, 12);
  Collector collector(1);
  const auto stats = trace_ray(scene.bvh, Ray::short_ray({0.5f, 0.5f, 0.5f}), collector);
  EXPECT_EQ(stats.rays, 1u);
  EXPECT_EQ(collector.hits[0], brute_force_enclosing(scene, {0.5f, 0.5f, 0.5f}));
}

}  // namespace
}  // namespace rtnn::rt
