#include "rtnn/grid_index.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace rtnn {
namespace {

std::vector<Vec3> random_points(std::size_t n, std::uint64_t seed,
                                const Aabb& box = {{0, 0, 0}, {1, 1, 1}}) {
  Pcg32 rng(seed);
  std::vector<Vec3> points(n);
  for (auto& p : points) p = rng.uniform_in_aabb(box);
  return points;
}

// Direct per-point count of how many fall in the cell box [lo, hi].
std::uint64_t direct_count(const GridIndex& grid, const std::vector<Vec3>& points,
                           Int3 lo, Int3 hi) {
  std::uint64_t count = 0;
  for (const Vec3& p : points) {
    const Int3 c = grid.cell_of(p);
    if (c.x >= lo.x && c.x <= hi.x && c.y >= lo.y && c.y <= hi.y && c.z >= lo.z &&
        c.z <= hi.z) {
      ++count;
    }
  }
  return count;
}

TEST(GridIndex, TotalMatchesPointCount) {
  const auto points = random_points(5'000, 1);
  GridIndex grid;
  grid.build(points, 1 << 15);
  EXPECT_EQ(grid.total(), points.size());
}

TEST(GridIndex, ResolutionRespectsMaxCells) {
  const auto points = random_points(1'000, 2);
  for (const std::uint64_t max_cells : {64ull, 4096ull, 1ull << 18}) {
    GridIndex grid;
    grid.build(points, max_cells);
    const Int3 r = grid.resolution();
    EXPECT_LE(static_cast<std::uint64_t>(r.x) * r.y * r.z, max_cells);
  }
}

TEST(GridIndex, SatMatchesDirectCountsOnRandomBoxes) {
  const auto points = random_points(20'000, 3);
  GridIndex grid;
  grid.build(points, 1 << 15);
  const Int3 res = grid.resolution();
  Pcg32 rng(33);
  for (int trial = 0; trial < 200; ++trial) {
    Int3 lo{static_cast<int>(rng.next_bounded(res.x)),
            static_cast<int>(rng.next_bounded(res.y)),
            static_cast<int>(rng.next_bounded(res.z))};
    Int3 hi{lo.x + static_cast<int>(rng.next_bounded(res.x - lo.x)),
            lo.y + static_cast<int>(rng.next_bounded(res.y - lo.y)),
            lo.z + static_cast<int>(rng.next_bounded(res.z - lo.z))};
    EXPECT_EQ(grid.count_in_box(lo, hi), direct_count(grid, points, lo, hi));
  }
}

TEST(GridIndex, FullBoxEqualsTotal) {
  const auto points = random_points(3'000, 4);
  GridIndex grid;
  grid.build(points, 1 << 12);
  const Int3 res = grid.resolution();
  EXPECT_EQ(grid.count_in_box({0, 0, 0}, {res.x - 1, res.y - 1, res.z - 1}),
            points.size());
}

TEST(GridIndex, OutOfRangeBoxesClampOrVanish) {
  const auto points = random_points(1'000, 5);
  GridIndex grid;
  grid.build(points, 1 << 12);
  const Int3 res = grid.resolution();
  // Clamping: an oversized box equals the full grid.
  EXPECT_EQ(grid.count_in_box({-10, -10, -10}, {res.x + 10, res.y + 10, res.z + 10}),
            points.size());
  // Fully outside: zero.
  EXPECT_EQ(grid.count_in_box({res.x, 0, 0}, {res.x + 5, 5, 5}), 0u);
  // Inverted after clamp: zero.
  EXPECT_EQ(grid.count_in_box({5, 5, 5}, {2, 2, 2}), 0u);
}

TEST(GridIndex, CellOfClampsOutOfBoundsPoints) {
  const auto points = random_points(100, 6);
  GridIndex grid;
  grid.build(points, 1 << 12);
  const Int3 c = grid.cell_of({-100.0f, 0.5f, 200.0f});
  EXPECT_EQ(c.x, 0);
  EXPECT_EQ(c.z, grid.resolution().z - 1);
}

TEST(GridIndex, AnisotropicCloudGetsAnisotropicResolution) {
  // LiDAR-like thin-z cloud: z resolution should be far smaller than x/y
  // since cells are cubic.
  const auto points = random_points(5'000, 7, {{0, 0, 0}, {100, 100, 2}});
  GridIndex grid;
  grid.build(points, 1 << 15);
  const Int3 r = grid.resolution();
  EXPECT_LT(r.z, r.x / 4);
}

TEST(GridIndex, RejectsDegenerateInput) {
  GridIndex grid;
  EXPECT_THROW(grid.build({}, 1 << 12), Error);
  const auto points = random_points(10, 8);
  EXPECT_THROW(grid.build(points, 4), Error);
}

TEST(GridIndex, SinglePointCloud) {
  const std::vector<Vec3> points{{0.5f, 0.5f, 0.5f}};
  GridIndex grid;
  grid.build(points, 1 << 12);
  EXPECT_EQ(grid.total(), 1u);
  const Int3 c = grid.cell_of(points[0]);
  EXPECT_EQ(grid.count_in_box(c, c), 1u);
}

}  // namespace
}  // namespace rtnn
