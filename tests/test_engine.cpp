// Engine-layer tests: registry construction, backend parity against the
// exhaustive reference, AutoBackend dispatch, and stage-pipeline
// composition.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/rng.hpp"
#include "engine/engine.hpp"
#include "rtnn/stages.hpp"
#include "test_util.hpp"

namespace rtnn::engine {
namespace {

using rtnn::testing::CloudKind;

constexpr const char* kBuiltins[] = {"auto",    "brute_force", "fastrnn",
                                     "grid",    "octree",      "rtnn"};

TEST(BackendRegistry, ConstructsEveryBuiltin) {
  auto& registry = BackendRegistry::instance();
  const std::vector<std::string> names = registry.names();
  for (const char* name : kBuiltins) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end()) << name;
    const std::unique_ptr<SearchBackend> backend = registry.create(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
    const BackendCaps caps = backend->caps();
    EXPECT_TRUE(caps.range || caps.knn) << name << " supports no mode at all";
  }
}

TEST(BackendRegistry, UnknownNameThrows) {
  EXPECT_THROW(make_backend("no-such-backend"), Error);
}

TEST(BackendRegistry, CustomFactoriesRegister) {
  auto& registry = BackendRegistry::instance();
  registry.add("custom_brute", [] { return std::make_unique<BruteForceBackend>(); });
  const auto backend = registry.create("custom_brute");
  EXPECT_EQ(backend->name(), "brute_force");
  EXPECT_TRUE(registry.contains("custom_brute"));
}

/// KNN sequences sorted by (distance, id) must match id-for-id: every
/// in-repo implementation breaks distance ties by ascending point id.
void expect_knn_identical(std::span<const Vec3> points, std::span<const Vec3> queries,
                          const NeighborResult& got, const NeighborResult& expected,
                          const std::string& label) {
  ASSERT_EQ(got.num_queries(), expected.num_queries()) << label;
  for (std::size_t q = 0; q < got.num_queries(); ++q) {
    ASSERT_EQ(got.count(q), expected.count(q)) << label << " query " << q;
    auto by_dist_then_id = [&](std::span<const std::uint32_t> ids) {
      std::vector<std::uint32_t> sorted(ids.begin(), ids.end());
      std::sort(sorted.begin(), sorted.end(), [&](std::uint32_t a, std::uint32_t b) {
        const float da = distance2(points[a], queries[q]);
        const float db = distance2(points[b], queries[q]);
        return da < db || (da == db && a < b);
      });
      return sorted;
    };
    ASSERT_EQ(by_dist_then_id(got.neighbors(q)), by_dist_then_id(expected.neighbors(q)))
        << label << " query " << q;
  }
}

class BackendParity : public ::testing::TestWithParam<CloudKind> {};

TEST_P(BackendParity, AgreesWithBruteForceOnRandomClouds) {
  const CloudKind kind = GetParam();
  const std::vector<Vec3> points = rtnn::testing::make_cloud(kind, 1500, /*seed=*/7);

  // Queries: a mix of points themselves and jittered offsets.
  Pcg32 rng(99);
  std::vector<Vec3> queries;
  for (std::size_t i = 0; i < points.size(); i += 10) {
    queries.push_back(points[i]);
    queries.push_back(points[i] + Vec3{rng.uniform(-0.05f, 0.05f),
                                       rng.uniform(-0.05f, 0.05f),
                                       rng.uniform(-0.05f, 0.05f)});
  }

  SearchParams params;
  params.radius = rtnn::testing::typical_radius(kind);
  // K = N: range results can never be truncated, so parity is exact.
  params.k = static_cast<std::uint32_t>(points.size());

  BruteForceBackend reference;
  reference.set_points(points);

  for (const char* name : kBuiltins) {
    if (std::string_view(name) == "brute_force") continue;
    const auto backend = make_backend(name);
    backend->set_points(points);
    const BackendCaps caps = backend->caps();

    if (caps.range) {
      params.mode = SearchMode::kRange;
      const NeighborResult expected = reference.search(queries, params, nullptr);
      const NeighborResult got = backend->search(queries, params, nullptr);
      rtnn::testing::expect_same_neighbor_sets(
          got, expected, std::string(name) + "/range/" + to_string(kind));
    }

    if (caps.knn) {
      params.mode = SearchMode::kKnn;
      params.k = 16;
      const NeighborResult expected = reference.search(queries, params, nullptr);
      const NeighborResult got = backend->search(queries, params, nullptr);
      expect_knn_identical(points, queries, got, expected,
                           std::string(name) + "/knn/" + to_string(kind));
      params.k = static_cast<std::uint32_t>(points.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Clouds, BackendParity,
                         ::testing::Values(CloudKind::kUniform, CloudKind::kLidar,
                                           CloudKind::kNBody),
                         [](const auto& info) { return to_string(info.param); });

TEST(AutoBackend, PicksNonBruteForceOnLargeUniformCloud) {
  const std::vector<Vec3> points =
      rtnn::testing::make_cloud(CloudKind::kUniform, 100'000, /*seed=*/3);
  const std::span<const Vec3> queries(points.data(), 1000);

  AutoBackend backend;
  backend.set_points(points);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.06f;
  params.k = 16;

  const NeighborResult result = backend.search(queries, params);
  EXPECT_FALSE(backend.last_choice().empty());
  EXPECT_NE(backend.last_choice(), "brute_force") << "100k points must not go exhaustive";
  rtnn::testing::expect_all_within_radius(points, queries, result, params.radius, "auto");

  // Whatever it picked must agree with the reference.
  BruteForceBackend reference;
  reference.set_points(points);
  const NeighborResult expected = reference.search(queries, params, nullptr);
  expect_knn_identical(points, queries, result, expected, "auto/knn");
}

TEST(AutoBackend, PredictsBruteForceForTinyWorkloads) {
  const std::vector<Vec3> points =
      rtnn::testing::make_cloud(CloudKind::kUniform, 64, /*seed=*/5);
  AutoBackend backend;
  backend.set_points(points);
  SearchParams params;
  params.radius = 0.1f;
  const WorkloadStats stats = backend.measure(std::span<const Vec3>(points).subspan(0, 4),
                                              params);
  EXPECT_EQ(stats.n, 64u);
  EXPECT_EQ(stats.q, 4u);
  EXPECT_EQ(backend.predict(stats, params), "brute_force");
}

TEST(AutoBackend, DensityEstimateTracksUniformCloud) {
  const std::size_t n = 20'000;
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, n, 11);
  AutoBackend backend;
  backend.set_points(points);
  SearchParams params;
  params.radius = 0.1f;
  const WorkloadStats stats =
      backend.measure(std::span<const Vec3>(points).subspan(0, 256), params);
  // Uniform unit cube: expect ~N points per unit volume, within a factor
  // accounting for boundary clipping of the sampled boxes.
  EXPECT_GT(stats.density, 0.25 * static_cast<double>(n));
  EXPECT_LT(stats.density, 1.5 * static_cast<double>(n));
}

TEST(StagePipeline, ComposedStagesMatchFlaggedSearch) {
  const std::vector<Vec3> points =
      rtnn::testing::make_cloud(CloudKind::kUniform, 4000, /*seed=*/21);
  const std::span<const Vec3> queries(points.data(), 800);

  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = 0.06f;
  params.k = 64;
  params.opts = OptimizationFlags::all();

  NeighborSearch search;
  search.set_points(points);
  const NeighborResult flagged = search.search(queries, params);

  // The same pipeline, assembled by hand from real stage objects.
  std::vector<std::unique_ptr<SearchStage>> stages;
  stages.push_back(std::make_unique<ScheduleStage>());
  stages.push_back(std::make_unique<PartitionStage>());
  stages.push_back(std::make_unique<BundleStage>(/*use_cost_model=*/true));
  stages.push_back(std::make_unique<LaunchStage>());
  const NeighborResult composed = search.run_stages(queries, params, stages);

  rtnn::testing::expect_same_neighbor_sets(composed, flagged, "stages/range");

  // A truncated pipeline (no partitioning) must equal the flag-driven
  // scheduling-only configuration.
  std::vector<std::unique_ptr<SearchStage>> sched_only;
  sched_only.push_back(std::make_unique<ScheduleStage>());
  sched_only.push_back(std::make_unique<LaunchStage>());
  const NeighborResult truncated = search.run_stages(queries, params, sched_only);
  params.opts = OptimizationFlags::scheduling_only();
  const NeighborResult sched_flagged = search.search(queries, params);
  rtnn::testing::expect_same_neighbor_sets(truncated, sched_flagged, "stages/sched-only");
}

}  // namespace
}  // namespace rtnn::engine
