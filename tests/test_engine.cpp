// Engine-layer tests: registry construction, backend parity against the
// exhaustive reference, AutoBackend dispatch, and stage-pipeline
// composition.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/rng.hpp"
#include "engine/engine.hpp"
#include "rtnn/stages.hpp"
#include "test_util.hpp"

namespace rtnn::engine {
namespace {

using rtnn::testing::CloudKind;
using rtnn::testing::expect_knn_identical;

constexpr const char* kBuiltins[] = {"auto",    "brute_force", "fastrnn",
                                     "grid",    "octree",      "rtnn"};

TEST(BackendRegistry, ConstructsEveryBuiltin) {
  auto& registry = BackendRegistry::instance();
  const std::vector<std::string> names = registry.names();
  for (const char* name : kBuiltins) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end()) << name;
    const std::unique_ptr<SearchBackend> backend = registry.create(name);
    ASSERT_NE(backend, nullptr) << name;
    EXPECT_EQ(backend->name(), name);
    const BackendCaps caps = backend->caps();
    EXPECT_TRUE(caps.range || caps.knn) << name << " supports no mode at all";
  }
}

TEST(BackendRegistry, UnknownNameThrows) {
  EXPECT_THROW(make_backend("no-such-backend"), Error);
  try {
    make_backend("no-such-backend");
    FAIL() << "expected rtnn::Error";
  } catch (const Error& e) {
    // The message must name the offender so CLI users can act on it.
    EXPECT_NE(std::string(e.what()).find("no-such-backend"), std::string::npos);
  }
  // A failed lookup must not have registered anything as a side effect.
  EXPECT_FALSE(BackendRegistry::instance().contains("no-such-backend"));
}

TEST(BackendRegistry, CustomFactoriesRegister) {
  auto& registry = BackendRegistry::instance();
  registry.add("custom_brute", [] { return std::make_unique<BruteForceBackend>(); });
  const auto backend = registry.create("custom_brute");
  EXPECT_EQ(backend->name(), "brute_force");
  EXPECT_TRUE(registry.contains("custom_brute"));
}

TEST(BackendRegistry, DuplicateRegistrationReplacesFactory) {
  auto& registry = BackendRegistry::instance();
  registry.add("dup_backend", [] { return std::make_unique<BruteForceBackend>(); });
  ASSERT_EQ(registry.create("dup_backend")->name(), "brute_force");
  // Re-registering the same name replaces the factory (documented shadowing
  // behavior) instead of throwing or appending a second entry.
  registry.add("dup_backend", [] { return std::make_unique<OctreeBackend>(); });
  EXPECT_EQ(registry.create("dup_backend")->name(), "octree");
  const std::vector<std::string> names = registry.names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "dup_backend"), 1);
}

TEST(BackendCapsGating, UnsupportedModeThrows) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 200, 1);
  SearchParams params;
  params.radius = 0.1f;
  params.k = 4;

  // FastRNN is KNN-only: a range request must fail the caps() gate up
  // front, not produce garbage.
  FastRnnBackend fastrnn;
  fastrnn.set_points(points);
  EXPECT_FALSE(fastrnn.caps().range);
  params.mode = SearchMode::kRange;
  EXPECT_THROW(fastrnn.search(points, params, nullptr), Error);
  params.mode = SearchMode::kKnn;
  EXPECT_NO_THROW(fastrnn.search(points, params, nullptr));
}

TEST(BackendCapsGating, ApproximateKnobsRejectedByExactBackends) {
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, 200, 2);
  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = 0.1f;
  params.k = 4;
  params.aabb_scale = 0.5f;  // approximate knob

  for (const char* name : {"brute_force", "grid", "octree"}) {
    const auto backend = make_backend(name);
    ASSERT_FALSE(backend->caps().approximate) << name;
    backend->set_points(points);
    EXPECT_THROW(backend->search(points, params, nullptr), Error) << name;
  }
  // rtnn honors the knob and must keep accepting it.
  const auto rtnn_backend = make_backend("rtnn");
  ASSERT_TRUE(rtnn_backend->caps().approximate);
  rtnn_backend->set_points(points);
  EXPECT_NO_THROW(rtnn_backend->search(points, params, nullptr));
}

TEST(BackendLifecycle, UpdatePointsFallbackMatchesRebuild) {
  // Backends without a refit path must answer update_points() through the
  // set_points() fallback — callers never branch on caps().dynamic.
  const std::vector<Vec3> before = rtnn::testing::make_cloud(CloudKind::kUniform, 1200, 31);
  std::vector<Vec3> after = before;
  Pcg32 rng(77);
  for (Vec3& p : after) {
    p += Vec3{rng.uniform(-0.01f, 0.01f), rng.uniform(-0.01f, 0.01f),
              rng.uniform(-0.01f, 0.01f)};
  }
  const std::span<const Vec3> queries(after.data(), 300);

  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.08f;
  params.k = 8;

  BruteForceBackend reference;
  reference.set_points(after);
  const NeighborResult expected = reference.search(queries, params, nullptr);

  for (const char* name : kBuiltins) {
    if (std::string_view(name) == "brute_force") continue;
    const auto backend = make_backend(name);
    backend->set_points(before);
    (void)backend->search(queries, params, nullptr);  // build against the old frame
    backend->update_points(after);
    const NeighborResult got = backend->search(queries, params, nullptr);
    expect_knn_identical(after, queries, got, expected,
                         std::string(name) + "/update_points");
  }
}

TEST(BackendLifecycle, DynamicCapsDeclared) {
  // The refit-capable stacks advertise it; index-free or rebuild-only
  // backends must not.
  EXPECT_TRUE(make_backend("rtnn")->caps().dynamic);
  EXPECT_TRUE(make_backend("fastrnn")->caps().dynamic);
  EXPECT_TRUE(make_backend("auto")->caps().dynamic);
  EXPECT_FALSE(make_backend("brute_force")->caps().dynamic);
  EXPECT_FALSE(make_backend("grid")->caps().dynamic);
  EXPECT_FALSE(make_backend("octree")->caps().dynamic);
}

class BackendParity : public ::testing::TestWithParam<CloudKind> {};

TEST_P(BackendParity, AgreesWithBruteForceOnRandomClouds) {
  const CloudKind kind = GetParam();
  const std::vector<Vec3> points = rtnn::testing::make_cloud(kind, 1500, /*seed=*/7);

  // Queries: a mix of points themselves and jittered offsets.
  Pcg32 rng(99);
  std::vector<Vec3> queries;
  for (std::size_t i = 0; i < points.size(); i += 10) {
    queries.push_back(points[i]);
    queries.push_back(points[i] + Vec3{rng.uniform(-0.05f, 0.05f),
                                       rng.uniform(-0.05f, 0.05f),
                                       rng.uniform(-0.05f, 0.05f)});
  }

  SearchParams params;
  params.radius = rtnn::testing::typical_radius(kind);
  // K = N: range results can never be truncated, so parity is exact.
  params.k = static_cast<std::uint32_t>(points.size());

  BruteForceBackend reference;
  reference.set_points(points);

  for (const char* name : kBuiltins) {
    if (std::string_view(name) == "brute_force") continue;
    const auto backend = make_backend(name);
    backend->set_points(points);
    const BackendCaps caps = backend->caps();

    if (caps.range) {
      params.mode = SearchMode::kRange;
      const NeighborResult expected = reference.search(queries, params, nullptr);
      const NeighborResult got = backend->search(queries, params, nullptr);
      rtnn::testing::expect_same_neighbor_sets(
          got, expected, std::string(name) + "/range/" + to_string(kind));
    }

    if (caps.knn) {
      params.mode = SearchMode::kKnn;
      params.k = 16;
      const NeighborResult expected = reference.search(queries, params, nullptr);
      const NeighborResult got = backend->search(queries, params, nullptr);
      expect_knn_identical(points, queries, got, expected,
                           std::string(name) + "/knn/" + to_string(kind));
      params.k = static_cast<std::uint32_t>(points.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Clouds, BackendParity,
                         ::testing::Values(CloudKind::kUniform, CloudKind::kLidar,
                                           CloudKind::kNBody),
                         [](const auto& info) { return to_string(info.param); });

TEST(AutoBackend, PicksNonBruteForceOnLargeUniformCloud) {
  const std::vector<Vec3> points =
      rtnn::testing::make_cloud(CloudKind::kUniform, 100'000, /*seed=*/3);
  const std::span<const Vec3> queries(points.data(), 1000);

  AutoBackend backend;
  backend.set_points(points);
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = 0.06f;
  params.k = 16;

  const NeighborResult result = backend.search(queries, params);
  EXPECT_FALSE(backend.last_choice().empty());
  EXPECT_NE(backend.last_choice(), "brute_force") << "100k points must not go exhaustive";
  rtnn::testing::expect_all_within_radius(points, queries, result, params.radius, "auto");

  // Whatever it picked must agree with the reference.
  BruteForceBackend reference;
  reference.set_points(points);
  const NeighborResult expected = reference.search(queries, params, nullptr);
  expect_knn_identical(points, queries, result, expected, "auto/knn");
}

TEST(AutoBackend, PredictsBruteForceForTinyWorkloads) {
  const std::vector<Vec3> points =
      rtnn::testing::make_cloud(CloudKind::kUniform, 64, /*seed=*/5);
  AutoBackend backend;
  backend.set_points(points);
  SearchParams params;
  params.radius = 0.1f;
  const WorkloadStats stats = backend.measure(std::span<const Vec3>(points).subspan(0, 4),
                                              params);
  EXPECT_EQ(stats.n, 64u);
  EXPECT_EQ(stats.q, 4u);
  EXPECT_EQ(backend.predict(stats, params), "brute_force");
}

TEST(AutoBackend, DensityEstimateTracksUniformCloud) {
  const std::size_t n = 20'000;
  const std::vector<Vec3> points = rtnn::testing::make_cloud(CloudKind::kUniform, n, 11);
  AutoBackend backend;
  backend.set_points(points);
  SearchParams params;
  params.radius = 0.1f;
  const WorkloadStats stats =
      backend.measure(std::span<const Vec3>(points).subspan(0, 256), params);
  // Uniform unit cube: expect ~N points per unit volume, within a factor
  // accounting for boundary clipping of the sampled boxes.
  EXPECT_GT(stats.density, 0.25 * static_cast<double>(n));
  EXPECT_LT(stats.density, 1.5 * static_cast<double>(n));
}

TEST(StagePipeline, ComposedStagesMatchFlaggedSearch) {
  const std::vector<Vec3> points =
      rtnn::testing::make_cloud(CloudKind::kUniform, 4000, /*seed=*/21);
  const std::span<const Vec3> queries(points.data(), 800);

  SearchParams params;
  params.mode = SearchMode::kRange;
  params.radius = 0.06f;
  params.k = 64;
  params.opts = OptimizationFlags::all();

  NeighborSearch search;
  search.set_points(points);
  const NeighborResult flagged = search.search(queries, params);

  // The same pipeline, assembled by hand from real stage objects.
  std::vector<std::unique_ptr<SearchStage>> stages;
  stages.push_back(std::make_unique<ScheduleStage>());
  stages.push_back(std::make_unique<PartitionStage>());
  stages.push_back(std::make_unique<BundleStage>(/*use_cost_model=*/true));
  stages.push_back(std::make_unique<LaunchStage>());
  const NeighborResult composed = search.run_stages(queries, params, stages);

  rtnn::testing::expect_same_neighbor_sets(composed, flagged, "stages/range");

  // A truncated pipeline (no partitioning) must equal the flag-driven
  // scheduling-only configuration.
  std::vector<std::unique_ptr<SearchStage>> sched_only;
  sched_only.push_back(std::make_unique<ScheduleStage>());
  sched_only.push_back(std::make_unique<LaunchStage>());
  const NeighborResult truncated = search.run_stages(queries, params, sched_only);
  params.opts = OptimizationFlags::scheduling_only();
  const NeighborResult sched_flagged = search.search(queries, params);
  rtnn::testing::expect_same_neighbor_sets(truncated, sched_flagged, "stages/sched-only");
}

}  // namespace
}  // namespace rtnn::engine
