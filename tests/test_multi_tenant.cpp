// The multi-tenant serving surface: the cloud registry (register / drop /
// list / handles), build-on-demand and LRU residency, admission control
// (token bucket + queue-depth shedding, the typed ServiceError contract),
// the Ticket try_get()/valid() additions, per-cloud vs service-wide
// stats, and multi-cloud concurrency. Carries the "sharded" ctest label
// (the TSan CI job runs it alongside the service suite).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/failpoint.hpp"
#include "core/rng.hpp"
#include "engine/engine.hpp"
#include "service/admission.hpp"
#include "service/service.hpp"
#include "test_util.hpp"

using namespace rtnn;
using namespace rtnn::service;
using rtnn::testing::CloudKind;
using rtnn::testing::make_cloud;
using rtnn::testing::typical_radius;

namespace {

constexpr std::size_t kCloudSize = 800;
constexpr std::uint64_t kSeed = 431;

SearchParams knn_params(float radius, std::uint32_t k = 8) {
  SearchParams params;
  params.mode = SearchMode::kKnn;
  params.radius = radius;
  params.k = k;
  params.opts = OptimizationFlags::none();
  return params;
}

std::vector<Vec3> uniform_cloud(std::uint64_t seed, std::size_t n = kCloudSize) {
  return make_cloud(CloudKind::kUniform, n, seed);
}

/// Expected result for `queries` against `points`, straight from brute
/// force (the service must serve exactly this, sharded or not).
NeighborResult expected_knn(const std::vector<Vec3>& points,
                            const std::vector<Vec3>& queries, const SearchParams& params) {
  auto reference = engine::make_backend("brute_force");
  reference->set_points(points);
  return reference->search(queries, params, nullptr);
}

}  // namespace

// --- TokenBucket (deterministic clock) ---------------------------------------

TEST(TokenBucket, RateZeroNeverGates) {
  TokenBucket bucket(0.0, 0.0);
  EXPECT_TRUE(bucket.unlimited());
  const auto t0 = std::chrono::steady_clock::time_point{};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(t0));
}

TEST(TokenBucket, BurstThenSustainedRate) {
  using namespace std::chrono_literals;
  const auto t0 = std::chrono::steady_clock::time_point{} + 1h;
  TokenBucket bucket(/*tokens_per_second=*/2.0, /*burst=*/3.0);
  EXPECT_FALSE(bucket.unlimited());

  // The burst allowance drains first.
  EXPECT_TRUE(bucket.try_take(t0));
  EXPECT_TRUE(bucket.try_take(t0));
  EXPECT_TRUE(bucket.try_take(t0));
  EXPECT_FALSE(bucket.try_take(t0));  // empty: shed

  // Refill at the sustained rate: 2 tokens/s.
  EXPECT_TRUE(bucket.try_take(t0 + 500ms));   // +1 token
  EXPECT_FALSE(bucket.try_take(t0 + 500ms));  // spent again
  EXPECT_TRUE(bucket.try_take(t0 + 1500ms));  // +2, take 1
  EXPECT_TRUE(bucket.try_take(t0 + 1500ms));
  EXPECT_FALSE(bucket.try_take(t0 + 1500ms));

  // Refill caps at the burst: a long quiet period does not bank tokens.
  EXPECT_DOUBLE_EQ(bucket.available(t0 + 1h), 3.0);
}

// --- Registry lifecycle ------------------------------------------------------

TEST(CloudRegistry, RegisterListQueryDrop) {
  const std::vector<Vec3> city = uniform_cloud(kSeed);
  const std::vector<Vec3> park = uniform_cloud(kSeed + 1, 500);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  SearchService service;
  EXPECT_TRUE(service.list_clouds().empty());

  const CloudHandle ch = service.register_cloud("city", city);
  const CloudHandle ph = service.register_cloud("park", park);
  EXPECT_TRUE(ch.valid());
  EXPECT_EQ(ch.name(), "city");
  EXPECT_EQ(service.list_clouds(), (std::vector<std::string>{"city", "park"}));
  EXPECT_EQ(service.point_count(ch), city.size());
  EXPECT_EQ(service.point_count(ph), park.size());
  EXPECT_EQ(service.snapshot_version(ch), 0u);

  // Each tenant answers from its own cloud, exactly.
  const std::vector<Vec3> queries(city.begin(), city.begin() + 24);
  rtnn::testing::expect_knn_distances_match(
      city, queries, service.query(ch, queries, params).result,
      expected_knn(city, queries, params), "city");
  rtnn::testing::expect_knn_distances_match(
      park, queries, service.query(ph, queries, params).result,
      expected_knn(park, queries, params), "park");

  // Name-addressed overloads hit the same clouds as the handles.
  rtnn::testing::expect_knn_distances_match(
      park, queries, service.query("park", queries, params).result,
      expected_knn(park, queries, params), "park by name");
  EXPECT_EQ(service.cloud("city").name(), "city");

  service.drop_cloud("park");
  EXPECT_EQ(service.list_clouds(), (std::vector<std::string>{"city"}));
  // A dropped cloud's handle turns into a throwing handle.
  try {
    (void)service.query(ph, queries, params);
    FAIL() << "query on a dropped cloud must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kShutdown);
  }
  // The survivor is untouched.
  (void)service.query(ch, queries, params);
}

TEST(CloudRegistry, DuplicateAndUnknownNamesThrow) {
  const std::vector<Vec3> points = uniform_cloud(kSeed, 200);
  SearchService service;
  (void)service.register_cloud("a", points);
  EXPECT_THROW((void)service.register_cloud("a", points), Error);
  EXPECT_THROW((void)service.cloud("nope"), Error);
  EXPECT_THROW(service.drop_cloud("nope"), Error);
}

TEST(CloudRegistry, CompatConstructorIsARegistryOfSizeOne) {
  const std::vector<Vec3> cloud = uniform_cloud(kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 16);

  SearchService service(cloud);  // the PR-5/6 constructor
  EXPECT_EQ(service.list_clouds(), (std::vector<std::string>{"default"}));
  EXPECT_EQ(service.point_count(), cloud.size());
  EXPECT_EQ(service.snapshot_version(), 0u);

  // The cloud-less overloads and the named surface address the same cloud.
  const RequestOutcome compat = service.query(queries, params);
  rtnn::testing::expect_knn_distances_match(
      cloud, queries, compat.result, expected_knn(cloud, queries, params), "compat");
  rtnn::testing::expect_knn_distances_match(
      cloud, queries, service.query("default", queries, params).result, compat.result,
      "by name");

  std::vector<Vec3> moved = cloud;
  for (Vec3& p : moved) p.x += 0.05f;
  service.update_points(moved);
  EXPECT_EQ(service.snapshot_version(), 1u);
  rtnn::testing::expect_knn_distances_match(moved, queries,
                                            service.query(queries, params).result,
                                            expected_knn(moved, queries, params), "moved");
}

// --- Index lifecycle: build on demand, warmup, LRU eviction -------------------

TEST(CloudLifecycle, BuildOnDemandDefersTheIndex) {
  const std::vector<Vec3> cloud = uniform_cloud(kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  SearchService service;
  CloudConfig lazy;
  lazy.build_on_register = false;
  const CloudHandle handle = service.register_cloud("lazy", cloud, lazy);
  EXPECT_EQ(service.resident_clouds(), 0u);  // registration stored points only
  EXPECT_EQ(service.stats().builds, 0u);

  // The first request pays the build; results are exact regardless.
  const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 16);
  rtnn::testing::expect_knn_distances_match(
      cloud, queries, service.query(handle, queries, params).result,
      expected_knn(cloud, queries, params), "first query");
  EXPECT_EQ(service.resident_clouds(), 1u);
  EXPECT_EQ(service.stats().builds, 1u);
  EXPECT_EQ(service.stats(handle).builds, 1u);
}

TEST(CloudLifecycle, WarmupProbeRunsAtBuild) {
  const std::vector<Vec3> cloud = uniform_cloud(kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  SearchService service;
  CloudConfig warm;
  warm.warmup = params;
  const CloudHandle handle = service.register_cloud("warm", cloud, warm);
  EXPECT_EQ(service.resident_clouds(), 1u);
  // The warm probe's pipeline time is attributed to the cloud's report,
  // so the first real request doesn't pay first-search lazy work.
  const ServiceStats stats = service.stats(handle);
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_GT(stats.report.time.first_search + stats.report.time.search, 0.0);
}

TEST(CloudLifecycle, ResidencyCapEvictsLeastRecentlyUsed) {
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  ServiceConfig config;
  config.max_resident_clouds = 2;
  SearchService service(config);

  const std::vector<Vec3> a = uniform_cloud(kSeed, 300);
  const std::vector<Vec3> b = uniform_cloud(kSeed + 1, 300);
  const std::vector<Vec3> c = uniform_cloud(kSeed + 2, 300);
  const CloudHandle ha = service.register_cloud("a", a);
  const CloudHandle hb = service.register_cloud("b", b);
  EXPECT_EQ(service.resident_clouds(), 2u);

  // A third resident index pushes out the least-recently-used ("a").
  const CloudHandle hc = service.register_cloud("c", c);
  EXPECT_EQ(service.resident_clouds(), 2u);
  EXPECT_EQ(service.stats().evictions, 1u);
  EXPECT_EQ(service.stats(ha).evictions, 1u);

  // The evicted cloud still serves: traffic rebuilds it transparently
  // (and the cap evicts the next-coldest in turn).
  const std::vector<Vec3> queries(a.begin(), a.begin() + 12);
  rtnn::testing::expect_knn_distances_match(
      a, queries, service.query(ha, queries, params).result,
      expected_knn(a, queries, params), "rebuilt");
  EXPECT_EQ(service.resident_clouds(), 2u);
  EXPECT_GE(service.stats(ha).builds, 2u);  // registration + rebuild

  // Updates on a non-resident cloud bump the version without building.
  (void)service.query(hb, queries, params);
  (void)service.query(hc, queries, params);  // "a" is cold again
  std::vector<Vec3> moved = a;
  for (Vec3& p : moved) p.y += 0.1f;
  service.update_points(ha, moved);
  EXPECT_EQ(service.snapshot_version(ha), 1u);
  const RequestOutcome outcome = service.query(ha, queries, params);
  EXPECT_EQ(outcome.snapshot_version, 1u);
  rtnn::testing::expect_knn_distances_match(moved, queries, outcome.result,
                                            expected_knn(moved, queries, params),
                                            "updated while cold");
}

TEST(CloudLifecycle, EvictionWhileABatchIsInFlightServesExactly) {
  // Regression: the LRU pass must never yank an index out from under a
  // pinned batch. The dispatcher is wedged *after* pinning the snapshot
  // (service.dispatch.launch), the cloud is evicted from the main thread
  // mid-flight, and the batch must still serve bit-exact answers off its
  // pin while the registry shows the eviction.
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  ServiceConfig config;
  config.max_resident_clouds = 1;
  SearchService service(config);

  const std::vector<Vec3> hot = uniform_cloud(kSeed, 300);
  const std::vector<Vec3> cold = uniform_cloud(kSeed + 1, 300);
  const CloudHandle hhot = service.register_cloud("hot", hot);

  fail::FailConfig wedge;
  wedge.action = fail::Action::kDelay;
  wedge.delay = std::chrono::milliseconds(120);
  wedge.max_fires = 1;
  fail::ScopedFailpoint fp("service.dispatch.launch", wedge);

  const std::vector<Vec3> queries(hot.begin(), hot.begin() + 12);
  SearchService::Ticket inflight = service.submit(hhot, queries, params);
  // Let the dispatcher pop, pin "hot"'s snapshot, and hit the wedge.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  // Registering "cold" under a cap of one evicts "hot" while its batch
  // is in flight: master and published snapshot are dropped, but the
  // batch's own pin keeps the index alive.
  const CloudHandle hcold = service.register_cloud("cold", cold);
  EXPECT_EQ(service.resident_clouds(), 1u);
  EXPECT_GE(service.stats(hhot).evictions, 1u);

  rtnn::testing::expect_knn_distances_match(
      hot, queries, inflight.get().result, expected_knn(hot, queries, params),
      "in-flight batch across eviction");

  // Both tenants keep serving afterwards ("hot" rebuilds on demand).
  EXPECT_NO_THROW((void)service.query(hcold, queries, params));
  rtnn::testing::expect_knn_distances_match(
      hot, queries, service.query(hhot, queries, params).result,
      expected_knn(hot, queries, params), "rebuilt after eviction");
}

// --- Sharded clouds through the service --------------------------------------

TEST(ShardedCloud, ServesExactlyAndComposesWithTheOptimizer) {
  const std::vector<Vec3> cloud = uniform_cloud(kSeed);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  SearchService service;
  CloudConfig sharded;
  sharded.shard_threshold = 100;  // 800 points -> 8 shards (cap 16)
  const CloudHandle handle = service.register_cloud("sharded", cloud, sharded);

  const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 48);
  rtnn::testing::expect_knn_distances_match(
      cloud, queries, service.query(handle, queries, params).result,
      expected_knn(cloud, queries, params), "sharded knn");

  // The writer path composes: update then query, still exact.
  std::vector<Vec3> moved = cloud;
  for (Vec3& p : moved) p.z += 0.07f;
  service.update_points(handle, moved);
  rtnn::testing::expect_knn_distances_match(
      moved, queries, service.query(handle, queries, params).result,
      expected_knn(moved, queries, params), "sharded after update");
}

// --- Admission control -------------------------------------------------------

TEST(Admission, TokenBucketShedsBeyondTheBurst) {
  const std::vector<Vec3> cloud = uniform_cloud(kSeed, 300);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  SearchService service;
  CloudConfig gated;
  gated.admission.tokens_per_second = 1e-9;  // effectively: the burst only
  gated.admission.burst = 2.0;
  const CloudHandle handle = service.register_cloud("gated", cloud, gated);

  const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 8);
  SearchService::Ticket first = service.submit(handle, queries, params);
  SearchService::Ticket second = service.submit(handle, queries, params);
  SearchService::Ticket third = service.submit(handle, queries, params);

  // The two burst tokens admit and serve normally.
  (void)first.get();
  (void)second.get();

  // The third is shed at submit(): already rejected, never queued.
  ASSERT_TRUE(third.valid());
  EXPECT_TRUE(third.ready());
  try {
    (void)third.get();
    FAIL() << "shed ticket must throw";
  } catch (const ServiceError& e) {
    EXPECT_EQ(e.reason(), RejectReason::kAdmission);
  }
  const ServiceStats stats = service.stats(handle);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.requests, 2u);  // shed requests are not "served"
  EXPECT_EQ(service.stats().shed, 1u);
}

TEST(Admission, QueueDepthCapShedsTheBacklog) {
  const std::vector<Vec3> cloud = uniform_cloud(kSeed, 300);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  ServiceConfig config;
  config.max_delay = std::chrono::microseconds(50'000);  // hold a big tick
  SearchService service(config);
  CloudConfig capped;
  capped.admission.max_queue_depth = 2;
  const CloudHandle handle = service.register_cloud("capped", cloud, capped);

  const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 8);
  std::vector<SearchService::Ticket> tickets;
  std::size_t shed = 0;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(service.submit(handle, queries, params));
  }
  for (auto& ticket : tickets) {
    try {
      (void)ticket.get();
    } catch (const ServiceError& e) {
      EXPECT_EQ(e.reason(), RejectReason::kAdmission);
      ++shed;
    }
  }
  // With the dispatcher holding a 50ms tick, at most 2 of the 6 fit the
  // pending cap at any instant; the rest were shed at the door.
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(service.stats(handle).shed, shed);
  EXPECT_EQ(service.stats(handle).requests + shed, 6u);
}

// --- Ticket contract ---------------------------------------------------------

TEST(Ticket, TryGetIsNonBlockingAndValidTracksState) {
  const std::vector<Vec3> cloud = uniform_cloud(kSeed, 300);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  SearchService::Ticket unset;
  EXPECT_FALSE(unset.valid());

  ServiceConfig config;
  config.max_delay = std::chrono::microseconds(200'000);
  SearchService service(config);
  const CloudHandle handle = service.register_cloud("t", cloud);

  const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 8);
  SearchService::Ticket ticket = service.submit(handle, queries, params);
  EXPECT_TRUE(ticket.valid());
  // Inside the 200ms batching tick: pending, so try_get is empty.
  EXPECT_EQ(ticket.try_get(), std::nullopt);

  ticket.wait();
  const std::optional<RequestOutcome> outcome = ticket.try_get();
  ASSERT_TRUE(outcome.has_value());
  rtnn::testing::expect_knn_distances_match(cloud, queries, outcome->result,
                                            expected_knn(cloud, queries, params),
                                            "try_get outcome");
}

TEST(Ticket, ShutdownAndDropRejectWithTypedErrors) {
  const std::vector<Vec3> cloud = uniform_cloud(kSeed, 300);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));
  const std::vector<Vec3> queries(cloud.begin(), cloud.begin() + 8);

  // Dropping a cloud rejects its pending requests with kShutdown.
  {
    ServiceConfig config;
    config.max_delay = std::chrono::microseconds(100'000);
    SearchService service(config);
    const CloudHandle handle = service.register_cloud("doomed", cloud);
    SearchService::Ticket pending = service.submit(handle, queries, params);
    service.drop_cloud("doomed");
    try {
      (void)pending.get();
      FAIL() << "a dropped cloud's pending request must be rejected";
    } catch (const ServiceError& e) {
      EXPECT_EQ(e.reason(), RejectReason::kShutdown);
    }
  }

  // submit() after shutdown throws immediately.
  {
    SearchService service;
    const CloudHandle handle = service.register_cloud("s", cloud);
    service.shutdown();
    try {
      (void)service.submit(handle, queries, params);
      FAIL() << "submit after shutdown must throw";
    } catch (const ServiceError& e) {
      EXPECT_EQ(e.reason(), RejectReason::kShutdown);
    }
  }
}

// --- Stats -------------------------------------------------------------------

TEST(Stats, ServiceWideTotalsAreTheSumOfTenants) {
  const std::vector<Vec3> a = uniform_cloud(kSeed, 400);
  const std::vector<Vec3> b = uniform_cloud(kSeed + 1, 400);
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  SearchService service;
  const CloudHandle ha = service.register_cloud("a", a);
  const CloudHandle hb = service.register_cloud("b", b);

  const std::vector<Vec3> qa(a.begin(), a.begin() + 16);
  const std::vector<Vec3> qb(b.begin(), b.begin() + 32);
  for (int i = 0; i < 3; ++i) (void)service.query(ha, qa, params);
  for (int i = 0; i < 2; ++i) (void)service.query(hb, qb, params);
  std::vector<Vec3> moved = b;
  for (Vec3& p : moved) p.x += 0.02f;
  service.update_points(hb, moved);

  const ServiceStats sa = service.stats(ha);
  const ServiceStats sb = service.stats(hb);
  const ServiceStats total = service.stats();
  EXPECT_EQ(sa.requests, 3u);
  EXPECT_EQ(sb.requests, 2u);
  EXPECT_EQ(sa.queries, 48u);
  EXPECT_EQ(sb.queries, 64u);
  EXPECT_EQ(sb.updates, 1u);
  EXPECT_EQ(total.requests, sa.requests + sb.requests);
  EXPECT_EQ(total.queries, sa.queries + sb.queries);
  EXPECT_EQ(total.updates, sa.updates + sb.updates);
  EXPECT_EQ(total.builds, sa.builds + sb.builds);
  // The same per-batch values accumulate into both levels; only the
  // addition order differs, so allow an ulp of float reassociation.
  EXPECT_NEAR(total.report.time.search, sa.report.time.search + sb.report.time.search,
              1e-12);
}

// --- Multi-tenant concurrency ------------------------------------------------

TEST(MultiTenant, ConcurrentClientsAcrossCloudsStayIsolated) {
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;
  const SearchParams params = knn_params(typical_radius(CloudKind::kUniform));

  std::vector<std::vector<Vec3>> clouds;
  for (int t = 0; t < 3; ++t) clouds.push_back(uniform_cloud(kSeed + t, 600));

  SearchService service;
  std::vector<CloudHandle> handles;
  for (int t = 0; t < 3; ++t) {
    CloudConfig config;
    if (t == 2) config.shard_threshold = 128;  // one tenant sharded
    handles.push_back(
        service.register_cloud("tenant" + std::to_string(t), clouds[t], config));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      Pcg32 rng(kSeed + 100 + c);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int t = static_cast<int>(rng.next_bounded(3));
        const std::vector<Vec3>& cloud = clouds[static_cast<std::size_t>(t)];
        const std::size_t first = rng.next_bounded(500);
        const std::vector<Vec3> queries(cloud.begin() + first, cloud.begin() + first + 16);
        const RequestOutcome outcome =
            service.query(handles[static_cast<std::size_t>(t)], queries, params);
        // Answers must come from the addressed tenant's cloud: a query
        // sitting on one of its own points must see that exact hit
        // (distance 0) among its neighbors.
        bool exact_hit = false;
        for (const std::uint32_t id : outcome.result.neighbors(0)) {
          if (distance2(cloud[id], queries[0]) == 0.0f) exact_hit = true;
        }
        if (!exact_hit) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.stats().requests,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
}
