#include "core/aabb.hpp"

#include <gtest/gtest.h>

namespace rtnn {
namespace {

TEST(Aabb, DefaultIsEmpty) {
  const Aabb b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.surface_area(), 0.0f);
  EXPECT_EQ(b.volume(), 0.0f);
}

TEST(Aabb, CubeFactory) {
  // This is exactly how RTNN wraps a search point: center = point,
  // width = 2 * radius (paper Listing 1).
  const Aabb b = Aabb::cube({1.0f, 2.0f, 3.0f}, 2.0f);
  EXPECT_EQ(b.lo, Vec3(0.0f, 1.0f, 2.0f));
  EXPECT_EQ(b.hi, Vec3(2.0f, 3.0f, 4.0f));
  EXPECT_EQ(b.center(), Vec3(1.0f, 2.0f, 3.0f));
  EXPECT_EQ(b.extent(), Vec3(2.0f, 2.0f, 2.0f));
}

TEST(Aabb, GrowPoint) {
  Aabb b;
  b.grow({1.0f, 1.0f, 1.0f});
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.lo, b.hi);
  b.grow({-1.0f, 2.0f, 0.0f});
  EXPECT_EQ(b.lo, Vec3(-1.0f, 1.0f, 0.0f));
  EXPECT_EQ(b.hi, Vec3(1.0f, 2.0f, 1.0f));
}

TEST(Aabb, GrowEmptyIsIdentity) {
  Aabb b = Aabb::cube({0.0f, 0.0f, 0.0f}, 1.0f);
  const Aabb before = b;
  b.grow(Aabb{});
  EXPECT_EQ(b, before);
}

TEST(Aabb, ContainsPointInclusiveBounds) {
  const Aabb b{{0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f}};
  EXPECT_TRUE(b.contains(Vec3{0.5f, 0.5f, 0.5f}));
  EXPECT_TRUE(b.contains(Vec3{0.0f, 0.0f, 0.0f}));  // faces included
  EXPECT_TRUE(b.contains(Vec3{1.0f, 1.0f, 1.0f}));
  EXPECT_FALSE(b.contains(Vec3{1.0001f, 0.5f, 0.5f}));
}

TEST(Aabb, ContainsAabbAndOverlaps) {
  const Aabb outer{{0.0f, 0.0f, 0.0f}, {4.0f, 4.0f, 4.0f}};
  const Aabb inner{{1.0f, 1.0f, 1.0f}, {2.0f, 2.0f, 2.0f}};
  const Aabb crossing{{3.0f, 3.0f, 3.0f}, {5.0f, 5.0f, 5.0f}};
  const Aabb outside{{5.0f, 5.0f, 5.0f}, {6.0f, 6.0f, 6.0f}};
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.overlaps(crossing));
  EXPECT_FALSE(outer.overlaps(outside));
  EXPECT_TRUE(outer.contains(Aabb{}));  // empty is contained everywhere
}

TEST(Aabb, SurfaceAreaVolume) {
  const Aabb b{{0.0f, 0.0f, 0.0f}, {2.0f, 3.0f, 4.0f}};
  EXPECT_FLOAT_EQ(b.surface_area(), 2.0f * (6.0f + 12.0f + 8.0f));
  EXPECT_FLOAT_EQ(b.volume(), 24.0f);
}

TEST(Aabb, Expanded) {
  const Aabb b = Aabb::cube({0.0f, 0.0f, 0.0f}, 2.0f).expanded(0.5f);
  EXPECT_EQ(b.lo, Vec3(-1.5f, -1.5f, -1.5f));
  EXPECT_EQ(b.hi, Vec3(1.5f, 1.5f, 1.5f));
}

TEST(Aabb, Normalized) {
  const Aabb b{{0.0f, 0.0f, 0.0f}, {2.0f, 4.0f, 8.0f}};
  const Vec3 n = b.normalized({1.0f, 1.0f, 2.0f});
  EXPECT_FLOAT_EQ(n.x, 0.5f);
  EXPECT_FLOAT_EQ(n.y, 0.25f);
  EXPECT_FLOAT_EQ(n.z, 0.25f);
}

TEST(Aabb, Unite) {
  const Aabb a = Aabb::cube({0.0f, 0.0f, 0.0f}, 1.0f);
  const Aabb b = Aabb::cube({2.0f, 0.0f, 0.0f}, 1.0f);
  const Aabb u = unite(a, b);
  EXPECT_TRUE(u.contains(a));
  EXPECT_TRUE(u.contains(b));
  EXPECT_FLOAT_EQ(u.extent().x, 3.0f);
}

// --- Ray-AABB intersection: the two conditions of paper Figure 2 ---

TEST(RayAabb, Condition1FaceHitWithinRange) {
  // Ray pointed at the box from outside, t of the hit within [tmin, tmax].
  const Aabb box = Aabb::cube({5.0f, 0.0f, 0.0f}, 2.0f);
  const Ray ray{{0.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f}, 0.0f, 10.0f};
  EXPECT_TRUE(ray_intersects_aabb(ray, box));
}

TEST(RayAabb, Condition1MissWhenSegmentTooShort) {
  // Same geometry, but tmax stops short of the box: no intersection.
  const Aabb box = Aabb::cube({5.0f, 0.0f, 0.0f}, 2.0f);
  const Ray ray{{0.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f}, 0.0f, 3.0f};
  EXPECT_FALSE(ray_intersects_aabb(ray, box));
}

TEST(RayAabb, Condition2OriginInsideAlwaysHits) {
  // Paper: "when the origin of the ray is within the AABB, even if the
  // intersected t value is beyond [tmin, tmax]". This is the condition
  // RTNN's short rays rely on.
  const Aabb box = Aabb::cube({0.0f, 0.0f, 0.0f}, 2.0f);
  const Ray short_ray = Ray::short_ray({0.3f, -0.2f, 0.9f});
  EXPECT_TRUE(ray_intersects_aabb(short_ray, box));
}

TEST(RayAabb, ShortRayOutsideBoxMisses) {
  // The short-ray formulation must *not* intersect AABBs that don't
  // contain the query — this is what eliminates the false positives of
  // long rays (paper Figure 4c, query Q').
  const Aabb box = Aabb::cube({5.0f, 0.0f, 0.0f}, 2.0f);
  const Ray short_ray = Ray::short_ray({0.0f, 0.0f, 0.0f});
  EXPECT_FALSE(ray_intersects_aabb(short_ray, box));
}

TEST(RayAabb, LongRayProducesFalsePositiveShortRayDoesNot) {
  // Reproduces Figure 4c: Q' with a long ray passes the AABB test of P
  // even though Q' is not in P's sphere; the short ray fails the AABB
  // test, skipping the redundant Step 2.
  const Vec3 p{5.0f, 0.0f, 0.0f};
  const float radius = 1.0f;
  const Aabb p_aabb = Aabb::cube(p, 2.0f * radius);
  const Vec3 q_prime{2.0f, 0.4f, 0.0f};  // outside the sphere of radius 1
  ASSERT_GT(distance2(q_prime, p), radius * radius);

  const Ray long_ray{q_prime, {1.0f, 0.0f, 0.0f}, 0.0f, 100.0f};
  const Ray short_ray = Ray::short_ray(q_prime);
  EXPECT_TRUE(ray_intersects_aabb(long_ray, p_aabb));    // false positive
  EXPECT_FALSE(ray_intersects_aabb(short_ray, p_aabb));  // eliminated
}

TEST(RayAabb, DegenerateDirectionComponentsHandled) {
  // Direction with zero components (the RTNN direction is [1,0,0]).
  const Aabb box{{-1.0f, -1.0f, -1.0f}, {1.0f, 1.0f, 1.0f}};
  const Ray ray{{-5.0f, 0.0f, 0.0f}, {1.0f, 0.0f, 0.0f}, 0.0f, 100.0f};
  EXPECT_TRUE(ray_intersects_aabb(ray, box));
  const Ray miss{{-5.0f, 2.0f, 0.0f}, {1.0f, 0.0f, 0.0f}, 0.0f, 100.0f};
  EXPECT_FALSE(ray_intersects_aabb(miss, box));
}

}  // namespace
}  // namespace rtnn
