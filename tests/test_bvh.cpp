#include "rtcore/bvh.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "core/timing.hpp"

namespace rtnn::rt {
namespace {

std::vector<Aabb> point_aabbs(std::size_t n, float width, std::uint64_t seed,
                              const Aabb& box = {{0, 0, 0}, {1, 1, 1}}) {
  Pcg32 rng(seed);
  std::vector<Aabb> aabbs;
  aabbs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    aabbs.push_back(Aabb::cube(rng.uniform_in_aabb(box), width));
  }
  return aabbs;
}

TEST(Bvh, EmptyBuild) {
  Bvh bvh;
  bvh.build({});
  EXPECT_TRUE(bvh.empty());
  bvh.validate();
}

TEST(Bvh, SinglePrimitive) {
  Bvh bvh;
  const Aabb box = Aabb::cube({1, 2, 3}, 0.5f);
  bvh.build(std::span<const Aabb>(&box, 1));
  EXPECT_EQ(bvh.prim_count(), 1u);
  EXPECT_EQ(bvh.nodes().size(), 1u);
  EXPECT_TRUE(bvh.nodes()[0].is_leaf());
  bvh.validate();
}

TEST(Bvh, StructuralInvariantsRandom) {
  for (const std::size_t n : {2u, 3u, 17u, 100u, 5000u}) {
    Bvh bvh;
    const auto aabbs = point_aabbs(n, 0.01f, n);
    bvh.build(aabbs);
    EXPECT_EQ(bvh.prim_count(), n);
    bvh.validate();
    const auto stats = bvh.stats();
    EXPECT_EQ(stats.node_count, 2 * n - 1);  // binary tree, leaf_size 1
    EXPECT_EQ(stats.leaf_count, n);
  }
}

TEST(Bvh, LeafSizeRespected) {
  for (const std::uint32_t leaf_size : {1u, 2u, 4u, 8u}) {
    Bvh bvh;
    const auto aabbs = point_aabbs(1000, 0.01f, 7);
    bvh.build(aabbs, BvhBuildOptions{leaf_size});
    bvh.validate();
    for (const BvhNode& node : bvh.nodes()) {
      if (node.is_leaf()) {
        EXPECT_LE(node.count, leaf_size);
      }
    }
  }
}

TEST(Bvh, DuplicatePointsFallBackToMedianSplit) {
  // All-identical AABBs give identical Morton codes — the degenerate case
  // the median-split fallback handles.
  std::vector<Aabb> aabbs(257, Aabb::cube({0.5f, 0.5f, 0.5f}, 0.1f));
  Bvh bvh;
  bvh.build(aabbs);
  bvh.validate();
  EXPECT_EQ(bvh.prim_count(), 257u);
  // Median splits keep depth logarithmic.
  EXPECT_LE(bvh.stats().max_depth, 16u);
}

TEST(Bvh, SceneBoundsCoverAllPrimitives) {
  const auto aabbs = point_aabbs(500, 0.05f, 11);
  Bvh bvh;
  bvh.build(aabbs);
  for (const Aabb& box : aabbs) {
    EXPECT_TRUE(bvh.scene_bounds().contains(box));
  }
  EXPECT_EQ(bvh.nodes()[0].bounds, bvh.scene_bounds());
}

TEST(Bvh, MortonOrderingKeepsTreeShallow) {
  const auto aabbs = point_aabbs(100000, 0.001f, 13);
  Bvh bvh;
  bvh.build(aabbs);
  // A spatially sorted binary tree over 100k uniform prims should be around
  // log2(1e5) ≈ 17 deep; allow generous slack but catch linear-depth bugs.
  EXPECT_LE(bvh.stats().max_depth, 64u);
  bvh.validate();
}

TEST(Bvh, RejectsEmptyPrimitive) {
  std::vector<Aabb> aabbs(3, Aabb::cube({0, 0, 0}, 1.0f));
  aabbs[1] = Aabb{};  // empty
  Bvh bvh;
  EXPECT_THROW(bvh.build(aabbs), Error);
}

TEST(Bvh, RejectsZeroLeafSize) {
  Bvh bvh;
  const auto aabbs = point_aabbs(4, 0.1f, 1);
  EXPECT_THROW(bvh.build(aabbs, BvhBuildOptions{0}), Error);
}

TEST(Bvh, SahCostReasonable) {
  // Tight uniform points: SAH cost should be far below the prim count
  // (otherwise the hierarchy is not pruning anything).
  const auto aabbs = point_aabbs(10000, 0.001f, 17);
  Bvh bvh;
  bvh.build(aabbs);
  const auto stats = bvh.stats();
  EXPECT_GT(stats.sah_cost, 1.0);
  EXPECT_LT(stats.sah_cost, 10000.0 / 4.0);
}

TEST(Bvh, RebuildReplacesPreviousTree) {
  Bvh bvh;
  bvh.build(point_aabbs(100, 0.01f, 19));
  bvh.build(point_aabbs(10, 0.01f, 23));
  EXPECT_EQ(bvh.prim_count(), 10u);
  bvh.validate();
}

TEST(Bvh, BuildTimeLinearInPrimCountShape) {
  // Sanity version of Figure 15: 4x the prims should take clearly less
  // than ~10x the time (i.e., no quadratic blow-up). Loose bound to stay
  // robust on shared CI machines.
  const auto small = point_aabbs(50000, 0.002f, 29);
  const auto large = point_aabbs(200000, 0.002f, 31);
  Bvh bvh;
  Timer t1;
  bvh.build(small);
  const double ts = t1.elapsed();
  Timer t2;
  bvh.build(large);
  const double tl = t2.elapsed();
  EXPECT_LT(tl, ts * 10.0 + 0.05);
}

}  // namespace
}  // namespace rtnn::rt
