#include "core/morton.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.hpp"

namespace rtnn {
namespace {

TEST(Morton, ExpandCompact10Roundtrip) {
  for (std::uint32_t v : {0u, 1u, 5u, 511u, 1023u}) {
    EXPECT_EQ(compact_bits_10(expand_bits_10(v)), v);
  }
}

TEST(Morton, ExpandCompact21Roundtrip) {
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{77777},
                          (std::uint64_t{1} << 21) - 1}) {
    EXPECT_EQ(compact_bits_21(expand_bits_21(v)), v);
  }
}

TEST(Morton, Encode30Decode30Roundtrip) {
  Pcg32 rng(123);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t x = rng.next_bounded(1024);
    const std::uint32_t y = rng.next_bounded(1024);
    const std::uint32_t z = rng.next_bounded(1024);
    std::uint32_t dx, dy, dz;
    morton3d_30_decode(morton3d_30(x, y, z), dx, dy, dz);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
    EXPECT_EQ(dz, z);
  }
}

TEST(Morton, Encode63Decode63Roundtrip) {
  Pcg32 rng(321);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t x = rng.next_bounded(1u << 21);
    const std::uint32_t y = rng.next_bounded(1u << 21);
    const std::uint32_t z = rng.next_bounded(1u << 21);
    std::uint32_t dx, dy, dz;
    morton3d_63_decode(morton3d_63(x, y, z), dx, dy, dz);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
    EXPECT_EQ(dz, z);
  }
}

TEST(Morton, BitInterleavingOrder) {
  // x occupies the highest bit of each 3-bit group (shift 2).
  EXPECT_EQ(morton3d_30(1, 0, 0), 0b100u);
  EXPECT_EQ(morton3d_30(0, 1, 0), 0b010u);
  EXPECT_EQ(morton3d_30(0, 0, 1), 0b001u);
  EXPECT_EQ(morton3d_30(1, 1, 1), 0b111u);
  EXPECT_EQ(morton3d_30(2, 0, 0), 0b100000u);
}

TEST(Morton, Morton2dRoundtripBits) {
  EXPECT_EQ(morton2d_32(1, 0), 0b10u);
  EXPECT_EQ(morton2d_32(0, 1), 0b01u);
  EXPECT_EQ(morton2d_32(0xffffu, 0u), 0xAAAAAAAAu);
}

TEST(Morton, NormalizedPointEncoding) {
  const Aabb bounds{{0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f}};
  // Origin maps to code 0, far corner to the max code.
  EXPECT_EQ(morton3d_30(Vec3{0.0f, 0.0f, 0.0f}, bounds), 0u);
  EXPECT_EQ(morton3d_30(Vec3{1.0f, 1.0f, 1.0f}, bounds), morton3d_30(1023u, 1023u, 1023u));
  // Out-of-bounds points clamp instead of wrapping.
  EXPECT_EQ(morton3d_30(Vec3{-5.0f, 0.5f, 0.5f}, bounds),
            morton3d_30(0u, 512u, 512u));
}

TEST(Morton, ZOrderPreservesLocalityOnAverage) {
  // Spatial locality property: for random point pairs, close-in-space
  // pairs should on average be closer in Morton order than far pairs.
  const Aabb bounds{{0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f}};
  Pcg32 rng(7);
  double near_code_dist = 0.0;
  double far_code_dist = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const Vec3 p = rng.uniform_in_aabb(bounds);
    Vec3 near = p + Vec3{0.01f, 0.01f, 0.01f};
    const Vec3 far = rng.uniform_in_aabb(bounds);
    const auto cp = static_cast<double>(morton3d_63(p, bounds));
    near_code_dist += std::abs(static_cast<double>(morton3d_63(near, bounds)) - cp);
    far_code_dist += std::abs(static_cast<double>(morton3d_63(far, bounds)) - cp);
  }
  EXPECT_LT(near_code_dist, far_code_dist * 0.5);
}

TEST(Morton, SortingByMortonGroupsOctants) {
  // All points of one octant sort before any point of the "next" octant
  // along the z-curve when octant bits dominate.
  const Aabb bounds{{0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f}};
  std::vector<std::uint64_t> low_codes, high_codes;
  Pcg32 rng(9);
  for (int i = 0; i < 100; ++i) {
    const Vec3 lo = rng.uniform_in_aabb({{0.0f, 0.0f, 0.0f}, {0.45f, 0.45f, 0.45f}});
    const Vec3 hi = rng.uniform_in_aabb({{0.55f, 0.55f, 0.55f}, {1.0f, 1.0f, 1.0f}});
    low_codes.push_back(morton3d_63(lo, bounds));
    high_codes.push_back(morton3d_63(hi, bounds));
  }
  const std::uint64_t max_low = *std::max_element(low_codes.begin(), low_codes.end());
  const std::uint64_t min_high = *std::min_element(high_codes.begin(), high_codes.end());
  EXPECT_LT(max_low, min_high);
}

}  // namespace
}  // namespace rtnn
