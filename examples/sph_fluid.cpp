// SPH fluid density example — the cuNSearch motivating workload.
//
// Smoothed-particle hydrodynamics codes (the paper cites SPlisHSPlasH,
// which uses cuNSearch) call a fixed-radius neighbor search every timestep
// to evaluate kernel sums. This example runs a miniature dam-break:
// a block of fluid particles under gravity with a weakly-compressible
// equation of state, stepping a DynamicSearchSession for the per-timestep
// neighbor lists. Particle motion per step is tiny relative to the kernel
// support, so the session's index lifecycle refits the acceleration
// structure in place frame over frame instead of rebuilding it — the
// report printed at the end shows the build/refit split.
//
//   ./sph_fluid [num_particles] [steps]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "rtnn/rtnn.hpp"

namespace {

constexpr float kSupport = 0.08f;        // kernel support radius h
constexpr float kRestDensity = 1000.0f;
constexpr float kStiffness = 2.0f;
constexpr float kDt = 5.0e-4f;
constexpr float kDamping = 0.99f;
constexpr std::uint32_t kMaxNeighbors = 64;

// Poly6 kernel (Müller et al. 2003), 3D normalization.
float poly6(float r2, float h) {
  const float h2 = h * h;
  if (r2 >= h2) return 0.0f;
  const float diff = h2 - r2;
  const float h9 = h2 * h2 * h2 * h2 * h;
  return 315.0f / (64.0f * 3.14159265f * h9) * diff * diff * diff;
}

// Spiky kernel gradient magnitude factor.
float spiky_grad(float r, float h) {
  if (r >= h || r <= 1e-12f) return 0.0f;
  const float diff = h - r;
  const float h6 = h * h * h * h * h * h;
  return -45.0f / (3.14159265f * h6) * diff * diff;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t target = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 10;

  // Dam-break block: particles on a cubic lattice in one corner of a tank.
  const int per_axis = static_cast<int>(std::cbrt(static_cast<double>(target)));
  const float spacing = kSupport * 0.5f;
  std::vector<rtnn::Vec3> pos;
  for (int z = 0; z < per_axis; ++z) {
    for (int y = 0; y < per_axis; ++y) {
      for (int x = 0; x < per_axis; ++x) {
        pos.push_back({static_cast<float>(x) * spacing, static_cast<float>(y) * spacing,
                       static_cast<float>(z) * spacing + 0.2f});
      }
    }
  }
  std::vector<rtnn::Vec3> vel(pos.size(), rtnn::Vec3{});
  std::cout << "SPH dam break: " << pos.size() << " particles, " << steps << " steps\n";

  // Calibrate the particle mass so the initial lattice sits at rest
  // density (a standard SPH setup step), using a first neighbor search.
  float particle_mass = 0.02f;

  rtnn::SearchParams params;
  params.mode = rtnn::SearchMode::kRange;
  params.radius = kSupport;
  params.k = kMaxNeighbors;
  // One persistent index for the whole run: the support radius is fixed
  // and particles move a fraction of it per step, the refit sweet spot.
  params.opts = rtnn::OptimizationFlags::none();

  rtnn::DynamicSearchSession session(params);
  double search_seconds = 0.0;
  rtnn::TimeBreakdown time_totals;
  std::uint32_t refits = 0;
  std::uint32_t rebuilds = 0;
  for (int step = 0; step < steps; ++step) {
    // Neighbor lists for this configuration (the per-timestep search that
    // dominates SPH runtime): the session uploads the moved particles and
    // refits or rebuilds the index per the cost-model policy.
    rtnn::NeighborSearch::Report report;
    const rtnn::NeighborResult neighbors = session.step(pos, &report);
    search_seconds += report.time.total();
    time_totals += report.time;
    refits += report.accel_refits;
    rebuilds += report.accel_rebuilds;

    // Density + pressure from neighbor sums.
    auto compute_density = [&](std::vector<float>& density) {
      for (std::size_t i = 0; i < pos.size(); ++i) {
        float rho = poly6(0.0f, kSupport) * particle_mass;  // self term
        for (const std::uint32_t j : neighbors.neighbors(i)) {
          if (j == i) continue;
          rho += particle_mass * poly6(rtnn::distance2(pos[i], pos[j]), kSupport);
        }
        density[i] = rho;
      }
    };
    std::vector<float> density(pos.size(), 0.0f);
    compute_density(density);
    if (step == 0) {
      double mean = 0.0;
      for (const float d : density) mean += d;
      mean /= static_cast<double>(density.size());
      particle_mass *= kRestDensity / static_cast<float>(mean);
      compute_density(density);
    }

    // Pressure forces + gravity, symplectic Euler, floor clamp. Negative
    // pressures are clamped (no cohesion) for stability.
    for (std::size_t i = 0; i < pos.size(); ++i) {
      const float pi = std::max(0.0f, kStiffness * (density[i] - kRestDensity));
      rtnn::Vec3 force{0.0f, 0.0f, -9.81f * particle_mass};
      for (const std::uint32_t j : neighbors.neighbors(i)) {
        if (j == i) continue;
        const rtnn::Vec3 d = pos[i] - pos[j];
        const float r = rtnn::length(d);
        const float pj = std::max(0.0f, kStiffness * (density[j] - kRestDensity));
        const float w = spiky_grad(r, kSupport);
        if (w != 0.0f && density[j] > 1e-6f) {
          force += d * (-particle_mass * (pi + pj) / (2.0f * density[j]) * w / r);
        }
      }
      vel[i] = (vel[i] + force * (kDt / particle_mass)) * kDamping;
      pos[i] += vel[i] * kDt;
      if (pos[i].z < 0.0f) {  // tank floor
        pos[i].z = 0.0f;
        vel[i].z *= -0.3f;
      }
    }

    if (step == 0 || step == steps - 1) {
      double mean_density = 0.0;
      for (const float d : density) mean_density += d;
      mean_density /= static_cast<double>(density.size());
      std::cout << "  step " << step << ": mean density " << mean_density
                << " kg/m^3, neighbors/particle "
                << static_cast<double>(neighbors.total_neighbors()) /
                       static_cast<double>(pos.size())
                << '\n';
    }
  }
  std::cout << "  neighbor-search time: " << search_seconds << " s total\n";
  std::cout << "  index lifecycle: 1 build + " << refits << " refits + " << rebuilds
            << " policy rebuilds (bvh " << time_totals.bvh << " s, refit "
            << time_totals.refit << " s)\n";
  return 0;
}
