// Quickstart: the smallest complete RTNN program.
//
// Generates a synthetic point cloud, runs a K-nearest-neighbor search and
// a fixed-radius (range) search through the engine layer's SearchBackend
// interface, and prints a few results plus the phase breakdown the paper
// reports in Figure 12.
//
//   ./quickstart [num_points]
#include <cstdlib>
#include <iostream>

#include "datasets/uniform.hpp"
#include "engine/engine.hpp"
#include "rtnn/rtnn.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;

  // 1. Make some data: points uniform in a unit cube; queries are the
  //    first 1000 points themselves (self-neighborhoods).
  const rtnn::data::PointCloud points =
      rtnn::data::uniform_box(n, {{0, 0, 0}, {1, 1, 1}}, /*seed=*/1);
  const std::span<const rtnn::Vec3> queries(points.data(), std::min<std::size_t>(1000, n));

  // 2. Configure: both search types use the paper's bounded interface —
  //    a radius r and a maximum neighbor count K.
  rtnn::SearchParams params;
  params.radius = 0.1f;
  params.k = 8;

  // 3. KNN search through the full RTNN backend. Any registered backend
  //    ("brute_force", "grid", "octree", "fastrnn", "rtnn", "auto")
  //    serves the same interface.
  const auto backend = rtnn::engine::make_backend("rtnn");
  backend->set_points(points);
  params.mode = rtnn::SearchMode::kKnn;
  rtnn::engine::SearchBackend::Report report;
  const rtnn::NeighborResult knn = backend->search(queries, params, &report);

  std::cout << "KNN (r=" << params.radius << ", K=" << params.k << ") over " << n
            << " points, " << queries.size() << " queries via '" << backend->name()
            << "'\n";
  std::cout << "  query 0 neighbors:";
  for (const std::uint32_t p : knn.neighbors(0)) std::cout << ' ' << p;
  std::cout << "\n  total neighbors: " << knn.total_neighbors() << '\n';
  std::cout << "  phases [s]: data=" << report.time.data << " opt=" << report.time.opt
            << " bvh=" << report.time.bvh << " fs=" << report.time.first_search
            << " search=" << report.time.search << '\n';
  std::cout << "  partitions=" << report.num_partitions
            << " bundles=" << report.num_bundles
            << " IS calls=" << report.stats.is_calls << '\n';

  // 4. Range search with the same interface.
  params.mode = rtnn::SearchMode::kRange;
  const rtnn::NeighborResult range = backend->search(queries, params);
  std::cout << "Range: total neighbors " << range.total_neighbors() << '\n';

  // 5. The naive ray-tracing mapping (the FastRNN baseline) is just
  //    another backend behind the same contract.
  params.mode = rtnn::SearchMode::kKnn;
  const auto naive = rtnn::engine::make_backend("fastrnn");
  naive->set_points(points);
  rtnn::engine::SearchBackend::Report naive_report;
  naive->search(queries, params, &naive_report);
  std::cout << "Naive mapping IS calls: " << naive_report.stats.is_calls
            << " (optimized: " << report.stats.is_calls << ")\n";

  // 6. AutoBackend picks the substrate per call from the cost model and
  //    the measured workload density.
  const auto auto_backend = rtnn::engine::make_backend("auto");
  auto_backend->set_points(points);
  auto_backend->search(queries, params);
  std::cout << "AutoBackend dispatched to: "
            << static_cast<rtnn::engine::AutoBackend*>(auto_backend.get())->last_choice()
            << '\n';
  return 0;
}
