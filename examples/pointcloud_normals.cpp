// LiDAR point-cloud normal estimation — the vision/robotics workload.
//
// Surface-normal estimation is a standard PCL pipeline stage (the paper's
// KITTI dataset + PCLOctree baseline come from this domain): for every
// point, find its K nearest neighbors, fit a plane via the covariance
// matrix, and take the smallest eigenvector as the normal. On a street
// scene the ground points should come out with near-vertical normals —
// which this example verifies.
//
//   ./pointcloud_normals [num_points]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "datasets/lidar.hpp"
#include "engine/engine.hpp"
#include "rtnn/rtnn.hpp"

namespace {

// Smallest eigenvector of a symmetric 3x3 matrix via inverse power
// iteration with shifts (adequate for well-conditioned covariance).
rtnn::Vec3 smallest_eigenvector(const float m[3][3]) {
  // Power-iterate on (tr(M)·I - M), whose dominant eigenvector is M's
  // smallest — avoids an explicit inverse.
  const float shift = m[0][0] + m[1][1] + m[2][2];
  rtnn::Vec3 v{0.577f, 0.577f, 0.577f};
  for (int iter = 0; iter < 32; ++iter) {
    const rtnn::Vec3 mv{
        m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
        m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
        m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
    };
    rtnn::Vec3 next = v * shift - mv;
    const float len = rtnn::length(next);
    if (len < 1e-20f) break;
    v = next / len;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  rtnn::data::LidarParams lidar;
  lidar.target_points = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  const rtnn::data::PointCloud cloud = rtnn::data::lidar_scan(lidar);
  std::cout << "LiDAR scene: " << cloud.size() << " points\n";

  // KNN through the RTNN public API: K = 16 within 1 m, every point is
  // its own query.
  rtnn::SearchParams params;
  params.mode = rtnn::SearchMode::kKnn;
  // A 2 m / K=24 neighborhood spans several scan rings even at range,
  // avoiding the degenerate single-ring (collinear) case.
  params.radius = 2.0f;
  params.k = 48;
  const auto search = rtnn::engine::make_backend("rtnn");
  search->set_points(cloud);
  rtnn::engine::SearchBackend::Report report;
  const rtnn::NeighborResult knn = search->search(cloud, params, &report);
  std::cout << "  KNN search: " << report.time.total() << " s ("
            << report.num_partitions << " partitions, " << report.num_bundles
            << " bundles)\n";

  // Covariance fit per point.
  std::size_t ground = 0;
  std::size_t vertical_normals = 0;
  std::size_t with_enough_neighbors = 0;
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    const auto row = knn.neighbors(i);
    if (row.size() < 4) continue;
    ++with_enough_neighbors;
    rtnn::Vec3 centroid{};
    for (const std::uint32_t j : row) centroid += cloud[j];
    centroid /= static_cast<float>(row.size());
    float cov[3][3] = {};
    for (const std::uint32_t j : row) {
      const rtnn::Vec3 d = cloud[j] - centroid;
      cov[0][0] += d.x * d.x;
      cov[0][1] += d.x * d.y;
      cov[0][2] += d.x * d.z;
      cov[1][1] += d.y * d.y;
      cov[1][2] += d.y * d.z;
      cov[2][2] += d.z * d.z;
    }
    cov[1][0] = cov[0][1];
    cov[2][0] = cov[0][2];
    cov[2][1] = cov[1][2];
    const rtnn::Vec3 normal = smallest_eigenvector(cov);

    // Ground points (z ≈ 0) should have |normal.z| ≈ 1. Far from the
    // sensor path the scan rings spread out and a 2 m neighborhood
    // degenerates to a single ring (collinear points, ill-defined
    // normal) — a real LiDAR artifact — so validate near-range ground
    // only, where multiple rings overlap.
    if (cloud[i].z < 0.15f && std::abs(cloud[i].y) < 8.0f) {
      ++ground;
      if (std::abs(normal.z) > 0.9f) ++vertical_normals;
    }
  }
  std::cout << "  points with >=4 neighbors: " << with_enough_neighbors << " / "
            << cloud.size() << '\n';
  const double vertical_pct =
      ground ? 100.0 * static_cast<double>(vertical_normals) / static_cast<double>(ground)
             : 0.0;
  std::cout << "  ground points: " << ground << ", of which " << vertical_pct
            << "% have near-vertical normals (expect >90%)\n";
  return vertical_pct > 90.0 ? 0 : 1;
}
