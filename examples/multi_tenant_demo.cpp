// Multi-tenant serving demo — the cloud registry end to end.
//
// A miniature multi-tenant deployment of the SearchService: several named
// clouds register with different per-cloud policies (a whole-cloud
// tenant, a Morton-sharded one, a lazily-built one, and one behind
// admission control), client threads address them through CloudHandles,
// and one tenant is dropped mid-run to show the typed rejection its
// leftover traffic gets. The walkthrough exercises, in order:
//
//   1. register_cloud() with per-tenant CloudConfig (sharding, lazy
//      build, admission) under one ServiceConfig residency cap,
//   2. scatter-gather serving off the sharded tenant — same results,
//      same API, the shards are invisible to the caller,
//   3. overload against the admission-gated tenant: the excess is shed
//      at submit() (Ticket::get() throws ServiceError / kAdmission)
//      instead of queueing behind everyone else,
//   4. drop_cloud() mid-traffic: pending requests reject with kShutdown,
//      the other tenants never notice,
//   5. per-tenant stats() vs the service-wide aggregate.
//
//   ./multi_tenant_demo [points_per_tenant] [clients] [requests_per_client]
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/timing.hpp"
#include "datasets/uniform.hpp"
#include "service/service.hpp"
#include "serving_traffic.hpp"

namespace {

constexpr std::uint32_t kNeighbors = 8;

using rtnn::bench_traffic::percentile;
using rtnn::bench_traffic::request_queries;

}  // namespace

int main(int argc, char** argv) {
  const std::size_t tenant_points =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 4;
  const int requests_per_client = argc > 3 ? std::atoi(argv[3]) : 40;

  rtnn::SearchParams params;
  params.mode = rtnn::SearchMode::kKnn;
  params.k = kNeighbors;
  params.radius = static_cast<float>(
      std::cbrt(2.0 * kNeighbors * 3.0 /
                (4.0 * 3.14159265 * static_cast<double>(tenant_points))));
  params.opts = rtnn::OptimizationFlags::none();

  // --- 1. The registry: four tenants, four policies -------------------------

  rtnn::service::ServiceConfig config;
  config.max_resident_clouds = 3;  // the coldest index gets evicted
  rtnn::service::SearchService service(config);

  auto tenant_cloud = [&](std::uint64_t seed) {
    return rtnn::data::uniform_box(tenant_points, {{0, 0, 0}, {1, 1, 1}}, seed);
  };
  const rtnn::data::PointCloud city = tenant_cloud(1);
  const rtnn::data::PointCloud park = tenant_cloud(2);
  const rtnn::data::PointCloud pier = tenant_cloud(3);
  const rtnn::data::PointCloud mall = tenant_cloud(4);

  // A plain tenant: eager build, no sharding, no admission.
  const rtnn::service::CloudHandle city_h = service.register_cloud("city", city);

  // A sharded tenant: the cloud splits into Morton-contiguous spatial
  // shards; queries scatter to the shards within the search radius and
  // gather exactly. Nothing changes for the caller.
  rtnn::service::CloudConfig sharded;
  sharded.shard_threshold = tenant_points / 4;
  const rtnn::service::CloudHandle park_h = service.register_cloud("park", park, sharded);

  // A lazy tenant: registration stores the points; the first request
  // pays the build (and the LRU cap may evict it again when cold).
  rtnn::service::CloudConfig lazy;
  lazy.build_on_register = false;
  const rtnn::service::CloudHandle pier_h = service.register_cloud("pier", pier, lazy);

  // An admission-gated tenant: at most 4 pending requests; the rest are
  // shed at the door instead of queueing.
  rtnn::service::CloudConfig gated;
  gated.admission.max_queue_depth = 4;
  const rtnn::service::CloudHandle mall_h = service.register_cloud("mall", mall, gated);

  std::cout << "registered tenants:";
  for (const std::string& name : service.list_clouds()) std::cout << ' ' << name;
  std::cout << "  (resident indexes: " << service.resident_clouds() << ")\n";

  // --- 2..4. Mixed traffic against every tenant -----------------------------

  const std::vector<rtnn::service::CloudHandle> handles{city_h, park_h, pier_h, mall_h};
  const std::vector<const rtnn::data::PointCloud*> clouds{&city, &park, &pier, &mall};

  std::vector<double> latencies;
  std::mutex latencies_mutex;
  std::atomic<std::uint64_t> served{0}, shed{0}, rejected{0};
  rtnn::Timer wall;
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int r = 0; r < requests_per_client; ++r) {
        const auto t = static_cast<std::size_t>((c + r) % 4);
        rtnn::Timer latency;
        try {
          auto ticket = service.submit(handles[t], request_queries(*clouds[t], c, r),
                                       params);
          (void)ticket.get();
          served.fetch_add(1, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lock(latencies_mutex);
          latencies.push_back(latency.elapsed());
        } catch (const rtnn::service::ServiceError& e) {
          // The typed rejection says which door refused (the error-state
          // contract in service.hpp).
          switch (e.reason()) {
            case rtnn::service::RejectReason::kAdmission:
              shed.fetch_add(1, std::memory_order_relaxed);
              break;
            default:
              rejected.fetch_add(1, std::memory_order_relaxed);
              break;
          }
        }
      }
    });
  }

  // Mid-run, retire one tenant: whatever it has pending rejects with
  // kShutdown; the other tenants keep serving.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  service.drop_cloud("pier");
  for (auto& w : workers) w.join();
  const double elapsed = wall.elapsed();

  std::sort(latencies.begin(), latencies.end());
  std::cout << "served " << served.load() << " requests in " << elapsed << " s ("
            << shed.load() << " shed by admission, " << rejected.load()
            << " rejected by the dropped tenant)\n";
  std::cout << "latency p50 " << percentile(latencies, 0.5) * 1e3 << " ms, p99 "
            << percentile(latencies, 0.99) * 1e3 << " ms\n";

  // --- 5. Per-tenant stats vs the aggregate ---------------------------------

  const rtnn::service::ServiceStats total = service.stats();
  std::cout << "tenants after the run (resident indexes: " << service.resident_clouds()
            << "):\n";
  for (const std::string& name : service.list_clouds()) {
    const rtnn::service::ServiceStats stats = service.stats(service.cloud(name));
    std::cout << "  " << name << ": " << stats.requests << " requests, "
              << stats.queries << " rows, " << stats.shed << " shed, "
              << stats.builds << " builds, " << stats.evictions << " evictions\n";
  }
  std::cout << "service-wide: " << total.requests << " requests in " << total.batches
            << " batched launches, " << total.builds << " builds, " << total.evictions
            << " evictions, search time " << total.report.time.search << " s\n";
  return 0;
}
