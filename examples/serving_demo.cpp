// Serving demo — concurrent clients over a drifting point cloud.
//
// A miniature deployment of the SearchService: one writer thread streams
// frames of a drifting cloud through update_points() (each publish runs
// the refit-vs-rebuild policy off the read path), while several client
// threads fire small KNN requests through the async submit()/wait() API.
// The dispatcher coalesces whatever is in flight each tick into one
// batched launch, so the per-request cost is a slice of a shared
// pipeline pass instead of a private index build.
//
// Printed at the end: served volume, client-observed latency percentiles,
// snapshot versions published, and the service's exactly-summed aggregate
// report (batches, refits vs rebuilds, time breakdown).
//
//   ./serving_demo [num_points] [clients] [requests_per_client]
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "core/timing.hpp"
#include "datasets/motion.hpp"
#include "datasets/uniform.hpp"
#include "service/service.hpp"
#include "serving_traffic.hpp"

namespace {

constexpr std::uint32_t kNeighbors = 8;

using rtnn::bench_traffic::percentile;

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_points =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 8;
  const int requests_per_client = argc > 3 ? std::atoi(argv[3]) : 50;

  const rtnn::data::PointCloud cloud =
      rtnn::data::uniform_box(num_points, {{0, 0, 0}, {1, 1, 1}}, 20260730);

  rtnn::SearchParams params;
  params.mode = rtnn::SearchMode::kKnn;
  params.k = kNeighbors;
  params.radius = static_cast<float>(std::cbrt(
      2.0 * kNeighbors * 3.0 / (4.0 * 3.14159265 * static_cast<double>(num_points))));
  params.opts = rtnn::OptimizationFlags::none();

  std::cout << "serving " << num_points << " drifting points to " << clients
            << " clients x " << requests_per_client << " requests\n";

  rtnn::service::SearchService service(cloud);

  // Writer: a drift frame every few milliseconds until the clients are
  // done. Readers keep their pinned snapshot while each publish builds.
  std::atomic<bool> done{false};
  std::thread writer([&] {
    rtnn::data::DriftParams drift;
    drift.velocity = 0.1f * params.radius;
    rtnn::data::DriftMotion motion(cloud, drift);
    while (!done.load(std::memory_order_relaxed)) {
      service.update_points(motion.step());
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Clients: closed-loop async requests of mixed sizes; each records its
  // observed submit→result latency.
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(clients));
  std::atomic<std::uint64_t> total_rows{0};
  rtnn::Timer wall;
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int r = 0; r < requests_per_client; ++r) {
        const std::span<const rtnn::Vec3> queries =
            rtnn::bench_traffic::request_queries(cloud, c, r);
        rtnn::Timer latency;
        auto ticket = service.submit(queries, params);
        const rtnn::service::RequestOutcome outcome = ticket.get();
        latencies[static_cast<std::size_t>(c)].push_back(latency.elapsed());
        total_rows.fetch_add(outcome.result.num_queries(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = wall.elapsed();
  done.store(true, std::memory_order_relaxed);
  writer.join();

  std::vector<double> all;
  for (const auto& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  std::sort(all.begin(), all.end());

  const rtnn::service::ServiceStats stats = service.stats();
  std::cout << "  served " << stats.requests << " requests (" << total_rows.load()
            << " query rows) in " << elapsed << " s — "
            << static_cast<double>(total_rows.load()) / elapsed << " queries/s\n";
  std::cout << "  latency p50 " << percentile(all, 0.5) * 1e3 << " ms, p90 "
            << percentile(all, 0.9) * 1e3 << " ms, p99 "
            << percentile(all, 0.99) * 1e3 << " ms\n";
  std::cout << "  coalescing: " << stats.batches << " batched launches ("
            << (stats.batches
                    ? static_cast<double>(stats.requests) /
                          static_cast<double>(stats.batches)
                    : 0.0)
            << " requests/batch)\n";
  std::cout << "  snapshots: " << stats.updates << " published (version "
            << service.snapshot_version() << "), lifecycle "
            << stats.report.accel_refits << " refits + "
            << stats.report.accel_rebuilds << " rebuilds, sah inflation "
            << stats.report.sah_inflation << "\n";
  std::cout << "  aggregate time: bvh " << stats.report.time.bvh << " s, refit "
            << stats.report.time.refit << " s, search " << stats.report.time.search
            << " s\n";
  return 0;
}
