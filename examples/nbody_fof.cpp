// Friends-of-friends galaxy group finding — the cosmology workload.
//
// The paper's third dataset is a Millennium-simulation galaxy catalogue;
// the canonical neighbor-search consumer in that domain is the
// friends-of-friends (FoF) group finder: two galaxies belong to the same
// group if they are within a linking length b of each other. This example
// runs RTNN range search to build the linking graph on a Soneira–Peebles
// clustered catalogue and extracts groups with union-find, printing the
// group multiplicity function.
//
//   ./nbody_fof [num_galaxies] [linking_length]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <numeric>
#include <vector>

#include "datasets/nbody.hpp"
#include "engine/engine.hpp"
#include "rtnn/rtnn.hpp"

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

int main(int argc, char** argv) {
  rtnn::data::NBodyParams nbody;
  nbody.target_points = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300'000;
  const float linking_length = argc > 2 ? std::strtof(argv[2], nullptr) : 1.5f;
  const rtnn::data::PointCloud galaxies = rtnn::data::nbody_cluster(nbody);
  std::cout << "Catalogue: " << galaxies.size() << " galaxies in a " << nbody.box_size
            << " Mpc/h box, linking length " << linking_length << " Mpc/h\n";

  // FoF edges via bounded range search: 32 neighbors per galaxy is ample
  // for linking (denser regions link transitively anyway).
  rtnn::SearchParams params;
  params.mode = rtnn::SearchMode::kRange;
  params.radius = linking_length;
  params.k = 32;
  const auto search = rtnn::engine::make_backend("rtnn");
  search->set_points(galaxies);
  rtnn::engine::SearchBackend::Report report;
  const rtnn::NeighborResult links = search->search(galaxies, params, &report);
  std::cout << "  range search: " << report.time.total() << " s, "
            << links.total_neighbors() << " directed links, " << report.num_partitions
            << " partitions\n";

  UnionFind groups(galaxies.size());
  for (std::size_t i = 0; i < galaxies.size(); ++i) {
    for (const std::uint32_t j : links.neighbors(i)) {
      groups.unite(i, j);
    }
  }

  // Multiplicity function: how many groups of each size bucket.
  std::vector<std::size_t> group_size(galaxies.size(), 0);
  for (std::size_t i = 0; i < galaxies.size(); ++i) {
    ++group_size[groups.find(i)];
  }
  std::size_t isolated = 0, small = 0, medium = 0, large = 0, largest = 0;
  for (const std::size_t s : group_size) {
    if (s == 0) continue;
    largest = std::max(largest, s);
    if (s == 1) {
      ++isolated;
    } else if (s <= 10) {
      ++small;
    } else if (s <= 100) {
      ++medium;
    } else {
      ++large;
    }
  }
  std::cout << "  groups: " << isolated << " isolated, " << small << " small (2-10), "
            << medium << " medium (11-100), " << large << " large (>100)\n";
  std::cout << "  richest group: " << largest << " members\n";
  // A hierarchically clustered catalogue must produce rich groups.
  return large > 0 ? 0 : 1;
}
