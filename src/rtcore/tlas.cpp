#include "rtcore/tlas.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/timing.hpp"

namespace rtnn::rt {

namespace {

/// Bounds over the member cubes: the point bounds expanded by half the
/// AABB width on every axis. Exactly contains every Aabb::cube(p, width).
Aabb member_bounds(std::span<const Vec3> positions, float width) {
  Aabb box;
  for (const Vec3& p : positions) box.grow(p);
  const float half = 0.5f * width;
  const Vec3 pad{half, half, half};
  return Aabb{box.lo - pad, box.hi + pad};
}

std::shared_ptr<const TiledBvh::TileIndex> build_index(
    std::span<const Vec3> positions, float width, std::uint32_t leaf_size) {
  std::vector<Aabb> boxes(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    boxes[i] = Aabb::cube(positions[i], width);
  }
  auto index = std::make_shared<TiledBvh::TileIndex>();
  index->bvh.build(boxes, BvhBuildOptions{.leaf_size = leaf_size});
  index->wide.build(index->bvh);
  return index;
}

}  // namespace

const TiledBvh::TileIndex& TiledBvh::Tile::ensure_index(
    float aabb_width, std::uint32_t leaf_size) const {
  if (const TileIndex* built = index_.load(std::memory_order_acquire)) return *built;
  std::lock_guard<std::mutex> lock(build_mutex_);
  if (const TileIndex* built = index_.load(std::memory_order_relaxed)) return *built;
  storage_ = build_index(positions_, aabb_width, leaf_size);
  index_.store(storage_.get(), std::memory_order_release);
  return *storage_;
}

std::shared_ptr<TiledBvh::Tile> TiledBvh::make_tile(
    std::span<const Vec3> points, std::vector<std::uint32_t> ids) const {
  auto tile = std::make_shared<Tile>();
  tile->prim_ids_ = std::move(ids);
  tile->positions_.resize(tile->prim_ids_.size());
  for (std::size_t i = 0; i < tile->prim_ids_.size(); ++i) {
    tile->positions_[i] = points[tile->prim_ids_[i]];
  }
  tile->bounds_ = member_bounds(tile->positions_, width_);
  return tile;
}

void TiledBvh::rebuild_top() {
  std::vector<Aabb> tile_boxes(tiles_.size());
  for (std::size_t t = 0; t < tiles_.size(); ++t) tile_boxes[t] = tiles_[t]->bounds();
  // One primitive per tile: leaves of the top tree name tiles directly
  // through top_.prim_order().
  top_.build(tile_boxes, BvhBuildOptions{.leaf_size = 1});
}

void TiledBvh::build(std::span<const Vec3> points, float aabb_width,
                     std::span<const std::vector<std::uint32_t>> tile_ids,
                     const TiledBuildOptions& options) {
  RTNN_CHECK(!points.empty(), "cannot build a tiled index over an empty cloud");
  RTNN_CHECK(aabb_width > 0.0f, "AABB width must be positive");
  RTNN_CHECK(!tile_ids.empty(), "a tiled build needs at least one tile");
  width_ = aabb_width;
  leaf_size_ = std::max<std::uint32_t>(1, options.leaf_size);
  point_count_ = points.size();

  tiles_.clear();
  tiles_.reserve(tile_ids.size());
  for (const std::vector<std::uint32_t>& ids : tile_ids) {
    if (ids.empty()) continue;  // planner may emit fewer shards than asked
    tiles_.push_back(make_tile(points, ids));
  }
  RTNN_CHECK(!tiles_.empty(), "a tiled build needs at least one non-empty tile");

  if (!options.lazy_build) ensure_all_built();
  rebuild_top();
}

void TiledBvh::ensure_all_built() const {
  parallel_for(
      0, static_cast<std::int64_t>(tiles_.size()),
      [&](std::int64_t t) { tiles_[t]->ensure_index(width_, leaf_size_); },
      grain::kTask);
}

std::uint32_t TiledBvh::built_tile_count() const {
  std::uint32_t built = 0;
  for (const auto& tile : tiles_) {
    if (tile->index() != nullptr) ++built;
  }
  return built;
}

TiledUpdateStats TiledBvh::update(std::span<const Vec3> points,
                                  const TileUpdatePolicy& policy) {
  RTNN_CHECK(points.size() == point_count_,
             "tiled update requires the same point count as the build");
  RTNN_CHECK(policy, "tiled update needs a refit-vs-rebuild policy");
  TiledUpdateStats out;

  for (auto& slot : tiles_) {
    const Tile& old_tile = *slot;
    // Touched detection: bitwise position compare, member by member. One
    // linear pass over the cloud in total — the same O(N) scan a
    // monolithic refit pays before it does any tree work.
    bool touched = false;
    for (std::size_t i = 0; i < old_tile.prim_ids_.size(); ++i) {
      const Vec3& now = points[old_tile.prim_ids_[i]];
      const Vec3& was = old_tile.positions_[i];
      if (std::memcmp(&now, &was, sizeof(Vec3)) != 0) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    ++out.tiles_touched;

    // Replace, never mutate: snapshots sharing the old tile keep it.
    auto fresh = make_tile(points, old_tile.prim_ids_);
    if (const TileIndex* old_index = old_tile.index()) {
      if (policy(old_index->bvh.sah_inflation()) == TileUpdate::kRefit) {
        Timer timer;
        // Copy-then-refit: the shared old index stays frozen for earlier
        // snapshots while the copy absorbs the motion.
        auto refitted = std::make_shared<TileIndex>(*old_index);
        refitted->bvh.refit(fresh->positions_, width_);
        refitted->wide.refit_from(refitted->bvh);
        fresh->publish(std::move(refitted));
        out.refit_seconds += timer.elapsed();
        ++out.tile_refits;
      } else {
        Timer timer;
        fresh->publish(build_index(fresh->positions_, width_, leaf_size_));
        out.build_seconds += timer.elapsed();
        ++out.tile_rebuilds;
      }
    }
    // else: the tile was never built — stay lazy, motion absorbed free.
    slot = std::move(fresh);
  }

  if (out.tiles_touched > 0) rebuild_top();
  return out;
}

TiledBvhStats TiledBvh::stats(bool compressed) const {
  TiledBvhStats out;
  out.tile_count = tile_count();
  for (const auto& tile : tiles_) {
    const TileIndex* index = tile->index();
    if (index == nullptr) continue;
    ++out.built_tiles;
    const WideBvhStats ws =
        compressed ? index->wide.compressed_stats() : index->wide.stats();
    out.node_bytes += ws.node_bytes;
    out.total_index_bytes += ws.total_index_bytes;
  }
  // The top tree is part of the resident index too; tiny (one node pair
  // per tile) but accounted so the gauge is the whole two-level footprint.
  out.total_index_bytes += top_.nodes().size() * sizeof(BvhNode) +
                           top_.prim_order().size() * sizeof(std::uint32_t);
  return out;
}

double TiledBvh::max_sah_inflation() const {
  double worst = 1.0;
  for (const auto& tile : tiles_) {
    if (const TileIndex* index = tile->index()) {
      worst = std::max(worst, index->bvh.sah_inflation());
    }
  }
  return worst;
}

void TiledBvh::validate() const {
  RTNN_CHECK(!tiles_.empty(), "tiled index has no tiles");
  RTNN_CHECK(!top_.empty(), "tiled index has no top-level tree");
  RTNN_CHECK(top_.prim_count() == tile_count(),
             "top-level tree must reference each tile exactly once");

  std::vector<bool> seen(point_count_, false);
  std::size_t members = 0;
  for (const auto& tile : tiles_) {
    RTNN_CHECK(!tile->prim_ids_.empty(), "tiled index holds an empty tile");
    RTNN_CHECK(tile->prim_ids_.size() == tile->positions_.size(),
               "tile id/position arrays disagree");
    for (std::size_t i = 0; i < tile->prim_ids_.size(); ++i) {
      const std::uint32_t id = tile->prim_ids_[i];
      RTNN_CHECK(id < point_count_, "tile references an out-of-range point id");
      RTNN_CHECK(!seen[id], "point id appears in more than one tile");
      seen[id] = true;
      ++members;
      RTNN_CHECK(tile->bounds_.contains(Aabb::cube(tile->positions_[i], width_)),
                 "tile bounds do not contain a member AABB");
    }
    if (const TileIndex* index = tile->index()) {
      RTNN_CHECK(index->bvh.prim_count() == tile->prim_ids_.size(),
                 "tile index primitive count mismatch");
      index->bvh.validate();
      index->wide.validate();
    }
  }
  RTNN_CHECK(members == point_count_, "tiles do not partition the point ids");

  // Every top-tree leaf slot names a distinct tile.
  std::vector<bool> tile_seen(tiles_.size(), false);
  for (const std::uint32_t t : top_.prim_order()) {
    RTNN_CHECK(t < tiles_.size(), "top-level leaf references a bad tile");
    RTNN_CHECK(!tile_seen[t], "top-level tree references a tile twice");
    tile_seen[t] = true;
    RTNN_CHECK(top_.prim_aabbs()[t].contains(tiles_[t]->bounds()),
               "top-level primitive box does not cover its tile");
  }
}

}  // namespace rtnn::rt
