#include "rtcore/bvh.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "core/error.hpp"
#include "core/morton.hpp"
#include "core/parallel.hpp"
#include "core/sort.hpp"

namespace rtnn::rt {

namespace {

// Highest set bit position of x (x != 0).
inline int high_bit(std::uint64_t x) { return 63 - std::countl_zero(x); }

// Split position of the Morton-sorted range [lo, hi): first index whose
// code differs from codes[lo] at the highest differing bit; median split
// for duplicated codes.
std::uint32_t split_range(const std::vector<std::uint64_t>& codes, std::uint32_t lo,
                          std::uint32_t hi) {
  const std::uint32_t count = hi - lo;
  const std::uint64_t first_code = codes[lo];
  const std::uint64_t last_code = codes[hi - 1];
  if (first_code == last_code) return lo + count / 2;
  const int split_bit = high_bit(first_code ^ last_code);
  const std::uint64_t mask = ~((std::uint64_t{1} << split_bit) - 1);
  const std::uint64_t prefix = first_code & mask;
  std::uint32_t first = lo;
  std::uint32_t len = count;
  while (len > 1) {
    const std::uint32_t half = len / 2;
    const std::uint32_t probe = first + half;
    if ((codes[probe] & mask) == prefix) {
      first = probe;
      len -= half;
    } else {
      len = half;
    }
  }
  RTNN_DCHECK(first + 1 > lo && first + 1 < hi, "degenerate Morton split");
  return first + 1;
}

struct SubtreeBuilder {
  const std::vector<std::uint64_t>& codes;
  const std::vector<std::uint32_t>& prim_order;
  const std::vector<Aabb>& prim_aabbs;
  std::uint32_t leaf_size;
  std::vector<BvhNode>& nodes;
  std::uint32_t max_depth = 0;

  std::uint32_t build(std::uint32_t lo, std::uint32_t hi, std::uint32_t depth) {
    max_depth = std::max(max_depth, depth);
    const auto index = static_cast<std::uint32_t>(nodes.size());
    nodes.emplace_back();
    const std::uint32_t count = hi - lo;
    if (count <= leaf_size) {
      Aabb bounds;
      for (std::uint32_t s = lo; s < hi; ++s) bounds.grow(prim_aabbs[prim_order[s]]);
      BvhNode& leaf = nodes[index];
      leaf.bounds = bounds;
      leaf.first = lo;
      leaf.count = count;
      return index;
    }
    const std::uint32_t mid = split_range(codes, lo, hi);
    const std::uint32_t left = build(lo, mid, depth + 1);
    const std::uint32_t right = build(mid, hi, depth + 1);
    BvhNode& node = nodes[index];
    node.left = left;
    node.right = right;
    node.count = 0;
    node.bounds = unite(nodes[left].bounds, nodes[right].bounds);
    return index;
  }
};

// Builds a subtree directly into a preallocated global node array (only
// valid for leaf_size == 1, where a range of `len` primitives occupies
// exactly 2*len-1 slots in pre-order).
struct FixedSlotBuilder {
  const std::vector<std::uint64_t>& codes;
  const std::vector<std::uint32_t>& prim_order;
  const std::vector<Aabb>& prim_aabbs;
  BvhNode* nodes;
  std::uint32_t max_depth = 0;

  void build(std::uint32_t slot, std::uint32_t lo, std::uint32_t hi,
             std::uint32_t depth) {
    max_depth = std::max(max_depth, depth);
    BvhNode& node = nodes[slot];
    if (hi - lo == 1) {
      node.bounds = prim_aabbs[prim_order[lo]];
      node.first = lo;
      node.count = 1;
      return;
    }
    const std::uint32_t mid = split_range(codes, lo, hi);
    const std::uint32_t left = slot + 1;
    const std::uint32_t right = slot + 1 + (2 * (mid - lo) - 1);
    build(left, lo, mid, depth + 1);
    build(right, mid, hi, depth + 1);
    node.left = left;
    node.right = right;
    node.count = 0;
    node.bounds = unite(nodes[left].bounds, nodes[right].bounds);
  }
};

}  // namespace

void Bvh::build(std::span<const Aabb> prims, const BvhBuildOptions& options) {
  RTNN_CHECK(options.leaf_size >= 1, "leaf_size must be >= 1");
  nodes_.clear();
  prim_order_.clear();
  prim_aabbs_.assign(prims.begin(), prims.end());
  leaf_size_ = options.leaf_size;
  max_depth_seen_ = 0;
  scene_bounds_ = Aabb{};
  level_nodes_.clear();
  level_offsets_.clear();
  baseline_sah_ = -1.0;
  sah_inflation_ = 1.0;
  const auto n = static_cast<std::uint32_t>(prims.size());
  if (n == 0) return;

  // Centroid bounds for Morton normalization (parallel reduction).
  struct Bounds2Acc {
    Aabb centroid;
    Aabb scene;
    std::uint64_t empties = 0;
  };
  const Bounds2Acc totals = parallel_reduce<Bounds2Acc>(
      0, n, Bounds2Acc{},
      [&](std::int64_t i) {
        const Aabb& b = prims[static_cast<std::size_t>(i)];
        Bounds2Acc out;
        if (b.empty()) {
          out.empties = 1;  // diagnosed after the parallel region
        } else {
          out.centroid.grow(b.center());
          out.scene = b;
        }
        return out;
      },
      [](Bounds2Acc a, const Bounds2Acc& b) {
        a.centroid.grow(b.centroid);
        a.scene.grow(b.scene);
        a.empties += b.empties;
        return a;
      },
      grain::kElementwise);
  RTNN_CHECK(totals.empties == 0, "cannot build BVH over an empty AABB");
  scene_bounds_ = totals.scene;

  // Morton-sort primitive indices by centroid.
  std::vector<std::uint64_t> codes(n);
  parallel_for(0, n, [&](std::int64_t i) {
    codes[static_cast<std::size_t>(i)] =
        morton3d_63(prims[static_cast<std::size_t>(i)].center(), totals.centroid);
  }, grain::kElementwise);
  prim_order_.resize(n);
  std::iota(prim_order_.begin(), prim_order_.end(), 0u);
  radix_sort_pairs(codes, prim_order_);

  // Small builds: one serial pass.
  const int workers = num_threads();
  const std::uint32_t cutoff = std::max<std::uint32_t>(
      4 * 1024, n / static_cast<std::uint32_t>(8 * std::max(workers, 1)));
  if (workers <= 1 || n <= 2 * cutoff) {
    nodes_.reserve(2 * static_cast<std::size_t>(n));
    SubtreeBuilder builder{codes, prim_order_, prim_aabbs_, leaf_size_, nodes_};
    builder.build(0, n, 0);
    max_depth_seen_ = builder.max_depth;
    return;
  }

  // Parallel build: split the sorted range top-down into tasks, build each
  // subtree independently, then stitch the pieces with index fix-up.
  struct Task {
    std::uint32_t lo, hi;
    std::uint32_t parent;  // top-skeleton node to patch
    bool is_left;
  };
  std::vector<Task> tasks;
  std::vector<std::uint32_t> top_internal;  // indices of skeleton nodes, pre-order

  // Build the skeleton serially (explicit stack to keep pre-order simple).
  struct Frame {
    std::uint32_t lo, hi, parent, depth;
    bool is_left;
  };
  std::vector<Frame> stack{{0, n, 0xffffffffu, 0, false}};
  std::vector<std::uint32_t> task_depth;
  nodes_.reserve(2 * static_cast<std::size_t>(n));
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.hi - f.lo <= cutoff) {
      tasks.push_back({f.lo, f.hi, f.parent, f.is_left});
      task_depth.push_back(f.depth);
      continue;
    }
    const auto index = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
    top_internal.push_back(index);
    if (f.parent != 0xffffffffu) {
      (f.is_left ? nodes_[f.parent].left : nodes_[f.parent].right) = index;
    }
    const std::uint32_t mid = split_range(codes, f.lo, f.hi);
    stack.push_back({mid, f.hi, index, f.depth + 1, false});
    stack.push_back({f.lo, mid, index, f.depth + 1, true});
  }

  // Build every task subtree in parallel.
  std::vector<std::uint32_t> local_depth(tasks.size(), 0);
  if (leaf_size_ == 1) {
    // Subtree sizes are exact (2*len-1): build straight into the global
    // array at precomputed offsets — no local buffers, no stitch copy.
    std::vector<std::size_t> offsets(tasks.size());
    std::size_t total = nodes_.size();
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      offsets[t] = total;
      total += 2 * static_cast<std::size_t>(tasks[t].hi - tasks[t].lo) - 1;
    }
    nodes_.resize(total);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const Task& task = tasks[t];
      const auto root = static_cast<std::uint32_t>(offsets[t]);
      (task.is_left ? nodes_[task.parent].left : nodes_[task.parent].right) = root;
    }
    parallel_for(0, static_cast<std::int64_t>(tasks.size()), [&](std::int64_t t) {
      const Task& task = tasks[static_cast<std::size_t>(t)];
      FixedSlotBuilder builder{codes, prim_order_, prim_aabbs_, nodes_.data()};
      builder.build(static_cast<std::uint32_t>(offsets[static_cast<std::size_t>(t)]),
                    task.lo, task.hi, 0);
      local_depth[static_cast<std::size_t>(t)] = builder.max_depth;
    }, grain::kTask);
  } else {
    // General leaf sizes: build locally and stitch with index fix-up.
    std::vector<std::vector<BvhNode>> local(tasks.size());
    parallel_for(0, static_cast<std::int64_t>(tasks.size()), [&](std::int64_t t) {
      const Task& task = tasks[static_cast<std::size_t>(t)];
      auto& nodes = local[static_cast<std::size_t>(t)];
      nodes.reserve(2 * static_cast<std::size_t>(task.hi - task.lo));
      SubtreeBuilder builder{codes, prim_order_, prim_aabbs_, leaf_size_, nodes};
      builder.build(task.lo, task.hi, 0);
      local_depth[static_cast<std::size_t>(t)] = builder.max_depth;
    }, grain::kTask);
    std::vector<std::size_t> offsets(tasks.size());
    std::size_t total = nodes_.size();
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      offsets[t] = total;
      total += local[t].size();
    }
    nodes_.resize(total);
    parallel_for(0, static_cast<std::int64_t>(tasks.size()), [&](std::int64_t ti) {
      const auto t = static_cast<std::size_t>(ti);
      const auto base = static_cast<std::uint32_t>(offsets[t]);
      BvhNode* dst = nodes_.data() + offsets[t];
      for (std::size_t i = 0; i < local[t].size(); ++i) {
        BvhNode node = local[t][i];
        if (!node.is_leaf()) {
          node.left += base;
          node.right += base;
        }
        dst[i] = node;
      }
    }, grain::kTask);
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const Task& task = tasks[t];
      const auto root = static_cast<std::uint32_t>(offsets[t]);
      (task.is_left ? nodes_[task.parent].left : nodes_[task.parent].right) = root;
    }
  }

  // Skeleton bounds, bottom-up. Pre-order creation means children always
  // come after parents among skeleton nodes, but skeleton children may be
  // task roots (which already have bounds); walk the skeleton in reverse.
  for (auto it = top_internal.rbegin(); it != top_internal.rend(); ++it) {
    BvhNode& node = nodes_[*it];
    node.count = 0;
    node.bounds = unite(nodes_[node.left].bounds, nodes_[node.right].bounds);
  }

  std::uint32_t deepest = 0;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    deepest = std::max(deepest, local_depth[t] + task_depth[t]);
  }
  max_depth_seen_ = deepest;
}

// Node ids bucketed by depth, deepest level first, so a level sweep can
// process each bucket with parallel_for: a node's children are always one
// level deeper, hence already final when their parent is re-united. The
// schedule depends only on topology and is cached until the next build().
void Bvh::ensure_levels() const {
  if (!level_nodes_.empty() || nodes_.empty()) return;
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  std::vector<std::uint32_t> depth(n, 0);
  std::uint32_t max_depth = 0;
  // Every builder allocates children after their parent, so one forward
  // pass assigns depths before they are read.
  for (std::uint32_t i = 0; i < n; ++i) {
    const BvhNode& node = nodes_[i];
    if (node.is_leaf()) continue;
    RTNN_DCHECK(node.left > i && node.right > i, "child precedes parent");
    depth[node.left] = depth[node.right] = depth[i] + 1;
    max_depth = std::max(max_depth, depth[i] + 1);
  }
  // Counting sort into deepest-first buckets.
  std::vector<std::uint32_t> counts(max_depth + 1, 0);
  for (std::uint32_t i = 0; i < n; ++i) ++counts[depth[i]];
  level_offsets_.assign(max_depth + 2, 0);
  for (std::uint32_t d = 0; d <= max_depth; ++d) {
    // Bucket b processes depth (max_depth - b).
    level_offsets_[d + 1] = level_offsets_[d] + counts[max_depth - d];
  }
  std::vector<std::uint32_t> cursor(level_offsets_.begin(), level_offsets_.end() - 1);
  level_nodes_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    level_nodes_[cursor[max_depth - depth[i]]++] = i;
  }
}

double Bvh::sah_cost_of_bounds() const {
  if (nodes_.empty()) return 0.0;
  const double root_area = nodes_[0].bounds.surface_area();
  if (root_area <= 0.0) return 0.0;
  const double sum = parallel_reduce<double>(
      0, static_cast<std::int64_t>(nodes_.size()), 0.0,
      [&](std::int64_t i) {
        const BvhNode& node = nodes_[static_cast<std::size_t>(i)];
        return static_cast<double>(node.bounds.surface_area()) *
               (node.is_leaf() ? node.count : 1.0);
      },
      [](double a, double b) { return a + b; }, grain::kElementwise);
  return sum / root_area;
}

// The refit engine: one bottom-up sweep that recomputes leaf bounds from
// the moved primitive boxes (writing the primitive snapshot cache-hot, in
// the same touch), re-unites interior bounds, and accumulates the SAH
// quality metric — all in a single pass over the node array. `prim_box`
// yields primitive id's moved box; it is called exactly once per
// primitive (each primitive lives in exactly one leaf).
template <typename PrimBox>
void Bvh::refit_impl(std::size_t prim_count, PrimBox prim_box) {
  RTNN_CHECK(prim_count == prim_aabbs_.size(),
             "refit requires the same primitive count as the build");
  if (nodes_.empty()) return;

  // The inflation baseline: the SAH cost this topology had for the boxes
  // it was built over, captured lazily before the first refit disturbs it.
  if (baseline_sah_ < 0.0) baseline_sah_ = sah_cost_of_bounds();

  struct SweepAcc {
    double area = 0.0;
    std::uint64_t empties = 0;
  };
  const auto refit_node = [&](BvhNode& node) {
    SweepAcc acc;
    if (node.is_leaf()) {
      Aabb bounds;
      for (std::uint32_t s = node.first; s < node.first + node.count; ++s) {
        const std::uint32_t prim = prim_order_[s];
        const Aabb box = prim_box(prim);
        acc.empties += box.empty() ? 1 : 0;
        prim_aabbs_[prim] = box;
        bounds.grow(box);
      }
      node.bounds = bounds;
      acc.area = static_cast<double>(bounds.surface_area()) * node.count;
    } else {
      node.bounds = unite(nodes_[node.left].bounds, nodes_[node.right].bounds);
      acc.area = static_cast<double>(node.bounds.surface_area());
    }
    return acc;
  };

  SweepAcc total;
  if (num_threads() <= 1 || nodes_.size() < 16 * 1024) {
    // Children always follow their parent in the node array, so a reverse
    // index loop is a valid (and cache-friendly) serial bottom-up sweep.
    for (std::size_t i = nodes_.size(); i-- > 0;) {
      const SweepAcc acc = refit_node(nodes_[i]);
      total.area += acc.area;
      total.empties += acc.empties;
    }
  } else {
    ensure_levels();
    for (std::size_t level = 0; level + 1 < level_offsets_.size(); ++level) {
      const SweepAcc acc = parallel_reduce<SweepAcc>(
          level_offsets_[level], level_offsets_[level + 1], SweepAcc{},
          [&](std::int64_t s) {
            return refit_node(nodes_[level_nodes_[static_cast<std::size_t>(s)]]);
          },
          [](SweepAcc a, const SweepAcc& b) {
            a.area += b.area;
            a.empties += b.empties;
            return a;
          },
          grain::kElementwise);
      total.area += acc.area;
      total.empties += acc.empties;
    }
  }
  RTNN_CHECK(total.empties == 0, "cannot refit over an empty AABB");

  // The root *is* the union of every primitive box.
  scene_bounds_ = nodes_[0].bounds;
  const double root_area = nodes_[0].bounds.surface_area();
  const double sah = root_area > 0.0 ? total.area / root_area : 0.0;
  sah_inflation_ = (baseline_sah_ > 0.0 && sah > 0.0) ? sah / baseline_sah_ : 1.0;
}

void Bvh::refit(std::span<const Aabb> prims) {
  refit_impl(prims.size(), [&](std::uint32_t prim) { return prims[prim]; });
}

void Bvh::refit(std::span<const Vec3> centers, float width) {
  RTNN_CHECK(width > 0.0f, "refit AABB width must be positive");
  refit_impl(centers.size(),
             [&](std::uint32_t prim) { return Aabb::cube(centers[prim], width); });
}

BvhStats Bvh::stats() const {
  BvhStats s;
  s.node_count = static_cast<std::uint32_t>(nodes_.size());
  s.max_depth = max_depth_seen_;
  if (nodes_.empty()) return s;
  const double root_area = nodes_[0].bounds.surface_area();
  for (const BvhNode& n : nodes_) {
    if (n.is_leaf()) ++s.leaf_count;
    if (root_area > 0.0) {
      // SAH: traversal cost 1 per interior node, intersection cost 1 per
      // primitive, weighted by the probability a random ray visits.
      const double p = n.bounds.surface_area() / root_area;
      s.sah_cost += p * (n.is_leaf() ? n.count : 1.0);
    }
  }
  return s;
}

void Bvh::validate() const {
  if (nodes_.empty()) {
    RTNN_CHECK(prim_aabbs_.empty(), "empty tree but primitives present");
    return;
  }
  const auto n_prims = static_cast<std::uint32_t>(prim_aabbs_.size());
  RTNN_CHECK(prim_order_.size() == n_prims, "prim_order size mismatch");

  std::vector<std::uint32_t> slot_seen(n_prims, 0);
  std::vector<std::uint8_t> node_seen(nodes_.size(), 0);
  std::vector<std::uint32_t> stack{root()};
  while (!stack.empty()) {
    const std::uint32_t ni = stack.back();
    stack.pop_back();
    RTNN_CHECK(ni < nodes_.size(), "child index out of range");
    RTNN_CHECK(!node_seen[ni], "node reachable twice (cycle or DAG)");
    node_seen[ni] = 1;
    const BvhNode& node = nodes_[ni];
    if (node.is_leaf()) {
      RTNN_CHECK(node.first + node.count <= n_prims, "leaf slot range out of bounds");
      for (std::uint32_t s = node.first; s < node.first + node.count; ++s) {
        const std::uint32_t prim = prim_order_[s];
        RTNN_CHECK(prim < n_prims, "primitive id out of range");
        ++slot_seen[prim];
        RTNN_CHECK(node.bounds.contains(prim_aabbs_[prim]),
                   "leaf bounds do not contain primitive AABB");
      }
    } else {
      RTNN_CHECK(node.left != node.right, "interior node with identical children");
      const BvhNode& l = nodes_[node.left];
      const BvhNode& r = nodes_[node.right];
      RTNN_CHECK(node.bounds.contains(l.bounds), "parent does not contain left child");
      RTNN_CHECK(node.bounds.contains(r.bounds), "parent does not contain right child");
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  for (std::uint32_t p = 0; p < n_prims; ++p) {
    RTNN_CHECK(slot_seen[p] == 1, "primitive not in exactly one leaf");
  }
}

}  // namespace rtnn::rt
