// Per-launch hardware counters.
//
// These are the counters the paper reads off the real hardware (or infers,
// e.g. "statistics about the number of traversals are hidden by OptiX" —
// footnote 1): traversal steps, IS-shader invocations, warp occupancy,
// cache hit rates. Figures 6, 8 and the micro characterizations are
// regenerated from this struct.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "rtcore/cache_sim.hpp"

namespace rtnn::rt {

struct LaunchStats {
  std::uint64_t rays = 0;
  std::uint64_t node_visits = 0;     // BVH nodes popped ("TL" steps, RT-core work)
  std::uint64_t aabb_tests = 0;      // ray-AABB tests (node + leaf-primitive boxes)
  std::uint64_t is_calls = 0;        // IS-shader invocations (Step 2 of the algorithm)
  std::uint64_t hits = 0;            // primitives accepted by the IS shader
  std::uint64_t terminated_rays = 0; // rays ended early by the AH shader

  // SIMT-mode counters (zero in independent mode).
  std::uint64_t warps = 0;
  std::uint64_t warp_iterations = 0;  // lockstep front-advance iterations
  std::uint64_t warp_substeps = 0;    // serialized unique-node executions
  std::uint64_t active_lane_slots = 0;  // sum over substeps of lanes executing

  CacheStats l1;
  CacheStats l2;

  /// SIMT lane utilization in [0,1] — the analog of "SM occupancy" in
  /// paper Figure 6: fraction of lane-slots doing useful work while the
  /// warp advances through its serialized node sub-steps.
  double occupancy() const {
    const std::uint64_t denom = warp_substeps * 32;
    return denom ? static_cast<double>(active_lane_slots) / static_cast<double>(denom) : 0.0;
  }

  double is_calls_per_ray() const {
    return rays ? static_cast<double>(is_calls) / static_cast<double>(rays) : 0.0;
  }

  double node_visits_per_ray() const {
    return rays ? static_cast<double>(node_visits) / static_cast<double>(rays) : 0.0;
  }

  LaunchStats& operator+=(const LaunchStats& o);
};

std::ostream& operator<<(std::ostream& os, const LaunchStats& s);

/// Lock-free per-worker LaunchStats accumulation for parallel launches.
/// Each worker bumps counters in its own cache-line-aligned slot (indexed
/// by worker_index()); the launch sums the slots once at the end. This
/// replaced the mutex-guarded merge that used to sit on the trace hot
/// path — per-thread counters cost nothing while rays are in flight.
class StatsAccumulator {
 public:
  StatsAccumulator() : slots_(static_cast<std::size_t>(std::max(num_threads(), 1))) {}

  /// The calling worker's slot. Valid inside a parallel region sized by
  /// num_threads() (the only configuration parallel_for creates) and on
  /// the serial path. A concurrent set_num_threads() could hand a worker
  /// an index past the slot count — asserted in debug; the release clamp
  /// only bounds the access (writes may then contend on the last slot).
  LaunchStats& local() {
    const auto w = static_cast<std::size_t>(worker_index());
    RTNN_DCHECK(w < slots_.size(), "worker index exceeds stats slots");
    return slots_[w < slots_.size() ? w : slots_.size() - 1].stats;
  }

  /// Sum of every worker's counters; call after the parallel region ends.
  LaunchStats reduce() const {
    LaunchStats total;
    for (const Slot& slot : slots_) total += slot.stats;
    return total;
  }

 private:
  struct alignas(64) Slot {
    LaunchStats stats;
  };
  std::vector<Slot> slots_;
};

}  // namespace rtnn::rt
