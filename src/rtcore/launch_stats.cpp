#include "rtcore/launch_stats.hpp"

#include <ostream>

namespace rtnn::rt {

LaunchStats& LaunchStats::operator+=(const LaunchStats& o) {
  rays += o.rays;
  node_visits += o.node_visits;
  aabb_tests += o.aabb_tests;
  is_calls += o.is_calls;
  hits += o.hits;
  terminated_rays += o.terminated_rays;
  warps += o.warps;
  warp_iterations += o.warp_iterations;
  warp_substeps += o.warp_substeps;
  active_lane_slots += o.active_lane_slots;
  l1 += o.l1;
  l2 += o.l2;
  return *this;
}

std::ostream& operator<<(std::ostream& os, const LaunchStats& s) {
  os << "{rays=" << s.rays << " node_visits=" << s.node_visits
     << " aabb_tests=" << s.aabb_tests << " is_calls=" << s.is_calls
     << " hits=" << s.hits << " terminated=" << s.terminated_rays;
  if (s.warps) {
    os << " warps=" << s.warps << " substeps=" << s.warp_substeps
       << " occupancy=" << s.occupancy();
  }
  if (s.l1.accesses) {
    os << " L1=" << s.l1.hit_rate() << " L2=" << s.l2.hit_rate();
  }
  return os << '}';
}

}  // namespace rtnn::rt
