#include "rtcore/wide_bvh.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "core/error.hpp"
#include "core/parallel.hpp"

namespace rtnn::rt {

namespace {

/// The binary nodes feeding one wide node's slots, recorded during the
/// serial topology pass and consumed by the parallel bounds fill.
using SlotSources = std::array<std::uint32_t, kWideBvhWidth>;

/// Grows `frontier` (binary node ids under one wide node) by repeatedly
/// replacing the interior entry with the largest surface area — the child a
/// random ray is most likely to enter — with its two children, until all
/// eight slots are used or only leaves remain. Returns the frontier size.
/// Areas are computed once per entry (-1 marks a leaf), not rescanned.
std::uint32_t collapse_frontier(std::span<const BvhNode> bin_nodes, SlotSources& frontier,
                                std::uint32_t size) {
  const auto entry_area = [&](std::uint32_t id) {
    const BvhNode& node = bin_nodes[id];
    return node.is_leaf() ? -1.0f : node.bounds.surface_area();
  };
  float area[kWideBvhWidth];
  for (std::uint32_t i = 0; i < size; ++i) area[i] = entry_area(frontier[i]);
  while (size < kWideBvhWidth) {
    std::uint32_t expand = kWideBvhWidth;  // sentinel: nothing to expand
    float best_area = -1.0f;
    for (std::uint32_t i = 0; i < size; ++i) {
      if (area[i] > best_area) {
        best_area = area[i];
        expand = i;
      }
    }
    if (expand == kWideBvhWidth) break;  // all leaves
    const BvhNode& node = bin_nodes[frontier[expand]];
    frontier[expand] = node.left;
    area[expand] = entry_area(node.left);
    frontier[size] = node.right;
    area[size] = entry_area(node.right);
    ++size;
  }
  return size;
}

/// Copies the frontier's binary bounds into one wide node's SoA lanes and
/// inverts the unused slots.
void fill_bounds(WideBvhNode& node, std::span<const BvhNode> bin_nodes,
                 const SlotSources& src) {
  constexpr float kInf = std::numeric_limits<float>::infinity();
  for (std::uint32_t i = 0; i < node.count; ++i) {
    const Aabb& b = bin_nodes[src[i]].bounds;
    node.minx[i] = b.lo.x;
    node.miny[i] = b.lo.y;
    node.minz[i] = b.lo.z;
    node.maxx[i] = b.hi.x;
    node.maxy[i] = b.hi.y;
    node.maxz[i] = b.hi.z;
  }
  for (std::uint32_t i = node.count; i < kWideBvhWidth; ++i) {
    node.minx[i] = node.miny[i] = node.minz[i] = kInf;
    node.maxx[i] = node.maxy[i] = node.maxz[i] = -kInf;
  }
}

}  // namespace

void WideBvh::build(const Bvh& source) {
  nodes_.clear();
  compressed_nodes_.clear();
  leaves_.clear();
  slot_sources_.clear();
  ordered_prim_aabbs_.clear();
  max_depth_ = 0;
  prim_order_.assign(source.prim_order().begin(), source.prim_order().end());
  prim_aabbs_.assign(source.prim_aabbs().begin(), source.prim_aabbs().end());
  source_node_count_ = static_cast<std::uint32_t>(source.nodes().size());
  if (source.empty()) return;

  const std::span<const BvhNode> bin_nodes = source.nodes();

  // Phase 1 (serial): topology. BFS over wide nodes keeps parents adjacent
  // to children in memory. Each queue entry is a wide node to fill; its
  // frontier collapse allocates the children. Single-threaded builds fill
  // the SoA bounds inline while the binary nodes are cache-hot; parallel
  // builds defer the fill (the bulk of the writes) to phase 2.
  const bool inline_fill = num_threads() <= 1;
  struct Pending {
    std::uint32_t bin_root;
    std::uint32_t wide_index;
    std::uint32_t depth;
  };
  // Capacity up front: growth reallocations are expensive at 256 B/node.
  // For leaf_size 1 the collapse lands near one wide node per 2.5 binary
  // leaves; a quarter of the binary node count covers that with slack.
  const std::size_t node_estimate = bin_nodes.size() / 4 + 2;
  std::vector<Pending> queue;
  queue.reserve(node_estimate);
  queue.push_back({source.root(), 0, 0});
  // Slot sources are recorded for every node: the parallel bounds fill
  // consumes them now, refit_from() consumes them for the tree's lifetime.
  slot_sources_.reserve(node_estimate);
  nodes_.reserve(node_estimate);
  leaves_.reserve((bin_nodes.size() + 1) / 2);
  nodes_.emplace_back();
  slot_sources_.emplace_back();

  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Pending p = queue[head];
    max_depth_ = std::max(max_depth_, p.depth);

    SlotSources frontier{};
    std::uint32_t size;
    const BvhNode& bin_root = bin_nodes[p.bin_root];
    if (bin_root.is_leaf()) {
      frontier[0] = p.bin_root;  // degenerate tree: the root itself is a leaf
      size = 1;
    } else {
      frontier[0] = bin_root.left;
      frontier[1] = bin_root.right;
      size = collapse_frontier(bin_nodes, frontier, 2);
    }

    // Allocate children before touching nodes_[p.wide_index]: emplace_back
    // below may reallocate the node array.
    SlotSources children;
    children.fill(WideBvhNode::kEmptyChild);
    for (std::uint32_t i = 0; i < size; ++i) {
      const BvhNode& bin = bin_nodes[frontier[i]];
      if (bin.is_leaf()) {
        children[i] =
            WideBvhNode::kLeafBit | static_cast<std::uint32_t>(leaves_.size());
        leaves_.push_back({bin.first, bin.count});
      } else {
        const auto child_index = static_cast<std::uint32_t>(nodes_.size());
        children[i] = child_index;
        nodes_.emplace_back();
        slot_sources_.emplace_back();
        queue.push_back({frontier[i], child_index, p.depth + 1});
      }
    }

    WideBvhNode& node = nodes_[p.wide_index];
    node.count = size;
    std::copy(children.begin(), children.end(), node.child);
    slot_sources_[p.wide_index] = frontier;
    if (inline_fill) fill_bounds(node, bin_nodes, frontier);
  }
  if (!inline_fill) {
    // Phase 2 (parallel): the SoA bounds fill — the bulk of the writes.
    parallel_for(0, static_cast<std::int64_t>(nodes_.size()), [&](std::int64_t ni) {
      fill_bounds(nodes_[static_cast<std::size_t>(ni)], bin_nodes,
                  slot_sources_[static_cast<std::size_t>(ni)]);
    }, grain::kElementwise / kWideBvhWidth);
  }
  compress_nodes();
  refresh_ordered_prims();
}

void WideBvh::refit_from(const Bvh& source) {
  RTNN_CHECK(static_cast<std::uint32_t>(source.nodes().size()) == source_node_count_ &&
                 source.prim_count() == prim_count(),
             "refit_from requires the Bvh this WideBvh was collapsed from");
  if (nodes_.empty()) return;
  RTNN_DCHECK(std::equal(prim_order_.begin(), prim_order_.end(),
                         source.prim_order().begin()),
              "source primitive order diverged from the collapse");

  // Only boxes change: refresh the primitive snapshot and rewrite every
  // node's SoA lanes from the recorded collapse frontier. No topology
  // decisions, no allocation — a flat parallel copy.
  const std::span<const BvhNode> bin_nodes = source.nodes();
  const std::span<const Aabb> moved = source.prim_aabbs();
  std::copy(moved.begin(), moved.end(), prim_aabbs_.begin());
  parallel_for(0, static_cast<std::int64_t>(nodes_.size()), [&](std::int64_t ni) {
    fill_bounds(nodes_[static_cast<std::size_t>(ni)], bin_nodes,
                slot_sources_[static_cast<std::size_t>(ni)]);
  }, grain::kElementwise / kWideBvhWidth);
  compress_nodes();
  refresh_ordered_prims();
}

void WideBvh::refresh_ordered_prims() {
  ordered_prim_aabbs_.resize(prim_aabbs_.size());
  parallel_for(0, static_cast<std::int64_t>(prim_order_.size()), [&](std::int64_t si) {
    const auto s = static_cast<std::size_t>(si);
    ordered_prim_aabbs_[s] = prim_aabbs_[prim_order_[s]];
  }, grain::kElementwise);
}

namespace {

/// Shared-array footprint: leaf records plus the primitive snapshot, which
/// both node layouts reference unchanged.
std::uint64_t shared_index_bytes(std::span<const WideLeaf> leaves,
                                 std::span<const std::uint32_t> prim_order,
                                 std::span<const Aabb> prim_aabbs) {
  return static_cast<std::uint64_t>(leaves.size_bytes()) +
         static_cast<std::uint64_t>(prim_order.size_bytes()) +
         static_cast<std::uint64_t>(prim_aabbs.size_bytes());
}

}  // namespace

WideBvhStats WideBvh::stats() const {
  WideBvhStats s;
  s.node_count = static_cast<std::uint32_t>(nodes_.size());
  s.leaf_count = static_cast<std::uint32_t>(leaves_.size());
  s.max_depth = max_depth_;
  s.node_bytes = static_cast<std::uint64_t>(nodes_.size()) * sizeof(WideBvhNode);
  s.total_index_bytes =
      s.node_bytes + shared_index_bytes(leaves_, prim_order_, prim_aabbs_);
  if (nodes_.empty()) return s;
  std::uint64_t children = 0;
  for (const WideBvhNode& n : nodes_) children += n.count;
  s.avg_children = static_cast<double>(children) / static_cast<double>(nodes_.size());
  return s;
}

WideBvhStats WideBvh::compressed_stats() const {
  WideBvhStats s = stats();
  s.node_bytes =
      static_cast<std::uint64_t>(compressed_nodes_.size()) * sizeof(CompressedWideNode);
  // The compressed traversal additionally owns the leaf-slot-ordered
  // primitive snapshot its exact re-test streams through.
  s.total_index_bytes =
      s.node_bytes + shared_index_bytes(leaves_, prim_order_, prim_aabbs_) +
      static_cast<std::uint64_t>(ordered_prim_aabbs_.size()) * sizeof(Aabb);
  return s;
}

void WideBvh::validate() const {
  if (nodes_.empty()) {
    RTNN_CHECK(prim_aabbs_.empty(), "empty wide tree but primitives present");
    RTNN_CHECK(leaves_.empty(), "empty wide tree but leaves present");
    return;
  }
  const auto n_prims = static_cast<std::uint32_t>(prim_aabbs_.size());
  RTNN_CHECK(prim_order_.size() == n_prims, "prim_order size mismatch");

  auto slot_bounds = [](const WideBvhNode& node, std::uint32_t i) {
    return Aabb{{node.minx[i], node.miny[i], node.minz[i]},
                {node.maxx[i], node.maxy[i], node.maxz[i]}};
  };

  std::vector<std::uint32_t> slot_seen(n_prims, 0);
  std::vector<std::uint8_t> node_seen(nodes_.size(), 0);
  std::vector<std::uint8_t> leaf_seen(leaves_.size(), 0);
  std::vector<std::uint32_t> stack{root()};
  while (!stack.empty()) {
    const std::uint32_t ni = stack.back();
    stack.pop_back();
    RTNN_CHECK(ni < nodes_.size(), "wide child index out of range");
    RTNN_CHECK(!node_seen[ni], "wide node reachable twice (cycle or DAG)");
    node_seen[ni] = 1;
    const WideBvhNode& node = nodes_[ni];
    RTNN_CHECK(node.count >= 1 && node.count <= kWideBvhWidth,
               "wide node child count out of range");
    for (std::uint32_t i = 0; i < kWideBvhWidth; ++i) {
      if (i >= node.count) {
        RTNN_CHECK(node.child[i] == WideBvhNode::kEmptyChild,
                   "unused slot not marked empty");
        RTNN_CHECK(slot_bounds(node, i).empty(), "unused slot bounds not inverted");
        continue;
      }
      const Aabb bounds = slot_bounds(node, i);
      RTNN_CHECK(!bounds.empty(), "valid slot with empty bounds");
      const std::uint32_t child = node.child[i];
      if (child & WideBvhNode::kLeafBit) {
        const std::uint32_t li = child & ~WideBvhNode::kLeafBit;
        RTNN_CHECK(li < leaves_.size(), "leaf index out of range");
        RTNN_CHECK(!leaf_seen[li], "leaf referenced twice");
        leaf_seen[li] = 1;
        const WideLeaf& leaf = leaves_[li];
        RTNN_CHECK(leaf.count >= 1, "empty leaf range");
        RTNN_CHECK(leaf.first + leaf.count <= n_prims, "leaf slot range out of bounds");
        for (std::uint32_t s = leaf.first; s < leaf.first + leaf.count; ++s) {
          const std::uint32_t prim = prim_order_[s];
          RTNN_CHECK(prim < n_prims, "primitive id out of range");
          ++slot_seen[prim];
          RTNN_CHECK(bounds.contains(prim_aabbs_[prim]),
                     "leaf slot bounds do not contain primitive AABB");
        }
      } else {
        RTNN_CHECK(child < nodes_.size(), "interior child index out of range");
        // The slot's box must cover everything reachable through the child
        // node — its slots' union is exactly the child subtree's bounds.
        const WideBvhNode& child_node = nodes_[child];
        Aabb child_union;
        for (std::uint32_t j = 0; j < child_node.count; ++j) {
          child_union.grow(slot_bounds(child_node, j));
        }
        RTNN_CHECK(bounds.contains(child_union),
                   "interior slot bounds do not contain child subtree");
        stack.push_back(child);
      }
    }
  }
  for (std::uint32_t p = 0; p < n_prims; ++p) {
    RTNN_CHECK(slot_seen[p] == 1, "primitive not in exactly one wide leaf");
  }
  for (std::size_t l = 0; l < leaves_.size(); ++l) {
    RTNN_CHECK(leaf_seen[l], "unreachable leaf record");
  }

  // Compressed mirror: same shape node-for-node, dequantized boxes contain
  // the FP32 slot boxes (the conservativeness traversal exactness rests
  // on), and the narrowed metadata reconstructs the full child table.
  RTNN_CHECK(compressed_nodes_.size() == nodes_.size(),
             "compressed mirror out of sync with the FP32 nodes");
  for (std::size_t ni = 0; ni < nodes_.size(); ++ni) {
    const WideBvhNode& node = nodes_[ni];
    const CompressedWideNode& cn = compressed_nodes_[ni];
    RTNN_CHECK(cn.count == node.count, "compressed node child count mismatch");
    for (std::uint32_t i = 0; i < kWideBvhWidth; ++i) {
      if (i >= node.count) {
        // Inverted lane pattern; traversal masks unused slots regardless
        // (the decoded box may degenerate to a point when 255 * 2^exp
        // underflows against the anchor's magnitude).
        RTNN_CHECK(cn.qlox[i] == 255 && cn.qhix[i] == 0,
                   "compressed unused slot lanes not inverted");
        continue;
      }
      const Aabb decoded = dequantize_slot(cn, i);
      RTNN_CHECK(decoded.contains(slot_bounds(node, i)),
                 "dequantized slot box does not contain its FP32 box");
      const std::uint32_t child = node.child[i];
      if (child & WideBvhNode::kLeafBit) {
        RTNN_CHECK(cn.is_leaf_slot(i) &&
                       cn.leaf_index(i) == (child & ~WideBvhNode::kLeafBit),
                   "compressed leaf reference does not reconstruct");
      } else {
        RTNN_CHECK(!cn.is_leaf_slot(i) && cn.child_index(i) == child,
                   "compressed interior reference does not reconstruct");
      }
    }
  }

  // The leaf-slot-ordered snapshot the compressed re-test streams must be
  // an exact permuted copy of the primitive AABBs.
  RTNN_CHECK(ordered_prim_aabbs_.size() == prim_order_.size(),
             "ordered primitive snapshot out of sync");
  for (std::size_t s = 0; s < prim_order_.size(); ++s) {
    const Aabb& a = ordered_prim_aabbs_[s];
    const Aabb& b = prim_aabbs_[prim_order_[s]];
    RTNN_CHECK(a.lo.x == b.lo.x && a.lo.y == b.lo.y && a.lo.z == b.lo.z &&
                   a.hi.x == b.hi.x && a.hi.y == b.hi.y && a.hi.z == b.hi.z,
               "ordered primitive snapshot diverged from prim_aabbs");
  }
}

}  // namespace rtnn::rt
