#include "rtcore/cache_sim.hpp"

#include <bit>

#include "core/error.hpp"

namespace rtnn::rt {

Cache::Cache(const CacheConfig& config) : config_(config) {
  RTNN_CHECK(config.line_bytes > 0 && std::has_single_bit(config.line_bytes),
             "line size must be a power of two");
  RTNN_CHECK(config.ways > 0, "associativity must be positive");
  const std::uint32_t lines = config.size_bytes / config.line_bytes;
  RTNN_CHECK(lines >= config.ways, "cache smaller than one set");
  num_sets_ = lines / config.ways;
  RTNN_CHECK(std::has_single_bit(num_sets_), "number of sets must be a power of two");
  lines_.resize(static_cast<std::size_t>(num_sets_) * config.ways);
}

bool Cache::access(std::uint64_t address) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t line_addr = address / config_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr & (num_sets_ - 1));
  const std::uint64_t tag = line_addr >> std::countr_zero(num_sets_);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];

  Line* victim = base;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      ++stats_.hits;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

void Cache::reset() {
  for (Line& line : lines_) line = Line{};
  stats_ = CacheStats{};
  tick_ = 0;
}

}  // namespace rtnn::rt
