// Two-level acceleration structure (TLAS over per-tile BLASes).
//
// The monolithic index rebuilds or refits wholesale: one moving vehicle in
// a city-scale cloud pays an O(N) index update every frame. The TLAS/BLAS
// idiom of the real RT stack — instances under a top-level BVH — fixes
// that by making index maintenance *local*:
//
//   * the cloud is split into spatially compact tiles (the caller supplies
//     the membership — Morton-contiguous runs from the sharding planner);
//   * each tile owns a bottom-level index (binary `Bvh` + its 8-wide
//     `WideBvh` mirror, exactly the monolithic build product, just
//     tile-local);
//   * a small top-level binary BVH over the tight tile AABBs culls whole
//     tiles before a ray ever touches a bottom-level node.
//
// Traversal (rt::trace over a TiledBvh, traversal.hpp) walks the top tree
// and runs the ordinary wide/compressed BLAS walk inside each intersected
// tile, remapping tile-local primitive ids back to the caller's global
// ids. Candidate sets match the monolithic path: a tile's bounds contain
// every member AABB, so top-level culling can only skip tiles the ray
// provably misses — the same conservative argument as any interior BVH
// node.
//
// Update (update()) is where the two-level shape pays off: each tile
// bitwise-compares its members' positions, and only *touched* tiles do any
// work — refit or rebuild, decided per tile by the caller's policy
// callback (the rtnn cost model, kept out of this layer). Untouched tiles
// are shared with previous snapshots; touched tiles are replaced, never
// mutated, so handles copied before the update keep answering the old
// frame (the same copy-on-write contract as ox::Accel).
//
// Tiles may be built lazily (build-on-first-route): an unbuilt tile holds
// only its members and bounds until the first ray — or an explicit
// ensure_* call — reaches it. This is the out-of-core stepping stone: an
// index whose resident bytes track the *routed* working set, not the
// cloud size. Lazy build is thread-safe and idempotent (double-checked
// atomic publish), so concurrent readers of a shared snapshot may race to
// build the same tile and agree on the winner.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/aabb.hpp"
#include "core/vec3.hpp"
#include "rtcore/bvh.hpp"
#include "rtcore/wide_bvh.hpp"

namespace rtnn::rt {

/// The two ways a touched tile absorbs a frame of motion (the per-tile
/// analog of the monolithic refit-vs-rebuild decision).
enum class TileUpdate : std::uint8_t { kRefit, kRebuild };

/// Per-tile refit-vs-rebuild policy: given the observed SAH inflation of
/// the tile's current index, decide how it absorbs this frame's motion.
/// Supplied by the caller (rtnn wraps its cost model's
/// choose_index_update) so rtcore stays free of cost-model knowledge.
using TileUpdatePolicy = std::function<TileUpdate(double sah_inflation)>;

struct TiledBuildOptions {
  /// Primitives per BLAS leaf (1 = the RTNN configuration).
  std::uint32_t leaf_size = 1;
  /// Defer every tile's BLAS build to its first routed ray (or an
  /// explicit ensure call). false = build all tiles at build() time.
  bool lazy_build = false;
};

/// What one update() did, for the caller's per-frame accounting. The
/// touched count is the locality headline: touched / tile_count is the
/// fraction of the index a frame of motion actually paid for.
struct TiledUpdateStats {
  std::uint32_t tiles_touched = 0;   // tiles whose member positions changed
  std::uint32_t tile_refits = 0;     // touched + built, policy chose refit
  std::uint32_t tile_rebuilds = 0;   // touched + built, policy chose rebuild
  double refit_seconds = 0.0;        // wall time of the per-tile refits
  double build_seconds = 0.0;        // wall time of the per-tile rebuilds
};

/// Aggregate footprint of the two-level index: the byte gauges sum the
/// *built* tiles only (a lazy index's resident footprint is the routed
/// working set), in whichever node layout the caller traverses.
struct TiledBvhStats {
  std::uint32_t tile_count = 0;
  std::uint32_t built_tiles = 0;
  std::uint64_t node_bytes = 0;         // sum of built tiles' node arrays
  std::uint64_t total_index_bytes = 0;  // + their leaf/prim arrays
};

/// The two-level build product. Copyable: copies share every tile (and
/// the immutable top tree) until an update() replaces the touched ones —
/// per-tile copy-on-write, so snapshot/publish hand-offs stay cheap no
/// matter how large the cloud is.
class TiledBvh {
 public:
  /// One tile's bottom-level index: the same pair every monolithic accel
  /// holds, built over the tile's member AABBs in member order (local
  /// prim id i = slot i of the tile's id list).
  struct TileIndex {
    Bvh bvh;
    WideBvh wide;
  };

  /// One spatial tile: its member point ids (global, fixed at build; the
  /// Morton-contiguous run the planner assigned), their current
  /// positions, tight bounds over the member AABBs, and the lazily built
  /// bottom-level index.
  class Tile {
   public:
    Tile() = default;

    std::span<const std::uint32_t> prim_ids() const { return prim_ids_; }
    std::span<const Vec3> positions() const { return positions_; }
    const Aabb& bounds() const { return bounds_; }

    /// The built index, or nullptr while the tile is still lazy.
    const TileIndex* index() const { return index_.load(std::memory_order_acquire); }

    /// The index, built on first use (the build-on-first-route step).
    /// Safe to call concurrently from traversal threads sharing a
    /// snapshot: one caller builds under the tile mutex, the rest reuse
    /// the published pointer.
    const TileIndex& ensure_index(float aabb_width, std::uint32_t leaf_size) const;

   private:
    friend class TiledBvh;

    /// Publishes an already-built index (eager builds and updates).
    void publish(std::shared_ptr<const TileIndex> index) {
      storage_ = std::move(index);
      index_.store(storage_.get(), std::memory_order_release);
    }

    std::vector<std::uint32_t> prim_ids_;
    std::vector<Vec3> positions_;
    Aabb bounds_;
    mutable std::mutex build_mutex_;                       // serializes lazy builds
    mutable std::shared_ptr<const TileIndex> storage_;     // owns the index
    mutable std::atomic<const TileIndex*> index_{nullptr}; // lock-free read side
  };

  TiledBvh() = default;

  /// Builds the two-level index: `tile_ids[t]` lists the global ids of
  /// tile t's points (a partition of [0, points.size())), every point
  /// boxed as Aabb::cube(position, aabb_width) exactly like the
  /// monolithic build. Empty tiles are dropped. With lazy_build the
  /// bottom-level indexes wait for their first ray; bounds are always
  /// computed eagerly (routing and top-level culling need them).
  void build(std::span<const Vec3> points, float aabb_width,
             std::span<const std::vector<std::uint32_t>> tile_ids,
             const TiledBuildOptions& options = {});

  /// Absorbs one frame of motion: `points` is the full global array (same
  /// count and ids as build()). Each tile bitwise-compares its members'
  /// positions; untouched tiles are kept (still shared with any earlier
  /// copy), touched tiles are *replaced* with a fresh tile whose index is
  /// refit or rebuilt per `policy` — or left unbuilt when it was unbuilt,
  /// the lazy index absorbing motion for free. The top-level tree is
  /// rebuilt over the re-tightened bounds (tile_count primitives — noise
  /// next to one BLAS).
  TiledUpdateStats update(std::span<const Vec3> points, const TileUpdatePolicy& policy);

  bool empty() const { return tiles_.empty(); }
  std::uint32_t tile_count() const { return static_cast<std::uint32_t>(tiles_.size()); }
  std::uint32_t built_tile_count() const;
  std::size_t prim_count() const { return point_count_; }
  float aabb_width() const { return width_; }
  std::uint32_t leaf_size() const { return leaf_size_; }

  /// The top-level binary BVH: primitive t is tile t (top().prim_order()
  /// maps leaf slots back to tile indices).
  const Bvh& top() const { return top_; }
  const Aabb& scene_bounds() const { return top_.scene_bounds(); }
  const Tile& tile(std::uint32_t t) const { return *tiles_[t]; }

  /// Builds every still-lazy tile (parallel over tiles). The eager entry
  /// point for callers that want build cost out of the first launch.
  void ensure_all_built() const;

  /// Footprint of the built tiles in the selected node layout.
  TiledBvhStats stats(bool compressed) const;

  /// Worst observed per-tile SAH inflation (1.0 when every built tile is
  /// fresh) — the quality signal the per-tile policy reacts to, surfaced
  /// for reports.
  double max_sah_inflation() const;

  /// Structural invariants (tests): tiles partition the ids, bounds
  /// contain the member AABBs, built tiles' indexes validate, and the top
  /// tree references each tile exactly once. Throws rtnn::Error.
  void validate() const;

 private:
  std::shared_ptr<Tile> make_tile(std::span<const Vec3> points,
                                  std::vector<std::uint32_t> ids) const;
  void rebuild_top();

  std::vector<std::shared_ptr<Tile>> tiles_;
  Bvh top_;
  float width_ = 0.0f;
  std::uint32_t leaf_size_ = 1;
  std::size_t point_count_ = 0;
};

}  // namespace rtnn::rt
