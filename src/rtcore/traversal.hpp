// BVH traversal engine — the RT-core substitute.
//
// Two execution models:
//
//  * kIndependent — every ray traverses on its own stack; rays are spread
//    across OpenMP threads. This is the fast path used for wall-clock
//    performance measurements.
//
//  * kWarpLockstep — rays are grouped into 32-lane warps that advance in
//    lockstep, the way the SIMT hardware schedules them (paper section
//    3.2.1: "OptiX groups every 32 adjacent rays generated in the RG
//    shader into a warp"). In each lockstep iteration every active lane
//    pops one node; lanes that popped *different* nodes serialize into
//    sub-steps (control-flow divergence), and each unique node fetch is
//    replayed through the cache simulator. Incoherent rays therefore cost
//    more sub-steps, idle more lane slots (lower occupancy) and miss the
//    caches more — exactly the effects of paper Figures 5 and 6.
//
// The `Program` template parameter plays the role of the compiled shader
// kernel: `program.intersect(ray_id, prim_id)` is the IS shader, invoked
// for each primitive whose AABB the ray intersects; returning
// TraceAction::kTerminate is the AH shader's optixTerminateRay (used by
// RTNN when K neighbors have been found, and by the scheduling pass to
// stop at the first hit).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>

#include "core/aabb.hpp"
#include "core/error.hpp"
#include "core/parallel.hpp"
#include "rtcore/bvh.hpp"
#include "rtcore/cache_sim.hpp"
#include "rtcore/launch_stats.hpp"

namespace rtnn::rt {

enum class TraceAction : std::uint8_t { kContinue = 0, kTerminate = 1 };

enum class ExecutionModel : std::uint8_t { kIndependent = 0, kWarpLockstep = 1 };

struct TraceConfig {
  ExecutionModel model = ExecutionModel::kIndependent;
  /// Run the launch across threads. Disable for bit-exact cache-simulation
  /// experiments (one shared memory hierarchy).
  bool parallel = true;
  /// Attach the cache simulator to node/primitive fetches (SIMT mode only;
  /// adds overhead, meant for characterization runs).
  bool simulate_caches = false;
  CacheConfig l1{64 * 1024, 128, 4};
  CacheConfig l2{4 * 1024 * 1024, 128, 16};
  /// Collect LaunchStats counters. Disabling removes the accounting from
  /// the hot loop for pure wall-clock runs.
  bool collect_stats = true;
};

namespace detail {

constexpr std::uint32_t kMaxStackDepth = 128;
constexpr std::uint32_t kWarpSize = 32;
// Pretend-device addresses for the cache simulator: BVH nodes and
// primitive AABBs live in distinct regions with GPU-like strides.
constexpr std::uint64_t kNodeStride = 64;
constexpr std::uint64_t kPrimRegionBase = std::uint64_t{1} << 40;
constexpr std::uint64_t kPrimStride = 32;

/// Per-ray traversal state for the lockstep engine.
struct LaneState {
  std::uint32_t stack[kMaxStackDepth];
  std::uint32_t sp = 0;
  std::uint32_t ray_id = 0;
  bool terminated = false;

  bool active() const { return !terminated && sp > 0; }
};

template <typename Program>
TraceAction process_leaf(const Bvh& bvh, const BvhNode& node, const Ray& ray,
                         std::uint32_t ray_id, Program& program, LaunchStats* stats,
                         MemoryHierarchy* mem) {
  const auto prim_order = bvh.prim_order();
  const auto prim_aabbs = bvh.prim_aabbs();
  for (std::uint32_t s = node.first; s < node.first + node.count; ++s) {
    const std::uint32_t prim = prim_order[s];
    if (mem) mem->access(kPrimRegionBase + prim * kPrimStride);
    if (stats) ++stats->aabb_tests;
    if (!ray_intersects_aabb(ray, prim_aabbs[prim])) continue;
    if (stats) ++stats->is_calls;
    if (program.intersect(ray_id, prim) == TraceAction::kTerminate) {
      return TraceAction::kTerminate;
    }
  }
  return TraceAction::kContinue;
}

/// Classic single-ray stack traversal.
template <typename Program>
void trace_one(const Bvh& bvh, const Ray& ray, std::uint32_t ray_id, Program& program,
               LaunchStats* stats) {
  if (bvh.empty()) return;
  std::uint32_t stack[kMaxStackDepth];
  std::uint32_t sp = 0;
  stack[sp++] = bvh.root();
  const auto nodes = bvh.nodes();
  while (sp > 0) {
    const BvhNode& node = nodes[stack[--sp]];
    if (stats) {
      ++stats->node_visits;
      ++stats->aabb_tests;
    }
    if (!ray_intersects_aabb(ray, node.bounds)) continue;
    if (node.is_leaf()) {
      if (process_leaf(bvh, node, ray, ray_id, program, stats, nullptr) ==
          TraceAction::kTerminate) {
        if (stats) ++stats->terminated_rays;
        return;
      }
    } else {
      RTNN_DCHECK(sp + 2 <= kMaxStackDepth, "traversal stack overflow");
      stack[sp++] = node.left;
      stack[sp++] = node.right;
    }
  }
}

/// Lockstep traversal of one warp of (up to 32) rays.
template <typename Program>
void trace_warp(const Bvh& bvh, std::span<const Ray> rays, std::uint32_t first_ray,
                std::uint32_t lane_count, Program& program, LaunchStats& stats,
                MemoryHierarchy* mem) {
  LaneState lanes[kWarpSize];
  for (std::uint32_t l = 0; l < lane_count; ++l) {
    lanes[l].ray_id = first_ray + l;
    lanes[l].stack[lanes[l].sp++] = bvh.root();
  }
  ++stats.warps;
  const auto nodes = bvh.nodes();

  for (;;) {
    // Each active lane pops its next node; the warp then serializes over
    // the set of distinct nodes popped this iteration.
    std::uint32_t popped[kWarpSize];
    std::uint32_t active_lanes[kWarpSize];
    std::uint32_t n_active = 0;
    for (std::uint32_t l = 0; l < lane_count; ++l) {
      if (!lanes[l].active()) continue;
      popped[n_active] = lanes[l].stack[--lanes[l].sp];
      active_lanes[n_active] = l;
      ++n_active;
    }
    if (n_active == 0) break;
    ++stats.warp_iterations;

    std::uint32_t done[kWarpSize] = {};  // lanes already handled this iteration
    for (std::uint32_t i = 0; i < n_active; ++i) {
      if (done[i]) continue;
      const std::uint32_t node_id = popped[i];
      // One serialized sub-step: every lane that wants this node executes
      // together. Each lane issues its own node fetch — lanes sharing the
      // line hit in cache, which is how coalescing shows up as the high
      // hit rates of coherent warps (paper Figure 6).
      ++stats.warp_substeps;
      const BvhNode& node = nodes[node_id];
      for (std::uint32_t j = i; j < n_active; ++j) {
        if (done[j] || popped[j] != node_id) continue;
        done[j] = 1;
        ++stats.active_lane_slots;
        if (mem) mem->access(node_id * kNodeStride);
        LaneState& lane = lanes[active_lanes[j]];
        ++stats.node_visits;
        ++stats.aabb_tests;
        const Ray& ray = rays[lane.ray_id];
        if (!ray_intersects_aabb(ray, node.bounds)) continue;
        if (node.is_leaf()) {
          if (process_leaf(bvh, node, ray, lane.ray_id, program, &stats, mem) ==
              TraceAction::kTerminate) {
            lane.terminated = true;
            ++stats.terminated_rays;
          }
        } else {
          RTNN_DCHECK(lane.sp + 2 <= kMaxStackDepth, "traversal stack overflow");
          lane.stack[lane.sp++] = node.left;
          lane.stack[lane.sp++] = node.right;
        }
      }
    }
  }
}

}  // namespace detail

/// Launches `rays` against `bvh`, invoking `program.intersect(ray_id,
/// prim_id)` per candidate primitive. The Program object must be safe to
/// call concurrently for different ray_ids (each ray writes its own
/// output slots, the same contract a CUDA kernel has).
template <typename Program>
LaunchStats trace(const Bvh& bvh, std::span<const Ray> rays, Program& program,
                  const TraceConfig& config = {}) {
  LaunchStats total;
  total.rays = rays.size();
  if (rays.empty() || bvh.empty()) return total;

  std::mutex merge_mutex;
  const auto n = static_cast<std::int64_t>(rays.size());

  if (config.model == ExecutionModel::kIndependent) {
    RTNN_CHECK(!config.simulate_caches,
               "cache simulation requires the warp-lockstep execution model");
    const std::int64_t grain = 512;
    auto run_chunk = [&](std::int64_t lo, std::int64_t hi) {
      LaunchStats local;
      LaunchStats* stats = config.collect_stats ? &local : nullptr;
      for (std::int64_t i = lo; i < hi; ++i) {
        detail::trace_one(bvh, rays[static_cast<std::size_t>(i)],
                          static_cast<std::uint32_t>(i), program, stats);
      }
      if (config.collect_stats) {
        const std::lock_guard<std::mutex> lock(merge_mutex);
        total += local;
      }
    };
    if (config.parallel) {
      parallel_for_chunks(0, n, run_chunk, grain);
    } else {
      run_chunk(0, n);
    }
    return total;
  }

  // Warp-lockstep model.
  const std::int64_t n_warps =
      (n + detail::kWarpSize - 1) / static_cast<std::int64_t>(detail::kWarpSize);
  auto run_warps = [&](std::int64_t lo, std::int64_t hi) {
    LaunchStats local;
    std::optional<MemoryHierarchy> mem;
    if (config.simulate_caches) mem.emplace(config.l1, config.l2);
    for (std::int64_t w = lo; w < hi; ++w) {
      const auto first = static_cast<std::uint32_t>(w * detail::kWarpSize);
      const auto lanes = static_cast<std::uint32_t>(
          std::min<std::int64_t>(detail::kWarpSize, n - first));
      detail::trace_warp(bvh, rays, first, lanes, program, local,
                         mem ? &*mem : nullptr);
    }
    if (mem) {
      local.l1 = mem->l1_stats();
      local.l2 = mem->l2_stats();
    }
    const std::lock_guard<std::mutex> lock(merge_mutex);
    total += local;
  };
  if (config.parallel) {
    parallel_for_chunks(0, n_warps, run_warps, 8);
  } else {
    run_warps(0, n_warps);
  }
  return total;
}

/// Convenience for tests: trace a single ray with stats.
template <typename Program>
LaunchStats trace_ray(const Bvh& bvh, const Ray& ray, Program& program) {
  LaunchStats stats;
  stats.rays = 1;
  detail::trace_one(bvh, ray, 0, program, &stats);
  return stats;
}

}  // namespace rtnn::rt
