// BVH traversal engine — the RT-core substitute.
//
// Two execution models:
//
//  * kIndependent — every ray traverses on its own stack; rays are spread
//    across OpenMP threads. This is the fast path used for wall-clock
//    performance measurements. It traverses either the binary LBVH or —
//    the production configuration — the flattened 8-wide SoA WideBvh,
//    where one ray-vs-node step tests all eight child AABBs with AVX2
//    (scalar fallback when built with RTNN_ENABLE_AVX2=OFF). Rays are
//    batched into chunks that reuse one per-thread traversal stack, and
//    chunks inherit the caller's Morton ordering so consecutive rays walk
//    overlapping subtrees.
//
//  * kWarpLockstep — rays are grouped into 32-lane warps that advance in
//    lockstep, the way the SIMT hardware schedules them (paper section
//    3.2.1: "OptiX groups every 32 adjacent rays generated in the RG
//    shader into a warp"). In each lockstep iteration every active lane
//    pops one node; lanes that popped *different* nodes serialize into
//    sub-steps (control-flow divergence), and each unique node fetch is
//    replayed through the cache simulator. Incoherent rays therefore cost
//    more sub-steps, idle more lane slots (lower occupancy) and miss the
//    caches more — exactly the effects of paper Figures 5 and 6. This
//    model always walks the binary BVH so its step/cache/occupancy
//    figures stay bit-identical to the hardware characterization.
//
// Stats are accumulated in per-worker slots (StatsAccumulator) and summed
// once per launch — no locks on the hot path.
//
// The `Program` template parameter plays the role of the compiled shader
// kernel: `program.intersect(ray_id, prim_id)` is the IS shader, invoked
// for each primitive whose AABB the ray intersects; returning
// TraceAction::kTerminate is the AH shader's optixTerminateRay (used by
// RTNN when K neighbors have been found, and by the scheduling pass to
// stop at the first hit).
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <span>

#ifdef RTNN_HAVE_AVX2
#include <immintrin.h>
#endif

#include "core/aabb.hpp"
#include "core/error.hpp"
#include "core/parallel.hpp"
#include "rtcore/bvh.hpp"
#include "rtcore/cache_sim.hpp"
#include "rtcore/launch_stats.hpp"
#include "rtcore/tlas.hpp"
#include "rtcore/wide_bvh.hpp"

namespace rtnn::rt {

enum class TraceAction : std::uint8_t { kContinue = 0, kTerminate = 1 };

enum class ExecutionModel : std::uint8_t { kIndependent = 0, kWarpLockstep = 1 };

struct TraceConfig {
  ExecutionModel model = ExecutionModel::kIndependent;
  /// Run the launch across threads. Disable for bit-exact cache-simulation
  /// experiments (one shared memory hierarchy).
  bool parallel = true;
  /// Attach the cache simulator to node/primitive fetches. Supported by
  /// the warp-lockstep model (the paper-characterization path) and by the
  /// wide-BVH independent overload, where it models each node layout's
  /// real byte footprint (256 B FP32 vs 80 B compressed). Adds overhead;
  /// meant for characterization runs.
  bool simulate_caches = false;
  CacheConfig l1{64 * 1024, 128, 4};
  CacheConfig l2{4 * 1024 * 1024, 128, 16};
  /// Collect LaunchStats counters. Disabling removes the accounting from
  /// the hot loop for pure wall-clock runs.
  bool collect_stats = true;
  /// Wide-BVH overload only: traverse the quantized compressed mirror
  /// instead of the FP32 SoA nodes. Candidate sets (and the IS-call
  /// sequence) are identical by construction; only the memory footprint
  /// changes. Off by default at this layer — the rt:: API stays explicit,
  /// and the production default lives in ox::LaunchOptions.
  bool use_compressed = false;
};

/// Software prefetch for the traversal inner loop: read-intent, keep in
/// all cache levels. A hint only — no-op where unsupported.
#if defined(__GNUC__) || defined(__clang__)
#define RTNN_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define RTNN_PREFETCH(addr) ((void)0)
#endif

namespace detail {

constexpr std::uint32_t kMaxStackDepth = 128;
/// The wide stack holds up to (width-1) net pushes per level.
constexpr std::uint32_t kWideStackDepth = (kWideBvhWidth - 1) * kMaxStackDepth + 1;
constexpr std::uint32_t kWarpSize = 32;
// Pretend-device addresses for the cache simulator: BVH nodes and
// primitive AABBs live in distinct regions with GPU-like strides.
constexpr std::uint64_t kNodeStride = 64;
constexpr std::uint64_t kPrimRegionBase = std::uint64_t{1} << 40;
constexpr std::uint64_t kPrimStride = 32;
// The compressed traversal's exact re-test streams a leaf-slot-ordered
// copy of the primitive AABBs — contiguous, packed at sizeof(Aabb), in its
// own region so the simulator sees it as the distinct array it is.
constexpr std::uint64_t kOrderedPrimRegionBase = std::uint64_t{1} << 41;
// Two-level traversal: the top-level tree's nodes live in their own
// region, and each tile's bottom-level arrays are offset by the tile's
// slice of the address space, so the simulator sees distinct tiles as the
// distinct allocations they are (per-tile working-set bytes stay honest).
constexpr std::uint64_t kTlasRegionBase = std::uint64_t{1} << 42;
constexpr std::uint64_t kTileRegionStride = std::uint64_t{1} << 33;

/// Per-ray traversal state for the lockstep engine.
struct LaneState {
  std::uint32_t stack[kMaxStackDepth];
  std::uint32_t sp = 0;
  std::uint32_t ray_id = 0;
  bool terminated = false;

  bool active() const { return !terminated && sp > 0; }
};

template <typename Program>
TraceAction process_leaf(const Bvh& bvh, const BvhNode& node, const Ray& ray,
                         std::uint32_t ray_id, Program& program, LaunchStats* stats,
                         MemoryHierarchy* mem) {
  const auto prim_order = bvh.prim_order();
  const auto prim_aabbs = bvh.prim_aabbs();
  for (std::uint32_t s = node.first; s < node.first + node.count; ++s) {
    const std::uint32_t prim = prim_order[s];
    if (mem) mem->access(kPrimRegionBase + prim * kPrimStride);
    if (stats) ++stats->aabb_tests;
    if (!ray_intersects_aabb(ray, prim_aabbs[prim])) continue;
    if (stats) ++stats->is_calls;
    if (program.intersect(ray_id, prim) == TraceAction::kTerminate) {
      return TraceAction::kTerminate;
    }
  }
  return TraceAction::kContinue;
}

/// Classic single-ray stack traversal.
template <typename Program>
void trace_one(const Bvh& bvh, const Ray& ray, std::uint32_t ray_id, Program& program,
               LaunchStats* stats) {
  if (bvh.empty()) return;
  std::uint32_t stack[kMaxStackDepth];
  std::uint32_t sp = 0;
  stack[sp++] = bvh.root();
  const auto nodes = bvh.nodes();
  while (sp > 0) {
    const BvhNode& node = nodes[stack[--sp]];
    if (stats) {
      ++stats->node_visits;
      ++stats->aabb_tests;
    }
    if (!ray_intersects_aabb(ray, node.bounds)) continue;
    if (node.is_leaf()) {
      if (process_leaf(bvh, node, ray, ray_id, program, stats, nullptr) ==
          TraceAction::kTerminate) {
        if (stats) ++stats->terminated_rays;
        return;
      }
    } else {
      RTNN_DCHECK(sp + 2 <= kMaxStackDepth, "traversal stack overflow");
      stack[sp++] = node.left;
      stack[sp++] = node.right;
    }
  }
}

/// Tests `ray` against all eight child slots of `node` in one step and
/// returns the bitmask of intersected slots (bit i = slot i). Must agree
/// bit-for-bit with ray_intersects_aabb on every slot box; empty slots may
/// report spurious hits and are masked off by the caller via valid_mask().
/// `inv_dir` is the precomputed 1/dir (±inf for zero components), hoisted
/// out of the per-node loop.
#ifdef RTNN_HAVE_AVX2
/// The 8-lane box test shared by both node layouts: lane i of each input
/// register holds child i's coordinate. Decision-identical to
/// ray_intersects_aabb per lane, including NaN semantics.
inline std::uint32_t simd_box_hits(__m256 minx, __m256 miny, __m256 minz,
                                   __m256 maxx, __m256 maxy, __m256 maxz,
                                   const Ray& ray, const Vec3& inv_dir) {
  const __m256 ox = _mm256_set1_ps(ray.origin.x);
  const __m256 oy = _mm256_set1_ps(ray.origin.y);
  const __m256 oz = _mm256_set1_ps(ray.origin.z);

  // Condition 2 of paper Figure 2: the origin lies inside the box.
  __m256 inside = _mm256_and_ps(_mm256_cmp_ps(ox, minx, _CMP_GE_OQ),
                                _mm256_cmp_ps(ox, maxx, _CMP_LE_OQ));
  inside = _mm256_and_ps(inside, _mm256_and_ps(_mm256_cmp_ps(oy, miny, _CMP_GE_OQ),
                                               _mm256_cmp_ps(oy, maxy, _CMP_LE_OQ)));
  inside = _mm256_and_ps(inside, _mm256_and_ps(_mm256_cmp_ps(oz, minz, _CMP_GE_OQ),
                                               _mm256_cmp_ps(oz, maxz, _CMP_LE_OQ)));

  // Condition 1: the slab test, with the scalar path's exact NaN
  // semantics. `tnear > tfar` with a NaN is false (no swap), and
  // vmaxps/vminps return their *second* operand when the first is NaN —
  // matching the scalar `t > t0 ? t : t0` that keeps t0.
  __m256 t0 = _mm256_set1_ps(ray.tmin);
  __m256 t1 = _mm256_set1_ps(ray.tmax);
  const auto slab_axis = [&](__m256 lo, __m256 hi, __m256 o, float inv) {
    const __m256 invv = _mm256_set1_ps(inv);
    const __m256 tn = _mm256_mul_ps(_mm256_sub_ps(lo, o), invv);
    const __m256 tf = _mm256_mul_ps(_mm256_sub_ps(hi, o), invv);
    const __m256 swap = _mm256_cmp_ps(tn, tf, _CMP_GT_OQ);
    const __m256 tnear = _mm256_blendv_ps(tn, tf, swap);
    const __m256 tfar = _mm256_blendv_ps(tf, tn, swap);
    t0 = _mm256_max_ps(tnear, t0);
    t1 = _mm256_min_ps(tfar, t1);
  };
  slab_axis(minx, maxx, ox, inv_dir.x);
  slab_axis(miny, maxy, oy, inv_dir.y);
  slab_axis(minz, maxz, oz, inv_dir.z);
  const __m256 slab = _mm256_cmp_ps(t0, t1, _CMP_LE_OQ);

  return static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_or_ps(inside, slab)));
}

inline std::uint32_t wide_node_hits(const WideBvhNode& node, const Ray& ray,
                                    const Vec3& inv_dir) {
  return simd_box_hits(_mm256_load_ps(node.minx), _mm256_load_ps(node.miny),
                       _mm256_load_ps(node.minz), _mm256_load_ps(node.maxx),
                       _mm256_load_ps(node.maxy), _mm256_load_ps(node.maxz),
                       ray, inv_dir);
}

/// Same contract against the quantized layout: dequantize the eight child
/// boxes, then run the identical box test. The dequantization here is
/// bitwise-identical to the scalar dequantize_slot(): uint8 -> int32 ->
/// float conversion is exact, the multiply by a power-of-two scale is
/// exact, and the single add rounds the same way — so AVX2 and scalar
/// builds agree bit-for-bit on every decoded bound, and the SIMD-vs-scalar
/// decision parity the FP32 path guarantees carries over. No FMA: -mavx2
/// alone does not license it, and contracting mul+add would change the
/// rounding against the scalar decoder.
inline std::uint32_t compressed_node_hits(const CompressedWideNode& node, const Ray& ray,
                                          const Vec3& inv_dir) {
  const auto dq = [](const std::uint8_t* q, __m256 anchor, __m256 scale) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    return _mm256_add_ps(_mm256_mul_ps(f, scale), anchor);
  };
  const __m256 ax = _mm256_set1_ps(node.anchor_x);
  const __m256 ay = _mm256_set1_ps(node.anchor_y);
  const __m256 az = _mm256_set1_ps(node.anchor_z);
  const __m256 sx = _mm256_set1_ps(quant_scale(node.exp_x));
  const __m256 sy = _mm256_set1_ps(quant_scale(node.exp_y));
  const __m256 sz = _mm256_set1_ps(quant_scale(node.exp_z));
  return simd_box_hits(dq(node.qlox, ax, sx), dq(node.qloy, ay, sy),
                       dq(node.qloz, az, sz), dq(node.qhix, ax, sx),
                       dq(node.qhiy, ay, sy), dq(node.qhiz, az, sz),
                       ray, inv_dir);
}
#else
inline std::uint32_t wide_node_hits(const WideBvhNode& node, const Ray& ray,
                                    const Vec3& inv_dir) {
  std::uint32_t mask = 0;
  for (std::uint32_t i = 0; i < kWideBvhWidth; ++i) {
    const Aabb box{{node.minx[i], node.miny[i], node.minz[i]},
                   {node.maxx[i], node.maxy[i], node.maxz[i]}};
    if (ray_intersects_aabb(ray, box, inv_dir)) mask |= 1u << i;
  }
  return mask;
}

inline std::uint32_t compressed_node_hits(const CompressedWideNode& node, const Ray& ray,
                                          const Vec3& inv_dir) {
  std::uint32_t mask = 0;
  for (std::uint32_t i = 0; i < kWideBvhWidth; ++i) {
    if (ray_intersects_aabb(ray, dequantize_slot(node, i), inv_dir)) mask |= 1u << i;
  }
  return mask;
}
#endif

/// Single-ray traversal of the 8-wide SoA BVH. `stack` is the caller's
/// reusable per-thread buffer (kWideStackDepth entries). `mem`, when
/// non-null, replays node/primitive fetches through the cache simulator at
/// this layout's real byte footprint.
///
/// Inner-loop micro-optimizations (shared with the compressed variant so
/// the two stay decision-order-identical):
///  * after each pop, the next stack entry's node line is prefetched — by
///    the time this node's 8-box test and leaf work retire, the next
///    node's first line is usually in flight;
///  * interior children are buffered and pushed in reverse slot order, so
///    pops proceed in ascending slot order — the BFS build allocates a
///    parent's children at consecutive indices, making consecutive pops
///    walk consecutive node addresses.
/// `mem_base` shifts every simulated address by a caller-chosen offset —
/// 0 for the monolithic index (byte-identical to before), or the tile's
/// region (kTileRegionStride slice) when this walk runs as a BLAS under
/// the two-level traversal, so distinct tiles' arrays never alias.
template <typename Program>
void trace_one_wide(const WideBvh& bvh, const Ray& ray, std::uint32_t ray_id,
                    Program& program, LaunchStats* stats, std::uint32_t* stack,
                    MemoryHierarchy* mem = nullptr, std::uint64_t mem_base = 0) {
  const auto nodes = bvh.nodes();
  const auto leaves = bvh.leaves();
  const auto prim_order = bvh.prim_order();
  const auto prim_aabbs = bvh.prim_aabbs();
  const Vec3 inv_dir = reciprocal_dir(ray);
  std::uint32_t sp = 0;
  stack[sp++] = bvh.root();
  while (sp > 0) {
    const std::uint32_t node_id = stack[--sp];
    if (sp > 0) RTNN_PREFETCH(&nodes[stack[sp - 1]]);
    const WideBvhNode& node = nodes[node_id];
    if (mem) {
      mem->access_range(mem_base + node_id * sizeof(WideBvhNode),
                        sizeof(WideBvhNode));
    }
    if (stats) {
      ++stats->node_visits;
      stats->aabb_tests += node.count;
    }
    std::uint32_t mask = wide_node_hits(node, ray, inv_dir) & node.valid_mask();
    std::uint32_t pushes[kWideBvhWidth];
    std::uint32_t n_push = 0;
    while (mask != 0) {
      const auto slot = static_cast<std::uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      const std::uint32_t child = node.child[slot];
      if (child & WideBvhNode::kLeafBit) {
        const WideLeaf leaf = leaves[child & ~WideBvhNode::kLeafBit];
        // Single-primitive leaves (the RTNN configuration) were already
        // tested: the slot box *is* the primitive's AABB. Wider leaves
        // re-test each primitive against the ray like the binary path.
        for (std::uint32_t s = leaf.first; s < leaf.first + leaf.count; ++s) {
          const std::uint32_t prim = prim_order[s];
          if (leaf.count > 1) {
            if (mem) {
              mem->access_range(mem_base + kPrimRegionBase + prim * kPrimStride,
                                sizeof(Aabb));
            }
            if (stats) ++stats->aabb_tests;
            if (!ray_intersects_aabb(ray, prim_aabbs[prim], inv_dir)) continue;
          }
          if (stats) ++stats->is_calls;
          if (program.intersect(ray_id, prim) == TraceAction::kTerminate) {
            if (stats) ++stats->terminated_rays;
            return;
          }
        }
      } else {
        pushes[n_push++] = child;
      }
    }
    RTNN_DCHECK(sp + n_push <= kWideStackDepth, "wide traversal stack overflow");
    for (std::uint32_t i = n_push; i > 0; --i) stack[sp++] = pushes[i - 1];
  }
}

/// Single-ray traversal of the compressed (quantized) wide layout. Same
/// shape as trace_one_wide with two deliberate differences: nodes are
/// decoded via compressed_node_hits, and *every* leaf primitive — even a
/// single-primitive leaf — is re-tested against its exact FP32 AABB.
/// Dequantized slot boxes are conservative supersets, so the slot hit
/// alone is not proof of a primitive hit; the exact re-test is what makes
/// candidate sets (and hence the IS-call sequence, including kTerminate
/// cut-offs) identical to the FP32 path: a spurious slot hit leads into a
/// subtree whose primitives the ray provably misses, contributing zero IS
/// calls. The re-test reads the leaf-slot-ordered AABB snapshot
/// (ordered_prim_aabbs), so the extra fetches stream contiguously in
/// traversal order instead of gathering through prim_order.
template <typename Program>
void trace_one_compressed(const WideBvh& bvh, const Ray& ray, std::uint32_t ray_id,
                          Program& program, LaunchStats* stats, std::uint32_t* stack,
                          MemoryHierarchy* mem = nullptr, std::uint64_t mem_base = 0) {
  const auto nodes = bvh.compressed_nodes();
  const auto leaves = bvh.leaves();
  const auto prim_order = bvh.prim_order();
  const auto ordered_prim_aabbs = bvh.ordered_prim_aabbs();
  const Vec3 inv_dir = reciprocal_dir(ray);
  std::uint32_t sp = 0;
  stack[sp++] = bvh.root();
  while (sp > 0) {
    const std::uint32_t node_id = stack[--sp];
    if (sp > 0) RTNN_PREFETCH(&nodes[stack[sp - 1]]);
    const CompressedWideNode& node = nodes[node_id];
    if (mem) {
      mem->access_range(mem_base + node_id * sizeof(CompressedWideNode),
                        sizeof(CompressedWideNode));
    }
    if (stats) {
      ++stats->node_visits;
      stats->aabb_tests += node.count;
    }
    std::uint32_t mask = compressed_node_hits(node, ray, inv_dir) & node.valid_mask();
    std::uint32_t pushes[kWideBvhWidth];
    std::uint32_t n_push = 0;
    while (mask != 0) {
      const auto slot = static_cast<std::uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      if (node.is_leaf_slot(slot)) {
        const WideLeaf leaf = leaves[node.leaf_index(slot)];
        for (std::uint32_t s = leaf.first; s < leaf.first + leaf.count; ++s) {
          const std::uint32_t prim = prim_order[s];
          if (mem) {
            mem->access_range(mem_base + kOrderedPrimRegionBase + s * sizeof(Aabb),
                              sizeof(Aabb));
          }
          if (stats) ++stats->aabb_tests;
          if (!ray_intersects_aabb(ray, ordered_prim_aabbs[s], inv_dir)) continue;
          if (stats) ++stats->is_calls;
          if (program.intersect(ray_id, prim) == TraceAction::kTerminate) {
            if (stats) ++stats->terminated_rays;
            return;
          }
        }
      } else {
        pushes[n_push++] = node.child_index(slot);
      }
    }
    RTNN_DCHECK(sp + n_push <= kWideStackDepth, "wide traversal stack overflow");
    for (std::uint32_t i = n_push; i > 0; --i) stack[sp++] = pushes[i - 1];
  }
}

/// Shader shim between a tile's bottom-level walk and the caller's
/// program: BLAS primitive ids are tile-local slots, so intersect()
/// remaps them through the tile's id list before forwarding. kTerminate
/// is latched so the TLAS walk can stop popping top-level nodes — the
/// inner walk already returned, and its stats (including
/// terminated_rays) were counted exactly once.
template <typename Program>
struct TileProgram {
  Program& inner;
  const std::uint32_t* to_global;
  bool terminated = false;

  TraceAction intersect(std::uint32_t ray_id, std::uint32_t local_prim) {
    const TraceAction action = inner.intersect(ray_id, to_global[local_prim]);
    if (action == TraceAction::kTerminate) terminated = true;
    return action;
  }
};

/// Single-ray two-level traversal: a binary stack walk of the top tree
/// culls whole tiles; each intersected tile leaf lazily builds (first
/// route) and then runs the ordinary wide/compressed BLAS walk with ids
/// remapped to global. Candidate sets match the monolithic path because
/// tile bounds contain every member AABB — top-level culling only skips
/// tiles the ray provably misses — and tiles partition the primitives, so
/// the union of per-tile candidates is exactly the monolithic candidate
/// set. `wide_stack` is the caller's kWideStackDepth scratch reused by
/// every BLAS walk (tiles traverse one at a time).
template <typename Program>
void trace_one_tiled(const TiledBvh& tlas, const Ray& ray, std::uint32_t ray_id,
                     Program& program, LaunchStats* stats, std::uint32_t* wide_stack,
                     bool use_compressed, MemoryHierarchy* mem = nullptr) {
  const Bvh& top = tlas.top();
  if (top.empty()) return;
  std::uint32_t stack[kMaxStackDepth];
  std::uint32_t sp = 0;
  stack[sp++] = top.root();
  const auto nodes = top.nodes();
  const auto tile_order = top.prim_order();
  while (sp > 0) {
    const BvhNode& node = nodes[stack[--sp]];
    if (mem) {
      mem->access(kTlasRegionBase + (&node - nodes.data()) * kNodeStride);
    }
    if (stats) {
      ++stats->node_visits;
      ++stats->aabb_tests;
    }
    if (!ray_intersects_aabb(ray, node.bounds)) continue;
    if (node.is_leaf()) {
      for (std::uint32_t s = node.first; s < node.first + node.count; ++s) {
        const std::uint32_t t = tile_order[s];
        const TiledBvh::Tile& tile = tlas.tile(t);
        const TiledBvh::TileIndex& index =
            tile.ensure_index(tlas.aabb_width(), tlas.leaf_size());
        TileProgram<Program> tp{program, tile.prim_ids().data()};
        const std::uint64_t tile_base = std::uint64_t{t} * kTileRegionStride;
        if (use_compressed) {
          trace_one_compressed(index.wide, ray, ray_id, tp, stats, wide_stack, mem,
                               tile_base);
        } else {
          trace_one_wide(index.wide, ray, ray_id, tp, stats, wide_stack, mem,
                         tile_base);
        }
        if (tp.terminated) return;
      }
    } else {
      RTNN_DCHECK(sp + 2 <= kMaxStackDepth, "traversal stack overflow");
      stack[sp++] = node.left;
      stack[sp++] = node.right;
    }
  }
}

/// Lockstep traversal of one warp of (up to 32) rays.
template <typename Program>
void trace_warp(const Bvh& bvh, std::span<const Ray> rays, std::uint32_t first_ray,
                std::uint32_t lane_count, Program& program, LaunchStats& stats,
                MemoryHierarchy* mem) {
  LaneState lanes[kWarpSize];
  for (std::uint32_t l = 0; l < lane_count; ++l) {
    lanes[l].ray_id = first_ray + l;
    lanes[l].stack[lanes[l].sp++] = bvh.root();
  }
  ++stats.warps;
  const auto nodes = bvh.nodes();

  for (;;) {
    // Each active lane pops its next node; the warp then serializes over
    // the set of distinct nodes popped this iteration.
    std::uint32_t popped[kWarpSize];
    std::uint32_t active_lanes[kWarpSize];
    std::uint32_t n_active = 0;
    for (std::uint32_t l = 0; l < lane_count; ++l) {
      if (!lanes[l].active()) continue;
      popped[n_active] = lanes[l].stack[--lanes[l].sp];
      active_lanes[n_active] = l;
      ++n_active;
    }
    if (n_active == 0) break;
    ++stats.warp_iterations;

    std::uint32_t done[kWarpSize] = {};  // lanes already handled this iteration
    for (std::uint32_t i = 0; i < n_active; ++i) {
      if (done[i]) continue;
      const std::uint32_t node_id = popped[i];
      // One serialized sub-step: every lane that wants this node executes
      // together. Each lane issues its own node fetch — lanes sharing the
      // line hit in cache, which is how coalescing shows up as the high
      // hit rates of coherent warps (paper Figure 6).
      ++stats.warp_substeps;
      const BvhNode& node = nodes[node_id];
      for (std::uint32_t j = i; j < n_active; ++j) {
        if (done[j] || popped[j] != node_id) continue;
        done[j] = 1;
        ++stats.active_lane_slots;
        if (mem) mem->access(node_id * kNodeStride);
        LaneState& lane = lanes[active_lanes[j]];
        ++stats.node_visits;
        ++stats.aabb_tests;
        const Ray& ray = rays[lane.ray_id];
        if (!ray_intersects_aabb(ray, node.bounds)) continue;
        if (node.is_leaf()) {
          if (process_leaf(bvh, node, ray, lane.ray_id, program, &stats, mem) ==
              TraceAction::kTerminate) {
            lane.terminated = true;
            ++stats.terminated_rays;
          }
        } else {
          RTNN_DCHECK(lane.sp + 2 <= kMaxStackDepth, "traversal stack overflow");
          lane.stack[lane.sp++] = node.left;
          lane.stack[lane.sp++] = node.right;
        }
      }
    }
  }
}

}  // namespace detail

/// Launches `rays` against `bvh`, invoking `program.intersect(ray_id,
/// prim_id)` per candidate primitive. The Program object must be safe to
/// call concurrently for different ray_ids (each ray writes its own
/// output slots, the same contract a CUDA kernel has).
template <typename Program>
LaunchStats trace(const Bvh& bvh, std::span<const Ray> rays, Program& program,
                  const TraceConfig& config = {}) {
  LaunchStats total;
  total.rays = rays.size();
  if (rays.empty() || bvh.empty()) return total;

  const auto n = static_cast<std::int64_t>(rays.size());
  // Lazily sized so stats-off launches (pure wall-clock runs, often many
  // tiny per-partition launches) skip the slot allocation entirely.
  std::optional<StatsAccumulator> accumulator;

  if (config.model == ExecutionModel::kIndependent) {
    RTNN_CHECK(!config.simulate_caches,
               "cache simulation requires the warp-lockstep execution model");
    if (config.collect_stats) accumulator.emplace();
    auto run_chunk = [&](std::int64_t lo, std::int64_t hi) {
      // Counters bump a stack-local struct through the chunk and fold into
      // the worker's slot once — no heap writes on the per-node path.
      LaunchStats local;
      LaunchStats* stats = accumulator ? &local : nullptr;
      for (std::int64_t i = lo; i < hi; ++i) {
        detail::trace_one(bvh, rays[static_cast<std::size_t>(i)],
                          static_cast<std::uint32_t>(i), program, stats);
      }
      if (accumulator) accumulator->local() += local;
    };
    if (config.parallel) {
      parallel_for_chunks(0, n, run_chunk, grain::kTrace);
    } else {
      run_chunk(0, n);
    }
    if (accumulator) total += accumulator->reduce();
    return total;
  }

  // Warp-lockstep model (always collects: its counters are the figures).
  accumulator.emplace();
  const std::int64_t n_warps =
      (n + detail::kWarpSize - 1) / static_cast<std::int64_t>(detail::kWarpSize);
  auto run_warps = [&](std::int64_t lo, std::int64_t hi) {
    LaunchStats local;
    std::optional<MemoryHierarchy> mem;
    if (config.simulate_caches) mem.emplace(config.l1, config.l2);
    for (std::int64_t w = lo; w < hi; ++w) {
      const auto first = static_cast<std::uint32_t>(w * detail::kWarpSize);
      const auto lanes = static_cast<std::uint32_t>(
          std::min<std::int64_t>(detail::kWarpSize, n - first));
      detail::trace_warp(bvh, rays, first, lanes, program, local,
                         mem ? &*mem : nullptr);
    }
    if (mem) {
      local.l1 = mem->l1_stats();
      local.l2 = mem->l2_stats();
    }
    accumulator->local() += local;
  };
  if (config.parallel) {
    parallel_for_chunks(0, n_warps, run_warps, grain::kWarp);
  } else {
    run_warps(0, n_warps);
  }
  total += accumulator->reduce();
  return total;
}

/// Wide-BVH overload: the wall-clock independent path. Rays are batched
/// into Morton-coherent chunks (the caller's ordering is preserved), each
/// chunk reusing one per-thread traversal stack across all of its rays.
/// config.use_compressed selects the quantized node layout (identical
/// candidate sets, ~1/3 the node bytes); config.simulate_caches replays
/// the selected layout's node/primitive fetches through per-worker cache
/// hierarchies, so the two layouts' modeled miss counts are directly
/// comparable.
template <typename Program>
LaunchStats trace(const WideBvh& bvh, std::span<const Ray> rays, Program& program,
                  const TraceConfig& config = {}) {
  RTNN_CHECK(config.model == ExecutionModel::kIndependent,
             "the wide BVH serves only the independent execution model; "
             "warp-lockstep simulation walks the binary BVH");
  LaunchStats total;
  total.rays = rays.size();
  if (rays.empty() || bvh.empty()) return total;

  const auto n = static_cast<std::int64_t>(rays.size());
  std::optional<StatsAccumulator> accumulator;
  // Cache stats travel inside LaunchStats, so simulation forces collection.
  if (config.collect_stats || config.simulate_caches) accumulator.emplace();
  auto run_chunk = [&](std::int64_t lo, std::int64_t hi) {
    LaunchStats local;
    LaunchStats* stats = config.collect_stats ? &local : nullptr;
    std::optional<MemoryHierarchy> mem;
    if (config.simulate_caches) mem.emplace(config.l1, config.l2);
    MemoryHierarchy* mem_ptr = mem ? &*mem : nullptr;
    // One stack allocation per chunk, reused by every ray in it.
    std::uint32_t stack[detail::kWideStackDepth];
    for (std::int64_t i = lo; i < hi; ++i) {
      if (config.use_compressed) {
        detail::trace_one_compressed(bvh, rays[static_cast<std::size_t>(i)],
                                     static_cast<std::uint32_t>(i), program, stats,
                                     stack, mem_ptr);
      } else {
        detail::trace_one_wide(bvh, rays[static_cast<std::size_t>(i)],
                               static_cast<std::uint32_t>(i), program, stats, stack,
                               mem_ptr);
      }
    }
    if (mem) {
      local.l1 = mem->l1_stats();
      local.l2 = mem->l2_stats();
    }
    if (accumulator) accumulator->local() += local;
  };
  if (config.parallel) {
    parallel_for_chunks(0, n, run_chunk, grain::kTrace);
  } else {
    run_chunk(0, n);
  }
  if (accumulator) total += accumulator->reduce();
  return total;
}

/// Two-level overload: the TLAS walk over a tiled index. Independent
/// model only, same chunking/stats/caching shape as the WideBvh overload;
/// config.use_compressed selects each tile's BLAS layout. Lazy tiles are
/// built on first route from inside the launch (thread-safe, built once
/// regardless of how many chunks race to the same tile).
template <typename Program>
LaunchStats trace(const TiledBvh& tlas, std::span<const Ray> rays, Program& program,
                  const TraceConfig& config = {}) {
  RTNN_CHECK(config.model == ExecutionModel::kIndependent,
             "the tiled BVH serves only the independent execution model; "
             "warp-lockstep simulation walks the monolithic binary BVH");
  LaunchStats total;
  total.rays = rays.size();
  if (rays.empty() || tlas.empty()) return total;

  const auto n = static_cast<std::int64_t>(rays.size());
  std::optional<StatsAccumulator> accumulator;
  if (config.collect_stats || config.simulate_caches) accumulator.emplace();
  auto run_chunk = [&](std::int64_t lo, std::int64_t hi) {
    LaunchStats local;
    LaunchStats* stats = config.collect_stats ? &local : nullptr;
    std::optional<MemoryHierarchy> mem;
    if (config.simulate_caches) mem.emplace(config.l1, config.l2);
    MemoryHierarchy* mem_ptr = mem ? &*mem : nullptr;
    std::uint32_t stack[detail::kWideStackDepth];
    for (std::int64_t i = lo; i < hi; ++i) {
      detail::trace_one_tiled(tlas, rays[static_cast<std::size_t>(i)],
                              static_cast<std::uint32_t>(i), program, stats, stack,
                              config.use_compressed, mem_ptr);
    }
    if (mem) {
      local.l1 = mem->l1_stats();
      local.l2 = mem->l2_stats();
    }
    if (accumulator) accumulator->local() += local;
  };
  if (config.parallel) {
    parallel_for_chunks(0, n, run_chunk, grain::kTrace);
  } else {
    run_chunk(0, n);
  }
  if (accumulator) total += accumulator->reduce();
  return total;
}

/// Convenience for tests: trace a single ray with stats.
template <typename Program>
LaunchStats trace_ray(const Bvh& bvh, const Ray& ray, Program& program) {
  LaunchStats stats;
  stats.rays = 1;
  detail::trace_one(bvh, ray, 0, program, &stats);
  return stats;
}

}  // namespace rtnn::rt
