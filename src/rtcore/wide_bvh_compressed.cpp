// Quantization pass for the compressed wide-BVH mirror.
//
// Each CompressedWideNode re-encodes one WideBvhNode's eight child AABBs
// as 8-bit offsets from a per-node anchor at per-axis power-of-two scales.
// The encoding is *conservative by construction*: after the arithmetic
// estimate of each quantized lane, a fix-up loop nudges it until the
// exactly-dequantized value (the same `anchor + float(q) * 2^exp`
// expression both traversal decoders evaluate) brackets the FP32 bound
// from the correct side. Traversal against dequantized boxes can therefore
// only visit a superset of the FP32 path's nodes — never miss — and the
// exact primitive-AABB re-test at the leaves keeps candidate sets
// identical.
//
// Scale selection starts from frexp of the node's content extent and
// retries with a doubled scale in the rare case float rounding leaves the
// top of the range unreachable at q = 255 (e.g. a tiny extent against a
// huge anchor magnitude). At the exponent ceiling 255 * 2^127 overflows to
// +inf, which trivially bounds any finite box, so the retry always
// terminates.
#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "rtcore/wide_bvh.hpp"

namespace rtnn::rt {

namespace {

constexpr int kExpMin = -126;  // quant_scale()'s normal-float range
constexpr int kExpMax = 127;

/// Smallest starting exponent such that 255 * 2^e plausibly covers
/// `extent`; the caller's retry loop handles the rounding corner cases.
int initial_exponent(float extent) {
  if (!(extent > 0.0f)) return kExpMin;
  int ex = 0;
  std::frexp(extent, &ex);  // extent = m * 2^ex, m in [0.5, 1)
  return std::clamp(ex - 8, kExpMin, kExpMax);
}

/// Quantizes one axis of one slot box. Returns false when the hi bound is
/// unreachable even at q = 255 and the node must retry with a larger
/// scale. `lo`/`hi` are the FP32 slot bounds; `anchor` is exact (a copy of
/// the node's content minimum on this axis), so q = 0 always encodes a
/// valid conservative lo.
bool quantize_axis(float lo, float hi, float anchor, float scale,
                   std::uint8_t& qlo_out, std::uint8_t& qhi_out) {
  const auto dequant = [&](std::uint32_t q) {
    return anchor + static_cast<float>(q) * scale;
  };

  // lo: round down. The division estimate is within an ulp or two; the
  // fix-up loops land on the largest q whose dequantized value is <= lo.
  // q = 0 decodes to the anchor, which is the exact content minimum, so a
  // conservative lo always exists.
  float est = std::min((lo - anchor) / scale, 255.0f);
  std::uint32_t qlo = est > 0.0f ? static_cast<std::uint32_t>(est) : 0u;
  while (qlo > 0 && dequant(qlo) > lo) --qlo;
  while (qlo < 255 && dequant(qlo + 1) <= lo) ++qlo;

  // hi: round up — smallest q whose dequantized value is >= hi.
  est = std::min((hi - anchor) / scale, 255.0f);
  std::uint32_t qhi = est > 0.0f ? static_cast<std::uint32_t>(est) : 0u;
  while (qhi < 255 && dequant(qhi) < hi) ++qhi;
  while (qhi > 0 && dequant(qhi - 1) >= hi) --qhi;
  if (dequant(qhi) < hi) return false;  // q=255 still short: retry with 2x scale

  qlo_out = static_cast<std::uint8_t>(qlo);
  qhi_out = static_cast<std::uint8_t>(qhi);
  return true;
}

void compress_one(const WideBvhNode& src, CompressedWideNode& dst,
                  std::span<const WideLeaf> leaves, std::size_t node_count) {
  (void)leaves, (void)node_count;  // consumed only by the debug checks below
  dst.count = static_cast<std::uint8_t>(src.count);

  // Child metadata: the BFS collapse allocates one parent's interior
  // children at consecutive wide-node indices and its leaf children at
  // consecutive leaf indices, so two bases plus a 3-bit per-slot ordinal
  // reconstruct the full child table.
  dst.child_base = 0;
  dst.leaf_base = 0;
  std::uint32_t interior_ord = 0, leaf_ord = 0;
  for (std::uint32_t i = 0; i < kWideBvhWidth; ++i) {
    if (i >= src.count) {
      dst.meta[i] = 0;
      continue;
    }
    const std::uint32_t child = src.child[i];
    if (child & WideBvhNode::kLeafBit) {
      const std::uint32_t li = child & ~WideBvhNode::kLeafBit;
      if (leaf_ord == 0) dst.leaf_base = li;
      RTNN_DCHECK(li == dst.leaf_base + leaf_ord && li < leaves.size(),
                  "leaf children not consecutive — collapse contract broken");
      dst.meta[i] = CompressedWideNode::kMetaLeaf |
                    static_cast<std::uint8_t>(leaf_ord & CompressedWideNode::kMetaOrdinal);
      ++leaf_ord;
    } else {
      if (interior_ord == 0) dst.child_base = child;
      RTNN_DCHECK(child == dst.child_base + interior_ord && child < node_count,
                  "interior children not consecutive — collapse contract broken");
      dst.meta[i] = static_cast<std::uint8_t>(interior_ord & CompressedWideNode::kMetaOrdinal);
      ++interior_ord;
    }
  }

  // Content bounds over the valid slots (empty slots are inverted and
  // would poison the union).
  constexpr float kInf = std::numeric_limits<float>::infinity();
  float lo[3] = {kInf, kInf, kInf};
  float hi[3] = {-kInf, -kInf, -kInf};
  for (std::uint32_t i = 0; i < src.count; ++i) {
    lo[0] = std::min(lo[0], src.minx[i]);
    lo[1] = std::min(lo[1], src.miny[i]);
    lo[2] = std::min(lo[2], src.minz[i]);
    hi[0] = std::max(hi[0], src.maxx[i]);
    hi[1] = std::max(hi[1], src.maxy[i]);
    hi[2] = std::max(hi[2], src.maxz[i]);
  }
  dst.anchor_x = lo[0];
  dst.anchor_y = lo[1];
  dst.anchor_z = lo[2];

  const float* slot_lo[3] = {src.minx, src.miny, src.minz};
  const float* slot_hi[3] = {src.maxx, src.maxy, src.maxz};
  std::uint8_t* qlo[3] = {dst.qlox, dst.qloy, dst.qloz};
  std::uint8_t* qhi[3] = {dst.qhix, dst.qhiy, dst.qhiz};
  std::int8_t* exps[3] = {&dst.exp_x, &dst.exp_y, &dst.exp_z};

  for (int a = 0; a < 3; ++a) {
    int e = initial_exponent(hi[a] - lo[a]);
    for (;; ++e) {
      RTNN_CHECK(e <= kExpMax, "quantization exponent retry ran past 2^127");
      const float scale = quant_scale(static_cast<std::int8_t>(e));
      bool ok = true;
      for (std::uint32_t i = 0; i < src.count && ok; ++i) {
        ok = quantize_axis(slot_lo[a][i], slot_hi[a][i], lo[a], scale,
                           qlo[a][i], qhi[a][i]);
      }
      if (ok) {
        *exps[a] = static_cast<std::int8_t>(e);
        break;
      }
    }
    // Empty slots: inverted lanes. Traversal masks them off via
    // valid_mask() — with a degenerate (zero-extent) axis the decoded box
    // can collapse to a point rather than stay inverted, so the mask, not
    // the decoded bounds, is the correctness boundary.
    for (std::uint32_t i = src.count; i < kWideBvhWidth; ++i) {
      qlo[a][i] = 255;
      qhi[a][i] = 0;
    }
  }
}

}  // namespace

void WideBvh::compress_nodes() {
  compressed_nodes_.resize(nodes_.size());
  parallel_for(0, static_cast<std::int64_t>(nodes_.size()), [&](std::int64_t ni) {
    const auto i = static_cast<std::size_t>(ni);
    compress_one(nodes_[i], compressed_nodes_[i], leaves_, nodes_.size());
  }, grain::kElementwise / kWideBvhWidth);
}

}  // namespace rtnn::rt
