// Flattened 8-wide BVH — the wall-clock traversal structure.
//
// The binary LBVH (`Bvh`) stays the simulation-fidelity structure: the
// warp-lockstep engine and the cache simulator walk it node by node the
// way the SIMT hardware does. For wall-clock runs the independent-path
// engine instead traverses this collapsed form, where every node holds up
// to eight children whose AABBs are stored SoA (minx[8]/miny[8]/…/maxz[8],
// 64-byte aligned) so a single ray-vs-node step tests all eight child
// boxes at once with AVX2 (scalar fallback when RTNN_ENABLE_AVX2=OFF).
//
// The collapse is the standard wide-BVH recipe of production tracers:
// starting from a binary subtree root, greedily expand the frontier node
// with the largest surface area (the one a random ray is most likely to
// visit) until eight slots are filled or only leaves remain, then emit one
// wide node per frontier. Fewer, fatter nodes mean fewer stack operations
// and fewer dependent cache misses per ray — the software analog of what
// the RT cores' wide tree does in hardware.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/aabb.hpp"
#include "rtcore/bvh.hpp"

namespace rtnn::rt {

inline constexpr std::uint32_t kWideBvhWidth = 8;

/// One 8-wide node. Child bounds are struct-of-arrays so lane i of a
/// 256-bit vector register holds child i's coordinate; the whole node is
/// four cache lines. Children are packed from slot 0: slots >= count are
/// empty (inverted bounds, child == kEmptyChild) and masked off by the
/// traversal before use.
struct alignas(64) WideBvhNode {
  float minx[kWideBvhWidth];
  float miny[kWideBvhWidth];
  float minz[kWideBvhWidth];
  float maxx[kWideBvhWidth];
  float maxy[kWideBvhWidth];
  float maxz[kWideBvhWidth];
  /// kLeafBit set: index into WideBvh::leaves(); clear: interior wide-node
  /// index; kEmptyChild: unused slot.
  std::uint32_t child[kWideBvhWidth];
  std::uint32_t count = 0;  // valid children, packed from slot 0

  static constexpr std::uint32_t kLeafBit = 0x80000000u;
  static constexpr std::uint32_t kEmptyChild = 0xffffffffu;

  std::uint32_t valid_mask() const { return (1u << count) - 1u; }
};

/// A leaf child: a slot range in prim_order(), same contract as the binary
/// BvhNode's first/count.
struct WideLeaf {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

struct WideBvhStats {
  std::uint32_t node_count = 0;
  std::uint32_t leaf_count = 0;
  std::uint32_t max_depth = 0;
  double avg_children = 0.0;  // mean valid children per node (fill factor * 8)
};

/// The 8-wide SoA mirror of a binary Bvh. Self-contained: it snapshots the
/// source's primitive order and AABBs, so the source Bvh may be destroyed
/// after build().
class WideBvh {
 public:
  WideBvh() = default;

  /// Collapses `source` into wide nodes. Topology is decided in one cheap
  /// serial pass; the SoA bounds fill (the bulk of the memory traffic) runs
  /// in parallel over the wide nodes. The binary node feeding each child
  /// slot is recorded so later refit_from() calls can refresh the lanes
  /// without re-collapsing.
  void build(const Bvh& source);

  /// Refreshes the SoA min/max lanes (and the primitive snapshot) from an
  /// already-refitted `source` — which must be the same tree build() last
  /// collapsed, with the same topology. The collapse decision (which
  /// binary node landed in which slot) is reused verbatim; only boxes are
  /// rewritten, in parallel. Together with Bvh::refit this keeps both
  /// traversal representations coherent at a fraction of a rebuild.
  void refit_from(const Bvh& source);

  bool empty() const { return nodes_.empty(); }
  std::uint32_t root() const { return 0; }

  std::span<const WideBvhNode> nodes() const { return nodes_; }
  std::span<const WideLeaf> leaves() const { return leaves_; }
  std::span<const std::uint32_t> prim_order() const { return prim_order_; }
  std::span<const Aabb> prim_aabbs() const { return prim_aabbs_; }

  std::uint32_t prim_count() const { return static_cast<std::uint32_t>(prim_aabbs_.size()); }
  std::uint32_t max_depth() const { return max_depth_; }

  WideBvhStats stats() const;

  /// Structural invariant check (used by tests): children packed from slot
  /// 0, every node reachable exactly once, every primitive in exactly one
  /// leaf slot, every child slot's bounds contain its subtree's primitive
  /// AABBs. Throws rtnn::Error on failure.
  void validate() const;

 private:
  std::vector<WideBvhNode> nodes_;
  std::vector<WideLeaf> leaves_;
  std::vector<std::uint32_t> prim_order_;
  std::vector<Aabb> prim_aabbs_;
  std::uint32_t max_depth_ = 0;
  /// slot_sources_[node][slot] = binary node id whose bounds fill that
  /// slot's lanes (the collapse frontier), kept so refit_from() is a flat
  /// parallel copy. ~32 B per 256 B node.
  std::vector<std::array<std::uint32_t, kWideBvhWidth>> slot_sources_;
  std::uint32_t source_node_count_ = 0;  // binary node count build() saw
};

}  // namespace rtnn::rt
