// Flattened 8-wide BVH — the wall-clock traversal structure.
//
// The binary LBVH (`Bvh`) stays the simulation-fidelity structure: the
// warp-lockstep engine and the cache simulator walk it node by node the
// way the SIMT hardware does. For wall-clock runs the independent-path
// engine instead traverses this collapsed form, where every node holds up
// to eight children whose AABBs are stored SoA (minx[8]/miny[8]/…/maxz[8],
// 64-byte aligned) so a single ray-vs-node step tests all eight child
// boxes at once with AVX2 (scalar fallback when RTNN_ENABLE_AVX2=OFF).
//
// The collapse is the standard wide-BVH recipe of production tracers:
// starting from a binary subtree root, greedily expand the frontier node
// with the largest surface area (the one a random ray is most likely to
// visit) until eight slots are filled or only leaves remain, then emit one
// wide node per frontier. Fewer, fatter nodes mean fewer stack operations
// and fewer dependent cache misses per ray — the software analog of what
// the RT cores' wide tree does in hardware.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "core/aabb.hpp"
#include "rtcore/bvh.hpp"

namespace rtnn::rt {

inline constexpr std::uint32_t kWideBvhWidth = 8;

/// One 8-wide node. Child bounds are struct-of-arrays so lane i of a
/// 256-bit vector register holds child i's coordinate; the whole node is
/// four cache lines. Children are packed from slot 0: slots >= count are
/// empty (inverted bounds, child == kEmptyChild) and masked off by the
/// traversal before use.
struct alignas(64) WideBvhNode {
  float minx[kWideBvhWidth];
  float miny[kWideBvhWidth];
  float minz[kWideBvhWidth];
  float maxx[kWideBvhWidth];
  float maxy[kWideBvhWidth];
  float maxz[kWideBvhWidth];
  /// kLeafBit set: index into WideBvh::leaves(); clear: interior wide-node
  /// index; kEmptyChild: unused slot.
  std::uint32_t child[kWideBvhWidth];
  std::uint32_t count = 0;  // valid children, packed from slot 0

  static constexpr std::uint32_t kLeafBit = 0x80000000u;
  static constexpr std::uint32_t kEmptyChild = 0xffffffffu;

  std::uint32_t valid_mask() const { return (1u << count) - 1u; }
};

/// A leaf child: a slot range in prim_order(), same contract as the binary
/// BvhNode's first/count.
struct WideLeaf {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

/// The compressed mirror of a WideBvhNode: the same eight children, but
/// each child AABB stored as 8-bit fixed-point offsets quantized against
/// this node's own content bounds — a per-node anchor origin (3 x FP32)
/// plus per-axis power-of-two scale exponents. Quantization is
/// *conservative* (mins round down, maxs round up), so a dequantized box
/// always contains its FP32 box and traversal decisions can only widen,
/// never miss; the exact primitive AABB test downstream keeps candidate
/// sets identical to the FP32 path.
///
/// Child references are narrowed to two 32-bit bases plus a per-slot
/// ordinal: the BFS collapse allocates a node's interior children at
/// consecutive wide-node indices and its leaf children at consecutive
/// leaf-record indices, so `meta` only needs a leaf flag and a 3-bit
/// ordinal. 80 bytes per node against the FP32 layout's 256 — a 3.2x
/// shrink in traversal-touched node bytes.
struct CompressedWideNode {
  float anchor_x, anchor_y, anchor_z;   // quantization origin (content lo)
  std::int8_t exp_x, exp_y, exp_z;      // per-axis scale = 2^exp
  std::uint8_t count = 0;               // valid children, packed from slot 0
  std::uint32_t child_base = 0;         // first interior child's node index
  std::uint32_t leaf_base = 0;          // first leaf child's leaf index
  std::uint8_t meta[kWideBvhWidth];     // kMetaLeaf | ordinal within its kind
  std::uint8_t qlox[kWideBvhWidth], qloy[kWideBvhWidth], qloz[kWideBvhWidth];
  std::uint8_t qhix[kWideBvhWidth], qhiy[kWideBvhWidth], qhiz[kWideBvhWidth];

  static constexpr std::uint8_t kMetaLeaf = 0x80u;
  static constexpr std::uint8_t kMetaOrdinal = 0x07u;

  std::uint32_t valid_mask() const { return (1u << count) - 1u; }
  bool is_leaf_slot(std::uint32_t i) const { return (meta[i] & kMetaLeaf) != 0; }
  /// Interior slot: wide-node index of the child.
  std::uint32_t child_index(std::uint32_t i) const {
    return child_base + (meta[i] & kMetaOrdinal);
  }
  /// Leaf slot: index into WideBvh::leaves().
  std::uint32_t leaf_index(std::uint32_t i) const {
    return leaf_base + (meta[i] & kMetaOrdinal);
  }
};
static_assert(sizeof(CompressedWideNode) == 80,
              "compressed node must stay ~1 cache line of traversal traffic");

/// 2^e as a float, for e in the quantization exponent range [-126, 127].
/// Exact (a pure exponent-field construction), shared by the build-time
/// quantizer and both traversal decoders so dequantized bounds are
/// bitwise-identical everywhere.
inline float quant_scale(std::int8_t e) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(e + 127) << 23);
}

/// Dequantizes slot `i` of a compressed node with the exact arithmetic the
/// traversal kernels use: anchor + float(q) * 2^exp, where the product is
/// exact (8-bit integer times a power of two) and the add rounds once.
inline Aabb dequantize_slot(const CompressedWideNode& node, std::uint32_t i) {
  const float sx = quant_scale(node.exp_x);
  const float sy = quant_scale(node.exp_y);
  const float sz = quant_scale(node.exp_z);
  return Aabb{{node.anchor_x + static_cast<float>(node.qlox[i]) * sx,
               node.anchor_y + static_cast<float>(node.qloy[i]) * sy,
               node.anchor_z + static_cast<float>(node.qloz[i]) * sz},
              {node.anchor_x + static_cast<float>(node.qhix[i]) * sx,
               node.anchor_y + static_cast<float>(node.qhiy[i]) * sy,
               node.anchor_z + static_cast<float>(node.qhiz[i]) * sz}};
}

struct WideBvhStats {
  std::uint32_t node_count = 0;
  std::uint32_t leaf_count = 0;
  std::uint32_t max_depth = 0;
  double avg_children = 0.0;  // mean valid children per node (fill factor * 8)
  /// Bytes of the node array this layout's traversal touches per fetch.
  std::uint64_t node_bytes = 0;
  /// node_bytes + the shared leaf/prim-order/prim-AABB arrays — the whole
  /// resident index footprint of one traversal representation.
  std::uint64_t total_index_bytes = 0;
};

/// The 8-wide SoA mirror of a binary Bvh. Self-contained: it snapshots the
/// source's primitive order and AABBs, so the source Bvh may be destroyed
/// after build().
class WideBvh {
 public:
  WideBvh() = default;

  /// Collapses `source` into wide nodes. Topology is decided in one cheap
  /// serial pass; the SoA bounds fill (the bulk of the memory traffic) runs
  /// in parallel over the wide nodes. The binary node feeding each child
  /// slot is recorded so later refit_from() calls can refresh the lanes
  /// without re-collapsing.
  void build(const Bvh& source);

  /// Refreshes the SoA min/max lanes (and the primitive snapshot) from an
  /// already-refitted `source` — which must be the same tree build() last
  /// collapsed, with the same topology. The collapse decision (which
  /// binary node landed in which slot) is reused verbatim; only boxes are
  /// rewritten, in parallel. Together with Bvh::refit this keeps both
  /// traversal representations coherent at a fraction of a rebuild.
  void refit_from(const Bvh& source);

  bool empty() const { return nodes_.empty(); }
  std::uint32_t root() const { return 0; }

  std::span<const WideBvhNode> nodes() const { return nodes_; }
  std::span<const WideLeaf> leaves() const { return leaves_; }
  std::span<const std::uint32_t> prim_order() const { return prim_order_; }
  std::span<const Aabb> prim_aabbs() const { return prim_aabbs_; }

  /// prim_aabbs() permuted into leaf-slot order: ordered_prim_aabbs()[s] is
  /// a bitwise copy of prim_aabbs()[prim_order()[s]]. The compressed leaf
  /// re-test reads this array so its exact-AABB fetches stream contiguously
  /// in traversal order instead of gathering through prim_order — same
  /// values, so candidate-set parity with the FP32 path is unaffected.
  std::span<const Aabb> ordered_prim_aabbs() const { return ordered_prim_aabbs_; }

  /// The quantized mirror of nodes(): same topology, node i here compresses
  /// node i there. Built by build() and re-quantized by refit_from().
  std::span<const CompressedWideNode> compressed_nodes() const {
    return compressed_nodes_;
  }

  std::uint32_t prim_count() const { return static_cast<std::uint32_t>(prim_aabbs_.size()); }
  std::uint32_t max_depth() const { return max_depth_; }

  WideBvhStats stats() const;
  /// stats() with the byte accounting of the compressed layout: 80 B/node
  /// vs 256, plus the leaf-slot-ordered primitive snapshot the compressed
  /// leaf re-test streams through (the leaf/order/prim arrays themselves
  /// are shared between the two layouts).
  WideBvhStats compressed_stats() const;

  /// Structural invariant check (used by tests): children packed from slot
  /// 0, every node reachable exactly once, every primitive in exactly one
  /// leaf slot, every child slot's bounds contain its subtree's primitive
  /// AABBs. Also checks the compressed mirror: dequantized child boxes
  /// contain the FP32 slot boxes, and reconstructed child references match
  /// the FP32 child table. Throws rtnn::Error on failure.
  void validate() const;

 private:
  /// (Re)quantizes compressed_nodes_ from nodes_; called at the end of
  /// build() and refit_from(). Parallel over nodes.
  void compress_nodes();

  /// Rebuilds ordered_prim_aabbs_ from prim_aabbs_ and prim_order_;
  /// called alongside compress_nodes(). Parallel over slots.
  void refresh_ordered_prims();

  std::vector<WideBvhNode> nodes_;
  std::vector<CompressedWideNode> compressed_nodes_;
  std::vector<WideLeaf> leaves_;
  std::vector<std::uint32_t> prim_order_;
  std::vector<Aabb> prim_aabbs_;
  std::vector<Aabb> ordered_prim_aabbs_;  // prim_aabbs_ in leaf-slot order
  std::uint32_t max_depth_ = 0;
  /// slot_sources_[node][slot] = binary node id whose bounds fill that
  /// slot's lanes (the collapse frontier), kept so refit_from() is a flat
  /// parallel copy. ~32 B per 256 B node.
  std::vector<std::array<std::uint32_t, kWideBvhWidth>> slot_sources_;
  std::uint32_t source_node_count_ = 0;  // binary node count build() saw
};

}  // namespace rtnn::rt
