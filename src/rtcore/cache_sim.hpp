// Two-level set-associative cache simulator.
//
// The paper's Figure 6 explains the raster-vs-random gap through
// micro-architectural counters: L1/L2 hit rate and SM occupancy. Our
// substrate replays the traversal engine's BVH-node and primitive fetches
// through this model to produce the same counters. Defaults approximate a
// Turing SM: 64 KiB L1 per SM (private, one per worker thread here) and a
// 4 MiB shared L2, 128-byte lines, LRU.
#pragma once

#include <cstdint>
#include <vector>

namespace rtnn::rt {

struct CacheConfig {
  std::uint32_t size_bytes = 64 * 1024;
  std::uint32_t line_bytes = 128;
  std::uint32_t ways = 4;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;

  double hit_rate() const {
    return accesses ? static_cast<double>(hits) / static_cast<double>(accesses) : 0.0;
  }

  CacheStats& operator+=(const CacheStats& o) {
    accesses += o.accesses;
    hits += o.hits;
    return *this;
  }
};

/// Single cache level, LRU replacement within each set.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Returns true on hit; on miss the line is installed.
  bool access(std::uint64_t address);

  const CacheStats& stats() const { return stats_; }
  std::uint32_t line_bytes() const { return config_.line_bytes; }
  void reset();

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  CacheConfig config_;
  std::uint32_t num_sets_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  // num_sets_ * ways, row-major by set
  CacheStats stats_;
};

/// Private L1 in front of a shared L2. The traversal engine instantiates
/// one MemoryHierarchy per worker ("SM") and merges stats afterwards; the
/// L2 is approximated as private per worker (adequate: the experiments
/// that read these counters run the SIMT engine single-threaded so the L2
/// is then exact).
class MemoryHierarchy {
 public:
  MemoryHierarchy(const CacheConfig& l1, const CacheConfig& l2) : l1_(l1), l2_(l2) {}
  MemoryHierarchy() : MemoryHierarchy(CacheConfig{}, CacheConfig{4 * 1024 * 1024, 128, 16}) {}

  void access(std::uint64_t address) {
    if (!l1_.access(address)) l2_.access(address);
  }

  /// Touches every cache line in [address, address + bytes) — one access
  /// per line, the way a streaming fetch of a multi-line object (e.g. a
  /// 256 B FP32 wide node vs an 80 B compressed one) lands in hardware.
  /// The line walk uses the L1's line size; the L2 line size is the same
  /// in every configuration we model (both default to 128 B).
  void access_range(std::uint64_t address, std::uint64_t bytes) {
    if (bytes == 0) return;
    const std::uint64_t line = l1_.line_bytes();
    const std::uint64_t first = address / line;
    const std::uint64_t last = (address + bytes - 1) / line;
    for (std::uint64_t l = first; l <= last; ++l) access(l * line);
  }

  const CacheStats& l1_stats() const { return l1_.stats(); }
  const CacheStats& l2_stats() const { return l2_.stats(); }
  void reset() {
    l1_.reset();
    l2_.reset();
  }

 private:
  Cache l1_;
  Cache l2_;
};

}  // namespace rtnn::rt
