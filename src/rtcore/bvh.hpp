// Bounding Volume Hierarchy over axis-aligned bounding boxes.
//
// This is the data structure the RT cores traverse in hardware (paper
// section 2.2/2.3). We build a binary LBVH: primitives are sorted by the
// 63-bit Morton code of their AABB centroid and the tree is formed by
// recursively splitting the sorted range at the highest differing Morton
// bit (Karras 2012-style top-down formulation), then node bounds are
// computed bottom-up. Construction cost is dominated by the radix sort and
// is linear in the number of AABBs — matching the paper's empirical
// observation (Figure 15, R² = 0.996) which RTNN's bundling cost model
// depends on (T_build = k1 · M, paper equation (3)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/aabb.hpp"

namespace rtnn::rt {

/// One BVH node. Layout note: `count == 0` marks an interior node whose
/// children are `left`/`right`; `count > 0` marks a leaf holding `count`
/// primitive slots starting at `first` in Bvh::prim_order().
struct BvhNode {
  Aabb bounds;
  std::uint32_t left = 0;   // interior: left child index
  std::uint32_t right = 0;  // interior: right child index
  std::uint32_t first = 0;  // leaf: first slot in prim_order()
  std::uint32_t count = 0;  // leaf: number of primitives (0 = interior)

  bool is_leaf() const { return count > 0; }
};

struct BvhBuildOptions {
  /// Max primitives per leaf. The paper notes "more primitives per leaf
  /// node is possible" (Figure 1a); 1 reproduces the RTNN setup where each
  /// leaf stores one point's AABB.
  std::uint32_t leaf_size = 1;
};

struct BvhStats {
  std::uint32_t node_count = 0;
  std::uint32_t leaf_count = 0;
  std::uint32_t max_depth = 0;
  double sah_cost = 0.0;  // relative surface-area-heuristic cost
};

class Bvh {
 public:
  Bvh() = default;

  /// Builds the hierarchy over `prims`. The Bvh keeps its own copy of the
  /// primitive AABBs (like a GPU acceleration structure, which owns its
  /// device-side geometry snapshot).
  void build(std::span<const Aabb> prims, const BvhBuildOptions& options = {});

  /// Refits the tree to moved primitives without rebuilding: `prims` must
  /// have the same count (and mean the same primitive ids) as the last
  /// build(). Leaf bounds are recomputed from the moved boxes and interior
  /// bounds re-united bottom-up in a parallel level sweep; topology,
  /// prim_order() and Morton layout are untouched. This is the driver-side
  /// AS *update* of the RT stack (OPTIX_BUILD_OPERATION_UPDATE): linear,
  /// sort-free, several times cheaper than build() — the right move for
  /// dynamic clouds whose frame-to-frame motion is small. Quality erodes
  /// as points drift from where the topology was decided; sah_inflation()
  /// makes that observable so callers can schedule a rebuild. On failure
  /// (empty input box) the tree's bounds are unspecified; rebuild.
  void refit(std::span<const Aabb> prims);

  /// Point-cloud fast path: refit over Aabb::cube(centers[i], width)
  /// without materializing the box array — the RTNN frame shape (one
  /// cubic AABB per moved point). Saves a full write+read pass over the
  /// primitive boxes; the refit hot loop computes them in registers.
  void refit(std::span<const Vec3> centers, float width);

  /// Surface-area-heuristic cost of the current bounds relative to the
  /// bounds this topology was built for: 1.0 after build(), growing as
  /// successive refit()s stretch the boxes. The rebuild policy's quality
  /// signal (CostModel::max_sah_inflation).
  double sah_inflation() const { return sah_inflation_; }

  bool empty() const { return nodes_.empty(); }
  std::uint32_t root() const { return 0; }

  std::span<const BvhNode> nodes() const { return nodes_; }
  /// Primitive ids in leaf order: leaf node [first, first+count) indexes
  /// into this array, which maps slots back to caller primitive ids.
  std::span<const std::uint32_t> prim_order() const { return prim_order_; }
  std::span<const Aabb> prim_aabbs() const { return prim_aabbs_; }

  std::uint32_t prim_count() const { return static_cast<std::uint32_t>(prim_aabbs_.size()); }
  const Aabb& scene_bounds() const { return scene_bounds_; }

  BvhStats stats() const;

  /// Structural invariant check (used by tests): every primitive appears in
  /// exactly one leaf slot, every interior node's bounds contain both
  /// children's bounds, every leaf's bounds contain its primitives' AABBs,
  /// child indices are in range and acyclic. Throws rtnn::Error on failure.
  void validate() const;

 private:
  std::uint32_t build_range(std::uint32_t lo, std::uint32_t hi,
                            const std::vector<std::uint64_t>& codes,
                            std::uint32_t depth);
  void ensure_levels() const;
  double sah_cost_of_bounds() const;
  /// Shared refit engine: `prim_box(id)` yields primitive id's moved box.
  template <typename PrimBox>
  void refit_impl(std::size_t prim_count, PrimBox prim_box);

  std::vector<BvhNode> nodes_;
  std::vector<std::uint32_t> prim_order_;
  std::vector<Aabb> prim_aabbs_;
  Aabb scene_bounds_;
  std::uint32_t leaf_size_ = 1;
  std::uint32_t max_depth_seen_ = 0;

  // Refit state. The level schedule (node ids bucketed by depth, deepest
  // first) depends only on topology, so it is computed on the first refit
  // and reused until the next build(); baseline_sah_ is the fresh-build
  // SAH cost the inflation metric is measured against.
  mutable std::vector<std::uint32_t> level_nodes_;    // ids, deepest level first
  mutable std::vector<std::uint32_t> level_offsets_;  // level l = [l, l+1) slice
  double baseline_sah_ = -1.0;  // <0: not captured yet
  double sah_inflation_ = 1.0;
};

}  // namespace rtnn::rt
