// Cost-model-driven backend dispatch.
//
// AutoBackend answers every search() through whichever substrate the
// calibrated CostModel predicts to be cheapest for the workload at hand.
// Workload statistics come from the same GridIndex the partitioner uses:
// N, Q, and the sampled point population of a query-centered 2r box (the
// density term ρ·S³ of the paper's eq. 4).
//
// Candidates and their predicted costs (seconds):
//   brute_force   k2 · N · Q                      one sphere test per pair
//   grid          g1 · N + k3 · Q · E_scan        counting-sort build + the
//                                                 27/8-inflated cell scan
//   rtnn          k1 · N + kIS · Q · E_box        BVH build + predicted IS
//                                                 calls (k2 for KNN, k3 for
//                                                 range)
// where E_box is the sampled mean population of the 2r query box and
// E_scan = E_box · 27/8 (a 3r scan volume over a 2r sample volume).
// Octree and fastrnn are never predicted fastest on this substrate (the
// octree's pointer-chasing and the naive mapping's monolithic 2r BVH are
// both dominated), so they are not candidates.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/search_backend.hpp"
#include "rtnn/cost_model.hpp"
#include "rtnn/grid_index.hpp"

namespace rtnn::engine {

/// The statistics AutoBackend dispatches on.
struct WorkloadStats {
  std::size_t n = 0;       // point count
  std::size_t q = 0;       // query count
  double e_box = 0.0;      // mean points inside a query-centered 2r box
  double density = 0.0;    // points per unit volume inside that box
};

class AutoBackend final : public SearchBackend {
 public:
  AutoBackend();

  std::string_view name() const override { return "auto"; }
  BackendCaps caps() const override {
    return {.range = true, .knn = true, .dynamic = true, .snapshot = true};
  }
  void set_points(std::span<const Vec3> points) override;
  /// Dynamic lifecycle, forwarded: candidates that were already
  /// materialized receive the move as update_points() (refit where they
  /// can), so per-frame re-dispatch keeps amortizing index work.
  void update_points(std::span<const Vec3> points) override;
  std::size_t point_count() const override { return points_.size(); }
  NeighborResult search(std::span<const Vec3> queries, const SearchParams& params,
                        Report* report = nullptr) override;

  /// Member-wise snapshot: points, model and grid copy; every
  /// materialized candidate is snapshotted in turn (so the clone keeps
  /// amortizing whatever indexes dispatch already paid for).
  std::unique_ptr<SearchBackend> snapshot() const override;
  void set_index_persistence(bool on) override;

  /// Supplies a calibrated cost model (k1/k2/k3 ratios) for dispatch and
  /// for the rtnn candidate's bundling decisions.
  void set_cost_model(const CostModel& model);

  /// The backend the last search() dispatched to (empty before any call).
  std::string_view last_choice() const { return last_choice_; }

  /// Workload statistics gathered for `queries` (exposed for tests and
  /// introspection; also computed internally by search()).
  WorkloadStats measure(std::span<const Vec3> queries, const SearchParams& params);

  /// The name predict() would choose for the given statistics.
  std::string_view predict(const WorkloadStats& stats, const SearchParams& params) const;

 private:
  SearchBackend& acquire(std::string_view name);

  std::vector<Vec3> points_;
  CostModel model_{};
  GridIndex stats_grid_;
  bool stats_grid_valid_ = false;

  struct Slot {
    std::unique_ptr<SearchBackend> backend;
    std::uint64_t points_generation = 0;  // last generation uploaded
    std::uint64_t upload_lineage = 0;     // set_points lineage of that upload
  };
  std::vector<std::pair<std::string, Slot>> backends_;
  std::uint64_t generation_ = 0;  // bumped by every points change
  std::uint64_t lineage_ = 0;     // bumped only by set_points (count resets)
  bool persistent_ = false;       // serving hint, applied to every candidate
  std::string last_choice_;
};

}  // namespace rtnn::engine
