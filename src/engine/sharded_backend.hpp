// Sharded search backend: one SearchBackend made of many.
//
// Wraps any snapshot-capable inner backend and scales it across spatial
// shards (rtnn/sharding.hpp): set_points() Morton-splits the cloud into
// Morton-contiguous shards, each owning an independent inner backend
// over its slice; search() scatters the queries to the shards whose
// tight AABB lies within the search radius, runs each shard's inner
// search, and gathers the partial results exactly (per-shard Reports sum
// through Report::operator+=; KNN merges through FlatKnnHeaps). The
// serving registry (src/service) builds one of these for clouds above
// its shard threshold — the whole service machinery (snapshots, batch
// optimizer, dispatcher) composes with it unchanged because it is just
// another SearchBackend.
//
// A cloud at or below the threshold keeps a single shard, and every call
// delegates straight to the inner backend — byte-identical behavior, no
// routing or gather overhead.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "engine/search_backend.hpp"
#include "rtnn/sharding.hpp"

namespace rtnn::engine {

/// When and how far to split (see plan_shard_count), and what to do when
/// a shard's inner search throws mid-gather.
struct ShardingOptions {
  /// Points per shard before a cloud splits; 0 = never split.
  std::size_t shard_threshold = std::size_t{1} << 17;
  /// Upper bound on the split, whatever the cloud size.
  std::uint32_t max_shards = 16;

  // --- Per-shard fault isolation (the degradation ladder) ---
  //
  // A shard search that throws is retried up to max_attempts times with
  // exponential backoff (backoff, 2x per attempt). A shard that fails
  // every attempt either fails the whole search (allow_degraded = false:
  // the last error rethrows, typed with the shard id) or is *dropped
  // from the gather* (allow_degraded = true): the merged result is a
  // correct answer over the surviving shards' points, the dropped shard
  // ids are reported via last_dropped_shards(), and the Report counts
  // shards_dropped/shard_retries so nothing degrades silently.

  /// Search attempts per shard per query batch (1 = no retry).
  std::uint32_t max_attempts = 1;
  /// Sleep before the first retry; doubles per subsequent attempt.
  std::chrono::microseconds backoff{0};
  /// Failure policy after the attempts run out: false = throw (the whole
  /// search fails typed), true = drop the shard and gather the rest.
  bool allow_degraded = false;
};

class ShardedBackend final : public SearchBackend {
 public:
  explicit ShardedBackend(std::string inner = "rtnn",
                          const ShardingOptions& options = {});

  std::string_view name() const override { return "sharded"; }
  /// The inner backend's caps verbatim: sharding preserves exactness and
  /// every mode the substrate supports.
  BackendCaps caps() const override { return inner_caps_; }

  void set_points(std::span<const Vec3> points) override;
  /// Same count: each shard keeps its point assignment (ids never move
  /// between shards) and refits in place; shard AABBs re-tighten so
  /// routing stays exact as points drift. A resize replans from scratch.
  void update_points(std::span<const Vec3> points) override;
  std::size_t point_count() const override { return points_.size(); }

  NeighborResult search(std::span<const Vec3> queries, const SearchParams& params,
                        Report* report = nullptr) override;

  /// Clones every shard's snapshot (copy-on-write where the substrate
  /// supports it). Nullptr when the inner backend cannot snapshot.
  std::unique_ptr<SearchBackend> snapshot() const override;

  void set_index_persistence(bool on) override;

  /// Introspection for tests and benches.
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  const ShardPlan& plan() const { return plan_; }
  /// Routed (query, shard) pairs accumulated across search() calls —
  /// fanout / queries measures the boundary-overlap amplification.
  std::uint64_t total_fanout() const { return total_fanout_; }

  /// Shards dropped from the most recent search()'s gather (empty unless
  /// allow_degraded let a failing shard out of the merge). Same thread
  /// contract as search() itself: one caller at a time.
  const std::vector<std::uint32_t>& last_dropped_shards() const {
    return last_dropped_;
  }

 private:
  std::string inner_name_;
  ShardingOptions options_;
  BackendCaps inner_caps_{};
  bool persist_ = false;

  /// One shard's search with the retry/degrade policy applied; true when
  /// the shard served, false when it was dropped (allow_degraded).
  bool search_shard_guarded(std::size_t shard, std::span<const Vec3> queries,
                            const SearchParams& params, Report* report,
                            NeighborResult* result);

  std::vector<Vec3> points_;  // the global cloud (gather needs it)
  ShardPlan plan_;
  std::vector<std::unique_ptr<SearchBackend>> shards_;
  std::uint64_t total_fanout_ = 0;
  std::vector<std::uint32_t> last_dropped_;
};

}  // namespace rtnn::engine
