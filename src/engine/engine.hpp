// Umbrella header for the engine layer.
//
//   #include "engine/engine.hpp"
//
//   auto backend = rtnn::engine::make_backend("auto");
//   backend->set_points(points);
//   rtnn::SearchParams params;
//   params.mode = rtnn::SearchMode::kKnn;
//   params.radius = 0.05f;
//   params.k = 16;
//   rtnn::NeighborResult result = backend->search(queries, params);
//
// Dynamic point clouds follow the index lifecycle build → refit →
// rebuild: after a frame of motion, call update_points(moved) instead of
// set_points(). Backends with caps().dynamic ("rtnn", "fastrnn", "auto")
// keep their acceleration structure alive across frames and refit it in
// place (cost lands in Report::time.refit) until the cost model's
// refit-vs-rebuild policy — calibrated k_refit vs k1, plus the measured
// SAH inflation against CostModel::max_sah_inflation — schedules a
// rebuild; all other backends transparently fall back to a rebuild, so
// frame loops never branch on capability:
//
//   backend->update_points(frame_positions);   // same count, moved points
//   result = backend->search(queries, params, &report);
//   // report.accel_refits / accel_rebuilds / sah_inflation tell the story
//
// See README.md ("The SearchBackend contract" and "The index lifecycle")
// and rtnn::DynamicSearchSession (rtnn/stages.hpp) for the frame-loop
// convenience wrapper.
//
// For many concurrent callers over one cloud, serve backends through
// rtnn::service::SearchService (service/service.hpp): it publishes
// immutable snapshot() clones per update and coalesces in-flight
// requests into batched launches.
#pragma once

#include "engine/auto_backend.hpp"
#include "engine/backends.hpp"
#include "engine/registry.hpp"
#include "engine/search_backend.hpp"
