// Umbrella header for the engine layer.
//
//   #include "engine/engine.hpp"
//
//   auto backend = rtnn::engine::make_backend("auto");
//   backend->set_points(points);
//   rtnn::SearchParams params;
//   params.mode = rtnn::SearchMode::kKnn;
//   params.radius = 0.05f;
//   params.k = 16;
//   rtnn::NeighborResult result = backend->search(queries, params);
//
// See README.md for the SearchBackend contract.
#pragma once

#include "engine/auto_backend.hpp"
#include "engine/backends.hpp"
#include "engine/registry.hpp"
#include "engine/search_backend.hpp"
