#include "engine/backends.hpp"

#include "core/error.hpp"
#include "core/timing.hpp"

namespace rtnn::engine {

namespace {

void check_mode_supported(const SearchBackend& backend, const SearchParams& params) {
  const BackendCaps caps = backend.caps();
  RTNN_CHECK(params.mode != SearchMode::kRange || caps.range,
             "backend does not support range search");
  RTNN_CHECK(params.mode != SearchMode::kKnn || caps.knn,
             "backend does not support KNN search");
  RTNN_CHECK(caps.approximate ||
                 (params.aabb_scale == 1.0f && !params.elide_sphere_test),
             "backend answers exactly; approximate knobs not supported");
}

}  // namespace

// --- BruteForceBackend -------------------------------------------------------

void BruteForceBackend::set_points(std::span<const Vec3> points) {
  points_.assign(points.begin(), points.end());
}

NeighborResult BruteForceBackend::search(std::span<const Vec3> queries,
                                         const SearchParams& params, Report* report) {
  check_mode_supported(*this, params);
  Timer timer;
  NeighborResult result =
      params.mode == SearchMode::kRange
          ? baselines::brute_force_range(points_, queries, params.radius, params.k)
          : baselines::brute_force_knn(points_, queries, params.radius, params.k);
  if (report) report->time.search += timer.elapsed();
  return result;
}

// --- GridBackend -------------------------------------------------------------

void GridBackend::set_points(std::span<const Vec3> points) {
  points_.assign(points.begin(), points.end());
  range_radius_ = -1.0f;
  knn_radius_ = -1.0f;
}

NeighborResult GridBackend::search(std::span<const Vec3> queries,
                                   const SearchParams& params, Report* report) {
  check_mode_supported(*this, params);
  if (params.mode == SearchMode::kRange) {
    if (range_radius_ != params.radius) {
      Timer build;
      range_.build(points_, params.radius);
      range_radius_ = params.radius;
      if (report) report->time.bvh += build.elapsed();  // structure build phase
    }
    Timer timer;
    NeighborResult result = range_.search(queries, params.k);
    if (report) report->time.search += timer.elapsed();
    return result;
  }
  if (knn_radius_ != params.radius) {
    Timer build;
    knn_.build(points_, params.radius);
    knn_radius_ = params.radius;
    if (report) report->time.bvh += build.elapsed();
  }
  Timer timer;
  NeighborResult result = knn_.search(queries, params.k);
  if (report) report->time.search += timer.elapsed();
  return result;
}

// --- OctreeBackend -----------------------------------------------------------

void OctreeBackend::set_points(std::span<const Vec3> points) {
  points_.assign(points.begin(), points.end());
  built_ = false;
}

NeighborResult OctreeBackend::search(std::span<const Vec3> queries,
                                     const SearchParams& params, Report* report) {
  check_mode_supported(*this, params);
  if (!built_) {
    Timer build;
    octree_.build(points_);
    built_ = true;
    if (report) report->time.bvh += build.elapsed();
  }
  Timer timer;
  NeighborResult result =
      params.mode == SearchMode::kRange
          ? octree_.range_search(queries, params.radius, params.k)
          : octree_.knn_search(queries, params.radius, params.k);
  if (report) report->time.search += timer.elapsed();
  return result;
}

// --- FastRnnBackend ----------------------------------------------------------

NeighborResult FastRnnBackend::search(std::span<const Vec3> queries,
                                      const SearchParams& params, Report* report) {
  check_mode_supported(*this, params);
  SearchParams naive = params;
  naive.opts = OptimizationFlags::none();  // the defining property
  return search_.search(queries, naive, report);
}

}  // namespace rtnn::engine
