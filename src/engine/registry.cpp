#include "engine/registry.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "engine/auto_backend.hpp"
#include "engine/backends.hpp"
#include "engine/sharded_backend.hpp"

namespace rtnn::engine {

BackendRegistry::BackendRegistry() {
  // Built-ins are registered here rather than through global initializers
  // so static-library dead-stripping can never drop them.
  add("brute_force", [] { return std::make_unique<BruteForceBackend>(); });
  add("grid", [] { return std::make_unique<GridBackend>(); });
  add("octree", [] { return std::make_unique<OctreeBackend>(); });
  add("fastrnn", [] { return std::make_unique<FastRnnBackend>(); });
  add("rtnn", [] { return std::make_unique<RtnnBackend>(); });
  add("auto", [] { return std::make_unique<AutoBackend>(); });
  add("sharded", [] { return std::make_unique<ShardedBackend>(); });
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::add(const std::string& name, Factory factory) {
  for (auto& [existing, f] : factories_) {
    if (existing == name) {
      f = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(name, std::move(factory));
}

bool BackendRegistry::contains(std::string_view name) const {
  return std::any_of(factories_.begin(), factories_.end(),
                     [&](const auto& entry) { return entry.first == name; });
}

std::unique_ptr<SearchBackend> BackendRegistry::create(std::string_view name) const {
  for (const auto& [registered, factory] : factories_) {
    if (registered == name) return factory();
  }
  throw Error("unknown search backend: " + std::string(name));
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) result.push_back(name);
  std::sort(result.begin(), result.end());
  return result;
}

std::unique_ptr<SearchBackend> make_backend(std::string_view name) {
  return BackendRegistry::instance().create(name);
}

}  // namespace rtnn::engine
