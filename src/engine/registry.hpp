// By-name construction of SearchBackends.
//
// The built-in backends (brute_force, grid, octree, fastrnn, rtnn, auto)
// are registered when the registry is first touched; applications may add
// their own factories (or shadow a built-in) with add().
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/search_backend.hpp"

namespace rtnn::engine {

class BackendRegistry {
 public:
  using Factory = std::function<std::unique_ptr<SearchBackend>()>;

  /// The process-wide registry, with the built-ins pre-registered.
  static BackendRegistry& instance();

  /// Registers (or replaces) a factory under `name`.
  void add(const std::string& name, Factory factory);

  bool contains(std::string_view name) const;

  /// Constructs a fresh backend; throws rtnn::Error for unknown names.
  std::unique_ptr<SearchBackend> create(std::string_view name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  BackendRegistry();

  std::vector<std::pair<std::string, Factory>> factories_;
};

/// Shorthand for BackendRegistry::instance().create(name).
std::unique_ptr<SearchBackend> make_backend(std::string_view name);

}  // namespace rtnn::engine
