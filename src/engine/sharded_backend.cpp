#include "engine/sharded_backend.hpp"

#include <string>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "core/failpoint.hpp"
#include "core/timing.hpp"
#include "engine/registry.hpp"

namespace rtnn::engine {

ShardedBackend::ShardedBackend(std::string inner, const ShardingOptions& options)
    : inner_name_(std::move(inner)), options_(options) {
  // Probe the inner factory up front: an unknown name or an unsupported
  // cap should fail at construction, not at the first search.
  inner_caps_ = make_backend(inner_name_)->caps();
}

void ShardedBackend::set_points(std::span<const Vec3> points) {
  RTNN_CHECK(!points.empty(), "a sharded backend needs points");
  points_.assign(points.begin(), points.end());
  plan_ = plan_shards(points_, plan_shard_count(points_.size(),
                                               options_.shard_threshold,
                                               options_.max_shards));
  shards_.clear();
  std::vector<Vec3> shard_points;
  for (const ShardPlan::Shard& shard : plan_.shards) {
    shard_points.clear();
    shard_points.reserve(shard.point_ids.size());
    for (const std::uint32_t id : shard.point_ids) shard_points.push_back(points_[id]);
    std::unique_ptr<SearchBackend> backend = make_backend(inner_name_);
    backend->set_index_persistence(persist_);
    backend->set_points(shard_points);
    shards_.push_back(std::move(backend));
  }
}

void ShardedBackend::update_points(std::span<const Vec3> points) {
  RTNN_CHECK(!points.empty(), "an update needs points");
  if (points.size() != points_.size() || shards_.empty()) {
    set_points(points);  // a resize is a new upload, like everywhere else
    return;
  }
  points_.assign(points.begin(), points.end());
  plan_.cloud_bounds = Aabb{};
  std::vector<Vec3> shard_points;
  for (std::size_t s = 0; s < plan_.shards.size(); ++s) {
    ShardPlan::Shard& shard = plan_.shards[s];
    shard_points.clear();
    shard_points.reserve(shard.point_ids.size());
    shard.bounds = Aabb{};
    for (const std::uint32_t id : shard.point_ids) {
      shard_points.push_back(points_[id]);
      shard.bounds.grow(points_[id]);
    }
    plan_.cloud_bounds.grow(shard.bounds);
    shards_[s]->update_points(shard_points);
  }
}

bool ShardedBackend::search_shard_guarded(std::size_t shard,
                                          std::span<const Vec3> queries,
                                          const SearchParams& params, Report* report,
                                          NeighborResult* result) {
  // Bounded retry with exponential backoff: a transiently failing shard
  // (the failure model fault injection provokes) gets max_attempts
  // chances before the degradation policy decides between failing the
  // whole search and dropping this shard from the gather.
  const std::uint32_t attempts = std::max<std::uint32_t>(1, options_.max_attempts);
  std::chrono::nanoseconds backoff = options_.backoff;
  std::string last_error;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    try {
      RTNN_FAILPOINT("sharded.shard_search");
      Report shard_report;
      *result = shards_[shard]->search(queries, params,
                                       report ? &shard_report : nullptr);
      if (report) *report += shard_report;  // exact aggregation, like the service
      return true;
    } catch (const std::exception& e) {
      last_error = e.what();
      if (report && attempt + 1 < attempts) ++report->shard_retries;
    }
  }
  if (!options_.allow_degraded) {
    throw Error("shard " + std::to_string(shard) + "/" +
                std::to_string(shards_.size()) + " failed after " +
                std::to_string(attempts) + " attempt(s): " + last_error);
  }
  last_dropped_.push_back(static_cast<std::uint32_t>(shard));
  if (report) ++report->shards_dropped;
  return false;
}

NeighborResult ShardedBackend::search(std::span<const Vec3> queries,
                                      const SearchParams& params, Report* report) {
  RTNN_CHECK(!shards_.empty(), "set_points() before search()");
  last_dropped_.clear();
  if (shards_.size() == 1) {
    // Unsharded clouds pay nothing: straight delegation, byte-identical
    // to running the inner backend directly.
    return shards_[0]->search(queries, params, report);
  }

  // Scatter: route each query to the shards it can reach. Routing and
  // gather are reorganization work, so their wall time charges to the
  // Opt phase like the scheduler's reorder pass.
  Timer route_timer;
  // elide_sphere_test accepts anything inside the point AABBs — up to
  // sqrt(3)*r away — so the route must widen to match what the inner
  // searches can return.
  const float route_radius =
      params.elide_sphere_test ? params.radius * 1.7320508f : params.radius;
  const ShardRoute route = route_queries(plan_, queries, route_radius);
  total_fanout_ += route.fanout;
  if (report) report->time.opt += route_timer.elapsed();

  std::vector<ShardPartial> partials;
  std::vector<Vec3> shard_queries;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::vector<std::uint32_t>& rows = route.rows[s];
    if (rows.empty()) continue;
    shard_queries.clear();
    shard_queries.reserve(rows.size());
    for (const std::uint32_t row : rows) shard_queries.push_back(queries[row]);
    ShardPartial partial;
    partial.rows = &rows;
    partial.point_ids = &plan_.shards[s].point_ids;
    if (!search_shard_guarded(s, shard_queries, params, report, &partial.result)) {
      continue;  // dropped from the gather (allow_degraded)
    }
    partials.push_back(std::move(partial));
  }

  Timer gather_timer;
  NeighborResult merged = gather_shard_results(points_, queries, params, partials);
  if (report) report->time.opt += gather_timer.elapsed();
  return merged;
}

std::unique_ptr<SearchBackend> ShardedBackend::snapshot() const {
  auto copy = std::make_unique<ShardedBackend>(inner_name_, options_);
  copy->inner_caps_ = inner_caps_;
  copy->persist_ = persist_;
  copy->points_ = points_;
  copy->plan_ = plan_;
  copy->total_fanout_ = total_fanout_;
  // last_dropped_ is per-search scratch; the clone starts clean.
  copy->shards_.reserve(shards_.size());
  for (const std::unique_ptr<SearchBackend>& shard : shards_) {
    std::unique_ptr<SearchBackend> clone = shard->snapshot();
    if (clone == nullptr) return nullptr;
    copy->shards_.push_back(std::move(clone));
  }
  return copy;
}

void ShardedBackend::set_index_persistence(bool on) {
  persist_ = on;
  for (const std::unique_ptr<SearchBackend>& shard : shards_) {
    shard->set_index_persistence(on);
  }
}

}  // namespace rtnn::engine
