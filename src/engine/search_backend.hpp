// The engine layer: one neighbor-search contract, many substrates.
//
// The paper frames neighbor search as a single bounded interface — radius
// r, neighbor cap K, range or KNN mode — served by interchangeable
// implementations (RT-core mapping, classic GPU grids, trees, exhaustive
// search). SearchBackend is that contract: every implementation in this
// repo adapts to it, BackendRegistry constructs them by name, and
// AutoBackend dispatches per call using the calibrated cost model plus
// workload statistics.
//
// Contract:
//   * set_points() uploads the point set; it may be called repeatedly and
//     invalidates any previously built structure.
//   * update_points() moves an already-uploaded set to new positions
//     (same count, same ids) — the dynamic-cloud lifecycle. Backends with
//     caps().dynamic refit their structures in place; the base-class
//     default falls back to set_points() (a full rebuild), so callers
//     drive frame sequences without ever branching on capability.
//   * search() answers `queries` under `params` (same SearchParams as the
//     RTNN core — mode, radius, k). Backends build their spatial index
//     lazily on first search (and rebuild when the radius changes, for
//     radius-keyed structures), so a Report captures build cost in
//     time.bvh, and pure query cost in time.search.
//   * Results use NeighborResult's bounded layout: at most K slots per
//     query. For range search with more than K true neighbors, *which* K
//     are returned is backend-defined (any within-radius subset is valid);
//     KNN results are the K nearest, ascending by distance.
//   * caps() declares what the backend honors; callers must not request a
//     mode (or approximation knob) the backend does not support.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>

#include "core/neighbor_result.hpp"
#include "core/vec3.hpp"
#include "rtnn/neighbor_search.hpp"
#include "rtnn/types.hpp"

namespace rtnn::engine {

/// What a backend supports. Callers gate on these instead of hard-coding
/// backend names (e.g. cuNSearch-style grids are range-only, FastRNN is
/// KNN-only).
struct BackendCaps {
  bool range = false;
  bool knn = false;
  /// Honors the approximate-search knobs (aabb_scale, elide_sphere_test).
  /// Backends without this flag answer exactly and ignore the knobs.
  bool approximate = false;
  /// Fills the launch statistics (IS calls, node visits) of the Report;
  /// every backend fills the phase timings.
  bool launch_stats = false;
  /// update_points() is genuinely cheaper than set_points() + rebuild:
  /// the backend keeps its spatial index alive across frames and refits
  /// it in place (charging the Report's time.refit phase). Backends
  /// without this flag still accept update_points() — it just costs a
  /// rebuild.
  bool dynamic = false;
  /// snapshot() returns an independent copy of the backend — the serving
  /// layer's publish-on-update primitive (src/service). Backends without
  /// this flag return nullptr from snapshot() and cannot serve.
  bool snapshot = false;
};

class SearchBackend {
 public:
  using Report = NeighborSearch::Report;

  virtual ~SearchBackend() = default;

  /// Stable identifier; the name the backend is registered under.
  virtual std::string_view name() const = 0;

  virtual BackendCaps caps() const = 0;

  /// Uploads the search points. Invalidates prior structures.
  virtual void set_points(std::span<const Vec3> points) = 0;

  /// Moves the uploaded points to new positions (same count, same ids) —
  /// one frame of a dynamic sequence. Dynamic backends (caps().dynamic)
  /// refit in place; this default rebuilds via set_points(), so every
  /// backend honors the call.
  virtual void update_points(std::span<const Vec3> points) { set_points(points); }

  virtual std::size_t point_count() const = 0;

  /// Runs a neighbor search. `report`, when non-null, receives phase
  /// timings (and launch statistics when caps().launch_stats).
  virtual NeighborResult search(std::span<const Vec3> queries, const SearchParams& params,
                                Report* report = nullptr) = 0;

  /// An independent copy of this backend — the uploaded points plus any
  /// structures already built — safe to search from another thread while
  /// the original keeps absorbing updates. This is the serving layer's
  /// snapshot primitive: SearchService clones its writer-owned master per
  /// published version, so readers' in-flight batches never share mutable
  /// state with the update path. Copy-on-write where the substrate
  /// supports it (ox::Accel build products are shared, never duplicated),
  /// deep copies elsewhere. Returns nullptr when the backend cannot
  /// snapshot (caps().snapshot is false).
  virtual std::unique_ptr<SearchBackend> snapshot() const { return nullptr; }

  /// Serving hint: keep lazily built index structures alive across
  /// search() calls instead of rebuilding per call, where the backend
  /// distinguishes the two (NeighborSearch's static path builds per call
  /// by default to preserve its historical timing profile). No-op for
  /// backends that always cache.
  virtual void set_index_persistence(bool on) { (void)on; }
};

}  // namespace rtnn::engine
