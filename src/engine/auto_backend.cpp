#include "engine/auto_backend.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "engine/backends.hpp"
#include "engine/registry.hpp"

namespace rtnn::engine {

namespace {

/// Counting-sort grid construction cost per point. Measured on the same
/// substrate as the CostModel defaults (bench/micro_costmodel territory):
/// two passes over the points plus a cell scan.
constexpr double kGridBuildPerPoint = 5.0e-8;

/// Stats grid resolution cap: dispatch needs a density estimate, not the
/// partitioner's fine megacell grid.
constexpr std::uint64_t kStatsGridCells = std::uint64_t{1} << 18;

/// Queries sampled for the density estimate.
constexpr std::size_t kDensitySamples = 64;

}  // namespace

AutoBackend::AutoBackend() = default;

void AutoBackend::set_points(std::span<const Vec3> points) {
  points_.assign(points.begin(), points.end());
  stats_grid_valid_ = false;
  ++generation_;
  ++lineage_;  // a fresh upload: stale slots must rebuild, not refit
}

void AutoBackend::update_points(std::span<const Vec3> points) {
  RTNN_CHECK(!points_.empty(), "set_points() before update_points()");
  RTNN_CHECK(points.size() == points_.size(),
             "update_points() requires the same point count");
  std::copy(points.begin(), points.end(), points_.begin());
  stats_grid_valid_ = false;  // density estimate tracks positions
  ++generation_;              // same lineage: stale slots may refit
}

void AutoBackend::set_cost_model(const CostModel& model) {
  model_ = model;
  for (auto& [name, slot] : backends_) {
    if (name == "rtnn") {
      static_cast<RtnnBackend*>(slot.backend.get())->set_cost_model(model);
    }
  }
}

std::unique_ptr<SearchBackend> AutoBackend::snapshot() const {
  auto copy = std::make_unique<AutoBackend>();
  copy->points_ = points_;
  copy->model_ = model_;
  copy->stats_grid_ = stats_grid_;
  copy->stats_grid_valid_ = stats_grid_valid_;
  copy->generation_ = generation_;
  copy->lineage_ = lineage_;
  copy->persistent_ = persistent_;
  copy->last_choice_ = last_choice_;
  for (const auto& [name, slot] : backends_) {
    Slot cloned;
    cloned.backend = slot.backend->snapshot();
    RTNN_CHECK(cloned.backend != nullptr, "auto candidate cannot snapshot");
    cloned.points_generation = slot.points_generation;
    cloned.upload_lineage = slot.upload_lineage;
    copy->backends_.emplace_back(name, std::move(cloned));
  }
  return copy;
}

void AutoBackend::set_index_persistence(bool on) {
  persistent_ = on;
  for (auto& [name, slot] : backends_) slot.backend->set_index_persistence(on);
}

SearchBackend& AutoBackend::acquire(std::string_view name) {
  for (auto& [existing, slot] : backends_) {
    if (existing == name) {
      if (slot.points_generation != generation_) {
        // Same lineage = the cloud only *moved* since this slot's upload
        // (any number of frames ago): deliver it as a move so dynamic
        // backends refit. A new lineage means a fresh upload.
        if (slot.upload_lineage == lineage_) {
          slot.backend->update_points(points_);
        } else {
          slot.backend->set_points(points_);
        }
        slot.points_generation = generation_;
        slot.upload_lineage = lineage_;
      }
      return *slot.backend;
    }
  }
  Slot slot;
  slot.backend = make_backend(name);
  if (name == "rtnn") {
    static_cast<RtnnBackend*>(slot.backend.get())->set_cost_model(model_);
  }
  slot.backend->set_index_persistence(persistent_);
  slot.backend->set_points(points_);
  slot.points_generation = generation_;
  slot.upload_lineage = lineage_;
  backends_.emplace_back(std::string(name), std::move(slot));
  return *backends_.back().second.backend;
}

WorkloadStats AutoBackend::measure(std::span<const Vec3> queries,
                                   const SearchParams& params) {
  WorkloadStats stats;
  stats.n = points_.size();
  stats.q = queries.size();
  if (points_.empty() || queries.empty()) return stats;

  if (!stats_grid_valid_) {
    stats_grid_.build(points_, kStatsGridCells);
    stats_grid_valid_ = true;
  }

  // Mean population of the 2r box centered on a sampled query — the
  // paper's ρ·S³ density term, measured instead of assumed uniform.
  const std::size_t samples = std::min(queries.size(), kDensitySamples);
  const std::size_t stride = std::max<std::size_t>(1, queries.size() / samples);
  const float r = params.radius;
  double total = 0.0;
  std::size_t taken = 0;
  for (std::size_t i = 0; i < queries.size() && taken < samples; i += stride, ++taken) {
    const Vec3& center = queries[i];
    const Int3 lo = stats_grid_.cell_of({center.x - r, center.y - r, center.z - r});
    const Int3 hi = stats_grid_.cell_of({center.x + r, center.y + r, center.z + r});
    total += static_cast<double>(stats_grid_.count_in_box(lo, hi));
  }
  stats.e_box = taken > 0 ? total / static_cast<double>(taken) : 0.0;
  const double box_volume = 8.0 * static_cast<double>(r) * r * r;
  stats.density = box_volume > 0.0 ? stats.e_box / box_volume : 0.0;
  return stats;
}

std::string_view AutoBackend::predict(const WorkloadStats& stats,
                                      const SearchParams& params) const {
  const auto n = static_cast<double>(stats.n);
  const auto q = static_cast<double>(stats.q);

  // One sphere test per (point, query) pair.
  const double brute = model_.k2 * n * q;

  // Counting-sort build + per-query scan of the 3r cell neighborhood
  // (27/8 the volume of the sampled 2r box).
  const double grid = kGridBuildPerPoint * n + model_.k3_slow * q * stats.e_box * 27.0 / 8.0;

  // BVH build over N AABBs + one IS call per point in each query's 2r box.
  const double is_cost = params.mode == SearchMode::kKnn ? model_.k2 : model_.k3_slow;
  const double rtnn = model_.k1 * n + is_cost * q * stats.e_box;

  if (brute <= grid && brute <= rtnn) return "brute_force";
  return grid <= rtnn ? "grid" : "rtnn";
}

NeighborResult AutoBackend::search(std::span<const Vec3> queries,
                                   const SearchParams& params, Report* report) {
  RTNN_CHECK(!points_.empty(), "set_points() before search()");
  // Fail deterministically up front: dispatch may pick an exact-only
  // candidate, so the approximate knobs are never honored here.
  RTNN_CHECK(params.aabb_scale == 1.0f && !params.elide_sphere_test,
             "AutoBackend answers exactly; approximate knobs not supported");
  const WorkloadStats stats = measure(queries, params);
  last_choice_ = predict(stats, params);
  return acquire(last_choice_).search(queries, params, report);
}

}  // namespace rtnn::engine
