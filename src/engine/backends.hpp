// SearchBackend adapters over the five search implementations in this
// repo: exhaustive reference, uniform-grid (cuNSearch/FRNN analogs),
// octree (PCL analog), FastRNN (naive RT mapping), and full RTNN.
#pragma once

#include <memory>
#include <vector>

#include "baselines/brute_force.hpp"
#include "baselines/grid_knn.hpp"
#include "baselines/grid_search.hpp"
#include "baselines/octree.hpp"
#include "engine/search_backend.hpp"

namespace rtnn::engine {

/// O(N·Q) exhaustive reference ("brute_force").
class BruteForceBackend final : public SearchBackend {
 public:
  std::string_view name() const override { return "brute_force"; }
  BackendCaps caps() const override {
    return {.range = true, .knn = true, .snapshot = true};
  }
  void set_points(std::span<const Vec3> points) override;
  std::size_t point_count() const override { return points_.size(); }
  NeighborResult search(std::span<const Vec3> queries, const SearchParams& params,
                        Report* report) override;
  std::unique_ptr<SearchBackend> snapshot() const override {
    return std::make_unique<BruteForceBackend>(*this);
  }

 private:
  std::vector<Vec3> points_;
};

/// Uniform-grid search ("grid"): cuNSearch-style cell scan for range
/// queries, FRNN-style expanding shells for KNN. The grid is keyed by the
/// search radius, so it is rebuilt lazily when the radius (or mode)
/// changes between calls.
class GridBackend final : public SearchBackend {
 public:
  std::string_view name() const override { return "grid"; }
  BackendCaps caps() const override {
    return {.range = true, .knn = true, .snapshot = true};
  }
  void set_points(std::span<const Vec3> points) override;
  std::size_t point_count() const override { return points_.size(); }
  NeighborResult search(std::span<const Vec3> queries, const SearchParams& params,
                        Report* report) override;
  std::unique_ptr<SearchBackend> snapshot() const override {
    return std::make_unique<GridBackend>(*this);
  }

 private:
  std::vector<Vec3> points_;
  baselines::GridRangeSearch range_;
  baselines::GridKnn knn_;
  float range_radius_ = -1.0f;  // radius the structure was built for
  float knn_radius_ = -1.0f;
};

/// Octree search ("octree"), the PCL analog. Built once per point set.
class OctreeBackend final : public SearchBackend {
 public:
  std::string_view name() const override { return "octree"; }
  BackendCaps caps() const override {
    return {.range = true, .knn = true, .snapshot = true};
  }
  void set_points(std::span<const Vec3> points) override;
  std::size_t point_count() const override { return points_.size(); }
  NeighborResult search(std::span<const Vec3> queries, const SearchParams& params,
                        Report* report) override;
  std::unique_ptr<SearchBackend> snapshot() const override {
    return std::make_unique<OctreeBackend>(*this);
  }

 private:
  std::vector<Vec3> points_;
  baselines::Octree octree_;
  bool built_ = false;
};

/// The naive RT-core mapping ("fastrnn"): one monolithic BVH, input query
/// order, no partitioning or bundling — Evangelou et al.'s prior art. KNN
/// only, like the original.
class FastRnnBackend final : public SearchBackend {
 public:
  std::string_view name() const override { return "fastrnn"; }
  BackendCaps caps() const override {
    return {.knn = true, .launch_stats = true, .dynamic = true, .snapshot = true};
  }
  void set_points(std::span<const Vec3> points) override { search_.set_points(points); }
  /// Even the naive mapping refits: the reference rtnn code assumes the
  /// driver's AS update path for dynamic clouds.
  void update_points(std::span<const Vec3> points) override {
    search_.update_points(points);
  }
  std::size_t point_count() const override { return search_.point_count(); }
  NeighborResult search(std::span<const Vec3> queries, const SearchParams& params,
                        Report* report) override;
  std::unique_ptr<SearchBackend> snapshot() const override {
    return std::make_unique<FastRnnBackend>(*this);
  }
  void set_index_persistence(bool on) override { search_.set_index_persistence(on); }

 private:
  NeighborSearch search_;
};

/// Full RTNN ("rtnn"): scheduling + partitioning + bundling, as configured
/// by params.opts, including the approximate-search knobs.
class RtnnBackend final : public SearchBackend {
 public:
  std::string_view name() const override { return "rtnn"; }
  BackendCaps caps() const override {
    return {.range = true, .knn = true, .approximate = true, .launch_stats = true,
            .dynamic = true, .snapshot = true};
  }
  void set_points(std::span<const Vec3> points) override { search_.set_points(points); }
  /// Dynamic lifecycle: keeps the base-width accel across frames and lets
  /// the cost model refit or rebuild it (Report::time.refit / time.bvh).
  void update_points(std::span<const Vec3> points) override {
    search_.update_points(points);
  }
  std::size_t point_count() const override { return search_.point_count(); }
  NeighborResult search(std::span<const Vec3> queries, const SearchParams& params,
                        Report* report) override {
    return search_.search(queries, params, report);
  }
  /// The snapshot is cheap: the accel's build product is shared
  /// copy-on-write (refitting either side replaces, never mutates, the
  /// shared data), so a publish costs the point/grid copies only.
  std::unique_ptr<SearchBackend> snapshot() const override {
    return std::make_unique<RtnnBackend>(*this);
  }
  void set_index_persistence(bool on) override { search_.set_index_persistence(on); }

  /// Supplies a calibrated cost model for bundling decisions.
  void set_cost_model(const CostModel& model) { search_.set_cost_model(model); }
  NeighborSearch& core() { return search_; }

 private:
  NeighborSearch search_;
};

}  // namespace rtnn::engine
