#include "bench/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/error.hpp"
#include "core/parallel.hpp"

#ifndef RTNN_GIT_SHA
#define RTNN_GIT_SHA "unknown"
#endif
#ifndef RTNN_BUILD_TYPE
#define RTNN_BUILD_TYPE "unknown"
#endif

namespace rtnn::bench {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Inf; clamp to 0 (only arises from degenerate runs).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void append_timing(std::ostringstream& os, const TimingRecord& t, const char* indent) {
  os << indent << "{\n";
  os << indent << "  \"name\": \"" << json_escape(t.name) << "\",\n";
  os << indent << "  \"unit\": \"s\",\n";
  os << indent << "  \"samples\": [";
  for (std::size_t i = 0; i < t.stats.samples.size(); ++i) {
    if (i) os << ", ";
    os << json_number(t.stats.samples[i]);
  }
  os << "],\n";
  os << indent << "  \"min\": " << json_number(t.stats.min) << ",\n";
  os << indent << "  \"max\": " << json_number(t.stats.max) << ",\n";
  os << indent << "  \"mean\": " << json_number(t.stats.mean) << ",\n";
  os << indent << "  \"median\": " << json_number(t.stats.median) << ",\n";
  os << indent << "  \"mad\": " << json_number(t.stats.mad) << ",\n";
  os << indent << "  \"work_items\": " << json_number(t.work_items) << ",\n";
  os << indent << "  \"throughput_per_s\": " << json_number(t.throughput) << "\n";
  os << indent << "}";
}

void append_metric(std::ostringstream& os, const MetricRecord& m, const char* indent) {
  os << indent << "{ \"name\": \"" << json_escape(m.name)
     << "\", \"value\": " << json_number(m.value) << ", \"unit\": \""
     << json_escape(m.unit) << "\" }";
}

}  // namespace

Environment capture_environment() {
  Environment env;
  if (const char* sha = std::getenv("RTNN_GIT_SHA")) {
    env.git_sha = sha;
  } else if (const char* sha2 = std::getenv("GITHUB_SHA")) {
    env.git_sha = sha2;
  } else {
    env.git_sha = RTNN_GIT_SHA;
  }
#if defined(__clang__)
  env.compiler = std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  env.compiler = std::string("gcc ") + __VERSION__;
#else
  env.compiler = "unknown";
#endif
  env.build_type = RTNN_BUILD_TYPE;
#if defined(__linux__)
  env.os = "linux";
#elif defined(__APPLE__)
  env.os = "darwin";
#elif defined(_WIN32)
  env.os = "windows";
#else
  env.os = "unknown";
#endif
  env.threads = num_threads();
  env.hardware_concurrency = static_cast<int>(std::thread::hardware_concurrency());
  return env;
}

std::string report_json(const SuiteResult& suite, const Environment& env,
                        const std::string& tag) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << kReportSchemaVersion << ",\n";
  os << "  \"generator\": \"rtnn_bench\",\n";
  os << "  \"tag\": \"" << json_escape(tag) << "\",\n";
  os << "  \"environment\": {\n";
  os << "    \"git_sha\": \"" << json_escape(env.git_sha) << "\",\n";
  os << "    \"compiler\": \"" << json_escape(env.compiler) << "\",\n";
  os << "    \"build_type\": \"" << json_escape(env.build_type) << "\",\n";
  os << "    \"os\": \"" << json_escape(env.os) << "\",\n";
  os << "    \"threads\": " << env.threads << ",\n";
  os << "    \"hardware_concurrency\": " << env.hardware_concurrency << "\n";
  os << "  },\n";
  os << "  \"options\": {\n";
  os << "    \"filter\": \"" << json_escape(suite.options.filter) << "\",\n";
  os << "    \"repeats\": " << suite.options.repeats << ",\n";
  os << "    \"warmup\": " << suite.options.warmup << ",\n";
  os << "    \"scale\": " << json_number(suite.options.scale) << ",\n";
  os << "    \"seed\": " << suite.options.seed << ",\n";
  os << "    \"threads\": " << suite.options.threads << "\n";
  os << "  },\n";
  os << "  \"cases\": [\n";
  for (std::size_t c = 0; c < suite.results.size(); ++c) {
    const CaseResult& r = suite.results[c];
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(r.name) << "\",\n";
    os << "      \"status\": \"" << json_escape(r.status) << "\",\n";
    if (!r.error.empty()) {
      os << "      \"error\": \"" << json_escape(r.error) << "\",\n";
    }
    os << "      \"wall_seconds\": " << json_number(r.wall_seconds) << ",\n";
    os << "      \"timings\": [\n";
    for (std::size_t i = 0; i < r.timings.size(); ++i) {
      append_timing(os, r.timings[i], "        ");
      os << (i + 1 < r.timings.size() ? ",\n" : "\n");
    }
    os << "      ],\n";
    os << "      \"metrics\": [\n";
    for (std::size_t i = 0; i < r.metrics.size(); ++i) {
      append_metric(os, r.metrics[i], "        ");
      os << (i + 1 < r.metrics.size() ? ",\n" : "\n");
    }
    os << "      ]\n";
    os << "    }" << (c + 1 < suite.results.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

void write_report(const std::string& path, const SuiteResult& suite,
                  const Environment& env, const std::string& tag) {
  std::ofstream out(path);
  RTNN_CHECK(out.good(), "cannot open report file: " + path);
  out << report_json(suite, env, tag);
  out.flush();
  RTNN_CHECK(out.good(), "failed writing report file: " + path);
}

std::string default_report_path(const std::string& tag) {
  return "BENCH_" + tag + ".json";
}

}  // namespace rtnn::bench
