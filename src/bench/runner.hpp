// The benchmark runner: executes registered cases under a warmup/repeat
// policy and collects named timings + scalar metrics into machine-readable
// results (see bench/report.hpp for the JSON form).
//
// Measurement policy: every CaseContext::time()/sample() call runs
// `warmup` discarded invocations followed by `repeats` measured ones and
// records the full sample vector with min/median/MAD. The return value is
// the min — the number the per-figure console tables print.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/stats.hpp"

namespace rtnn::bench {

struct RunnerOptions {
  int repeats = 3;  // measured invocations per timing
  int warmup = 1;   // discarded invocations per timing
  double scale = 0.02;       // dataset scale relative to the paper
  std::uint64_t seed = 0;    // dataset RNG seed offset (0 = canonical sets)
  int threads = 0;           // resolved worker count (0 = not recorded); the
                             // CLI fills it so reports carry the sweep point
  bool verbose = true;       // print per-case headers and footers
  std::string filter;        // recorded in the report for provenance
};

/// One named timing: the repeated-measurement record behind a table cell.
struct TimingRecord {
  std::string name;
  Stats stats;                // seconds
  double work_items = 0.0;    // items per invocation (0 = not throughput-bearing)
  double throughput = 0.0;    // work_items / median seconds
};

/// One named scalar (speedup, hit rate, exponent, counter...).
struct MetricRecord {
  std::string name;
  double value = 0.0;
  std::string unit;  // "x", "%", "ns", "" ...
};

struct CaseResult {
  std::string name;
  std::string status = "ok";  // "ok" | "error"
  std::string error;          // what() when status == "error"
  double wall_seconds = 0.0;
  std::vector<TimingRecord> timings;
  std::vector<MetricRecord> metrics;
};

struct SuiteResult {
  RunnerOptions options;
  std::vector<CaseResult> results;
  bool all_ok() const;
};

/// Per-call overrides for CaseContext::time()/sample().
struct TimeOptions {
  int repeats = -1;        // <0 = runner default
  int warmup = -1;         // <0 = runner default
  double work_items = 0.0; // enables queries/sec (items/sec) throughput
};

/// Handed to each case body: measurement API + run parameters.
class CaseContext {
 public:
  CaseContext(const RunnerOptions& options, CaseResult& result)
      : options_(options), result_(result) {}

  double scale() const { return options_.scale; }
  std::uint64_t seed() const { return options_.seed; }
  int repeats() const { return options_.repeats; }
  int warmup() const { return options_.warmup; }

  /// Times `fn` under the warmup/repeat policy, records the stats under
  /// `name`, and returns the min in seconds.
  double time(const std::string& name, const std::function<void()>& fn,
              const TimeOptions& opts = {});

  /// Like time(), but `fn` returns the sample value itself — for
  /// sub-phase timings (e.g. report.time.search) where wall clock of the
  /// whole call would over-count.
  double sample(const std::string& name, const std::function<double()>& fn,
                const TimeOptions& opts = {});

  /// Records a derived scalar under `name`.
  void metric(const std::string& name, double value, const std::string& unit = "");

 private:
  const RunnerOptions& options_;
  CaseResult& result_;
};

/// Runs `cases` in order; a case that throws is recorded as status
/// "error" and the suite continues.
SuiteResult run_cases(const std::vector<const CaseInfo*>& cases,
                      const RunnerOptions& options);

}  // namespace rtnn::bench
