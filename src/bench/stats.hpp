// Robust summary statistics for repeated measurements.
//
// The runner's policy is min-of-N for headline numbers (min is the least
// noise-contaminated estimator of the true cost on a quiet machine) with
// median/MAD reported alongside so regressions can be judged against a
// robust location/spread pair instead of a single shot.
#pragma once

#include <functional>
#include <vector>

namespace rtnn::bench {

/// Summary of one repeated measurement. All fields are 0 for an empty
/// sample set (the documented degenerate value — see stats tests).
struct Stats {
  std::vector<double> samples;  // in execution order
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double mad = 0.0;  // median absolute deviation from the median

  static Stats from_samples(std::vector<double> samples);
};

/// Median (average of the middle two for even sizes); 0 on empty input.
double median_of(std::vector<double> values);

/// Median absolute deviation from the median; 0 on empty input.
double mad_of(const std::vector<double>& values);

/// Geometric mean; 0 on empty input.
double geomean(const std::vector<double>& values);

/// Wall-clock seconds of one invocation (steady clock). The single-shot
/// primitive under CaseContext::time(); benches should prefer the
/// context's min-of-N API and reach for this only inside search loops
/// that are themselves a min over many trials (e.g. the fig13 Oracle).
double time_call(const std::function<void()>& fn);

}  // namespace rtnn::bench
