// Machine-readable perf reports: environment capture + the versioned JSON
// writer behind `rtnn_bench --json` / BENCH_<tag>.json.
//
// Schema (version 1):
//
//   {
//     "schema_version": 1,
//     "generator": "rtnn_bench",
//     "tag": "<tag>",
//     "environment": { "git_sha", "compiler", "build_type", "os",
//                      "threads", "hardware_concurrency" },
//     "options":     { "filter", "repeats", "warmup", "scale", "seed" },
//     "cases": [ {
//       "name", "status", "error"?, "wall_seconds",
//       "timings": [ { "name", "unit": "s", "samples": [...],
//                      "min", "max", "mean", "median", "mad",
//                      "work_items", "throughput_per_s" } ],
//       "metrics": [ { "name", "value", "unit" } ]
//     } ]
//   }
//
// Consumers key timings by (case name, timing name); those names are
// stable across scales and machines. tools/bench_compare.py implements
// the CI regression gate over this schema.
#pragma once

#include <string>

#include "bench/runner.hpp"

namespace rtnn::bench {

/// Bump when the JSON layout changes incompatibly.
inline constexpr int kReportSchemaVersion = 1;

struct Environment {
  std::string git_sha;     // GITHUB_SHA/RTNN_GIT_SHA env, else configure-time sha
  std::string compiler;    // e.g. "gcc 12.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE at compile time
  std::string os;
  int threads = 1;               // rtnn worker threads
  int hardware_concurrency = 0;  // std::thread::hardware_concurrency
};

Environment capture_environment();

/// The full report as a JSON string (pretty-printed, trailing newline).
std::string report_json(const SuiteResult& suite, const Environment& env,
                        const std::string& tag);

/// Writes report_json() to `path`; throws rtnn::Error on I/O failure.
void write_report(const std::string& path, const SuiteResult& suite,
                  const Environment& env, const std::string& tag);

/// "BENCH_<tag>.json"
std::string default_report_path(const std::string& tag);

}  // namespace rtnn::bench
