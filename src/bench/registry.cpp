#include "bench/registry.hpp"

#include <algorithm>
#include <regex>

#include "core/error.hpp"

namespace rtnn::bench {

BenchRegistry& BenchRegistry::instance() {
  static BenchRegistry registry;
  return registry;
}

bool BenchRegistry::add(CaseInfo info) {
  RTNN_CHECK(!info.name.empty(), "bench case needs a name");
  RTNN_CHECK(static_cast<bool>(info.fn), "bench case '" + info.name + "' has no body");
  for (const CaseInfo& existing : cases_) {
    RTNN_CHECK(existing.name != info.name,
               "duplicate bench case name: " + info.name);
  }
  const auto pos = std::lower_bound(
      cases_.begin(), cases_.end(), info,
      [](const CaseInfo& a, const CaseInfo& b) { return a.name < b.name; });
  cases_.insert(pos, std::move(info));
  return true;
}

std::vector<const CaseInfo*> BenchRegistry::match(const std::string& filter) const {
  std::vector<const CaseInfo*> out;
  if (filter.empty()) {
    for (const CaseInfo& c : cases_) out.push_back(&c);
    return out;
  }
  std::regex re;
  try {
    re = std::regex(filter, std::regex::ECMAScript);
  } catch (const std::regex_error& e) {
    throw Error("bad --filter regex '" + filter + "': " + e.what());
  }
  for (const CaseInfo& c : cases_) {
    if (std::regex_search(c.name, re)) out.push_back(&c);
  }
  return out;
}

}  // namespace rtnn::bench
