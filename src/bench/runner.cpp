#include "bench/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "core/parallel.hpp"
#include "core/timing.hpp"

namespace rtnn::bench {

bool SuiteResult::all_ok() const {
  return std::all_of(results.begin(), results.end(),
                     [](const CaseResult& r) { return r.status == "ok"; });
}

double CaseContext::sample(const std::string& name, const std::function<double()>& fn,
                           const TimeOptions& opts) {
  const int repeats = std::max(1, opts.repeats >= 0 ? opts.repeats : options_.repeats);
  const int warmup = std::max(0, opts.warmup >= 0 ? opts.warmup : options_.warmup);
  for (int i = 0; i < warmup; ++i) (void)fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int i = 0; i < repeats; ++i) samples.push_back(fn());

  TimingRecord record;
  record.name = name;
  record.stats = Stats::from_samples(std::move(samples));
  record.work_items = opts.work_items;
  if (opts.work_items > 0.0 && record.stats.median > 0.0) {
    record.throughput = opts.work_items / record.stats.median;
  }
  const double min = record.stats.min;
  result_.timings.push_back(std::move(record));
  return min;
}

double CaseContext::time(const std::string& name, const std::function<void()>& fn,
                         const TimeOptions& opts) {
  return sample(name, [&fn] { return time_call(fn); }, opts);
}

void CaseContext::metric(const std::string& name, double value, const std::string& unit) {
  result_.metrics.push_back({name, value, unit});
}

namespace {

void print_case_header(const CaseInfo& info, const RunnerOptions& options) {
  std::printf("\n================================================================\n");
  std::printf("[%s] %s\n", info.name.c_str(), info.title.c_str());
  std::printf("paper: %s\n", info.paper.c_str());
  if (!info.note.empty()) std::printf("note:  %s\n", info.note.c_str());
  std::printf("scale: %gx paper sizes, threads=%d, seed=%llu, repeats=%d+%d warmup\n",
              options.scale, num_threads(),
              static_cast<unsigned long long>(options.seed), options.repeats,
              options.warmup);
  std::printf("================================================================\n");
  std::fflush(stdout);
}

}  // namespace

SuiteResult run_cases(const std::vector<const CaseInfo*>& cases,
                      const RunnerOptions& options) {
  SuiteResult suite;
  suite.options = options;
  for (const CaseInfo* info : cases) {
    CaseResult result;
    result.name = info->name;
    if (options.verbose) print_case_header(*info, options);
    CaseContext ctx(options, result);
    Timer timer;
    try {
      info->fn(ctx);
    } catch (const std::exception& e) {
      result.status = "error";
      result.error = e.what();
      std::fprintf(stderr, "[%s] FAILED: %s\n", info->name.c_str(), e.what());
    }
    result.wall_seconds = timer.elapsed();
    if (options.verbose) {
      std::printf("[%s] %s in %.2fs (%zu timings, %zu metrics)\n", info->name.c_str(),
                  result.status.c_str(), result.wall_seconds, result.timings.size(),
                  result.metrics.size());
      std::fflush(stdout);
    }
    suite.results.push_back(std::move(result));
  }
  return suite;
}

}  // namespace rtnn::bench
