// Umbrella header for the benchmark-runner subsystem.
//
//   #include "bench/bench.hpp"
//
// Layers: registry (BenchCase registration) -> runner (warmup/repeat
// policy, CaseContext measurement API) -> stats (min/median/MAD/geomean)
// -> report (environment capture + versioned JSON). The rtnn_bench CLI
// (bench/main.cpp) drives them; see README.md "Benchmarking".
#pragma once

#include "bench/registry.hpp"
#include "bench/report.hpp"
#include "bench/runner.hpp"
#include "bench/stats.hpp"
