#include "bench/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/timing.hpp"

namespace rtnn::bench {

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

double mad_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double med = median_of(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) deviations.push_back(std::abs(v - med));
  return median_of(std::move(deviations));
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(std::max(v, 1e-300));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double time_call(const std::function<void()>& fn) {
  Timer timer;
  fn();
  return timer.elapsed();
}

Stats Stats::from_samples(std::vector<double> samples) {
  Stats s;
  s.samples = std::move(samples);
  if (s.samples.empty()) return s;
  s.min = *std::min_element(s.samples.begin(), s.samples.end());
  s.max = *std::max_element(s.samples.begin(), s.samples.end());
  double sum = 0.0;
  for (const double v : s.samples) sum += v;
  s.mean = sum / static_cast<double>(s.samples.size());
  s.median = median_of(s.samples);
  s.mad = mad_of(s.samples);
  return s;
}

}  // namespace rtnn::bench
