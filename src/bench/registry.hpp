// BenchCase registry: every figure/micro harness registers itself here at
// static-init time and the rtnn_bench CLI lists/filters/runs them.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace rtnn::bench {

class CaseContext;

/// One registered benchmark case (one paper figure or micro suite).
struct CaseInfo {
  std::string name;   // stable id used by --filter and JSON ("fig11", "micro.steps")
  std::string title;  // header line ("Figure 11 — ...")
  std::string paper;  // the paper's headline result for this figure
  std::string note;   // substrate note (optional)
  std::function<void(CaseContext&)> fn;
};

class BenchRegistry {
 public:
  /// The process-wide registry.
  static BenchRegistry& instance();

  /// Registers a case; throws rtnn::Error on a duplicate name. Returns
  /// true so the RTNN_BENCH_CASE macro can register from a static
  /// initializer.
  bool add(CaseInfo info);

  /// All cases, sorted by name.
  const std::vector<CaseInfo>& cases() const { return cases_; }

  /// Cases whose name matches `filter` as a partial ECMAScript regex
  /// (empty filter = all cases). Throws rtnn::Error on a bad pattern.
  std::vector<const CaseInfo*> match(const std::string& filter) const;

 private:
  std::vector<CaseInfo> cases_;
};

/// Defines and registers a bench case:
///
///   RTNN_BENCH_CASE(fig11, "fig11", "Figure 11 — ...", "paper result", "") {
///     auto ds = bench::paper_dataset("KITTI-1M", ctx.scale(), 16, ctx.seed());
///     ctx.time("range.rtnn.KITTI-1M", [&] { ... });
///   }
#define RTNN_BENCH_CASE(ident, name, title, paper, note)                     \
  static void rtnn_bench_run_##ident(::rtnn::bench::CaseContext& ctx);       \
  [[maybe_unused]] static const bool rtnn_bench_registered_##ident =         \
      ::rtnn::bench::BenchRegistry::instance().add(                          \
          {name, title, paper, note, &rtnn_bench_run_##ident});              \
  static void rtnn_bench_run_##ident(::rtnn::bench::CaseContext& ctx)

}  // namespace rtnn::bench
