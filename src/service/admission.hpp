// Admission control for the serving layer: per-cloud token buckets and
// queue-depth caps.
//
// Overload policy (see service.hpp for the full error-state contract):
// a request that arrives when its cloud's token bucket is empty, or when
// the cloud already has max_queue_depth requests pending, is *shed* —
// rejected immediately at submit() with RejectReason::kAdmission instead
// of being queued. Shedding at the door is what keeps the p99 of the
// admitted requests flat under overload: the dispatcher's queue never
// grows beyond what the configured rate can drain, so admitted requests
// wait one batching tick, not an unbounded backlog.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>

namespace rtnn::service {

/// Per-cloud admission policy, fixed at register_cloud(). Default: off
/// (every request is admitted and queued).
struct AdmissionOptions {
  /// Sustained admission rate in requests/second; 0 disables the bucket.
  double tokens_per_second = 0.0;
  /// Bucket capacity: how many requests a quiet cloud can absorb at
  /// once before the sustained rate gates (the burst allowance).
  double burst = 64.0;
  /// Cap on a cloud's pending (admitted, unserved) requests; one more
  /// is shed. 0 = unbounded.
  std::size_t max_queue_depth = 0;
};

/// Classic token bucket over a caller-supplied clock reading, so unit
/// tests drive it deterministically (the service passes
/// steady_clock::now()). Not thread-safe: the service serializes access
/// under its per-cloud admission lock.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double tokens_per_second, double burst)
      : rate_(tokens_per_second), burst_(burst), tokens_(burst) {}

  /// True while the bucket never gates (rate 0 = admission off).
  bool unlimited() const { return rate_ <= 0.0; }

  /// Takes one token if available at `now`; false = shed. Refills at
  /// `rate_` tokens/second since the previous call, capped at `burst_`.
  bool try_take(std::chrono::steady_clock::time_point now) {
    if (unlimited()) return true;
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Tokens available at `now` (refills as a side effect).
  double available(std::chrono::steady_clock::time_point now) {
    refill(now);
    return tokens_;
  }

 private:
  void refill(std::chrono::steady_clock::time_point now) {
    if (!started_) {
      started_ = true;
      last_ = now;
      return;
    }
    const double elapsed = std::chrono::duration<double>(now - last_).count();
    if (elapsed > 0.0) {
      tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
      last_ = now;
    }
  }

  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  std::chrono::steady_clock::time_point last_{};
  bool started_ = false;
};

}  // namespace rtnn::service
