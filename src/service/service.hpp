// The serving layer: many named point clouds, many concurrent callers.
//
// Every entry point below the service — NeighborSearch::search(), the
// engine backends, DynamicSearchSession — is single-caller: one thread
// owns the index and queries arrive as one monolithic array. SearchService
// turns that machinery into a concurrent multi-tenant request server:
//
//   * A *cloud registry* maps names to tenants: register_cloud() admits a
//     named cloud with its own backend choice, sharding, optimizer knobs,
//     and admission policy (CloudConfig); drop_cloud() retires it;
//     submit()/query()/update_points() address a cloud through the
//     CloudHandle register_cloud() returned (or by name). Each cloud owns
//     its writer-side master backend and snapshot chain. Indexes build on
//     demand at the first request (or eagerly — build_on_register, with
//     an optional warmup probe), and a max_resident_clouds cap evicts the
//     least-recently-used cold index; evicted clouds keep their points
//     and rebuild transparently when traffic returns.
//   * Every cloud lives behind immutable, refcounted index snapshots
//     (publish-on-update atop the engine's SearchBackend::snapshot(),
//     which shares ox::Accel build products copy-on-write). Readers pin
//     the snapshot current at dispatch time; update_points() builds and
//     publishes the *next* snapshot on the writer's thread — readers are
//     never blocked and never observe a half-updated index.
//   * Clouds above CloudConfig::shard_threshold split into Morton-
//     contiguous *spatial shards* (engine::ShardedBackend over
//     rtnn/sharding.hpp): queries scatter to the shards whose tight AABB
//     lies within the search radius, per-shard results gather exactly
//     (Reports sum through Report::operator+=, KNN merges through
//     FlatKnnHeaps), and the whole snapshot/dispatch machinery — batch
//     optimizer included — composes unchanged because a sharded cloud is
//     just another SearchBackend.
//   * Requests from any number of threads are coalesced by one dispatcher
//     into batched launches, grouped per cloud per tick: all compatible
//     pending requests of a cloud merge into one backend search, and the
//     tick's merged rows run the batch optimizer (bin by batch_key() →
//     Morton reorder → coincident dedup) exactly as in the single-cloud
//     service. Results scatter back via rtnn::split_batch_result.
//   * *Admission control* guards each cloud's door: a token bucket
//     (sustained rate + burst) and a pending-request cap
//     (AdmissionOptions). A request over either limit is shed at
//     submit() — its Ticket is already rejected, and Ticket::get()
//     throws ServiceError with RejectReason::kAdmission — instead of
//     being queued, so overload cannot grow the backlog and admitted
//     requests keep a flat p99 (measured by bench/serving_sharded.cpp).
//
// Error-state contract. Ticket::get()/try_get() throw ServiceError;
// reason() says which door refused. The full table:
//
//   reason      | thrown from          | meaning / when
//   ------------|----------------------|----------------------------------
//   kBackend    | get(), try_get()     | Admitted and dispatched, but the
//               |                      | cloud's backend rejected the bin:
//               |                      | params it cannot serve (caps
//               |                      | mismatch, approximate knobs on an
//               |                      | exact backend), an exhausted
//               |                      | shard with allow_degraded off, or
//               |                      | an injected fault. Only the
//               |                      | request's bin failed; the tick's
//               |                      | other bins still serve.
//   kAdmission  | get(), try_get()     | Shed at submit() by the cloud's
//               |                      | token bucket or queue-depth cap.
//               |                      | Never queued, never dispatched;
//               |                      | retry later or at a lower rate.
//   kDeadline   | get(), try_get()     | The request's deadline expired
//               |                      | before its batch launched — at
//               |                      | submit() (already expired), in
//               |                      | the dispatcher's queue, or at
//               |                      | the pre-launch check. A request
//               |                      | whose launch already started is
//               |                      | served even if it finishes late.
//   kShutdown   | submit(), query(),   | The service shut down or the
//               | update_points(),     | cloud was dropped. Thrown
//               | get(), try_get()     | directly by entry points once
//               |                      | stopped; thrown from get() when
//               |                      | the drop landed while the
//               |                      | request was queued (drop_cloud
//               |                      | rejects the queue's leftovers
//               |                      | instead of serving them). A
//               |                      | shutdown drain still *serves*
//               |                      | requests admitted in time.
//   kInvalid    | register_cloud(),    | Malformed input refused at the
//               | update_points()      | door: an empty point cloud (a
//               |                      | cloud with no points has no
//               |                      | bounds to index or route by —
//               |                      | drop_cloud() is the way to
//               |                      | retire one). Nothing was
//               |                      | registered or modified.
//
// Never silent: every admitted ticket is eventually signaled — served,
// or rejected with one of the reasons above — even across a watchdog
// dispatcher restart. A degraded answer (shards dropped under
// allow_degraded) is *served*, with RequestOutcome::degraded set and the
// dropped shard ids listed, never thrown.
//
// Robustness layer (PR 8): every request may carry a deadline
// (RequestOptions), the sharded backend retries failing shards with
// backoff and can serve flagged partial results (CloudConfig::
// shard_max_attempts / shard_backoff / shard_allow_degraded), a watchdog
// restarts a stalled dispatcher (ServiceConfig::stall_timeout) and
// health() reports liveness, and deterministic failpoints
// (core/failpoint.hpp) are compiled into the scatter-gather path
// ("sharded.shard_search"), snapshot publish ("service.publish"), LRU
// eviction ("service.evict"), and the dispatcher tick
// ("service.dispatch.tick", "service.dispatch.launch") so every one of
// these recovery paths is testable on demand (tests/test_chaos.cpp).
//
//   SearchService service;                         // multi-tenant form
//   CloudHandle city = service.register_cloud("city", city_points, {});
//   auto outcome = service.query(city, queries, params);     // sync
//   auto ticket = service.submit(city, queries, params);     // async
//   ... ticket.try_get() / ticket.get() ...
//   service.update_points(city, moved);            // writer path
//   service.drop_cloud("city");
//
// Migration from the single-cloud API (PR-5/6): the old constructor
// still works and is exactly a registry of size one —
//
//   SearchService service(points, options);        // registers "default"
//   service.query(queries, params);                // default-cloud compat
//
// addresses the implicit "default" cloud; ServiceOptions forwards to
// ServiceConfig + CloudConfig (see the deprecated aggregate below).
//
// Reports aggregate per request rather than per call: each outcome
// carries the Report of the coalesced batch it rode in, and stats()
// exposes exactly-summed totals — service-wide or per cloud
// (stats(handle)); batch counters sum via Report::operator+=.
//
// Threading contract: every public method is safe from any thread.
// Backend search state is only ever touched by the dispatcher thread
// (snapshots) and the update path (each cloud's master, under that
// cloud's writer lock), so the backends themselves need no internal
// locking. Writers to different clouds never contend.
//
// See README.md ("Serving") for the registry lifecycle, the shard
// scatter-gather walkthrough, and the admission semantics, and
// examples/multi_tenant_demo.cpp for a full multi-tenant program.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/neighbor_result.hpp"
#include "core/parallel.hpp"
#include "core/vec3.hpp"
#include "engine/search_backend.hpp"
#include "rtnn/neighbor_search.hpp"
#include "rtnn/types.hpp"
#include "service/admission.hpp"

namespace rtnn::service {

/// Which door refused a request (ServiceError::reason(); full contract
/// in the header comment above).
enum class RejectReason : std::uint8_t {
  kBackend,    // dispatched, but the cloud's backend rejected the params
  kAdmission,  // shed at submit() by the token bucket / queue-depth cap
  kShutdown,   // service shut down or cloud dropped before serving
  kDeadline,   // the request's deadline expired before its launch started
  kInvalid,    // malformed registration/update (e.g. an empty point cloud)
};

/// What Ticket::get()/try_get() (and refused submits) throw. Derives
/// from rtnn::Error so existing catch sites keep working.
class ServiceError : public Error {
 public:
  ServiceError(RejectReason reason, const std::string& what)
      : Error(what), reason_(reason) {}
  RejectReason reason() const { return reason_; }

 private:
  RejectReason reason_;
};

/// Service-wide configuration (the dispatcher and the registry's
/// residency policy), fixed at construction.
struct ServiceConfig {
  /// Coalescing caps per tick: a batch dispatches as soon as it holds
  /// this many query rows (or requests), even if the tick is not over.
  std::size_t max_batch_queries = std::size_t{1} << 15;
  std::size_t max_batch_requests = 1024;
  /// The batching tick: how long the oldest pending request waits for
  /// company before its batch dispatches. 0 = dispatch immediately
  /// (degenerates to per-request launches; useful for tests).
  std::chrono::microseconds max_delay{200};
  /// Resident-index cap across the registry: at most this many clouds
  /// keep a built index at once; registering or rebuilding past the cap
  /// evicts the least-recently-used other cloud (its points survive and
  /// it rebuilds on the next request). 0 = never evict.
  std::size_t max_resident_clouds = 0;

  // --- Watchdog (self-healing dispatch) ---

  /// A dispatcher with work outstanding whose heartbeat does not advance
  /// for this long is declared stalled: the watchdog quarantines the
  /// published snapshots (so the replacement never shares backend scratch
  /// with the wedged thread), starts a fresh dispatcher, and the stale
  /// one hands its in-flight requests back to the queue when it wakes —
  /// tickets are always resolved, never abandoned. 0 (the default)
  /// disables the watchdog thread entirely. The timeout must comfortably
  /// exceed the longest legitimate batch: a restart while the old
  /// dispatcher is genuinely inside a launch re-runs that work.
  std::chrono::milliseconds stall_timeout{0};
  /// How often the watchdog samples the heartbeat (also the health()
  /// staleness granularity). Only meaningful with stall_timeout > 0.
  std::chrono::milliseconds watchdog_interval{20};
};

/// Per-cloud configuration, fixed at register_cloud().
struct CloudConfig {
  /// Engine backend this cloud snapshots and serves (BackendRegistry
  /// name). Must declare caps().snapshot.
  std::string backend = "rtnn";

  // --- Index lifecycle ---

  /// Build the index at register_cloud() (the single-cloud service's
  /// historical behavior). false = build on demand: registration just
  /// stores the points, and the first request pays the build.
  bool build_on_register = true;
  /// Warm every build (registration, rebuild after eviction) with a
  /// one-probe search under these params, so the first real request
  /// never pays first-search lazy work.
  std::optional<SearchParams> warmup;

  // --- Spatial sharding (engine::ShardedBackend) ---

  /// Points per shard before this cloud splits into Morton-contiguous
  /// spatial shards. 0 = never shard (the backend serves the cloud
  /// whole). Clouds at or below the threshold behave byte-identically
  /// to an unsharded cloud.
  std::size_t shard_threshold = 0;
  /// Upper bound on the split, whatever the cloud size. 0 = unbounded
  /// (the codebase-wide "0 = no cap" contract).
  std::uint32_t max_shards = 16;

  // --- Two-level tiled index (rtnn::TileOptions; unsharded clouds
  // only — a sharded cloud already decomposes spatially per shard) ---

  /// Points per tile before this cloud's base index becomes a TLAS over
  /// Morton-contiguous tiles instead of one monolithic BVH. 0 = never
  /// tile. Ignored when the cloud shards (shard_threshold wins; tiling a
  /// shard would nest two spatial splits for no locality gain).
  std::size_t tile_threshold = 0;
  /// Upper bound on the tile count. 0 = unbounded.
  std::uint32_t max_tiles = 0;
  /// Defer each tile's bottom-level build until a query first routes to
  /// it; registration pays only tile bounds and the top-level tree.
  bool lazy_tile_build = true;

  // --- Per-shard fault isolation (engine::ShardingOptions; the
  // degradation ladder: retry -> degrade-or-fail) ---

  /// Search attempts per shard per launch (1 = no retry): a throwing
  /// shard is retried this many times before the failure policy applies.
  std::uint32_t shard_max_attempts = 1;
  /// Sleep before the first shard retry; doubles per attempt.
  std::chrono::microseconds shard_backoff{0};
  /// What happens when a shard exhausts its attempts: false (default) =
  /// the whole bin fails typed (ServiceError(kBackend)); true = the
  /// shard is dropped from the gather and the request *serves* with
  /// RequestOutcome::degraded set and the dropped shard ids listed.
  bool shard_allow_degraded = false;

  // --- Admission control (see admission.hpp) ---

  AdmissionOptions admission;

  // --- Batch optimizer (the coherence pass over a tick's merged rows;
  // see rtnn/batch_optimizer.hpp) ---

  /// Run the bin → Morton-reorder → coincident-dedup pipeline over each
  /// tick (the default). Off = the arrival-order dispatcher: requests
  /// group by batch_key() and concatenate in arrival order, no reorder,
  /// no dedup. Results are identical either way — the optimizer's dedup
  /// only ever transfers between bitwise-coincident rows.
  bool batch_reorder = true;
  /// Reorder/dedup grid cell width as a multiple of each bin's radius.
  /// Cost/granularity knob only; never affects results.
  float dedup_cell_scale = 1.0f;
  /// Per-bin cap on merged rows: a request that would push an open bin
  /// past the cap closes it and opens a fresh bin for the same key
  /// (bounds launch and scratch size). 0 = unbounded — no bin ever
  /// closes early; the dispatcher's tick caps already bound the merged
  /// set. Same contract as BatchOptimizerOptions::max_bin_queries.
  std::size_t max_bin_queries = 0;
};

/// Deprecated aggregate kept so PR-5/6 call sites compile unchanged:
/// the single-cloud constructor's options, now just a projection onto
/// ServiceConfig (dispatcher fields) + CloudConfig (per-cloud fields).
/// New code should pass those two directly.
struct ServiceOptions {
  std::string backend = "rtnn";
  std::size_t max_batch_queries = std::size_t{1} << 15;
  std::size_t max_batch_requests = 1024;
  std::chrono::microseconds max_delay{200};
  bool batch_reorder = true;
  float dedup_cell_scale = 1.0f;
  /// See CloudConfig::max_bin_queries (0 = unbounded; one contract,
  /// stated there and in BatchOptimizerOptions).
  std::size_t max_bin_queries = 0;

  ServiceConfig service_config() const {
    ServiceConfig config;
    config.max_batch_queries = max_batch_queries;
    config.max_batch_requests = max_batch_requests;
    config.max_delay = max_delay;
    return config;
  }
  CloudConfig cloud_config() const {
    CloudConfig config;
    config.backend = backend;
    config.batch_reorder = batch_reorder;
    config.dedup_cell_scale = dedup_cell_scale;
    config.max_bin_queries = max_bin_queries;
    return config;
  }
};

/// Per-request options at submit() time.
struct RequestOptions {
  /// Latest instant the request's launch may still start. Expired
  /// requests are dropped — at submit(), mid-queue, or at the pre-launch
  /// check — with ServiceError(kDeadline) and counted in
  /// stats().deadline_misses; a launch already running is never
  /// cancelled, so a request can finish slightly after its deadline but
  /// never *start* after it. nullopt = no deadline.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Convenience: a deadline `timeout` from now.
  static RequestOptions within(std::chrono::nanoseconds timeout) {
    RequestOptions options;
    options.deadline = std::chrono::steady_clock::now() + timeout;
    return options;
  }
};

/// Everything a served request gets back.
struct RequestOutcome {
  NeighborResult result;
  /// The aggregate Report of the coalesced launch this request rode in —
  /// with the optimizer on, its homogeneous bin (queries_deduped /
  /// batch_bins count that bin's activity). Shared by every request of
  /// the launch; there is no per-row attribution. Optimizer wall time is
  /// tick-level and charged to stats().report.time.opt.
  NeighborSearch::Report report;
  /// Version of the snapshot that answered (0 = the registration upload;
  /// each update_points() publishes the next version).
  std::uint64_t snapshot_version = 0;
  /// How many requests and query rows shared the dispatch (rows counted
  /// before dedup — what the clients submitted, not what was searched).
  std::uint32_t batch_requests = 0;
  std::size_t batch_queries = 0;
  /// True when the answer is a flagged partial: one or more shards
  /// exhausted their retry budget and were dropped from the gather
  /// (CloudConfig::shard_allow_degraded). The result is exact over the
  /// surviving shards' points; `dropped_shards` lists who dropped out.
  bool degraded = false;
  std::vector<std::uint32_t> dropped_shards;
};

/// Exactly-summed totals — service-wide from stats(), per tenant from
/// stats(handle).
struct ServiceStats {
  std::uint64_t requests = 0;  // requests served (signaled), failed included
  std::uint64_t batches = 0;   // coalesced launches those requests rode in
                               // (one per homogeneous bin with the optimizer on)
  std::uint64_t queries = 0;   // query rows served, pre-dedup (the report's ray
                               // counter sees queries - report.queries_deduped)
  std::uint64_t updates = 0;   // update_points() calls absorbed
  std::uint64_t shed = 0;      // requests rejected by admission control
                               // (not counted in `requests`: never dispatched)
  std::uint64_t builds = 0;    // index builds (registration, demand, rebuild)
  std::uint64_t evictions = 0; // resident indexes evicted by the LRU cap
  std::uint64_t deadline_misses = 0;  // requests dropped on an expired deadline
                                      // (in `requests` when dropped after being
                                      // queued; like `shed` when dropped at the
                                      // submit() door)
  std::uint64_t degraded = 0;  // requests served as flagged partials
                               // (shards dropped; subset of `requests`)
  /// Merged per-batch (and update-path warm) reports: times and counters
  /// sum exactly; sah_inflation is the worst observed.
  NeighborSearch::Report report;
};

/// Liveness snapshot from SearchService::health() — what an external
/// load balancer (or the watchdog's own log line) reads. Computed on
/// demand; meaningful whether or not the watchdog thread is running.
struct ServiceHealth {
  /// False while the dispatcher has work outstanding but its heartbeat
  /// has not advanced for a full stall window (always true when
  /// stall_timeout is 0: no stall definition, no verdict).
  bool dispatcher_alive = true;
  /// True while some update_points() call has been inside its cloud's
  /// writer section longer than the stall window. The watchdog cannot
  /// heal a caller's thread; it surfaces the stall here instead.
  bool writer_stalled = false;
  std::uint64_t dispatcher_restarts = 0;  // watchdog recoveries so far
  std::uint64_t eviction_failures = 0;    // LRU passes that threw (request
                                          // paths continue; cap enforcement
                                          // retries on the next build)
  std::size_t queue_depth = 0;            // requests waiting in the dispatcher
  std::size_t pending_requests = 0;       // admitted, not yet signaled

  bool healthy() const { return dispatcher_alive && !writer_stalled; }
};

namespace detail {
struct RequestState;
struct CloudState;
struct Snapshot;
}

/// A registered cloud, as returned by register_cloud() (or cloud()).
/// Cheap to copy; stays safely usable after drop_cloud() — operations
/// on a dropped cloud throw ServiceError(kShutdown).
class CloudHandle {
 public:
  CloudHandle() = default;
  bool valid() const { return state_ != nullptr; }
  const std::string& name() const;

 private:
  friend class SearchService;
  explicit CloudHandle(std::shared_ptr<detail::CloudState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::CloudState> state_;
};

class SearchService {
 public:
  /// Future for one submitted request. Movable; wait from any thread.
  /// Error states (what get()/try_get() throw) are documented in the
  /// header comment's error-state contract.
  class Ticket {
   public:
    Ticket() = default;

    /// True when this ticket refers to a real submission (a default-
    /// constructed or moved-from ticket is not usable).
    bool valid() const { return state_ != nullptr; }
    /// True once the request has been served or rejected (get() will
    /// not block).
    bool ready() const;
    /// Blocks until the request is served.
    void wait() const;
    /// Bounded wait; true when served within `timeout`.
    bool wait_for(std::chrono::nanoseconds timeout) const;
    /// Waits and moves the outcome out (call once). Throws ServiceError
    /// when the request failed — see the error-state contract.
    RequestOutcome get();
    /// Non-blocking get(): nullopt while the request is still pending;
    /// the outcome once served. Throws ServiceError exactly like get()
    /// when the request already failed.
    std::optional<RequestOutcome> try_get();

   private:
    friend class SearchService;
    explicit Ticket(std::shared_ptr<detail::RequestState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<detail::RequestState> state_;
  };

  /// Multi-tenant form: an empty registry and a running dispatcher;
  /// add tenants with register_cloud().
  explicit SearchService(const ServiceConfig& config = {});

  /// Single-cloud compatibility form (the PR-5/6 constructor): exactly a
  /// registry of size one — registers `points` under the name "default"
  /// with the eager build and versioning semantics the old service had,
  /// and the cloud-less submit()/query()/update_points() overloads below
  /// address it.
  explicit SearchService(std::span<const Vec3> points,
                         const ServiceOptions& options = {});
  ~SearchService();  // shutdown()

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  // --- Registry ---

  /// Admits a named cloud; the returned handle addresses it in every
  /// other call. Builds its index now (config.build_on_register, the
  /// default) or at the first request. Throws rtnn::Error for a
  /// duplicate name or a backend without caps().snapshot.
  CloudHandle register_cloud(const std::string& name, std::span<const Vec3> points,
                             const CloudConfig& config = {});
  /// Retires a cloud: its pending requests are rejected (kShutdown),
  /// its index is released, and outstanding handles turn into throwing
  /// handles. Unknown names throw.
  void drop_cloud(const std::string& name);
  /// Registered cloud names, sorted.
  std::vector<std::string> list_clouds() const;
  /// Handle lookup by name; throws for unknown names.
  CloudHandle cloud(const std::string& name) const;
  /// How many clouds currently hold a built (resident) index.
  std::size_t resident_clouds() const;

  // --- Request path ---

  /// Enqueues a request against `cloud`; the dispatcher coalesces it
  /// with other pending requests of that cloud into one batched launch.
  /// Sheds instead of queueing when the cloud's admission policy says so
  /// (the returned ticket is already rejected with kAdmission); a
  /// request whose RequestOptions::deadline is already over, or expires
  /// before its launch starts, resolves to ServiceError(kDeadline).
  /// Throws ServiceError(kShutdown) once the service is shut down or the
  /// cloud dropped.
  Ticket submit(const CloudHandle& cloud, std::span<const Vec3> queries,
                const SearchParams& params, const RequestOptions& options = {});
  Ticket submit(std::string_view cloud, std::span<const Vec3> queries,
                const SearchParams& params, const RequestOptions& options = {});

  /// Synchronous convenience: submit() + get().
  RequestOutcome query(const CloudHandle& cloud, std::span<const Vec3> queries,
                       const SearchParams& params, const RequestOptions& options = {});
  RequestOutcome query(std::string_view cloud, std::span<const Vec3> queries,
                       const SearchParams& params, const RequestOptions& options = {});

  /// Writer path: moves `cloud` to `points` and publishes its next
  /// snapshot. Same count = a move (dynamic backends refit per the cost
  /// model's policy); a resize = a fresh upload and build. All index
  /// work runs on the calling thread — concurrent readers keep their
  /// pinned snapshot and are never blocked. Writers to the same cloud
  /// serialize among themselves; different clouds never contend. On a
  /// non-resident (evicted or not-yet-built) cloud this just replaces
  /// the stored points — the index catches up at the next build.
  void update_points(const CloudHandle& cloud, std::span<const Vec3> points);
  void update_points(std::string_view cloud, std::span<const Vec3> points);

  /// Version of the cloud's currently published snapshot.
  std::uint64_t snapshot_version(const CloudHandle& cloud) const;
  /// Point count of the cloud.
  std::size_t point_count(const CloudHandle& cloud) const;
  /// Per-tenant aggregate.
  ServiceStats stats(const CloudHandle& cloud) const;

  // --- Single-cloud compatibility surface (the "default" cloud) ---

  Ticket submit(std::span<const Vec3> queries, const SearchParams& params,
                const RequestOptions& options = {});
  RequestOutcome query(std::span<const Vec3> queries, const SearchParams& params,
                       const RequestOptions& options = {});
  void update_points(std::span<const Vec3> points);
  std::uint64_t snapshot_version() const;
  std::size_t point_count() const;

  /// Service-wide aggregate (every cloud; exactly-summed counters).
  ServiceStats stats() const;

  /// Liveness snapshot: dispatcher heartbeat verdict, writer stall flag,
  /// watchdog restart count, queue depth. Safe from any thread; cheap.
  ServiceHealth health() const;

  /// Stops accepting requests, serves everything already queued
  /// (requests whose cloud was dropped are rejected with kShutdown),
  /// and joins the dispatcher. Idempotent; the destructor calls it.
  void shutdown();

 private:
  using RequestPtr = std::shared_ptr<detail::RequestState>;
  using CloudPtr = std::shared_ptr<detail::CloudState>;

  CloudPtr default_cloud() const;
  CloudPtr resolve(const CloudHandle& handle) const;
  CloudPtr resolve(std::string_view name) const;
  Ticket submit_to(const CloudPtr& cloud, std::span<const Vec3> queries,
                   const SearchParams& params, const RequestOptions& options);

  /// Builds `cloud`'s master + snapshot from its stored points (caller
  /// must hold the cloud's update mutex), then enforces the residency
  /// cap. Counted in stats as a build.
  void build_cloud_locked(detail::CloudState& cloud);
  /// Evicts least-recently-used resident clouds (other than `keep`)
  /// until the cap holds.
  void enforce_residency_cap(const detail::CloudState* keep);
  /// The cloud's current snapshot, building on demand if not resident.
  std::shared_ptr<detail::Snapshot> pin_snapshot(detail::CloudState& cloud);

  void dispatch_loop(std::uint64_t generation);
  void dispatch_cloud(const CloudPtr& cloud, const std::vector<RequestPtr>& group);
  void dispatch_group(detail::CloudState& cloud,
                      const std::shared_ptr<detail::Snapshot>& snap,
                      const std::vector<RequestPtr>& group);
  void dispatch_optimized(detail::CloudState& cloud,
                          const std::shared_ptr<detail::Snapshot>& snap,
                          const std::vector<RequestPtr>& batch);
  void reject(const RequestPtr& request, RejectReason reason,
              const std::string& message);
  /// Rejects every not-yet-signaled member of `requests` (any mix of
  /// clouds), settling their pending counts and stats — the dispatcher's
  /// catch-all, so a throwing dispatch path never kills the thread or
  /// abandons a ticket.
  void fail_requests(const std::vector<RequestPtr>& requests, RejectReason reason,
                     const std::string& message);
  /// Resolves one queued request as a deadline miss (typed kDeadline,
  /// counted in requests + deadline_misses).
  void expire_request(const RequestPtr& request);
  void count_shed(detail::CloudState& cloud);
  /// Drops `group` members whose deadline is over (typed kDeadline,
  /// counted as misses); returns the survivors in arrival order.
  std::vector<RequestPtr> drop_expired(const std::vector<RequestPtr>& group);
  /// Annotates the outcome with the snapshot backend's degradation
  /// verdict (sharded clouds only) and returns whether it degraded.
  static bool note_degradation(const detail::Snapshot& snap, RequestOutcome& outcome);

  // --- Watchdog (self-healing dispatch) ---
  void watchdog_loop();
  /// Declares the current dispatcher stalled: quarantines published
  /// snapshots, bumps the generation (the stale thread re-enqueues its
  /// in-flight batch when it wakes), and starts a replacement.
  void restart_dispatcher();
  /// A stale dispatcher hands its popped-but-unserved requests back.
  void requeue_or_reject(std::vector<RequestPtr>& batch);
  bool dispatcher_stale(std::uint64_t generation) const {
    return dispatcher_generation_.load(std::memory_order_acquire) != generation;
  }
  void beat() { dispatcher_beat_.fetch_add(1, std::memory_order_release); }

  ServiceConfig config_;

  mutable std::mutex registry_mutex_;
  std::vector<CloudPtr> clouds_;  // registration order; names unique
  CloudPtr default_;              // the compat constructor's cloud

  WorkQueue<RequestPtr> queue_;
  std::atomic<bool> stopped_{false};
  std::mutex lifecycle_mutex_;  // serializes shutdown()

  /// Dispatcher lifecycle, all guarded by dispatcher_mutex_ except the
  /// atomics: the current thread, the generation the current thread was
  /// started with, and stale predecessors awaiting join.
  std::mutex dispatcher_mutex_;
  std::thread dispatcher_;
  std::vector<std::thread> retired_dispatchers_;
  std::atomic<std::uint64_t> dispatcher_generation_{0};
  std::atomic<std::uint64_t> dispatcher_beat_{0};   // advances once per tick
  std::atomic<std::uint64_t> dispatcher_restarts_{0};
  std::atomic<bool> dispatcher_stalled_{false};     // watchdog's last verdict
  std::atomic<std::size_t> pending_requests_{0};    // admitted, not signaled
  std::atomic<std::uint64_t> eviction_failures_{0};

  /// Writer liveness: how many update_points() calls are inside a writer
  /// section, and when the most recent one entered (steady_clock ns).
  std::atomic<int> writers_active_{0};
  std::atomic<std::int64_t> writer_entered_ns_{0};

  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;

  std::atomic<std::uint64_t> use_clock_{0};  // LRU ordering for eviction

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;  // service-wide totals across all clouds
};

}  // namespace rtnn::service
