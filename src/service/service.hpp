// The serving layer: one point cloud, many concurrent callers.
//
// Every entry point below the service — NeighborSearch::search(), the
// engine backends, DynamicSearchSession — is single-caller: one thread
// owns the index and queries arrive as one monolithic array. SearchService
// turns that machinery into a concurrent request server:
//
//   * The point cloud lives behind immutable, refcounted index snapshots
//     (publish-on-update atop the engine's SearchBackend::snapshot(),
//     which shares ox::Accel build products copy-on-write). Readers pin
//     the snapshot current at dispatch time; update_points() builds and
//     publishes the *next* snapshot on the writer's thread — readers are
//     never blocked and never observe a half-updated index.
//   * Requests from any number of threads are coalesced by a dispatcher
//     into batched launches: every tick, all compatible pending requests
//     merge into one backend search — one schedule/partition/bundle pass
//     and one LaunchStage dispatch amortized across the batch (the
//     paper's pipeline is exactly the shape that wants big launches, and
//     serving traffic arrives as many small ones). Results scatter back
//     to per-request slots via rtnn::split_batch_result.
//   * The tick's merged query set then runs the paper's query
//     reorganization — the batch optimizer (rtnn/batch_optimizer.hpp),
//     on by default: requests bin into sub-batches homogeneous in the
//     answer-shaping params (SearchParams::batch_key(); one launch per
//     distinct (r, K, mode, ...) bin — differing pipeline knobs no
//     longer force separate dispatch groups), each bin's rows are
//     Morton-reordered across requests, and bitwise-coincident rows are
//     answered once by an elected representative (queries_deduped in the
//     reports). Dedup is exact by construction: only bitwise position
//     equality transfers a result — a merely-near row falls back to its
//     own exact search. ServiceOptions::batch_reorder=false restores the
//     PR-5 arrival-order dispatcher unchanged.
//   * Updates flow through the PR-4 index lifecycle off the read path:
//     the writer-owned master backend absorbs update_points(), a warm
//     probe search resolves the refit-vs-rebuild policy on the writer's
//     thread, and the refreshed snapshot is published atomically.
//
//   SearchService service(points);                  // backend: "rtnn"
//   rtnn::SearchParams params;
//   params.mode = rtnn::SearchMode::kKnn;
//   params.radius = 0.05f;
//   params.k = 16;
//
//   // Synchronous: submit + wait, from any thread.
//   auto outcome = service.query(queries, params);
//
//   // Asynchronous: fire from many threads, join later.
//   auto ticket = service.submit(queries, params);
//   ... // the dispatcher coalesces in-flight requests into one launch
//   auto async_outcome = ticket.get();              // blocks until served
//
//   // Writer path: publish the next frame without stalling readers.
//   service.update_points(moved);                   // refit/rebuild here
//
// Reports aggregate per request rather than per call: each outcome
// carries the Report of the coalesced batch it rode in, and stats()
// exposes the exactly-summed service-wide totals (batch counters sum via
// NeighborSearch::Report::operator+=; refit/rebuild increments from the
// update path are counted there too).
//
// Threading contract: submit()/query()/update_points()/stats() are safe
// from any thread. Backend search state is only ever touched by the
// dispatcher thread (snapshots) and the update path (the master, under
// the writer lock), so the backends themselves need no internal locking.
//
// See README.md ("Serving") for the snapshot lifecycle and batching-tick
// walkthrough, and examples/serving_demo.cpp for a full client/writer
// program over a drifting cloud.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/neighbor_result.hpp"
#include "core/parallel.hpp"
#include "core/vec3.hpp"
#include "engine/search_backend.hpp"
#include "rtnn/neighbor_search.hpp"
#include "rtnn/types.hpp"

namespace rtnn::service {

/// Serving configuration, fixed at construction.
struct ServiceOptions {
  /// Engine backend the service snapshots and serves (BackendRegistry
  /// name). Must declare caps().snapshot.
  std::string backend = "rtnn";
  /// Coalescing caps per tick: a batch dispatches as soon as it holds
  /// this many query rows (or requests), even if the tick is not over.
  std::size_t max_batch_queries = std::size_t{1} << 15;
  std::size_t max_batch_requests = 1024;
  /// The batching tick: how long the oldest pending request waits for
  /// company before its batch dispatches. 0 = dispatch immediately
  /// (degenerates to per-request launches; useful for tests).
  std::chrono::microseconds max_delay{200};

  // --- Batch optimizer (the coherence pass over a tick's merged rows;
  // see rtnn/batch_optimizer.hpp) ---

  /// Run the bin → Morton-reorder → coincident-dedup pipeline over each
  /// tick (the default). Off = the arrival-order dispatcher: requests
  /// group by batch_key() and concatenate in arrival order, no reorder,
  /// no dedup. Results are identical either way — the optimizer's dedup
  /// only ever transfers between bitwise-coincident rows.
  bool batch_reorder = true;
  /// Reorder/dedup grid cell width as a multiple of each bin's radius.
  /// Cost/granularity knob only; never affects results.
  float dedup_cell_scale = 1.0f;
  /// Per-bin cap on merged rows (0 = unbounded; the tick caps above
  /// already bound the merged set). A full bin closes and the same key
  /// opens a fresh one.
  std::size_t max_bin_queries = 0;
};

/// Everything a served request gets back.
struct RequestOutcome {
  NeighborResult result;
  /// The aggregate Report of the coalesced launch this request rode in —
  /// with the optimizer on, its homogeneous bin (queries_deduped /
  /// batch_bins count that bin's activity). Shared by every request of
  /// the launch; there is no per-row attribution. Optimizer wall time is
  /// tick-level and charged to stats().report.time.opt.
  NeighborSearch::Report report;
  /// Version of the snapshot that answered (0 = the construction upload;
  /// each update_points() publishes the next version).
  std::uint64_t snapshot_version = 0;
  /// How many requests and query rows shared the dispatch (rows counted
  /// before dedup — what the clients submitted, not what was searched).
  std::uint32_t batch_requests = 0;
  std::size_t batch_queries = 0;
};

/// Exactly-summed service-wide totals (see stats()).
struct ServiceStats {
  std::uint64_t requests = 0;  // requests served (signaled), failed included
  std::uint64_t batches = 0;   // coalesced launches those requests rode in
                               // (one per homogeneous bin with the optimizer on)
  std::uint64_t queries = 0;   // query rows served, pre-dedup (the report's ray
                               // counter sees queries - report.queries_deduped)
  std::uint64_t updates = 0;   // snapshots published after the first
  /// Merged per-batch (and update-path warm) reports: times and counters
  /// sum exactly; sah_inflation is the worst observed.
  NeighborSearch::Report report;
};

namespace detail {
struct RequestState;
}

class SearchService {
 public:
  /// Future for one submitted request. Movable; wait from any thread.
  class Ticket {
   public:
    Ticket() = default;

    bool valid() const { return state_ != nullptr; }
    /// True once the request has been served (get() will not block).
    bool ready() const;
    /// Blocks until the request is served.
    void wait() const;
    /// Bounded wait; true when served within `timeout`.
    bool wait_for(std::chrono::nanoseconds timeout) const;
    /// Waits and moves the outcome out (call once). Throws rtnn::Error
    /// when the request failed — e.g. params the backend rejects.
    RequestOutcome get();

   private:
    friend class SearchService;
    explicit Ticket(std::shared_ptr<detail::RequestState> state)
        : state_(std::move(state)) {}
    std::shared_ptr<detail::RequestState> state_;
  };

  /// Builds the first snapshot over `points` and starts the dispatcher.
  explicit SearchService(std::span<const Vec3> points,
                         const ServiceOptions& options = {});
  ~SearchService();  // shutdown()

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  /// Enqueues a request; the dispatcher coalesces it with other pending
  /// requests of compatible params into one batched launch. Throws once
  /// the service is shut down.
  Ticket submit(std::span<const Vec3> queries, const SearchParams& params);

  /// Synchronous convenience: submit() + get().
  RequestOutcome query(std::span<const Vec3> queries, const SearchParams& params);

  /// Writer path: moves the cloud to `points` and publishes the next
  /// snapshot. Same count = a move (dynamic backends refit per the cost
  /// model's policy); a resize = a fresh upload and build. All index work
  /// runs on the calling thread — concurrent readers keep their pinned
  /// snapshot and are never blocked. Writers serialize among themselves.
  void update_points(std::span<const Vec3> points);

  /// Version of the currently published snapshot.
  std::uint64_t snapshot_version() const;

  /// Point count of the currently published snapshot.
  std::size_t point_count() const;

  /// Service-wide aggregate (exactly-summed counters; see ServiceStats).
  ServiceStats stats() const;

  /// Stops accepting requests, serves everything already queued, and
  /// joins the dispatcher. Idempotent; the destructor calls it.
  void shutdown();

 private:
  /// One published index version: `backend` is searched only by the
  /// dispatcher thread, never mutated by writers (they clone the master
  /// instead), so in-flight batches and snapshot publishes never share
  /// mutable state.
  struct Snapshot {
    std::uint64_t version = 0;
    std::unique_ptr<engine::SearchBackend> backend;
  };

  using RequestPtr = std::shared_ptr<detail::RequestState>;

  void dispatch_loop();
  void dispatch_group(const std::vector<RequestPtr>& group);
  void dispatch_optimized(const std::vector<RequestPtr>& batch);
  std::shared_ptr<Snapshot> current_snapshot() const;

  ServiceOptions options_;

  // Writer state: the master backend owns the authoritative cloud and
  // index lineage. Guarded by update_mutex_; never searched by readers.
  std::mutex update_mutex_;
  std::unique_ptr<engine::SearchBackend> master_;

  // The published snapshot readers pin (swapped atomically under its own
  // mutex so publishes never wait on dispatches).
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<Snapshot> snapshot_;

  WorkQueue<RequestPtr> queue_;
  std::thread dispatcher_;
  bool stopped_ = false;  // guarded by update_mutex_ (shutdown vs writers)

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  /// Params of the most recent dispatch — what update_points() warms the
  /// refreshed index with (guarded by stats_mutex_).
  std::optional<SearchParams> warm_params_;
};

}  // namespace rtnn::service
