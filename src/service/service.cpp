#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "engine/registry.hpp"
#include "engine/sharded_backend.hpp"
#include "rtnn/batch_optimizer.hpp"

namespace rtnn::service {

namespace detail {

/// One published index version of one cloud: `backend` is searched only
/// by the dispatcher thread, never mutated by writers (they clone the
/// master instead), so in-flight batches and snapshot publishes never
/// share mutable state.
struct Snapshot {
  std::uint64_t version = 0;
  std::unique_ptr<engine::SearchBackend> backend;
};

/// Everything one in-flight request carries between submit() and get().
/// The submitter owns a reference through the Ticket; the dispatcher
/// fills outcome/error and fires `done`. After the signal the dispatcher
/// never touches the state again, so the waiter reads without a lock.
struct RequestState {
  std::shared_ptr<CloudState> cloud;
  std::vector<Vec3> queries;  // copied at submit: the caller's span may die
  SearchParams params;
  RequestOutcome outcome;
  std::string error;  // non-empty when the request failed
  RejectReason reason = RejectReason::kBackend;
  CompletionEvent done;
};

/// One tenant of the registry. Locks, never taken together except in the
/// stated order: registry_mutex_ is never held while taking a cloud's
/// update_mutex (eviction collects candidates under the registry lock,
/// then try-locks victims after releasing it), so registry scans and
/// per-cloud writers cannot deadlock.
struct CloudState {
  std::string name;
  CloudConfig config;

  /// Writer state: the authoritative points and the master backend that
  /// owns the index lineage (null while the cloud is not resident —
  /// evicted or not yet built). Guarded by update_mutex; never searched
  /// by readers.
  std::mutex update_mutex;
  std::vector<Vec3> points;
  std::unique_ptr<engine::SearchBackend> master;

  /// The published snapshot readers pin (swapped atomically under its
  /// own mutex so publishes never wait on dispatches). Null while not
  /// resident.
  mutable std::mutex snapshot_mutex;
  std::shared_ptr<Snapshot> snapshot;

  std::atomic<std::uint64_t> version{0};   // bumped by every update_points()
  std::atomic<bool> resident{false};       // a built index currently exists
  std::atomic<bool> dropped{false};
  std::atomic<std::uint64_t> last_used{0}; // LRU tick (service use_clock_)
  std::atomic<std::size_t> pending{0};     // admitted, not yet signaled

  std::mutex admission_mutex;
  TokenBucket bucket;

  mutable std::mutex stats_mutex;
  ServiceStats stats;
  /// Params of the most recent successful dispatch — what update_points()
  /// warms the refreshed index with (guarded by stats_mutex).
  std::optional<SearchParams> warm_params;
};

}  // namespace detail

namespace {

using detail::CloudState;
using detail::RequestState;
using detail::Snapshot;

/// The backend a cloud's config asks for: the named engine backend,
/// wrapped in a ShardedBackend when the cloud is over its threshold.
std::unique_ptr<engine::SearchBackend> make_cloud_backend(const CloudConfig& config,
                                                          std::size_t point_count) {
  if (config.shard_threshold > 0 && point_count > config.shard_threshold) {
    engine::ShardingOptions sharding;
    sharding.shard_threshold = config.shard_threshold;
    sharding.max_shards = config.max_shards;
    return std::make_unique<engine::ShardedBackend>(config.backend, sharding);
  }
  return engine::make_backend(config.backend);
}

}  // namespace

// --- CloudHandle -------------------------------------------------------------

const std::string& CloudHandle::name() const {
  RTNN_CHECK(state_ != nullptr, "empty cloud handle");
  return state_->name;
}

// --- Ticket ------------------------------------------------------------------

bool SearchService::Ticket::ready() const {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  return state_->done.signaled();
}

void SearchService::Ticket::wait() const {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  state_->done.wait();
}

bool SearchService::Ticket::wait_for(std::chrono::nanoseconds timeout) const {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  return state_->done.wait_for(timeout);
}

RequestOutcome SearchService::Ticket::get() {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  state_->done.wait();
  if (!state_->error.empty()) throw ServiceError(state_->reason, state_->error);
  return std::move(state_->outcome);
}

std::optional<RequestOutcome> SearchService::Ticket::try_get() {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  if (!state_->done.signaled()) return std::nullopt;
  if (!state_->error.empty()) throw ServiceError(state_->reason, state_->error);
  return std::move(state_->outcome);
}

// --- Construction / lifecycle ------------------------------------------------

SearchService::SearchService(const ServiceConfig& config) : config_(config) {
  RTNN_CHECK(config_.max_batch_queries > 0 && config_.max_batch_requests > 0,
             "batch caps must be positive");
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SearchService::SearchService(std::span<const Vec3> points,
                             const ServiceOptions& options)
    : SearchService(options.service_config()) {
  // The single-cloud compatibility form: a registry of size one whose
  // tenant keeps the historical eager-build semantics.
  CloudHandle handle = register_cloud("default", points, options.cloud_config());
  std::lock_guard<std::mutex> lock(registry_mutex_);
  default_ = handle.state_;
}

SearchService::~SearchService() { shutdown(); }

void SearchService::shutdown() {
  // Serialized so concurrent shutdown calls cannot both join; the
  // dispatcher never touches lifecycle_mutex_, so joining under it
  // cannot deadlock. Requests already queued are served by the drain.
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  stopped_.store(true);
  queue_.close();  // dispatcher drains what is queued, then exits
  if (dispatcher_.joinable()) dispatcher_.join();
}

// --- Registry ----------------------------------------------------------------

CloudHandle SearchService::register_cloud(const std::string& name,
                                          std::span<const Vec3> points,
                                          const CloudConfig& config) {
  RTNN_CHECK(!name.empty(), "a cloud needs a name");
  RTNN_CHECK(!points.empty(), "a cloud needs points");
  RTNN_CHECK(!stopped_.load(), "service is shut down");
  {
    // Early duplicate check so a losing caller fails before paying for
    // a build; the insert below re-checks under the same lock.
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const CloudPtr& cloud : clouds_) {
      RTNN_CHECK(cloud->name != name, "cloud '" + name + "' already registered");
    }
  }

  auto state = std::make_shared<CloudState>();
  state->name = name;
  state->config = config;
  state->points.assign(points.begin(), points.end());
  state->bucket = TokenBucket(config.admission.tokens_per_second,
                              config.admission.burst);
  // Validate the backend choice now, whether or not the build is
  // deferred: an unknown name or a snapshot-less backend must fail at
  // registration, not at the first request.
  RTNN_CHECK(make_cloud_backend(config, points.size())->caps().snapshot,
             "backend cannot snapshot (caps().snapshot is false)");

  if (config.build_on_register) {
    // The state is not yet visible to any other thread, so this lock is
    // uncontended; build_cloud_locked still expects it held.
    std::lock_guard<std::mutex> lock(state->update_mutex);
    build_cloud_locked(*state);
  }

  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const CloudPtr& cloud : clouds_) {
      RTNN_CHECK(cloud->name != name, "cloud '" + name + "' already registered");
    }
    clouds_.push_back(state);
  }
  state->last_used.store(use_clock_.fetch_add(1) + 1);
  enforce_residency_cap(state.get());
  return CloudHandle(state);
}

void SearchService::drop_cloud(const std::string& name) {
  CloudPtr state;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = std::find_if(clouds_.begin(), clouds_.end(),
                           [&](const CloudPtr& c) { return c->name == name; });
    RTNN_CHECK(it != clouds_.end(), "unknown cloud: " + name);
    state = *it;
    clouds_.erase(it);
    if (default_ == state) default_.reset();
  }
  // Mark first: requests already queued are rejected by the dispatcher
  // (kShutdown), new submits through stale handles throw. Then release
  // the index — outside the registry lock, per the locking order.
  state->dropped.store(true);
  {
    std::lock_guard<std::mutex> lock(state->update_mutex);
    state->master.reset();
    std::lock_guard<std::mutex> snap_lock(state->snapshot_mutex);
    state->snapshot.reset();
    state->resident.store(false);
  }
}

std::vector<std::string> SearchService::list_clouds() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    names.reserve(clouds_.size());
    for (const CloudPtr& cloud : clouds_) names.push_back(cloud->name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

CloudHandle SearchService::cloud(const std::string& name) const {
  return CloudHandle(resolve(name));
}

std::size_t SearchService::resident_clouds() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t count = 0;
  for (const CloudPtr& cloud : clouds_) {
    if (cloud->resident.load()) ++count;
  }
  return count;
}

SearchService::CloudPtr SearchService::default_cloud() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  RTNN_CHECK(default_ != nullptr,
             "no default cloud (multi-tenant service): address a CloudHandle");
  return default_;
}

SearchService::CloudPtr SearchService::resolve(const CloudHandle& handle) const {
  RTNN_CHECK(handle.state_ != nullptr, "empty cloud handle");
  return handle.state_;
}

SearchService::CloudPtr SearchService::resolve(std::string_view name) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const CloudPtr& cloud : clouds_) {
    if (cloud->name == name) return cloud;
  }
  throw Error("unknown cloud: " + std::string(name));
}

// --- Residency ---------------------------------------------------------------

void SearchService::build_cloud_locked(CloudState& cloud) {
  cloud.master = make_cloud_backend(cloud.config, cloud.points.size());
  RTNN_CHECK(cloud.master->caps().snapshot,
             "backend cannot snapshot (caps().snapshot is false)");
  cloud.master->set_index_persistence(true);
  cloud.master->set_points(cloud.points);

  NeighborSearch::Report warm_report;
  if (cloud.config.warmup.has_value()) {
    const Vec3 probe = cloud.points[0];
    (void)cloud.master->search(std::span<const Vec3>(&probe, 1),
                               *cloud.config.warmup, &warm_report);
  }

  auto snap = std::make_shared<Snapshot>();
  snap->version = cloud.version.load();
  snap->backend = cloud.master->snapshot();
  {
    std::lock_guard<std::mutex> lock(cloud.snapshot_mutex);
    cloud.snapshot = std::move(snap);
  }
  cloud.resident.store(true);
  {
    std::lock_guard<std::mutex> lock(cloud.stats_mutex);
    ++cloud.stats.builds;
    cloud.stats.report += warm_report;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.builds;
    stats_.report += warm_report;
  }
}

void SearchService::enforce_residency_cap(const CloudState* keep) {
  if (config_.max_resident_clouds == 0) return;
  std::vector<CloudPtr> candidates;
  std::size_t resident = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const CloudPtr& cloud : clouds_) {
      if (!cloud->resident.load()) continue;
      ++resident;
      if (cloud.get() != keep) candidates.push_back(cloud);
    }
  }
  // Oldest last_used first: evict the coldest index until the cap holds.
  std::sort(candidates.begin(), candidates.end(),
            [](const CloudPtr& a, const CloudPtr& b) {
              return a->last_used.load() < b->last_used.load();
            });
  for (const CloudPtr& victim : candidates) {
    if (resident <= config_.max_resident_clouds) break;
    // try_lock: a victim mid-update or mid-build is hot, not cold — skip
    // it (and avoid any cross-cloud lock cycle).
    std::unique_lock<std::mutex> lock(victim->update_mutex, std::try_to_lock);
    if (!lock.owns_lock() || !victim->resident.load()) continue;
    victim->master.reset();
    {
      std::lock_guard<std::mutex> snap_lock(victim->snapshot_mutex);
      victim->snapshot.reset();  // in-flight pins keep their own reference
    }
    victim->resident.store(false);
    --resident;
    {
      std::lock_guard<std::mutex> stats_lock(victim->stats_mutex);
      ++victim->stats.evictions;
    }
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.evictions;
  }
}

std::shared_ptr<Snapshot> SearchService::pin_snapshot(CloudState& cloud) {
  {
    std::lock_guard<std::mutex> lock(cloud.snapshot_mutex);
    if (cloud.snapshot != nullptr) return cloud.snapshot;
  }
  // Not resident: build on demand on the dispatcher's thread, then evict
  // whatever the build pushed past the cap.
  std::shared_ptr<Snapshot> snap;
  {
    std::lock_guard<std::mutex> lock(cloud.update_mutex);
    {
      std::lock_guard<std::mutex> snap_lock(cloud.snapshot_mutex);
      snap = cloud.snapshot;  // a racing writer may have built already
    }
    if (snap == nullptr) {
      build_cloud_locked(cloud);
      std::lock_guard<std::mutex> snap_lock(cloud.snapshot_mutex);
      snap = cloud.snapshot;
    }
  }
  enforce_residency_cap(&cloud);
  return snap;
}

// --- Request path ------------------------------------------------------------

SearchService::Ticket SearchService::submit_to(const CloudPtr& cloud,
                                               std::span<const Vec3> queries,
                                               const SearchParams& params) {
  RTNN_CHECK(!queries.empty(), "a request needs queries");
  if (stopped_.load()) throw ServiceError(RejectReason::kShutdown,
                                          "service is shut down");
  if (cloud->dropped.load()) {
    throw ServiceError(RejectReason::kShutdown,
                       "cloud '" + cloud->name + "' was dropped");
  }

  auto state = std::make_shared<RequestState>();
  state->cloud = cloud;
  state->queries.assign(queries.begin(), queries.end());
  state->params = params;

  // Admission: shed at the door instead of queueing, so overload cannot
  // grow the dispatcher's backlog. The ticket comes back already
  // rejected — get() throws the typed kAdmission error.
  const AdmissionOptions& admission = cloud->config.admission;
  const char* refused = nullptr;
  if (admission.max_queue_depth > 0 &&
      cloud->pending.load() >= admission.max_queue_depth) {
    refused = "queue depth cap";
  } else {
    std::lock_guard<std::mutex> lock(cloud->admission_mutex);
    if (!cloud->bucket.try_take(std::chrono::steady_clock::now())) {
      refused = "token bucket";
    }
  }
  if (refused != nullptr) {
    state->reason = RejectReason::kAdmission;
    state->error = "request shed by admission control (" + std::string(refused) +
                   ") on cloud '" + cloud->name + "'";
    count_shed(*cloud);
    state->done.signal();
    return Ticket(std::move(state));
  }

  cloud->pending.fetch_add(1);
  if (!queue_.push(state)) {
    cloud->pending.fetch_sub(1);
    throw ServiceError(RejectReason::kShutdown, "service is shut down");
  }
  cloud->last_used.store(use_clock_.fetch_add(1) + 1);
  return Ticket(std::move(state));
}

void SearchService::count_shed(CloudState& cloud) {
  {
    std::lock_guard<std::mutex> lock(cloud.stats_mutex);
    ++cloud.stats.shed;
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.shed;
}

SearchService::Ticket SearchService::submit(const CloudHandle& cloud,
                                            std::span<const Vec3> queries,
                                            const SearchParams& params) {
  return submit_to(resolve(cloud), queries, params);
}

SearchService::Ticket SearchService::submit(std::string_view cloud,
                                            std::span<const Vec3> queries,
                                            const SearchParams& params) {
  return submit_to(resolve(cloud), queries, params);
}

SearchService::Ticket SearchService::submit(std::span<const Vec3> queries,
                                            const SearchParams& params) {
  return submit_to(default_cloud(), queries, params);
}

RequestOutcome SearchService::query(const CloudHandle& cloud,
                                    std::span<const Vec3> queries,
                                    const SearchParams& params) {
  return submit(cloud, queries, params).get();
}

RequestOutcome SearchService::query(std::string_view cloud,
                                    std::span<const Vec3> queries,
                                    const SearchParams& params) {
  return submit(cloud, queries, params).get();
}

RequestOutcome SearchService::query(std::span<const Vec3> queries,
                                    const SearchParams& params) {
  return submit(queries, params).get();
}

// --- Writer path -------------------------------------------------------------

void SearchService::update_points(const CloudHandle& cloud,
                                  std::span<const Vec3> points) {
  RTNN_CHECK(!points.empty(), "an update needs points");
  const CloudPtr state = resolve(cloud);
  if (stopped_.load()) throw ServiceError(RejectReason::kShutdown,
                                          "service is shut down");
  if (state->dropped.load()) {
    throw ServiceError(RejectReason::kShutdown,
                       "cloud '" + state->name + "' was dropped");
  }

  std::lock_guard<std::mutex> lock(state->update_mutex);
  state->points.assign(points.begin(), points.end());

  NeighborSearch::Report warm_report;
  if (state->master != nullptr) {
    // The master absorbs the motion: same count = a move dynamic
    // backends refit; a resize = a fresh upload (new index lineage,
    // like the DynamicSearchSession resize fallback).
    if (points.size() == state->master->point_count()) {
      state->master->update_points(points);
    } else {
      state->master->set_points(points);
    }

    // Resolve the deferred index work here, on the writer's thread: a
    // one-probe search drives the refit-vs-rebuild policy (and rebuilds
    // the backend's auxiliary caches), so the published snapshot is warm
    // and the read path never pays for an update. Before the first
    // dispatch no params are known — the first batch on the new
    // snapshot syncs lazily.
    std::optional<SearchParams> warm;
    {
      std::lock_guard<std::mutex> stats_lock(state->stats_mutex);
      warm = state->warm_params;
    }
    if (warm.has_value()) {
      const Vec3 probe = points[0];
      (void)state->master->search(std::span<const Vec3>(&probe, 1), *warm,
                                  &warm_report);
    }

    auto snap = std::make_shared<Snapshot>();
    snap->version = state->version.fetch_add(1) + 1;
    snap->backend = state->master->snapshot();
    std::lock_guard<std::mutex> snap_lock(state->snapshot_mutex);
    state->snapshot = std::move(snap);
  } else {
    // Non-resident (deferred or evicted): the stored points are the
    // whole truth, and the next build publishes this version.
    state->version.fetch_add(1);
  }

  {
    std::lock_guard<std::mutex> stats_lock(state->stats_mutex);
    ++state->stats.updates;
    state->stats.report += warm_report;
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.updates;
    stats_.report += warm_report;  // refit/rebuild increments land here
  }
  state->last_used.store(use_clock_.fetch_add(1) + 1);
}

void SearchService::update_points(std::string_view cloud,
                                  std::span<const Vec3> points) {
  update_points(CloudHandle(resolve(cloud)), points);
}

void SearchService::update_points(std::span<const Vec3> points) {
  update_points(CloudHandle(default_cloud()), points);
}

// --- Introspection -----------------------------------------------------------

std::uint64_t SearchService::snapshot_version(const CloudHandle& cloud) const {
  return resolve(cloud)->version.load();
}

std::uint64_t SearchService::snapshot_version() const {
  return default_cloud()->version.load();
}

std::size_t SearchService::point_count(const CloudHandle& cloud) const {
  const CloudPtr state = resolve(cloud);
  std::lock_guard<std::mutex> lock(state->update_mutex);
  return state->points.size();
}

std::size_t SearchService::point_count() const {
  const CloudPtr state = default_cloud();
  std::lock_guard<std::mutex> lock(state->update_mutex);
  return state->points.size();
}

ServiceStats SearchService::stats(const CloudHandle& cloud) const {
  const CloudPtr state = resolve(cloud);
  std::lock_guard<std::mutex> lock(state->stats_mutex);
  return state->stats;
}

ServiceStats SearchService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

// --- Dispatcher --------------------------------------------------------------

void SearchService::dispatch_loop() {
  while (true) {
    std::optional<RequestPtr> first = queue_.pop();
    if (!first.has_value()) return;  // closed and drained

    // The batching tick: the oldest request waits at most max_delay for
    // company; the batch also dispatches as soon as a cap fills.
    std::vector<RequestPtr> batch{std::move(*first)};
    std::size_t total = batch.front()->queries.size();
    const auto deadline = std::chrono::steady_clock::now() + config_.max_delay;
    while (batch.size() < config_.max_batch_requests &&
           total < config_.max_batch_queries) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      std::optional<RequestPtr> next = queue_.pop_for(deadline - now);
      if (!next.has_value()) break;  // tick over (or closing: drain next loop)
      total += (*next)->queries.size();
      batch.push_back(std::move(*next));
    }

    // One tick may span tenants: requests group per cloud (arrival order
    // preserved within each), and every cloud-group dispatches against
    // its own pinned snapshot.
    std::vector<std::pair<CloudPtr, std::vector<RequestPtr>>> by_cloud;
    for (RequestPtr& request : batch) {
      const CloudPtr& cloud = request->cloud;
      auto fits = std::find_if(by_cloud.begin(), by_cloud.end(), [&](const auto& g) {
        return g.first == cloud;
      });
      if (fits == by_cloud.end()) {
        by_cloud.emplace_back(cloud, std::vector<RequestPtr>{}).second.push_back(
            std::move(request));
      } else {
        fits->second.push_back(std::move(request));
      }
    }
    for (const auto& [cloud, group] : by_cloud) dispatch_cloud(cloud, group);
  }
}

void SearchService::reject(const RequestPtr& request, RejectReason reason,
                           const std::string& message) {
  request->reason = reason;
  request->error = message;
  request->done.signal();
}

void SearchService::dispatch_cloud(const CloudPtr& cloud,
                                   const std::vector<RequestPtr>& group) {
  if (cloud->dropped.load()) {
    // drop_cloud() retired the tenant while these were queued: reject
    // the leftovers instead of serving from a released index.
    for (const RequestPtr& request : group) {
      cloud->pending.fetch_sub(1);
      reject(request, RejectReason::kShutdown,
             "cloud '" + cloud->name + "' was dropped");
    }
    {
      std::lock_guard<std::mutex> lock(cloud->stats_mutex);
      cloud->stats.requests += group.size();
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests += group.size();
    return;
  }

  std::shared_ptr<Snapshot> snap;
  try {
    snap = pin_snapshot(*cloud);  // builds on demand when not resident
  } catch (const std::exception& e) {
    for (const RequestPtr& request : group) {
      cloud->pending.fetch_sub(1);
      reject(request, RejectReason::kBackend, e.what());
    }
    {
      std::lock_guard<std::mutex> lock(cloud->stats_mutex);
      cloud->stats.requests += group.size();
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests += group.size();
    return;
  }
  cloud->last_used.store(use_clock_.fetch_add(1) + 1);

  if (cloud->config.batch_reorder) {
    // The optimizer path: one bin/reorder/dedup pass over the cloud's
    // whole tick, one launch per homogeneous bin.
    dispatch_optimized(*cloud, snap, group);
    return;
  }

  // The arrival-order path: coalesce requests whose answer-shaping
  // params agree (batch_key — the one definition the optimizer's
  // splitter shares); incompatible requests still dispatch this tick,
  // as their own groups, in arrival order.
  std::vector<std::vector<RequestPtr>> groups;
  for (const RequestPtr& request : group) {
    auto fits = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
      return g.front()->params.batch_key() == request->params.batch_key();
    });
    if (fits == groups.end()) {
      groups.emplace_back().push_back(request);
    } else {
      fits->push_back(request);
    }
  }
  for (const std::vector<RequestPtr>& key_group : groups) {
    dispatch_group(*cloud, snap, key_group);
  }
}

void SearchService::dispatch_group(CloudState& cloud,
                                   const std::shared_ptr<Snapshot>& snap,
                                   const std::vector<RequestPtr>& group) {
  // Merge the group into one query array, tagging each request's rows.
  std::vector<Vec3> merged;
  std::vector<BatchSlice> slices;
  slices.reserve(group.size());
  std::size_t total = 0;
  for (const RequestPtr& request : group) total += request->queries.size();
  merged.reserve(total);
  for (const RequestPtr& request : group) {
    slices.push_back({merged.size(), request->queries.size()});
    merged.insert(merged.end(), request->queries.begin(), request->queries.end());
  }

  const SearchParams& params = group.front()->params;
  NeighborSearch::Report report;
  bool served = false;
  try {
    // One launch for the whole group; per-request results scatter out of
    // the row-addressed batch result.
    NeighborResult batch_result = snap->backend->search(merged, params, &report);
    std::vector<NeighborResult> results = split_batch_result(batch_result, slices);
    for (std::size_t i = 0; i < group.size(); ++i) {
      RequestOutcome& outcome = group[i]->outcome;
      outcome.result = std::move(results[i]);
      outcome.report = report;
      outcome.snapshot_version = snap->version;
      outcome.batch_requests = static_cast<std::uint32_t>(group.size());
      outcome.batch_queries = merged.size();
    }
    served = true;
  } catch (const std::exception& e) {
    for (const RequestPtr& request : group) {
      request->reason = RejectReason::kBackend;
      request->error = e.what();
    }
  }

  const auto charge = [&](ServiceStats& stats, std::optional<SearchParams>* warm) {
    ++stats.batches;
    stats.requests += group.size();
    // Failed batches count requests (their tickets were signaled) but not
    // rows: `queries` means rows actually served, so it stays in step
    // with the aggregate report's ray counter.
    if (served) stats.queries += merged.size();
    stats.report += report;
    // Only params the backend accepted may warm the writer path: a
    // rejected request must not poison the next update's probe search.
    if (served && warm != nullptr) *warm = params;
  };
  {
    std::lock_guard<std::mutex> lock(cloud.stats_mutex);
    charge(cloud.stats, &cloud.warm_params);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    charge(stats_, nullptr);
  }
  // Signal last: once `done` fires the waiter may destroy the state.
  for (const RequestPtr& request : group) {
    cloud.pending.fetch_sub(1);
    request->done.signal();
  }
}

void SearchService::dispatch_optimized(CloudState& cloud,
                                       const std::shared_ptr<Snapshot>& snap,
                                       const std::vector<RequestPtr>& batch) {
  std::vector<BatchRequest> requests;
  requests.reserve(batch.size());
  for (const RequestPtr& request : batch) {
    requests.push_back({request->queries, request->params});
  }
  BatchOptimizerOptions opt;
  opt.reorder = true;
  opt.dedup = true;
  opt.dedup_cell_scale = cloud.config.dedup_cell_scale;
  opt.max_bin_queries = cloud.config.max_bin_queries;
  const BatchPlan plan = optimize_batch(requests, opt);

  for (const BatchBin& bin : plan.bins) {
    NeighborSearch::Report report;
    bool served = false;
    try {
      // One launch per homogeneous bin, over the Morton-ordered
      // representatives only; the scatter fans representative rows back
      // out to every duplicate and request slot.
      const NeighborResult rep_result =
          snap->backend->search(bin.queries, bin.params, &report);
      report.queries_deduped = bin.deduped;
      report.batch_bins = 1;
      std::vector<NeighborResult> results = bin.scatter(rep_result);
      for (std::size_t i = 0; i < bin.request_ids.size(); ++i) {
        RequestOutcome& outcome = batch[bin.request_ids[i]]->outcome;
        outcome.result = std::move(results[i]);
        outcome.report = report;
        outcome.snapshot_version = snap->version;
        outcome.batch_requests = static_cast<std::uint32_t>(bin.request_ids.size());
        outcome.batch_queries = bin.merged_queries;
      }
      served = true;
    } catch (const std::exception& e) {
      // A rejected bin fails only its own members; the tick's other bins
      // still serve.
      for (const std::size_t id : bin.request_ids) {
        batch[id]->reason = RejectReason::kBackend;
        batch[id]->error = e.what();
      }
    }

    const auto charge = [&](ServiceStats& stats, std::optional<SearchParams>* warm) {
      ++stats.batches;
      stats.requests += bin.request_ids.size();
      // Served rows count what the clients submitted (pre-dedup): the
      // report's ray counter sees queries - queries_deduped of them.
      if (served) stats.queries += bin.merged_queries;
      stats.report += report;
      if (served && warm != nullptr) *warm = bin.params;
    };
    {
      std::lock_guard<std::mutex> lock(cloud.stats_mutex);
      charge(cloud.stats, &cloud.warm_params);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      charge(stats_, nullptr);
    }
    for (const std::size_t id : bin.request_ids) {
      cloud.pending.fetch_sub(1);
      batch[id]->done.signal();
    }
  }

  // Tick-level charge: the optimizer ran once for all bins, so its wall
  // time lands in the cloud and service totals, not any single bin's
  // report.
  {
    std::lock_guard<std::mutex> lock(cloud.stats_mutex);
    cloud.stats.report.time.opt += plan.seconds;
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.report.time.opt += plan.seconds;
}

}  // namespace rtnn::service
