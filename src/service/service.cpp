#include "service/service.hpp"

#include <algorithm>
#include <exception>

#include "core/error.hpp"
#include "engine/registry.hpp"
#include "rtnn/batch_optimizer.hpp"

namespace rtnn::service {

namespace detail {

/// Everything one in-flight request carries between submit() and get().
/// The submitter owns a reference through the Ticket; the dispatcher
/// fills outcome/error and fires `done`. After the signal the dispatcher
/// never touches the state again, so the waiter reads without a lock.
struct RequestState {
  std::vector<Vec3> queries;  // copied at submit: the caller's span may die
  SearchParams params;
  RequestOutcome outcome;
  std::string error;  // non-empty when the request failed
  CompletionEvent done;
};

}  // namespace detail

// --- Ticket ------------------------------------------------------------------

bool SearchService::Ticket::ready() const {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  return state_->done.signaled();
}

void SearchService::Ticket::wait() const {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  state_->done.wait();
}

bool SearchService::Ticket::wait_for(std::chrono::nanoseconds timeout) const {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  return state_->done.wait_for(timeout);
}

RequestOutcome SearchService::Ticket::get() {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  state_->done.wait();
  if (!state_->error.empty()) throw Error(state_->error);
  return std::move(state_->outcome);
}

// --- SearchService -----------------------------------------------------------

SearchService::SearchService(std::span<const Vec3> points,
                             const ServiceOptions& options)
    : options_(options) {
  RTNN_CHECK(!points.empty(), "a service needs points");
  RTNN_CHECK(options_.max_batch_queries > 0 && options_.max_batch_requests > 0,
             "batch caps must be positive");
  master_ = engine::make_backend(options_.backend);
  RTNN_CHECK(master_->caps().snapshot,
             "backend cannot snapshot (caps().snapshot is false)");
  master_->set_index_persistence(true);
  master_->set_points(points);
  auto snap = std::make_shared<Snapshot>();
  snap->version = 0;
  snap->backend = master_->snapshot();
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snap);
  }
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SearchService::~SearchService() { shutdown(); }

void SearchService::shutdown() {
  // The whole sequence runs under the writer lock: concurrent shutdown
  // calls serialize (the loser finds the thread already joined), and no
  // writer can publish into a closing service. The dispatcher never
  // takes update_mutex_, so joining under it cannot deadlock.
  std::lock_guard<std::mutex> lock(update_mutex_);
  stopped_ = true;
  queue_.close();  // dispatcher drains what is queued, then exits
  if (dispatcher_.joinable()) dispatcher_.join();
}

SearchService::Ticket SearchService::submit(std::span<const Vec3> queries,
                                            const SearchParams& params) {
  RTNN_CHECK(!queries.empty(), "a request needs queries");
  auto state = std::make_shared<detail::RequestState>();
  state->queries.assign(queries.begin(), queries.end());
  state->params = params;
  RTNN_CHECK(queue_.push(state), "service is shut down");
  return Ticket(std::move(state));
}

RequestOutcome SearchService::query(std::span<const Vec3> queries,
                                    const SearchParams& params) {
  return submit(queries, params).get();
}

void SearchService::update_points(std::span<const Vec3> points) {
  RTNN_CHECK(!points.empty(), "an update needs points");
  std::lock_guard<std::mutex> lock(update_mutex_);
  RTNN_CHECK(!stopped_, "service is shut down");

  // The master absorbs the motion: same count = a move dynamic backends
  // refit; a resize = a fresh upload (new index lineage, like the
  // DynamicSearchSession resize fallback).
  if (points.size() == master_->point_count()) {
    master_->update_points(points);
  } else {
    master_->set_points(points);
  }

  // Resolve the deferred index work here, on the writer's thread: a
  // one-probe search drives the refit-vs-rebuild policy (and rebuilds the
  // backend's auxiliary caches), so the published snapshot is warm and
  // the read path never pays for an update. Before the first dispatch no
  // params are known — the first batch on the new snapshot syncs lazily.
  std::optional<SearchParams> warm;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    warm = warm_params_;
  }
  NeighborSearch::Report warm_report;
  if (warm.has_value()) {
    const Vec3 probe = points[0];
    (void)master_->search(std::span<const Vec3>(&probe, 1), *warm, &warm_report);
  }

  auto snap = std::make_shared<Snapshot>();
  snap->backend = master_->snapshot();
  {
    std::lock_guard<std::mutex> snap_lock(snapshot_mutex_);
    snap->version = snapshot_->version + 1;
    snapshot_ = std::move(snap);
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.updates;
    stats_.report += warm_report;  // refit/rebuild increments land here
  }
}

std::shared_ptr<SearchService::Snapshot> SearchService::current_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::uint64_t SearchService::snapshot_version() const {
  return current_snapshot()->version;
}

std::size_t SearchService::point_count() const {
  return current_snapshot()->backend->point_count();
}

ServiceStats SearchService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SearchService::dispatch_loop() {
  while (true) {
    std::optional<RequestPtr> first = queue_.pop();
    if (!first.has_value()) return;  // closed and drained

    // The batching tick: the oldest request waits at most max_delay for
    // company; the batch also dispatches as soon as a cap fills.
    std::vector<RequestPtr> batch{std::move(*first)};
    std::size_t total = batch.front()->queries.size();
    const auto deadline = std::chrono::steady_clock::now() + options_.max_delay;
    while (batch.size() < options_.max_batch_requests &&
           total < options_.max_batch_queries) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      std::optional<RequestPtr> next = queue_.pop_for(deadline - now);
      if (!next.has_value()) break;  // tick over (or closing: drain next loop)
      total += (*next)->queries.size();
      batch.push_back(std::move(*next));
    }

    if (options_.batch_reorder) {
      // The optimizer path: one bin/reorder/dedup pass over the whole
      // tick, one launch per homogeneous bin.
      dispatch_optimized(batch);
      continue;
    }

    // The arrival-order path: coalesce requests whose answer-shaping
    // params agree (batch_key — the one definition the optimizer's
    // splitter shares); incompatible requests still dispatch this tick,
    // as their own groups, in arrival order.
    std::vector<std::vector<RequestPtr>> groups;
    for (RequestPtr& request : batch) {
      auto fits = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
        return g.front()->params.batch_key() == request->params.batch_key();
      });
      if (fits == groups.end()) {
        groups.emplace_back().push_back(std::move(request));
      } else {
        fits->push_back(std::move(request));
      }
    }
    for (const std::vector<RequestPtr>& group : groups) dispatch_group(group);
  }
}

void SearchService::dispatch_group(const std::vector<RequestPtr>& group) {
  // Pin the snapshot current *now*: a concurrent update_points() publishes
  // the next version without disturbing this batch.
  const std::shared_ptr<Snapshot> snap = current_snapshot();

  // Merge the group into one query array, tagging each request's rows.
  std::vector<Vec3> merged;
  std::vector<BatchSlice> slices;
  slices.reserve(group.size());
  std::size_t total = 0;
  for (const RequestPtr& request : group) total += request->queries.size();
  merged.reserve(total);
  for (const RequestPtr& request : group) {
    slices.push_back({merged.size(), request->queries.size()});
    merged.insert(merged.end(), request->queries.begin(), request->queries.end());
  }

  const SearchParams& params = group.front()->params;
  NeighborSearch::Report report;
  bool served = false;
  try {
    // One launch for the whole tick; per-request results scatter out of
    // the row-addressed batch result.
    NeighborResult batch_result = snap->backend->search(merged, params, &report);
    std::vector<NeighborResult> results = split_batch_result(batch_result, slices);
    for (std::size_t i = 0; i < group.size(); ++i) {
      RequestOutcome& outcome = group[i]->outcome;
      outcome.result = std::move(results[i]);
      outcome.report = report;
      outcome.snapshot_version = snap->version;
      outcome.batch_requests = static_cast<std::uint32_t>(group.size());
      outcome.batch_queries = merged.size();
    }
    served = true;
  } catch (const std::exception& e) {
    for (const RequestPtr& request : group) request->error = e.what();
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batches;
    stats_.requests += group.size();
    // Failed batches count requests (their tickets were signaled) but not
    // rows: `queries` means rows actually served, so it stays in step
    // with the aggregate report's ray counter.
    if (served) stats_.queries += merged.size();
    stats_.report += report;
    // Only params the backend accepted may warm the writer path: a
    // rejected request must not poison the next update's probe search.
    if (served) warm_params_ = params;
  }
  // Signal last: once `done` fires the waiter may destroy the state.
  for (const RequestPtr& request : group) request->done.signal();
}

void SearchService::dispatch_optimized(const std::vector<RequestPtr>& batch) {
  // Pin the snapshot once for the whole tick: every bin answers from the
  // same index version.
  const std::shared_ptr<Snapshot> snap = current_snapshot();

  std::vector<BatchRequest> requests;
  requests.reserve(batch.size());
  for (const RequestPtr& request : batch) {
    requests.push_back({request->queries, request->params});
  }
  BatchOptimizerOptions opt;
  opt.reorder = true;
  opt.dedup = true;
  opt.dedup_cell_scale = options_.dedup_cell_scale;
  opt.max_bin_queries = options_.max_bin_queries;
  const BatchPlan plan = optimize_batch(requests, opt);

  for (const BatchBin& bin : plan.bins) {
    NeighborSearch::Report report;
    bool served = false;
    try {
      // One launch per homogeneous bin, over the Morton-ordered
      // representatives only; the scatter fans representative rows back
      // out to every duplicate and request slot.
      const NeighborResult rep_result =
          snap->backend->search(bin.queries, bin.params, &report);
      report.queries_deduped = bin.deduped;
      report.batch_bins = 1;
      std::vector<NeighborResult> results = bin.scatter(rep_result);
      for (std::size_t i = 0; i < bin.request_ids.size(); ++i) {
        RequestOutcome& outcome = batch[bin.request_ids[i]]->outcome;
        outcome.result = std::move(results[i]);
        outcome.report = report;
        outcome.snapshot_version = snap->version;
        outcome.batch_requests = static_cast<std::uint32_t>(bin.request_ids.size());
        outcome.batch_queries = bin.merged_queries;
      }
      served = true;
    } catch (const std::exception& e) {
      // A rejected bin fails only its own members; the tick's other bins
      // still serve.
      for (const std::size_t id : bin.request_ids) batch[id]->error = e.what();
    }

    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
      stats_.requests += bin.request_ids.size();
      // Served rows count what the clients submitted (pre-dedup): the
      // report's ray counter sees queries - queries_deduped of them.
      if (served) stats_.queries += bin.merged_queries;
      stats_.report += report;
      if (served) warm_params_ = bin.params;
    }
    for (const std::size_t id : bin.request_ids) batch[id]->done.signal();
  }

  // Tick-level charge: the optimizer ran once for all bins, so its wall
  // time lands in the service totals, not any single bin's report.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.report.time.opt += plan.seconds;
  }
}

}  // namespace rtnn::service
