#include "service/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "core/failpoint.hpp"
#include "engine/backends.hpp"
#include "engine/registry.hpp"
#include "engine/sharded_backend.hpp"
#include "rtnn/batch_optimizer.hpp"

namespace rtnn::service {

namespace detail {

/// One published index version of one cloud: `backend` is searched only
/// by the dispatcher thread, never mutated by writers (they clone the
/// master instead), so in-flight batches and snapshot publishes never
/// share mutable state.
struct Snapshot {
  std::uint64_t version = 0;
  std::unique_ptr<engine::SearchBackend> backend;
};

/// Everything one in-flight request carries between submit() and get().
/// The submitter owns a reference through the Ticket; the dispatcher
/// fills outcome/error and fires `done`. After the signal the dispatcher
/// never touches the state again, so the waiter reads without a lock.
struct RequestState {
  std::shared_ptr<CloudState> cloud;
  std::vector<Vec3> queries;  // copied at submit: the caller's span may die
  SearchParams params;
  /// Latest instant the launch may still start (RequestOptions::deadline).
  std::optional<std::chrono::steady_clock::time_point> deadline;
  RequestOutcome outcome;
  std::string error;  // non-empty when the request failed
  RejectReason reason = RejectReason::kBackend;
  CompletionEvent done;
};

/// One tenant of the registry. Locks, never taken together except in the
/// stated order: registry_mutex_ is never held while taking a cloud's
/// update_mutex (eviction collects candidates under the registry lock,
/// then try-locks victims after releasing it), so registry scans and
/// per-cloud writers cannot deadlock.
struct CloudState {
  std::string name;
  CloudConfig config;

  /// Writer state: the authoritative points and the master backend that
  /// owns the index lineage (null while the cloud is not resident —
  /// evicted or not yet built). Guarded by update_mutex; never searched
  /// by readers.
  std::mutex update_mutex;
  std::vector<Vec3> points;
  std::unique_ptr<engine::SearchBackend> master;

  /// The published snapshot readers pin (swapped atomically under its
  /// own mutex so publishes never wait on dispatches). Null while not
  /// resident.
  mutable std::mutex snapshot_mutex;
  std::shared_ptr<Snapshot> snapshot;

  std::atomic<std::uint64_t> version{0};   // bumped by every update_points()
  std::atomic<bool> resident{false};       // a built index currently exists
  std::atomic<bool> dropped{false};
  std::atomic<std::uint64_t> last_used{0}; // LRU tick (service use_clock_)
  std::atomic<std::size_t> pending{0};     // admitted, not yet signaled

  std::mutex admission_mutex;
  TokenBucket bucket;

  mutable std::mutex stats_mutex;
  ServiceStats stats;
  /// Params of the most recent successful dispatch — what update_points()
  /// warms the refreshed index with (guarded by stats_mutex).
  std::optional<SearchParams> warm_params;
};

}  // namespace detail

namespace {

using detail::CloudState;
using detail::RequestState;
using detail::Snapshot;
using RequestPtr = std::shared_ptr<RequestState>;

/// The backend a cloud's config asks for: the named engine backend,
/// wrapped in a ShardedBackend when the cloud is over its threshold.
std::unique_ptr<engine::SearchBackend> make_cloud_backend(const CloudConfig& config,
                                                          std::size_t point_count) {
  if (config.shard_threshold > 0 && point_count > config.shard_threshold) {
    engine::ShardingOptions sharding;
    sharding.shard_threshold = config.shard_threshold;
    sharding.max_shards = config.max_shards;
    sharding.max_attempts = config.shard_max_attempts;
    sharding.backoff = config.shard_backoff;
    sharding.allow_degraded = config.shard_allow_degraded;
    return std::make_unique<engine::ShardedBackend>(config.backend, sharding);
  }
  std::unique_ptr<engine::SearchBackend> backend = engine::make_backend(config.backend);
  // Unsharded path only: forward the cloud's tiling knobs so a large
  // cloud's base index becomes a TLAS over Morton tiles. Only the full
  // rtnn engine owns the tiled lifecycle; other backends ignore them.
  if (config.tile_threshold > 0) {
    if (auto* rtnn = dynamic_cast<engine::RtnnBackend*>(backend.get())) {
      TileOptions tiling;
      tiling.tile_threshold = config.tile_threshold;
      tiling.max_tiles = config.max_tiles;
      tiling.lazy_build = config.lazy_tile_build;
      rtnn->core().set_tiling(tiling);
    }
  }
  return backend;
}

bool expired(const RequestPtr& request) {
  return request->deadline.has_value() &&
         std::chrono::steady_clock::now() >= *request->deadline;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// --- CloudHandle -------------------------------------------------------------

const std::string& CloudHandle::name() const {
  RTNN_CHECK(state_ != nullptr, "empty cloud handle");
  return state_->name;
}

// --- Ticket ------------------------------------------------------------------

bool SearchService::Ticket::ready() const {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  return state_->done.signaled();
}

void SearchService::Ticket::wait() const {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  state_->done.wait();
}

bool SearchService::Ticket::wait_for(std::chrono::nanoseconds timeout) const {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  return state_->done.wait_for(timeout);
}

RequestOutcome SearchService::Ticket::get() {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  state_->done.wait();
  if (!state_->error.empty()) throw ServiceError(state_->reason, state_->error);
  return std::move(state_->outcome);
}

std::optional<RequestOutcome> SearchService::Ticket::try_get() {
  RTNN_CHECK(state_ != nullptr, "empty ticket");
  if (!state_->done.signaled()) return std::nullopt;
  if (!state_->error.empty()) throw ServiceError(state_->reason, state_->error);
  return std::move(state_->outcome);
}

// --- Construction / lifecycle ------------------------------------------------

SearchService::SearchService(const ServiceConfig& config) : config_(config) {
  RTNN_CHECK(config_.max_batch_queries > 0 && config_.max_batch_requests > 0,
             "batch caps must be positive");
  RTNN_CHECK(config_.stall_timeout.count() == 0 ||
                 config_.watchdog_interval.count() > 0,
             "the watchdog needs a positive sampling interval");
  dispatcher_ = std::thread([this] { dispatch_loop(0); });
  if (config_.stall_timeout.count() > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

SearchService::SearchService(std::span<const Vec3> points,
                             const ServiceOptions& options)
    : SearchService(options.service_config()) {
  // The single-cloud compatibility form: a registry of size one whose
  // tenant keeps the historical eager-build semantics.
  CloudHandle handle = register_cloud("default", points, options.cloud_config());
  std::lock_guard<std::mutex> lock(registry_mutex_);
  default_ = handle.state_;
}

SearchService::~SearchService() { shutdown(); }

void SearchService::shutdown() {
  // Serialized so concurrent shutdown calls cannot both join; the
  // dispatcher never touches lifecycle_mutex_, so joining under it
  // cannot deadlock. Requests already queued are served by the drain.
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  {
    // Set under the watchdog's mutex so it either sees the flag before
    // waiting or is inside the wait and gets the notify.
    std::lock_guard<std::mutex> watchdog_lock(watchdog_mutex_);
    stopped_.store(true);
  }
  watchdog_cv_.notify_all();
  // The watchdog goes first: once joined, no further restart can swap
  // dispatcher_ out from under the joins below.
  if (watchdog_.joinable()) watchdog_.join();
  queue_.close();  // dispatcher drains what is queued, then exits
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> dispatcher_lock(dispatcher_mutex_);
    workers = std::move(retired_dispatchers_);
    retired_dispatchers_.clear();
    if (dispatcher_.joinable()) workers.push_back(std::move(dispatcher_));
  }
  for (std::thread& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

// --- Registry ----------------------------------------------------------------

CloudHandle SearchService::register_cloud(const std::string& name,
                                          std::span<const Vec3> points,
                                          const CloudConfig& config) {
  RTNN_CHECK(!name.empty(), "a cloud needs a name");
  // Typed rejection, not a raw RTNN_CHECK: a sharded tenant registering a
  // degenerate cloud would otherwise surface the backend's internal
  // "cannot shard an empty cloud" invariant instead of a door-level error.
  if (points.empty()) {
    throw ServiceError(RejectReason::kInvalid,
                       "register_cloud('" + name + "'): a cloud needs points");
  }
  RTNN_CHECK(!stopped_.load(), "service is shut down");
  {
    // Early duplicate check so a losing caller fails before paying for
    // a build; the insert below re-checks under the same lock.
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const CloudPtr& cloud : clouds_) {
      RTNN_CHECK(cloud->name != name, "cloud '" + name + "' already registered");
    }
  }

  auto state = std::make_shared<CloudState>();
  state->name = name;
  state->config = config;
  state->points.assign(points.begin(), points.end());
  state->bucket = TokenBucket(config.admission.tokens_per_second,
                              config.admission.burst);
  // Validate the backend choice now, whether or not the build is
  // deferred: an unknown name or a snapshot-less backend must fail at
  // registration, not at the first request.
  RTNN_CHECK(make_cloud_backend(config, points.size())->caps().snapshot,
             "backend cannot snapshot (caps().snapshot is false)");

  if (config.build_on_register) {
    // The state is not yet visible to any other thread, so this lock is
    // uncontended; build_cloud_locked still expects it held.
    std::lock_guard<std::mutex> lock(state->update_mutex);
    build_cloud_locked(*state);
  }

  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const CloudPtr& cloud : clouds_) {
      RTNN_CHECK(cloud->name != name, "cloud '" + name + "' already registered");
    }
    clouds_.push_back(state);
  }
  state->last_used.store(use_clock_.fetch_add(1) + 1);
  try {
    enforce_residency_cap(state.get());
  } catch (const std::exception&) {
    // Registration already succeeded; a failed eviction pass is
    // housekeeping, not a registration error. The cap re-enforces at the
    // next build; health() counts the miss.
    eviction_failures_.fetch_add(1);
  }
  return CloudHandle(state);
}

void SearchService::drop_cloud(const std::string& name) {
  CloudPtr state;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = std::find_if(clouds_.begin(), clouds_.end(),
                           [&](const CloudPtr& c) { return c->name == name; });
    RTNN_CHECK(it != clouds_.end(), "unknown cloud: " + name);
    state = *it;
    clouds_.erase(it);
    if (default_ == state) default_.reset();
  }
  // Mark first: requests already queued are rejected by the dispatcher
  // (kShutdown), new submits through stale handles throw. Then release
  // the index — outside the registry lock, per the locking order.
  state->dropped.store(true);
  {
    std::lock_guard<std::mutex> lock(state->update_mutex);
    state->master.reset();
    std::lock_guard<std::mutex> snap_lock(state->snapshot_mutex);
    state->snapshot.reset();
    state->resident.store(false);
  }
}

std::vector<std::string> SearchService::list_clouds() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    names.reserve(clouds_.size());
    for (const CloudPtr& cloud : clouds_) names.push_back(cloud->name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

CloudHandle SearchService::cloud(const std::string& name) const {
  return CloudHandle(resolve(name));
}

std::size_t SearchService::resident_clouds() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t count = 0;
  for (const CloudPtr& cloud : clouds_) {
    if (cloud->resident.load()) ++count;
  }
  return count;
}

SearchService::CloudPtr SearchService::default_cloud() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  RTNN_CHECK(default_ != nullptr,
             "no default cloud (multi-tenant service): address a CloudHandle");
  return default_;
}

SearchService::CloudPtr SearchService::resolve(const CloudHandle& handle) const {
  RTNN_CHECK(handle.state_ != nullptr, "empty cloud handle");
  return handle.state_;
}

SearchService::CloudPtr SearchService::resolve(std::string_view name) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const CloudPtr& cloud : clouds_) {
    if (cloud->name == name) return cloud;
  }
  throw Error("unknown cloud: " + std::string(name));
}

// --- Residency ---------------------------------------------------------------

void SearchService::build_cloud_locked(CloudState& cloud) {
  // Injection site for the build/publish step, placed before any state
  // changes hands: a fired fault leaves the cloud exactly as it was
  // (non-resident, old snapshot intact), so the next build just retries.
  RTNN_FAILPOINT("service.publish");
  cloud.master = make_cloud_backend(cloud.config, cloud.points.size());
  RTNN_CHECK(cloud.master->caps().snapshot,
             "backend cannot snapshot (caps().snapshot is false)");
  cloud.master->set_index_persistence(true);
  cloud.master->set_points(cloud.points);

  NeighborSearch::Report warm_report;
  if (cloud.config.warmup.has_value()) {
    const Vec3 probe = cloud.points[0];
    (void)cloud.master->search(std::span<const Vec3>(&probe, 1),
                               *cloud.config.warmup, &warm_report);
  }

  auto snap = std::make_shared<Snapshot>();
  snap->version = cloud.version.load();
  snap->backend = cloud.master->snapshot();
  {
    std::lock_guard<std::mutex> lock(cloud.snapshot_mutex);
    cloud.snapshot = std::move(snap);
  }
  cloud.resident.store(true);
  {
    std::lock_guard<std::mutex> lock(cloud.stats_mutex);
    ++cloud.stats.builds;
    cloud.stats.report += warm_report;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.builds;
    stats_.report += warm_report;
  }
}

void SearchService::enforce_residency_cap(const CloudState* keep) {
  if (config_.max_resident_clouds == 0) return;
  std::vector<CloudPtr> candidates;
  std::size_t resident = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const CloudPtr& cloud : clouds_) {
      if (!cloud->resident.load()) continue;
      ++resident;
      if (cloud.get() != keep) candidates.push_back(cloud);
    }
  }
  // Oldest last_used first: evict the coldest index until the cap holds.
  std::sort(candidates.begin(), candidates.end(),
            [](const CloudPtr& a, const CloudPtr& b) {
              return a->last_used.load() < b->last_used.load();
            });
  for (const CloudPtr& victim : candidates) {
    if (resident <= config_.max_resident_clouds) break;
    RTNN_FAILPOINT("service.evict");
    // try_lock: a victim mid-update or mid-build is hot, not cold — skip
    // it (and avoid any cross-cloud lock cycle).
    std::unique_lock<std::mutex> lock(victim->update_mutex, std::try_to_lock);
    if (!lock.owns_lock() || !victim->resident.load()) continue;
    victim->master.reset();
    {
      std::lock_guard<std::mutex> snap_lock(victim->snapshot_mutex);
      victim->snapshot.reset();  // in-flight pins keep their own reference
    }
    victim->resident.store(false);
    --resident;
    {
      std::lock_guard<std::mutex> stats_lock(victim->stats_mutex);
      ++victim->stats.evictions;
    }
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.evictions;
  }
}

std::shared_ptr<Snapshot> SearchService::pin_snapshot(CloudState& cloud) {
  {
    std::lock_guard<std::mutex> lock(cloud.snapshot_mutex);
    if (cloud.snapshot != nullptr) return cloud.snapshot;
  }
  // Not resident: build on demand on the dispatcher's thread, then evict
  // whatever the build pushed past the cap.
  std::shared_ptr<Snapshot> snap;
  {
    std::lock_guard<std::mutex> lock(cloud.update_mutex);
    {
      std::lock_guard<std::mutex> snap_lock(cloud.snapshot_mutex);
      snap = cloud.snapshot;  // a racing writer may have built already
    }
    if (snap == nullptr && cloud.master != nullptr) {
      // Quarantined by a watchdog restart: the master is intact, so a
      // fresh clone (copy-on-write accel sharing) republishes without
      // paying for a rebuild — and without ever touching the backend
      // scratch the wedged dispatcher may still hold.
      auto next = std::make_shared<Snapshot>();
      next->version = cloud.version.load();
      next->backend = cloud.master->snapshot();
      std::lock_guard<std::mutex> snap_lock(cloud.snapshot_mutex);
      cloud.snapshot = next;
      snap = std::move(next);
    }
    if (snap == nullptr) {
      build_cloud_locked(cloud);
      std::lock_guard<std::mutex> snap_lock(cloud.snapshot_mutex);
      snap = cloud.snapshot;
    }
  }
  try {
    enforce_residency_cap(&cloud);
  } catch (const std::exception&) {
    // An eviction failure never fails the request path: the pinned
    // snapshot is valid, so serve now and re-enforce at the next build.
    eviction_failures_.fetch_add(1);
  }
  return snap;
}

// --- Request path ------------------------------------------------------------

SearchService::Ticket SearchService::submit_to(const CloudPtr& cloud,
                                               std::span<const Vec3> queries,
                                               const SearchParams& params,
                                               const RequestOptions& options) {
  RTNN_CHECK(!queries.empty(), "a request needs queries");
  if (stopped_.load()) throw ServiceError(RejectReason::kShutdown,
                                          "service is shut down");
  if (cloud->dropped.load()) {
    throw ServiceError(RejectReason::kShutdown,
                       "cloud '" + cloud->name + "' was dropped");
  }

  auto state = std::make_shared<RequestState>();
  state->cloud = cloud;
  state->queries.assign(queries.begin(), queries.end());
  state->params = params;
  state->deadline = options.deadline;

  // A deadline already over is resolved at the door, before admission —
  // a dead request must not consume a token. Counted like shed (a miss,
  // never a served request) since it was never queued.
  if (state->deadline.has_value() &&
      std::chrono::steady_clock::now() >= *state->deadline) {
    state->reason = RejectReason::kDeadline;
    state->error =
        "deadline expired before submit on cloud '" + cloud->name + "'";
    {
      std::lock_guard<std::mutex> lock(cloud->stats_mutex);
      ++cloud->stats.deadline_misses;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.deadline_misses;
    }
    state->done.signal();
    return Ticket(std::move(state));
  }

  // Admission: shed at the door instead of queueing, so overload cannot
  // grow the dispatcher's backlog. The ticket comes back already
  // rejected — get() throws the typed kAdmission error.
  const AdmissionOptions& admission = cloud->config.admission;
  const char* refused = nullptr;
  if (admission.max_queue_depth > 0 &&
      cloud->pending.load() >= admission.max_queue_depth) {
    refused = "queue depth cap";
  } else {
    std::lock_guard<std::mutex> lock(cloud->admission_mutex);
    if (!cloud->bucket.try_take(std::chrono::steady_clock::now())) {
      refused = "token bucket";
    }
  }
  if (refused != nullptr) {
    state->reason = RejectReason::kAdmission;
    state->error = "request shed by admission control (" + std::string(refused) +
                   ") on cloud '" + cloud->name + "'";
    count_shed(*cloud);
    state->done.signal();
    return Ticket(std::move(state));
  }

  cloud->pending.fetch_add(1);
  pending_requests_.fetch_add(1);
  if (!queue_.push(state)) {
    cloud->pending.fetch_sub(1);
    pending_requests_.fetch_sub(1);
    throw ServiceError(RejectReason::kShutdown, "service is shut down");
  }
  cloud->last_used.store(use_clock_.fetch_add(1) + 1);
  return Ticket(std::move(state));
}

void SearchService::count_shed(CloudState& cloud) {
  {
    std::lock_guard<std::mutex> lock(cloud.stats_mutex);
    ++cloud.stats.shed;
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.shed;
}

SearchService::Ticket SearchService::submit(const CloudHandle& cloud,
                                            std::span<const Vec3> queries,
                                            const SearchParams& params,
                                            const RequestOptions& options) {
  return submit_to(resolve(cloud), queries, params, options);
}

SearchService::Ticket SearchService::submit(std::string_view cloud,
                                            std::span<const Vec3> queries,
                                            const SearchParams& params,
                                            const RequestOptions& options) {
  return submit_to(resolve(cloud), queries, params, options);
}

SearchService::Ticket SearchService::submit(std::span<const Vec3> queries,
                                            const SearchParams& params,
                                            const RequestOptions& options) {
  return submit_to(default_cloud(), queries, params, options);
}

RequestOutcome SearchService::query(const CloudHandle& cloud,
                                    std::span<const Vec3> queries,
                                    const SearchParams& params,
                                    const RequestOptions& options) {
  return submit(cloud, queries, params, options).get();
}

RequestOutcome SearchService::query(std::string_view cloud,
                                    std::span<const Vec3> queries,
                                    const SearchParams& params,
                                    const RequestOptions& options) {
  return submit(cloud, queries, params, options).get();
}

RequestOutcome SearchService::query(std::span<const Vec3> queries,
                                    const SearchParams& params,
                                    const RequestOptions& options) {
  return submit(queries, params, options).get();
}

// --- Writer path -------------------------------------------------------------

void SearchService::update_points(const CloudHandle& cloud,
                                  std::span<const Vec3> points) {
  if (points.empty()) {
    throw ServiceError(RejectReason::kInvalid,
                       "update_points: an update needs points");
  }
  const CloudPtr state = resolve(cloud);
  if (stopped_.load()) throw ServiceError(RejectReason::kShutdown,
                                          "service is shut down");
  if (state->dropped.load()) {
    throw ServiceError(RejectReason::kShutdown,
                       "cloud '" + state->name + "' was dropped");
  }

  std::lock_guard<std::mutex> lock(state->update_mutex);
  // Writer heartbeat: health() flags a writer wedged inside this section
  // longer than the stall window (the watchdog cannot heal a caller's
  // thread, only surface it).
  writer_entered_ns_.store(steady_now_ns());
  writers_active_.fetch_add(1);
  struct WriterScope {
    std::atomic<int>& active;
    ~WriterScope() { active.fetch_sub(1); }
  } writer_scope{writers_active_};

  state->points.assign(points.begin(), points.end());

  NeighborSearch::Report warm_report;
  if (state->master != nullptr) {
    // The master absorbs the motion: same count = a move dynamic
    // backends refit; a resize = a fresh upload (new index lineage,
    // like the DynamicSearchSession resize fallback).
    if (points.size() == state->master->point_count()) {
      state->master->update_points(points);
    } else {
      state->master->set_points(points);
    }

    // Resolve the deferred index work here, on the writer's thread: a
    // one-probe search drives the refit-vs-rebuild policy (and rebuilds
    // the backend's auxiliary caches), so the published snapshot is warm
    // and the read path never pays for an update. Before the first
    // dispatch no params are known — the first batch on the new
    // snapshot syncs lazily.
    std::optional<SearchParams> warm;
    {
      std::lock_guard<std::mutex> stats_lock(state->stats_mutex);
      warm = state->warm_params;
    }
    if (warm.has_value()) {
      const Vec3 probe = points[0];
      (void)state->master->search(std::span<const Vec3>(&probe, 1), *warm,
                                  &warm_report);
    }

    // Publish-step injection site, before the version bump: a fired
    // fault throws to the writer with the old snapshot still published
    // and the version unchanged — readers never see the half-update, and
    // a retried update_points() succeeds cleanly.
    RTNN_FAILPOINT("service.publish");

    auto snap = std::make_shared<Snapshot>();
    snap->version = state->version.fetch_add(1) + 1;
    snap->backend = state->master->snapshot();
    std::lock_guard<std::mutex> snap_lock(state->snapshot_mutex);
    state->snapshot = std::move(snap);
  } else {
    // Non-resident (deferred or evicted): the stored points are the
    // whole truth, and the next build publishes this version.
    state->version.fetch_add(1);
  }

  {
    std::lock_guard<std::mutex> stats_lock(state->stats_mutex);
    ++state->stats.updates;
    state->stats.report += warm_report;
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.updates;
    stats_.report += warm_report;  // refit/rebuild increments land here
  }
  state->last_used.store(use_clock_.fetch_add(1) + 1);
}

void SearchService::update_points(std::string_view cloud,
                                  std::span<const Vec3> points) {
  update_points(CloudHandle(resolve(cloud)), points);
}

void SearchService::update_points(std::span<const Vec3> points) {
  update_points(CloudHandle(default_cloud()), points);
}

// --- Introspection -----------------------------------------------------------

std::uint64_t SearchService::snapshot_version(const CloudHandle& cloud) const {
  return resolve(cloud)->version.load();
}

std::uint64_t SearchService::snapshot_version() const {
  return default_cloud()->version.load();
}

std::size_t SearchService::point_count(const CloudHandle& cloud) const {
  const CloudPtr state = resolve(cloud);
  std::lock_guard<std::mutex> lock(state->update_mutex);
  return state->points.size();
}

std::size_t SearchService::point_count() const {
  const CloudPtr state = default_cloud();
  std::lock_guard<std::mutex> lock(state->update_mutex);
  return state->points.size();
}

ServiceStats SearchService::stats(const CloudHandle& cloud) const {
  const CloudPtr state = resolve(cloud);
  std::lock_guard<std::mutex> lock(state->stats_mutex);
  return state->stats;
}

ServiceStats SearchService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

// --- Dispatcher --------------------------------------------------------------

void SearchService::dispatch_loop(std::uint64_t generation) {
  while (true) {
    if (dispatcher_stale(generation)) return;  // superseded while idle
    std::optional<RequestPtr> first = queue_.pop();
    if (!first.has_value()) return;  // closed and drained
    beat();

    // The batching tick: the oldest request waits at most max_delay for
    // company; the batch also dispatches as soon as a cap fills.
    // Requests found already expired mid-queue resolve here (kDeadline)
    // instead of riding into a launch they may no longer start.
    std::vector<RequestPtr> batch;
    std::size_t total = 0;
    const auto admit = [&](RequestPtr request) {
      if (expired(request)) {
        expire_request(request);
        return;
      }
      total += request->queries.size();
      batch.push_back(std::move(request));
    };
    admit(std::move(*first));
    const auto tick_over = std::chrono::steady_clock::now() + config_.max_delay;
    while (batch.size() < config_.max_batch_requests &&
           total < config_.max_batch_queries) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= tick_over) break;
      std::optional<RequestPtr> next = queue_.pop_for(tick_over - now);
      if (!next.has_value()) break;  // tick over (or closing: drain next loop)
      admit(std::move(*next));
    }
    if (batch.empty()) continue;  // the whole tick expired

    // Tick-level injection site: a kDelay here wedges the dispatcher
    // with the batch popped (what the watchdog test provokes); a kThrow
    // fails the tick — typed, never fatal to the thread.
    try {
      RTNN_FAILPOINT("service.dispatch.tick");
    } catch (const std::exception& e) {
      fail_requests(batch, RejectReason::kBackend, e.what());
      continue;
    }

    if (dispatcher_stale(generation)) {
      // Superseded mid-tick (the watchdog declared this thread stalled
      // and started a replacement): hand the in-flight batch back so
      // the replacement serves it — never abandon a ticket.
      requeue_or_reject(batch);
      return;
    }
    beat();

    // One tick may span tenants: requests group per cloud (arrival order
    // preserved within each), and every cloud-group dispatches against
    // its own pinned snapshot.
    std::vector<std::pair<CloudPtr, std::vector<RequestPtr>>> by_cloud;
    for (RequestPtr& request : batch) {
      const CloudPtr& cloud = request->cloud;
      auto fits = std::find_if(by_cloud.begin(), by_cloud.end(), [&](const auto& g) {
        return g.first == cloud;
      });
      if (fits == by_cloud.end()) {
        by_cloud.emplace_back(cloud, std::vector<RequestPtr>{}).second.push_back(
            std::move(request));
      } else {
        fits->second.push_back(std::move(request));
      }
    }
    for (const auto& [cloud, group] : by_cloud) {
      try {
        dispatch_cloud(cloud, group);
      } catch (const std::exception& e) {
        // The dispatcher never dies: whatever a dispatch path threw past
        // its own handlers rejects the group's unserved members, typed.
        fail_requests(group, RejectReason::kBackend, e.what());
      }
      beat();
    }
  }
}

void SearchService::reject(const RequestPtr& request, RejectReason reason,
                           const std::string& message) {
  if (request->done.signaled()) return;  // already served or rejected
  request->reason = reason;
  request->error = message;
  request->done.signal();
}

void SearchService::fail_requests(const std::vector<RequestPtr>& requests,
                                  RejectReason reason, const std::string& message) {
  std::size_t failed = 0;
  for (const RequestPtr& request : requests) {
    if (request->done.signaled()) continue;  // served before the throw
    request->cloud->pending.fetch_sub(1);
    pending_requests_.fetch_sub(1);
    {
      std::lock_guard<std::mutex> lock(request->cloud->stats_mutex);
      ++request->cloud->stats.requests;
    }
    ++failed;
    reject(request, reason, message);
  }
  if (failed > 0) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests += failed;
  }
}

void SearchService::expire_request(const RequestPtr& request) {
  request->cloud->pending.fetch_sub(1);
  pending_requests_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(request->cloud->stats_mutex);
    ++request->cloud->stats.requests;
    ++request->cloud->stats.deadline_misses;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
    ++stats_.deadline_misses;
  }
  reject(request, RejectReason::kDeadline,
         "deadline expired before launch on cloud '" + request->cloud->name + "'");
}

std::vector<SearchService::RequestPtr> SearchService::drop_expired(
    const std::vector<RequestPtr>& group) {
  std::vector<RequestPtr> live;
  live.reserve(group.size());
  for (const RequestPtr& request : group) {
    if (expired(request)) {
      expire_request(request);
    } else {
      live.push_back(request);
    }
  }
  return live;
}

void SearchService::requeue_or_reject(std::vector<RequestPtr>& batch) {
  for (RequestPtr& request : batch) {
    if (request->done.signaled()) continue;
    if (!queue_.push(request)) {
      // The queue closed while this thread was wedged: resolve the
      // ticket here, typed — shutdown semantics, never silence.
      request->cloud->pending.fetch_sub(1);
      pending_requests_.fetch_sub(1);
      {
        std::lock_guard<std::mutex> lock(request->cloud->stats_mutex);
        ++request->cloud->stats.requests;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests;
      }
      reject(request, RejectReason::kShutdown, "service is shut down");
    }
  }
}

void SearchService::dispatch_cloud(const CloudPtr& cloud,
                                   const std::vector<RequestPtr>& group) {
  if (cloud->dropped.load()) {
    // drop_cloud() retired the tenant while these were queued: reject
    // the leftovers instead of serving from a released index.
    fail_requests(group, RejectReason::kShutdown,
                  "cloud '" + cloud->name + "' was dropped");
    return;
  }

  std::shared_ptr<Snapshot> snap;
  try {
    snap = pin_snapshot(*cloud);  // builds on demand when not resident
  } catch (const std::exception& e) {
    fail_requests(group, RejectReason::kBackend, e.what());
    return;
  }
  cloud->last_used.store(use_clock_.fetch_add(1) + 1);

  // Launch-step injection site, after the pin: a kDelay here holds the
  // snapshot reference across an eviction (the LRU regression test), a
  // kThrow fails the group typed via the dispatcher's catch-all.
  RTNN_FAILPOINT("service.dispatch.launch");

  // The last deadline gate before work starts: the demand build above
  // may have taken longer than some member's budget allowed. Past this
  // point a request is launched, and a launch is never cancelled.
  const std::vector<RequestPtr> live = drop_expired(group);
  if (live.empty()) return;

  if (cloud->config.batch_reorder) {
    // The optimizer path: one bin/reorder/dedup pass over the cloud's
    // whole tick, one launch per homogeneous bin.
    dispatch_optimized(*cloud, snap, live);
    return;
  }

  // The arrival-order path: coalesce requests whose answer-shaping
  // params agree (batch_key — the one definition the optimizer's
  // splitter shares); incompatible requests still dispatch this tick,
  // as their own groups, in arrival order.
  std::vector<std::vector<RequestPtr>> groups;
  for (const RequestPtr& request : live) {
    auto fits = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
      return g.front()->params.batch_key() == request->params.batch_key();
    });
    if (fits == groups.end()) {
      groups.emplace_back().push_back(request);
    } else {
      fits->push_back(request);
    }
  }
  for (const std::vector<RequestPtr>& key_group : groups) {
    dispatch_group(*cloud, snap, key_group);
  }
}

void SearchService::dispatch_group(CloudState& cloud,
                                   const std::shared_ptr<Snapshot>& snap,
                                   const std::vector<RequestPtr>& group) {
  // Merge the group into one query array, tagging each request's rows.
  std::vector<Vec3> merged;
  std::vector<BatchSlice> slices;
  slices.reserve(group.size());
  std::size_t total = 0;
  for (const RequestPtr& request : group) total += request->queries.size();
  merged.reserve(total);
  for (const RequestPtr& request : group) {
    slices.push_back({merged.size(), request->queries.size()});
    merged.insert(merged.end(), request->queries.begin(), request->queries.end());
  }

  const SearchParams& params = group.front()->params;
  NeighborSearch::Report report;
  bool served = false;
  bool degraded = false;
  try {
    // One launch for the whole group; per-request results scatter out of
    // the row-addressed batch result.
    NeighborResult batch_result = snap->backend->search(merged, params, &report);
    std::vector<NeighborResult> results = split_batch_result(batch_result, slices);
    for (std::size_t i = 0; i < group.size(); ++i) {
      RequestOutcome& outcome = group[i]->outcome;
      outcome.result = std::move(results[i]);
      outcome.report = report;
      outcome.snapshot_version = snap->version;
      outcome.batch_requests = static_cast<std::uint32_t>(group.size());
      outcome.batch_queries = merged.size();
      degraded = note_degradation(*snap, outcome) || degraded;
    }
    served = true;
  } catch (const std::exception& e) {
    for (const RequestPtr& request : group) {
      request->reason = RejectReason::kBackend;
      request->error = e.what();
    }
  }

  const auto charge = [&](ServiceStats& stats, std::optional<SearchParams>* warm) {
    ++stats.batches;
    stats.requests += group.size();
    // Failed batches count requests (their tickets were signaled) but not
    // rows: `queries` means rows actually served, so it stays in step
    // with the aggregate report's ray counter.
    if (served) stats.queries += merged.size();
    if (degraded) stats.degraded += group.size();
    stats.report += report;
    // Only params the backend accepted may warm the writer path: a
    // rejected request must not poison the next update's probe search.
    if (served && warm != nullptr) *warm = params;
  };
  {
    std::lock_guard<std::mutex> lock(cloud.stats_mutex);
    charge(cloud.stats, &cloud.warm_params);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    charge(stats_, nullptr);
  }
  // Signal last: once `done` fires the waiter may destroy the state.
  for (const RequestPtr& request : group) {
    cloud.pending.fetch_sub(1);
    pending_requests_.fetch_sub(1);
    request->done.signal();
  }
}

void SearchService::dispatch_optimized(CloudState& cloud,
                                       const std::shared_ptr<Snapshot>& snap,
                                       const std::vector<RequestPtr>& batch) {
  std::vector<BatchRequest> requests;
  requests.reserve(batch.size());
  for (const RequestPtr& request : batch) {
    requests.push_back({request->queries, request->params});
  }
  BatchOptimizerOptions opt;
  opt.reorder = true;
  opt.dedup = true;
  opt.dedup_cell_scale = cloud.config.dedup_cell_scale;
  opt.max_bin_queries = cloud.config.max_bin_queries;
  const BatchPlan plan = optimize_batch(requests, opt);

  for (const BatchBin& bin : plan.bins) {
    NeighborSearch::Report report;
    bool served = false;
    bool degraded = false;
    try {
      // One launch per homogeneous bin, over the Morton-ordered
      // representatives only; the scatter fans representative rows back
      // out to every duplicate and request slot.
      const NeighborResult rep_result =
          snap->backend->search(bin.queries, bin.params, &report);
      report.queries_deduped = bin.deduped;
      report.batch_bins = 1;
      std::vector<NeighborResult> results = bin.scatter(rep_result);
      for (std::size_t i = 0; i < bin.request_ids.size(); ++i) {
        RequestOutcome& outcome = batch[bin.request_ids[i]]->outcome;
        outcome.result = std::move(results[i]);
        outcome.report = report;
        outcome.snapshot_version = snap->version;
        outcome.batch_requests = static_cast<std::uint32_t>(bin.request_ids.size());
        outcome.batch_queries = bin.merged_queries;
        degraded = note_degradation(*snap, outcome) || degraded;
      }
      served = true;
    } catch (const std::exception& e) {
      // A rejected bin fails only its own members; the tick's other bins
      // still serve.
      for (const std::size_t id : bin.request_ids) {
        batch[id]->reason = RejectReason::kBackend;
        batch[id]->error = e.what();
      }
    }

    const auto charge = [&](ServiceStats& stats, std::optional<SearchParams>* warm) {
      ++stats.batches;
      stats.requests += bin.request_ids.size();
      // Served rows count what the clients submitted (pre-dedup): the
      // report's ray counter sees queries - queries_deduped of them.
      if (served) stats.queries += bin.merged_queries;
      if (degraded) stats.degraded += bin.request_ids.size();
      stats.report += report;
      if (served && warm != nullptr) *warm = bin.params;
    };
    {
      std::lock_guard<std::mutex> lock(cloud.stats_mutex);
      charge(cloud.stats, &cloud.warm_params);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      charge(stats_, nullptr);
    }
    for (const std::size_t id : bin.request_ids) {
      cloud.pending.fetch_sub(1);
      pending_requests_.fetch_sub(1);
      batch[id]->done.signal();
    }
    beat();  // heartbeat per launch: a multi-bin tick is alive, not stalled
  }

  // Tick-level charge: the optimizer ran once for all bins, so its wall
  // time lands in the cloud and service totals, not any single bin's
  // report.
  {
    std::lock_guard<std::mutex> lock(cloud.stats_mutex);
    cloud.stats.report.time.opt += plan.seconds;
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.report.time.opt += plan.seconds;
}

// --- Robustness: degradation, watchdog, health -------------------------------

bool SearchService::note_degradation(const Snapshot& snap, RequestOutcome& outcome) {
  // Only the dispatcher touches a snapshot's backend, so reading the
  // per-search scratch right after the launch is race-free.
  const auto* sharded =
      dynamic_cast<const engine::ShardedBackend*>(snap.backend.get());
  if (sharded == nullptr || sharded->last_dropped_shards().empty()) return false;
  outcome.degraded = true;
  outcome.dropped_shards = sharded->last_dropped_shards();
  return true;
}

void SearchService::watchdog_loop() {
  std::uint64_t last_beat = dispatcher_beat_.load();
  // After a restart, detection re-arms only at the replacement's first
  // beat: until the stale thread hands its batch back, the work is
  // outstanding but the replacement is legitimately idle, and restarting
  // again would only churn threads.
  bool armed = true;
  std::optional<std::chrono::steady_clock::time_point> stall_since;
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!stopped_.load()) {
    watchdog_cv_.wait_for(lock, config_.watchdog_interval);
    if (stopped_.load()) return;

    // Stalled = work outstanding AND no heartbeat progress for a full
    // stall window *observed by this loop*. An idle dispatcher does not
    // beat — the pending check keeps idleness from reading as a stall.
    const std::uint64_t now_beat = dispatcher_beat_.load();
    if (now_beat != last_beat) {
      last_beat = now_beat;
      stall_since.reset();
      armed = true;
      dispatcher_stalled_.store(false);
      continue;
    }
    if (!armed || pending_requests_.load() == 0) {
      stall_since.reset();
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (!stall_since.has_value()) {
      stall_since = now;
      continue;
    }
    if (now - *stall_since >= config_.stall_timeout) {
      dispatcher_stalled_.store(true);
      restart_dispatcher();
      stall_since.reset();
      armed = false;
      last_beat = dispatcher_beat_.load();
    }
  }
}

void SearchService::restart_dispatcher() {
  // Quarantine every published snapshot first: the wedged thread may be
  // inside a launch holding backend scratch, so the replacement must
  // never serve from the same backend objects. Masters are untouched —
  // pin_snapshot() republishes a fresh clone on the next dispatch.
  std::vector<CloudPtr> clouds;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    clouds = clouds_;
  }
  for (const CloudPtr& cloud : clouds) {
    std::lock_guard<std::mutex> lock(cloud->snapshot_mutex);
    cloud->snapshot.reset();
  }

  std::lock_guard<std::mutex> lock(dispatcher_mutex_);
  // The generation bump is what retires the old thread: it observes
  // dispatcher_stale() at its next check, re-enqueues its in-flight
  // batch, and exits; shutdown() joins it from retired_dispatchers_.
  const std::uint64_t next =
      dispatcher_generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  retired_dispatchers_.push_back(std::move(dispatcher_));
  dispatcher_ = std::thread([this, next] { dispatch_loop(next); });
  dispatcher_restarts_.fetch_add(1);
  dispatcher_stalled_.store(false);
}

ServiceHealth SearchService::health() const {
  ServiceHealth health;
  health.dispatcher_alive = !dispatcher_stalled_.load();
  health.dispatcher_restarts = dispatcher_restarts_.load();
  health.eviction_failures = eviction_failures_.load();
  health.queue_depth = queue_.size();
  health.pending_requests = pending_requests_.load();
  if (config_.stall_timeout.count() > 0 && writers_active_.load() > 0) {
    const std::int64_t held_ns = steady_now_ns() - writer_entered_ns_.load();
    health.writer_stalled =
        held_ns > std::chrono::duration_cast<std::chrono::nanoseconds>(
                      config_.stall_timeout)
                      .count();
  }
  return health;
}

}  // namespace rtnn::service
