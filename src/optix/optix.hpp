// rtnn::ox — an OptiX-7-shaped host API over the rtcore substrate.
//
// The paper programs the RT cores through OptiX (section 2.3, Figure 3):
// build an acceleration structure over custom AABB primitives, then launch
// a pipeline whose programmable stages (Ray Generation, Intersection,
// Any-Hit, Closest-Hit, Miss) are user shaders compiled into one kernel.
// This header reproduces that programming model so the RTNN algorithm code
// reads like its CUDA/OptiX original:
//
//   * ox::Context::build_accel(aabbs)  ~ optixAccelBuild over
//     OPTIX_BUILD_INPUT_TYPE_CUSTOM_PRIMITIVES
//   * ox::launch(ctx, accel, pipeline, width) ~ optixLaunch
//   * Pipeline::raygen(i) is the RG shader: it returns the ray for launch
//     index i (optixGetLaunchIndex + optixTrace).
//   * Pipeline::intersection(ray, prim) is the IS shader; returning
//     TraceAction::kTerminate is the AH shader calling
//     optixTerminateRay().
//   * Optional Pipeline::closest_hit(ray) / Pipeline::miss(ray) run after
//     traversal completes, depending on whether any IS call was made for
//     the ray.
//
// "Single Instruction Multiple Rays": each launch index maps to one ray /
// one SIMT lane; the warp-lockstep execution model is selected through
// LaunchOptions.
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <span>

#include "core/aabb.hpp"
#include "core/error.hpp"
#include "core/vec3.hpp"
#include "rtcore/bvh.hpp"
#include "rtcore/tlas.hpp"
#include "rtcore/traversal.hpp"
#include "rtcore/wide_bvh.hpp"

namespace rtnn::ox {

using rt::ExecutionModel;
using rt::LaunchStats;
using rt::TraceAction;

struct AccelBuildOptions {
  /// Primitives per BVH leaf (1 = RTNN's configuration).
  std::uint32_t leaf_size = 1;
};

/// Options for the two-level (IAS-like) build: a top-level BVH over
/// spatial tiles, each owning its own bottom-level index.
struct TiledAccelOptions {
  /// Primitives per bottom-level leaf (1 = RTNN's configuration).
  std::uint32_t leaf_size = 1;
  /// Defer each tile's bottom-level build to its first routed ray
  /// (build-on-first-route). The deferred cost lands inside the first
  /// launch that reaches the tile.
  bool lazy_build = false;
};

namespace detail {

/// The shared immutable build product behind an Accel handle. The wide
/// mirror is collapsed during build_accel — eagerly, so the cost lands in
/// build_seconds()/time.bvh like the rest of the acceleration-structure
/// work (the cost model's T_build = k1·M stays linear; a lazy collapse
/// would leak into the first launch's timing and bias the k2 estimate).
struct AccelData {
  rt::Bvh bvh;
  rt::WideBvh wide;
  /// The two-level build product (build_tiled_accel). Exactly one of
  /// {bvh+wide, tiled} is populated per accel; a tiled accel's per-tile
  /// copy-on-write nests inside this struct's own COW, so snapshots of a
  /// tiled accel share untouched tiles even across update_tiled() calls.
  rt::TiledBvh tiled;
};

}  // namespace detail

/// Geometry acceleration structure (GAS) over custom AABB primitives.
/// Lifecycle: build_accel() creates it; refit() updates it in place for
/// moved primitives (the OPTIX_BUILD_OPERATION_UPDATE analog); a changed
/// primitive count means a new build_accel(). Copies share the build
/// product; refitting one handle never mutates data another handle sees.
class Accel {
 public:
  Accel() = default;

  const rt::Bvh& bvh() const {
    RTNN_CHECK(data_ != nullptr, "accel not built");
    RTNN_CHECK(!is_tiled(), "a tiled accel has no monolithic binary BVH");
    return data_->bvh;
  }

  /// The flattened 8-wide SoA mirror the independent (wall-clock) path
  /// traverses.
  const rt::WideBvh& wide_bvh() const {
    RTNN_CHECK(data_ != nullptr, "accel not built");
    RTNN_CHECK(!is_tiled(), "a tiled accel has no monolithic wide BVH");
    return data_->wide;
  }

  /// True when this accel is the two-level build product
  /// (build_tiled_accel): launches take the TLAS walk and updates go
  /// through update_tiled().
  bool is_tiled() const { return data_ != nullptr && !data_->tiled.empty(); }

  const rt::TiledBvh& tiled_bvh() const {
    RTNN_CHECK(is_tiled(), "accel is not a tiled build product");
    return data_->tiled;
  }

  std::uint32_t prim_count() const {
    if (data_ == nullptr) return 0;
    if (is_tiled()) return static_cast<std::uint32_t>(data_->tiled.prim_count());
    return data_->bvh.prim_count();
  }
  bool built() const { return data_ != nullptr; }

  /// Root bounds of whichever build product this accel holds (the
  /// scheduler seeds its uniform grid from this).
  const Aabb& scene_bounds() const {
    RTNN_CHECK(data_ != nullptr, "accel not built");
    return is_tiled() ? data_->tiled.scene_bounds() : data_->bvh.scene_bounds();
  }

  /// Refits both representations to moved primitive boxes (same count and
  /// id order as the build): bottom-up bound refresh on the binary tree,
  /// then an in-place SoA lane rewrite on the wide mirror — topology and
  /// collapse reused, no Morton sort, no re-collapse. Cost is charged to
  /// refit_seconds() (the time.refit phase), not build_seconds(). Quality
  /// after cumulative motion is observable via sah_inflation().
  void refit(std::span<const Aabb> prim_aabbs);

  /// Point-cloud fast path: refit over Aabb::cube(points[i], aabb_width)
  /// without materializing the box array (the per-frame RTNN shape).
  void refit(std::span<const Vec3> points, float aabb_width);

  /// Tiled-accel update: absorbs one frame of motion locally. Only
  /// *touched* tiles (bitwise position change) do any work, each deciding
  /// refit-vs-rebuild through `policy` — the per-tile form of the
  /// monolithic refit-or-rebuild choice. Copy-on-write like refit():
  /// snapshots sharing this build product keep the pre-update tiles.
  /// Wall time is charged to refit_seconds().
  rt::TiledUpdateStats update_tiled(std::span<const Vec3> points,
                                    const rt::TileUpdatePolicy& policy);

  /// Build-time of the last build, seconds (the BVH phase of Figure 12).
  double build_seconds() const { return build_seconds_; }

  /// Wall time of the last refit(), seconds (the Refit phase).
  double refit_seconds() const { return refit_seconds_; }

  /// SAH cost relative to the last full build of this topology: 1.0 when
  /// freshly built, growing as refits stretch the boxes. Feeds the
  /// refit-vs-rebuild policy (CostModel::max_sah_inflation). For a tiled
  /// accel this is the *worst* built tile's inflation — the number the
  /// per-tile policy reacted to most recently.
  double sah_inflation() const {
    if (data_ == nullptr) return 1.0;
    return is_tiled() ? data_->tiled.max_sah_inflation() : data_->bvh.sah_inflation();
  }

 private:
  friend class Context;
  std::shared_ptr<const detail::AccelData> data_;
  double build_seconds_ = 0.0;
  double refit_seconds_ = 0.0;
};

struct LaunchOptions {
  ExecutionModel model = ExecutionModel::kIndependent;
  bool parallel = true;
  bool simulate_caches = false;
  bool collect_stats = true;
  /// kIndependent launches traverse the accel's 8-wide SoA mirror (the
  /// wall-clock configuration). Clear to force the binary BVH — parity and
  /// characterization runs. Ignored by kWarpLockstep, which always walks
  /// the binary tree for simulation fidelity.
  bool use_wide_bvh = true;
  /// Wide launches traverse the quantized compressed node layout (80 B vs
  /// 256 B per node) — the production default; candidate sets are
  /// identical by construction. Clear to traverse the FP32 SoA nodes: the
  /// configuration the cost model's default constants were calibrated
  /// against, kept as the opt-out fallback. Ignored unless the launch
  /// takes the wide path.
  bool use_compressed_bvh = true;
};

/// Shader-pipeline concepts. A pipeline must at least provide the RG and
/// IS shaders; AH (termination), CH and Miss are optional, mirroring
/// OptiX where those program groups may be null.
template <typename P>
concept RayGenShader = requires(P p, std::uint32_t i) {
  { p.raygen(i) } -> std::convertible_to<Ray>;
};

template <typename P>
concept IntersectionShader = requires(P p, std::uint32_t ray, std::uint32_t prim) {
  { p.intersection(ray, prim) } -> std::same_as<TraceAction>;
};

template <typename P>
concept HasClosestHit = requires(P p, std::uint32_t ray) { p.closest_hit(ray); };

template <typename P>
concept HasMiss = requires(P p, std::uint32_t ray) { p.miss(ray); };

template <typename P>
concept PipelineShaders = RayGenShader<P> && IntersectionShader<P>;

/// The device context. Owns nothing mutable besides configuration; accels
/// and launches are independent, so one Context can serve concurrent
/// pipelines (RTNN launches one pipeline per query partition).
class Context {
 public:
  Context() = default;

  /// Builds a GAS over custom primitive AABBs. Mirrors optixAccelBuild:
  /// the returned Accel snapshots the primitive boxes.
  Accel build_accel(std::span<const Aabb> prim_aabbs,
                    const AccelBuildOptions& options = {}) const;

  /// Builds the two-level (IAS-like) product: `tile_ids[t]` lists the
  /// point ids of spatial tile t (a partition of the cloud; the caller
  /// supplies Morton-contiguous tiles from the sharding planner), every
  /// point boxed as Aabb::cube(points[i], aabb_width). With lazy_build the
  /// bottom-level indexes defer to their first routed ray and only the
  /// tile bounds + top-level BVH are paid here.
  Accel build_tiled_accel(std::span<const Vec3> points, float aabb_width,
                          std::span<const std::vector<std::uint32_t>> tile_ids,
                          const TiledAccelOptions& options = {}) const;
};

namespace detail {

template <PipelineShaders P>
struct ProgramAdapter {
  P& pipeline;
  // One byte per ray: whether the IS shader ran for it ("found a hit?"
  // branch of Figure 3). Only allocated when CH/Miss shaders exist.
  std::vector<std::uint8_t>* is_invoked;

  TraceAction intersect(std::uint32_t ray_id, std::uint32_t prim_id) {
    if (is_invoked) (*is_invoked)[ray_id] = 1;
    return pipeline.intersection(ray_id, prim_id);
  }
};

}  // namespace detail

/// optixLaunch: runs the RG shader for every index in [0, width), traces
/// the generated rays, and dispatches CH/Miss per ray if the pipeline
/// defines them.
template <PipelineShaders P>
LaunchStats launch(const Accel& accel, P& pipeline, std::uint32_t width,
                   const LaunchOptions& options = {}) {
  RTNN_CHECK(accel.built(), "launch against an unbuilt accel");

  // RG shader: materialize rays (the engine consumes them as a span; the
  // RG stage is a data-parallel kernel of its own).
  std::vector<Ray> rays(width);
  parallel_for(0, width, [&](std::int64_t i) {
    rays[static_cast<std::size_t>(i)] = pipeline.raygen(static_cast<std::uint32_t>(i));
  }, grain::kElementwise);

  constexpr bool kNeedsHitInfo = HasClosestHit<P> || HasMiss<P>;
  std::vector<std::uint8_t> is_invoked;
  if constexpr (kNeedsHitInfo) is_invoked.assign(width, 0);

  detail::ProgramAdapter<P> adapter{pipeline, kNeedsHitInfo ? &is_invoked : nullptr};

  rt::TraceConfig config;
  config.model = options.model;
  config.parallel = options.parallel;
  config.simulate_caches = options.simulate_caches;
  config.collect_stats = options.collect_stats || options.simulate_caches;
  config.use_compressed = options.use_compressed_bvh;
  const bool wide =
      options.model == ExecutionModel::kIndependent && options.use_wide_bvh;
  // A tiled accel has exactly one traversal: the TLAS walk (independent
  // model; use_compressed_bvh still selects each tile's BLAS layout).
  const LaunchStats stats =
      accel.is_tiled()
          ? rt::trace(accel.tiled_bvh(), std::span<const Ray>(rays), adapter, config)
      : wide
          ? rt::trace(accel.wide_bvh(), std::span<const Ray>(rays), adapter, config)
          : rt::trace(accel.bvh(), std::span<const Ray>(rays), adapter, config);

  if constexpr (kNeedsHitInfo) {
    parallel_for(0, width, [&](std::int64_t i) {
      const auto ray = static_cast<std::uint32_t>(i);
      if (is_invoked[ray]) {
        if constexpr (HasClosestHit<P>) pipeline.closest_hit(ray);
      } else {
        if constexpr (HasMiss<P>) pipeline.miss(ray);
      }
    });
  }
  return stats;
}

}  // namespace rtnn::ox
