#include "optix/optix.hpp"

#include "core/timing.hpp"

namespace rtnn::ox {

Accel Context::build_accel(std::span<const Aabb> prim_aabbs,
                           const AccelBuildOptions& options) const {
  Timer timer;
  auto bvh = std::make_shared<rt::Bvh>();
  rt::BvhBuildOptions build_options;
  build_options.leaf_size = options.leaf_size;
  bvh->build(prim_aabbs, build_options);
  Accel accel;
  accel.bvh_ = std::move(bvh);
  accel.build_seconds_ = timer.elapsed();
  return accel;
}

}  // namespace rtnn::ox
