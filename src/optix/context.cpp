#include "optix/optix.hpp"

#include "core/timing.hpp"

namespace rtnn::ox {

Accel Context::build_accel(std::span<const Aabb> prim_aabbs,
                           const AccelBuildOptions& options) const {
  Timer timer;
  auto data = std::make_shared<detail::AccelData>();
  rt::BvhBuildOptions build_options;
  build_options.leaf_size = options.leaf_size;
  data->bvh.build(prim_aabbs, build_options);
  data->wide.build(data->bvh);
  Accel accel;
  accel.data_ = std::move(data);
  accel.build_seconds_ = timer.elapsed();
  return accel;
}

Accel Context::build_tiled_accel(std::span<const Vec3> points, float aabb_width,
                                 std::span<const std::vector<std::uint32_t>> tile_ids,
                                 const TiledAccelOptions& options) const {
  Timer timer;
  auto data = std::make_shared<detail::AccelData>();
  rt::TiledBuildOptions build_options;
  build_options.leaf_size = options.leaf_size;
  build_options.lazy_build = options.lazy_build;
  data->tiled.build(points, aabb_width, tile_ids, build_options);
  Accel accel;
  accel.data_ = std::move(data);
  accel.build_seconds_ = timer.elapsed();
  return accel;
}

namespace {

/// Copy-on-write handle for a refit: the build product may be shared with
/// other Accel handles (they are snapshots, like real GASes); mutate in
/// place only when the caller is the sole owner.
std::shared_ptr<detail::AccelData> writable(
    const std::shared_ptr<const detail::AccelData>& data) {
  if (data.use_count() == 1) {
    return std::const_pointer_cast<detail::AccelData>(data);
  }
  return std::make_shared<detail::AccelData>(*data);
}

}  // namespace

void Accel::refit(std::span<const Aabb> prim_aabbs) {
  RTNN_CHECK(built(), "refit of an unbuilt accel");
  RTNN_CHECK(!is_tiled(), "tiled accels update through update_tiled()");
  Timer timer;
  std::shared_ptr<detail::AccelData> data = writable(data_);
  data->bvh.refit(prim_aabbs);
  data->wide.refit_from(data->bvh);
  data_ = std::move(data);
  refit_seconds_ = timer.elapsed();
}

void Accel::refit(std::span<const Vec3> points, float aabb_width) {
  RTNN_CHECK(built(), "refit of an unbuilt accel");
  RTNN_CHECK(!is_tiled(), "tiled accels update through update_tiled()");
  Timer timer;
  std::shared_ptr<detail::AccelData> data = writable(data_);
  data->bvh.refit(points, aabb_width);
  data->wide.refit_from(data->bvh);
  data_ = std::move(data);
  refit_seconds_ = timer.elapsed();
}

rt::TiledUpdateStats Accel::update_tiled(std::span<const Vec3> points,
                                         const rt::TileUpdatePolicy& policy) {
  RTNN_CHECK(is_tiled(), "update_tiled on a non-tiled accel");
  Timer timer;
  std::shared_ptr<detail::AccelData> data = writable(data_);
  // The outer COW clones the tile-pointer vector only; untouched tiles
  // stay shared with the snapshot through their shared_ptrs, and
  // TiledBvh::update replaces just the touched ones.
  const rt::TiledUpdateStats stats = data->tiled.update(points, policy);
  data_ = std::move(data);
  refit_seconds_ = timer.elapsed();
  return stats;
}

}  // namespace rtnn::ox
