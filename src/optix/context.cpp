#include "optix/optix.hpp"

#include "core/timing.hpp"

namespace rtnn::ox {

Accel Context::build_accel(std::span<const Aabb> prim_aabbs,
                           const AccelBuildOptions& options) const {
  Timer timer;
  auto data = std::make_shared<detail::AccelData>();
  rt::BvhBuildOptions build_options;
  build_options.leaf_size = options.leaf_size;
  data->bvh.build(prim_aabbs, build_options);
  data->wide.build(data->bvh);
  Accel accel;
  accel.data_ = std::move(data);
  accel.build_seconds_ = timer.elapsed();
  return accel;
}

}  // namespace rtnn::ox
