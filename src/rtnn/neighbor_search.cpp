#include "rtnn/neighbor_search.hpp"

#include <cmath>
#include <numeric>

#include "core/error.hpp"
#include "core/flat_knn.hpp"
#include "core/log.hpp"
#include "core/parallel.hpp"
#include "rtnn/partitioner.hpp"
#include "rtnn/pipelines.hpp"
#include "rtnn/scheduler.hpp"

namespace rtnn {

void NeighborSearch::set_points(std::span<const Vec3> points) {
  points_.assign(points.begin(), points.end());
  grid_valid_ = false;
}

ox::Accel NeighborSearch::build_accel_width(float aabb_width, TimeBreakdown& time) const {
  // AABB generation is part of the build (Listing 1, buildBVH).
  Timer timer;
  std::vector<Aabb> aabbs(points_.size());
  parallel_for(0, static_cast<std::int64_t>(points_.size()), [&](std::int64_t i) {
    aabbs[static_cast<std::size_t>(i)] =
        Aabb::cube(points_[static_cast<std::size_t>(i)], aabb_width);
  });
  const ox::Context ctx;
  ox::Accel accel = ctx.build_accel(aabbs);
  time.bvh += timer.elapsed();
  return accel;
}

PartitionSet NeighborSearch::partition(std::span<const Vec3> queries,
                                       std::span<const std::uint32_t> order,
                                       const SearchParams& params) const {
  if (!grid_valid_) {
    // Cap the grid at ~128 cells per point: far finer cells cannot sharpen
    // the megacell estimate and the SAT would dominate small datasets.
    const std::uint64_t useful =
        std::max<std::uint64_t>(4096, 128 * static_cast<std::uint64_t>(points_.size()));
    grid_.build(points_, std::min(params.max_grid_cells, useful));
    grid_valid_ = true;
  }
  return partition_queries(grid_, queries, order, params);
}

void NeighborSearch::run_launch(const ox::Accel& accel, const LaunchPlan::Unit& unit,
                                std::span<const Vec3> queries, const SearchParams& params,
                                NeighborResult* range_result, FlatKnnHeaps* knn_heaps,
                                Report& report) const {
  Timer timer;
  ox::LaunchOptions options;
  options.model = params.simt_launches ? ox::ExecutionModel::kWarpLockstep
                                       : ox::ExecutionModel::kIndependent;
  const auto width = static_cast<std::uint32_t>(unit.query_ids.size());
  if (params.mode == SearchMode::kRange) {
    const bool skip_test = unit.skip_sphere_test || params.elide_sphere_test;
    pipelines::RangePipeline pipeline(points_, queries, unit.query_ids, params.radius,
                                      params.k, skip_test, *range_result);
    report.stats += ox::launch(accel, pipeline, width, options);
  } else {
    struct FlatKnnAdapter {
      std::span<const Vec3> points;
      std::span<const Vec3> queries;
      std::span<const std::uint32_t> query_ids;
      float r2;
      FlatKnnHeaps* heaps;
      Ray raygen(std::uint32_t i) const { return Ray::short_ray(queries[query_ids[i]]); }
      ox::TraceAction intersection(std::uint32_t i, std::uint32_t prim) {
        const std::uint32_t query = query_ids[i];
        const float d2 = distance2(points[prim], queries[query]);
        if (d2 <= r2 && d2 < heaps->worst_dist2(query)) heaps->push(query, d2, prim);
        return ox::TraceAction::kContinue;
      }
    };
    FlatKnnAdapter pipeline{points_, queries, unit.query_ids,
                            params.radius * params.radius, knn_heaps};
    report.stats += ox::launch(accel, pipeline, width, options);
  }
  report.time.search += timer.elapsed();
}

NeighborResult NeighborSearch::search(std::span<const Vec3> queries,
                                      const SearchParams& params, Report* report_out) {
  RTNN_CHECK(!points_.empty(), "set_points() before search()");
  RTNN_CHECK(params.radius > 0.0f, "radius must be positive");
  RTNN_CHECK(params.k > 0, "K must be positive");
  Report report;

  // Data phase: queries land in device memory.
  std::vector<Vec3> dev_queries;
  {
    Timer timer;
    dev_queries.assign(queries.begin(), queries.end());
    report.time.data += timer.elapsed();
  }

  // Global BVH (AABB width 2r): needed by the naive path and by the
  // scheduling pre-pass.
  RTNN_CHECK(params.aabb_scale > 0.0f && params.aabb_scale <= 1.0f,
             "aabb_scale must be in (0, 1]");
  RTNN_CHECK(!params.elide_sphere_test || params.mode == SearchMode::kRange,
             "elide_sphere_test applies to range search only");
  const float base_width = 2.0f * params.radius * params.aabb_scale;
  ox::Accel global_accel;
  const bool need_global = params.opts.scheduling || !params.opts.partitioning;
  if (need_global) global_accel = build_accel_width(base_width, report.time);

  // --- Query scheduling (section 4) ---
  std::vector<std::uint32_t> order(dev_queries.size());
  std::iota(order.begin(), order.end(), 0u);
  if (params.opts.scheduling) {
    ScheduleResult sched = schedule_queries(global_accel, points_, dev_queries,
                                            params.simt_launches);
    order = std::move(sched.order);
    report.first_hit_stats = sched.first_hit_stats;
    report.time.first_search += sched.first_hit_seconds;
    report.time.opt += sched.sort_seconds;
  }

  // --- Query partitioning + bundling (section 5) ---
  LaunchPlan launch_plan;
  if (params.opts.partitioning) {
    Timer opt_timer;
    const PartitionSet parts = partition(dev_queries, order, params);
    report.time.opt += parts.seconds;
    report.num_partitions = static_cast<std::uint32_t>(parts.partitions.size());

    BundlePlan plan;
    if (params.opts.bundling) {
      // Paper: absent offline profiling, fall back to Listing 3.
      plan = plan_bundles(parts, points_.size(), params, cost_model_);
    } else {
      plan = unbundled_plan(parts, params);
    }
    report.num_bundles = static_cast<std::uint32_t>(plan.bundles.size());
    report.predicted_bundle_cost = plan.predicted_seconds;

    for (const Bundle& bundle : plan.bundles) {
      LaunchPlan::Unit unit;
      unit.aabb_width = bundle.aabb_width;
      unit.skip_sphere_test = bundle.skip_sphere_test;
      std::size_t total = 0;
      for (const std::uint32_t pi : bundle.partition_indices) {
        total += parts.partitions[pi].query_ids.size();
      }
      unit.query_ids.reserve(total);
      for (const std::uint32_t pi : bundle.partition_indices) {
        const auto& ids = parts.partitions[pi].query_ids;
        unit.query_ids.insert(unit.query_ids.end(), ids.begin(), ids.end());
      }
      launch_plan.units.push_back(std::move(unit));
    }
    report.time.opt += opt_timer.elapsed() - parts.seconds;  // bundling/bucketing time
  } else {
    LaunchPlan::Unit unit;
    unit.aabb_width = base_width;
    unit.skip_sphere_test = false;
    unit.query_ids = std::move(order);
    launch_plan.units.push_back(std::move(unit));
  }

  // --- Launches ---
  NeighborResult range_result;
  std::unique_ptr<FlatKnnHeaps> knn_heaps;
  if (params.mode == SearchMode::kRange) {
    range_result = NeighborResult(dev_queries.size(), params.k, params.store_indices);
  } else {
    knn_heaps = std::make_unique<FlatKnnHeaps>(dev_queries.size(), params.k);
  }

  for (const auto& unit : launch_plan.units) {
    if (unit.query_ids.empty()) continue;
    // Approximation: shrink partition widths by aabb_scale too.
    const float width = unit.aabb_width * params.aabb_scale;
    // Reuse the global base-width BVH when a launch unit needs exactly it
    // (the unpartitioned path, and the sparse-fallback bundle).
    const bool reuse_global =
        global_accel.built() &&
        std::abs(width - base_width) <= 1e-6f * params.radius;
    const ox::Accel accel =
        reuse_global ? global_accel : build_accel_width(width, report.time);
    run_launch(accel, unit, dev_queries, params, &range_result, knn_heaps.get(), report);
  }

  NeighborResult result = (params.mode == SearchMode::kRange)
                              ? std::move(range_result)
                              : knn_heaps->extract(params.store_indices);
  if (report_out) *report_out = report;
  return result;
}

NeighborResult NeighborSearch::search_with_plan(std::span<const Vec3> queries,
                                                const SearchParams& params,
                                                const PartitionSet& partitions,
                                                const BundlePlan& plan, Report* report_out) {
  RTNN_CHECK(!points_.empty(), "set_points() before search()");
  Report report;
  report.num_partitions = static_cast<std::uint32_t>(partitions.partitions.size());
  report.num_bundles = static_cast<std::uint32_t>(plan.bundles.size());

  NeighborResult range_result;
  std::unique_ptr<FlatKnnHeaps> knn_heaps;
  if (params.mode == SearchMode::kRange) {
    range_result = NeighborResult(queries.size(), params.k, params.store_indices);
  } else {
    knn_heaps = std::make_unique<FlatKnnHeaps>(queries.size(), params.k);
  }

  for (const Bundle& bundle : plan.bundles) {
    LaunchPlan::Unit unit;
    unit.aabb_width = bundle.aabb_width;
    unit.skip_sphere_test = bundle.skip_sphere_test;
    for (const std::uint32_t pi : bundle.partition_indices) {
      const auto& ids = partitions.partitions[pi].query_ids;
      unit.query_ids.insert(unit.query_ids.end(), ids.begin(), ids.end());
    }
    if (unit.query_ids.empty()) continue;
    const ox::Accel accel = build_accel_width(unit.aabb_width, report.time);
    run_launch(accel, unit, queries, params, &range_result, knn_heaps.get(), report);
  }

  NeighborResult result = (params.mode == SearchMode::kRange)
                              ? std::move(range_result)
                              : knn_heaps->extract(params.store_indices);
  if (report_out) *report_out = report;
  return result;
}

NeighborResult search(std::span<const Vec3> points, std::span<const Vec3> queries,
                      const SearchParams& params, NeighborSearch::Report* report) {
  NeighborSearch ns;
  ns.set_points(points);
  return ns.search(queries, params, report);
}

}  // namespace rtnn
