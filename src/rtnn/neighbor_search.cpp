#include "rtnn/neighbor_search.hpp"

#include <numeric>

#include "core/error.hpp"
#include "core/flat_knn.hpp"
#include "rtnn/partitioner.hpp"
#include "rtnn/stages.hpp"

namespace rtnn {

NeighborSearch::Report& NeighborSearch::Report::operator+=(const Report& o) {
  time += o.time;
  stats += o.stats;
  first_hit_stats += o.first_hit_stats;
  num_partitions += o.num_partitions;
  num_bundles += o.num_bundles;
  predicted_bundle_cost += o.predicted_bundle_cost;
  accel_refits += o.accel_refits;
  accel_rebuilds += o.accel_rebuilds;
  sah_inflation = std::max(sah_inflation, o.sah_inflation);
  queries_deduped += o.queries_deduped;
  batch_bins += o.batch_bins;
  shard_retries += o.shard_retries;
  shards_dropped += o.shards_dropped;
  tile_count = std::max(tile_count, o.tile_count);
  tiles_touched += o.tiles_touched;
  tile_refits += o.tile_refits;
  tile_rebuilds += o.tile_rebuilds;
  tile_lazy_builds += o.tile_lazy_builds;
  index_node_bytes = std::max(index_node_bytes, o.index_node_bytes);
  index_total_bytes = std::max(index_total_bytes, o.index_total_bytes);
  return *this;
}

void NeighborSearch::set_points(std::span<const Vec3> points) {
  points_.assign(points.begin(), points.end());
  grid_valid_ = false;
  index_cache_ = IndexCache{};  // a new upload invalidates the lifecycle
}

void NeighborSearch::update_points(std::span<const Vec3> points) {
  RTNN_CHECK(!points_.empty(), "set_points() before update_points()");
  RTNN_CHECK(points.size() == points_.size(),
             "update_points() requires the same point count; a resized cloud "
             "is a new set_points() upload");
  std::copy(points.begin(), points.end(), points_.begin());
  grid_valid_ = false;          // megacell grid tracks positions
  index_cache_.moved = true;    // resolved refit-vs-rebuild at next search
  index_persistence_ = true;
}

void NeighborSearch::set_index_persistence(bool on) {
  index_persistence_ = on;
  if (!on) index_cache_ = IndexCache{};
}

void NeighborSearch::set_tiling(const TileOptions& options) {
  tiling_ = options;
  // The decomposition is part of the build product: a cached monolithic
  // accel cannot serve a tiled request (or vice versa), so restart the
  // lifecycle like a new upload would.
  index_cache_ = IndexCache{};
}

PartitionSet NeighborSearch::partition(std::span<const Vec3> queries,
                                       std::span<const std::uint32_t> order,
                                       const SearchParams& params) const {
  ensure_grid_built(points_, params, grid_, grid_valid_);
  return partition_queries(grid_, queries, order, params);
}

void NeighborSearch::init_context(SearchContext& ctx, std::span<const Vec3> queries,
                                  const SearchParams& params) {
  RTNN_CHECK(!points_.empty(), "set_points() before search()");
  RTNN_CHECK(params.radius > 0.0f, "radius must be positive");
  RTNN_CHECK(params.k > 0, "K must be positive");
  RTNN_CHECK(params.aabb_scale > 0.0f && params.aabb_scale <= 1.0f,
             "aabb_scale must be in (0, 1]");
  RTNN_CHECK(!params.elide_sphere_test || params.mode == SearchMode::kRange,
             "elide_sphere_test applies to range search only");
  RTNN_CHECK(!(tiling_.enabled() && params.simt_launches),
             "tiled indexes serve independent launches only; warp-lockstep "
             "characterization walks the monolithic binary BVH");

  ctx.points = points_;
  ctx.params = params;
  ctx.tiling = tiling_;
  ctx.cost_model = &cost_model_;
  ctx.grid = &grid_;
  ctx.grid_valid = &grid_valid_;
  ctx.index_cache = index_persistence_ ? &index_cache_ : nullptr;
  ctx.base_width = 2.0f * params.radius * params.aabb_scale;

  // Data phase: queries land in device memory.
  Timer timer;
  ctx.queries.assign(queries.begin(), queries.end());
  ctx.order.resize(ctx.queries.size());
  std::iota(ctx.order.begin(), ctx.order.end(), 0u);
  ctx.report.time.data += timer.elapsed();
}

NeighborResult NeighborSearch::finish_context(SearchContext& ctx, Report* report_out) {
  NeighborResult result = (ctx.params.mode == SearchMode::kRange)
                              ? std::move(ctx.range_result)
                              : ctx.knn_heaps->extract(ctx.params.store_indices);
  if (report_out) *report_out = ctx.report;
  return result;
}

NeighborResult NeighborSearch::run_stages(std::span<const Vec3> queries,
                                          const SearchParams& params,
                                          std::span<const std::unique_ptr<SearchStage>> stages,
                                          Report* report_out) {
  SearchContext ctx;
  init_context(ctx, queries, params);
  for (const auto& stage : stages) stage->run(ctx);
  RTNN_CHECK(ctx.range_result.num_queries() == ctx.queries.size() || ctx.knn_heaps,
             "pipeline must end in a LaunchStage");
  return finish_context(ctx, report_out);
}

NeighborResult NeighborSearch::search(std::span<const Vec3> queries,
                                      const SearchParams& params, Report* report_out) {
  SearchParams effective = params;
  if (tiling_.enabled() && points_.size() > tiling_.tile_threshold) {
    // Tiling replaces megacell decomposition: both split the same launch
    // spatially, and partition-local accel builds would discard the tiled
    // index's per-tile reuse. Scheduling (query ordering) still composes.
    effective.opts.partitioning = false;
    effective.opts.bundling = false;
  }
  const auto stages = make_pipeline(effective.opts);
  return run_stages(queries, effective, stages, report_out);
}

std::vector<NeighborResult> NeighborSearch::search_batched(
    std::span<const Vec3> queries, std::span<const BatchSlice> slices,
    const SearchParams& params, Report* report_out) {
  for (const BatchSlice& slice : slices) {
    RTNN_CHECK(slice.first + slice.count <= queries.size(),
               "batch slice exceeds the merged query array");
  }
  const NeighborResult batch = search(queries, params, report_out);
  return split_batch_result(batch, slices);
}

NeighborResult NeighborSearch::search_with_plan(std::span<const Vec3> queries,
                                                const SearchParams& params,
                                                const PartitionSet& partitions,
                                                const BundlePlan& plan, Report* report_out) {
  SearchContext ctx;
  init_context(ctx, queries, params);
  // Inject the caller's partitioning + plan; its widths are final.
  ctx.partitions = partitions;
  ctx.partitioned = true;
  ctx.plan = plan;
  ctx.planned = true;
  ctx.scale_launch_widths = false;
  ctx.report.num_partitions = static_cast<std::uint32_t>(partitions.partitions.size());
  ctx.report.num_bundles = static_cast<std::uint32_t>(plan.bundles.size());
  LaunchStage().run(ctx);
  return finish_context(ctx, report_out);
}

NeighborResult search(std::span<const Vec3> points, std::span<const Vec3> queries,
                      const SearchParams& params, NeighborSearch::Report* report) {
  NeighborSearch ns;
  ns.set_points(points);
  return ns.search(queries, params, report);
}

}  // namespace rtnn
