// Analytic cost model and partition bundling (paper section 5.2 + Supp. A/C).
//
// Every partition pays one BVH build; bundling partitions saves builds but
// inflates the merged partition's AABB (and therefore its search work).
// The model:
//
//   T = Σ_i ( T_build^i + T_search^i )            (eq. 2)
//   T_build  = k1 · M                             (eq. 3; M = #AABBs, linear — Fig. 15)
//   T_search = k2 · N · ρ · S³        (KNN, eq. 4; N·ρ·S³ ≈ #IS calls)
//   T_search = k3 · N · K             (range, Supp. A; k3 is cheaper when
//                                      the sphere test is elided)
//
// Only the *ratios* of k1:k2:k3 matter for choosing a bundling; they are
// obtained by offline profiling (calibrate()) — "absent the offline
// profiling, we fall back to the default strategy" (no bundling), which
// NeighborSearch honors when given an uncalibrated model.
//
// The optimal bundling (Supp. C theorem): with partitions sorted by query
// count, the best plan with M_o bundles keeps the (M_o − 1) most-populous
// partitions separate and merges the rest into one; scanning M_o = 1..M
// finds the optimum in linear time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/vec3.hpp"
#include "rtnn/partitioner.hpp"
#include "rtnn/types.hpp"

namespace rtnn {

struct CostModel {
  // Per-event costs in seconds. Defaults measured on the reference CPU
  // substrate by bench/micro_costmodel. Substrate note: on the real RT
  // hardware the ratio k1:k2 is ~1:15000 (builds are cheap, IS calls run
  // on the SMs); on the CPU substrate builds are *expensive* relative to
  // IS calls, so bundling correctly merges more aggressively here.
  double k1 = 1.5e-7;       // BVH build per AABB
  double k2 = 6.0e-9;       // KNN IS call (sphere test + heap)
  double k3_slow = 3.0e-8;  // range IS call with sphere test
  double k3_fast = 6.0e-9;  // range IS call, sphere test elided
  bool calibrated = false;

  /// Offline profiling (paper: "obtained offline through profiling the BVH
  /// construction time per AABB and the IS shader execution time per
  /// call"). `sample_points` should be a few hundred thousand points drawn
  /// from the target distribution.
  static CostModel calibrate(std::span<const Vec3> sample_points, float radius,
                             std::uint32_t k);
};

/// One launch unit after bundling: a set of partitions sharing one BVH.
struct Bundle {
  std::vector<std::uint32_t> partition_indices;
  float aabb_width = 0.0f;      // max over members
  bool skip_sphere_test = false;  // recomputed for the merged width
  std::uint64_t query_count = 0;
};

struct BundlePlan {
  std::vector<Bundle> bundles;
  double predicted_seconds = 0.0;
  std::uint32_t m_opt = 0;  // number of bundles chosen
};

/// The default strategy (Listing 3): one bundle per partition.
BundlePlan unbundled_plan(const PartitionSet& set, const SearchParams& params);

/// Cost-model-optimal bundling via the Supp. C linear scan.
BundlePlan plan_bundles(const PartitionSet& set, std::size_t n_points,
                        const SearchParams& params, const CostModel& model);

/// Predicted cost of an arbitrary plan under the model (exposed for the
/// Oracle ablation and for tests of the theorem).
double predict_cost(const BundlePlan& plan, const PartitionSet& set, std::size_t n_points,
                    const SearchParams& params, const CostModel& model);

}  // namespace rtnn
