// Analytic cost model and partition bundling (paper section 5.2 + Supp. A/C).
//
// Every partition pays one BVH build; bundling partitions saves builds but
// inflates the merged partition's AABB (and therefore its search work).
// The model:
//
//   T = Σ_i ( T_build^i + T_search^i )            (eq. 2)
//   T_build  = k1 · M                             (eq. 3; M = #AABBs, linear — Fig. 15)
//   T_search = k2 · N · ρ · S³        (KNN, eq. 4; N·ρ·S³ ≈ #IS calls)
//   T_search = k3 · N · K             (range, Supp. A; k3 is cheaper when
//                                      the sphere test is elided)
//
// Only the *ratios* of k1:k2:k3 matter for choosing a bundling; they are
// obtained by offline profiling (calibrate()) — "absent the offline
// profiling, we fall back to the default strategy" (no bundling), which
// NeighborSearch honors when given an uncalibrated model.
//
// The optimal bundling (Supp. C theorem): with partitions sorted by query
// count, the best plan with M_o bundles keeps the (M_o − 1) most-populous
// partitions separate and merges the rest into one; scanning M_o = 1..M
// finds the optimum in linear time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/vec3.hpp"
#include "rtnn/partitioner.hpp"
#include "rtnn/types.hpp"

namespace rtnn {

struct CostModel {
  // Per-event costs in seconds. Defaults measured on the reference CPU
  // substrate by bench/micro_costmodel. Substrate note: on the real RT
  // hardware the ratio k1:k2 is ~1:15000 (builds are cheap, IS calls run
  // on the SMs); on the CPU substrate builds are *expensive* relative to
  // IS calls, so bundling correctly merges more aggressively here.
  //
  // Layout note: these default constants were fit against the FP32 8-wide
  // SoA traversal path (SearchParams::use_compressed_bvh = false
  // reproduces that configuration). calibrate() measures whatever path
  // its launches take — with default options that is now the compressed
  // layout — so a freshly calibrated model is always self-consistent; the
  // defaults merely carry the older layout's (slightly more pessimistic)
  // per-IS-call timings, of which only the k1:k2:k3 ratios matter anyway.
  double k1 = 1.5e-7;       // BVH build per AABB
  double k2 = 6.0e-9;       // KNN IS call (sphere test + heap)
  double k3_slow = 3.0e-8;  // range IS call with sphere test
  double k3_fast = 6.0e-9;  // range IS call, sphere test elided
  /// Accel refit per AABB (leaf refresh + level sweep + SoA lane rewrite).
  /// Well under k1 on every substrate — refitting skips the Morton sort,
  /// the tree build and the wide collapse — which is what makes the
  /// dynamic-cloud lifecycle pay off.
  double k_refit = 3.0e-8;
  /// Quality guard of the refit-vs-rebuild policy: once cumulative motion
  /// has inflated the refitted tree's SAH cost past this factor of its
  /// fresh build, predicted search savings are judged forfeited and the
  /// next frame rebuilds. Matches the ~1.3-1.5x degradation point where
  /// measured traversal work starts tracking the SAH estimate upward.
  double max_sah_inflation = 1.4;
  bool calibrated = false;

  /// Offline profiling (paper: "obtained offline through profiling the BVH
  /// construction time per AABB and the IS shader execution time per
  /// call"). `sample_points` should be a few hundred thousand points drawn
  /// from the target distribution.
  static CostModel calibrate(std::span<const Vec3> sample_points, float radius,
                             std::uint32_t k);
};

/// One launch unit after bundling: a set of partitions sharing one BVH.
struct Bundle {
  std::vector<std::uint32_t> partition_indices;
  float aabb_width = 0.0f;      // max over members
  bool skip_sphere_test = false;  // recomputed for the merged width
  std::uint64_t query_count = 0;
};

struct BundlePlan {
  std::vector<Bundle> bundles;
  double predicted_seconds = 0.0;
  std::uint32_t m_opt = 0;  // number of bundles chosen
};

/// The two ways a persistent index can absorb a frame of motion.
enum class IndexUpdate : std::uint8_t {
  kRefit,    // bounds refreshed in place, topology reused
  kRebuild,  // from-scratch build (Morton sort + tree + wide collapse)
};

/// Per-frame index decision for a dynamic point cloud: refit when it is
/// both cheaper (k_refit < k1; per-AABB costs make the comparison
/// size-independent) and the observed quality degradation of the current
/// index is within max_sah_inflation; otherwise rebuild. The inflation is
/// *measured* on the live tree (Bvh::sah_inflation), not predicted — the
/// policy reacts one frame after quality collapses, which bounds the
/// damage to a single degraded search.
IndexUpdate choose_index_update(const CostModel& model, double sah_inflation);

/// The default strategy (Listing 3): one bundle per partition.
BundlePlan unbundled_plan(const PartitionSet& set, const SearchParams& params);

/// Cost-model-optimal bundling via the Supp. C linear scan.
BundlePlan plan_bundles(const PartitionSet& set, std::size_t n_points,
                        const SearchParams& params, const CostModel& model);

/// Predicted cost of an arbitrary plan under the model (exposed for the
/// Oracle ablation and for tests of the theorem).
double predict_cost(const BundlePlan& plan, const PartitionSet& set, std::size_t n_points,
                    const SearchParams& params, const CostModel& model);

}  // namespace rtnn
