// The coherence-aware batch optimizer of the serving path.
//
// The paper's main lever is query reorganization: neighbor searches get
// fast when spatially coherent queries traverse the BVH together. Serving
// traffic arrives as many small requests whose cross-request coherence a
// naive arrival-order concatenation destroys — and real workloads (lidar
// frames, SPH steps) are full of coincident queries repeated across
// concurrent requests. optimize_batch() runs the reorganization pipeline
// over the *merged* cross-request query set, between the dispatcher and
// the per-bin launches:
//
//   bin      Requests split into sub-batches homogeneous in the
//            answer-shaping params (SearchParams::batch_key(): mode, r, K,
//            store_indices, approximation knobs) — one launch per bin, so
//            requests that differ only in pipeline-shaping fields no
//            longer force separate dispatch groups.
//   reorder  Each bin's merged rows are sorted by the Morton code of
//            their grid cell (cell width = dedup_cell_scale · r), so
//            spatially adjacent queries from *different* requests become
//            adjacent in the launch (the paper's section-4 idea, applied
//            across requests; no first-hit cast — the serving path's
//            requests are too small to amortize one).
//   dedup    Within a cell, exactly coincident rows elect one
//            representative; only the representatives are searched, and
//            the representative's result row fans out to its duplicates
//            at scatter time. The exactness guard is bitwise position
//            equality — the one case where the representative's result is
//            provably the duplicate's result, for range (byte-identical)
//            and KNN (the pipeline's tie-breaking is deterministic)
//            alike. Any row that is merely *near* a representative falls
//            back to exact per-query search (it becomes its own
//            representative); no approximate transfer ever happens.
//
// The optimizer is pure geometry preprocessing: it never touches an index
// or a backend, so any engine::SearchBackend can serve its bins. Results
// scatter back through the permutation-aware split_batch_result overload
// — per-request result slots are untouched by reorder and dedup alike.
//
// Cost accounting: BatchPlan::seconds is the optimizer's wall time; the
// serving layer charges it to Report::time.opt, and the per-bin counters
// (queries_deduped, batch_bins) land in the bin reports so the reorder
// cost vs traversal win stays attributable (tools/bench_compare.py
// breaks serving deltas down per stage).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/neighbor_result.hpp"
#include "core/vec3.hpp"
#include "rtnn/neighbor_search.hpp"
#include "rtnn/types.hpp"

namespace rtnn {

/// One request as the optimizer sees it: the caller keeps the query rows
/// alive until the plan's bins are scattered.
struct BatchRequest {
  std::span<const Vec3> queries;
  SearchParams params;
};

struct BatchOptimizerOptions {
  /// Morton-sort each bin's merged rows (off = arrival order kept).
  bool reorder = true;
  /// Coincident-row dedup (off = every row is its own representative).
  bool dedup = true;
  /// Cell width for the reorder/dedup grid, as a multiple of the bin's
  /// search radius. Affects sort granularity and bucketing cost only —
  /// never results: dedup requires bitwise equality inside a cell.
  float dedup_cell_scale = 1.0f;
  /// Per-bin cap on merged rows: a request that would push an open bin
  /// past the cap closes it and opens a fresh bin for the same key
  /// (bounds launch and scratch size). 0 = unbounded — no bin ever
  /// closes early; the dispatcher's tick caps already bound the merged
  /// set. Same contract as CloudConfig::max_bin_queries (service.hpp).
  std::size_t max_bin_queries = 0;
};

/// One homogeneous launch bin: search `queries` under `params`, then
/// scatter() the result back to the member requests.
struct BatchBin {
  /// The first member request's params. Key fields are shared by every
  /// member (that is what made them one bin); pipeline-shaping fields are
  /// the first member's.
  SearchParams params;
  /// Representative queries, in optimized (Morton) order. This is what
  /// the backend searches: size == merged_queries - deduped.
  std::vector<Vec3> queries;
  /// Merged bin row -> representative result row (the inverse permutation
  /// of the reorder, collapsed onto representatives by dedup).
  std::vector<std::uint32_t> rep_rows;
  /// Member request r's rows are merged rows [slices[r].first,
  /// slices[r].first + slices[r].count) — pre-optimization addressing.
  std::vector<BatchSlice> slices;
  /// Member identity: slices[r] holds the rows of requests[request_ids[r]]
  /// of the optimize_batch() input.
  std::vector<std::size_t> request_ids;
  std::size_t merged_queries = 0;  // rows before dedup
  std::size_t deduped = 0;         // rows aliased to a representative

  /// Fans the bin's search result out to one NeighborResult per member
  /// request (ordered as request_ids).
  std::vector<NeighborResult> scatter(const NeighborResult& rep_result) const {
    return split_batch_result(rep_result, slices, rep_rows);
  }
};

struct BatchPlan {
  std::vector<BatchBin> bins;      // in order of each key's first arrival
  std::size_t deduped = 0;         // total rows aliased across bins
  double seconds = 0.0;            // optimizer wall time (charge to time.opt)
};

/// Runs the bin → reorder → dedup pipeline over a tick's requests.
/// Requests with equal batch_key() land in the same bin (subject to
/// max_bin_queries); every bin's scatter() output is exactly what a
/// per-request search would have returned. Zero-row requests are legal
/// and produce empty per-request results.
BatchPlan optimize_batch(std::span<const BatchRequest> requests,
                         const BatchOptimizerOptions& options = {});

}  // namespace rtnn
