// Spatially-ordered query scheduling (paper section 4).
//
// The naive query-to-ray mapping follows input order, so adjacent rays in
// a warp can be spatially distant (incoherent). RTNN instead:
//   1. casts a truncated ray per query that terminates at its *first*
//     intersected leaf AABB ("initial search with K = 1", Listing 2) —
//     any enclosing AABB is an adequate spatial proxy for the query;
//   2. sorts queries by the Morton (Z-order) code of the first-hit AABB's
//     center, so queries sharing (or neighboring) an enclosing AABB get
//     adjacent ray ids (Figure 9).
// Queries that hit no AABB at all fall back to the Morton code of their
// own position, which preserves spatial grouping for them too.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/vec3.hpp"
#include "optix/optix.hpp"
#include "rtcore/launch_stats.hpp"

namespace rtnn {

struct ScheduleResult {
  /// Query ids in scheduled (coherent) order — the query-to-ray mapping.
  std::vector<std::uint32_t> order;
  /// Stats of the first-hit launch (the FS phase of Figure 12).
  rt::LaunchStats first_hit_stats;
  /// Wall time of the first-hit launch (seconds).
  double first_hit_seconds = 0.0;
  /// Wall time of key generation + sort (part of the Opt phase).
  double sort_seconds = 0.0;
};

/// Computes the spatially-ordered query-to-ray mapping against `accel`
/// (the BVH whose leaf AABBs supply the spatial hints; `points` are the
/// AABB centers). `use_compressed` selects the quantized wide-BVH layout
/// for the first-hit launch (independent model only; the SIMT launch
/// always walks the binary tree).
ScheduleResult schedule_queries(const ox::Accel& accel, std::span<const Vec3> points,
                                std::span<const Vec3> queries,
                                bool simt_launch = false,
                                bool use_compressed = true);

}  // namespace rtnn
