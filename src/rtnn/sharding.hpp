// Spatial sharding: split one large cloud into Morton-contiguous shards,
// route queries to the shards they can touch, and gather per-shard
// results back into one exact answer.
//
// This is the geometry layer under the serving registry's sharded clouds
// (src/engine/sharded_backend.hpp drives it through the SearchBackend
// contract). The split reuses the same Morton machinery the scheduler and
// LBVH already rely on (core/morton.hpp + core/sort.hpp): points sort by
// 63-bit Morton code and cut into contiguous near-equal runs, so each
// shard is a compact spatial region with a tight AABB.
//
// Exactness argument, per query q with radius r and cap K:
//   * Routing sends q to every shard whose tight AABB lies within r of q
//     (the expanded-AABB test). A point can only be a neighbor of q if
//     its shard's AABB is within r, so no candidate is ever missed; KNN
//     is bounded by the same radius (the paper's bounded interface), so
//     the same route is conservative for both modes.
//   * Range gather: shards partition the points, so per-shard result
//     sets are disjoint. Their union, truncated at K, has
//     min(K, sum of per-shard counts) entries — exactly the unsharded
//     min(K, true count), because a shard only truncates when it already
//     holds more than K in-radius points (see gather_shard_results).
//   * KNN gather: each of the global K nearest lives in some shard and
//     is among that shard's K nearest (fewer than K points of the shard
//     are closer), so merging per-shard top-K candidate lists through
//     one FlatKnnHeaps row per query reproduces the global top-K. Ties
//     at the K-th distance are resolved by the heap's deterministic
//     (distance, id) order — equidistant candidates may legally differ
//     from another implementation's pick, like every backend here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/aabb.hpp"
#include "core/neighbor_result.hpp"
#include "core/vec3.hpp"
#include "rtnn/types.hpp"

namespace rtnn {

/// The shard layout of one cloud: a partition of the point ids into
/// Morton-contiguous runs, each with a tight AABB for routing.
struct ShardPlan {
  struct Shard {
    /// Global point ids owned by this shard (each id in exactly one
    /// shard), in Morton order of the positions at plan time.
    std::vector<std::uint32_t> point_ids;
    /// Tight bounds over the shard's current positions. Re-tightened on
    /// update_points so routing stays exact as points drift out of the
    /// Morton cells they were assigned by.
    Aabb bounds;
  };
  std::vector<Shard> shards;
  Aabb cloud_bounds;
  std::size_t point_count = 0;
};

/// How many shards a cloud of `points` points wants: ceil(points /
/// shard_threshold), capped at `max_shards`. `shard_threshold` = 0 means
/// sharding is off (always 1); `max_shards` = 0 means no cap — the
/// codebase-wide "0 = unbounded" contract (CloudConfig, batch limits).
std::uint32_t plan_shard_count(std::size_t points, std::size_t shard_threshold,
                               std::uint32_t max_shards);

/// Splits `points` into `num_shards` Morton-contiguous shards of
/// near-equal size (the first `n % num_shards` shards hold one extra
/// point). `num_shards` is clamped to the point count.
ShardPlan plan_shards(std::span<const Vec3> points, std::uint32_t num_shards);

/// Squared distance from `p` to the closest point of `box` (0 inside;
/// +inf for an empty box).
float aabb_distance2(const Aabb& box, const Vec3& p);

/// Which queries each shard must answer.
struct ShardRoute {
  /// rows[s] = query rows (ascending) within `radius` of shard s's
  /// bounds. A row near a shard boundary appears under every shard it
  /// can reach; a row out of range of every shard appears nowhere (its
  /// result is empty).
  std::vector<std::vector<std::uint32_t>> rows;
  /// Total routed (query, shard) pairs: fanout / queries is the
  /// scatter amplification the boundary overlap costs.
  std::uint64_t fanout = 0;
};

/// Routes `queries` to the shards of `plan` under the expanded-AABB test
/// (shard AABB within `radius` of the query).
ShardRoute route_queries(const ShardPlan& plan, std::span<const Vec3> queries,
                         float radius);

/// One shard's contribution to a scattered search: the routed rows it
/// answered, its local-id -> global-id map, and its shard-local result
/// (one row per entry of `rows`, neighbor slots holding shard-local
/// point indices).
struct ShardPartial {
  const std::vector<std::uint32_t>* rows = nullptr;
  const std::vector<std::uint32_t>* point_ids = nullptr;
  NeighborResult result;
};

/// Merges per-shard partial results into one exact NeighborResult over
/// all `queries` (global point ids):
///   * range + indices: ascending-id union of the disjoint per-shard
///     sets, truncated at K;
///   * KNN + indices: FlatKnnHeaps merge on distances recomputed from
///     the global `points`, extracted ascending by (distance, id);
///   * counts only (either mode): per-query sum of partial counts,
///     clamped at K — exact for both modes (see the header comment).
NeighborResult gather_shard_results(std::span<const Vec3> points,
                                    std::span<const Vec3> queries,
                                    const SearchParams& params,
                                    std::span<const ShardPartial> partials);

}  // namespace rtnn
