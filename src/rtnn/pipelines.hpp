// The OptiX shader pipelines of the RTNN algorithm.
//
// These are the direct ports of paper Listing 1 (range search), its KNN
// variant ("the IS shader would operate a priority queue"), and the
// truncated first-hit pipeline of Listing 2 used for query scheduling.
//
// Each pipeline's raygen() emits the paper's degenerate short ray from the
// query (tmin = 0, tmax = 1e-16, direction [1,0,0]) so that only AABBs
// *containing* the query intersect (Condition 2 of Figure 2); its
// intersection() is the IS shader performing the exact sphere test; and
// returning TraceAction::kTerminate plays the AH shader's role of killing
// the ray once K neighbors are found.
#pragma once

#include <cstdint>
#include <span>

#include "core/aabb.hpp"
#include "core/flat_knn.hpp"
#include "core/neighbor_result.hpp"
#include "core/vec3.hpp"
#include "optix/optix.hpp"

namespace rtnn::pipelines {

/// Range search (paper Listing 1). One launch index = one query = one ray.
/// `query_ids` maps launch index -> original query index, so partitioned /
/// reordered launches write results into the right rows.
class RangePipeline {
 public:
  RangePipeline(std::span<const Vec3> points, std::span<const Vec3> queries,
                std::span<const std::uint32_t> query_ids, float radius, std::uint32_t k,
                bool skip_sphere_test, NeighborResult& result)
      : points_(points),
        queries_(queries),
        query_ids_(query_ids),
        radius2_(radius * radius),
        k_(k),
        skip_sphere_test_(skip_sphere_test),
        result_(result) {}

  Ray raygen(std::uint32_t index) const {
    return Ray::short_ray(queries_[query_ids_[index]]);
  }

  ox::TraceAction intersection(std::uint32_t index, std::uint32_t prim) {
    const std::uint32_t query = query_ids_[index];
    // Step 2, the sphere test — elided when the partition's megacell is
    // strictly inside the search sphere (section 5.1: "the IS shader does
    // not have to perform the sphere test anymore").
    if (!skip_sphere_test_ &&
        distance2(points_[prim], queries_[query]) > radius2_) {
      return ox::TraceAction::kContinue;
    }
    const std::uint32_t count = result_.record(query, prim);
    // AH shader: terminate once K neighbors are recorded.
    return count >= k_ ? ox::TraceAction::kTerminate : ox::TraceAction::kContinue;
  }

 private:
  std::span<const Vec3> points_;
  std::span<const Vec3> queries_;
  std::span<const std::uint32_t> query_ids_;
  float radius2_;
  std::uint32_t k_;
  bool skip_sphere_test_;
  NeighborResult& result_;
};

/// KNN search: the IS shader maintains a bounded max-heap per ray. Rays
/// are never terminated early — the K *nearest* neighbors can improve
/// until the traversal exhausts the tree (this is why KNN does more
/// traversal work than range search; paper section 6.3).
class KnnPipeline {
 public:
  /// Heap capacity (the K bound) lives in the heap pool; launch setup
  /// asserts it matches `SearchParams::k` before constructing pipelines.
  KnnPipeline(std::span<const Vec3> points, std::span<const Vec3> queries,
              std::span<const std::uint32_t> query_ids, float radius, FlatKnnHeaps& heaps)
      : points_(points),
        queries_(queries),
        query_ids_(query_ids),
        radius2_(radius * radius),
        heaps_(&heaps) {}

  Ray raygen(std::uint32_t index) const {
    return Ray::short_ray(queries_[query_ids_[index]]);
  }

  ox::TraceAction intersection(std::uint32_t index, std::uint32_t prim) {
    const std::uint32_t query = query_ids_[index];
    const float d2 = distance2(points_[prim], queries_[query]);
    if (d2 <= radius2_ && d2 < heaps_->worst_dist2(query)) heaps_->push(query, d2, prim);
    return ox::TraceAction::kContinue;
  }

 private:
  std::span<const Vec3> points_;
  std::span<const Vec3> queries_;
  std::span<const std::uint32_t> query_ids_;
  float radius2_;
  FlatKnnHeaps* heaps_;
};

/// The scheduling pre-pass of paper Listing 2: "initial search with K=1"
/// that terminates each ray at its first intersected leaf AABB, recording
/// which primitive was hit. Extremely cheap: one IS call per ray.
class FirstHitPipeline {
 public:
  static constexpr std::uint32_t kNoHit = 0xffffffffu;

  FirstHitPipeline(std::span<const Vec3> queries, std::span<std::uint32_t> first_hit)
      : queries_(queries), first_hit_(first_hit) {}

  Ray raygen(std::uint32_t index) const { return Ray::short_ray(queries_[index]); }

  ox::TraceAction intersection(std::uint32_t index, std::uint32_t prim) {
    // Any enclosing AABB is an equally useful spatial hint (section 4:
    // "we are not interested in a particular enclosing AABB").
    first_hit_[index] = prim;
    return ox::TraceAction::kTerminate;  // AH shader: stop at first hit
  }

 private:
  std::span<const Vec3> queries_;
  std::span<std::uint32_t> first_hit_;
};

}  // namespace rtnn::pipelines
