#include "rtnn/stages.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "rtnn/partitioner.hpp"
#include "rtnn/pipelines.hpp"
#include "rtnn/scheduler.hpp"
#include "rtnn/sharding.hpp"

namespace rtnn {

void ensure_grid_built(std::span<const Vec3> points, const SearchParams& params,
                       GridIndex& grid, bool& valid) {
  if (valid) return;
  // Cap the grid at ~128 cells per point: far finer cells cannot sharpen
  // the megacell estimate and the SAT would dominate small datasets.
  const std::uint64_t useful =
      std::max<std::uint64_t>(4096, 128 * static_cast<std::uint64_t>(points.size()));
  grid.build(points, std::min(params.max_grid_cells, useful));
  valid = true;
}

namespace {

std::vector<Aabb> point_cubes(std::span<const Vec3> points, float width) {
  std::vector<Aabb> aabbs(points.size());
  parallel_for(0, static_cast<std::int64_t>(points.size()), [&](std::int64_t i) {
    aabbs[static_cast<std::size_t>(i)] =
        Aabb::cube(points[static_cast<std::size_t>(i)], width);
  }, grain::kElementwise);
  return aabbs;
}

}  // namespace

ox::Accel SearchContext::build_accel_width(float aabb_width) {
  // AABB generation is part of the build (Listing 1, buildBVH).
  Timer timer;
  const std::vector<Aabb> aabbs = point_cubes(points, aabb_width);
  const ox::Context ctx;
  ox::Accel accel = ctx.build_accel(aabbs);
  report.time.bvh += timer.elapsed();
  return accel;
}

ox::Accel SearchContext::build_tiled_accel_width(float aabb_width) {
  Timer timer;
  // Tile membership: the same Morton-contiguous near-equal split the
  // sharding planner uses, so each tile is a compact spatial region with
  // a tight AABB for the top-level tree.
  const std::uint32_t num_tiles = plan_shard_count(
      points.size(), tiling.tile_threshold, tiling.max_tiles);
  ShardPlan plan = plan_shards(points, num_tiles);
  std::vector<std::vector<std::uint32_t>> tile_ids;
  tile_ids.reserve(plan.shards.size());
  for (ShardPlan::Shard& shard : plan.shards) {
    tile_ids.push_back(std::move(shard.point_ids));
  }
  const ox::Context ctx;
  ox::TiledAccelOptions options;
  options.lazy_build = tiling.lazy_build;
  ox::Accel accel = ctx.build_tiled_accel(points, aabb_width, tile_ids, options);
  report.time.bvh += timer.elapsed();
  report.tile_count =
      std::max(report.tile_count, accel.tiled_bvh().tile_count());
  return accel;
}

void SearchContext::sync_index_cache() {
  IndexCache& cache = *index_cache;
  const bool want_tiled = tiled_active();
  const bool reusable =
      cache.accel.built() && cache.count == points.size() &&
      cache.width == base_width && cache.tiled == want_tiled &&
      (!want_tiled ||
       (cache.tiling.tile_threshold == tiling.tile_threshold &&
        cache.tiling.max_tiles == tiling.max_tiles &&
        cache.tiling.lazy_build == tiling.lazy_build));
  if (!reusable) {
    // New cloud, new radius, new decomposition, or first use: a fresh
    // build is the only option (and re-anchors the quality baseline).
    cache.accel =
        want_tiled ? build_tiled_accel_width(base_width) : build_accel_width(base_width);
    cache.width = base_width;
    cache.count = points.size();
    cache.moved = false;
    cache.tiled = want_tiled;
    cache.tiling = tiling;
  } else if (cache.moved) {
    if (want_tiled) {
      // The per-tile form of the refit-vs-rebuild decision: only touched
      // tiles do any work, each judged on its *own* observed quality —
      // a tile under heavy motion rebuilds while its neighbors refit (or
      // stay untouched entirely).
      Timer timer;
      const CostModel* model = cost_model;
      const rt::TiledUpdateStats us =
          cache.accel.update_tiled(points, [model](double inflation) {
            return choose_index_update(*model, inflation) == IndexUpdate::kRefit
                       ? rt::TileUpdate::kRefit
                       : rt::TileUpdate::kRebuild;
          });
      // Phase split: per-tile rebuilds are BVH work, refits are refit
      // work; the shared overhead (touched detection, top-tree rebuild)
      // rides with refit — it is maintenance, not fresh construction.
      report.time.bvh += us.build_seconds;
      report.time.refit +=
          std::max(0.0, timer.elapsed() - us.build_seconds);
      report.tiles_touched += us.tiles_touched;
      report.tile_refits += us.tile_refits;
      report.tile_rebuilds += us.tile_rebuilds;
    } else if (choose_index_update(*cost_model, cache.accel.sah_inflation()) ==
               IndexUpdate::kRefit) {
      // The per-frame decision: refit in place while it is cheaper and
      // the observed quality holds; otherwise pay a build to reset it.
      Timer timer;
      cache.accel.refit(points, base_width);  // boxes computed in-loop
      report.time.refit += timer.elapsed();
      ++report.accel_refits;
    } else {
      cache.accel = build_accel_width(base_width);
      ++report.accel_rebuilds;
    }
    cache.moved = false;
  }
  report.sah_inflation = cache.accel.sah_inflation();
  if (cache.tiled) {
    report.tile_count =
        std::max(report.tile_count, cache.accel.tiled_bvh().tile_count());
  }
}

const ox::Accel& SearchContext::acquire_global_accel() {
  if (index_cache) {
    sync_index_cache();
    return index_cache->accel;
  }
  if (!global_accel.built()) {
    global_accel = tiled_active() ? build_tiled_accel_width(base_width)
                                  : build_accel_width(base_width);
  }
  return global_accel;
}

void ScheduleStage::run(SearchContext& ctx) {
  const ox::Accel& accel = ctx.acquire_global_accel();
  // The first-hit cast routes rays too: tiles it reaches lazily build
  // here, and belong in the same build-on-first-route count.
  const std::uint32_t built_before =
      accel.is_tiled() ? accel.tiled_bvh().built_tile_count() : 0;
  ScheduleResult sched = schedule_queries(accel, ctx.points,
                                          ctx.queries, ctx.params.simt_launches,
                                          ctx.params.use_compressed_bvh);
  if (accel.is_tiled()) {
    ctx.report.tile_lazy_builds += accel.tiled_bvh().built_tile_count() - built_before;
  }
  ctx.order = std::move(sched.order);
  ctx.report.first_hit_stats = sched.first_hit_stats;
  ctx.report.time.first_search += sched.first_hit_seconds;
  ctx.report.time.opt += sched.sort_seconds;
}

void PartitionStage::run(SearchContext& ctx) {
  RTNN_CHECK(ctx.grid != nullptr && ctx.grid_valid != nullptr,
             "PartitionStage needs the owner's grid cache");
  ensure_grid_built(ctx.points, ctx.params, *ctx.grid, *ctx.grid_valid);
  ctx.partitions = partition_queries(*ctx.grid, ctx.queries, ctx.order, ctx.params);
  ctx.partitioned = true;
  ctx.report.time.opt += ctx.partitions.seconds;
  ctx.report.num_partitions = static_cast<std::uint32_t>(ctx.partitions.partitions.size());
}

void BundleStage::run(SearchContext& ctx) {
  RTNN_CHECK(ctx.partitioned, "BundleStage requires PartitionStage output");
  Timer timer;
  if (use_cost_model_) {
    RTNN_CHECK(ctx.cost_model != nullptr, "BundleStage needs a cost model");
    // Paper: absent offline profiling, fall back to Listing 3.
    ctx.plan = plan_bundles(ctx.partitions, ctx.points.size(), ctx.params, *ctx.cost_model);
  } else {
    ctx.plan = unbundled_plan(ctx.partitions, ctx.params);
  }
  ctx.planned = true;
  ctx.report.num_bundles = static_cast<std::uint32_t>(ctx.plan.bundles.size());
  ctx.report.predicted_bundle_cost = ctx.plan.predicted_seconds;
  ctx.report.time.opt += timer.elapsed();
}

void LaunchStage::launch_chunk(SearchContext& ctx, const ox::Accel& accel,
                               std::span<const std::uint32_t> ids, bool skip_sphere_test) {
  Timer timer;
  ox::LaunchOptions options;
  options.model = ctx.params.simt_launches ? ox::ExecutionModel::kWarpLockstep
                                           : ox::ExecutionModel::kIndependent;
  options.use_compressed_bvh = ctx.params.use_compressed_bvh;
  const auto width = static_cast<std::uint32_t>(ids.size());
  if (ctx.params.mode == SearchMode::kRange) {
    const bool skip_test = skip_sphere_test || ctx.params.elide_sphere_test;
    pipelines::RangePipeline pipeline(ctx.points, ctx.queries, ids, ctx.params.radius,
                                      ctx.params.k, skip_test, ctx.range_result);
    ctx.report.stats += ox::launch(accel, pipeline, width, options);
  } else {
    pipelines::KnnPipeline pipeline(ctx.points, ctx.queries, ids, ctx.params.radius,
                                    *ctx.knn_heaps);
    ctx.report.stats += ox::launch(accel, pipeline, width, options);
  }
  ctx.report.time.search += timer.elapsed();
}

void LaunchStage::launch_unit(SearchContext& ctx, const ox::Accel& accel,
                              const Unit& unit) {
  // Stream the unit's ids through fixed-size chunks. Partition id lists
  // are consumed as views; only the scratch chunk is ever materialized.
  std::size_t total = 0;
  for (const auto& span : unit.id_spans) total += span.size();

  if (unit.id_spans.size() == 1 && total <= kChunkSize) {
    launch_chunk(ctx, accel, unit.id_spans.front(), unit.skip_sphere_test);
    return;
  }

  std::vector<std::uint32_t> chunk;
  chunk.reserve(std::min(total, kChunkSize));
  for (const auto& span : unit.id_spans) {
    std::size_t offset = 0;
    while (offset < span.size()) {
      const std::size_t take = std::min(kChunkSize - chunk.size(), span.size() - offset);
      chunk.insert(chunk.end(), span.begin() + offset, span.begin() + offset + take);
      offset += take;
      if (chunk.size() == kChunkSize) {
        launch_chunk(ctx, accel, chunk, unit.skip_sphere_test);
        chunk.clear();
      }
    }
  }
  if (!chunk.empty()) launch_chunk(ctx, accel, chunk, unit.skip_sphere_test);
}

void LaunchStage::run(SearchContext& ctx) {
  // Result storage: one K-slot row per query, written by the pipelines.
  if (ctx.params.mode == SearchMode::kRange) {
    ctx.range_result =
        NeighborResult(ctx.queries.size(), ctx.params.k, ctx.params.store_indices);
  } else if (!ctx.knn_heaps) {
    ctx.knn_heaps = std::make_unique<FlatKnnHeaps>(ctx.queries.size(), ctx.params.k);
  } else {
    // A caller-supplied heap pool must match the K bound the pipelines
    // will assume (the check KnnPipeline's dropped `k` parameter became).
    RTNN_CHECK(ctx.knn_heaps->k() == ctx.params.k,
               "KNN heap capacity must match params.k");
    RTNN_CHECK(ctx.knn_heaps->num_queries() == ctx.queries.size(),
               "KNN heap pool must cover every query");
  }

  std::vector<Unit> units;
  if (ctx.planned) {
    units.reserve(ctx.plan.bundles.size());
    for (const Bundle& bundle : ctx.plan.bundles) {
      Unit unit;
      unit.aabb_width = bundle.aabb_width;
      unit.skip_sphere_test = bundle.skip_sphere_test;
      unit.id_spans.reserve(bundle.partition_indices.size());
      for (const std::uint32_t pi : bundle.partition_indices) {
        const auto& ids = ctx.partitions.partitions[pi].query_ids;
        if (!ids.empty()) unit.id_spans.emplace_back(ids);
      }
      // Skip empty bundles (caller-supplied plans may contain them)
      // before paying their O(N) BVH build.
      if (!unit.id_spans.empty()) units.push_back(std::move(unit));
    }
  } else if (!ctx.order.empty()) {
    // Unpartitioned: one unit over the (possibly scheduled) order, at the
    // naive base width.
    Unit unit;
    unit.aabb_width = ctx.scale_launch_widths ? 2.0f * ctx.params.radius : ctx.base_width;
    unit.skip_sphere_test = false;
    unit.id_spans.emplace_back(ctx.order);
    units.push_back(std::move(unit));
  }

  for (const Unit& unit : units) {
    // Approximation: shrink partition widths by aabb_scale too.
    const float width =
        ctx.scale_launch_widths ? unit.aabb_width * ctx.params.aabb_scale : unit.aabb_width;
    // Share the global base-width BVH across every launch unit that needs
    // exactly it (the unpartitioned path, and the sparse-fallback bundle).
    const bool is_base = std::abs(width - ctx.base_width) <= 1e-6f * ctx.params.radius;
    ox::Accel local;
    const ox::Accel* accel;
    if (is_base) {
      accel = &ctx.acquire_global_accel();
    } else {
      local = ctx.build_accel_width(width);
      accel = &local;
    }
    const std::uint32_t built_before =
        accel->is_tiled() ? accel->tiled_bvh().built_tile_count() : 0;
    launch_unit(ctx, *accel, unit);
    // Footprint gauge: the byte cost of the node layout these launches
    // actually traversed (SIMT launches walk the binary tree and report
    // 0). Taken after the launch so a lazy tiled index reports the tiles
    // the rays actually forced resident, not the pre-launch zero.
    if (!ctx.params.simt_launches) {
      if (accel->is_tiled()) {
        const rt::TiledBvh& tlas = accel->tiled_bvh();
        ctx.report.tile_lazy_builds += tlas.built_tile_count() - built_before;
        const rt::TiledBvhStats ts = tlas.stats(ctx.params.use_compressed_bvh);
        ctx.report.index_node_bytes =
            std::max(ctx.report.index_node_bytes, ts.node_bytes);
        ctx.report.index_total_bytes =
            std::max(ctx.report.index_total_bytes, ts.total_index_bytes);
      } else {
        const rt::WideBvhStats ws = ctx.params.use_compressed_bvh
                                        ? accel->wide_bvh().compressed_stats()
                                        : accel->wide_bvh().stats();
        ctx.report.index_node_bytes =
            std::max(ctx.report.index_node_bytes, ws.node_bytes);
        ctx.report.index_total_bytes =
            std::max(ctx.report.index_total_bytes, ws.total_index_bytes);
      }
    }
  }
}

namespace {

/// Shared scatter core: `row_of(merged_row)` names the batch-result row
/// that answers a merged row — identity for plain coalesced batches, the
/// optimizer's representative map for reordered/deduped ones.
template <typename RowOf>
std::vector<NeighborResult> scatter_batch_result(const NeighborResult& batch,
                                                 std::span<const BatchSlice> slices,
                                                 RowOf&& row_of) {
  std::vector<NeighborResult> results;
  results.reserve(slices.size());
  const bool indices = batch.stores_indices();
  for (const BatchSlice& slice : slices) {
    NeighborResult out(slice.count, batch.k(), indices);
    for (std::size_t q = 0; q < slice.count; ++q) {
      const std::size_t row = row_of(slice.first + q);
      RTNN_CHECK(row < batch.num_queries(), "batch slice exceeds the batch result");
      if (indices) {
        for (const std::uint32_t p : batch.neighbors(row)) out.record(q, p);
      } else {
        out.count_ref(q) = batch.count(row);
      }
    }
    results.push_back(std::move(out));
  }
  return results;
}

}  // namespace

std::vector<NeighborResult> split_batch_result(const NeighborResult& batch,
                                               std::span<const BatchSlice> slices) {
  return scatter_batch_result(batch, slices, [](std::size_t row) { return row; });
}

std::vector<NeighborResult> split_batch_result(const NeighborResult& batch,
                                               std::span<const BatchSlice> slices,
                                               std::span<const std::uint32_t> batch_rows) {
  return scatter_batch_result(batch, slices, [&](std::size_t row) {
    RTNN_CHECK(row < batch_rows.size(), "batch slice exceeds the row map");
    return static_cast<std::size_t>(batch_rows[row]);
  });
}

DynamicSearchSession::DynamicSearchSession(const SearchParams& params,
                                           const CostModel& model)
    : params_(params) {
  search_.set_cost_model(model);
  search_.set_index_persistence(true);
}

NeighborResult DynamicSearchSession::step(std::span<const Vec3> points,
                                          std::span<const Vec3> queries,
                                          NeighborSearch::Report* report) {
  RTNN_CHECK(!points.empty(), "a frame needs points");
  if (search_.point_count() == points.size()) {
    search_.update_points(points);  // moved positions: refit-eligible
  } else {
    search_.set_points(points);     // first frame or a resize: fresh index
  }
  ++frame_;
  return search_.search(queries, params_, report);
}

std::vector<std::unique_ptr<SearchStage>> make_pipeline(const OptimizationFlags& opts) {
  std::vector<std::unique_ptr<SearchStage>> stages;
  if (opts.scheduling) stages.push_back(std::make_unique<ScheduleStage>());
  if (opts.partitioning) {
    stages.push_back(std::make_unique<PartitionStage>());
    stages.push_back(std::make_unique<BundleStage>(opts.bundling));
  }
  stages.push_back(std::make_unique<LaunchStage>());
  return stages;
}

}  // namespace rtnn
