// RTNN public API: neighbor search on the ray-tracing substrate.
//
// End-to-end flow (the paper's full system):
//
//   set_points()           — upload points to "device" memory   [Data]
//   search():
//     build global BVH (AABB width 2r)                          [BVH]
//     scheduling:   first-hit cast (K=1)                        [FS]
//                   Morton sort of queries                      [Opt]
//     partitioning: megacell growth on a uniform grid,
//                   bucket queries by megacell width            [Opt]
//     bundling:     cost-model scan over partition bundlings    [Opt]
//     per bundle:   build its BVH (width = bundle AABB width)   [BVH]
//                   launch the range/KNN pipeline               [Search]
//
// With all optimizations disabled this degenerates to the naive mapping of
// section 3 (also exposed as the FastRNN baseline).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/neighbor_result.hpp"
#include "core/timing.hpp"
#include "core/vec3.hpp"
#include "optix/optix.hpp"
#include "rtcore/launch_stats.hpp"
#include "rtnn/cost_model.hpp"
#include "rtnn/grid_index.hpp"
#include "rtnn/types.hpp"

namespace rtnn {

class FlatKnnHeaps;

class NeighborSearch {
 public:
  /// Everything the benches report about one search() call.
  struct Report {
    TimeBreakdown time;
    rt::LaunchStats stats;           // actual-search launches, accumulated
    rt::LaunchStats first_hit_stats; // the scheduling pre-pass
    std::uint32_t num_partitions = 0;
    std::uint32_t num_bundles = 0;
    double predicted_bundle_cost = 0.0;
  };

  NeighborSearch() = default;

  /// Uploads the search points (the Data phase). Invalidates prior accels.
  void set_points(std::span<const Vec3> points);

  /// Supplies a calibrated cost model for bundling decisions. Without one
  /// the library falls back to the built-in defaults; pass an uncalibrated
  /// model (calibrated == false) to force the paper's fallback of skipping
  /// bundling.
  void set_cost_model(const CostModel& model) { cost_model_ = model; }
  const CostModel& cost_model() const { return cost_model_; }

  std::size_t point_count() const { return points_.size(); }

  /// Runs a neighbor search for `queries` under `params`.
  NeighborResult search(std::span<const Vec3> queries, const SearchParams& params,
                        Report* report = nullptr);

  /// Runs a search with an externally chosen bundle plan (used by the
  /// Oracle ablation of Figure 13, which exhaustively tries plans).
  NeighborResult search_with_plan(std::span<const Vec3> queries, const SearchParams& params,
                                  const PartitionSet& partitions, const BundlePlan& plan,
                                  Report* report = nullptr);

  /// Exposes the partitioning step so callers (benches, Oracle) can
  /// inspect or re-plan it. `order` must be a permutation of query ids.
  PartitionSet partition(std::span<const Vec3> queries,
                         std::span<const std::uint32_t> order,
                         const SearchParams& params) const;

 private:
  struct LaunchPlan {
    // Per launch unit: query ids (already ordered), AABB width, flags.
    struct Unit {
      std::vector<std::uint32_t> query_ids;
      float aabb_width = 0.0f;
      bool skip_sphere_test = false;
    };
    std::vector<Unit> units;
  };

  ox::Accel build_accel_width(float aabb_width, TimeBreakdown& time) const;
  void run_launch(const ox::Accel& accel, const LaunchPlan::Unit& unit,
                  std::span<const Vec3> queries, const SearchParams& params,
                  NeighborResult* range_result, FlatKnnHeaps* knn_heaps,
                  Report& report) const;

  std::vector<Vec3> points_;  // the "device" copy
  CostModel cost_model_{};
  mutable GridIndex grid_;    // rebuilt per point set, cached across searches
  mutable bool grid_valid_ = false;
};

/// One-shot convenience wrapper.
NeighborResult search(std::span<const Vec3> points, std::span<const Vec3> queries,
                      const SearchParams& params, NeighborSearch::Report* report = nullptr);

}  // namespace rtnn
