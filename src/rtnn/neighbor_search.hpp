// RTNN public API: neighbor search on the ray-tracing substrate.
//
// End-to-end flow (the paper's full system):
//
//   set_points()           — upload points to "device" memory   [Data]
//   search():
//     ScheduleStage:  first-hit cast (K=1) + Morton sort        [FS/Opt]
//     PartitionStage: megacell growth on a uniform grid,
//                     bucket queries by megacell width          [Opt]
//     BundleStage:    cost-model scan over partition bundlings  [Opt]
//     LaunchStage:    per-bundle BVH build (width = bundle AABB
//                     width) + chunked range/KNN launches       [BVH/Search]
//
// search() assembles the stage list from the OptimizationFlags and runs
// it over a SearchContext (see rtnn/stages.hpp); run_stages() accepts a
// caller-built stage list so ablations can compose their own pipelines.
// With all optimizations disabled this degenerates to the naive mapping of
// section 3 (also exposed as the FastRNN baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/neighbor_result.hpp"
#include "core/timing.hpp"
#include "core/vec3.hpp"
#include "optix/optix.hpp"
#include "rtcore/launch_stats.hpp"
#include "rtnn/cost_model.hpp"
#include "rtnn/grid_index.hpp"
#include "rtnn/types.hpp"

namespace rtnn {

class FlatKnnHeaps;
class SearchStage;
struct SearchContext;

/// The persistent base-width accel of a dynamic sequence, owned by
/// NeighborSearch and threaded into each search()'s SearchContext when
/// index persistence is on. `moved` marks positions changed since the
/// accel last synced; the refit-vs-rebuild policy resolves it at the next
/// acquire (see SearchContext::acquire_global_accel in stages.cpp).
struct IndexCache {
  ox::Accel accel;
  float width = -1.0f;     // AABB width the accel was built at
  std::size_t count = 0;   // point count it covers
  bool moved = false;
  /// Whether the cached accel is the two-level (tiled) build product, and
  /// the tiling it was built under — a change to either invalidates the
  /// cache like a width change would.
  bool tiled = false;
  TileOptions tiling{};
};

/// One request's rows within a coalesced batch launch: queries
/// [first, first + count) of the merged query array belong to this
/// request. The serving layer (src/service) builds one slice per
/// in-flight request; split_batch_result() scatters the batch result
/// back to the slots.
struct BatchSlice {
  std::size_t first = 0;
  std::size_t count = 0;
};

class NeighborSearch {
 public:
  /// Everything the benches report about one search() call.
  struct Report {
    TimeBreakdown time;
    rt::LaunchStats stats;           // actual-search launches, accumulated
    rt::LaunchStats first_hit_stats; // the scheduling pre-pass
    std::uint32_t num_partitions = 0;
    std::uint32_t num_bundles = 0;
    double predicted_bundle_cost = 0.0;
    // Index lifecycle of this call (persistent-index searches only; all
    // zero / 1.0 on the static path).
    std::uint32_t accel_refits = 0;    // base accel refitted this call
    std::uint32_t accel_rebuilds = 0;  // base accel rebuilt by the policy
    double sah_inflation = 1.0;        // base accel quality after this call
    // Batch-optimizer activity (the serving path's coherence pass; zero
    // on plain searches). Optimizer wall time is charged to time.opt.
    std::uint64_t queries_deduped = 0; // rows answered by a coincident representative
    std::uint32_t batch_bins = 0;      // homogeneous launch bins emitted
    // Shard fault isolation (engine::ShardedBackend's retry/degrade
    // path; zero everywhere else).
    std::uint32_t shard_retries = 0;   // failed shard attempts that were retried
    std::uint32_t shards_dropped = 0;  // shards excluded from a degraded gather
    // Two-level (tiled) index lifecycle (all zero when tiling is off).
    // The touched/refit/rebuild counters are the locality headline: with
    // local motion, tiles_touched / tile_count stays far below 1 while
    // the monolithic path would refit everything.
    std::uint32_t tile_count = 0;       // tiles in the active tiled index (gauge)
    std::uint32_t tiles_touched = 0;    // tiles whose member points moved
    std::uint32_t tile_refits = 0;      // touched tiles the policy refit
    std::uint32_t tile_rebuilds = 0;    // touched tiles the policy rebuilt
    std::uint32_t tile_lazy_builds = 0; // tiles built on first route this call
    // Memory footprint of the traversal index actually launched against
    // (the selected wide-BVH layout's byte accounting; the largest accel
    // of the call when partitioning builds several).
    std::uint64_t index_node_bytes = 0;   // node array alone
    std::uint64_t index_total_bytes = 0;  // + shared leaf/prim arrays
    /// Aggregation across calls/batches (the serving layer's per-service
    /// totals): every time and counter sums exactly; sah_inflation keeps
    /// the worst (largest) quality degradation observed, and the index
    /// byte gauges keep the largest footprint seen.
    Report& operator+=(const Report& o);
  };

  NeighborSearch() = default;

  /// Uploads the search points (the Data phase). Invalidates prior accels.
  void set_points(std::span<const Vec3> points);

  /// Moves the uploaded points to new positions — one frame of a dynamic
  /// sequence. Requires set_points() first and an identical count (a
  /// resized cloud is a new upload, not a move). Enables index
  /// persistence: the next search() refits or rebuilds the cached
  /// base-width accel per the cost model's choose_index_update policy
  /// instead of always rebuilding.
  void update_points(std::span<const Vec3> points);

  /// Keeps the base-width accel alive across search() calls so frame
  /// sequences can refit instead of rebuild. Off by default: one-shot
  /// searches keep the historical build-per-call semantics (and their
  /// timing profile). update_points() turns it on implicitly.
  void set_index_persistence(bool on);
  bool index_persistence() const { return index_persistence_; }

  /// Supplies a calibrated cost model for bundling decisions. Without one
  /// the library falls back to the built-in defaults; pass an uncalibrated
  /// model (calibrated == false) to force the paper's fallback of skipping
  /// bundling.
  void set_cost_model(const CostModel& model) { cost_model_ = model; }
  const CostModel& cost_model() const { return cost_model_; }

  /// Enables the two-level (tiled) base index (see TileOptions). Takes
  /// effect at the next search(); changing the tiling invalidates the
  /// persistent index cache (the decomposition is part of the build).
  /// Incompatible with simt_launches — the warp-lockstep characterization
  /// model walks the monolithic binary BVH.
  void set_tiling(const TileOptions& options);
  const TileOptions& tiling() const { return tiling_; }

  std::size_t point_count() const { return points_.size(); }

  /// Runs a neighbor search for `queries` under `params`, assembling the
  /// stage pipeline from `params.opts`.
  NeighborResult search(std::span<const Vec3> queries, const SearchParams& params,
                        Report* report = nullptr);

  /// Coalesced-batch entry point (the serving layer's tick): `queries` is
  /// the concatenation of many small requests and `slices` tags each
  /// request's rows. The whole batch flows through the stage pipeline
  /// exactly once — one schedule/partition/bundle pass and one LaunchStage
  /// dispatch amortized across every request — and the batch result is
  /// scattered back into one NeighborResult per slice. `report`, when
  /// non-null, receives the batch's aggregate Report (requests share the
  /// batch cost; there is no per-row attribution).
  std::vector<NeighborResult> search_batched(std::span<const Vec3> queries,
                                             std::span<const BatchSlice> slices,
                                             const SearchParams& params,
                                             Report* report = nullptr);

  /// Runs a caller-assembled stage pipeline (see rtnn/stages.hpp). This is
  /// how the Figure-13 ablations and engine-layer experiments drive the
  /// schedule/partition/bundle/launch steps as real objects.
  NeighborResult run_stages(std::span<const Vec3> queries, const SearchParams& params,
                            std::span<const std::unique_ptr<SearchStage>> stages,
                            Report* report = nullptr);

  /// Runs a search with an externally chosen bundle plan (used by the
  /// Oracle ablation of Figure 13, which exhaustively tries plans).
  NeighborResult search_with_plan(std::span<const Vec3> queries, const SearchParams& params,
                                  const PartitionSet& partitions, const BundlePlan& plan,
                                  Report* report = nullptr);

  /// Exposes the partitioning step so callers (benches, Oracle) can
  /// inspect or re-plan it. `order` must be a permutation of query ids.
  PartitionSet partition(std::span<const Vec3> queries,
                         std::span<const std::uint32_t> order,
                         const SearchParams& params) const;

 private:
  /// Populates a SearchContext's inputs (including the persistent index
  /// cache when enabled) and charges the query upload to the Data phase.
  void init_context(SearchContext& ctx, std::span<const Vec3> queries,
                    const SearchParams& params);
  static NeighborResult finish_context(SearchContext& ctx, Report* report_out);

  std::vector<Vec3> points_;  // the "device" copy
  CostModel cost_model_{};
  mutable GridIndex grid_;    // rebuilt per point set, cached across searches
  mutable bool grid_valid_ = false;
  IndexCache index_cache_;    // persistent base-width accel (opt-in)
  bool index_persistence_ = false;
  TileOptions tiling_{};      // two-level base index (opt-in)
};

/// One-shot convenience wrapper.
NeighborResult search(std::span<const Vec3> points, std::span<const Vec3> queries,
                      const SearchParams& params, NeighborSearch::Report* report = nullptr);

/// Scatters a coalesced batch result back to per-request results: output i
/// holds rows [slices[i].first, slices[i].first + slices[i].count) of
/// `batch`. Slices must lie within the batch (they may overlap or leave
/// gaps — a slice is a view, not a partition). Works for any backend's
/// NeighborResult, with or without stored indices.
std::vector<NeighborResult> split_batch_result(const NeighborResult& batch,
                                               std::span<const BatchSlice> slices);

/// Permutation-aware scatter (the batch optimizer's fan-out): output i's
/// row q reads batch row `batch_rows[slices[i].first + q]` instead of the
/// identity mapping — `batch_rows` is the merged-row → result-row map a
/// reorder/dedup pass produced (an inverse permutation when every row kept
/// its own result; many-to-one when coincident rows share a
/// representative's). Per-request result slots are untouched by either
/// pass: slices keep addressing pre-optimization rows. `batch_rows` must
/// cover every row a slice touches, with every entry < batch.num_queries().
std::vector<NeighborResult> split_batch_result(const NeighborResult& batch,
                                               std::span<const BatchSlice> slices,
                                               std::span<const std::uint32_t> batch_rows);

}  // namespace rtnn
