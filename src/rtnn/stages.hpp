// The staged query pipeline behind NeighborSearch::search().
//
// The paper's end-to-end flow (schedule → partition → bundle → launch,
// Figure 12's phases) is expressed as composable stage objects sharing one
// SearchContext. NeighborSearch::search() assembles the stage list from
// the OptimizationFlags; benches and the Figure-13 ablations assemble
// their own lists (e.g. swapping BundleStage for an Oracle plan) and run
// them through NeighborSearch::run_stages() — the ablation axes are real
// objects, not bool flags threaded through a monolith.
//
//   ScheduleStage   first-hit cast + Morton sort → ctx.order        [FS/Opt]
//   PartitionStage  megacell growth on the cached grid → partitions [Opt]
//   BundleStage     cost-model scan (or Listing-3 default) → plan   [Opt]
//   LaunchStage     per-bundle BVH builds + chunked launches        [BVH/Search]
//
// LaunchStage streams each launch unit's query ids through fixed-size
// chunks instead of materializing one concatenated id vector per bundle,
// so peak memory is O(chunk) rather than O(Q) per unit.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/flat_knn.hpp"
#include "rtnn/neighbor_search.hpp"

namespace rtnn {

/// Lazily (re)builds the megacell grid for `points` under the
/// `max_grid_cells` policy shared by PartitionStage and
/// NeighborSearch::partition(). `valid` is the owner's cache flag.
void ensure_grid_built(std::span<const Vec3> points, const SearchParams& params,
                       GridIndex& grid, bool& valid);

/// Everything a search() call accumulates while flowing through the
/// stages. Inputs are set up by NeighborSearch; each stage reads what the
/// previous ones produced and appends its own timing to `report`.
struct SearchContext {
  // --- Inputs ---
  std::span<const Vec3> points;
  std::vector<Vec3> queries;  // the "device" copy
  SearchParams params{};
  const CostModel* cost_model = nullptr;
  GridIndex* grid = nullptr;   // owner's cached grid (PartitionStage builds it)
  bool* grid_valid = nullptr;
  /// Owner's persistent base-width accel (dynamic sequences). When set,
  /// acquire_global_accel() serves it — refitting or rebuilding stale
  /// entries per choose_index_update — instead of building a call-local
  /// accel. Null on the static path.
  IndexCache* index_cache = nullptr;
  /// Two-level base index configuration (NeighborSearch::set_tiling).
  /// When active for this cloud, the base-width accel is a TLAS over
  /// spatial tiles instead of one monolithic BVH.
  TileOptions tiling{};

  /// Whether this call's base accel is (or will be) tiled: tiling is on
  /// and the cloud is over the threshold.
  bool tiled_active() const {
    return tiling.enabled() && points.size() > tiling.tile_threshold;
  }

  // --- Evolving state ---
  float base_width = 0.0f;           // 2r·aabb_scale, the naive AABB width
  ox::Accel global_accel;            // base-width BVH, built at most once
  std::vector<std::uint32_t> order;  // query-to-ray mapping (starts as iota)
  PartitionSet partitions;
  bool partitioned = false;
  BundlePlan plan;
  bool planned = false;
  /// search_with_plan() injects widths that are final; search() widths are
  /// still scaled by params.aabb_scale at launch.
  bool scale_launch_widths = true;

  // --- Outputs ---
  NeighborResult range_result;
  std::unique_ptr<FlatKnnHeaps> knn_heaps;
  NeighborSearch::Report report;

  /// Builds a BVH over `points` with cubic AABBs of `aabb_width`,
  /// charging the build to report.time.bvh.
  ox::Accel build_accel_width(float aabb_width);

  /// Builds the two-level base accel: Morton-contiguous tiles from the
  /// sharding planner (plan_shards), each owning its own bottom-level
  /// index, under a top-level BVH. Charged to report.time.bvh like any
  /// other build; with tiling.lazy_build only the tile bounds and top
  /// tree are paid here.
  ox::Accel build_tiled_accel_width(float aabb_width);

  /// The base-width BVH shared by the scheduling pre-pass and the
  /// unpartitioned launch path. With an index_cache attached this is the
  /// index-lifecycle entry point: a fresh cloud builds (time.bvh), small
  /// motion refits in place (time.refit), degraded or resized indexes
  /// rebuild — per the cost model's choose_index_update policy.
  const ox::Accel& acquire_global_accel();

 private:
  /// Brings *index_cache up to date with (points, base_width).
  void sync_index_cache();
};

/// One step of the search pipeline. Stages are stateless between runs and
/// reusable across calls; all per-call state lives in the SearchContext.
class SearchStage {
 public:
  virtual ~SearchStage() = default;
  virtual const char* name() const = 0;
  virtual void run(SearchContext& ctx) = 0;
};

/// Section 4: spatially-ordered query scheduling. Rewrites ctx.order.
class ScheduleStage final : public SearchStage {
 public:
  const char* name() const override { return "schedule"; }
  void run(SearchContext& ctx) override;
};

/// Section 5.1: megacell partitioning. Fills ctx.partitions.
class PartitionStage final : public SearchStage {
 public:
  const char* name() const override { return "partition"; }
  void run(SearchContext& ctx) override;
};

/// Section 5.2: partition bundling. Fills ctx.plan from ctx.partitions —
/// the cost-model linear scan, or the Listing-3 default (one bundle per
/// partition) when disabled or the model is uncalibrated.
class BundleStage final : public SearchStage {
 public:
  explicit BundleStage(bool use_cost_model = true) : use_cost_model_(use_cost_model) {}
  const char* name() const override { return "bundle"; }
  void run(SearchContext& ctx) override;

 private:
  bool use_cost_model_;
};

/// Executes the plan: allocates result storage, builds each launch unit's
/// BVH (reusing the global one when widths coincide), and streams the
/// unit's query ids through chunked ox::launch calls.
class LaunchStage final : public SearchStage {
 public:
  /// Queries per launch chunk. Bounds the ray buffer and the id scratch;
  /// launches wider than this are split (results are row-addressed by
  /// query id, so splitting is invisible to output).
  static constexpr std::size_t kChunkSize = std::size_t{1} << 15;

  const char* name() const override { return "launch"; }
  void run(SearchContext& ctx) override;

 private:
  struct Unit {
    std::vector<std::span<const std::uint32_t>> id_spans;  // views, not copies
    float aabb_width = 0.0f;
    bool skip_sphere_test = false;
  };

  void launch_unit(SearchContext& ctx, const ox::Accel& accel, const Unit& unit);
  void launch_chunk(SearchContext& ctx, const ox::Accel& accel,
                    std::span<const std::uint32_t> ids, bool skip_sphere_test);
};

/// The stage list search() runs for the given optimization flags.
std::vector<std::unique_ptr<SearchStage>> make_pipeline(const OptimizationFlags& opts);

/// Owns a point cloud across the frames of a dynamic sequence — lidar
/// sweeps, SPH timesteps, N-body steps — and answers each frame through
/// the index lifecycle instead of a from-scratch build:
///
///   frame 0    set_points + build            (time.bvh)
///   frame t    update_points + refit         (time.refit)  — usual case
///              ... or rebuild when the cost model's policy says the
///              refitted index has degraded    (time.bvh)
///
/// step() uploads the frame's positions (a changed count falls back to a
/// fresh upload + build) and runs the search; per-frame Reports stream the
/// phase times, the index action taken (accel_refits / accel_rebuilds)
/// and the observed sah_inflation. Search params are fixed at
/// construction: a stable radius is what makes the base-width accel
/// reusable frame over frame.
class DynamicSearchSession {
 public:
  explicit DynamicSearchSession(const SearchParams& params, const CostModel& model = {});

  /// Advances one frame: uploads `points` and answers `queries`.
  NeighborResult step(std::span<const Vec3> points, std::span<const Vec3> queries,
                      NeighborSearch::Report* report = nullptr);

  /// Self-neighborhood frame: the moved points query their own
  /// neighborhoods (the SPH / N-body shape).
  NeighborResult step(std::span<const Vec3> points,
                      NeighborSearch::Report* report = nullptr) {
    return step(points, points, report);
  }

  std::uint64_t frame() const { return frame_; }
  std::size_t point_count() const { return search_.point_count(); }
  const SearchParams& params() const { return params_; }
  /// The underlying engine (cost model swaps, ad-hoc queries, stats).
  NeighborSearch& core() { return search_; }

 private:
  NeighborSearch search_;
  SearchParams params_;
  std::uint64_t frame_ = 0;
};

}  // namespace rtnn
