#include "rtnn/partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/parallel.hpp"
#include "core/timing.hpp"

namespace rtnn {

namespace {

constexpr float kSqrt3 = 1.7320508f;
// 2 * cbrt(3 / (4*pi)) — the equi-volume sphere diameter for a unit cube
// (paper footnote 2).
constexpr float kEquiVolume = 1.2407011f;

}  // namespace

float knn_aabb_width(float megacell_width, bool conservative) {
  return megacell_width * (conservative ? kSqrt3 : kEquiVolume);
}

PartitionSet partition_queries(const GridIndex& grid, std::span<const Vec3> queries,
                               std::span<const std::uint32_t> order,
                               const SearchParams& params) {
  RTNN_CHECK(grid.built(), "partition before grid build");
  RTNN_CHECK(order.size() == queries.size(), "order/queries size mismatch");
  Timer timer;
  PartitionSet set;
  set.cell_size = grid.cell_size();

  const float r = params.radius;
  const float cell = grid.cell_size();
  const std::uint32_t k = params.k;

  // Largest megacell inscribed in the r-sphere: width 2r/√3 (section 5.1,
  // "the largest possible megacell is the cube that is inscribed by the
  // sphere"). Growth stops *just before* piercing it.
  const float max_width = 2.0f * r / kSqrt3;
  const int sphere_steps =
      std::max(0, static_cast<int>(std::floor((max_width / cell - 1.0f) / 2.0f)));
  // Also no point growing past the whole grid.
  const Int3 res = grid.resolution();
  const int grid_steps = std::max({res.x, res.y, res.z});
  const int step_limit = std::min(sphere_steps, grid_steps);

  // Megacell growth per query (the CUDA kernel of section 5.1; the SAT
  // makes each growth step O(1)).
  const std::size_t n = queries.size();
  std::vector<std::uint32_t> steps(n);
  std::vector<std::uint8_t> hit_limit(n);
  parallel_for(0, static_cast<std::int64_t>(n), [&](std::int64_t i) {
    const Vec3 q = queries[static_cast<std::size_t>(i)];
    // Queries outside the point grid would be clamped to a border cell,
    // voiding the one-cell slop that underpins the width guarantees; they
    // take the conservative fallback partition instead.
    if (!grid.bounds().contains(q)) {
      steps[static_cast<std::size_t>(i)] = 0;
      hit_limit[static_cast<std::size_t>(i)] = 1;
      return;
    }
    const Int3 c = grid.cell_of(q);
    int s = 0;
    std::uint64_t count = grid.count_in_box(c, c);
    while (count < k && s < step_limit) {
      ++s;
      count = grid.count_in_box({c.x - s, c.y - s, c.z - s}, {c.x + s, c.y + s, c.z + s});
    }
    steps[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(s);
    hit_limit[static_cast<std::size_t>(i)] = (count < k) ? 1 : 0;
  });

  // Bucket queries by (steps, hit_limit) in scheduled order, so each
  // partition keeps the spatial coherence the scheduler established.
  // Key layout: hit-limited queries form one extra bucket at the end.
  const std::uint32_t n_step_buckets = static_cast<std::uint32_t>(step_limit) + 1;
  const std::uint32_t n_buckets = n_step_buckets + 1;
  std::vector<std::vector<std::uint32_t>> buckets(n_buckets);
  for (const std::uint32_t q : order) {
    const std::uint32_t b = hit_limit[q] ? n_step_buckets : steps[q];
    buckets[b].push_back(q);
  }

  for (std::uint32_t b = 0; b < n_buckets; ++b) {
    if (buckets[b].empty()) continue;
    Partition part;
    part.hit_sphere_limit = (b == n_step_buckets);
    part.steps = part.hit_sphere_limit ? static_cast<std::uint32_t>(step_limit) : b;
    part.megacell_width = (2.0f * static_cast<float>(part.steps) + 1.0f) * cell;

    // +1 cell of slop: the megacell is centered on the query's *cell*, but
    // the query sits anywhere within it, so point-centered AABBs need one
    // extra cell of width to capture the whole megacell from the query's
    // position.
    const float slopped = part.megacell_width + cell;

    if (part.hit_sphere_limit) {
      // The megacell could not establish a K-point guarantee (sparse
      // region, or a query outside the point grid): fall back to the
      // baseline width, which is always correct.
      part.aabb_width = 2.0f * r;
      part.skip_sphere_test = false;
    } else if (params.mode == SearchMode::kRange) {
      part.aabb_width = std::min(slopped, 2.0f * r);
      // Skip Step 2 only if every point whose AABB contains the query is
      // provably within r: |p-q|∞ ≤ w/2 ⇒ |p-q|₂ ≤ w·√3/2 ≤ r.
      part.skip_sphere_test = (part.aabb_width * kSqrt3 * 0.5f) <= r;
    } else {
      part.aabb_width = std::min(knn_aabb_width(slopped, params.conservative_knn_aabb),
                                 2.0f * r);
      part.skip_sphere_test = false;  // KNN always measures exact distance
    }

    const double a = static_cast<double>(part.megacell_width);
    part.density = static_cast<double>(k) / (a * a * a);
    part.query_ids = std::move(buckets[b]);
    set.partitions.push_back(std::move(part));
  }

  set.seconds = timer.elapsed();
  return set;
}

}  // namespace rtnn
