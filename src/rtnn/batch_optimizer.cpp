#include "rtnn/batch_optimizer.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/aabb.hpp"
#include "core/morton.hpp"
#include "core/parallel.hpp"
#include "core/sort.hpp"
#include "core/timing.hpp"

namespace rtnn {

namespace {

/// A bin while it is being assembled: the merged arrival-order rows live
/// here until finalize copies the survivors into bin.queries.
struct BinBuild {
  BatchBin bin;
  std::vector<Vec3> merged;
};

/// The dedup transfer guard: a representative's result is provably a
/// duplicate's result only for bitwise-coincident positions (value
/// equality; ±0 coincide and compute identical distances). Anything
/// merely near a representative stays its own exact search.
inline bool coincident(const Vec3& a, const Vec3& b) {
  return a.x == b.x && a.y == b.y && a.z == b.z;
}

/// Morton code of the grid cell holding `p`. Cells are `cell_width` wide,
/// anchored at the bin's lower bound; coordinates clamp to the 21-bit
/// Morton domain (clamping only coarsens far cells — dedup stays exact,
/// it compares positions, never cells).
inline std::uint64_t cell_key(const Vec3& p, const Vec3& lo, float cell_width) {
  constexpr std::uint32_t kMaxCell = (1u << 21) - 1;
  auto cell = [&](float v, float anchor) -> std::uint32_t {
    if (cell_width <= 0.0f) return 0;
    const float t = (v - anchor) / cell_width;
    if (t <= 0.0f) return 0;
    const auto c = static_cast<std::uint32_t>(t);
    return std::min(c, kMaxCell);
  };
  return morton3d_63(cell(p.x, lo.x), cell(p.y, lo.y), cell(p.z, lo.z));
}

void finalize_bin(BinBuild& build, const BatchOptimizerOptions& options) {
  BatchBin& bin = build.bin;
  const std::vector<Vec3>& merged = build.merged;
  const std::size_t n = merged.size();
  bin.merged_queries = n;
  bin.rep_rows.resize(n);
  if (n == 0) return;

  // The reorder/dedup grid: radius-derived cells (dedup_cell_scale · r),
  // widened when the bin spans more than 2^21 cells per axis.
  std::vector<std::uint64_t> keys;
  if (options.reorder || options.dedup) {
    Aabb bounds;
    for (const Vec3& q : merged) bounds.grow(q);
    const float scale = options.dedup_cell_scale > 0.0f ? options.dedup_cell_scale : 1.0f;
    const Vec3 extent = bounds.extent();
    const float span = std::max({extent.x, extent.y, extent.z, 0.0f});
    const float cell_width = std::max(bin.params.radius * scale,
                                      span / static_cast<float>(1u << 21));
    keys.resize(n);
    parallel_for(0, static_cast<std::int64_t>(n), [&](std::int64_t i) {
      keys[static_cast<std::size_t>(i)] =
          cell_key(merged[static_cast<std::size_t>(i)], bounds.lo, cell_width);
    }, grain::kElementwise);
  }

  // Visit order decides representative order (what the backend searches):
  // Morton-of-cell when reordering, arrival order otherwise. The radix
  // sort is stable, so coincident rows keep arrival order within a cell
  // and the elected representative is deterministic.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  if (options.reorder) radix_sort_pairs(keys, order);  // keys sorted alongside

  bin.queries.reserve(n);
  auto elect = [&](std::uint32_t row, std::vector<std::uint32_t>& cell_reps) {
    for (const std::uint32_t rep : cell_reps) {
      if (coincident(bin.queries[rep], merged[row])) {
        bin.rep_rows[row] = rep;
        ++bin.deduped;
        return;
      }
    }
    const auto rep = static_cast<std::uint32_t>(bin.queries.size());
    bin.queries.push_back(merged[row]);
    bin.rep_rows[row] = rep;
    cell_reps.push_back(rep);
  };

  if (!options.dedup) {
    // Every row is its own representative, in visit order.
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t row = order[i];
      bin.rep_rows[row] = static_cast<std::uint32_t>(bin.queries.size());
      bin.queries.push_back(merged[row]);
    }
  } else if (options.reorder) {
    // Sorted visit: a cell is one contiguous run of equal keys.
    std::vector<std::uint32_t> run_reps;
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && keys[i] != keys[i - 1]) run_reps.clear();
      elect(order[i], run_reps);
    }
  } else {
    // Arrival-order visit: bucket cells by key.
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells;
    cells.reserve(n);
    for (std::size_t row = 0; row < n; ++row) elect(static_cast<std::uint32_t>(row), cells[keys[row]]);
  }
}

}  // namespace

BatchPlan optimize_batch(std::span<const BatchRequest> requests,
                         const BatchOptimizerOptions& options) {
  Timer timer;
  BatchPlan plan;
  std::vector<BinBuild> builds;
  // The open (most recent) bin of each distinct key; linear scan — a tick
  // holds a handful of distinct param sets, not thousands.
  std::vector<std::pair<BatchKey, std::size_t>> open;

  for (std::size_t r = 0; r < requests.size(); ++r) {
    const BatchRequest& request = requests[r];
    const BatchKey key = request.params.batch_key();
    const std::size_t rows = request.queries.size();

    BinBuild* target = nullptr;
    for (auto& [open_key, index] : open) {
      if (!(open_key == key)) continue;
      BinBuild& candidate = builds[index];
      // The per-bin cap starts a fresh bin rather than splitting a
      // request; an oversized request still gets a bin of its own.
      if (options.max_bin_queries == 0 || candidate.merged.empty() ||
          candidate.merged.size() + rows <= options.max_bin_queries) {
        target = &candidate;
      } else {
        index = builds.size();  // retire the full bin for this key
      }
      break;
    }
    if (target == nullptr) {
      if (std::none_of(open.begin(), open.end(),
                       [&](const auto& entry) { return entry.first == key; })) {
        open.emplace_back(key, builds.size());
      }
      builds.emplace_back();
      target = &builds.back();
      target->bin.params = request.params;
    }

    target->bin.slices.push_back({target->merged.size(), rows});
    target->bin.request_ids.push_back(r);
    target->merged.insert(target->merged.end(), request.queries.begin(),
                          request.queries.end());
  }

  plan.bins.reserve(builds.size());
  for (BinBuild& build : builds) {
    finalize_bin(build, options);
    plan.deduped += build.bin.deduped;
    plan.bins.push_back(std::move(build.bin));
  }
  plan.seconds = timer.elapsed();
  return plan;
}

}  // namespace rtnn
