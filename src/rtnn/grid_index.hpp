// Uniform grid with a 3D summed-area table over per-cell point counts.
//
// Section 5.1's megacell computation needs, for every query, the number of
// points inside an iteratively growing box of cells. We precompute a 3D
// summed-area table (SAT) of the cell histogram so any axis-aligned box of
// cells is counted in O(1) — the CUDA original achieves the same effect
// with its growth kernel; the SAT keeps the CPU substitute's megacell
// phase from dominating.
//
// "An important parameter is the grid resolution ... we use the smallest
// cell size allowed by the GPU memory capacity" — expressed here as
// `max_cells`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/aabb.hpp"
#include "core/vec3.hpp"

namespace rtnn {

class GridIndex {
 public:
  /// Builds the histogram + SAT over `points` with cubic cells, choosing
  /// the finest resolution with at most `max_cells` cells.
  void build(std::span<const Vec3> points, std::uint64_t max_cells);

  bool built() const { return !sat_.empty(); }
  float cell_size() const { return cell_size_; }
  const Aabb& bounds() const { return bounds_; }
  Int3 resolution() const { return res_; }

  /// Grid coordinates of `p`, clamped into the grid.
  Int3 cell_of(const Vec3& p) const;

  /// Number of points in the inclusive cell box [lo, hi] (clamped).
  std::uint64_t count_in_box(Int3 lo, Int3 hi) const;

  /// Total number of points indexed.
  std::uint64_t total() const;

 private:
  std::uint64_t sat_at(int x, int y, int z) const {
    // sat_ has dims (res+1)^3; index (x,y,z) = inclusive prefix up to cell
    // (x-1,y-1,z-1).
    return sat_[(static_cast<std::size_t>(z) * static_cast<std::size_t>(res_.y + 1) +
                 static_cast<std::size_t>(y)) *
                    static_cast<std::size_t>(res_.x + 1) +
                static_cast<std::size_t>(x)];
  }

  Aabb bounds_;
  Int3 res_{0, 0, 0};
  float cell_size_ = 0.0f;
  std::vector<std::uint64_t> sat_;
};

}  // namespace rtnn
