#include "rtnn/sharding.hpp"

#include <algorithm>
#include <limits>

#include "core/error.hpp"
#include "core/flat_knn.hpp"
#include "core/morton.hpp"
#include "core/sort.hpp"

namespace rtnn {

std::uint32_t plan_shard_count(std::size_t points, std::size_t shard_threshold,
                               std::uint32_t max_shards) {
  if (shard_threshold == 0 || points <= shard_threshold) return 1;
  const std::size_t wanted = (points + shard_threshold - 1) / shard_threshold;
  // 0 = unbounded, the codebase-wide "0 = no cap" contract (CloudConfig's
  // max_shards / max_bin_queries, TileOptions::max_tiles). The split is
  // still bounded by the point count in plan_shards.
  if (max_shards == 0) {
    return static_cast<std::uint32_t>(std::min<std::size_t>(
        wanted, std::numeric_limits<std::uint32_t>::max()));
  }
  return static_cast<std::uint32_t>(std::min<std::size_t>(wanted, max_shards));
}

ShardPlan plan_shards(std::span<const Vec3> points, std::uint32_t num_shards) {
  RTNN_CHECK(!points.empty(), "cannot shard an empty cloud");
  const std::size_t n = points.size();
  num_shards = static_cast<std::uint32_t>(
      std::min<std::size_t>(std::max<std::uint32_t>(num_shards, 1), n));

  ShardPlan plan;
  plan.point_count = n;
  for (const Vec3& p : points) plan.cloud_bounds.grow(p);

  if (num_shards == 1) {
    // One shard keeps the identity order, so a ShardedBackend over it
    // delegates byte-identically to the inner backend (local ids == the
    // caller's ids; no remap, no gather).
    ShardPlan::Shard shard;
    shard.point_ids.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      shard.point_ids[i] = static_cast<std::uint32_t>(i);
    }
    shard.bounds = plan.cloud_bounds;
    plan.shards.push_back(std::move(shard));
    return plan;
  }

  // Morton-sort the ids (the LBVH/scheduler ordering), then cut the
  // sorted sequence into contiguous near-equal runs: each run is a
  // compact Z-order region.
  std::vector<std::uint64_t> codes(n);
  std::vector<std::uint32_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) {
    codes[i] = morton3d_63(points[i], plan.cloud_bounds);
    ids[i] = static_cast<std::uint32_t>(i);
  }
  radix_sort_pairs(codes, ids);

  plan.shards.resize(num_shards);
  const std::size_t base = n / num_shards;
  const std::size_t extra = n % num_shards;
  std::size_t next = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const std::size_t count = base + (s < extra ? 1 : 0);
    ShardPlan::Shard& shard = plan.shards[s];
    shard.point_ids.assign(ids.begin() + static_cast<std::ptrdiff_t>(next),
                           ids.begin() + static_cast<std::ptrdiff_t>(next + count));
    for (const std::uint32_t id : shard.point_ids) shard.bounds.grow(points[id]);
    next += count;
  }
  return plan;
}

float aabb_distance2(const Aabb& box, const Vec3& p) {
  if (box.empty()) return std::numeric_limits<float>::infinity();
  float d2 = 0.0f;
  for (int axis = 0; axis < 3; ++axis) {
    const float v = p[axis];
    const float d = v < box.lo[axis] ? box.lo[axis] - v
                    : v > box.hi[axis] ? v - box.hi[axis]
                                       : 0.0f;
    d2 += d * d;
  }
  return d2;
}

ShardRoute route_queries(const ShardPlan& plan, std::span<const Vec3> queries,
                         float radius) {
  ShardRoute route;
  route.rows.resize(plan.shards.size());
  const float r2 = radius * radius;
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    const Aabb& bounds = plan.shards[s].bounds;
    std::vector<std::uint32_t>& rows = route.rows[s];
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (aabb_distance2(bounds, queries[q]) <= r2) {
        rows.push_back(static_cast<std::uint32_t>(q));
      }
    }
    route.fanout += rows.size();
  }
  return route;
}

NeighborResult gather_shard_results(std::span<const Vec3> points,
                                    std::span<const Vec3> queries,
                                    const SearchParams& params,
                                    std::span<const ShardPartial> partials) {
  const std::size_t num_queries = queries.size();
  const std::uint32_t k = params.k;

  if (!params.store_indices) {
    // Counts only: shards partition the points, so per-query counts sum;
    // the clamp at K reproduces the unsharded truncation exactly — a
    // shard only reports K when it already holds >= K in-radius points,
    // in which case the true total is >= K too.
    NeighborResult merged(num_queries, k, /*store_indices=*/false);
    for (const ShardPartial& partial : partials) {
      for (std::size_t i = 0; i < partial.rows->size(); ++i) {
        std::uint32_t& count = merged.count_ref((*partial.rows)[i]);
        count = std::min<std::uint32_t>(k, count + partial.result.count(i));
      }
    }
    return merged;
  }

  if (params.mode == SearchMode::kKnn) {
    // Global top-K = top-K of the union of per-shard top-Ks (every
    // global winner is among its own shard's K nearest). Distances are
    // recomputed from the global cloud; extract() orders each row
    // ascending by (distance, id).
    FlatKnnHeaps heaps(num_queries, k);
    for (const ShardPartial& partial : partials) {
      for (std::size_t i = 0; i < partial.rows->size(); ++i) {
        const std::uint32_t row = (*partial.rows)[i];
        for (const std::uint32_t local : partial.result.neighbors(i)) {
          const std::uint32_t global = (*partial.point_ids)[local];
          heaps.push(row, distance2(points[global], queries[row]), global);
        }
      }
    }
    return heaps.extract(/*store_indices=*/true);
  }

  // Range: the per-shard sets are disjoint, so the union is their
  // concatenation; canonical ascending-id order makes the merged result
  // deterministic regardless of shard count (and an exact set whenever
  // K is not exceeded — which K survive a truncation is backend-defined,
  // per the SearchBackend contract).
  std::vector<std::vector<std::uint32_t>> per_query(num_queries);
  for (const ShardPartial& partial : partials) {
    for (std::size_t i = 0; i < partial.rows->size(); ++i) {
      std::vector<std::uint32_t>& sink = per_query[(*partial.rows)[i]];
      for (const std::uint32_t local : partial.result.neighbors(i)) {
        sink.push_back((*partial.point_ids)[local]);
      }
    }
  }
  NeighborResult merged(num_queries, k, /*store_indices=*/true);
  for (std::size_t q = 0; q < num_queries; ++q) {
    std::vector<std::uint32_t>& ids = per_query[q];
    std::sort(ids.begin(), ids.end());
    for (const std::uint32_t id : ids) {
      if (merged.record(q, id) == k) break;
    }
  }
  return merged;
}

}  // namespace rtnn
