// Umbrella header: the full public API of the RTNN library.
//
//   #include "rtnn/rtnn.hpp"
//
//   rtnn::SearchParams params;
//   params.mode = rtnn::SearchMode::kKnn;
//   params.radius = 0.05f;
//   params.k = 16;
//   rtnn::NeighborSearch ns;
//   ns.set_points(points);
//   rtnn::NeighborResult result = ns.search(queries, params);
//
// See README.md for the architecture overview and examples/ for complete
// programs.
#pragma once

#include "core/neighbor_result.hpp"
#include "core/timing.hpp"
#include "core/vec3.hpp"
#include "rtnn/cost_model.hpp"
#include "rtnn/neighbor_search.hpp"
#include "rtnn/partitioner.hpp"
#include "rtnn/scheduler.hpp"
#include "rtnn/stages.hpp"
#include "rtnn/types.hpp"
