#include "rtnn/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "core/parallel.hpp"

#include "core/error.hpp"

namespace rtnn {

void GridIndex::build(std::span<const Vec3> points, std::uint64_t max_cells) {
  RTNN_CHECK(!points.empty(), "cannot index zero points");
  RTNN_CHECK(max_cells >= 8, "max_cells too small");

  bounds_ = Aabb{};
  for (const Vec3& p : points) bounds_.grow(p);
  const float pad = std::max(1e-6f, 1e-5f * max_component(bounds_.extent()));
  bounds_ = bounds_.expanded(pad);
  const Vec3 extent = bounds_.extent();

  // Finest cubic cell size with at most max_cells cells: start from the
  // equal-volume estimate and coarsen until the product fits.
  const double volume = static_cast<double>(extent.x) * extent.y * extent.z;
  float cell = static_cast<float>(std::cbrt(volume / static_cast<double>(max_cells)));
  if (!(cell > 0.0f)) cell = 1e-6f;
  for (;;) {
    std::uint64_t total_cells = 1;
    for (int axis = 0; axis < 3; ++axis) {
      const auto n = static_cast<std::uint64_t>(
          std::max(1.0f, std::ceil(extent[axis] / cell)));
      res_[axis] = static_cast<int>(n);
      total_cells *= n;
    }
    if (total_cells <= max_cells) break;
    cell *= 1.1f;
  }
  cell_size_ = cell;

  // Histogram of points per cell (per-thread histograms, merged).
  const std::size_t nx = static_cast<std::size_t>(res_.x);
  const std::size_t ny = static_cast<std::size_t>(res_.y);
  const std::size_t nz = static_cast<std::size_t>(res_.z);
  const std::size_t cells = nx * ny * nz;
  std::vector<std::uint32_t> histogram(cells, 0);
  {
    std::mutex merge_mutex;
    parallel_for_chunks(0, static_cast<std::int64_t>(points.size()),
                        [&](std::int64_t lo, std::int64_t hi) {
                          std::vector<std::uint32_t> local(cells, 0);
                          for (std::int64_t i = lo; i < hi; ++i) {
                            const Int3 c = cell_of(points[static_cast<std::size_t>(i)]);
                            ++local[(static_cast<std::size_t>(c.z) * ny +
                                     static_cast<std::size_t>(c.y)) *
                                        nx +
                                    static_cast<std::size_t>(c.x)];
                          }
                          const std::lock_guard<std::mutex> lock(merge_mutex);
                          for (std::size_t c = 0; c < cells; ++c) histogram[c] += local[c];
                        },
                        1 << 16);
  }

  // 3D summed-area table, dims (nx+1)(ny+1)(nz+1):
  // sat(x,y,z) = #points in cells [0,x) × [0,y) × [0,z).
  // Built as three separable prefix-sum passes, each parallel over the
  // untouched dimensions.
  sat_.assign((nx + 1) * (ny + 1) * (nz + 1), 0);
  const std::size_t sx = nx + 1;
  const std::size_t sy = ny + 1;
  auto sat_index = [&](std::size_t x, std::size_t y, std::size_t z) {
    return (z * sy + y) * sx + x;
  };
  // Seed with the histogram shifted by (1,1,1).
  parallel_for(0, static_cast<std::int64_t>(nz), [&](std::int64_t z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        sat_[sat_index(x + 1, y + 1, static_cast<std::size_t>(z) + 1)] =
            histogram[((static_cast<std::size_t>(z)) * ny + y) * nx + x];
      }
    }
  }, 1);
  // Prefix along x.
  parallel_for(0, static_cast<std::int64_t>(nz + 1), [&](std::int64_t z) {
    for (std::size_t y = 0; y <= ny; ++y) {
      std::uint64_t run = 0;
      for (std::size_t x = 0; x <= nx; ++x) {
        run += sat_[sat_index(x, y, static_cast<std::size_t>(z))];
        sat_[sat_index(x, y, static_cast<std::size_t>(z))] = run;
      }
    }
  }, 1);
  // Prefix along y.
  parallel_for(0, static_cast<std::int64_t>(nz + 1), [&](std::int64_t z) {
    for (std::size_t x = 0; x <= nx; ++x) {
      std::uint64_t run = 0;
      for (std::size_t y = 0; y <= ny; ++y) {
        run += sat_[sat_index(x, y, static_cast<std::size_t>(z))];
        sat_[sat_index(x, y, static_cast<std::size_t>(z))] = run;
      }
    }
  }, 1);
  // Prefix along z.
  parallel_for(0, static_cast<std::int64_t>(ny + 1), [&](std::int64_t y) {
    for (std::size_t x = 0; x <= nx; ++x) {
      std::uint64_t run = 0;
      for (std::size_t z = 0; z <= nz; ++z) {
        run += sat_[sat_index(x, static_cast<std::size_t>(y), z)];
        sat_[sat_index(x, static_cast<std::size_t>(y), z)] = run;
      }
    }
  }, 1);
}

Int3 GridIndex::cell_of(const Vec3& p) const {
  Int3 c;
  for (int axis = 0; axis < 3; ++axis) {
    const float t = (p[axis] - bounds_.lo[axis]) / cell_size_;
    c[axis] = std::clamp(static_cast<int>(std::floor(t)), 0, res_[axis] - 1);
  }
  return c;
}

std::uint64_t GridIndex::count_in_box(Int3 lo, Int3 hi) const {
  for (int axis = 0; axis < 3; ++axis) {
    lo[axis] = std::max(lo[axis], 0);
    hi[axis] = std::min(hi[axis], res_[axis] - 1);
    if (lo[axis] > hi[axis]) return 0;
  }
  const int x0 = lo.x, y0 = lo.y, z0 = lo.z;
  const int x1 = hi.x + 1, y1 = hi.y + 1, z1 = hi.z + 1;
  return sat_at(x1, y1, z1) - sat_at(x0, y1, z1) - sat_at(x1, y0, z1) - sat_at(x1, y1, z0) +
         sat_at(x0, y0, z1) + sat_at(x0, y1, z0) + sat_at(x1, y0, z0) - sat_at(x0, y0, z0);
}

std::uint64_t GridIndex::total() const {
  return sat_at(res_.x, res_.y, res_.z);
}

}  // namespace rtnn
