// Query partitioning via megacells (paper section 5.1).
//
// For each query, grow a box of grid cells ("megacell") outward from the
// query's cell until it contains at least K points or would pierce the
// r-sphere; queries with equal growth depth form a partition, and each
// partition gets the smallest AABB width that preserves correctness:
//
//   * range search: any point whose AABB (width w, centered on the point)
//     contains the query is reported — safe if w is the megacell width
//     (+1 cell of slop because the query sits anywhere inside its central
//     cell, a refinement over the paper's width which we document in
//     DESIGN.md). The sphere test is elided when w·√3/2 ≤ r, i.e. the
//     megacell cannot poke out of the sphere (section 5.1's "significant
//     performance gains").
//
//   * KNN search: the K nearest neighbors are contained in the megacell's
//     circumsphere (Figure 10c); the conservative width is √3·a, the
//     paper's equi-volume heuristic is w = 2·cbrt(3/(4π))·a. Partitions
//     whose megacell hit the sphere bound fall back to w = 2r.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/vec3.hpp"
#include "rtnn/grid_index.hpp"
#include "rtnn/types.hpp"

namespace rtnn {

struct Partition {
  /// Megacell growth steps shared by the partition's queries.
  std::uint32_t steps = 0;
  /// Megacell width a = (2·steps+1)·cell.
  float megacell_width = 0.0f;
  /// AABB width used to build this partition's BVH.
  float aabb_width = 0.0f;
  /// Range search only: the sphere test can be skipped (w·√3/2 ≤ r).
  bool skip_sphere_test = false;
  /// Megacell reached the sphere bound before finding K points.
  bool hit_sphere_limit = false;
  /// Point density estimate ρ = K / a³ (paper section 5.2).
  double density = 0.0;
  /// Query ids, in scheduled order.
  std::vector<std::uint32_t> query_ids;
};

struct PartitionSet {
  std::vector<Partition> partitions;
  /// Grid cell size used (megacell widths are odd multiples of it).
  float cell_size = 0.0f;
  /// Wall time of megacell computation + bucketing (Opt phase).
  double seconds = 0.0;
};

/// Partitions `queries` (visited in `order`; pass the scheduled order so
/// partitions inherit spatial coherence) against the point grid.
PartitionSet partition_queries(const GridIndex& grid, std::span<const Vec3> queries,
                               std::span<const std::uint32_t> order,
                               const SearchParams& params);

/// The AABB width for a KNN partition of megacell width `a`:
/// equi-volume heuristic 2·cbrt(3/(4π))·a, or conservative √3·a.
float knn_aabb_width(float megacell_width, bool conservative);

}  // namespace rtnn
