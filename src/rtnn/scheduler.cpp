#include "rtnn/scheduler.hpp"

#include <numeric>

#include "core/morton.hpp"
#include "core/parallel.hpp"
#include "core/sort.hpp"
#include "core/timing.hpp"
#include "rtnn/pipelines.hpp"

namespace rtnn {

ScheduleResult schedule_queries(const ox::Accel& accel, std::span<const Vec3> points,
                                std::span<const Vec3> queries, bool simt_launch,
                                bool use_compressed) {
  ScheduleResult result;
  const std::size_t n = queries.size();
  result.order.resize(n);
  std::iota(result.order.begin(), result.order.end(), 0u);
  if (n == 0) return result;

  // First ray-tracing launch: return on first hit (Listing 2, line 3).
  std::vector<std::uint32_t> first_hit(n, pipelines::FirstHitPipeline::kNoHit);
  {
    Timer timer;
    pipelines::FirstHitPipeline pipeline(queries, first_hit);
    ox::LaunchOptions options;
    options.model = simt_launch ? ox::ExecutionModel::kWarpLockstep
                                : ox::ExecutionModel::kIndependent;
    options.use_compressed_bvh = use_compressed;
    result.first_hit_stats = ox::launch(accel, pipeline, static_cast<std::uint32_t>(n), options);
    result.first_hit_seconds = timer.elapsed();
  }

  // Z-order sort of the first-hit AABB centers (= the points themselves),
  // used as the sort key for the queries (Figure 9).
  Timer timer;
  const Aabb scene = accel.scene_bounds();
  std::vector<std::uint64_t> keys(n);
  parallel_for(0, static_cast<std::int64_t>(n), [&](std::int64_t i) {
    const std::uint32_t hit = first_hit[static_cast<std::size_t>(i)];
    const Vec3 anchor = (hit == pipelines::FirstHitPipeline::kNoHit)
                            ? queries[static_cast<std::size_t>(i)]
                            : points[hit];
    keys[static_cast<std::size_t>(i)] = morton3d_63(anchor, scene);
  });
  radix_sort_pairs(keys, result.order);
  result.sort_seconds = timer.elapsed();
  return result;
}

}  // namespace rtnn
