#include "rtnn/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.hpp"
#include "core/flat_knn.hpp"
#include "core/neighbor_result.hpp"
#include "core/timing.hpp"
#include "rtnn/pipelines.hpp"

namespace rtnn {

namespace {

constexpr float kSqrt3 = 1.7320508f;

// Search cost of a set of partitions sharing one BVH of width `width`.
double bundle_search_cost(std::span<const std::uint32_t> members, const PartitionSet& set,
                          float width, const SearchParams& params, const CostModel& model) {
  if (params.mode == SearchMode::kKnn) {
    // k2 · Σ(N_j ρ_j) · S³  (paper eq. 5's left-hand side)
    double nrho = 0.0;
    for (const std::uint32_t i : members) {
      const Partition& p = set.partitions[i];
      nrho += static_cast<double>(p.query_ids.size()) * p.density;
    }
    const double s = static_cast<double>(width);
    return model.k2 * nrho * s * s * s;
  }
  // Range: k3 · N · K, with the cheap k3 only if the merged width still
  // guarantees containment in the sphere.
  const bool skip = (width * kSqrt3 * 0.5f) <= params.radius;
  const double k3 = skip ? model.k3_fast : model.k3_slow;
  std::uint64_t n = 0;
  for (const std::uint32_t i : members) n += set.partitions[i].query_ids.size();
  return k3 * static_cast<double>(n) * static_cast<double>(params.k);
}

Bundle make_bundle(std::span<const std::uint32_t> members, const PartitionSet& set,
                   const SearchParams& params) {
  Bundle b;
  b.partition_indices.assign(members.begin(), members.end());
  for (const std::uint32_t i : members) {
    const Partition& p = set.partitions[i];
    b.aabb_width = std::max(b.aabb_width, p.aabb_width);
    b.query_count += p.query_ids.size();
  }
  b.skip_sphere_test = (params.mode == SearchMode::kRange) &&
                       (b.aabb_width * kSqrt3 * 0.5f) <= params.radius;
  return b;
}

}  // namespace

IndexUpdate choose_index_update(const CostModel& model, double sah_inflation) {
  if (model.k_refit >= model.k1) return IndexUpdate::kRebuild;
  if (sah_inflation > model.max_sah_inflation) return IndexUpdate::kRebuild;
  return IndexUpdate::kRefit;
}

BundlePlan unbundled_plan(const PartitionSet& set, const SearchParams& params) {
  BundlePlan plan;
  plan.m_opt = static_cast<std::uint32_t>(set.partitions.size());
  for (std::uint32_t i = 0; i < set.partitions.size(); ++i) {
    const std::uint32_t members[] = {i};
    plan.bundles.push_back(make_bundle(members, set, params));
  }
  return plan;
}

double predict_cost(const BundlePlan& plan, const PartitionSet& set, std::size_t n_points,
                    const SearchParams& params, const CostModel& model) {
  double cost = 0.0;
  for (const Bundle& b : plan.bundles) {
    cost += model.k1 * static_cast<double>(n_points);  // T_build = k1 · M
    cost += bundle_search_cost(b.partition_indices, set, b.aabb_width, params, model);
  }
  return cost;
}

BundlePlan plan_bundles(const PartitionSet& set, std::size_t n_points,
                        const SearchParams& params, const CostModel& model) {
  const std::size_t m = set.partitions.size();
  if (m <= 1) {
    BundlePlan plan = unbundled_plan(set, params);
    plan.predicted_seconds = predict_cost(plan, set, n_points, params, model);
    return plan;
  }

  // Partitions in ascending query-count order (Supp. C).
  std::vector<std::uint32_t> by_count(m);
  std::iota(by_count.begin(), by_count.end(), 0u);
  std::stable_sort(by_count.begin(), by_count.end(), [&](std::uint32_t a, std::uint32_t b) {
    return set.partitions[a].query_ids.size() < set.partitions[b].query_ids.size();
  });

  // For each M_o: merge the (m - M_o + 1) least-populous partitions,
  // keep the (M_o - 1) most-populous separate.
  BundlePlan best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::uint32_t m_opt = 1; m_opt <= m; ++m_opt) {
    const std::size_t merged_count = m - m_opt + 1;
    BundlePlan plan;
    plan.m_opt = m_opt;
    plan.bundles.push_back(
        make_bundle(std::span<const std::uint32_t>(by_count.data(), merged_count), set,
                    params));
    for (std::size_t i = merged_count; i < m; ++i) {
      const std::uint32_t members[] = {by_count[i]};
      plan.bundles.push_back(make_bundle(members, set, params));
    }
    const double cost = predict_cost(plan, set, n_points, params, model);
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(plan);
    }
  }
  best.predicted_seconds = best_cost;
  return best;
}

CostModel CostModel::calibrate(std::span<const Vec3> sample_points, float radius,
                               std::uint32_t k) {
  RTNN_CHECK(sample_points.size() >= 1000, "calibration sample too small");
  RTNN_CHECK(radius > 0.0f, "radius must be positive");
  CostModel model;

  // --- k1: BVH build seconds per AABB ---
  std::vector<Aabb> aabbs(sample_points.size());
  for (std::size_t i = 0; i < sample_points.size(); ++i) {
    aabbs[i] = Aabb::cube(sample_points[i], 2.0f * radius);
  }
  const ox::Context ctx;
  Timer build_timer;
  ox::Accel accel = ctx.build_accel(aabbs);
  const double t_build = build_timer.elapsed();
  model.k1 = t_build / static_cast<double>(sample_points.size());

  // --- k_refit: in-place accel update per AABB. Motion-independent (the
  // sweep touches every node either way), so refitting with the same
  // positions measures it faithfully — through the point-cloud fast path
  // the per-frame lifecycle actually uses.
  {
    Timer refit_timer;
    accel.refit(sample_points, 2.0f * radius);
    model.k_refit = refit_timer.elapsed() / static_cast<double>(sample_points.size());
  }

  // Queries = the sample points themselves (self-neighborhoods, the
  // common workload shape).
  const std::size_t nq = std::min<std::size_t>(sample_points.size(), 100'000);
  const std::span<const Vec3> queries = sample_points.subspan(0, nq);

  // --- k2: KNN IS call (measured through a local probe pipeline) ---
  struct KnnProbe {
    std::span<const Vec3> points;
    std::span<const Vec3> queries;
    float r2;
    FlatKnnHeaps* heaps;
    Ray raygen(std::uint32_t i) const { return Ray::short_ray(queries[i]); }
    ox::TraceAction intersection(std::uint32_t i, std::uint32_t prim) {
      const float d2 = distance2(points[prim], queries[i]);
      if (d2 <= r2 && d2 < heaps->worst_dist2(i)) heaps->push(i, d2, prim);
      return ox::TraceAction::kContinue;
    }
  };
  {
    FlatKnnHeaps heaps(nq, k);
    KnnProbe probe{sample_points, queries, radius * radius, &heaps};
    Timer timer;
    const auto stats = ox::launch(accel, probe, static_cast<std::uint32_t>(nq));
    const double t = timer.elapsed();
    if (stats.is_calls > 0) model.k2 = t / static_cast<double>(stats.is_calls);
  }

  // --- k3: range IS call, with and without the sphere test ---
  struct RangeProbe {
    std::span<const Vec3> points;
    std::span<const Vec3> queries;
    float r2;
    bool skip_test;
    std::uint32_t k;
    NeighborResult* result;
    Ray raygen(std::uint32_t i) const { return Ray::short_ray(queries[i]); }
    ox::TraceAction intersection(std::uint32_t i, std::uint32_t prim) {
      if (!skip_test && distance2(points[prim], queries[i]) > r2) {
        return ox::TraceAction::kContinue;
      }
      return result->record(i, prim) >= k ? ox::TraceAction::kTerminate
                                          : ox::TraceAction::kContinue;
    }
  };
  for (const bool skip : {false, true}) {
    NeighborResult result(nq, k, /*store_indices=*/false);
    RangeProbe probe{sample_points, queries, radius * radius, skip, k, &result};
    Timer timer;
    const auto stats = ox::launch(accel, probe, static_cast<std::uint32_t>(nq));
    const double t = timer.elapsed();
    if (stats.is_calls > 0) {
      const double per_call = t / static_cast<double>(stats.is_calls);
      (skip ? model.k3_fast : model.k3_slow) = per_call;
    }
  }

  model.calibrated = true;
  return model;
}

}  // namespace rtnn
