// Public configuration types of the RTNN library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rtnn {

/// The two neighbor-search variants the paper optimizes (section 2.1).
/// Both use the same bounded interface: a search radius and a maximum
/// neighbor count K.
enum class SearchMode : std::uint8_t {
  kRange,  // all neighbors within r, up to K of them
  kKnn,    // the K nearest neighbors, bounded by r
};

/// Which of the paper's optimizations to apply (the Figure 13 ablation
/// axes). Defaults = the full RTNN configuration.
struct OptimizationFlags {
  /// Section 4: spatially-ordered query scheduling (first-hit AABB cast +
  /// Morton sort of queries).
  bool scheduling = true;
  /// Section 5.1: query partitioning via megacells, one BVH per partition.
  bool partitioning = true;
  /// Section 5.2: cost-model-driven bundling of partitions. Only
  /// meaningful when partitioning is on.
  bool bundling = true;

  static OptimizationFlags none() { return {false, false, false}; }
  static OptimizationFlags scheduling_only() { return {true, false, false}; }
  static OptimizationFlags no_bundling() { return {true, true, false}; }
  static OptimizationFlags all() { return {true, true, true}; }
};

/// Two-level (tiled) index configuration: when enabled, the base-width
/// acceleration structure becomes a TLAS over Morton-contiguous spatial
/// tiles, each owning its own bottom-level BVH — index updates become
/// per-tile decisions (a moving vehicle touches a handful of tiles
/// instead of refitting the monolith) and tiles can build lazily on
/// first route. Candidate sets are identical to the monolithic index by
/// construction. Tiling replaces megacell query partitioning when
/// active: both are spatial decompositions of the same launch, so
/// search() disables partitioning/bundling rather than stacking them.
struct TileOptions {
  /// Points per tile the planner aims for; clouds at or below this stay
  /// monolithic. 0 = tiling off (the default — monolithic semantics and
  /// timing profile are unchanged).
  std::size_t tile_threshold = 0;
  /// Upper bound on the tile count, whatever the cloud size.
  /// 0 = unbounded (the codebase-wide "0 = no cap" contract).
  std::uint32_t max_tiles = 0;
  /// Build each tile's bottom-level index on its first routed ray
  /// instead of at set_points() time (build-on-first-route; the deferred
  /// cost lands inside the first launch that reaches the tile).
  bool lazy_build = true;

  bool enabled() const { return tile_threshold > 0; }
};

/// The answer-shaping subset of SearchParams: two requests whose keys
/// compare equal are guaranteed the same results from one merged launch,
/// regardless of how their pipeline-shaping fields (OptimizationFlags,
/// simt_launches, max_grid_cells — exactness-preserving by contract)
/// differ. This is the one definition of "batchable" shared by the
/// serving dispatcher and the batch optimizer's sub-batch splitter
/// (SearchParams::batch_key()); there is no second hand-rolled
/// field-by-field comparison to drift from it.
struct BatchKey {
  SearchMode mode = SearchMode::kRange;
  float radius = 1.0f;
  std::uint32_t k = 16;
  bool store_indices = true;
  bool conservative_knn_aabb = false;
  float aabb_scale = 1.0f;
  bool elide_sphere_test = false;

  friend bool operator==(const BatchKey&, const BatchKey&) = default;
};

struct SearchParams {
  SearchMode mode = SearchMode::kRange;
  float radius = 1.0f;      // search radius r
  std::uint32_t k = 16;     // maximum neighbor count K
  OptimizationFlags opts{};

  /// Store neighbor indices (true) or only per-query counts (false; saves
  /// Q*K*4 bytes on the largest benchmark runs).
  bool store_indices = true;

  /// Megacell grid: maximum number of cells, the "smallest cell size
  /// allowed by the GPU memory capacity" knob of section 5.1.
  std::uint64_t max_grid_cells = std::uint64_t{1} << 21;

  /// KNN partition AABB width: the paper's equi-volume heuristic
  /// w = 2·cbrt(3/(4π))·a (default) or the conservative √3·a bound that
  /// guarantees exactness (section 5.1, "Determining AABB Size").
  bool conservative_knn_aabb = false;

  /// Use the warp-lockstep SIMT execution model for launches (slower,
  /// enables divergence/occupancy counters; characterization runs only).
  bool simt_launches = false;

  /// Traverse the quantized compressed wide-BVH layout on independent
  /// launches (the production default; ~1/3 the node bytes, identical
  /// candidate sets). Clear to traverse the FP32 SoA nodes — the
  /// configuration the default cost-model constants were calibrated
  /// against. Pipeline-shaping, like simt_launches: excluded from
  /// batch_key() because it cannot change any result.
  bool use_compressed_bvh = true;

  // --- Approximate search (paper section 8, "Approximate Neighbor
  // Search") ---

  /// Scales every AABB width below what exactness requires (< 1.0 =
  /// approximate). "Using a smaller AABB would reduce the number of
  /// neighbors returned but also provide performance gains."
  float aabb_scale = 1.0f;

  /// Elides Step 2 entirely, treating any query inside a point's AABB as
  /// a neighbor. Range search only. Returned neighbors are then within
  /// sqrt(3)*r of the query (the paper's quantitative error bound).
  bool elide_sphere_test = false;

  /// The fields that shape the answer (see BatchKey): requests with equal
  /// keys may share one launch without changing any per-request result.
  BatchKey batch_key() const {
    return {mode,  radius,     k,
            store_indices, conservative_knn_aabb, aabb_scale,
            elide_sphere_test};
  }
};

}  // namespace rtnn
