// Frame-sequence motion models for dynamic point clouds.
//
// The paper's headline workloads are *sequences*: lidar frames from a
// moving vehicle, SPH particles advancing a timestep, N-body snapshots.
// These generators produce deterministic frame streams over the static
// datasets so the dynamic index lifecycle (build / refit / rebuild) can be
// exercised and benchmarked:
//
//   * DriftMotion — per-point persistent velocities plus white jitter,
//     reflected off the initial bounds. Point identity is preserved and
//     per-frame displacement is small: the refit-friendly regime
//     (SPH/N-body-like).
//   * LidarSweep — the same procedural street re-scanned from a scanner
//     advanced along it each frame. Equal-size frames with *no* per-point
//     correspondence: the regime where refit quality collapses and the
//     cost model's policy must rebuild.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "datasets/lidar.hpp"
#include "datasets/point_cloud.hpp"

namespace rtnn::data {

struct DriftParams {
  /// Per-frame RMS displacement, in cloud units. For a refit-friendly
  /// sequence keep this a small fraction of the search radius.
  float velocity = 0.01f;
  /// Fraction of `velocity` applied as fresh Gaussian noise each frame on
  /// top of the persistent per-point velocity (0 = pure ballistic drift).
  float jitter = 0.25f;
  std::uint64_t seed = 7;
};

/// Jittered drift over a fixed point population. Velocities are drawn
/// once; each step() advances every point and reflects it at the initial
/// bounding box, so the density stays stationary over arbitrarily many
/// frames (no dispersal, no drift of the working set out of the scene).
class DriftMotion {
 public:
  DriftMotion(PointCloud initial, const DriftParams& params = {});

  /// Advances one frame in place and returns the new positions.
  const PointCloud& step();

  const PointCloud& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

 private:
  PointCloud points_;
  std::vector<Vec3> velocity_;
  Aabb box_;
  DriftParams params_;
  Pcg32 rng_;
};

/// Consecutive spinning-lidar sweeps of one street scene: frame t is
/// lidar_scan() of the same world (same seed, same clutter) with the
/// vehicle advanced t * frame_advance meters. Every frame has exactly
/// base.target_points points; successive frames overlap heavily but share
/// no per-point correspondence.
class LidarSweep {
 public:
  explicit LidarSweep(const LidarParams& base, float frame_advance_m = 1.5f)
      : base_(base), frame_advance_(frame_advance_m) {}

  PointCloud frame(std::uint32_t t) const;
  std::size_t frame_size() const { return base_.target_points; }

 private:
  LidarParams base_;
  float frame_advance_;
};

}  // namespace rtnn::data
