#include "datasets/surface.hpp"

#include <cmath>

namespace rtnn::data {

namespace {

struct Lobe {
  float amplitude;
  int freq_theta;
  int freq_phi;
  float phase;
};

// Per-model displacement spectra: Bunny = few smooth lobes; Dragon =
// elongated with mid-frequency ridges; Buddha = tall with fine detail.
std::vector<Lobe> model_lobes(SurfaceModel model, Pcg32& rng) {
  std::vector<Lobe> lobes;
  auto add = [&](int n, float amp_lo, float amp_hi, int f_lo, int f_hi) {
    for (int i = 0; i < n; ++i) {
      const auto span = static_cast<std::uint32_t>(f_hi - f_lo + 1);
      lobes.push_back(Lobe{rng.uniform(amp_lo, amp_hi),
                           static_cast<int>(rng.next_bounded(span)) + f_lo,
                           static_cast<int>(rng.next_bounded(span)) + f_lo,
                           rng.uniform(0.0f, 6.2831853f)});
    }
  };
  switch (model) {
    case SurfaceModel::kBunny:
      add(4, 0.08f, 0.20f, 1, 3);
      break;
    case SurfaceModel::kDragon:
      add(3, 0.10f, 0.22f, 1, 3);
      add(6, 0.02f, 0.06f, 4, 9);
      break;
    case SurfaceModel::kBuddha:
      add(3, 0.08f, 0.18f, 1, 2);
      add(10, 0.01f, 0.05f, 5, 13);
      break;
  }
  return lobes;
}

Vec3 model_stretch(SurfaceModel model) {
  switch (model) {
    case SurfaceModel::kBunny: return {1.0f, 0.9f, 1.1f};
    case SurfaceModel::kDragon: return {1.8f, 0.7f, 0.9f};  // elongated body
    case SurfaceModel::kBuddha: return {0.8f, 0.8f, 1.6f};  // tall statue
  }
  return Vec3{1.0f};
}

float scan_noise(SurfaceModel model) {
  switch (model) {
    case SurfaceModel::kBunny: return 0.0015f;
    case SurfaceModel::kDragon: return 0.0010f;
    case SurfaceModel::kBuddha: return 0.0008f;
  }
  return 0.001f;
}

}  // namespace

PointCloud surface_scan(const SurfaceParams& params) {
  Pcg32 rng(params.seed, 0xd15ea5eull);
  const std::vector<Lobe> lobes = model_lobes(params.model, rng);
  const Vec3 stretch = model_stretch(params.model);
  const float noise = scan_noise(params.model);

  PointCloud cloud;
  cloud.reserve(params.target_points);
  while (cloud.size() < params.target_points) {
    // Area-uniform sample on the unit sphere, then radial displacement.
    const Vec3 u = rng.unit_vector();
    const float theta = std::acos(std::clamp(u.z, -1.0f, 1.0f));
    const float phi = std::atan2(u.y, u.x);
    float radius = 1.0f;
    for (const Lobe& lobe : lobes) {
      radius += lobe.amplitude *
                std::sin(static_cast<float>(lobe.freq_theta) * theta + lobe.phase) *
                std::cos(static_cast<float>(lobe.freq_phi) * phi);
    }
    radius = std::max(radius, 0.2f);  // keep the surface star-shaped
    Vec3 p = u * radius;
    p = Vec3{p.x * stretch.x, p.y * stretch.y, p.z * stretch.z};
    // Scanner range noise along the (approximate) normal direction.
    p += u * (rng.normal() * noise);
    cloud.push_back(p);
  }
  // The paper's models are normalized; Buddha explicitly sits in a 1^3 cube.
  fit_to(cloud, Aabb{{0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f}});
  return cloud;
}

PointCloud bunny(double scale, std::uint64_t seed) {
  SurfaceParams p;
  p.model = SurfaceModel::kBunny;
  p.target_points = static_cast<std::size_t>(360'000 * scale);
  p.seed = seed;
  return surface_scan(p);
}

PointCloud dragon(double scale, std::uint64_t seed) {
  SurfaceParams p;
  p.model = SurfaceModel::kDragon;
  p.target_points = static_cast<std::size_t>(3'600'000 * scale);
  p.seed = seed;
  return surface_scan(p);
}

PointCloud buddha(double scale, std::uint64_t seed) {
  SurfaceParams p;
  p.model = SurfaceModel::kBuddha;
  p.target_points = static_cast<std::size_t>(4'600'000 * scale);
  p.seed = seed;
  return surface_scan(p);
}

}  // namespace rtnn::data
