// Plain-text XYZ point-cloud IO, so users can feed real KITTI/Stanford
// data into the examples and benches when they have it on disk.
#pragma once

#include <string>

#include "datasets/point_cloud.hpp"

namespace rtnn::data {

/// Reads whitespace-separated "x y z" lines; '#' starts a comment.
/// Throws rtnn::Error on malformed input or missing file.
PointCloud read_xyz(const std::string& path);

/// Writes one "x y z" line per point.
void write_xyz(const std::string& path, const PointCloud& points);

}  // namespace rtnn::data
