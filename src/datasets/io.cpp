#include "datasets/io.hpp"

#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace rtnn::data {

PointCloud read_xyz(const std::string& path) {
  std::ifstream in(path);
  RTNN_CHECK(in.good(), "cannot open " + path);
  PointCloud cloud;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    Vec3 p;
    if (!(ls >> p.x)) continue;  // blank/comment-only line
    RTNN_CHECK(static_cast<bool>(ls >> p.y >> p.z),
               "malformed XYZ line " + std::to_string(line_no) + " in " + path);
    cloud.push_back(p);
  }
  return cloud;
}

void write_xyz(const std::string& path, const PointCloud& points) {
  std::ofstream out(path);
  RTNN_CHECK(out.good(), "cannot open " + path + " for writing");
  for (const Vec3& p : points) {
    out << p.x << ' ' << p.y << ' ' << p.z << '\n';
  }
  RTNN_CHECK(out.good(), "write failed for " + path);
}

}  // namespace rtnn::data
