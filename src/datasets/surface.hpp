// Synthetic 3D-scan dataset (Stanford Bunny/Dragon/Buddha substitute).
//
// The paper's second dataset family is 3D-scanned models: points sampled
// densely on a closed 2D surface embedded in 3D, occupying the whole 3D
// extent with locally near-uniform surface density. We substitute
// procedurally displaced star-shaped surfaces: a unit sphere whose radius
// is modulated by a per-model set of low-frequency sinusoidal lobes plus
// fine displacement noise. Presets roughly match the paper's models in
// point count and in "how wrinkly" the surface is (Bunny smooth, Dragon
// and Buddha with higher-frequency detail). Clouds are normalized into a
// unit cube, matching the paper's note that "points in Buddha are bounded
// in a 1^3 cube".
#pragma once

#include <cstdint>

#include "datasets/point_cloud.hpp"

namespace rtnn::data {

enum class SurfaceModel { kBunny, kDragon, kBuddha };

struct SurfaceParams {
  SurfaceModel model = SurfaceModel::kBunny;
  std::size_t target_points = 360'000;  // paper: Bunny 360K / Dragon 3.6M / Buddha 4.6M
  std::uint64_t seed = 7;
};

PointCloud surface_scan(const SurfaceParams& params);

/// Paper-preset convenience constructors (point counts scaled by `scale`).
PointCloud bunny(double scale = 1.0, std::uint64_t seed = 7);
PointCloud dragon(double scale = 1.0, std::uint64_t seed = 8);
PointCloud buddha(double scale = 1.0, std::uint64_t seed = 9);

}  // namespace rtnn::data
