#include "datasets/point_cloud.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace rtnn::data {

Aabb bounds(std::span<const Vec3> points) {
  Aabb box;
  for (const Vec3& p : points) box.grow(p);
  return box;
}

PointCloud subsample(const PointCloud& points, std::size_t target, std::uint64_t seed) {
  if (points.size() <= target) return points;
  // Reservoir-free approach: take a random permutation prefix.
  PointCloud out = points;
  Pcg32 rng(seed, 0x5ull);
  for (std::size_t i = 0; i < target; ++i) {
    const std::size_t j = i + rng.next_bounded(static_cast<std::uint32_t>(out.size() - i));
    std::swap(out[i], out[j]);
  }
  out.resize(target);
  return out;
}

void shuffle(PointCloud& points, std::uint64_t seed) {
  Pcg32 rng(seed, 0x9e3779b9ull);
  for (std::size_t i = points.size(); i > 1; --i) {
    const std::size_t j = rng.next_bounded(static_cast<std::uint32_t>(i));
    std::swap(points[i - 1], points[j]);
  }
}

void fit_to(PointCloud& points, const Aabb& target) {
  RTNN_CHECK(!target.empty(), "target bounds must be non-empty");
  if (points.empty()) return;
  const Aabb src = bounds(points);
  const Vec3 src_extent = src.extent();
  const Vec3 dst_extent = target.extent();
  const float src_max = std::max(max_component(src_extent), 1e-30f);
  const float scale = min_component(dst_extent) / src_max;
  const Vec3 src_center = src.center();
  const Vec3 dst_center = target.center();
  for (Vec3& p : points) p = dst_center + (p - src_center) * scale;
}

PointCloud jittered_queries(const PointCloud& points, std::size_t n, float sigma,
                            std::uint64_t seed) {
  RTNN_CHECK(!points.empty(), "cannot derive queries from an empty cloud");
  PointCloud queries(n);
  Pcg32 rng(seed, 0x2545F4914F6CDD1Dull);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3& base = points[rng.next_bounded(static_cast<std::uint32_t>(points.size()))];
    queries[i] = base + Vec3{rng.normal(), rng.normal(), rng.normal()} * sigma;
  }
  return queries;
}

}  // namespace rtnn::data
