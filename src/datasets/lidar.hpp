// Synthetic spinning-LiDAR dataset (KITTI substitute).
//
// The paper evaluates on KITTI LiDAR point clouds, whose defining property
// for neighbor search is the distribution: "points ... are mostly
// distributed in the xy-plane (the ground) while being confined in a very
// narrow z-range (height)" (paper section 6.1). We reproduce that by
// simulating a multi-beam spinning scanner (64 elevation beams, full
// azimuth sweep) against a procedurally generated street scene — a ground
// plane plus random boxes (vehicles/buildings) and walls — with range
// noise; multiple frames from shifted scanner positions are concatenated,
// mirroring how the paper combined KITTI frames to scale to 25M points.
#pragma once

#include <cstdint>

#include "datasets/point_cloud.hpp"

namespace rtnn::data {

struct LidarParams {
  std::size_t target_points = 1'000'000;
  std::uint64_t seed = 42;
  std::uint32_t beams = 64;              // HDL-64-like vertical channels
  float min_elevation_deg = -24.8f;      // HDL-64 fov
  float max_elevation_deg = 2.0f;
  float max_range = 80.0f;               // meters
  float range_noise = 0.02f;             // 1-sigma meters
  std::uint32_t num_boxes = 60;          // scene clutter (cars, boxes)
  float scene_half_extent = 60.0f;       // meters; scene is a square street
  /// Where the vehicle starts along the street (x, meters). The scene is
  /// a function of `seed` alone, so two scans differing only here are the
  /// same world sampled from different positions — consecutive sweep
  /// frames (see data::LidarSweep).
  float vehicle_start_x = 0.0f;
};

PointCloud lidar_scan(const LidarParams& params);

}  // namespace rtnn::data
