#include "datasets/lidar.hpp"

#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace rtnn::data {

namespace {

constexpr float kPi = 3.14159265358979f;

struct Box {
  Aabb bounds;
};

// Nearest positive ray-box intersection distance, or +inf.
float ray_box_t(const Vec3& origin, const Vec3& dir, const Aabb& box) {
  float t0 = 1e-4f;
  float t1 = std::numeric_limits<float>::infinity();
  for (int axis = 0; axis < 3; ++axis) {
    const float inv = 1.0f / dir[axis];
    float tnear = (box.lo[axis] - origin[axis]) * inv;
    float tfar = (box.hi[axis] - origin[axis]) * inv;
    if (tnear > tfar) std::swap(tnear, tfar);
    t0 = std::max(t0, tnear);
    t1 = std::min(t1, tfar);
    if (t0 > t1) return std::numeric_limits<float>::infinity();
  }
  return t0;
}

// Procedural street scene: clutter boxes with car/building-like sizes.
std::vector<Box> make_scene(Pcg32& rng, const LidarParams& params) {
  std::vector<Box> boxes;
  boxes.reserve(params.num_boxes);
  for (std::uint32_t b = 0; b < params.num_boxes; ++b) {
    const bool building = rng.next_float() < 0.25f;
    const float w = building ? rng.uniform(6.0f, 18.0f) : rng.uniform(1.5f, 4.5f);
    const float d = building ? rng.uniform(6.0f, 18.0f) : rng.uniform(1.5f, 2.2f);
    const float h = building ? rng.uniform(4.0f, 12.0f) : rng.uniform(1.2f, 2.0f);
    const float cx = rng.uniform(-params.scene_half_extent, params.scene_half_extent);
    const float cy = rng.uniform(-params.scene_half_extent, params.scene_half_extent);
    // Keep a clear corridor around the scanner path (the street).
    if (std::abs(cy) < 4.0f) continue;
    boxes.push_back(Box{Aabb{{cx - w / 2, cy - d / 2, 0.0f}, {cx + w / 2, cy + d / 2, h}}});
  }
  return boxes;
}

}  // namespace

PointCloud lidar_scan(const LidarParams& params) {
  RTNN_CHECK(params.beams >= 2, "need at least two beams");
  Pcg32 rng(params.seed, 0x10da4ull);
  const std::vector<Box> scene = make_scene(rng, params);

  PointCloud cloud;
  cloud.reserve(params.target_points + 4096);

  const float sensor_height = 1.73f;  // HDL-64 mount height on the KITTI car
  // Points per frame = beams * azimuth steps; pick azimuth resolution so a
  // frame is ~130k points (KITTI-like), then emit frames until target.
  const std::uint32_t azimuth_steps = 2048;
  float vehicle_x = params.vehicle_start_x;
  std::uint64_t frame = 0;
  while (cloud.size() < params.target_points) {
    const Vec3 origin{vehicle_x, rng.uniform(-0.5f, 0.5f), sensor_height};
    for (std::uint32_t a = 0; a < azimuth_steps && cloud.size() < params.target_points; ++a) {
      const float azimuth = (static_cast<float>(a) + rng.next_float()) /
                                static_cast<float>(azimuth_steps) * 2.0f * kPi;
      for (std::uint32_t b = 0; b < params.beams; ++b) {
        const float elev_deg =
            params.min_elevation_deg + (params.max_elevation_deg - params.min_elevation_deg) *
                                           static_cast<float>(b) /
                                           static_cast<float>(params.beams - 1);
        const float elev = elev_deg * kPi / 180.0f;
        const Vec3 dir{std::cos(elev) * std::cos(azimuth), std::cos(elev) * std::sin(azimuth),
                       std::sin(elev)};
        // Ground-plane hit (z = 0).
        float t_hit = std::numeric_limits<float>::infinity();
        if (dir.z < -1e-6f) t_hit = -origin.z / dir.z;
        // Scene boxes.
        for (const Box& box : scene) {
          t_hit = std::min(t_hit, ray_box_t(origin, dir, box.bounds));
        }
        if (!(t_hit < params.max_range)) continue;
        const float t_noisy = t_hit + rng.normal() * params.range_noise;
        cloud.push_back(origin + dir * t_noisy);
        if (cloud.size() >= params.target_points) break;
      }
    }
    // Advance the vehicle ~1.5 m per frame, like consecutive KITTI frames.
    vehicle_x += 1.5f;
    ++frame;
    RTNN_CHECK(frame < 100000, "lidar generator failed to reach target size");
  }
  return cloud;
}

}  // namespace rtnn::data
