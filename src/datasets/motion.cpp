#include "datasets/motion.hpp"

#include <cmath>

#include "core/error.hpp"

namespace rtnn::data {

DriftMotion::DriftMotion(PointCloud initial, const DriftParams& params)
    : points_(std::move(initial)), params_(params), rng_(params.seed, 0xd81f7ull) {
  RTNN_CHECK(!points_.empty(), "drift motion needs points");
  RTNN_CHECK(params_.velocity >= 0.0f && params_.jitter >= 0.0f,
             "motion magnitudes must be non-negative");
  box_ = bounds(points_);
  // Persistent per-point velocities: isotropic Gaussian with RMS length
  // `velocity` (sigma = velocity / sqrt(3) per axis).
  const float sigma = params_.velocity / std::sqrt(3.0f);
  velocity_.resize(points_.size());
  for (Vec3& v : velocity_) {
    v = {rng_.normal() * sigma, rng_.normal() * sigma, rng_.normal() * sigma};
  }
}

const PointCloud& DriftMotion::step() {
  const float jitter_sigma = params_.velocity * params_.jitter / std::sqrt(3.0f);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    Vec3 delta = velocity_[i];
    if (jitter_sigma > 0.0f) {
      delta += Vec3{rng_.normal() * jitter_sigma, rng_.normal() * jitter_sigma,
                    rng_.normal() * jitter_sigma};
    }
    Vec3 p = points_[i] + delta;
    // Reflect at the initial bounds (and flip the persistent velocity so
    // the point keeps moving away from the wall next frame).
    for (int axis = 0; axis < 3; ++axis) {
      if (p[axis] < box_.lo[axis]) {
        p[axis] = 2.0f * box_.lo[axis] - p[axis];
        velocity_[i][axis] = -velocity_[i][axis];
      } else if (p[axis] > box_.hi[axis]) {
        p[axis] = 2.0f * box_.hi[axis] - p[axis];
        velocity_[i][axis] = -velocity_[i][axis];
      }
    }
    points_[i] = p;
  }
  return points_;
}

PointCloud LidarSweep::frame(std::uint32_t t) const {
  LidarParams params = base_;
  params.vehicle_start_x =
      base_.vehicle_start_x + frame_advance_ * static_cast<float>(t);
  return lidar_scan(params);
}

}  // namespace rtnn::data
