// Common point-cloud helpers shared by the dataset generators.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/aabb.hpp"
#include "core/rng.hpp"
#include "core/vec3.hpp"

namespace rtnn::data {

using PointCloud = std::vector<Vec3>;

/// Tight bounds of a cloud.
Aabb bounds(std::span<const Vec3> points);

/// Uniformly subsamples `points` down to `target` points (deterministic
/// given `seed`); returns the input unchanged if it is already smaller.
PointCloud subsample(const PointCloud& points, std::size_t target, std::uint64_t seed);

/// Fisher-Yates shuffle (used to make *incoherent* query orders for the
/// Figure 5/6 coherence experiments).
void shuffle(PointCloud& points, std::uint64_t seed);

/// Rescales the cloud so its bounds become `target` (aspect-preserving
/// fit, centered). The paper normalizes e.g. Buddha into a unit cube.
void fit_to(PointCloud& points, const Aabb& target);

/// Draws `n` query points by jittering randomly-chosen data points with
/// Gaussian noise of scale `sigma` — queries distributed like the data,
/// which is how neighbor-search workloads look in the paper's domains
/// (every particle/point queries its own neighborhood).
PointCloud jittered_queries(const PointCloud& points, std::size_t n, float sigma,
                            std::uint64_t seed);

}  // namespace rtnn::data
