// Synthetic cosmological N-body dataset (Millennium-catalogue substitute).
//
// The paper's third dataset is a galaxy catalogue from the Millennium
// simulation, whose salient property is *hierarchically clustered
// (fractal) structure*: "on scales of order 1 to 10 Mpc/h the galaxy
// distribution is roughly hierarchical clustering (fractal) ... the
// Millennium Simulation dataset runs 500 Mpc/h on a side and, thus,
// exhibits the non-uniform distribution" (paper footnote 3). This is the
// property that stresses RTNN's partitioning (many distinct megacell
// sizes → many partitions → high Opt/BVH overhead, Figures 12/13).
//
// We substitute a Soneira–Peebles hierarchical clustering process — the
// classic generative model for fractal galaxy distributions: each level
// places `eta` child spheres of radius R/lambda uniformly inside the
// parent sphere; leaves emit galaxies. A small uniform background
// ("field galaxies") is mixed in.
#pragma once

#include <cstdint>

#include "datasets/point_cloud.hpp"

namespace rtnn::data {

struct NBodyParams {
  std::size_t target_points = 9'000'000;  // paper: 9M and 10M traces
  std::uint64_t seed = 11;
  float box_size = 500.0f;   // Mpc/h, like the Millennium run
  std::uint32_t eta = 4;     // children per level
  float lambda = 1.9f;       // radius shrink per level (fractal dim ≈ log eta / log lambda)
  std::uint32_t levels = 9;  // recursion depth
  float background_fraction = 0.10f;  // uniform field-galaxy fraction
};

PointCloud nbody_cluster(const NBodyParams& params);

}  // namespace rtnn::data
