// Uniform and grid-structured point sets for controlled characterization
// experiments (paper Figures 5-8: queries assigned uniformly to the cells
// of a 3D grid, compared in raster-scan vs random order).
#pragma once

#include <cstdint>

#include "datasets/point_cloud.hpp"

namespace rtnn::data {

/// `n` points uniform in `box`.
PointCloud uniform_box(std::size_t n, const Aabb& box, std::uint64_t seed);

struct GridQueryParams {
  /// Grid resolution per axis; queries = res³ × queries_per_cell.
  std::uint32_t resolution = 64;
  std::uint32_t queries_per_cell = 1;
  Aabb box{{0.0f, 0.0f, 0.0f}, {1.0f, 1.0f, 1.0f}};
  /// Jitter within the cell (0 = cell centers exactly).
  float jitter = 0.5f;
  std::uint64_t seed = 1;
};

/// Queries assigned uniformly to the cells of a 3D grid, emitted in
/// raster-scan order of the cells (x fastest) — the *coherent* ordering of
/// the Figure 5 experiment. Shuffle the result for the incoherent case.
PointCloud grid_queries_raster(const GridQueryParams& params);

}  // namespace rtnn::data
