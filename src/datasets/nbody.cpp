#include "datasets/nbody.hpp"

#include <cmath>

#include "core/error.hpp"

namespace rtnn::data {

namespace {

// Uniform point inside the sphere (center, radius).
Vec3 uniform_in_sphere(Pcg32& rng, const Vec3& center, float radius) {
  const Vec3 dir = rng.unit_vector();
  const float u = rng.next_float();
  return center + dir * (radius * std::cbrt(u));
}

void emit_cluster(Pcg32& rng, const Vec3& center, float radius, std::uint32_t level,
                  std::uint32_t eta, float lambda, std::size_t points_per_leaf,
                  PointCloud& out, std::size_t limit) {
  if (out.size() >= limit) return;
  if (level == 0) {
    for (std::size_t i = 0; i < points_per_leaf && out.size() < limit; ++i) {
      out.push_back(uniform_in_sphere(rng, center, radius));
    }
    return;
  }
  const float child_radius = radius / lambda;
  for (std::uint32_t c = 0; c < eta; ++c) {
    const Vec3 child_center = uniform_in_sphere(rng, center, radius - child_radius);
    emit_cluster(rng, child_center, child_radius, level - 1, eta, lambda, points_per_leaf,
                 out, limit);
  }
}

}  // namespace

PointCloud nbody_cluster(const NBodyParams& params) {
  RTNN_CHECK(params.eta >= 2, "eta must be >= 2");
  RTNN_CHECK(params.lambda > 1.0f, "lambda must be > 1");
  Pcg32 rng(params.seed, 0xc0ffeeull);

  const auto n_background =
      static_cast<std::size_t>(static_cast<double>(params.target_points) *
                               params.background_fraction);
  const std::size_t n_clustered = params.target_points - n_background;

  // Number of top-level clusters and leaf occupancy chosen so the full
  // hierarchy yields ~n_clustered points: top_clusters * eta^levels leaves.
  const double leaves_per_top = std::pow(static_cast<double>(params.eta), params.levels);
  const std::uint32_t top_clusters = 24;
  std::size_t points_per_leaf = static_cast<std::size_t>(
      static_cast<double>(n_clustered) / (top_clusters * leaves_per_top));
  if (points_per_leaf == 0) points_per_leaf = 1;

  PointCloud cloud;
  cloud.reserve(params.target_points);
  const Aabb box{{0.0f, 0.0f, 0.0f}, {params.box_size, params.box_size, params.box_size}};
  // Top-level cluster radii span a decade, like rich clusters vs groups.
  while (cloud.size() < n_clustered) {
    for (std::uint32_t c = 0; c < top_clusters && cloud.size() < n_clustered; ++c) {
      const Vec3 center = rng.uniform_in_aabb(box.expanded(-params.box_size * 0.05f));
      const float radius = params.box_size * rng.uniform(0.02f, 0.12f);
      emit_cluster(rng, center, radius, params.levels, params.eta, params.lambda,
                   points_per_leaf, cloud, n_clustered);
    }
  }
  for (std::size_t i = 0; i < n_background; ++i) {
    cloud.push_back(rng.uniform_in_aabb(box));
  }
  return cloud;
}

}  // namespace rtnn::data
