#include "datasets/uniform.hpp"

namespace rtnn::data {

PointCloud uniform_box(std::size_t n, const Aabb& box, std::uint64_t seed) {
  PointCloud cloud(n);
  Pcg32 rng(seed, 0xabcdefull);
  for (Vec3& p : cloud) p = rng.uniform_in_aabb(box);
  return cloud;
}

PointCloud grid_queries_raster(const GridQueryParams& params) {
  const std::uint32_t res = params.resolution;
  PointCloud cloud;
  cloud.reserve(static_cast<std::size_t>(res) * res * res * params.queries_per_cell);
  Pcg32 rng(params.seed, 0xfeedull);
  const Vec3 extent = params.box.extent();
  const Vec3 cell{extent.x / static_cast<float>(res), extent.y / static_cast<float>(res),
                  extent.z / static_cast<float>(res)};
  for (std::uint32_t z = 0; z < res; ++z) {
    for (std::uint32_t y = 0; y < res; ++y) {
      for (std::uint32_t x = 0; x < res; ++x) {
        const Vec3 corner = params.box.lo +
                            Vec3{static_cast<float>(x) * cell.x, static_cast<float>(y) * cell.y,
                                 static_cast<float>(z) * cell.z};
        for (std::uint32_t q = 0; q < params.queries_per_cell; ++q) {
          const Vec3 offset{
              cell.x * (0.5f + params.jitter * (rng.next_float() - 0.5f)),
              cell.y * (0.5f + params.jitter * (rng.next_float() - 0.5f)),
              cell.z * (0.5f + params.jitter * (rng.next_float() - 0.5f))};
          cloud.push_back(corner + offset);
        }
      }
    }
  }
  return cloud;
}

}  // namespace rtnn::data
