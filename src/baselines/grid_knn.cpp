#include "baselines/grid_knn.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/knn_heap.hpp"
#include "core/parallel.hpp"

namespace rtnn::baselines {

void GridKnn::build(std::span<const Vec3> points, float radius, const Options& options) {
  RTNN_CHECK(radius > 0.0f, "radius must be positive");
  points_.assign(points.begin(), points.end());
  radius_ = radius;
  grid_.build(points_, radius * options.cell_factor, options.max_cells);
}

NeighborResult GridKnn::search(std::span<const Vec3> queries, std::uint32_t k) const {
  RTNN_CHECK(grid_.built(), "search before build");
  NeighborResult result(queries.size(), k);
  const float r2 = radius_ * radius_;
  const float cell = grid_.cell_size();
  const int max_shell = static_cast<int>(std::ceil(radius_ / cell)) + 1;
  const Int3 res = grid_.resolution();

  parallel_for(0, static_cast<std::int64_t>(queries.size()), [&](std::int64_t qi) {
    const Vec3 q = queries[static_cast<std::size_t>(qi)];
    const Int3 qc = grid_.cell_of(q);
    KnnHeap heap(k);

    for (int shell = 0; shell <= max_shell; ++shell) {
      // Earliest possible distance of any point in this shell: points in
      // cells at Chebyshev distance `shell` are at least (shell-1) cells
      // away in space (the query sits somewhere inside its own cell).
      if (shell >= 2) {
        const float min_dist = static_cast<float>(shell - 1) * cell;
        const float min_dist2 = min_dist * min_dist;
        if (min_dist2 > r2) break;
        if (heap.full() && min_dist2 >= heap.worst_dist2()) break;
      }
      // Visit all cells whose Chebyshev distance from qc equals `shell`.
      const int zlo = std::max(qc.z - shell, 0);
      const int zhi = std::min(qc.z + shell, res.z - 1);
      const int ylo = std::max(qc.y - shell, 0);
      const int yhi = std::min(qc.y + shell, res.y - 1);
      const int xlo = std::max(qc.x - shell, 0);
      const int xhi = std::min(qc.x + shell, res.x - 1);
      for (int z = zlo; z <= zhi; ++z) {
        const bool z_face = (z == qc.z - shell || z == qc.z + shell);
        for (int y = ylo; y <= yhi; ++y) {
          const bool y_face = (y == qc.y - shell || y == qc.y + shell);
          for (int x = xlo; x <= xhi; ++x) {
            const bool x_face = (x == qc.x - shell || x == qc.x + shell);
            if (shell > 0 && !(x_face || y_face || z_face)) continue;
            for (const std::uint32_t p : grid_.points_in_cell({x, y, z})) {
              const float d2 = distance2(points_[p], q);
              if (d2 <= r2) heap.push(d2, p);
            }
          }
        }
      }
    }

    auto sorted = heap.extract_sorted();
    std::stable_sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.dist2 < b.dist2 || (a.dist2 == b.dist2 && a.index < b.index);
    });
    for (const auto& entry : sorted) {
      result.record(static_cast<std::size_t>(qi), entry.index);
    }
  }, 128);
  return result;
}

}  // namespace rtnn::baselines
