// Grid-based KNN — the FRNN analog.
//
// FRNN ("fixed radius nearest neighbor", the PyTorch3D knn_points
// replacement the paper compares against) performs radius-bounded KNN on
// a uniform grid: expanding Chebyshev shells of cells are visited until
// the K-th nearest distance found so far rules out any farther shell (or
// the radius bound is hit).
#pragma once

#include <span>

#include "baselines/uniform_grid.hpp"
#include "core/neighbor_result.hpp"

namespace rtnn::baselines {

struct GridKnnOptions {
  /// Cell width as a multiple of the radius bound. FRNN sizes cells to
  /// the radius; smaller factors trade build cost for tighter shells.
  float cell_factor = 1.0f;
  std::uint64_t max_cells = std::uint64_t{1} << 27;
};

class GridKnn {
 public:
  using Options = GridKnnOptions;

  void build(std::span<const Vec3> points, float radius, const Options& options = Options{});

  /// K nearest neighbors within the radius bound, ascending by distance.
  NeighborResult search(std::span<const Vec3> queries, std::uint32_t k) const;

  const UniformGrid& grid() const { return grid_; }

 private:
  std::vector<Vec3> points_;
  UniformGrid grid_;
  float radius_ = 0.0f;
};

}  // namespace rtnn::baselines
