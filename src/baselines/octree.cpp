#include "baselines/octree.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <numeric>
#include <queue>

#include "core/error.hpp"
#include "core/knn_heap.hpp"
#include "core/parallel.hpp"

namespace rtnn::baselines {

namespace {

// Squared distance from point to the cubic cell (0 if inside).
float dist2_to_cell(const Vec3& p, const Vec3& center, float half) {
  float d2 = 0.0f;
  for (int axis = 0; axis < 3; ++axis) {
    const float lo = center[axis] - half;
    const float hi = center[axis] + half;
    const float v = p[axis];
    if (v < lo) {
      d2 += (lo - v) * (lo - v);
    } else if (v > hi) {
      d2 += (v - hi) * (v - hi);
    }
  }
  return d2;
}

// Largest squared distance from p to any corner of the cell.
float max_dist2_to_cell(const Vec3& p, const Vec3& center, float half) {
  float d2 = 0.0f;
  for (int axis = 0; axis < 3; ++axis) {
    const float lo = center[axis] - half;
    const float hi = center[axis] + half;
    const float d = std::max(std::abs(p[axis] - lo), std::abs(p[axis] - hi));
    d2 += d * d;
  }
  return d2;
}

}  // namespace

void Octree::build(std::span<const Vec3> points, const Options& options) {
  RTNN_CHECK(!points.empty(), "cannot build an octree over zero points");
  RTNN_CHECK(options.leaf_capacity >= 1, "leaf capacity must be >= 1");
  points_.assign(points.begin(), points.end());
  nodes_.clear();

  Aabb bounds;
  for (const Vec3& p : points_) bounds.grow(p);
  const Vec3 center = bounds.center();
  const float half = 0.5f * max_component(bounds.extent()) * 1.0001f + 1e-6f;

  point_ids_.resize(points_.size());
  std::iota(point_ids_.begin(), point_ids_.end(), 0u);

  Node root;
  root.center = center;
  root.half = half;
  root.first = 0;
  root.count = static_cast<std::uint32_t>(points_.size());
  nodes_.push_back(root);
  subdivide(0, point_ids_, 0, options);
}

void Octree::subdivide(std::uint32_t node_index, std::vector<std::uint32_t>& ids,
                       std::uint32_t depth, const Options& options) {
  // Copy out: nodes_ reallocates as children are appended.
  const Vec3 center = nodes_[node_index].center;
  const float half = nodes_[node_index].half;
  const std::uint32_t first = nodes_[node_index].first;
  const std::uint32_t count = nodes_[node_index].count;
  if (count <= options.leaf_capacity || depth >= options.max_depth) return;

  // Partition this node's id range into the 8 octants (stable bucket
  // pass; octant = 3 bits of (x>=cx, y>=cy, z>=cz)).
  const auto begin = ids.begin() + first;
  const auto end = begin + count;
  std::array<std::uint32_t, 8> bucket_count{};
  auto octant_of = [&](std::uint32_t id) {
    const Vec3& p = points_[id];
    return (p.x >= center.x ? 1u : 0u) | (p.y >= center.y ? 2u : 0u) |
           (p.z >= center.z ? 4u : 0u);
  };
  for (auto it = begin; it != end; ++it) ++bucket_count[octant_of(*it)];
  std::array<std::uint32_t, 8> bucket_offset{};
  std::uint32_t sum = 0;
  for (int o = 0; o < 8; ++o) {
    bucket_offset[static_cast<std::size_t>(o)] = sum;
    sum += bucket_count[static_cast<std::size_t>(o)];
  }
  std::vector<std::uint32_t> scratch(begin, end);
  auto cursor = bucket_offset;
  for (const std::uint32_t id : scratch) {
    *(begin + cursor[octant_of(id)]++) = id;
  }

  const auto children = static_cast<std::uint32_t>(nodes_.size());
  nodes_[node_index].children = children;
  const float child_half = half * 0.5f;
  for (std::uint32_t o = 0; o < 8; ++o) {
    Node child;
    child.center = {center.x + ((o & 1u) ? child_half : -child_half),
                    center.y + ((o & 2u) ? child_half : -child_half),
                    center.z + ((o & 4u) ? child_half : -child_half)};
    child.half = child_half;
    child.first = first + bucket_offset[o];
    child.count = bucket_count[o];
    nodes_.push_back(child);
  }
  for (std::uint32_t o = 0; o < 8; ++o) {
    if (nodes_[children + o].count > 0) subdivide(children + o, ids, depth + 1, options);
  }
}

NeighborResult Octree::range_search(std::span<const Vec3> queries, float radius,
                                    std::uint32_t k) const {
  RTNN_CHECK(built(), "search before build");
  NeighborResult result(queries.size(), k);
  const float r2 = radius * radius;
  parallel_for(0, static_cast<std::int64_t>(queries.size()), [&](std::int64_t qi) {
    const Vec3 q = queries[static_cast<std::size_t>(qi)];
    std::uint32_t stack[256];
    std::uint32_t sp = 0;
    stack[sp++] = 0;
    while (sp > 0) {
      const Node& node = nodes_[stack[--sp]];
      if (node.count == 0) continue;
      if (dist2_to_cell(q, node.center, node.half) > r2) continue;
      if (!node.is_leaf() && max_dist2_to_cell(q, node.center, node.half) <= r2) {
        // Whole subtree inside the sphere: its ids are contiguous.
        for (std::uint32_t s = node.first; s < node.first + node.count; ++s) {
          if (result.record(static_cast<std::size_t>(qi), point_ids_[s]) == k) return;
        }
        continue;
      }
      if (node.is_leaf()) {
        for (std::uint32_t s = node.first; s < node.first + node.count; ++s) {
          const std::uint32_t p = point_ids_[s];
          if (distance2(points_[p], q) <= r2) {
            if (result.record(static_cast<std::size_t>(qi), p) == k) return;
          }
        }
      } else {
        for (std::uint32_t o = 0; o < 8; ++o) stack[sp++] = node.children + o;
      }
    }
  }, 128);
  return result;
}

NeighborResult Octree::knn_search(std::span<const Vec3> queries, float radius,
                                  std::uint32_t k) const {
  RTNN_CHECK(built(), "search before build");
  NeighborResult result(queries.size(), k);
  const float r2 = radius * radius;
  parallel_for(0, static_cast<std::int64_t>(queries.size()), [&](std::int64_t qi) {
    const Vec3 q = queries[static_cast<std::size_t>(qi)];
    KnnHeap heap(k);
    using Cand = std::pair<float, std::uint32_t>;  // (min dist2, node)
    std::priority_queue<Cand, std::vector<Cand>, std::greater<>> frontier;
    frontier.emplace(dist2_to_cell(q, nodes_[0].center, nodes_[0].half), 0u);
    while (!frontier.empty()) {
      const auto [d2, ni] = frontier.top();
      frontier.pop();
      if (d2 > r2 || (heap.full() && d2 >= heap.worst_dist2())) break;
      const Node& node = nodes_[ni];
      if (node.is_leaf()) {
        for (std::uint32_t s = node.first; s < node.first + node.count; ++s) {
          const std::uint32_t p = point_ids_[s];
          const float pd2 = distance2(points_[p], q);
          if (pd2 <= r2) heap.push(pd2, p);
        }
      } else {
        for (std::uint32_t o = 0; o < 8; ++o) {
          const Node& child = nodes_[node.children + o];
          if (child.count == 0) continue;
          frontier.emplace(dist2_to_cell(q, child.center, child.half), node.children + o);
        }
      }
    }
    auto sorted = heap.extract_sorted();
    std::stable_sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.dist2 < b.dist2 || (a.dist2 == b.dist2 && a.index < b.index);
    });
    for (const auto& entry : sorted) {
      result.record(static_cast<std::size_t>(qi), entry.index);
    }
  }, 64);
  return result;
}

void Octree::validate() const {
  RTNN_CHECK(built(), "validate before build");
  std::vector<std::uint32_t> seen(points_.size(), 0);
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const std::uint32_t ni = stack.back();
    stack.pop_back();
    const Node& node = nodes_[ni];
    if (node.is_leaf()) {
      for (std::uint32_t s = node.first; s < node.first + node.count; ++s) {
        const std::uint32_t p = point_ids_[s];
        ++seen[p];
        RTNN_CHECK(dist2_to_cell(points_[p], node.center, node.half) == 0.0f,
                   "point outside its leaf cell");
      }
    } else {
      std::uint32_t child_total = 0;
      for (std::uint32_t o = 0; o < 8; ++o) {
        const Node& child = nodes_[node.children + o];
        child_total += child.count;
        RTNN_CHECK(child.half * 2.0f <= node.half * 2.0f, "child larger than parent");
        stack.push_back(node.children + o);
      }
      RTNN_CHECK(child_total == node.count, "children do not partition parent's points");
    }
  }
  for (const std::uint32_t s : seen) {
    RTNN_CHECK(s == 1, "point not in exactly one leaf");
  }
}

}  // namespace rtnn::baselines
