// Octree neighbor search — the PCLOctree analog.
//
// PCL's octree is the *space-partitioning* hierarchical structure the
// paper contrasts with the BVH's object partitioning (section 6.1: "Why
// These Baselines?"). Cubic root volume, recursive 8-way subdivision down
// to a leaf capacity; range search prunes by sphere/cell overlap, KNN by
// best-first descent. PCL's GPU octree only supports K = 1 for KNN (the
// paper notes this); ours implements general K but the Figure 11/14
// harness invokes it with K = 1 where the paper did.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/aabb.hpp"
#include "core/neighbor_result.hpp"
#include "core/vec3.hpp"

namespace rtnn::baselines {

struct OctreeOptions {
  std::uint32_t leaf_capacity = 32;
  std::uint32_t max_depth = 21;
};

class Octree {
 public:
  using Options = OctreeOptions;

  void build(std::span<const Vec3> points, const Options& options = Options{});

  bool built() const { return !nodes_.empty(); }

  /// Up to `k` points within `radius` of each query.
  NeighborResult range_search(std::span<const Vec3> queries, float radius,
                              std::uint32_t k) const;

  /// K nearest points within `radius`, ascending by distance.
  NeighborResult knn_search(std::span<const Vec3> queries, float radius,
                            std::uint32_t k) const;

  std::size_t node_count() const { return nodes_.size(); }

  /// Structural invariants (tests): every point in exactly one leaf, each
  /// point inside its leaf's cell, children tile the parent cell.
  void validate() const;

 private:
  struct Node {
    Vec3 center;
    float half = 0.0f;            // half-width of the cubic cell
    std::uint32_t children = 0;   // index of first of 8 children (0 = leaf)
    std::uint32_t first = 0;      // leaf: offset into point_ids_
    std::uint32_t count = 0;      // leaf: number of points
    bool is_leaf() const { return children == 0; }
  };

  void subdivide(std::uint32_t node_index, std::vector<std::uint32_t>& ids,
                 std::uint32_t depth, const Options& options);

  std::vector<Vec3> points_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> point_ids_;
};

}  // namespace rtnn::baselines
