// Exhaustive-search reference implementation.
//
// O(N·Q) but trivially correct: the oracle every other search path is
// property-tested against, and the small-input baseline in micro benches.
#pragma once

#include <span>

#include "core/neighbor_result.hpp"
#include "core/vec3.hpp"

namespace rtnn::baselines {

/// All points within `radius` of each query, up to `k` per query.
/// Slots are filled in ascending point-index order (deterministic).
NeighborResult brute_force_range(std::span<const Vec3> points, std::span<const Vec3> queries,
                                 float radius, std::uint32_t k);

/// The `k` nearest points within `radius` of each query, ascending by
/// distance (ties broken by point index).
NeighborResult brute_force_knn(std::span<const Vec3> points, std::span<const Vec3> queries,
                               float radius, std::uint32_t k);

}  // namespace rtnn::baselines
