// Uniform grid over a point cloud (counting-sort binning).
//
// The shared substrate of the two grid-based GPU baselines the paper
// compares against (section 6.1): cuNSearch (fixed-radius search used by
// SPH codes) and FRNN (grid KNN). Points are binned into cubic cells with
// a counting sort — the standard GPU construction — and queries scan the
// cells overlapping their search volume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/aabb.hpp"
#include "core/vec3.hpp"

namespace rtnn::baselines {

class UniformGrid {
 public:
  /// Bins `points` into cells of width `cell_size`. If the implied
  /// resolution would exceed `max_cells`, the cell size is enlarged (the
  /// same memory-capacity guard the GPU implementations apply).
  void build(std::span<const Vec3> points, float cell_size,
             std::uint64_t max_cells = std::uint64_t{1} << 27);

  bool built() const { return !cell_start_.empty(); }
  float cell_size() const { return cell_size_; }
  const Aabb& bounds() const { return bounds_; }
  Int3 resolution() const { return res_; }
  std::size_t point_count() const { return point_ids_.size(); }

  /// Grid coordinates of `p`, clamped into the grid.
  Int3 cell_of(const Vec3& p) const;

  /// Flat cell index.
  std::uint64_t cell_index(const Int3& c) const {
    return (static_cast<std::uint64_t>(c.z) * static_cast<std::uint64_t>(res_.y) +
            static_cast<std::uint64_t>(c.y)) *
               static_cast<std::uint64_t>(res_.x) +
           static_cast<std::uint64_t>(c.x);
  }

  /// Point ids binned into cell `c`.
  std::span<const std::uint32_t> points_in_cell(const Int3& c) const {
    const std::uint64_t ci = cell_index(c);
    return {point_ids_.data() + cell_start_[ci], cell_start_[ci + 1] - cell_start_[ci]};
  }

  /// Invokes `fn(Int3 cell)` for every grid cell overlapping `box`.
  template <typename Fn>
  void for_each_cell_in(const Aabb& box, Fn&& fn) const {
    const Int3 lo = cell_of(box.lo);
    const Int3 hi = cell_of(box.hi);
    for (int z = lo.z; z <= hi.z; ++z) {
      for (int y = lo.y; y <= hi.y; ++y) {
        for (int x = lo.x; x <= hi.x; ++x) {
          fn(Int3{x, y, z});
        }
      }
    }
  }

 private:
  Aabb bounds_;
  Int3 res_{0, 0, 0};
  float cell_size_ = 0.0f;
  std::vector<std::uint32_t> cell_start_;  // size cells+1, prefix offsets
  std::vector<std::uint32_t> point_ids_;   // points sorted by cell
};

}  // namespace rtnn::baselines
