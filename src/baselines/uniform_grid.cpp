#include "baselines/uniform_grid.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/parallel.hpp"

namespace rtnn::baselines {

void UniformGrid::build(std::span<const Vec3> points, float cell_size,
                        std::uint64_t max_cells) {
  RTNN_CHECK(cell_size > 0.0f, "cell size must be positive");
  RTNN_CHECK(!points.empty(), "cannot build a grid over zero points");

  bounds_ = Aabb{};
  for (const Vec3& p : points) bounds_.grow(p);
  // Pad so boundary points land strictly inside.
  const float pad = std::max(1e-6f, 1e-5f * max_component(bounds_.extent()));
  bounds_ = bounds_.expanded(pad);

  // Enlarge cells until the grid fits the memory budget.
  cell_size_ = cell_size;
  const Vec3 extent = bounds_.extent();
  for (;;) {
    std::uint64_t total = 1;
    for (int axis = 0; axis < 3; ++axis) {
      const auto n = static_cast<std::uint64_t>(
          std::max(1.0f, std::ceil(extent[axis] / cell_size_)));
      res_[axis] = static_cast<int>(n);
      total *= n;
    }
    if (total <= max_cells) break;
    cell_size_ *= 1.5f;
  }

  const std::uint64_t cells = static_cast<std::uint64_t>(res_.x) *
                              static_cast<std::uint64_t>(res_.y) *
                              static_cast<std::uint64_t>(res_.z);
  // Counting sort: histogram, exclusive scan, scatter.
  std::vector<std::uint32_t> histogram(cells + 1, 0);
  std::vector<std::uint64_t> point_cell(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    point_cell[i] = cell_index(cell_of(points[i]));
    ++histogram[point_cell[i]];
  }
  cell_start_.assign(cells + 1, 0);
  std::uint32_t sum = 0;
  for (std::uint64_t c = 0; c < cells; ++c) {
    cell_start_[c] = sum;
    sum += histogram[c];
  }
  cell_start_[cells] = sum;

  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  point_ids_.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    point_ids_[cursor[point_cell[i]]++] = static_cast<std::uint32_t>(i);
  }
}

Int3 UniformGrid::cell_of(const Vec3& p) const {
  Int3 c;
  for (int axis = 0; axis < 3; ++axis) {
    const float t = (p[axis] - bounds_.lo[axis]) / cell_size_;
    int v = static_cast<int>(std::floor(t));
    v = std::clamp(v, 0, res_[axis] - 1);
    c[axis] = v;
  }
  return c;
}

}  // namespace rtnn::baselines
