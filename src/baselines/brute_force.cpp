#include "baselines/brute_force.hpp"

#include <algorithm>

#include "core/knn_heap.hpp"
#include "core/parallel.hpp"

namespace rtnn::baselines {

NeighborResult brute_force_range(std::span<const Vec3> points, std::span<const Vec3> queries,
                                 float radius, std::uint32_t k) {
  NeighborResult result(queries.size(), k);
  const float r2 = radius * radius;
  parallel_for(0, static_cast<std::int64_t>(queries.size()), [&](std::int64_t q) {
    const Vec3 query = queries[static_cast<std::size_t>(q)];
    for (std::uint32_t p = 0; p < points.size(); ++p) {
      if (distance2(points[p], query) <= r2) {
        if (result.record(static_cast<std::size_t>(q), p) == k) break;
      }
    }
  }, 64);
  return result;
}

NeighborResult brute_force_knn(std::span<const Vec3> points, std::span<const Vec3> queries,
                               float radius, std::uint32_t k) {
  NeighborResult result(queries.size(), k);
  const float r2 = radius * radius;
  parallel_for(0, static_cast<std::int64_t>(queries.size()), [&](std::int64_t q) {
    const Vec3 query = queries[static_cast<std::size_t>(q)];
    KnnHeap heap(k);
    for (std::uint32_t p = 0; p < points.size(); ++p) {
      const float d2 = distance2(points[p], query);
      if (d2 <= r2 && d2 < heap.worst_dist2()) heap.push(d2, p);
    }
    auto sorted = heap.extract_sorted();
    // Deterministic tie order: stable by (distance, index).
    std::stable_sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.dist2 < b.dist2 || (a.dist2 == b.dist2 && a.index < b.index);
    });
    for (const auto& entry : sorted) result.record(static_cast<std::size_t>(q), entry.index);
  }, 64);
  return result;
}

}  // namespace rtnn::baselines
