// Grid-based fixed-radius neighbor search — the cuNSearch analog.
//
// cuNSearch (Hoetzlein, "Fast fixed-radius nearest neighbors") is the
// work-inefficient / hardware-friendly end of the paper's trade-off: bin
// points into cells of width r, then each query exhaustively tests the
// 3x3x3 cell neighborhood. "cuNSearch has only a range search
// implementation" (paper section 6.1) — so does this class.
#pragma once

#include <span>

#include "baselines/uniform_grid.hpp"
#include "core/neighbor_result.hpp"

namespace rtnn::baselines {

struct GridRangeOptions {
  /// Cell width as a multiple of the search radius (1 = cuNSearch).
  float cell_factor = 1.0f;
  std::uint64_t max_cells = std::uint64_t{1} << 27;
};

class GridRangeSearch {
 public:
  using Options = GridRangeOptions;

  void build(std::span<const Vec3> points, float radius, const Options& options = Options{});

  /// Up to `k` neighbors within the build radius of each query.
  NeighborResult search(std::span<const Vec3> queries, std::uint32_t k) const;

  const UniformGrid& grid() const { return grid_; }

 private:
  std::vector<Vec3> points_;
  UniformGrid grid_;
  float radius_ = 0.0f;
};

}  // namespace rtnn::baselines
