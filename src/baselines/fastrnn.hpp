// FastRNN analog: ray-tracing-accelerated KNN *without* RTNN's
// optimizations.
//
// Evangelou et al. 2021 ("Fast Radius Search Exploiting Ray-Tracing
// Frameworks") is the paper's prior-art RT baseline: the same basic
// point-AABB / short-ray mapping, but with the naive query-to-ray order
// and one monolithic BVH (no scheduling, partitioning, or bundling). The
// paper reports a 65× geomean speedup of RTNN over it; it exists here so
// Figures 11/14 can reproduce that comparison. KNN only, like the
// original.
#pragma once

#include <span>

#include "core/neighbor_result.hpp"
#include "core/vec3.hpp"
#include "rtnn/neighbor_search.hpp"

namespace rtnn::baselines {

class FastRnn {
 public:
  void build(std::span<const Vec3> points) { search_.set_points(points); }

  NeighborResult knn_search(std::span<const Vec3> queries, float radius, std::uint32_t k,
                            NeighborSearch::Report* report = nullptr) {
    SearchParams params;
    params.mode = SearchMode::kKnn;
    params.radius = radius;
    params.k = k;
    params.opts = OptimizationFlags::none();
    return search_.search(queries, params, report);
  }

 private:
  NeighborSearch search_;
};

}  // namespace rtnn::baselines
