#include "baselines/grid_search.hpp"

#include "core/error.hpp"
#include "core/parallel.hpp"

namespace rtnn::baselines {

void GridRangeSearch::build(std::span<const Vec3> points, float radius,
                            const Options& options) {
  RTNN_CHECK(radius > 0.0f, "radius must be positive");
  points_.assign(points.begin(), points.end());
  radius_ = radius;
  grid_.build(points_, radius * options.cell_factor, options.max_cells);
}

NeighborResult GridRangeSearch::search(std::span<const Vec3> queries, std::uint32_t k) const {
  RTNN_CHECK(grid_.built(), "search before build");
  NeighborResult result(queries.size(), k);
  const float r2 = radius_ * radius_;
  parallel_for(0, static_cast<std::int64_t>(queries.size()), [&](std::int64_t qi) {
    const Vec3 q = queries[static_cast<std::size_t>(qi)];
    const Aabb search_box{{q.x - radius_, q.y - radius_, q.z - radius_},
                          {q.x + radius_, q.y + radius_, q.z + radius_}};
    bool done = false;
    grid_.for_each_cell_in(search_box, [&](const Int3& cell) {
      if (done) return;
      for (const std::uint32_t p : grid_.points_in_cell(cell)) {
        if (distance2(points_[p], q) <= r2) {
          if (result.record(static_cast<std::size_t>(qi), p) == k) {
            done = true;
            return;
          }
        }
      }
    });
  }, 256);
  return result;
}

}  // namespace rtnn::baselines
