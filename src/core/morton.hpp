// Morton (Z-order) codes.
//
// Two independent users in this codebase:
//   * the LBVH builder sorts primitive centroids by 30-bit 3D Morton code
//     (10 bits per axis) — the classic Karras/LBVH construction;
//   * RTNN's query scheduler sorts queries by the Morton code of their
//     first-hit AABB center (paper section 4, Figure 9) so that adjacent
//     rays are spatially close.
// A 63-bit (21 bits/axis) variant is provided for large scenes where 10
// bits per axis would alias too many distinct cells.
#pragma once

#include <cstdint>

#include "core/aabb.hpp"
#include "core/vec3.hpp"

namespace rtnn {

/// Expands 10 low bits of `v` so that there are two zero bits between each
/// original bit: ...9876543210 -> 9..8..7..6..5..4..3..2..1..0.
constexpr std::uint32_t expand_bits_10(std::uint32_t v) {
  v &= 0x3ffu;
  v = (v * 0x00010001u) & 0xFF0000FFu;
  v = (v * 0x00000101u) & 0x0F00F00Fu;
  v = (v * 0x00000011u) & 0xC30C30C3u;
  v = (v * 0x00000005u) & 0x49249249u;
  return v;
}

/// Inverse of expand_bits_10.
constexpr std::uint32_t compact_bits_10(std::uint32_t v) {
  v &= 0x49249249u;
  v = (v ^ (v >> 2)) & 0xC30C30C3u;
  v = (v ^ (v >> 4)) & 0x0F00F00Fu;
  v = (v ^ (v >> 8)) & 0xFF0000FFu;
  v = (v ^ (v >> 16)) & 0x000003FFu;
  return v;
}

/// Expands 21 low bits of `v` with two zero bits between each original bit.
constexpr std::uint64_t expand_bits_21(std::uint64_t v) {
  v &= 0x1fffffull;
  v = (v | (v << 32)) & 0x1f00000000ffffull;
  v = (v | (v << 16)) & 0x1f0000ff0000ffull;
  v = (v | (v << 8)) & 0x100f00f00f00f00full;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ull;
  v = (v | (v << 2)) & 0x1249249249249249ull;
  return v;
}

constexpr std::uint64_t compact_bits_21(std::uint64_t v) {
  v &= 0x1249249249249249ull;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ull;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00full;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffull;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffull;
  v = (v ^ (v >> 32)) & 0x1fffffull;
  return v;
}

/// 30-bit Morton code from integer cell coordinates in [0, 1024).
constexpr std::uint32_t morton3d_30(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (expand_bits_10(x) << 2) | (expand_bits_10(y) << 1) | expand_bits_10(z);
}

/// 63-bit Morton code from integer cell coordinates in [0, 2^21).
constexpr std::uint64_t morton3d_63(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (expand_bits_21(x) << 2) | (expand_bits_21(y) << 1) | expand_bits_21(z);
}

/// 2D Morton code (for 2D searches), 16 bits per axis.
constexpr std::uint32_t morton2d_32(std::uint32_t x, std::uint32_t y) {
  auto expand16 = [](std::uint32_t v) constexpr {
    v &= 0xffffu;
    v = (v | (v << 8)) & 0x00FF00FFu;
    v = (v | (v << 4)) & 0x0F0F0F0Fu;
    v = (v | (v << 2)) & 0x33333333u;
    v = (v | (v << 1)) & 0x55555555u;
    return v;
  };
  return (expand16(x) << 1) | expand16(y);
}

constexpr void morton3d_30_decode(std::uint32_t code, std::uint32_t& x,
                                  std::uint32_t& y, std::uint32_t& z) {
  x = compact_bits_10(code >> 2);
  y = compact_bits_10(code >> 1);
  z = compact_bits_10(code);
}

constexpr void morton3d_63_decode(std::uint64_t code, std::uint32_t& x,
                                  std::uint32_t& y, std::uint32_t& z) {
  x = static_cast<std::uint32_t>(compact_bits_21(code >> 2));
  y = static_cast<std::uint32_t>(compact_bits_21(code >> 1));
  z = static_cast<std::uint32_t>(compact_bits_21(code));
}

namespace detail {
inline std::uint32_t quantize(float t, std::uint32_t buckets) {
  if (t <= 0.0f) return 0;
  if (t >= 1.0f) return buckets - 1;
  const auto q = static_cast<std::uint32_t>(t * static_cast<float>(buckets));
  return q < buckets ? q : buckets - 1;
}
}  // namespace detail

/// 30-bit Morton code of point `p` normalized to `bounds`.
inline std::uint32_t morton3d_30(const Vec3& p, const Aabb& bounds) {
  const Vec3 n = bounds.normalized(p);
  return morton3d_30(detail::quantize(n.x, 1024),
                     detail::quantize(n.y, 1024),
                     detail::quantize(n.z, 1024));
}

/// 63-bit Morton code of point `p` normalized to `bounds`.
inline std::uint64_t morton3d_63(const Vec3& p, const Aabb& bounds) {
  constexpr std::uint32_t kBuckets = 1u << 21;
  const Vec3 n = bounds.normalized(p);
  return morton3d_63(detail::quantize(n.x, kBuckets),
                     detail::quantize(n.y, kBuckets),
                     detail::quantize(n.z, kBuckets));
}

}  // namespace rtnn
