#include "core/failpoint.hpp"

#include <new>
#include <thread>
#include <utility>

namespace rtnn::fail {

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry registry;
  return registry;
}

void FailpointRegistry::arm(const std::string& name, FailConfig config) {
  RTNN_CHECK(!name.empty(), "a failpoint needs a name");
  RTNN_CHECK(config.probability >= 0.0 && config.probability <= 1.0,
             "failpoint probability must be in [0, 1]");
  std::lock_guard<std::mutex> lock(mutex_);
  Site site;
  site.rng = Pcg32(config.seed);
  site.config = std::move(config);
  const auto [it, inserted] = sites_.insert_or_assign(name, std::move(site));
  (void)it;
  if (inserted) armed_.fetch_add(1, std::memory_order_relaxed);
}

void FailpointRegistry::disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sites_.erase(name) > 0) armed_.fetch_sub(1, std::memory_order_relaxed);
}

void FailpointRegistry::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_.store(0, std::memory_order_relaxed);
}

std::uint64_t FailpointRegistry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FailpointRegistry::fires(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(name);
  return it == sites_.end() ? 0 : it->second.fires;
}

void FailpointRegistry::evaluate(const char* name) {
  if (armed_.load(std::memory_order_relaxed) == 0) return;  // the idle fast path

  // Decide under the lock, act outside it: a delay action must not hold
  // the registry hostage (another thread's site, or a disarm from the
  // test harness, keeps working while this site sleeps).
  Action action{};
  std::chrono::nanoseconds delay{};
  std::string message;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sites_.find(name);
    if (it == sites_.end()) return;
    Site& site = it->second;
    ++site.hits;
    bool fire;
    if (site.config.fire_on_hit > 0) {
      fire = site.hits == site.config.fire_on_hit;
    } else {
      fire = site.rng.next_double() < site.config.probability;
    }
    if (site.config.max_fires > 0 && site.fires >= site.config.max_fires) fire = false;
    if (!fire) return;
    ++site.fires;
    action = site.config.action;
    delay = site.config.delay;
    message = site.config.message;
  }

  switch (action) {
    case Action::kThrow: {
      std::string what = "failpoint '" + std::string(name) + "' fired";
      if (!message.empty()) what += ": " + message;
      throw InjectedFault(what);
    }
    case Action::kDelay:
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
      return;
    case Action::kAllocFail:
      throw std::bad_alloc();
  }
}

}  // namespace rtnn::fail
