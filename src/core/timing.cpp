#include "core/timing.hpp"

#include <cstdio>
#include <ostream>

namespace rtnn {

std::string TimeBreakdown::percent_row() const {
  const double t = total();
  char buf[160];
  if (t <= 0.0) {
    std::snprintf(buf, sizeof(buf), "%6.1f %6.1f %6.1f %6.1f %6.1f", 0.0, 0.0, 0.0, 0.0, 0.0);
  } else {
    // Refit is acceleration-structure maintenance like BVH builds; the
    // five-column Figure 12 row folds it into the BVH column.
    std::snprintf(buf, sizeof(buf), "%6.1f %6.1f %6.1f %6.1f %6.1f",
                  100.0 * data / t, 100.0 * opt / t, 100.0 * (bvh + refit) / t,
                  100.0 * first_search / t, 100.0 * search / t);
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, const TimeBreakdown& tb) {
  return os << "{data=" << tb.data << "s opt=" << tb.opt << "s bvh=" << tb.bvh
            << "s refit=" << tb.refit << "s fs=" << tb.first_search
            << "s search=" << tb.search << "s total=" << tb.total() << "s}";
}

}  // namespace rtnn
