// Flat pool of bounded max-heaps: one K-slot heap per query in contiguous
// storage. This is the device-friendly layout the KNN IS shader writes to
// (one row per ray, no per-ray allocation), unlike KnnHeap which owns its
// own vector and suits host-side single-query use.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/error.hpp"
#include "core/neighbor_result.hpp"
#include "core/parallel.hpp"

namespace rtnn {

class FlatKnnHeaps {
 public:
  struct Entry {
    float dist2;
    std::uint32_t index;
  };

  FlatKnnHeaps(std::size_t num_queries, std::uint32_t k)
      : num_queries_(num_queries), k_(k), entries_(num_queries * k),
        sizes_(num_queries, 0) {
    RTNN_CHECK(k > 0, "K must be positive");
  }

  std::uint32_t k() const { return k_; }
  std::size_t num_queries() const { return num_queries_; }
  std::uint32_t size(std::size_t q) const { return sizes_[q]; }

  float worst_dist2(std::size_t q) const {
    return sizes_[q] == k_ ? entries_[q * k_].dist2
                           : std::numeric_limits<float>::infinity();
  }

  /// Offers a candidate to query q's heap; keeps it if among the K nearest
  /// so far. One thread per query row (the CUDA shader contract).
  bool push(std::size_t q, float dist2, std::uint32_t index) {
    Entry* heap = entries_.data() + q * k_;
    std::uint32_t& n = sizes_[q];
    if (n < k_) {
      heap[n] = {dist2, index};
      std::uint32_t i = n++;
      while (i > 0) {
        const std::uint32_t parent = (i - 1) / 2;
        if (heap[parent].dist2 >= heap[i].dist2) break;
        std::swap(heap[parent], heap[i]);
        i = parent;
      }
      return true;
    }
    if (dist2 >= heap[0].dist2) return false;
    heap[0] = {dist2, index};
    sift_down(heap, n, 0);
    return true;
  }

  /// Converts all heaps into a NeighborResult with each query's neighbors
  /// ascending by (distance, index). Parallel over queries.
  NeighborResult extract(bool store_indices = true) {
    NeighborResult result(num_queries_, k_, store_indices);
    parallel_for(0, static_cast<std::int64_t>(num_queries_), [&](std::int64_t q) {
      Entry* heap = entries_.data() + static_cast<std::size_t>(q) * k_;
      const std::uint32_t n = sizes_[static_cast<std::size_t>(q)];
      std::sort(heap, heap + n, [](const Entry& a, const Entry& b) {
        return a.dist2 < b.dist2 || (a.dist2 == b.dist2 && a.index < b.index);
      });
      for (std::uint32_t i = 0; i < n; ++i) {
        result.record(static_cast<std::size_t>(q), heap[i].index);
      }
    }, 512);
    return result;
  }

  /// K-th nearest distance² of query q (+inf if fewer than K found).
  float kth_dist2(std::size_t q) const { return worst_dist2(q); }

 private:
  static void sift_down(Entry* heap, std::uint32_t n, std::uint32_t i) {
    for (;;) {
      const std::uint32_t l = 2 * i + 1;
      const std::uint32_t r = 2 * i + 2;
      std::uint32_t largest = i;
      if (l < n && heap[l].dist2 > heap[largest].dist2) largest = l;
      if (r < n && heap[r].dist2 > heap[largest].dist2) largest = r;
      if (largest == i) break;
      std::swap(heap[i], heap[largest]);
      i = largest;
    }
  }

  std::size_t num_queries_;
  std::uint32_t k_;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> sizes_;
};

}  // namespace rtnn
