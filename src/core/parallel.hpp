// Shared-memory parallel primitives.
//
// The paper's "SM-side" CUDA kernels (Morton sort, megacell growth, query
// reordering) become OpenMP data-parallel loops over the same flat
// buffers. This header is the single place that touches OpenMP; the rest
// of the codebase expresses parallelism through parallel_for/parallel_reduce
// so it also builds (serially) without OpenMP.
//
// Thread count resolution order: explicit set_num_threads() call,
// RTNN_THREADS environment variable, then OpenMP's default.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace rtnn {

/// Number of worker threads parallel_for will use.
int num_threads();

/// Override the worker count (0 = reset to environment/OpenMP default).
/// Used by benches to model differently-sized devices (paper evaluates on
/// both an RTX 2080 and an RTX 2080Ti).
void set_num_threads(int n);

/// Index of the calling worker within the active parallel region, in
/// [0, num_threads()); 0 outside any region. The anchor for lock-free
/// per-thread accumulation (see rt::StatsAccumulator).
int worker_index();

/// Per-call-site grain constants for parallel_for: the minimum number of
/// items one task must amortize before forking is worth it. Launches issue
/// many tiny loops (one per partition chunk), so call sites pick the named
/// constant matching their per-item cost instead of guessing; tune here,
/// not at the call site.
namespace grain {
/// Catch-all for unannotated loops (the old hardcoded 1024).
inline constexpr std::int64_t kDefault = 1024;
/// Trivial bodies, a few flops per item: AABB generation, Morton encoding,
/// ray generation, SoA bounds fills.
inline constexpr std::int64_t kElementwise = 4096;
/// One full tree walk per item: independent-path per-ray traversal.
inline constexpr std::int64_t kTrace = 512;
/// One 32-lane lockstep warp per item (heavy, few items).
inline constexpr std::int64_t kWarp = 8;
/// Pre-chunked task lists where each item is already a large block of work
/// (subtree builds, radix buckets, per-chunk scatters).
inline constexpr std::int64_t kTask = 1;
}  // namespace grain

namespace detail {

/// Non-owning reference to a `void(int64_t lo, int64_t hi)` callable. The
/// dispatch loop crosses a TU boundary, but the body must not be copied
/// into a std::function on the hot path — launches issue many tiny loops.
class RangeBodyRef {
 public:
  template <typename Body>
    requires(!std::is_same_v<std::remove_cvref_t<Body>, RangeBodyRef>)
  RangeBodyRef(Body&& body)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&body))),
        invoke_([](void* obj, std::int64_t lo, std::int64_t hi) {
          (*static_cast<std::remove_reference_t<Body>*>(obj))(lo, hi);
        }) {}

  void operator()(std::int64_t lo, std::int64_t hi) const { invoke_(obj_, lo, hi); }

 private:
  void* obj_;
  void (*invoke_)(void*, std::int64_t, std::int64_t);
};

void parallel_for_impl(std::int64_t begin, std::int64_t end, std::int64_t grain,
                       RangeBodyRef body);
}  // namespace detail

/// Invokes `body(i)` for every i in [begin, end), split across threads.
/// `grain` is the minimum chunk size per task; loops smaller than `grain`
/// run serially (important: many per-partition launches are tiny).
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, Body&& body,
                  std::int64_t grain = grain::kDefault) {
  detail::parallel_for_impl(begin, end, grain,
                            [&body](std::int64_t lo, std::int64_t hi) {
                              for (std::int64_t i = lo; i < hi; ++i) body(i);
                            });
}

/// Invokes `body(lo, hi)` on contiguous sub-ranges (for algorithms that
/// want per-chunk state, e.g. per-thread histograms).
template <typename Body>
void parallel_for_chunks(std::int64_t begin, std::int64_t end, Body&& body,
                         std::int64_t grain = grain::kDefault) {
  detail::parallel_for_impl(begin, end, grain, body);
}

/// Parallel reduction: result = reduce over i of map(i), combined with `op`.
template <typename T, typename Map, typename Op>
T parallel_reduce(std::int64_t begin, std::int64_t end, T init, Map&& map, Op&& op,
                  std::int64_t grain = grain::kDefault) {
  if (end <= begin) return init;
  const int workers = num_threads();
  // Chunked so each worker folds locally, then a serial combine.
  struct Slot { T value; bool used; };
  const std::int64_t n = end - begin;
  const std::int64_t chunk = std::max<std::int64_t>(grain, (n + workers - 1) / workers);
  std::vector<Slot> slots;
  slots.reserve(static_cast<std::size_t>((n + chunk - 1) / chunk));
  for (std::int64_t lo = begin; lo < end; lo += chunk) {
    slots.push_back(Slot{init, false});
  }
  detail::parallel_for_impl(0, static_cast<std::int64_t>(slots.size()), 1,
                            [&](std::int64_t slo, std::int64_t shi) {
                              for (std::int64_t s = slo; s < shi; ++s) {
                                const std::int64_t lo = begin + s * chunk;
                                const std::int64_t hi = std::min(end, lo + chunk);
                                T acc = init;
                                for (std::int64_t i = lo; i < hi; ++i) acc = op(acc, map(i));
                                slots[static_cast<std::size_t>(s)] = Slot{acc, true};
                              }
                            });
  T result = init;
  for (const Slot& s : slots) {
    if (s.used) result = op(result, s.value);
  }
  return result;
}

/// Exclusive prefix sum over `v` in place; returns the grand total.
/// (Serial: the arrays this is used on — cell histograms — are small
/// relative to the point data, and a serial scan keeps it deterministic.)
std::uint64_t exclusive_scan(std::vector<std::uint32_t>& v);
std::uint64_t exclusive_scan(std::vector<std::uint64_t>& v);

/// One-shot completion latch: wait() blocks until some other thread calls
/// signal(). This is the synchronization primitive behind service tickets
/// (src/service): the submitting thread parks on the event while the
/// dispatcher serves the coalesced batch. signal() may be called at most
/// once; waiting after the signal returns immediately forever.
class CompletionEvent {
 public:
  void signal();
  void wait() const;
  /// True when the event fired within `timeout`; false on timeout. A
  /// zero or negative timeout never blocks: it returns the current
  /// state immediately (a poll).
  bool wait_for(std::chrono::nanoseconds timeout) const;
  bool signaled() const;

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  bool done_ = false;
};

/// Unbounded multi-producer/multi-consumer FIFO with close semantics —
/// the hand-off between request submitters and the service's dispatcher.
/// push() enqueues (refused once closed); pop() blocks for the next item;
/// close() wakes every blocked consumer, after which pops drain the
/// remaining items and then return nullopt. All operations are
/// linearizable under the internal mutex: items pop in push order.
template <typename T>
class WorkQueue {
 public:
  /// Enqueues `item`; returns false (dropping the item) once closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    return take_locked();
  }

  /// Like pop(), but gives up after `timeout` (nullopt on timeout too —
  /// check closed() to distinguish when it matters).
  std::optional<T> pop_for(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
    return take_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    return take_locked();
  }

  /// Refuses further pushes and wakes every blocked consumer. Items
  /// already queued remain poppable (a closing service drains in-flight
  /// requests instead of dropping them).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  std::optional<T> take_locked() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rtnn
