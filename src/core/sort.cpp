#include "core/sort.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "core/parallel.hpp"

namespace rtnn {

namespace {

// One serial LSD pass: scatter by byte `shift/8` of the key. Stable.
template <typename Key>
void radix_pass(const Key* keys_in, Key* keys_out, const std::uint32_t* vals_in,
                std::uint32_t* vals_out, std::size_t n, unsigned shift) {
  std::array<std::uint32_t, 256> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    ++hist[static_cast<std::size_t>((keys_in[i] >> shift) & 0xffu)];
  }
  std::uint32_t sum = 0;
  for (auto& h : hist) {
    const std::uint32_t cur = h;
    h = sum;
    sum += cur;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Key k = keys_in[i];
    const std::uint32_t dst = hist[static_cast<std::size_t>((k >> shift) & 0xffu)]++;
    keys_out[dst] = k;
    if (vals_in) vals_out[dst] = vals_in[i];
  }
}

template <typename Key>
bool pass_needed(const Key* keys, std::size_t n, unsigned shift) {
  if (n == 0) return false;
  const auto first = (keys[0] >> shift) & 0xffu;
  for (std::size_t i = 0; i < n; ++i) {
    if (((keys[i] >> shift) & 0xffu) != first) return true;
  }
  return false;
}

// Serial LSD radix over bytes [0, max_byte).
template <typename Key>
void lsd_sort(Key* keys, std::uint32_t* values, std::size_t n, unsigned max_byte,
              Key* key_scratch, std::uint32_t* val_scratch) {
  Key* kin = keys;
  Key* kout = key_scratch;
  std::uint32_t* vin = values;
  std::uint32_t* vout = val_scratch;
  bool in_place = true;
  for (unsigned byte = 0; byte < max_byte; ++byte) {
    if (!pass_needed(kin, n, byte * 8)) continue;
    radix_pass(kin, kout, vin, vout, n, byte * 8);
    std::swap(kin, kout);
    if (values) std::swap(vin, vout);
    in_place = !in_place;
  }
  if (!in_place) {
    std::copy(kin, kin + n, keys);
    if (values) std::copy(vin, vin + n, values);
  }
}

template <typename Key>
void radix_sort_impl(std::vector<Key>& keys, std::vector<std::uint32_t>* values) {
  const std::size_t n = keys.size();
  if (n < 2) return;
  std::vector<Key> key_buf(n);
  std::vector<std::uint32_t> val_buf(values ? n : 0);
  std::uint32_t* vals = values ? values->data() : nullptr;
  std::uint32_t* vals_scratch = values ? val_buf.data() : nullptr;

  constexpr unsigned kBytes = sizeof(Key);

  // Small arrays or single-threaded: plain LSD.
  if (n < (std::size_t{1} << 16) || num_threads() <= 1) {
    lsd_sort(keys.data(), vals, n, kBytes, key_buf.data(), vals_scratch);
    return;
  }

  // Parallel MSD+LSD hybrid: find the highest byte in which keys differ,
  // scatter into 256 buckets by that byte (stable, parallel histogram +
  // parallel scatter), then LSD-sort each bucket's lower bytes in parallel.
  struct KeyRange {
    Key min, max;
  };
  const KeyRange range = parallel_reduce<KeyRange>(
      0, static_cast<std::int64_t>(n), KeyRange{keys[0], keys[0]},
      [&](std::int64_t i) {
        const Key k = keys[static_cast<std::size_t>(i)];
        return KeyRange{k, k};
      },
      [](KeyRange a, const KeyRange& b) {
        a.min = std::min(a.min, b.min);
        a.max = std::max(a.max, b.max);
        return a;
      },
      grain::kElementwise);
  const Key key_min = range.min;
  const Key key_max = range.max;
  if (key_min == key_max) return;
  unsigned split_byte = kBytes - 1;
  while (((key_min >> (split_byte * 8)) & 0xffu) == ((key_max >> (split_byte * 8)) & 0xffu)) {
    --split_byte;
  }
  const unsigned shift = split_byte * 8;

  // Per-chunk histograms.
  const int workers = num_threads();
  const std::size_t chunk = (n + static_cast<std::size_t>(workers) - 1) /
                            static_cast<std::size_t>(workers);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  std::vector<std::array<std::uint32_t, 256>> chunk_hist(n_chunks);
  parallel_for(0, static_cast<std::int64_t>(n_chunks), [&](std::int64_t c) {
    auto& hist = chunk_hist[static_cast<std::size_t>(c)];
    hist.fill(0);
    const std::size_t lo = static_cast<std::size_t>(c) * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      ++hist[static_cast<std::size_t>((keys[i] >> shift) & 0xffu)];
    }
  }, grain::kTask);

  // Exclusive offsets: bucket-major, then chunk within bucket (stability).
  std::array<std::uint32_t, 256> bucket_start{};
  {
    std::uint32_t sum = 0;
    for (unsigned b = 0; b < 256; ++b) {
      bucket_start[b] = sum;
      for (std::size_t c = 0; c < n_chunks; ++c) sum += chunk_hist[c][b];
    }
  }
  std::vector<std::array<std::uint32_t, 256>> chunk_offset(n_chunks);
  {
    std::array<std::uint32_t, 256> running = bucket_start;
    for (std::size_t c = 0; c < n_chunks; ++c) {
      chunk_offset[c] = running;
      for (unsigned b = 0; b < 256; ++b) running[b] += chunk_hist[c][b];
    }
  }

  // Parallel stable scatter into the scratch arrays.
  parallel_for(0, static_cast<std::int64_t>(n_chunks), [&](std::int64_t c) {
    auto offset = chunk_offset[static_cast<std::size_t>(c)];
    const std::size_t lo = static_cast<std::size_t>(c) * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      const Key k = keys[i];
      const std::uint32_t dst = offset[static_cast<std::size_t>((k >> shift) & 0xffu)]++;
      key_buf[dst] = k;
      if (vals) val_buf[dst] = vals[i];
    }
  }, grain::kTask);
  keys.swap(key_buf);
  if (values) values->swap(val_buf);
  vals = values ? values->data() : nullptr;
  vals_scratch = values ? val_buf.data() : nullptr;

  // LSD on the lower bytes of each bucket, buckets in parallel. Scratch
  // reuses the (now stale) buffers at matching offsets.
  parallel_for(0, 256, [&](std::int64_t b) {
    const std::uint32_t lo = bucket_start[static_cast<std::size_t>(b)];
    const std::uint32_t hi = (b == 255) ? static_cast<std::uint32_t>(n)
                                        : bucket_start[static_cast<std::size_t>(b) + 1];
    if (hi - lo < 2) return;
    lsd_sort(keys.data() + lo, vals ? vals + lo : nullptr, hi - lo, split_byte,
             key_buf.data() + lo, vals_scratch ? vals_scratch + lo : nullptr);
  }, grain::kTask);
}

}  // namespace

void radix_sort_pairs(std::vector<std::uint32_t>& keys, std::vector<std::uint32_t>& values) {
  radix_sort_impl(keys, &values);
}

void radix_sort_pairs(std::vector<std::uint64_t>& keys, std::vector<std::uint32_t>& values) {
  radix_sort_impl(keys, &values);
}

void radix_sort(std::vector<std::uint32_t>& keys) { radix_sort_impl<std::uint32_t>(keys, nullptr); }

void radix_sort(std::vector<std::uint64_t>& keys) { radix_sort_impl<std::uint64_t>(keys, nullptr); }

namespace {

template <typename Key>
std::vector<std::uint32_t> sort_permutation_impl(const std::vector<Key>& keys) {
  std::vector<Key> copy = keys;
  std::vector<std::uint32_t> perm(keys.size());
  std::iota(perm.begin(), perm.end(), 0u);
  radix_sort_impl(copy, &perm);
  return perm;
}

}  // namespace

std::vector<std::uint32_t> sort_permutation(const std::vector<std::uint32_t>& keys) {
  return sort_permutation_impl(keys);
}

std::vector<std::uint32_t> sort_permutation(const std::vector<std::uint64_t>& keys) {
  return sort_permutation_impl(keys);
}

}  // namespace rtnn
