// Minimal 3D vector math used throughout RTNN.
//
// Neighbor search in this codebase is always over `float` coordinates
// (matching the GPU implementation the paper builds on); distances are
// compared in squared form wherever possible to avoid sqrt.
#pragma once

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace rtnn {

/// 3-component float vector (point, direction, or extent).
struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}
  /// Splat constructor: all three components set to `v`.
  constexpr explicit Vec3(float v) : x(v), y(v), z(v) {}

  constexpr float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  float& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(float s) { x *= s; y *= s; z *= s; return *this; }
  Vec3& operator/=(float s) { x /= s; y /= s; z /= s; return *this; }

  constexpr bool operator==(const Vec3& o) const { return x == o.x && y == o.y && z == o.z; }
  constexpr bool operator!=(const Vec3& o) const { return !(*this == o); }
};

constexpr Vec3 operator*(float s, const Vec3& v) { return v * s; }

constexpr float dot(const Vec3& a, const Vec3& b) { return a.x * b.x + a.y * b.y + a.z * b.z; }

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

/// Squared Euclidean length. Prefer this over length() in hot paths.
constexpr float length2(const Vec3& v) { return dot(v, v); }

inline float length(const Vec3& v) { return std::sqrt(length2(v)); }

inline Vec3 normalize(const Vec3& v) {
  const float len = length(v);
  return len > 0.0f ? v / len : Vec3{0.0f, 0.0f, 0.0f};
}

/// Squared distance between two points; the fundamental test of Step 2
/// ("sphere test") in the RTNN algorithm (paper section 3.1).
constexpr float distance2(const Vec3& a, const Vec3& b) { return length2(a - b); }

inline float distance(const Vec3& a, const Vec3& b) { return length(a - b); }

constexpr Vec3 min(const Vec3& a, const Vec3& b) {
  return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}

constexpr Vec3 max(const Vec3& a, const Vec3& b) {
  return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}

constexpr float min_component(const Vec3& v) {
  return v.x < v.y ? (v.x < v.z ? v.x : v.z) : (v.y < v.z ? v.y : v.z);
}

constexpr float max_component(const Vec3& v) {
  return v.x > v.y ? (v.x > v.z ? v.x : v.z) : (v.y > v.z ? v.y : v.z);
}

/// Component-wise linear interpolation.
constexpr Vec3 lerp(const Vec3& a, const Vec3& b, float t) { return a + (b - a) * t; }

inline bool is_finite(const Vec3& v) {
  return std::isfinite(v.x) && std::isfinite(v.y) && std::isfinite(v.z);
}

std::ostream& operator<<(std::ostream& os, const Vec3& v);

/// 3-component signed integer vector (grid-cell coordinates).
struct Int3 {
  int x = 0;
  int y = 0;
  int z = 0;

  constexpr Int3() = default;
  constexpr Int3(int x_, int y_, int z_) : x(x_), y(y_), z(z_) {}

  constexpr int operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  int& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Int3 operator+(const Int3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Int3 operator-(const Int3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr bool operator==(const Int3& o) const { return x == o.x && y == o.y && z == o.z; }
  constexpr bool operator!=(const Int3& o) const { return !(*this == o); }
};

std::ostream& operator<<(std::ostream& os, const Int3& v);

}  // namespace rtnn
