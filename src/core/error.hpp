// Error handling: checked preconditions that throw rtnn::Error.
//
// Following the Core Guidelines (I.5/I.6, E.x): public API entry points
// validate their preconditions and report violations with exceptions;
// internal hot loops use RTNN_DCHECK which compiles away in release.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rtnn {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << "RTNN check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace rtnn

/// Always-on precondition check; throws rtnn::Error on failure.
#define RTNN_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) ::rtnn::detail::fail(#cond, __FILE__, __LINE__, (msg));   \
  } while (0)

/// Debug-only check for internal invariants in hot paths.
#ifndef NDEBUG
#define RTNN_DCHECK(cond, msg) RTNN_CHECK(cond, msg)
#else
#define RTNN_DCHECK(cond, msg) \
  do {                         \
  } while (0)
#endif
