// Deterministic fault injection: named failpoints compiled into the
// production paths.
//
// A *failpoint* is a named site in real code — the sharded scatter loop,
// the snapshot publish, the LRU eviction pass, the dispatcher tick —
// where a test can make the code fail on demand. The sites are always
// compiled in (RTNN_FAILPOINT below); when nothing is armed they cost a
// single relaxed atomic load, so production and bench builds pay nothing
// measurable. A test arms a site by name with an Action and a firing
// rule, runs the scenario, and asserts the recovery path it wanted to
// exercise actually ran — this is what makes every error branch in the
// serving stack *testable* instead of theoretical (in the spirit of
// POPACheck's systematic exploration: the firing schedule is seeded and
// deterministic, so a failing schedule replays bit-for-bit).
//
// Firing rules (FailConfig):
//   * fire_on_hit = N   fire on exactly the Nth hit of the site (1-based)
//                       — deterministic single-shot placement ("fail the
//                       3rd shard of the 1st batch").
//   * probability + seed  fire each hit with probability p from a
//                       per-site PCG stream — seeded chaos: the same
//                       seed yields the same firing schedule every run.
//   * max_fires         stop after this many fires (0 = unlimited);
//                       lets a delay site stall once, then heal.
//
// Actions:
//   * kThrow      throw fail::InjectedFault (an rtnn::Error) — models a
//                 backend/shard/registry failure surfacing as an
//                 exception.
//   * kDelay      sleep for `delay` — models a stalled thread (what the
//                 service watchdog exists to detect).
//   * kAllocFail  throw std::bad_alloc — models allocation failure at
//                 the site (exercises the same unwind paths real OOM
//                 would take, without actually exhausting memory).
//
// Thread contract: arm/disarm/counters take the registry mutex;
// evaluation takes it only while a site is armed anywhere. Actions run
// outside the lock, so a delay at one site never blocks another site
// (or another arm() call). Tests should prefer the RAII ScopedFailpoint
// so a failing assertion cannot leak an armed site into the next test.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace rtnn::fail {

/// What an armed site does when it fires.
enum class Action : std::uint8_t {
  kThrow,      // throw InjectedFault("failpoint '<name>' fired[: message]")
  kDelay,      // sleep for `delay`, then continue normally
  kAllocFail,  // throw std::bad_alloc
};

/// What kThrow sites throw. Derives from rtnn::Error so every existing
/// recovery path (dispatcher catch, retry loops) treats it like a real
/// backend failure — which is the point.
class InjectedFault : public Error {
 public:
  using Error::Error;
};

/// Firing rule + action for one armed site.
struct FailConfig {
  Action action = Action::kThrow;
  /// Per-hit firing probability when fire_on_hit == 0. 1.0 = every hit.
  double probability = 1.0;
  /// Seed of the site's private PCG stream (deterministic schedules).
  std::uint64_t seed = 0;
  /// Fire on exactly the Nth hit (1-based); 0 = use `probability`.
  std::uint64_t fire_on_hit = 0;
  /// Stop firing after this many fires; 0 = unlimited.
  std::uint64_t max_fires = 0;
  /// Sleep length for kDelay.
  std::chrono::nanoseconds delay{0};
  /// Appended to the InjectedFault message (kThrow only).
  std::string message;
};

/// The process-wide failpoint registry. Sites are created lazily by
/// arm(); evaluation of an unarmed name is a no-op.
class FailpointRegistry {
 public:
  static FailpointRegistry& instance();

  /// Arms (or re-arms, resetting counters) the named site.
  void arm(const std::string& name, FailConfig config);
  /// Disarms the site; keeps nothing. Unknown names are a no-op.
  void disarm(const std::string& name);
  /// Disarms every site (test teardown safety net).
  void disarm_all();

  /// Hits observed while armed (evaluation of a disarmed site counts
  /// nothing). Unknown names return 0.
  std::uint64_t hits(const std::string& name) const;
  /// How many of those hits fired the action.
  std::uint64_t fires(const std::string& name) const;

  /// The site evaluation behind RTNN_FAILPOINT. Fast path: one relaxed
  /// load when nothing is armed anywhere.
  void evaluate(const char* name);

 private:
  FailpointRegistry() = default;

  struct Site {
    FailConfig config;
    Pcg32 rng;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Site> sites_;
  std::atomic<int> armed_{0};  // armed-site count: the fast-path gate
};

/// RAII arm/disarm, so a throwing test body cannot leak an armed site.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FailConfig config) : name_(std::move(name)) {
    FailpointRegistry::instance().arm(name_, std::move(config));
  }
  ~ScopedFailpoint() { FailpointRegistry::instance().disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t hits() const { return FailpointRegistry::instance().hits(name_); }
  std::uint64_t fires() const { return FailpointRegistry::instance().fires(name_); }

 private:
  std::string name_;
};

}  // namespace rtnn::fail

/// A named injection site. Always compiled; free when nothing is armed.
#define RTNN_FAILPOINT(name) ::rtnn::fail::FailpointRegistry::instance().evaluate(name)
