#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#ifdef RTNN_HAVE_OPENMP
#include <omp.h>
#endif

namespace rtnn {

namespace {

std::atomic<int> g_thread_override{0};

int env_threads() {
  if (const char* env = std::getenv("RTNN_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 0;
}

}  // namespace

int num_threads() {
  const int forced = g_thread_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  if (const int env = env_threads(); env > 0) return env;
#ifdef RTNN_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_num_threads(int n) {
  g_thread_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

int worker_index() {
#ifdef RTNN_HAVE_OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

namespace detail {

void parallel_for_impl(std::int64_t begin, std::int64_t end, std::int64_t grain,
                       RangeBodyRef body) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const int workers = num_threads();
  if (workers <= 1 || n <= grain) {
    body(begin, end);
    return;
  }
#ifdef RTNN_HAVE_OPENMP
  // Static partition into roughly 4 chunks per worker (load balance for
  // skewed work such as megacell growth in clustered datasets) but never
  // below `grain`.
  const std::int64_t target_chunks = static_cast<std::int64_t>(workers) * 4;
  const std::int64_t chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  const std::int64_t num_chunks = (n + chunk - 1) / chunk;
#pragma omp parallel for schedule(dynamic, 1) num_threads(workers)
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    const std::int64_t lo = begin + c * chunk;
    const std::int64_t hi = std::min(end, lo + chunk);
    body(lo, hi);
  }
#else
  body(begin, end);
#endif
}

}  // namespace detail

std::uint64_t exclusive_scan(std::vector<std::uint32_t>& v) {
  std::uint64_t sum = 0;
  for (auto& x : v) {
    const std::uint32_t cur = x;
    x = static_cast<std::uint32_t>(sum);
    sum += cur;
  }
  return sum;
}

std::uint64_t exclusive_scan(std::vector<std::uint64_t>& v) {
  std::uint64_t sum = 0;
  for (auto& x : v) {
    const std::uint64_t cur = x;
    x = sum;
    sum += cur;
  }
  return sum;
}

void CompletionEvent::signal() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
  }
  cv_.notify_all();
}

void CompletionEvent::wait() const {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
}

bool CompletionEvent::wait_for(std::chrono::nanoseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  // Zero/negative timeouts poll: report the current state without ever
  // blocking. (Also sidesteps the overflow in now() + timeout that a
  // nanoseconds::min() deadline computation would hit inside wait_for.)
  if (timeout <= std::chrono::nanoseconds::zero()) return done_;
  return cv_.wait_for(lock, timeout, [&] { return done_; });
}

bool CompletionEvent::signaled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

}  // namespace rtnn
