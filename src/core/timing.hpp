// Timing utilities and the per-phase time breakdown of paper Figure 12.
#pragma once

#include <chrono>
#include <iosfwd>
#include <string>

namespace rtnn {

/// Wall-clock stopwatch (steady clock, double seconds).
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates seconds into a double on scope exit.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.elapsed(); }
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  Timer timer_;
};

/// The five phases the paper breaks end-to-end search time into
/// (Figure 12): Data (host<->device transfers), Opt (applying the
/// optimizations: reordering + partitioning), BVH (acceleration-structure
/// builds), FS (the first, truncated search that finds first-hit AABBs),
/// and Search (the actual neighbor search).
struct TimeBreakdown {
  double data = 0.0;
  double opt = 0.0;
  double bvh = 0.0;
  double first_search = 0.0;
  double search = 0.0;

  double total() const { return data + opt + bvh + first_search + search; }

  TimeBreakdown& operator+=(const TimeBreakdown& o) {
    data += o.data;
    opt += o.opt;
    bvh += o.bvh;
    first_search += o.first_search;
    search += o.search;
    return *this;
  }

  /// "Data Opt BVH FS Search" percentages, for the Figure 12 bench.
  std::string percent_row() const;
};

std::ostream& operator<<(std::ostream& os, const TimeBreakdown& tb);

}  // namespace rtnn
