// Timing utilities and the per-phase time breakdown of paper Figure 12.
#pragma once

#include <chrono>
#include <iosfwd>
#include <string>

namespace rtnn {

/// Wall-clock stopwatch (steady clock, double seconds).
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates seconds into a double on scope exit.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.elapsed(); }
  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  Timer timer_;
};

/// The phases the paper breaks end-to-end search time into (Figure 12):
/// Data (host<->device transfers), Opt (applying the optimizations:
/// reordering + partitioning), BVH (acceleration-structure builds from
/// scratch), FS (the first, truncated search that finds first-hit AABBs),
/// and Search (the actual neighbor search). Dynamic point-cloud sequences
/// add Refit: in-place acceleration-structure refreshes that amortize the
/// BVH phase across frames (zero on static workloads).
struct TimeBreakdown {
  double data = 0.0;
  double opt = 0.0;
  double bvh = 0.0;
  double refit = 0.0;
  double first_search = 0.0;
  double search = 0.0;

  double total() const { return data + opt + bvh + refit + first_search + search; }

  TimeBreakdown& operator+=(const TimeBreakdown& o) {
    data += o.data;
    opt += o.opt;
    bvh += o.bvh;
    refit += o.refit;
    first_search += o.first_search;
    search += o.search;
    return *this;
  }

  /// "Data Opt BVH FS Search" percentages, for the Figure 12 bench (the
  /// refit phase is folded into the BVH column there: both are
  /// acceleration-structure maintenance, and Figure 12 is static anyway).
  std::string percent_row() const;
};

std::ostream& operator<<(std::ostream& os, const TimeBreakdown& tb);

}  // namespace rtnn
