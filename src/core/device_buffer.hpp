// Device-memory stand-in.
//
// On the paper's substrate, points/queries/results live in GPU device
// memory shared by the SMs and the RT cores; host<->device copies are the
// "Data" phase of Figure 12. Here "device memory" is ordinary host memory,
// but the upload/download interface is kept explicit so (a) the RTNN
// library is written against the same memory discipline as the CUDA
// original and (b) the Data phase is separately timeable.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace rtnn {

template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t n) : data_(n) {}

  /// Allocates and copies host data "to the device".
  static DeviceBuffer upload(std::span<const T> host) {
    DeviceBuffer buf(host.size());
    if (!host.empty()) std::memcpy(buf.data_.data(), host.data(), host.size_bytes());
    return buf;
  }

  /// Copies device contents back "to the host".
  std::vector<T> download() const { return data_; }

  void download_into(std::span<T> host) const {
    RTNN_CHECK(host.size() == data_.size(), "download size mismatch");
    if (!data_.empty()) std::memcpy(host.data(), data_.data(), host.size_bytes());
  }

  void resize(std::size_t n) { data_.resize(n); }
  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  std::size_t size_bytes() const { return data_.size() * sizeof(T); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::span<T> span() { return {data_.data(), data_.size()}; }
  std::span<const T> span() const { return {data_.data(), data_.size()}; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  std::vector<T> data_;
};

}  // namespace rtnn
