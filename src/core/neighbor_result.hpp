// Shared result container for every neighbor-search implementation.
//
// All searches in this repo use the paper's interface (section 2.1): a
// search radius `r` plus a maximum neighbor count `K`, for both range
// search and KNN. Results are therefore bounded: each query owns K
// fixed slots — the flat layout a GPU kernel writes into.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace rtnn {

class NeighborResult {
 public:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  NeighborResult() = default;

  NeighborResult(std::size_t num_queries, std::uint32_t k, bool store_indices = true)
      : num_queries_(num_queries), k_(k), counts_(num_queries, 0) {
    RTNN_CHECK(k > 0, "K must be positive");
    if (store_indices) indices_.assign(num_queries * k, kInvalid);
  }

  std::size_t num_queries() const { return num_queries_; }
  std::uint32_t k() const { return k_; }
  bool stores_indices() const { return !indices_.empty() || num_queries_ == 0 || k_ == 0; }

  std::uint32_t count(std::size_t query) const { return counts_[query]; }

  /// The filled neighbor slots of `query` (point indices, unordered for
  /// range search, ascending-by-distance for KNN extractions).
  std::span<const std::uint32_t> neighbors(std::size_t query) const {
    RTNN_CHECK(!indices_.empty(), "result stores counts only");
    return {indices_.data() + query * k_, counts_[query]};
  }

  /// Device-style mutable access for kernels.
  std::uint32_t* slots(std::size_t query) { return indices_.data() + query * k_; }
  std::uint32_t& count_ref(std::size_t query) { return counts_[query]; }
  std::span<std::uint32_t> counts_span() { return counts_; }
  std::span<const std::uint32_t> counts_span() const { return counts_; }

  /// Appends `point` to `query`'s slots if space remains; returns the new
  /// count. Caller guarantees exclusive access to the query's row (one
  /// thread per ray — the CUDA contract).
  std::uint32_t record(std::size_t query, std::uint32_t point) {
    std::uint32_t& c = counts_[query];
    if (c < k_) {
      if (!indices_.empty()) indices_[query * k_ + c] = point;
      ++c;
    }
    return c;
  }

  std::uint64_t total_neighbors() const {
    std::uint64_t sum = 0;
    for (const std::uint32_t c : counts_) sum += c;
    return sum;
  }

 private:
  std::size_t num_queries_ = 0;
  std::uint32_t k_ = 0;
  std::vector<std::uint32_t> indices_;
  std::vector<std::uint32_t> counts_;
};

}  // namespace rtnn
