// Axis-aligned bounding boxes.
//
// AABBs are the primitive of the whole system: RTNN builds one AABB per
// search point (width = 2r, paper Listing 1) and the BVH is a hierarchy of
// AABBs. The ray-AABB intersection conditions of paper Figure 2 live here.
#pragma once

#include <algorithm>
#include <iosfwd>
#include <limits>

#include "core/vec3.hpp"

namespace rtnn {

/// Axis-aligned bounding box, stored as inclusive [lo, hi] corners.
/// A default-constructed Aabb is *empty* (inverted bounds) and behaves as
/// the identity for grow()/unite().
struct Aabb {
  Vec3 lo{std::numeric_limits<float>::infinity(),
          std::numeric_limits<float>::infinity(),
          std::numeric_limits<float>::infinity()};
  Vec3 hi{-std::numeric_limits<float>::infinity(),
          -std::numeric_limits<float>::infinity(),
          -std::numeric_limits<float>::infinity()};

  constexpr Aabb() = default;
  constexpr Aabb(const Vec3& lo_, const Vec3& hi_) : lo(lo_), hi(hi_) {}

  /// The cube of width `width` centered at `center`; this is how RTNN
  /// wraps every search point (center = point, width = 2 * radius).
  static constexpr Aabb cube(const Vec3& center, float width) {
    const float h = width * 0.5f;
    return {{center.x - h, center.y - h, center.z - h},
            {center.x + h, center.y + h, center.z + h}};
  }

  constexpr bool empty() const { return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z; }

  constexpr Vec3 center() const { return (lo + hi) * 0.5f; }
  constexpr Vec3 extent() const { return hi - lo; }

  /// Surface area; used by BVH quality metrics (SAH cost of a subtree).
  constexpr float surface_area() const {
    if (empty()) return 0.0f;
    const Vec3 e = extent();
    return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
  }

  constexpr float volume() const {
    if (empty()) return 0.0f;
    const Vec3 e = extent();
    return e.x * e.y * e.z;
  }

  /// Inclusive point containment — exactly the "query resides in the AABB"
  /// test of Step 1 in the paper's algorithm.
  constexpr bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  constexpr bool contains(const Aabb& other) const {
    return other.empty() ||
           (contains(other.lo) && contains(other.hi));
  }

  constexpr bool overlaps(const Aabb& other) const {
    return !empty() && !other.empty() &&
           lo.x <= other.hi.x && hi.x >= other.lo.x &&
           lo.y <= other.hi.y && hi.y >= other.lo.y &&
           lo.z <= other.hi.z && hi.z >= other.lo.z;
  }

  void grow(const Vec3& p) {
    lo = rtnn::min(lo, p);
    hi = rtnn::max(hi, p);
  }

  void grow(const Aabb& other) {
    lo = rtnn::min(lo, other.lo);
    hi = rtnn::max(hi, other.hi);
  }

  /// Expand every face outward by `margin` (used to pad scene bounds).
  constexpr Aabb expanded(float margin) const {
    return {{lo.x - margin, lo.y - margin, lo.z - margin},
            {hi.x + margin, hi.y + margin, hi.z + margin}};
  }

  /// Normalized coordinates of `p` within the box, each in [0, 1] when the
  /// point is inside. Degenerate axes (zero extent) map to 0.
  constexpr Vec3 normalized(const Vec3& p) const {
    const Vec3 e = extent();
    return {e.x > 0.0f ? (p.x - lo.x) / e.x : 0.0f,
            e.y > 0.0f ? (p.y - lo.y) / e.y : 0.0f,
            e.z > 0.0f ? (p.z - lo.z) / e.z : 0.0f};
  }

  constexpr bool operator==(const Aabb& o) const { return lo == o.lo && hi == o.hi; }
  constexpr bool operator!=(const Aabb& o) const { return !(*this == o); }
};

inline Aabb unite(const Aabb& a, const Aabb& b) {
  Aabb r = a;
  r.grow(b);
  return r;
}

std::ostream& operator<<(std::ostream& os, const Aabb& b);

/// A ray segment P(t) = origin + t * dir for t in [tmin, tmax]
/// (paper equation (1)). RTNN uses degenerate, near-zero-length rays
/// (tmax = 1e-16) so that only AABBs *containing the origin* intersect —
/// intersection Condition 2 of paper Figure 2.
struct Ray {
  Vec3 origin;
  Vec3 dir{1.0f, 0.0f, 0.0f};
  float tmin = 0.0f;
  float tmax = 1e-16f;

  /// The short ray RTNN casts from a query point (paper section 3.1:
  /// tmin = 0, tmax = 1e-16, direction [1,0,0]).
  static constexpr Ray short_ray(const Vec3& query) {
    return Ray{query, {1.0f, 0.0f, 0.0f}, 0.0f, 1e-16f};
  }
};

/// The reciprocal direction (±inf for zero components) used by the slab
/// test; traversal loops compute it once per ray instead of per node.
inline Vec3 reciprocal_dir(const Ray& ray) {
  return {1.0f / ray.dir.x, 1.0f / ray.dir.y, 1.0f / ray.dir.z};
}

/// Ray-AABB intersection implementing *both* conditions of paper Figure 2:
///   1. the slab test hits a face with t inside [tmin, tmax], or
///   2. the ray origin lies inside the AABB (required so a ray starting
///      inside a node is still allowed to descend into children).
/// Branchless slab test except for the early containment check. The 8-wide
/// SoA node test (rt::detail::wide_node_hits) must stay decision-identical
/// to this scalar form, including its NaN behavior (no swap, keep t0/t1).
inline bool ray_intersects_aabb(const Ray& ray, const Aabb& box, const Vec3& inv_dir) {
  // Condition 2: origin inside the box.
  if (box.contains(ray.origin)) return true;
  // Condition 1: standard slab test against the six faces.
  float t0 = ray.tmin;
  float t1 = ray.tmax;
  for (int axis = 0; axis < 3; ++axis) {
    const float inv = inv_dir[axis];
    float tnear = (box.lo[axis] - ray.origin[axis]) * inv;
    float tfar = (box.hi[axis] - ray.origin[axis]) * inv;
    if (tnear > tfar) std::swap(tnear, tfar);
    t0 = tnear > t0 ? tnear : t0;
    t1 = tfar < t1 ? tfar : t1;
    if (t0 > t1) return false;
  }
  return true;
}

inline bool ray_intersects_aabb(const Ray& ray, const Aabb& box) {
  return ray_intersects_aabb(ray, box, reciprocal_dir(ray));
}

}  // namespace rtnn
