// PCG32 pseudo-random number generator (O'Neill 2014).
//
// All dataset generators and property tests are seeded through this single
// deterministic generator so every experiment in the repo is reproducible
// bit-for-bit across runs and thread counts (each parallel worker derives
// an independent stream via the `seq` parameter).
#pragma once

#include <cstdint>

#include "core/aabb.hpp"
#include "core/vec3.hpp"

namespace rtnn {

class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL) {
    state_ = 0u;
    inc_ = (seq << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform in [0, bound) without modulo bias.
  std::uint32_t next_bounded(std::uint32_t bound) {
    if (bound == 0) return 0;
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Standard normal via Box-Muller (one value per call; simple, adequate
  /// for dataset synthesis).
  float normal() {
    float u1 = next_float();
    if (u1 < 1e-12f) u1 = 1e-12f;
    const float u2 = next_float();
    const float r = std::sqrt(-2.0f * std::log(u1));
    return r * std::cos(6.28318530718f * u2);
  }

  Vec3 uniform_in_aabb(const Aabb& box) {
    return {uniform(box.lo.x, box.hi.x), uniform(box.lo.y, box.hi.y),
            uniform(box.lo.z, box.hi.z)};
  }

  /// Uniform direction on the unit sphere.
  Vec3 unit_vector() {
    const float z = uniform(-1.0f, 1.0f);
    const float phi = uniform(0.0f, 6.28318530718f);
    const float r = std::sqrt(std::max(0.0f, 1.0f - z * z));
    return {r * std::cos(phi), r * std::sin(phi), z};
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace rtnn
