// Key-value radix sorts.
//
// Used for: Morton-sorting primitive centroids (LBVH build), Morton-sorting
// first-hit AABB centers (query scheduling, paper Figure 9), and counting
// points into grid cells (uniform-grid baseline and megacell grid).
// LSD radix sort, 8 bits per pass, with per-thread histograms.
#pragma once

#include <cstdint>
#include <vector>

namespace rtnn {

/// Sorts `keys` ascending, applying the identical permutation to `values`.
/// Stable. Both vectors must have the same length.
void radix_sort_pairs(std::vector<std::uint32_t>& keys, std::vector<std::uint32_t>& values);
void radix_sort_pairs(std::vector<std::uint64_t>& keys, std::vector<std::uint32_t>& values);

/// Sorts `keys` ascending (no payload).
void radix_sort(std::vector<std::uint32_t>& keys);
void radix_sort(std::vector<std::uint64_t>& keys);

/// Returns the permutation that sorts `keys` ascending (stable), without
/// reordering `keys` itself: result[i] = index of the i-th smallest key.
std::vector<std::uint32_t> sort_permutation(const std::vector<std::uint32_t>& keys);
std::vector<std::uint32_t> sort_permutation(const std::vector<std::uint64_t>& keys);

}  // namespace rtnn
