#include "core/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <ostream>

#include "core/aabb.hpp"
#include "core/vec3.hpp"

namespace rtnn {

namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("RTNN_LOG")) {
    if (!std::strcmp(env, "debug")) return LogLevel::kDebug;
    if (!std::strcmp(env, "info")) return LogLevel::kInfo;
    if (!std::strcmp(env, "warn")) return LogLevel::kWarn;
    if (!std::strcmp(env, "error")) return LogLevel::kError;
    if (!std::strcmp(env, "off")) return LogLevel::kOff;
  }
  return LogLevel::kWarn;
}

std::atomic<int> g_level{static_cast<int>(initial_level())};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << "[rtnn " << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

std::ostream& operator<<(std::ostream& os, const Int3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

std::ostream& operator<<(std::ostream& os, const Aabb& b) {
  return os << "[lo=" << b.lo << " hi=" << b.hi << ']';
}

}  // namespace rtnn
